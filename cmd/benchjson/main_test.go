package main

import "testing"

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkRPCPipeline/binary-w8-8   \t 100\t  11053042 ns/op\t  4096 B/op\t  12 allocs/op\t  52.1 chunks/s")
	if !ok {
		t.Fatal("line not recognised")
	}
	if e.Name != "BenchmarkRPCPipeline/binary-w8-8" || e.Iterations != 100 || e.NsPerOp != 11053042 {
		t.Fatalf("parsed %+v", e)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 4096 || e.AllocsPerOp == nil || *e.AllocsPerOp != 12 {
		t.Fatalf("benchmem fields: %+v", e)
	}
	if e.Metrics["chunks/s"] != 52.1 {
		t.Fatalf("custom metric: %+v", e.Metrics)
	}

	for _, c := range []struct {
		name, only string
		want       bool
	}{
		{"BenchmarkLocalEngine/steal-p32-8", "", true},
		{"BenchmarkLocalEngine/steal-p32-8", "BenchmarkLocalEngine", true},
		{"BenchmarkLocalEngine/steal-p32-8", "BenchmarkRPCPipeline", false},
		{"BenchmarkRPCPipeline/binary-w8-8", "BenchmarkRPCPipeline", true},
	} {
		if got := keep(c.name, c.only); got != c.want {
			t.Errorf("keep(%q, %q) = %v, want %v", c.name, c.only, got, c.want)
		}
	}

	for _, bad := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \tloopsched\t1.2s",
		"BenchmarkX no-iterations here",
		"BenchmarkX 100", // iteration count but no measurements
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parseLine(%q) accepted", bad)
		}
	}
}
