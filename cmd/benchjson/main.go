// Command benchjson converts `go test -bench` output into JSON, so CI
// can archive benchmark runs as machine-readable artifacts next to the
// raw benchstat-compatible text.
//
//	go test -bench=BenchmarkRPCPipeline -benchmem . | benchjson -o BENCH_wire.json
//
// Each benchmark line becomes one entry carrying the iteration count,
// ns/op, B/op, allocs/op and any custom metrics (`chunks/s`, `Tp_s`,
// …). Non-benchmark lines (the artefact tables the bench suite prints)
// pass through untouched on stderr when -echo is set, and are
// otherwise dropped. -only keeps just the benchmarks whose name starts
// with a prefix, so one bench run can feed several artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the full benchmark name including sub-benchmark path
	// and the trailing GOMAXPROCS suffix, e.g.
	// "BenchmarkRPCPipeline/binary-w8-8".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the artifact schema: the parsed entries plus the raw
// benchmark lines, which remain directly consumable by benchstat.
type Output struct {
	Entries []Entry  `json:"entries"`
	Raw     []string `json:"raw"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	echo := flag.Bool("echo", false, "echo non-benchmark lines to stderr")
	only := flag.String("only", "", "keep only benchmarks whose name starts with this prefix")
	flag.Parse()

	var res Output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		e, ok := parseLine(line)
		if !ok {
			if *echo {
				fmt.Fprintln(os.Stderr, line)
			}
			continue
		}
		if !keep(e.Name, *only) {
			continue
		}
		res.Entries = append(res.Entries, e)
		res.Raw = append(res.Raw, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(res.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// keep reports whether a benchmark name passes the -only prefix
// filter; an empty filter keeps everything. This lets one `go test
// -bench` run feed several artifacts (BENCH_wire.json, BENCH_local.json)
// without re-running the suite.
func keep(name, only string) bool {
	return only == "" || strings.HasPrefix(name, only)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkX/sub-8   100   11053042 ns/op   4096 B/op   12 allocs/op   52.1 chunks/s
//
// The grammar after the name is a sequence of (value, unit) pairs, the
// first of which is the bare iteration count.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			e.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			e.BytesPerOp = &v
		case "allocs/op":
			v := val
			e.AllocsPerOp = &v
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = val
		}
	}
	return e, seenNs
}
