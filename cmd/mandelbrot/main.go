// Command mandelbrot renders the paper's test problem (Figure 2) to a
// PNG and can dump the per-column cost distribution behind Figure 1.
//
//	mandelbrot -o mandel.png -width 1200 -height 1200
//	mandelbrot -costs -sf 4 > fig1.tsv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"image"
	"image/png"
	"os"

	"loopsched"
)

func main() {
	var (
		out     = flag.String("o", "mandelbrot.png", "output PNG path")
		width   = flag.Int("width", 1200, "window width")
		height  = flag.Int("height", 1200, "window height")
		maxIter = flag.Int("maxiter", 160, "escape-time bound")
		costs   = flag.Bool("costs", false, "print per-column costs (Figure 1 data) instead of rendering")
		sf      = flag.Int("sf", 4, "sampling frequency for the reordered series")
		workers = flag.Int("workers", 0, "render in parallel with N self-scheduled workers (0 = serial)")
		scheme  = flag.String("scheme", "TFSS", "scheme for -workers rendering")
	)
	flag.Parse()

	p := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: *width, Height: *height, MaxIter: *maxIter,
	}
	if err := p.Validate(); err != nil {
		fail(err)
	}

	if *costs {
		w := loopsched.MandelbrotWorkload(p)
		r := loopsched.Reorder(w, *sf)
		bw := bufio.NewWriter(os.Stdout)
		defer bw.Flush()
		fmt.Fprintln(bw, "column\toriginal\treordered")
		for i := 0; i < w.Len(); i++ {
			fmt.Fprintf(bw, "%d\t%.0f\t%.0f\n", i, w.Cost(i), r.Cost(i))
		}
		return
	}

	var img *image.Gray
	if *workers <= 0 {
		img = loopsched.RenderMandelbrot(p)
	} else {
		s, err := loopsched.LookupScheme(*scheme)
		if err != nil {
			fail(err)
		}
		specs := make([]*loopsched.WorkerSpec, *workers)
		for i := range specs {
			specs[i] = &loopsched.WorkerSpec{}
		}
		columns := make([][]byte, p.Width)
		rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
			Backend:  loopsched.BackendLocal,
			Scheme:   s,
			Workload: loopsched.Uniform{N: p.Width},
			Workers:  specs,
			Body: func(c int) {
				columns[c] = loopsched.MandelbrotShadedColumn(p, c)
			},
		})
		if err != nil {
			fail(err)
		}
		img = loopsched.AssembleMandelbrot(p, columns)
		fmt.Printf("rendered with %s on %d workers in %d chunks (%.3fs)\n",
			rep.Scheme, rep.Workers, rep.Chunks, rep.Tp)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%dx%d)\n", *out, *width, *height)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mandelbrot:", err)
	os.Exit(1)
}
