// Command worker joins a cmd/master render as one slave: it connects
// over TCP, reports its available computing power (virtual power over
// the host's real run queue, the paper's A_i = V_i/Q_i), computes the
// assigned Mandelbrot columns, and piggy-backs the pixels on each
// request.
//
//	worker -master host:7000 -id 0 -power 3
package main

import (
	"flag"
	"fmt"
	"os"

	"loopsched"
)

func main() {
	var (
		masterAddr = flag.String("master", "127.0.0.1:7000", "master's TCP address")
		id         = flag.Int("id", 0, "worker id (0-based, unique per worker)")
		power      = flag.Float64("power", 1, "virtual power V_i relative to the slowest machine")
		scale      = flag.Int("scale", 1, "emulate a 1/scale-speed machine by repeating each column")
		width      = flag.Int("width", 1200, "image width — must match the master")
		height     = flag.Int("height", 900, "image height — must match the master")
		maxIter    = flag.Int("maxiter", 200, "escape-time bound — must match the master")
		probeOS    = flag.Bool("os-load", true, "report the host's real run queue (/proc/loadavg) as Q_i")
		pipeline   = flag.Bool("pipeline", true, "prefetch the next chunk while computing (double-buffered protocol)")
		transport  = flag.String("transport", "", "wire format: binary or netrpc (default: $LOOPSCHED_TRANSPORT, else binary)")
		window     = flag.Int("window", 0, "credit window on the binary transport: chunks held beyond the one computing (0 = 1)")
	)
	flag.Parse()

	p := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: *width, Height: *height, MaxIter: *maxIter,
	}
	w := loopsched.Worker{
		ID:           *id,
		VirtualPower: *power,
		WorkScale:    *scale,
		Pipeline:     *pipeline,
		Transport:    loopsched.RPCTransport(*transport),
		Window:       *window,
		ACPModel:     loopsched.ACPModel{Scale: 10},
		Kernel: func(col int) []byte {
			return loopsched.MandelbrotShadedColumn(p, col)
		},
	}
	if *probeOS {
		w.LoadProbe = loopsched.OSLoadProbe()
	}
	fmt.Printf("worker %d: joining %s (V=%g, scale=%d)\n", *id, *masterAddr, *power, *scale)
	if err := w.Run(*masterAddr); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker %d: done\n", *id)
}
