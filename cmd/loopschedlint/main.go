// Command loopschedlint runs loopsched's domain-aware analyzer suite
// (internal/lint): ctxloop, chunkmath, locksafe, regsync, gojoin,
// timesample, atomicdiscipline, hotalloc, wirebounds and the
// module-wide lockorder — the concurrency, chunk-math and hot-path
// invariants behind the paper's termination and work-conservation
// arguments, machine-checked.
//
// It speaks two protocols:
//
//	loopschedlint [-json] [-sarif file] [-baseline file] [packages]
//	go vet -vettool=$(which loopschedlint) ./...
//
// The vettool mode implements cmd/go's (unpublished) vet driver
// protocol: -V=full and -flags queries, then one invocation per
// package with a JSON .cfg file naming the sources and the export
// data of every dependency. Module-wide analyzers degrade there to
// the current unit's single package; the standalone mode sees the
// whole module. See docs/LINTING.md for the analyzers, their
// invariants, and the //lint:loopsched-ignore suppression directive.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"loopsched/internal/lint"
)

var (
	versionFlag = flag.String("V", "", "print version information (cmd/go tool protocol)")
	printFlags  = flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go vet protocol)")
	jsonOut     = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	sarifOut    = flag.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file")
	baseline    = flag.String("baseline", "", "suppress findings present in this JSON baseline file; exit 2 only on new findings")
	only        = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
)

func main() {
	flag.Parse()
	switch {
	case *versionFlag != "":
		printVersion()
	case *printFlags:
		printFlagDefs()
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		os.Exit(runUnit(flag.Arg(0)))
	default:
		os.Exit(runStandalone(flag.Args()))
	}
}

// printVersion implements the -V=full handshake: cmd/go derives the
// vet cache key from the buildID, so it hashes this executable.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlagDefs answers cmd/go's `-flags` query.
func printFlagDefs() {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit diagnostics as a JSON array on stdout"},
		{Name: "analyzers", Bool: false, Usage: "comma-separated subset of analyzers to run"},
	}
	out, _ := json.Marshal(defs)
	fmt.Println(string(out))
}

// selected resolves -analyzers into the suite subset: per-package
// analyzers and module analyzers, each matched by name.
func selected() ([]*lint.Analyzer, []*lint.ModuleAnalyzer, error) {
	if *only == "" {
		return lint.All(), lint.AllModule(), nil
	}
	var pkgAs []*lint.Analyzer
	var modAs []*lint.ModuleAnalyzer
	for _, name := range strings.Split(*only, ",") {
		name = strings.TrimSpace(name)
		if a := lint.ByName(name); a != nil {
			pkgAs = append(pkgAs, a)
			continue
		}
		if m := lint.ModuleByName(name); m != nil {
			modAs = append(modAs, m)
			continue
		}
		return nil, nil, fmt.Errorf("loopschedlint: unknown analyzer %q", name)
	}
	return pkgAs, modAs, nil
}

// baselineKey is the identity a finding keeps across unrelated edits:
// the exact line may drift, so the key is package, analyzer, file base
// name and message.
func baselineKey(f lint.Finding) string {
	return f.Package + "|" + f.Analyzer + "|" + filepath.Base(f.File) + "|" + f.Message
}

// applyBaseline drops findings recorded in the baseline file, so CI
// fails only on findings introduced by the change under review.
func applyBaseline(findings []lint.Finding) ([]lint.Finding, error) {
	if *baseline == "" {
		return findings, nil
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		return nil, fmt.Errorf("loopschedlint: reading baseline: %v", err)
	}
	var base []lint.Finding
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("loopschedlint: parsing baseline %s: %v", *baseline, err)
	}
	known := make(map[string]int, len(base))
	for _, f := range base {
		known[baselineKey(f)]++
	}
	var fresh []lint.Finding
	for _, f := range findings {
		if known[baselineKey(f)] > 0 {
			known[baselineKey(f)]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, nil
}

// emit prints the findings in the selected formats and returns the
// exit code (vet convention: 2 when findings exist).
func emit(findings []lint.Finding) int {
	if *sarifOut != "" {
		doc, err := lint.SARIF(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(*sarifOut, doc, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		_ = enc.Encode(findings)
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f.String())
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads the patterns through the go toolchain and runs
// the suite — per-package analyzers over each package, module
// analyzers over all of them at once.
func runStandalone(patterns []string) int {
	pkgAs, modAs, err := selected()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []lint.Finding
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, pkgAs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			all = append(all, lint.Finding{Package: pkg.Path, Diagnostic: d})
		}
	}
	if len(modAs) > 0 {
		diags, err := lint.RunModuleAnalyzers(pkgs, modAs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			all = append(all, lint.Finding{Package: moduleFindingPackage(pkgs, d), Diagnostic: d})
		}
	}
	all, err = applyBaseline(all)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return emit(all)
}

// moduleFindingPackage attributes a module-analyzer diagnostic to the
// package owning its file (module diagnostics span packages).
func moduleFindingPackage(pkgs []*lint.Package, d lint.Diagnostic) string {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if pkg.Fset.Position(f.Pos()).Filename == d.Pos.Filename {
				return pkg.Path
			}
		}
	}
	return "module"
}

// vetConfig is the JSON payload cmd/go hands a vettool for each
// package unit (the shape x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyses one package unit under `go vet -vettool`. Module
// analyzers run over the unit's single package: intra-package findings
// (a lock cycle within one package) still surface; the cross-package
// graph needs the standalone runner.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "loopschedlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file regardless of findings. The suite
	// keeps all its facts intra-package, so the file is an empty stub.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// The suite's invariants target production code; test files are
	// excluded, mirroring the standalone loader.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	exports := make(map[string]string, len(cfg.ImportMap))
	for path, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = f
		}
	}
	for canonical, f := range cfg.PackageFile {
		if _, ok := exports[canonical]; !ok {
			exports[canonical] = f
		}
	}

	pkg, err := lint.TypeCheckFiles(cfg.ImportPath, files, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.RunAnalyzers(pkg, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	modDiags, err := lint.RunModuleAnalyzers([]*lint.Package{pkg}, lint.AllModule())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []lint.Finding
	for _, d := range append(diags, modDiags...) {
		all = append(all, lint.Finding{Package: cfg.ImportPath, Diagnostic: d})
	}
	return emit(all)
}
