// Command loopschedlint runs loopsched's domain-aware analyzer suite
// (internal/lint): ctxloop, chunkmath, locksafe, regsync and gojoin —
// the concurrency and chunk-math invariants behind the paper's
// termination and work-conservation arguments, machine-checked.
//
// It speaks two protocols:
//
//	loopschedlint [-json] [packages]     # standalone, default ./...
//	go vet -vettool=$(which loopschedlint) ./...
//
// The vettool mode implements cmd/go's (unpublished) vet driver
// protocol: -V=full and -flags queries, then one invocation per
// package with a JSON .cfg file naming the sources and the export
// data of every dependency. See docs/LINTING.md for the analyzers,
// their invariants, and the //lint:loopsched-ignore suppression
// directive.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"loopsched/internal/lint"
)

var (
	versionFlag = flag.String("V", "", "print version information (cmd/go tool protocol)")
	printFlags  = flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go vet protocol)")
	jsonOut     = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	only        = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
)

func main() {
	flag.Parse()
	switch {
	case *versionFlag != "":
		printVersion()
	case *printFlags:
		printFlagDefs()
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		os.Exit(runUnit(flag.Arg(0)))
	default:
		os.Exit(runStandalone(flag.Args()))
	}
}

// printVersion implements the -V=full handshake: cmd/go derives the
// vet cache key from the buildID, so it hashes this executable.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlagDefs answers cmd/go's `-flags` query.
func printFlagDefs() {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit diagnostics as a JSON array on stdout"},
		{Name: "analyzers", Bool: false, Usage: "comma-separated subset of analyzers to run"},
	}
	out, _ := json.Marshal(defs)
	fmt.Println(string(out))
}

// selected resolves -analyzers into the suite subset.
func selected() ([]*lint.Analyzer, error) {
	if *only == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(*only, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("loopschedlint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// packageDiag is one finding in the -json encoding.
type packageDiag struct {
	Package string `json:"package"`
	lint.Diagnostic
}

// emit prints the diagnostics in the selected format and returns the
// exit code (vet convention: 2 when findings exist).
func emit(diags []packageDiag) int {
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []packageDiag{}
		}
		_ = enc.Encode(diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads the patterns through the go toolchain and runs
// the suite over every matched package.
func runStandalone(patterns []string) int {
	analyzers, err := selected()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []packageDiag
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			all = append(all, packageDiag{Package: pkg.Path, Diagnostic: d})
		}
	}
	return emit(all)
}

// vetConfig is the JSON payload cmd/go hands a vettool for each
// package unit (the shape x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyses one package unit under `go vet -vettool`.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "loopschedlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file regardless of findings. The suite
	// keeps all its facts intra-package, so the file is an empty stub.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// The suite's invariants target production code; test files are
	// excluded, mirroring the standalone loader.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	exports := make(map[string]string, len(cfg.ImportMap))
	for path, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = f
		}
	}
	for canonical, f := range cfg.PackageFile {
		if _, ok := exports[canonical]; !ok {
			exports[canonical] = f
		}
	}

	pkg, err := lint.TypeCheckFiles(cfg.ImportPath, files, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.RunAnalyzers(pkg, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []packageDiag
	for _, d := range diags {
		all = append(all, packageDiag{Package: cfg.ImportPath, Diagnostic: d})
	}
	return emit(all)
}
