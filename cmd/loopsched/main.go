// Command loopsched runs one self-scheduling scheme on one workload,
// either on the simulated heterogeneous cluster or with real goroutine
// workers, and prints the paper-style report. With -serve it instead
// runs the multi-tenant scheduler daemon over a JSON job script: one
// shared fleet serving a stream of jobs under admission quotas and
// weighted-fair arbitration (see docs/SERVICE.md).
//
// Examples:
//
//	loopsched -scheme DTSS -workload mandelbrot -p 8 -nondedicated
//	loopsched -scheme TSS -workload uniform -I 10000 -p 4
//	loopsched -scheme TFSS -workload mandelbrot -real -p 4
//	loopsched -serve configs/jobstream.json
//	loopsched -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"loopsched"
)

func main() {
	var (
		schemeName   = flag.String("scheme", "DTSS", "scheduling scheme (see -list)")
		workloadName = flag.String("workload", "mandelbrot", "workload: mandelbrot, uniform, linear-inc, linear-dec, conditional, random, or csv:<path>")
		iterations   = flag.Int("I", 0, "iteration count for synthetic workloads (default 4000)")
		p            = flag.Int("p", 8, "number of slave PEs")
		nondedicated = flag.Bool("nondedicated", false, "overload some PEs with background processes")
		clusterFile  = flag.String("cluster", "", "JSON cluster description (overrides -p/-nondedicated)")
		width        = flag.Int("width", 4000, "mandelbrot window width (columns)")
		height       = flag.Int("height", 2000, "mandelbrot window height (rows)")
		maxIter      = flag.Int("maxiter", 160, "mandelbrot escape-time bound")
		sf           = flag.Int("sf", 4, "sampling reorder frequency (1 = no reorder)")
		real         = flag.Bool("real", false, "execute with real goroutine workers instead of the simulator")
		localEngine  = flag.String("local-engine", "", "local runtime with -real: channel (default) or steal")
		rpcReal      = flag.Bool("rpc", false, "execute with real RPC slaves self-hosted on loopback (overrides -real)")
		transport    = flag.String("transport", "", "rpc wire format: binary or netrpc (default: $LOOPSCHED_TRANSPORT, else binary)")
		window       = flag.Int("window", 0, "credit window: chunks a worker holds beyond the one computing (rpc), or the steal-engine refill batch (0 = default)")
		ledgerMode   = flag.String("ledger", "", "scheduling-step ledger: on or off; eligible schemes claim chunks with one fetch-and-add instead of master round trips (default: $LOOPSCHED_LEDGER, else off)")
		tree         = flag.Bool("tree", false, "use Tree Scheduling (ignores -scheme)")
		gantt        = flag.Bool("gantt", false, "print an ASCII Gantt chart of the simulated run")
		traceCSV     = flag.String("trace-csv", "", "write the chunk-level execution trace to this CSV file")
		ganttSVG     = flag.String("gantt-svg", "", "write the Gantt chart as SVG to this file")
		bus          = flag.Bool("bus", false, "simulate a shared half-duplex medium (hub Ethernet) instead of independent links")
		acpScale     = flag.Int("acp-scale", 0, "ACP decimal scale factor (0 = default 10; 1 = the original integer DTSS)")
		shards       = flag.Int("shards", 0, "run the two-level hierarchy with this many submaster shards (0 = flat)")
		debugAddr    = flag.String("debug-addr", "", "serve live run telemetry on this address for the duration of the run (Prometheus /metrics, expvar /debug/vars, net/http/pprof /debug/pprof/)")
		perfetto     = flag.String("perfetto", "", "write a Perfetto-loadable Chrome trace-event JSON of the run to this file")
		serveScript  = flag.String("serve", "", "run the multi-tenant scheduler daemon over this JSON job script (shared fleet, admission quotas, weighted fairness) and print per-job and per-tenant summaries")
		list         = flag.Bool("list", false, "list available schemes and exit")
		describe     = flag.String("describe", "", "describe schemes ('all', a category, or a name) and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available schemes:", strings.Join(loopsched.SchemeNames(), " "))
		fmt.Println("plus: TreeS (via -tree)")
		return
	}
	if *describe != "" {
		filter := *describe
		if filter == "all" {
			filter = ""
		}
		fmt.Print(loopsched.DescribeSchemes(filter))
		return
	}

	// A telemetry session observes the run live: the debug endpoint
	// stays up while the loop executes, and the Perfetto document is
	// finished when the session closes below.
	var err error
	var tele *loopsched.Telemetry
	var perfettoFile *os.File
	if *debugAddr != "" || *perfetto != "" {
		opts := loopsched.TelemetryOptions{DebugAddr: *debugAddr}
		if *perfetto != "" {
			perfettoFile, err = os.Create(*perfetto)
			if err != nil {
				fail(err)
			}
			opts.Perfetto = perfettoFile
		}
		tele, err = loopsched.NewTelemetry(opts)
		if err != nil {
			fail(err)
		}
		if addr := tele.DebugAddr(); addr != "" {
			fmt.Printf("telemetry: http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", addr)
		}
	}

	// The daemon mode: a stream of jobs on one shared fleet instead of
	// a single run.
	if *serveScript != "" {
		if err := serve(*serveScript, tele, *width, *height, *maxIter, *sf); err != nil {
			fail(err)
		}
		closeTelemetry(tele, perfettoFile, *perfetto)
		return
	}

	w, err := buildWorkload(*workloadName, *iterations, *width, *height, *maxIter, *sf)
	if err != nil {
		fail(err)
	}

	cluster := loopsched.PaperCluster(*p, *nondedicated)
	if *clusterFile != "" {
		f, err := os.Open(*clusterFile)
		if err != nil {
			fail(err)
		}
		cluster, err = loopsched.ReadCluster(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	params := loopsched.SimParams{BaseRate: 1.2e6, BytesPerIter: float64(2 * *height)}
	params.SharedBus = *bus
	if *acpScale > 0 {
		params.ACP = loopsched.ACPModel{Scale: *acpScale}
	}
	var tr *loopsched.Trace
	if *gantt || *traceCSV != "" || *ganttSVG != "" {
		tr = &loopsched.Trace{}
	}

	var rep loopsched.Report
	if *tree {
		// Tree Scheduling predates the unified executor; it runs on the
		// legacy simulator path without hierarchy or telemetry.
		params.Trace = tr
		rep, err = loopsched.SimulateTree(cluster, loopsched.TreeOptions{Weighted: true}, w, params)
	} else {
		var s loopsched.Scheme
		s, err = loopsched.LookupScheme(*schemeName)
		if err == nil {
			spec := loopsched.RunSpec{Scheme: s, Workload: w, Telemetry: tele}
			if *shards > 0 {
				spec.Hierarchy = &loopsched.Hierarchy{Shards: *shards}
			}
			if *rpcReal {
				spec.Backend = loopsched.BackendRPC
				spec.Workers = realWorkers(*p)
				spec.Body = burnBody(w)
				spec.Pipeline = true
				spec.Transport = *transport
				spec.CreditWindow = *window
				spec.Ledger = *ledgerMode
				spec.Trace = tr
			} else if *real {
				spec.Backend = loopsched.BackendLocal
				spec.Workers = realWorkers(*p)
				spec.Body = burnBody(w)
				spec.LocalEngine = *localEngine
				spec.CreditWindow = *window
				spec.Ledger = *ledgerMode
				spec.Trace = tr
			} else {
				spec.Backend = loopsched.BackendSim
				spec.Cluster = cluster
				spec.Sim = params
				// With telemetry on, the trace is rebuilt from the event
				// stream; otherwise the simulator fills it natively (the
				// hierarchical simulator merges its per-shard traces).
				if tele != nil {
					spec.Trace = tr
				} else {
					spec.Sim.Trace = tr
				}
			}
			rep, err = loopsched.Run(context.Background(), spec)
		}
	}
	if err != nil {
		fail(err)
	}
	printReport(rep)
	if s := loopsched.FormatShards(rep); s != "" {
		fmt.Print(s)
	}
	if tr != nil && *gantt {
		fmt.Print(tr.Gantt(100))
		fmt.Printf("mean utilization: %.0f%%\n", 100*tr.MeanUtilization())
	}
	if tr != nil && *ganttSVG != "" {
		if err := os.WriteFile(*ganttSVG, []byte(loopsched.GanttSVG(tr)), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *ganttSVG)
	}
	if tr != nil && *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *traceCSV)
	}
	closeTelemetry(tele, perfettoFile, *perfetto)
}

// closeTelemetry finishes the telemetry session, completing the
// Perfetto document if one was requested.
func closeTelemetry(tele *loopsched.Telemetry, perfettoFile *os.File, perfettoPath string) {
	if tele == nil {
		return
	}
	if err := tele.Close(); err != nil {
		fail(err)
	}
	if perfettoFile != nil {
		if err := perfettoFile.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", perfettoPath, "(open at https://ui.perfetto.dev)")
	}
}

func buildWorkload(name string, iterations, width, height, maxIter, sf int) (loopsched.Workload, error) {
	if iterations <= 0 {
		iterations = 4000
	}
	var w loopsched.Workload
	switch name {
	case "mandelbrot":
		w = loopsched.MandelbrotWorkload(loopsched.MandelbrotParams{
			Region: loopsched.PaperRegion, Width: width, Height: height, MaxIter: maxIter,
		})
	case "uniform":
		w = loopsched.Uniform{N: iterations}
	case "linear-inc":
		w = loopsched.LinearIncreasing{N: iterations}
	case "linear-dec":
		w = loopsched.LinearDecreasing{N: iterations}
	case "conditional":
		w = loopsched.NewConditional(iterations, 0.25, 10, 1, 1)
	case "random":
		w = loopsched.NewRandom(iterations, 8, 1, 1)
	default:
		if path, ok := strings.CutPrefix(name, "csv:"); ok {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			loaded, err := loopsched.ReadCosts(f, path)
			if err != nil {
				return nil, err
			}
			w = loaded
			break
		}
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	if sf > 1 {
		w = loopsched.Reorder(w, sf)
	}
	return w, nil
}

// realWorkers builds the -real worker set with the same fast/slow mix
// as the paper cluster.
func realWorkers(p int) []*loopsched.WorkerSpec {
	workers := make([]*loopsched.WorkerSpec, p)
	for i := range workers {
		scale := 1
		if i >= (3*p+7)/8 {
			scale = 3
		}
		workers[i] = &loopsched.WorkerSpec{WorkScale: scale}
	}
	return workers
}

// burnBody returns a loop body that burns work proportional to the
// iteration's cost.
func burnBody(w loopsched.Workload) func(i int) {
	var sink int64
	return func(i int) {
		n := int(w.Cost(i))
		for k := 0; k < n; k++ {
			sink += int64(k ^ i)
		}
	}
}

func printReport(rep loopsched.Report) {
	fmt.Print(loopsched.FormatTable(
		fmt.Sprintf("%s on %s (p=%d)", rep.Scheme, rep.Workload, rep.Workers),
		[]loopsched.Report{rep}))
	fmt.Printf("chunks=%d replans=%d comp-imbalance=%.3f\n",
		rep.Chunks, rep.Replans, rep.CompImbalance())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loopsched:", err)
	os.Exit(1)
}
