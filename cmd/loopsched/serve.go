package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"loopsched"
)

// jobScript is the -serve input: one shared worker fleet and a stream
// of job templates submitted against it. Example:
//
//	{
//	  "workers": 8, "window": 8, "retries": 1,
//	  "jobs": [
//	    {"scheme": "TSS",  "workload": "uniform", "iterations": 20000,
//	     "tenant": "alpha", "weight": 2, "count": 6, "delay_ms": 2},
//	    {"scheme": "DTSS", "workload": "mandelbrot", "tenant": "beta",
//	     "priority": 1, "count": 3, "deadline_ms": 60000}
//	  ]
//	}
type jobScript struct {
	// Workers is the fleet size; the paper's fast/slow mix, like -real
	// (default 8).
	Workers int `json:"workers"`
	// Window is the refill credit window (0 = engine default).
	Window int `json:"window"`
	// Retries is the default re-admission budget for dying jobs.
	Retries int `json:"retries"`
	// Admission quota knobs; 0 means uncapped.
	MaxActive          int `json:"max_active"`
	MaxActivePerTenant int `json:"max_active_per_tenant"`
	MaxQueuedPerTenant int `json:"max_queued_per_tenant"`
	// Jobs are submitted in order; each entry expands to Count copies.
	Jobs []jobEntry `json:"jobs"`
}

type jobEntry struct {
	Scheme     string  `json:"scheme"`
	Workload   string  `json:"workload"`
	Iterations int     `json:"iterations"`
	Tenant     string  `json:"tenant"`
	Priority   int     `json:"priority"`
	Weight     float64 `json:"weight"`
	// Count is how many copies of this job to submit (default 1).
	Count int `json:"count"`
	// DelayMS pauses between copies, simulating an arrival stream.
	DelayMS int `json:"delay_ms"`
	// DeadlineMS, when > 0, sets each copy's deadline that far from
	// its submission.
	DeadlineMS int `json:"deadline_ms"`
	// Retries overrides the script-level budget (negative = none).
	Retries int `json:"retries"`
}

// serve runs the multi-tenant scheduler daemon over a job script: one
// shared fleet, every job submitted through the same admission queue
// and fairness arbiter, then a per-job log and a per-tenant summary.
func serve(path string, tele *loopsched.Telemetry, width, height, maxIter, sf int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var script jobScript
	err = json.NewDecoder(f).Decode(&script)
	f.Close()
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if script.Workers <= 0 {
		script.Workers = 8
	}
	if len(script.Jobs) == 0 {
		return fmt.Errorf("%s: no jobs in script", path)
	}

	s, err := loopsched.NewScheduler(loopsched.SchedulerOptions{
		Workers:            realWorkers(script.Workers),
		CreditWindow:       script.Window,
		Retries:            script.Retries,
		MaxActive:          script.MaxActive,
		MaxActivePerTenant: script.MaxActivePerTenant,
		MaxQueuedPerTenant: script.MaxQueuedPerTenant,
		Telemetry:          tele,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	ctx := context.Background()
	fmt.Printf("serve: fleet of %d workers, %d job templates\n",
		script.Workers, len(script.Jobs))

	type submitted struct {
		job    *loopsched.Job
		tenant string
		label  string
	}
	var jobs []submitted
	start := time.Now()
	for ei, e := range script.Jobs {
		scheme, err := loopsched.LookupScheme(e.Scheme)
		if err != nil {
			return err
		}
		w, err := buildWorkload(e.Workload, e.Iterations, width, height, maxIter, sf)
		if err != nil {
			return err
		}
		count := e.Count
		if count <= 0 {
			count = 1
		}
		for c := 0; c < count; c++ {
			spec := loopsched.JobSpec{
				Scheme:   scheme,
				Workload: w,
				Body:     burnBody(w),
				Tenant:   e.Tenant,
				Priority: e.Priority,
				Weight:   e.Weight,
				Retries:  e.Retries,
			}
			if e.DeadlineMS > 0 {
				spec.Deadline = time.Now().Add(time.Duration(e.DeadlineMS) * time.Millisecond)
			}
			j, err := s.Submit(ctx, spec)
			if err != nil {
				return fmt.Errorf("submit template %d copy %d: %w", ei, c, err)
			}
			jobs = append(jobs, submitted{
				job: j, tenant: j.Tenant(),
				label: fmt.Sprintf("%s/%s", e.Scheme, w.Name()),
			})
			if e.DelayMS > 0 {
				time.Sleep(time.Duration(e.DelayMS) * time.Millisecond)
			}
		}
	}

	if err := s.Drain(ctx); err != nil {
		return err
	}
	wall := time.Since(start)

	// Per-job log, submission order.
	type tenantSum struct {
		jobs, ok, failed int
		iters, chunks    int64
	}
	sums := map[string]*tenantSum{}
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\ttenant\tspec\tstate\titers\tchunks\tattempts\twall(s)")
	for _, sub := range jobs {
		j := sub.job
		rep, jerr := j.Wait(ctx)
		ts := sums[sub.tenant]
		if ts == nil {
			ts = &tenantSum{}
			sums[sub.tenant] = ts
		}
		ts.jobs++
		ts.iters += j.Granted()
		ts.chunks += int64(j.ChunksGranted())
		status := j.State().String()
		if jerr != nil {
			ts.failed++
			status = fmt.Sprintf("%s (%v)", status, jerr)
		} else {
			ts.ok++
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%d\t%.3f\n",
			j.ID(), sub.tenant, sub.label, status,
			rep.Iterations, rep.Chunks, j.Attempts(), rep.Tp)
	}
	tw.Flush()

	// Per-tenant summary; with telemetry attached, the aggregator's
	// numbers (queue waits, requeues) join the job-handle sums.
	tenants := make([]string, 0, len(sums))
	for tn := range sums {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	fmt.Printf("\nserve: %d jobs across %d tenants in %.3fs\n", len(jobs), len(tenants), wall.Seconds())
	tw = tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	if tele != nil {
		tele.Flush()
		snap := tele.Aggregator().Snapshot()
		fmt.Fprintln(tw, "tenant\tjobs\tok\tfailed\titers\tchunks\trequeues\tmean-wait(ms)\tchunk-p50/p95/p99(ms)\tbusy-cv")
		for _, tn := range tenants {
			ts, ag := sums[tn], snap.Tenants[tn]
			wait := 0.0
			if ag.Jobs > 0 {
				wait = 1000 * ag.QueueWaitSec / float64(ag.Jobs)
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f/%.2f/%.2f\t%.3f\n",
				tn, ts.jobs, ts.ok, ts.failed, ts.iters, ts.chunks, ag.Requeues, wait,
				1000*ag.CompP50, 1000*ag.CompP95, 1000*ag.CompP99, ag.BusyCV)
		}
	} else {
		fmt.Fprintln(tw, "tenant\tjobs\tok\tfailed\titers\tchunks")
		for _, tn := range tenants {
			ts := sums[tn]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
				tn, ts.jobs, ts.ok, ts.failed, ts.iters, ts.chunks)
		}
	}
	tw.Flush()
	return nil
}
