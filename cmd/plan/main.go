// Command plan answers "which scheme should I run on *my* cluster for
// *my* loop?": it simulates every candidate on a user-supplied cluster
// description and cost profile, then ranks them.
//
//	plan -cluster configs/loaded-evening.json -costs profile.csv
//	plan -cluster configs/paper-testbed.json            # mandelbrot default
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"loopsched"
	"loopsched/internal/sweep"
)

func main() {
	var (
		clusterFile = flag.String("cluster", "", "JSON cluster description (required)")
		costsFile   = flag.String("costs", "", "iteration,cost CSV (default: 1000-column Mandelbrot)")
		schemes     = flag.String("schemes", "TSS,FSS,FISS,TFSS,WF,DTSS,DFSS,DFISS,DTFSS,AWF,TreeS,AFS", "candidates")
		baseRate    = flag.Float64("baserate", 1.2e6, "power-1 throughput in cost units per second")
		bytesPerIt  = flag.Float64("bytes", 4096, "result payload per iteration")
	)
	flag.Parse()

	if *clusterFile == "" {
		fail(fmt.Errorf("-cluster is required (see configs/ for samples)"))
	}
	f, err := os.Open(*clusterFile)
	if err != nil {
		fail(err)
	}
	cluster, err := loopsched.ReadCluster(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	var w loopsched.Workload
	if *costsFile != "" {
		cf, err := os.Open(*costsFile)
		if err != nil {
			fail(err)
		}
		w, err = loopsched.ReadCosts(cf, *costsFile)
		cf.Close()
		if err != nil {
			fail(err)
		}
	} else {
		w = loopsched.Reorder(loopsched.MandelbrotWorkload(loopsched.MandelbrotParams{
			Region: loopsched.PaperRegion, Width: 1000, Height: 500, MaxIter: 160,
		}), 4)
	}

	params := loopsched.SimParams{BaseRate: *baseRate, BytesPerIter: *bytesPerIt}
	recs, err := sweep.Recommend(cluster, strings.Split(*schemes, ","), w, params)
	if err != nil {
		fail(err)
	}

	fmt.Printf("ranking %d schemes on %d machines over %d iterations:\n\n",
		len(recs), len(cluster.Machines), w.Len())
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tscheme\tTp(s)\tvs best\tchunks\timbalance")
	for i, r := range recs {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%+.1f%%\t%d\t%.2f\n",
			i+1, r.Scheme, r.Tp, 100*(r.Tp/recs[0].Tp-1), r.Chunks, r.Imbalance)
	}
	tw.Flush()
	fmt.Printf("\nrecommendation: %s\n", recs[0].Scheme)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "plan:", err)
	os.Exit(1)
}
