// Command escapecheck cross-checks the hotalloc analyzer against the
// compiler's own escape analysis. It finds every package with
// //lint:loopsched-hotpath annotations, compiles them with
// -gcflags=-m, and fails if the compiler reports a heap allocation
// ("escapes to heap" / "moved to heap") inside an annotated function's
// span that neither a //lint:loopsched-ignore hotalloc directive nor
// the cold-error exemption (a line calling fmt.Errorf or errors.New)
// accounts for. Together with `loopschedlint` exiting clean, a clean
// escapecheck run means the analyzer and the compiler agree on every
// annotated hot path: no allocation the analyzer models is missing
// from the binary, and none the binary performs evades the analyzer.
//
// The go build cache replays compile diagnostics, so repeat runs are
// cheap; no -a rebuild is needed.
//
//	escapecheck [-root dir] [-v]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"loopsched/internal/hotpath"
)

var (
	rootDir = flag.String("root", ".", "module root to scan for annotated packages")
	verbose = flag.Bool("v", false, "list every annotated function and its verdict")
)

// span is one annotated function's file region.
type span struct {
	name       string
	line, last int
}

// escapeLine matches the compiler's allocation diagnostics. Parameter
// leak notes ("leaking param") describe flow, not an allocation, and
// are excluded by construction.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

func main() {
	flag.Parse()
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	pkgs, spans, err := annotatedPackages(*rootDir)
	if err != nil {
		return 1, err
	}
	if len(pkgs) == 0 {
		return 1, fmt.Errorf("no //lint:%s annotations under %s", hotpath.Directive, *rootDir)
	}
	if *verbose {
		for _, file := range sortedKeys(spans) {
			for _, s := range spans[file] {
				fmt.Printf("# %s:%d %s\n", file, s.line, s.name)
			}
		}
	}

	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = *rootDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 1, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}

	var bad []string
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		file, msg := m[1], m[3]
		line, _ := strconv.Atoi(m[2])
		fn := inSpan(spans[file], line)
		if fn == "" {
			continue // allocation outside every annotated hot path
		}
		why, allowed := allowedAt(filepath.Join(*rootDir, file), line)
		if allowed {
			if *verbose {
				fmt.Printf("ok   %s:%d (%s): %s [%s]\n", file, line, fn, msg, why)
			}
			continue
		}
		bad = append(bad, fmt.Sprintf("%s:%d: hot path %s: %s (compiler escape analysis; hotalloc saw no finding here — annotate with //lint:loopsched-ignore hotalloc <reason> if intended, else remove the allocation)", file, line, fn, msg))
	}

	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		return 2, nil
	}
	fmt.Printf("escapecheck: %d packages, analyzer and compiler agree on every annotated hot path\n", len(pkgs))
	return 0, nil
}

// annotatedPackages walks the module for package directories holding
// hot-path annotations, returning their ./-relative import patterns
// and, per root-relative file path, the annotated spans.
func annotatedPackages(root string) ([]string, map[string][]span, error) {
	var pkgs []string
	spans := map[string][]span{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || name == "bin" || (strings.HasPrefix(name, ".") && path != root) {
			return filepath.SkipDir
		}
		funcs, err := hotpath.Annotated(path)
		if err != nil || len(funcs) == 0 {
			return nil // a dir without .go files errors; either way skip
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, "./"+filepath.ToSlash(rel))
		for _, fn := range funcs {
			file, err := filepath.Rel(root, fn.File)
			if err != nil {
				return err
			}
			file = filepath.ToSlash(file)
			spans[file] = append(spans[file], span{name: fn.Name, line: fn.Line, last: fn.EndLine})
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(pkgs)
	return pkgs, spans, nil
}

// inSpan returns the annotated function containing line, or "".
func inSpan(spans []span, line int) string {
	for _, s := range spans {
		if s.line <= line && line <= s.last {
			return s.name
		}
	}
	return ""
}

// allowedAt reports whether an in-span allocation at file:line is
// accounted for: a //lint:loopsched-ignore hotalloc directive on the
// line or the line above (the analyzer's own suppression scope), or a
// cold error construction (fmt.Errorf / errors.New), which hotalloc
// exempts when it feeds a return or panic.
func allowedAt(file string, line int) (string, bool) {
	lines, err := fileLines(file)
	if err != nil || line < 1 || line > len(lines) {
		return "", false
	}
	text := lines[line-1]
	if strings.Contains(text, "fmt.Errorf") || strings.Contains(text, "errors.New") {
		return "cold error path", true
	}
	for _, l := range []int{line, line - 1} {
		if l >= 1 && ignoresHotalloc(lines[l-1]) {
			return "loopsched-ignore directive", true
		}
	}
	return "", false
}

// ignoresHotalloc matches the analyzer's directive grammar: the
// hotalloc (or all) analyzer name right after //lint:loopsched-ignore.
func ignoresHotalloc(text string) bool {
	i := strings.Index(text, "//lint:loopsched-ignore")
	if i < 0 {
		return false
	}
	rest := strings.Fields(text[i+len("//lint:loopsched-ignore"):])
	return len(rest) > 0 && (rest[0] == "hotalloc" || rest[0] == "all")
}

var lineCache = map[string][]string{}

func fileLines(path string) ([]string, error) {
	if l, ok := lineCache[path]; ok {
		return l, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	l := strings.Split(string(data), "\n")
	lineCache[path] = l
	return l, nil
}

func sortedKeys(m map[string][]span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
