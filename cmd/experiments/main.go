// Command experiments regenerates every table and figure of the
// paper's evaluation on the simulated cluster and writes them to
// stdout (or a results directory with -out).
//
//	experiments                 # everything, paper scale
//	experiments -run table2     # one artefact
//	experiments -small          # fast, scaled-down configuration
//	experiments -out results/   # also write one file per artefact
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"loopsched/internal/experiments"
	"loopsched/internal/metrics"
	"loopsched/internal/report"
	"loopsched/internal/viz"
)

func main() {
	var (
		run   = flag.String("run", "all", "artefact: table1, table2, table3, fig1, fig4, fig5, fig6, fig7, scaling, overlap, hierarchy, telemetry, all")
		small = flag.Bool("small", false, "use the scaled-down test configuration")
		plot  = flag.Bool("plot", false, "render figures as terminal charts too")
		out   = flag.String("out", "", "directory to write per-artefact text files into")
		svg   = flag.String("svg", "", "directory to render figure SVGs into")
		html  = flag.String("html", "", "write a self-contained HTML reproduction report")
		save  = flag.String("save-baseline", "", "collect all numbers and write a JSON baseline")
		check = flag.String("check-baseline", "", "compare against a saved baseline; non-zero exit on drift")
		tol   = flag.Float64("tolerance", 0.02, "relative tolerance for -check-baseline")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *small {
		cfg = experiments.Small()
	}

	if *save != "" || *check != "" {
		label := "default"
		if *small {
			label = "small"
		}
		b, err := report.Collect(cfg, label)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *save != "" {
			if err := b.Save(*save); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("saved %d metrics to %s\n", len(b.Metrics), *save)
		}
		if *check != "" {
			base, err := report.Load(*check)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			diffs := report.Compare(base, b, *tol)
			if len(diffs) > 0 {
				fmt.Print(report.Format(diffs))
				os.Exit(1)
			}
			fmt.Printf("all %d metrics within %.0f%% of %s\n", len(base.Metrics), 100**tol, *check)
		}
		return
	}

	if *svg != "" {
		if err := renderSVGs(cfg, *svg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *html != "" {
		label := "default"
		if *small {
			label = "small"
		}
		f, err := os.Create(*html)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.HTML(f, cfg, label); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *html)
		return
	}

	artefacts := []string{"table1", "table2", "table3", "fig1", "fig4", "fig5", "fig6", "fig7", "scaling", "overlap", "hierarchy", "telemetry"}
	if *run != "all" {
		artefacts = []string{*run}
	}

	// One broken artefact must not hide the rest: produce everything,
	// then exit non-zero naming every failure.
	var failed []string
	fail := func(a string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", a, err)
		failed = append(failed, a)
	}
	for _, a := range artefacts {
		text, extras, err := produce(a, cfg, *plot)
		if err != nil {
			fail(a, err)
			continue
		}
		fmt.Println(text)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fail(a, err)
				continue
			}
			files := append([]extraFile{{name: a + ".txt", data: []byte(text + "\n")}}, extras...)
			for _, f := range files {
				if err := os.WriteFile(filepath.Join(*out, f.name), f.data, 0o644); err != nil {
					fail(a, err)
					break
				}
			}
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d artefact(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// extraFile is a non-text companion artefact (e.g. the hierarchy
// study's machine-readable JSON), written next to the .txt when -out
// is set.
type extraFile struct {
	name string
	data []byte
}

// renderSVGs writes Figure 1, Figures 4-7 and the scaling study as
// standalone SVG files.
func renderSVGs(cfg experiments.Config, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, svgText string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svgText), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	orig, reord := experiments.Figure1(cfg)
	if err := write("fig1.svg", viz.ProfileSVG(
		"Figure 1: Mandelbrot per-column cost", map[string][]float64{
			"original":  orig,
			"reordered": reord,
		})); err != nil {
		return err
	}
	for _, num := range []int{4, 5, 6, 7} {
		f, err := experiments.Figure(num, cfg)
		if err != nil {
			return err
		}
		if err := write(fmt.Sprintf("fig%d.svg", num), viz.SpeedupSVG(f.Title, f.Curves)); err != nil {
			return err
		}
	}
	f, err := experiments.ScalingStudy(cfg, experiments.DistributedSchemes(), nil)
	if err != nil {
		return err
	}
	return write("scaling.svg", viz.SpeedupSVG(f.Title, f.Curves))
}

func produce(name string, cfg experiments.Config, plot bool) (string, []extraFile, error) {
	switch name {
	case "table1":
		return experiments.Table1(), nil, nil
	case "table2":
		t, err := experiments.Table2(cfg)
		if err != nil {
			return "", nil, err
		}
		return t.Format(), nil, nil
	case "table3":
		t, err := experiments.Table3(cfg)
		if err != nil {
			return "", nil, err
		}
		return t.Format(), nil, nil
	case "fig1":
		orig, reord := experiments.Figure1(cfg)
		var sb strings.Builder
		sb.WriteString("Figure 1: Mandelbrot per-column cost (original, reordered Sf=4)\n")
		if plot {
			fmt.Fprintf(&sb, "original : %s\n", metrics.Sparkline(orig, 100))
			fmt.Fprintf(&sb, "reordered: %s\n", metrics.Sparkline(reord, 100))
			return sb.String(), nil, nil
		}
		sb.WriteString("column\toriginal\treordered\n")
		for i := range orig {
			fmt.Fprintf(&sb, "%d\t%.0f\t%.0f\n", i, orig[i], reord[i])
		}
		return sb.String(), nil, nil
	case "fig4", "fig5", "fig6", "fig7":
		num := int(name[3] - '0')
		f, err := experiments.Figure(num, cfg)
		if err != nil {
			return "", nil, err
		}
		text := f.Format()
		if plot {
			text += "\n" + metrics.PlotSpeedups(f.Title, f.Curves, 14)
		}
		return text, nil, nil
	case "scaling":
		f, err := experiments.ScalingStudy(cfg, experiments.DistributedSchemes(), nil)
		if err != nil {
			return "", nil, err
		}
		text := f.Format()
		if plot {
			text += "\n" + metrics.PlotSpeedups(f.Title, f.Curves, 14)
		}
		return text, nil, nil
	case "overlap":
		res, err := experiments.Overlap(cfg)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatOverlap(res), nil, nil
	case "hierarchy":
		res, err := experiments.Hierarchy(cfg, nil)
		if err != nil {
			return "", nil, err
		}
		js, err := res.JSON()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatHierarchy(res), []extraFile{{name: "hierarchy.json", data: js}}, nil
	case "telemetry":
		res, err := experiments.Telemetry(cfg)
		if err != nil {
			return "", nil, err
		}
		// The Perfetto document is deterministic (virtual-time events
		// from the simulator); CI uploads it as a browsable artefact,
		// with the flight-recorder dump and histogram snapshot beside it.
		return experiments.FormatTelemetry(res),
			[]extraFile{
				{name: "telemetry.perfetto.json", data: res.Perfetto},
				{name: "telemetry.flight.json", data: res.Flight},
				{name: "telemetry.hist.json", data: res.Histograms},
			}, nil
	default:
		return "", nil, fmt.Errorf("unknown artefact %q", name)
	}
}
