// Command sweep runs a scheme × worker-count × mode × workload matrix
// on the simulated heterogeneous cluster and summarises who wins
// where — the broad comparison the paper's evaluation samples.
//
//	sweep                                   # default matrix
//	sweep -schemes TSS,DTSS,TreeS -p 2,4,8
//	sweep -csv results.csv                  # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"loopsched/internal/experiments"
	"loopsched/internal/sweep"
	"loopsched/internal/workload"
)

func main() {
	var (
		schemes = flag.String("schemes", "TSS,FSS,FISS,TFSS,DTSS,DFSS,DFISS,DTFSS,TreeS", "comma-separated scheme names")
		workers = flag.String("p", "2,4,8", "comma-separated worker counts")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
		width   = flag.Int("width", 1000, "mandelbrot window width")
		height  = flag.Int("height", 500, "mandelbrot window height")
		trials  = flag.Int("trials", 0, "repeat over N random-workload trials and report confidence intervals")
	)
	flag.Parse()

	ps, err := parseInts(*workers)
	if err != nil {
		fail(err)
	}

	cfg := experiments.Default()
	cfg.Width, cfg.Height = *width, *height
	mandel := cfg.Workload()

	sweepCfg := sweep.Config{
		Schemes: strings.Split(*schemes, ","),
		Workers: ps,
		Modes:   []bool{false, true},
		Workloads: []sweep.NamedWorkload{
			{Name: "mandelbrot", W: mandel},
			{Name: "uniform", W: workload.Uniform{N: cfg.Width, C: workload.TotalCost(mandel) / float64(cfg.Width)}},
			{Name: "random", W: workload.NewRandom(cfg.Width, 10, 1, 1)},
		},
		Params: cfg.SimParams(),
	}

	if *trials > 0 {
		gen := func(trial int) []sweep.NamedWorkload {
			return []sweep.NamedWorkload{
				{Name: "random", W: workload.NewRandom(cfg.Width, 10, 1, int64(trial))},
			}
		}
		summaries, err := sweep.RunTrials(sweepCfg, gen, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Print(sweep.FormatTrials(summaries))
		return
	}

	results, err := sweep.Run(sweepCfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(sweep.FormatTable(results))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := sweep.WriteCSV(f, results); err != nil {
			fail(err)
		}
		fmt.Println("\nwrote", *csvPath)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
