// Command master runs the scheduling master of a real distributed
// Mandelbrot render: workers (cmd/worker) connect over TCP from any
// machine, request columns under the chosen self-scheduling scheme,
// and piggy-back their pixels; the master assembles the PNG.
//
//	master -listen :7000 -workers 4 -scheme DTSS -o farm.png
//	worker -master host:7000 -id 0 &
//	worker -master host:7000 -id 1 -power 1 -scale 3 &
//	...
package main

import (
	"flag"
	"fmt"
	"image/png"
	"net"
	"os"
	"time"

	"loopsched"
	"loopsched/internal/exec"
)

func main() {
	var (
		listen     = flag.String("listen", ":7000", "TCP address to accept workers on")
		workers    = flag.Int("workers", 4, "number of workers that will join")
		schemeName = flag.String("scheme", "DTSS", "self-scheduling scheme")
		out        = flag.String("o", "farm.png", "output PNG")
		width      = flag.Int("width", 1200, "image width (columns = iterations)")
		height     = flag.Int("height", 900, "image height")
		maxIter    = flag.Int("maxiter", 200, "escape-time bound")
		timeout    = flag.Duration("worker-timeout", 60*time.Second, "fail workers silent this long (0 = never)")
	)
	flag.Parse()

	scheme, err := loopsched.LookupScheme(*schemeName)
	if err != nil {
		fail(err)
	}
	// Real multi-machine deployments are the one place the manual
	// master wiring is still the right tool (the public NewMaster
	// wrapper is deprecated in favour of Run/NewScheduler, which
	// self-host their fleets in-process).
	master, err := exec.NewMaster(scheme, *width, *workers)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	defer master.Shutdown(ln)
	if err := master.Serve(ln); err != nil {
		fail(err)
	}
	fmt.Printf("master: %s on %s, waiting for %d workers (%dx%d)\n",
		scheme.Name(), ln.Addr(), *workers, *width, *height)

	var watchDone chan struct{}
	if *timeout > 0 {
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			// Returns when the run's done channel closes, so the join
			// below cannot outlast Wait by more than an instant.
			master.WatchTimeouts(*timeout/4, *timeout, nil)
		}()
	}

	columns, rep, err := master.Wait()
	if watchDone != nil {
		<-watchDone
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("master: %d columns in %d chunks, %.2fs, %d replans\n",
		rep.Iterations, rep.Chunks, rep.Tp, rep.Replans)
	fmt.Printf("master: mean per-PE comm %.2fs, wait %.2fs, idle %.2fs\n",
		rep.MeanComm(), rep.MeanWait(), rep.MeanIdle())

	p := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: *width, Height: *height, MaxIter: *maxIter,
	}
	img := loopsched.AssembleMandelbrot(p, columns)
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		fail(err)
	}
	fmt.Println("master: wrote", *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "master:", err)
	os.Exit(1)
}
