# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race fuzz bench experiments baseline check-baseline clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exec/ ./internal/mp/ .

fuzz:
	$(GO) test -fuzz FuzzSchemeCoverage -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzWeightedCoverage -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzDecodeRequest -fuzztime 30s ./internal/mp/

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments

baseline:
	$(GO) run ./cmd/experiments -save-baseline results/baseline-default.json

check-baseline:
	$(GO) run ./cmd/experiments -check-baseline results/baseline-default.json

clean:
	$(GO) clean -testcache
