# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Pinned tool versions, so CI and local runs install identical bits.
# They live here rather than in a tools.go: the module graph must stay
# buildable offline, so tool dependencies cannot enter go.mod/go.sum.
# XTOOLS_VERSION is the golang.org/x/tools release to adopt if
# internal/lint ever migrates from its stdlib-only go/analysis clone to
# the upstream framework (see docs/LINTING.md).
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3
XTOOLS_VERSION      ?= v0.24.0

LINT_TOOL := bin/loopschedlint

.PHONY: all build vet test race fuzz bench bench-json experiments baseline check-baseline clean \
	lint lint-tool lint-json lint-diff escape-check fmt-check staticcheck govulncheck

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint-tool builds the domain linter and prints its absolute path, for
# use as `go vet -vettool=$$(make -s lint-tool) ./...`.
lint-tool:
	@$(GO) build -o $(LINT_TOOL) ./cmd/loopschedlint
	@echo $(abspath $(LINT_TOOL))

# lint runs the loopsched analyzer suite (docs/LINTING.md) through the
# go vet driver, which caches per-package results.
lint:
	$(GO) build -o $(LINT_TOOL) ./cmd/loopschedlint
	$(GO) vet -vettool=$(abspath $(LINT_TOOL)) ./...

# lint-json writes machine-readable diagnostics to lint-report.json
# (uploaded as a CI artifact); it reports but never fails.
lint-json:
	$(GO) build -o $(LINT_TOOL) ./cmd/loopschedlint
	./$(LINT_TOOL) -json ./... > lint-report.json || true
	@cat lint-report.json

# lint-diff is the CI gate: it fails only on findings not recorded in
# the checked-in baseline (lint-baseline.json, kept empty — fix or
# suppress findings rather than baselining them), and writes both the
# JSON and SARIF artifacts CI uploads either way.
lint-diff:
	$(GO) build -o $(LINT_TOOL) ./cmd/loopschedlint
	./$(LINT_TOOL) -json -sarif lint-report.sarif -baseline lint-baseline.json ./... > lint-report.json

# escape-check cross-checks the hotalloc analyzer against the
# compiler's own escape analysis (-gcflags=-m) on every
# //lint:loopsched-hotpath function; see cmd/escapecheck.
escape-check:
	$(GO) run ./cmd/escapecheck

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...

govulncheck:
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	govulncheck ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/exec/ ./internal/steal/ ./internal/mp/ ./internal/hier/ ./internal/telemetry/ ./internal/service/ .

fuzz:
	$(GO) test -fuzz FuzzSchemeCoverage -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzWeightedCoverage -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzDecodeRequest -fuzztime 30s ./internal/mp/
	$(GO) test -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire/

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the protocol benchmark matrices and writes both the
# raw benchstat-compatible text and the parsed JSON artifacts that CI
# archives: the wire protocol (gob vs binary × credit window,
# docs/PROTOCOL.md → BENCH_wire.json), the local engines (channel
# master vs work-stealing deques × worker count, docs/LOCAL.md →
# BENCH_local.json), the multi-tenant scheduler daemon (job
# streams × fleet/tenant mix, docs/SERVICE.md → BENCH_service.json
# with jobs/s and chunks/s), and the scheduling-step ledger (in-process
# fetch-add contention plus master-path vs one-sided loopback,
# docs/LEDGER.md → BENCH_ledger.json).
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench BenchmarkRPCPipeline -benchmem -count=1 . | tee bench_wire.txt
	./bin/benchjson -only BenchmarkRPCPipeline -o BENCH_wire.json < bench_wire.txt
	$(GO) test -run '^$$' -bench BenchmarkLocalEngine -benchmem -count=1 . | tee bench_local.txt
	./bin/benchjson -only BenchmarkLocalEngine -o BENCH_local.json < bench_local.txt
	$(GO) test -run '^$$' -bench BenchmarkScheduler -benchmem -count=1 . | tee bench_service.txt
	./bin/benchjson -only BenchmarkScheduler -o BENCH_service.json < bench_service.txt
	$(GO) test -run '^$$' -bench BenchmarkLedger -benchmem -count=1 . | tee bench_ledger.txt
	./bin/benchjson -only BenchmarkLedger -o BENCH_ledger.json < bench_ledger.txt

experiments:
	$(GO) run ./cmd/experiments

baseline:
	$(GO) run ./cmd/experiments -save-baseline results/baseline-default.json

check-baseline:
	$(GO) run ./cmd/experiments -check-baseline results/baseline-default.json

clean:
	$(GO) clean -testcache
