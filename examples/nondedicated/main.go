// Nondedicated: what happens when someone logs into your cluster
// mid-run and starts a heavy job (the paper's motivating scenario for
// the distributed schemes and the DTSS step-2(c) re-plan).
//
// A load spike hits three of eight slaves one third of the way into
// the run. Simple TSS keeps feeding the overloaded machines
// full-size chunks; DTSS notices the ACP drop on the next requests,
// re-plans, and routes work to the machines that still have cycles.
//
// Run with: go run ./examples/nondedicated
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"loopsched"
)

func main() {
	w := loopsched.Reorder(loopsched.MandelbrotWorkload(loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: 1000, Height: 500, MaxIter: 160,
	}), 4)
	params := loopsched.SimParams{BaseRate: 3e5, BytesPerIter: 1000}

	// Build the paper's 8-slave mix, then script a mid-run spike: at
	// t = 2 s, two external processes land on five of the eight
	// slaves and never leave. Five of eight is a majority, so the
	// distributed masters re-plan (DTSS step 2(c)).
	spiked := loopsched.PaperCluster(8, false)
	for _, idx := range []int{0, 1, 4, 5, 6} {
		spiked.Machines[idx].Load = loopsched.LoadScript{
			{Start: 2, End: math.Inf(1), Extra: 2},
		}
	}

	fmt.Println("load spike on PEs 1, 2, 5, 6, 7 at t=2s; 1000 Mandelbrot columns")
	fmt.Printf("%-6s %8s %8s %8s %9s\n", "scheme", "Tp(s)", "chunks", "replans", "imbalance")
	for _, s := range []loopsched.Scheme{
		loopsched.NewTSS(),
		loopsched.NewTFSS(),
		loopsched.NewWF(),   // knows powers, blind to load
		loopsched.NewDTSS(), // adapts
		loopsched.NewDFISS(0),
	} {
		rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
			Backend: loopsched.BackendSim,
			Scheme:  s, Workload: w,
			Cluster: spiked, Sim: params,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %8.2f %8d %8d %9.2f\n",
			rep.Scheme, rep.Tp, rep.Chunks, rep.Replans, rep.CompImbalance())
	}

	fmt.Println("\nThe distributed schemes (DTSS, DFISS) re-plan when a majority")
	fmt.Println("of the reported ACPs change, so the spike costs them far less.")
}
