// Shootout: every self-scheduling scheme races on the real net/rpc
// runtime — same Mandelbrot job, same four TCP workers (two of them
// emulated 3× slower), one row per scheme. The results are verified
// bit-identical across schemes before the table prints, demonstrating
// that scheduling only changes *when* work happens, never *what* is
// computed.
//
// Run with: go run ./examples/shootout
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"loopsched"
)

const (
	width   = 400
	height  = 300
	maxIter = 200
	workers = 4
)

func main() {
	params := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: width, Height: height, MaxIter: maxIter,
	}
	kernel := func(col int) []byte {
		rows, _ := loopsched.MandelbrotColumn(params, col)
		buf := make([]byte, 2*len(rows))
		for r, n := range rows {
			buf[2*r] = byte(n)
			buf[2*r+1] = byte(n >> 8)
		}
		return buf
	}

	schemes := []string{"SS", "CSS(16)", "GSS", "TSS", "FSS", "FISS", "TFSS", "WF",
		"DTSS", "DFSS", "DFISS", "DTFSS", "DGSS", "DCSS(16)"}

	type row struct {
		name   string
		tp     float64
		chunks int
	}
	var rows []row
	var reference [][]byte

	for _, name := range schemes {
		scheme, err := loopsched.LookupScheme(name)
		if err != nil {
			log.Fatal(err)
		}
		results, rep := race(scheme, kernel)
		if reference == nil {
			reference = results
		} else {
			for c := range results {
				if !bytes.Equal(results[c], reference[c]) {
					log.Fatalf("%s: column %d differs from reference!", name, c)
				}
			}
		}
		rows = append(rows, row{name: name, tp: rep.Tp, chunks: rep.Chunks})
	}

	sort.SliceStable(rows, func(i, j int) bool { return rows[i].tp < rows[j].tp })
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\twall(s)\tchunks\tmsgs/column")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3f\n", r.name, r.tp, r.chunks,
			float64(r.chunks)/float64(width))
	}
	tw.Flush()
	fmt.Printf("\nall %d schemes produced bit-identical results over real TCP\n", len(schemes))
	fmt.Println("(wall times on shared CPUs are noisy; the chunk counts are the")
	fmt.Println(" schemes' signature: SS pays one RPC per column, TSS/TFSS ~20 total)")
}

// race runs one scheme over a fresh self-hosted TCP master — Run wires
// the loopback listener and the worker connections — and returns its
// results and report. The workers live in this process, so the kernel
// parks each column locally on its way onto the wire.
func race(scheme loopsched.Scheme, kernel loopsched.Kernel) ([][]byte, loopsched.Report) {
	results := make([][]byte, width)
	specs := make([]*loopsched.WorkerSpec, workers)
	for id := range specs {
		specs[id] = &loopsched.WorkerSpec{WorkScale: 1}
		if id >= workers/2 {
			specs[id].WorkScale = 3
		}
	}
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Backend:  loopsched.BackendRPC,
		Scheme:   scheme,
		Workload: loopsched.Uniform{N: width},
		Workers:  specs,
		Kernel: func(col int) []byte {
			buf := kernel(col)
			results[col] = buf
			return buf
		},
		ACP: loopsched.ACPModel{Scale: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	return results, rep
}
