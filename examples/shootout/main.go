// Shootout: every self-scheduling scheme races on the real net/rpc
// runtime — same Mandelbrot job, same four TCP workers (two of them
// emulated 3× slower), one row per scheme. The results are verified
// bit-identical across schemes before the table prints, demonstrating
// that scheduling only changes *when* work happens, never *what* is
// computed.
//
// Run with: go run ./examples/shootout
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"text/tabwriter"

	"loopsched"
)

const (
	width   = 400
	height  = 300
	maxIter = 200
	workers = 4
)

func main() {
	params := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: width, Height: height, MaxIter: maxIter,
	}
	kernel := func(col int) []byte {
		rows, _ := loopsched.MandelbrotColumn(params, col)
		buf := make([]byte, 2*len(rows))
		for r, n := range rows {
			buf[2*r] = byte(n)
			buf[2*r+1] = byte(n >> 8)
		}
		return buf
	}

	schemes := []string{"SS", "CSS(16)", "GSS", "TSS", "FSS", "FISS", "TFSS", "WF",
		"DTSS", "DFSS", "DFISS", "DTFSS", "DGSS", "DCSS(16)"}

	type row struct {
		name   string
		tp     float64
		chunks int
	}
	var rows []row
	var reference [][]byte

	for _, name := range schemes {
		scheme, err := loopsched.LookupScheme(name)
		if err != nil {
			log.Fatal(err)
		}
		results, rep := race(scheme, kernel)
		if reference == nil {
			reference = results
		} else {
			for c := range results {
				if !bytes.Equal(results[c], reference[c]) {
					log.Fatalf("%s: column %d differs from reference!", name, c)
				}
			}
		}
		rows = append(rows, row{name: name, tp: rep.Tp, chunks: rep.Chunks})
	}

	sort.SliceStable(rows, func(i, j int) bool { return rows[i].tp < rows[j].tp })
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\twall(s)\tchunks\tmsgs/column")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3f\n", r.name, r.tp, r.chunks,
			float64(r.chunks)/float64(width))
	}
	tw.Flush()
	fmt.Printf("\nall %d schemes produced bit-identical results over real TCP\n", len(schemes))
	fmt.Println("(wall times on shared CPUs are noisy; the chunk counts are the")
	fmt.Println(" schemes' signature: SS pays one RPC per column, TSS/TFSS ~20 total)")
}

// race runs one scheme over a fresh TCP master and returns its results
// and report.
func race(scheme loopsched.Scheme, kernel loopsched.Kernel) ([][]byte, loopsched.Report) {
	master, err := loopsched.NewMaster(scheme, width, workers)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	if err := master.Serve(l); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		w := loopsched.Worker{
			ID:           id,
			Kernel:       kernel,
			VirtualPower: 3,
			ACPModel:     loopsched.ACPModel{Scale: 10},
		}
		if id >= workers/2 {
			w.VirtualPower = 1
			w.WorkScale = 3
		}
		wg.Add(1)
		go func(w loopsched.Worker) {
			defer wg.Done()
			if err := w.Run(l.Addr().String()); err != nil {
				log.Printf("worker %d: %v", w.ID, err)
			}
		}(w)
	}
	results, rep, err := master.Wait()
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	return results, rep
}
