// Quickstart: the public API in five minutes.
//
//  1. Pick a scheme and look at the chunk sizes it would emit.
//  2. Run a real parallel loop with goroutine workers.
//  3. Run the same loop on the simulated heterogeneous cluster and
//     compare a simple scheme against its distributed version.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"loopsched"
)

func main() {
	// --- 1. Chunk sequences (the paper's Table 1 view) ---------------
	for _, s := range []loopsched.Scheme{
		loopsched.NewGSS(0), loopsched.NewTSS(), loopsched.NewFSS(), loopsched.NewTFSS(),
	} {
		seq, err := loopsched.ChunkSequence(s, 1000, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %d chunks, first five %v\n", s.Name(), len(seq), seq[:5])
	}

	// --- 2. A real parallel loop ------------------------------------
	// Sum f(i) over 100k iterations with four workers, one of which is
	// emulated 3× slower. The scheme decides who gets how much.
	const n = 100_000
	var sum atomic.Int64
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Backend:  loopsched.BackendLocal,
		Scheme:   loopsched.NewTFSS(),
		Workload: loopsched.Uniform{N: n},
		Workers: []*loopsched.WorkerSpec{
			{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1}, {WorkScale: 3},
		},
		Body: func(i int) { sum.Add(int64(i % 7)) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal run: %s scheduled %d iterations in %d chunks\n",
		rep.Scheme, rep.Iterations, rep.Chunks)

	// --- 3. Simulated heterogeneous cluster -------------------------
	// The paper's 8-slave testbed (3 fast + 5 slow), non-dedicated.
	cluster := loopsched.PaperCluster(8, true)
	w := loopsched.Reorder(loopsched.MandelbrotWorkload(loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: 800, Height: 400, MaxIter: 160,
	}), 4)
	params := loopsched.SimParams{BaseRate: 2.4e5, BytesPerIter: 800}

	for _, s := range []loopsched.Scheme{loopsched.NewTSS(), loopsched.NewDTSS()} {
		r, err := loopsched.Run(context.Background(), loopsched.RunSpec{
			Backend: loopsched.BackendSim,
			Scheme:  s, Workload: w,
			Cluster: cluster, Sim: params,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s Tp=%6.2fs  comp-imbalance=%.2f  replans=%d\n",
			r.Scheme, r.Tp, r.CompImbalance(), r.Replans)
	}
	fmt.Println("\nDTSS finishes sooner because it sizes chunks by each")
	fmt.Println("slave's available computing power (V_i / run-queue).")
}
