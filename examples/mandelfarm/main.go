// Mandelfarm: the paper's experiment for real — a master and slave
// workers speaking net/rpc over TCP render the Mandelbrot set, one
// image column per loop iteration, with results piggy-backed on each
// work request exactly as section 5 describes. Heterogeneity is
// emulated by giving some workers a WorkScale (they redo each column,
// like a 166 MHz UltraSPARC 1 next to a 440 MHz UltraSPARC 10).
//
// Run with: go run ./examples/mandelfarm [-scheme DTSS] [-o farm.png]
package main

import (
	"context"
	"flag"
	"fmt"
	"image"
	"image/png"
	"log"
	"os"

	"loopsched"
)

func main() {
	var (
		schemeName = flag.String("scheme", "DTSS", "self-scheduling scheme")
		out        = flag.String("o", "mandelfarm.png", "output PNG")
		width      = flag.Int("width", 600, "image width (columns = loop iterations)")
		height     = flag.Int("height", 400, "image height")
		maxIter    = flag.Int("maxiter", 160, "escape-time bound")
	)
	flag.Parse()

	scheme, err := loopsched.LookupScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	params := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: *width, Height: *height, MaxIter: *maxIter,
	}

	// The kernel computes one column and serialises it as bytes — the
	// payload that rides back to the master on the next request. The
	// run self-hosts master and workers in one process, so the kernel
	// also parks each column locally for the final assembly.
	columns := make([][]byte, *width)
	kernel := func(col int) []byte {
		rows, _ := loopsched.MandelbrotColumn(params, col)
		buf := make([]byte, len(rows))
		for r, n := range rows {
			buf[r] = shade(n, *maxIter)
		}
		columns[col] = buf
		return buf
	}

	// Four slaves over real loopback TCP: two fast, two emulated 3×
	// slower. Run self-hosts the master on an ephemeral port and wires
	// one RPC connection per worker.
	const workers = 4
	fmt.Printf("rendering under %s with %d net/rpc workers\n", scheme.Name(), workers)
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Backend:  loopsched.BackendRPC,
		Scheme:   scheme,
		Workload: loopsched.Uniform{N: *width},
		Workers: []*loopsched.WorkerSpec{
			{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 3}, {WorkScale: 3},
		},
		Kernel: kernel,
		ACP:    loopsched.ACPModel{Scale: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d columns in %d chunks, %.3fs wall, %d replans\n",
		rep.Iterations, rep.Chunks, rep.Tp, rep.Replans)

	// Assemble the image from the collected columns.
	img := image.NewGray(image.Rect(0, 0, *width, *height))
	for c, data := range columns {
		for r, v := range data {
			img.Pix[r*img.Stride+c] = v
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *out)
}

func shade(n, maxIter int) byte {
	if n >= maxIter {
		return 0
	}
	return byte(255 - 200*n/maxIter)
}
