// Loopstyles: every section-2.1 loop style under every scheme — a
// scheduling-behaviour atlas. For each (workload, scheme) pair the
// simulated heterogeneous cluster reports the parallel time, so you
// can see which schemes tolerate which cost distributions, and what
// the sampling reorder buys on irregular loops.
//
// Run with: go run ./examples/loopstyles
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"loopsched"
)

func main() {
	const n = 2000
	mandel := loopsched.MandelbrotWorkload(loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: n, Height: 200, MaxIter: 160,
	})
	workloads := []loopsched.Workload{
		loopsched.Uniform{N: n},
		loopsched.LinearIncreasing{N: n},
		loopsched.LinearDecreasing{N: n},
		loopsched.NewConditional(n, 0.2, 20, 1, 42),
		mandel,
		loopsched.Reorder(mandel, 4),
	}
	schemes := []loopsched.Scheme{
		loopsched.NewSS(),
		loopsched.NewCSS(n / 32),
		loopsched.NewGSS(0),
		loopsched.NewTSS(),
		loopsched.NewFSS(),
		loopsched.NewFISS(0),
		loopsched.NewTFSS(),
		loopsched.NewDTSS(),
		loopsched.NewDTFSS(),
	}

	cluster := loopsched.PaperCluster(4, false)
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "workload")
	for _, s := range schemes {
		fmt.Fprintf(tw, "\t%s", s.Name())
	}
	fmt.Fprintln(tw)

	for _, w := range workloads {
		fmt.Fprintf(tw, "%s", w.Name())
		// Scale the base rate so every workload takes comparable
		// simulated time regardless of its cost units.
		total := 0.0
		for i := 0; i < w.Len(); i++ {
			total += w.Cost(i)
		}
		params := loopsched.SimParams{BaseRate: total / 20, BytesPerIter: 64}
		for _, s := range schemes {
			rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
				Backend: loopsched.BackendSim,
				Scheme:  s, Workload: w,
				Cluster: cluster, Sim: params,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.2f", rep.Tp)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println("\ncells are simulated Tp in seconds (lower is better). Things to notice:")
	fmt.Println(" - SS pays a request round-trip per iteration on every workload;")
	fmt.Println(" - sampling reorder (last row) rescues GSS, whose huge first chunk")
	fmt.Println("   otherwise swallows the fractal's expensive interior whole;")
	fmt.Println(" - it can hurt TSS, because the original column order happens to")
	fmt.Println("   put cheap edge columns into TSS's biggest early chunks;")
	fmt.Println(" - the distributed schemes (DTSS, DTFSS) track the 3x power gap.")
}
