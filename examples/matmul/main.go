// Matmul: self-scheduling a real dense matrix multiplication — the
// classic uniformly distributed parallel loop (one iteration = one
// result row). The paper argues its schemes "are expected to perform
// well on other types of loop computations"; this example checks that
// claim on a workload with none of Mandelbrot's irregularity, and
// verifies the scheduled product against a serial computation.
//
// Run with: go run ./examples/matmul [-n 512] [-scheme TFSS]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"loopsched"
)

func main() {
	var (
		n          = flag.Int("n", 384, "matrix dimension")
		schemeName = flag.String("scheme", "TFSS", "self-scheduling scheme")
	)
	flag.Parse()

	scheme, err := loopsched.LookupScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	a := randomMatrix(rng, *n)
	b := randomMatrix(rng, *n)
	c := make([][]float64, *n)
	for i := range c {
		c[i] = make([]float64, *n)
	}

	// One loop iteration computes one row of C — uniform cost, the
	// DOALL style of §2.1.
	row := func(i int) {
		ai, ci := a[i], c[i]
		for k := 0; k < *n; k++ {
			aik := ai[k]
			bk := b[k]
			for j := 0; j < *n; j++ {
				ci[j] += aik * bk[j]
			}
		}
	}

	start := time.Now()
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Backend:  loopsched.BackendLocal,
		Scheme:   scheme,
		Workload: loopsched.Uniform{N: *n},
		Workers: []*loopsched.WorkerSpec{
			{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1},
		},
		Body: row,
	})
	if err != nil {
		log.Fatal(err)
	}
	parallel := time.Since(start)

	// Serial reference for verification and speed comparison.
	ref := make([][]float64, *n)
	for i := range ref {
		ref[i] = make([]float64, *n)
	}
	start = time.Now()
	for i := 0; i < *n; i++ {
		ai, ri := a[i], ref[i]
		for k := 0; k < *n; k++ {
			aik := ai[k]
			bk := b[k]
			for j := 0; j < *n; j++ {
				ri[j] += aik * bk[j]
			}
		}
	}
	serial := time.Since(start)

	var maxErr float64
	for i := range c {
		for j := range c[i] {
			maxErr = math.Max(maxErr, math.Abs(c[i][j]-ref[i][j]))
		}
	}
	if maxErr > 1e-9 {
		log.Fatalf("scheduled product differs from serial: max error %g", maxErr)
	}

	fmt.Printf("%d×%d matmul under %s: %d chunks across %d workers\n",
		*n, *n, rep.Scheme, rep.Chunks, rep.Workers)
	fmt.Printf("serial %.3fs, scheduled %.3fs (speedup %.2f), max error %.1e\n",
		serial.Seconds(), parallel.Seconds(),
		serial.Seconds()/parallel.Seconds(), maxErr)
}

func randomMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return m
}
