// Mpworld: the paper's program, structurally. The original ran on
// mpich — rank 0 the master, ranks 1..p the slaves, tagged
// point-to-point messages. This example runs the same §3.1
// master/slave pseudocode on the repo's message-passing substrate,
// first over an in-process world, then over real TCP, and checks the
// two produce identical results.
//
// Run with: go run ./examples/mpworld
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"sync"

	"loopsched"
)

const (
	iterations = 2000
	workers    = 4
)

// kernel: a mock "loop body" — hash the iteration index a few
// thousand times so slaves do measurable work.
func kernel(i int) []byte {
	h := uint64(i) * 0x9e3779b97f4a7c15
	for k := 0; k < 4096; k++ {
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h)
	return buf[:]
}

func workerOpts(rank int) loopsched.MPWorkerOptions {
	o := loopsched.MPWorkerOptions{
		Kernel:       kernel,
		VirtualPower: 3,
		ACP:          loopsched.ACPModel{Scale: 10},
	}
	if rank > workers/2 { // the slow half of the cluster
		o.VirtualPower = 1
		o.WorkScale = 3
	}
	return o
}

func main() {
	scheme := loopsched.NewDTSS()

	// --- In-process world: ranks are goroutines --------------------
	world, err := loopsched.NewWorld(workers + 1)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := loopsched.RunMPWorker(world[r], workerOpts(r)); err != nil {
				log.Printf("rank %d: %v", r, err)
			}
		}(r)
	}
	inproc, rep, err := loopsched.RunMPMasterContext(context.Background(), world[0], scheme, iterations, loopsched.MPMasterOptions{})
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process world: %d iterations in %d chunks under %s\n",
		rep.Iterations, rep.Chunks, rep.Scheme)

	// --- TCP world: same program, real sockets ---------------------
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	master, err := loopsched.ListenTCP(ln, workers+1)
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := loopsched.DialTCP(ln.Addr().String(), r, workers+1)
			if err != nil {
				log.Printf("rank %d dial: %v", r, err)
				return
			}
			defer comm.Close()
			if err := loopsched.RunMPWorker(comm, workerOpts(r)); err != nil {
				log.Printf("rank %d: %v", r, err)
			}
		}(r)
	}
	overTCP, rep2, err := loopsched.RunMPMasterContext(context.Background(), master, scheme, iterations, loopsched.MPMasterOptions{})
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP world:        %d iterations in %d chunks on %s\n",
		rep2.Iterations, rep2.Chunks, ln.Addr())

	for i := range inproc {
		if !bytes.Equal(inproc[i], overTCP[i]) {
			log.Fatalf("transports disagree at iteration %d", i)
		}
	}
	fmt.Println("both transports produced identical results — the program is")
	fmt.Println("transport-agnostic, exactly like the paper's MPI code.")
}
