package loopsched_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched"
)

// runWorkers builds a small heterogeneous worker set (two full-speed,
// two half-speed) for the executing backends.
func runWorkers() []*loopsched.WorkerSpec {
	return []*loopsched.WorkerSpec{
		{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 2}, {WorkScale: 2},
	}
}

// executingBackends are the backends that actually run the body (the
// simulator only models it).
var executingBackends = []loopsched.Backend{
	loopsched.BackendLocal, loopsched.BackendRPC, loopsched.BackendMP,
}

// TestRunSameSpecEveryBackend is the API's core promise: the same
// (scheme, workload) pair runs unchanged on every backend through the
// one entry point.
func TestRunSameSpecEveryBackend(t *testing.T) {
	const n = 1500
	scheme, err := loopsched.LookupScheme("DTSS")
	if err != nil {
		t.Fatal(err)
	}
	w := loopsched.Uniform{N: n, C: 1}

	t.Run("sim", func(t *testing.T) {
		rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
			Scheme:   scheme,
			Workload: w,
			Backend:  loopsched.BackendSim,
			Cluster:  loopsched.PaperCluster(8, false),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations != n || rep.Tp <= 0 {
			t.Fatalf("sim report: %d iterations, Tp=%g", rep.Iterations, rep.Tp)
		}
	})

	for _, backend := range executingBackends {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			var hits = make([]int32, n)
			rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
				Scheme:   scheme,
				Workload: w,
				Backend:  backend,
				Workers:  runWorkers(),
				Body: func(i int) {
					atomic.AddInt32(&hits[i], 1)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Iterations != n {
				t.Fatalf("report claims %d of %d iterations", rep.Iterations, n)
			}
			for i := range hits {
				if atomic.LoadInt32(&hits[i]) == 0 {
					t.Fatalf("iteration %d never executed", i)
				}
			}
			if rep.Chunks == 0 {
				t.Fatal("report has no chunks")
			}
		})
	}
}

// TestRunHierarchical drives the two-level runtime through the same
// entry point on every backend that supports it and checks the
// per-shard breakdown is coherent.
func TestRunHierarchical(t *testing.T) {
	const n = 1500
	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}
	w := loopsched.Uniform{N: n, C: 1}
	h := &loopsched.Hierarchy{Shards: 2}

	check := func(t *testing.T, rep loopsched.Report, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations != n {
			t.Fatalf("report claims %d of %d iterations", rep.Iterations, n)
		}
		if len(rep.Shards) != 2 {
			t.Fatalf("want 2 shards in report, got %d", len(rep.Shards))
		}
		sum := 0
		for _, s := range rep.Shards {
			sum += s.Iterations
			if s.Fetches == 0 {
				t.Fatalf("shard %d reports no root fetches", s.Shard)
			}
		}
		if sum != n {
			t.Fatalf("shard iterations sum to %d, want %d", sum, n)
		}
	}

	t.Run("sim", func(t *testing.T) {
		rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
			Scheme:    scheme,
			Workload:  w,
			Backend:   loopsched.BackendSim,
			Cluster:   loopsched.PaperCluster(8, false),
			Hierarchy: h,
		})
		check(t, rep, err)
	})
	for _, backend := range []loopsched.Backend{loopsched.BackendLocal, loopsched.BackendRPC} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
				Scheme:    scheme,
				Workload:  w,
				Backend:   backend,
				Workers:   runWorkers(),
				Body:      func(i int) {},
				Hierarchy: h,
			})
			check(t, rep, err)
		})
	}
	t.Run("mp-unsupported", func(t *testing.T) {
		_, err := loopsched.Run(context.Background(), loopsched.RunSpec{
			Scheme:    scheme,
			Workload:  w,
			Backend:   loopsched.BackendMP,
			Workers:   runWorkers(),
			Body:      func(i int) {},
			Hierarchy: h,
		})
		if err == nil {
			t.Fatal("mp backend accepted a hierarchy")
		}
	})
}

// TestRunCancellation cancels mid-run on every backend and requires
// Run to return ctx's error with all machinery drained (the test
// binary's goroutine leak would otherwise trip -race / timeouts).
func TestRunCancellation(t *testing.T) {
	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("sim", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := loopsched.Run(ctx, loopsched.RunSpec{
			Scheme:   scheme,
			Workload: loopsched.Uniform{N: 1 << 20, C: 1},
			Backend:  loopsched.BackendSim,
			Cluster:  loopsched.PaperCluster(8, false),
		})
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	})

	for _, backend := range executingBackends {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var once sync.Once
			done := make(chan struct{})
			go func() {
				defer close(done)
				_, err := loopsched.Run(ctx, loopsched.RunSpec{
					Scheme:   scheme,
					Workload: loopsched.Uniform{N: 1 << 20, C: 1},
					Backend:  backend,
					Workers:  runWorkers(),
					Body: func(i int) {
						once.Do(cancel)
					},
				})
				if err != context.Canceled {
					t.Errorf("got %v, want context.Canceled", err)
				}
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled run did not return")
			}
		})
	}

	t.Run("rpc-hierarchy", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var once sync.Once
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, err := loopsched.Run(ctx, loopsched.RunSpec{
				Scheme:    scheme,
				Workload:  loopsched.Uniform{N: 1 << 20, C: 1},
				Backend:   loopsched.BackendRPC,
				Workers:   runWorkers(),
				Body:      func(i int) { once.Do(cancel) },
				Hierarchy: &loopsched.Hierarchy{Shards: 2},
			})
			if err != context.Canceled {
				t.Errorf("got %v, want context.Canceled", err)
			}
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("cancelled hierarchical run did not return")
		}
	})
}

func TestRunSpecValidation(t *testing.T) {
	if _, err := loopsched.NewExecutor("quantum"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	_, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Workload: loopsched.Uniform{N: 10, C: 1},
	})
	if err == nil {
		t.Fatal("missing scheme accepted")
	}
	scheme, _ := loopsched.LookupScheme("TSS")
	_, err = loopsched.Run(context.Background(), loopsched.RunSpec{
		Scheme:  scheme,
		Backend: loopsched.BackendLocal,
		Workers: runWorkers(),
		Body:    func(i int) {},
	})
	if err == nil {
		t.Fatal("missing workload accepted")
	}
	_, err = loopsched.Run(context.Background(), loopsched.RunSpec{
		Scheme:   scheme,
		Workload: loopsched.Uniform{N: 10, C: 1},
		Backend:  loopsched.BackendLocal,
		Workers:  runWorkers(),
	})
	if err == nil {
		t.Fatal("local backend ran without a body or kernel")
	}
}

// TestRunSpecValidationPerBackend pins every backend's structural
// error paths to RunSpec.validate: the same message comes back whether
// the spec is rejected by Run or by the backend's executor directly,
// so no entry point can drift its own checks.
func TestRunSpecValidationPerBackend(t *testing.T) {
	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}
	w := loopsched.Uniform{N: 10, C: 1}
	noop := func(i int) {}
	cases := []struct {
		name    string
		spec    loopsched.RunSpec
		wantErr string
	}{
		{
			name:    "local without workers",
			spec:    loopsched.RunSpec{Scheme: scheme, Workload: w, Backend: loopsched.BackendLocal, Body: noop},
			wantErr: "loopsched: local backend needs Workers",
		},
		{
			name: "local hierarchical steal engine",
			spec: loopsched.RunSpec{
				Scheme: scheme, Workload: w, Backend: loopsched.BackendLocal,
				Workers: runWorkers(), Body: noop,
				LocalEngine: loopsched.EngineSteal, Hierarchy: &loopsched.Hierarchy{},
			},
			wantErr: `loopsched: LocalEngine "steal" is flat-only; hierarchical local runs use the submaster runtime`,
		},
		{
			name:    "rpc without workers",
			spec:    loopsched.RunSpec{Scheme: scheme, Workload: w, Backend: loopsched.BackendRPC, Body: noop},
			wantErr: "loopsched: rpc backend needs Workers",
		},
		{
			name: "rpc unknown transport",
			spec: loopsched.RunSpec{
				Scheme: scheme, Workload: w, Backend: loopsched.BackendRPC,
				Workers: runWorkers(), Body: noop, Transport: "carrier-pigeon",
			},
			wantErr: `loopsched: unknown transport "carrier-pigeon"`,
		},
		{
			name:    "mp without workers",
			spec:    loopsched.RunSpec{Scheme: scheme, Workload: w, Backend: loopsched.BackendMP, Body: noop},
			wantErr: "loopsched: mp backend needs Workers",
		},
		{
			name: "mp hierarchical",
			spec: loopsched.RunSpec{
				Scheme: scheme, Workload: w, Backend: loopsched.BackendMP,
				Body: noop, Hierarchy: &loopsched.Hierarchy{},
			},
			wantErr: "loopsched: the mp backend is flat-only; use sim, local or rpc for hierarchies",
		},
		{
			name:    "unknown backend",
			spec:    loopsched.RunSpec{Scheme: scheme, Workload: w, Backend: "quantum", Body: noop},
			wantErr: `loopsched: unknown backend "quantum"`,
		},
		{
			name:    "missing scheme",
			spec:    loopsched.RunSpec{Workload: w, Backend: loopsched.BackendLocal, Workers: runWorkers(), Body: noop},
			wantErr: "loopsched: RunSpec.Scheme is required",
		},
		{
			name:    "missing workload",
			spec:    loopsched.RunSpec{Scheme: scheme, Backend: loopsched.BackendLocal, Workers: runWorkers(), Body: noop},
			wantErr: "loopsched: RunSpec.Workload is required",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loopsched.Run(context.Background(), tc.spec)
			if err == nil || err.Error() != tc.wantErr {
				t.Fatalf("Run error = %v, want %q", err, tc.wantErr)
			}
			ex, exErr := loopsched.NewExecutor(tc.spec.Backend)
			if exErr != nil {
				// The unknown-backend case: NewExecutor and validate must
				// agree on the message.
				if exErr.Error() != tc.wantErr {
					t.Fatalf("NewExecutor error = %v, want %q", exErr, tc.wantErr)
				}
				return
			}
			if _, err := ex.Run(context.Background(), tc.spec); err == nil || err.Error() != tc.wantErr {
				t.Fatalf("executor error = %v, want %q", err, tc.wantErr)
			}
		})
	}
}
