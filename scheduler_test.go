package loopsched_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"loopsched"
)

// TestSchedulerPublicSurface exercises the job-centric API end to end
// through the package's public names only: NewScheduler, Submit with
// tenants and priorities, Job.Wait/Report/Cancel, Stats, Drain, Close
// and the sentinel errors — the streaming counterpart of Run.
func TestSchedulerPublicSurface(t *testing.T) {
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	s, err := loopsched.NewScheduler(loopsched.SchedulerOptions{
		Workers: []*loopsched.WorkerSpec{
			{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1},
		},
		CreditWindow: 4,
		Telemetry:    tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A stream of jobs from two tenants on one shared fleet.
	const perTenant, n = 4, 4000
	type handle struct {
		job   *loopsched.Job
		count *atomic.Int64
	}
	var handles []handle
	for i := 0; i < 2*perTenant; i++ {
		var count atomic.Int64
		j, err := s.Submit(ctx, loopsched.JobSpec{
			Scheme:   loopsched.NewCSS(8),
			Workload: loopsched.Uniform{N: n},
			Body:     func(int) { count.Add(1) },
			Tenant:   fmt.Sprintf("tenant-%d", i%2),
			Priority: i % 3,
			Weight:   float64(1 + i%2),
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		handles = append(handles, handle{j, &count})
	}
	for i, h := range handles {
		rep, err := h.job.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.Iterations != n {
			t.Errorf("job %d: Iterations = %d, want %d", i, rep.Iterations, n)
		}
		if got := h.count.Load(); got != n {
			t.Errorf("job %d: body ran %d times, want %d", i, got, n)
		}
		if st := h.job.State(); st != loopsched.JobSucceeded {
			t.Errorf("job %d: state %v, want %v", i, st, loopsched.JobSucceeded)
		}
	}
	if st := s.Stats(); st.Outstanding != 0 || st.Tenants != 2 {
		t.Errorf("Stats = %+v, want 0 outstanding across 2 tenants", st)
	}

	// The per-tenant accounting reached the session's aggregator.
	tele.Flush()
	snap := tele.Aggregator().Snapshot()
	for _, tn := range []string{"tenant-0", "tenant-1"} {
		ts, ok := snap.Tenants[tn]
		if !ok || ts.Jobs != perTenant {
			t.Errorf("tenant %s: snapshot %+v, want %d jobs", tn, ts, perTenant)
		}
	}

	// Submit rejects bad specs without touching the fleet.
	if _, err := s.Submit(ctx, loopsched.JobSpec{Workload: loopsched.Uniform{N: 1}, Body: func(int) {}}); err == nil {
		t.Error("Submit accepted a spec with no scheme")
	}

	// Cancel is observable through the sentinel.
	release := make(chan struct{})
	blocked, err := s.Submit(ctx, loopsched.JobSpec{
		Scheme:   loopsched.NewCSS(1),
		Workload: loopsched.Uniform{N: 1 << 20},
		Body:     func(int) { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	if !blocked.Cancel() {
		t.Error("Cancel returned false for a live job")
	}
	if _, err := blocked.Wait(ctx); !errors.Is(err, loopsched.ErrJobCancelled) {
		t.Errorf("cancelled job error = %v, want ErrJobCancelled", err)
	}

	// Drain ends admission permanently; Close ends everything.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := s.Submit(ctx, validJobSpec()); !errors.Is(err, loopsched.ErrSchedulerDraining) {
		t.Errorf("Submit while draining = %v, want ErrSchedulerDraining", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Submit(ctx, validJobSpec()); !errors.Is(err, loopsched.ErrSchedulerClosed) {
		t.Errorf("Submit after close = %v, want ErrSchedulerClosed", err)
	}
}

func validJobSpec() loopsched.JobSpec {
	return loopsched.JobSpec{
		Scheme:   loopsched.NewCSS(4),
		Workload: loopsched.Uniform{N: 100},
		Body:     func(int) {},
	}
}

// TestSchedulerQuota checks the public quota knob: a tenant at its
// queue cap gets ErrTenantQueueFull while other tenants keep flowing.
func TestSchedulerQuota(t *testing.T) {
	s, err := loopsched.NewScheduler(loopsched.SchedulerOptions{
		Workers:            []*loopsched.WorkerSpec{{WorkScale: 1}},
		MaxActive:          1,
		MaxQueuedPerTenant: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	release := make(chan struct{})
	hog, err := s.Submit(ctx, loopsched.JobSpec{
		Scheme:   loopsched.NewCSS(1),
		Workload: loopsched.Uniform{N: 1 << 20},
		Body:     func(int) { <-release },
		Tenant:   "greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only once the hog is admitted does the queue quota have room for
	// exactly one waiting job.
	for hog.State() != loopsched.JobRunning {
		if ctx.Err() != nil {
			t.Fatal("hog never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(ctx, withTenantSpec("greedy")); err != nil {
		t.Fatalf("first queued job: %v", err)
	}
	if _, err := s.Submit(ctx, withTenantSpec("greedy")); !errors.Is(err, loopsched.ErrTenantQueueFull) {
		t.Errorf("over-quota Submit = %v, want ErrTenantQueueFull", err)
	}
	other, err := s.Submit(ctx, withTenantSpec("modest"))
	if err != nil {
		t.Fatalf("other tenant blocked by greedy's quota: %v", err)
	}
	close(release)
	hog.Cancel()
	if _, err := other.Wait(ctx); err != nil {
		t.Fatalf("modest tenant's job: %v", err)
	}
}

func withTenantSpec(tenant string) loopsched.JobSpec {
	spec := validJobSpec()
	spec.Tenant = tenant
	return spec
}
