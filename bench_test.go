// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices documented in DESIGN.md §6 and
// micro-benchmarks of the hot paths.
//
//	go test -bench=. -benchmem            # everything, paper scale
//	go test -bench=BenchmarkTable2 -v     # one artefact, with its rows
//
// Each artefact bench prints the reproduced rows once (the same
// layout the paper uses) and reports the headline numbers as custom
// benchmark metrics so regressions are machine-visible.
package loopsched_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"net/rpc"
	"sync"
	"testing"

	"loopsched"
	"loopsched/internal/acp"
	"loopsched/internal/experiments"
	"loopsched/internal/ledger"
	"loopsched/internal/mandelbrot"
	"loopsched/internal/metrics"
	"loopsched/internal/mp"
	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/tree"
	"loopsched/internal/workload"
)

var printGuards sync.Map

// printOnce emits an artefact's rows a single time per test binary,
// no matter how many benchmark iterations run.
func printOnce(key, text string) {
	if _, loaded := printGuards.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

func bestTp(reps []metrics.Report) float64 {
	best := math.Inf(1)
	for _, r := range reps {
		if r.Tp < best {
			best = r.Tp
		}
	}
	return best
}

// ---- Tables ----

func BenchmarkTable1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1()
	}
	b.StopTimer()
	printOnce("table1", out)
}

func BenchmarkTable2(b *testing.B) {
	cfg := experiments.Default()
	var res experiments.TableResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("table2", res.Format())
	b.ReportMetric(bestTp(res.Dedicated), "bestTp_ded_s")
	b.ReportMetric(bestTp(res.NonDedicated), "bestTp_non_s")
}

func BenchmarkTable3(b *testing.B) {
	cfg := experiments.Default()
	var res experiments.TableResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("table3", res.Format())
	b.ReportMetric(bestTp(res.Dedicated), "bestTp_ded_s")
	b.ReportMetric(bestTp(res.NonDedicated), "bestTp_non_s")
}

// ---- Figures ----

func BenchmarkFigure1(b *testing.B) {
	cfg := experiments.Default()
	var orig, reord []float64
	for i := 0; i < b.N; i++ {
		orig, reord = experiments.Figure1(cfg)
	}
	b.StopTimer()
	bo := workload.Describe(workload.FromCosts{Costs: orig}, cfg.Width/8)
	br := workload.Describe(workload.FromCosts{Costs: reord}, cfg.Width/8)
	printOnce("fig1", fmt.Sprintf(
		"Figure 1: Mandelbrot per-column cost, %d columns\n"+
			"  original : min %.0f max %.0f windowCV %.3f\n"+
			"  reordered: min %.0f max %.0f windowCV %.3f (S_f = %d)",
		len(orig), bo.Min, bo.Max, bo.WindowCV, br.Min, br.Max, br.WindowCV, cfg.Sf))
	b.ReportMetric(bo.WindowCV, "origCV")
	b.ReportMetric(br.WindowCV, "reordCV")
}

func BenchmarkFigure2(b *testing.B) {
	p := mandelbrot.Params{Region: mandelbrot.PaperRegion, Width: 300, Height: 300, MaxIter: 160}
	for i := 0; i < b.N; i++ {
		im := mandelbrot.Render(p)
		if im.Bounds().Dx() != 300 {
			b.Fatal("bad render")
		}
	}
	printOnce("fig2", "Figure 2: Mandelbrot fractal — render via cmd/mandelbrot -o mandel.png")
}

func benchFigure(b *testing.B, num int) {
	cfg := experiments.Default()
	var fig experiments.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure(num, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce(fmt.Sprintf("fig%d", num), fig.Format())
	// Report each scheme's Sp(8) so curve shifts show up in benchstat.
	for name, curve := range fig.Curves {
		b.ReportMetric(curve[len(curve)-1].Sp, "Sp8_"+name)
	}
}

func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, 5) }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, 6) }
func BenchmarkFigure7(b *testing.B) { benchFigure(b, 7) }

// BenchmarkScalingStudy extends the speedup figures to p = 32 (the
// paper's natural future work; see EXPERIMENTS.md).
func BenchmarkScalingStudy(b *testing.B) {
	cfg := experiments.Default()
	var fig experiments.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.ScalingStudy(cfg, experiments.DistributedSchemes(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("scaling", fig.Format())
	for name, curve := range fig.Curves {
		b.ReportMetric(curve[len(curve)-1].Sp, "Sp32_"+name)
	}
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblationFSSRounding compares the paper's half-even FSS
// rounding against the classic ceiling formulation.
func BenchmarkAblationFSSRounding(b *testing.B) {
	cfg := experiments.Small()
	w := cfg.Workload()
	c := experiments.Cluster(8, false)
	for _, variant := range []struct {
		name string
		s    sched.Scheme
	}{
		{"half-even", sched.FSSScheme{Round: sched.RoundHalfEven}},
		{"ceil", sched.FSSScheme{Round: sched.RoundCeil}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = sim.Run(c, variant.s, w, cfg.SimParams())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
			b.ReportMetric(float64(rep.Chunks), "chunks")
		})
	}
}

// BenchmarkAblationACPScale compares the original DTSS integer ACP
// (scale 1, §5.2's stall-prone variant) against the decimal scales.
func BenchmarkAblationACPScale(b *testing.B) {
	cfg := experiments.Small()
	w := cfg.Workload()
	c := experiments.Cluster(8, true)
	for _, scale := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			p := cfg.SimParams()
			p.ACP = acp.Model{Scale: scale}
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = sim.Run(c, sched.DTSSScheme{}, w, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
			b.ReportMetric(rep.CompImbalance(), "imbalance")
		})
	}
}

// BenchmarkAblationSamplingSf sweeps the sampling-reorder frequency.
func BenchmarkAblationSamplingSf(b *testing.B) {
	cfg := experiments.Small()
	c := experiments.Cluster(8, false)
	base := workload.FromCosts{
		Label: "mandel",
		Costs: mandelbrot.ColumnCosts(mandelbrot.Params{
			Region: mandelbrot.PaperRegion, Width: cfg.Width, Height: cfg.Height, MaxIter: cfg.MaxIter,
		}),
	}
	for _, sf := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sf=%d", sf), func(b *testing.B) {
			var w workload.Workload = base
			if sf > 1 {
				w = workload.Reorder(base, sf)
			}
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = sim.Run(c, sched.FSSScheme{}, w, cfg.SimParams())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
		})
	}
}

// BenchmarkAblationFeedback compares the two run-time adaptation
// channels on a loaded cluster: the paper's run-queue-based ACP
// (DFSS) versus measured-rate feedback (AWF). ACP reacts before the
// slowdown is observed; AWF needs a chunk to notice but sees effects
// the run queue cannot.
func BenchmarkAblationFeedback(b *testing.B) {
	cfg := experiments.Default()
	cfg.Width = 1000
	w := cfg.Workload()
	c := experiments.Cluster(8, true)
	for _, scheme := range []sched.Scheme{sched.NewDFSS(), sched.AWFScheme{}, sched.FSSScheme{}} {
		b.Run(scheme.Name(), func(b *testing.B) {
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = sim.Run(c, scheme, w, cfg.SimParams())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
			b.ReportMetric(rep.CompImbalance(), "imbalance")
		})
	}
}

// BenchmarkAblationReplan measures the step-2(c) majority re-plan
// under an early load spike on a majority of the slaves. Finding:
// DTSS is nearly re-plan-insensitive — its per-request A_i scaling
// already adapts every chunk — whereas the stage-structured DFISS,
// whose stage totals are fixed at plan time, visibly benefits.
func BenchmarkAblationReplan(b *testing.B) {
	cfg := experiments.Default()
	cfg.Width = 1000
	w := cfg.Workload()
	c := experiments.Cluster(8, false)
	for _, idx := range []int{0, 1, 4, 5, 6} {
		c.Machines[idx].Load = sim.LoadScript{{Start: 1, End: math.Inf(1), Extra: 2}}
	}
	for _, scheme := range []sched.Scheme{sched.DTSSScheme{}, sched.NewDFISS(0)} {
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"replan", false}, {"no-replan", true}} {
			b.Run(scheme.Name()+"/"+variant.name, func(b *testing.B) {
				p := cfg.SimParams()
				p.DisableReplan = variant.disable
				var rep metrics.Report
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = sim.Run(c, scheme, w, p)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rep.Tp, "Tp_s")
				b.ReportMetric(float64(rep.Replans), "replans")
			})
		}
	}
}

// BenchmarkAblationPiggyback compares §5's piggy-backed results with
// the collect-at-end alternative the paper rejected. Paper-scale
// result payloads (4 KiB per column) and a 10 Mbit master NIC make
// the end-of-run contention visible at the Small problem size.
func BenchmarkAblationPiggyback(b *testing.B) {
	cfg := experiments.Small()
	w := cfg.Workload()
	c := experiments.Cluster(8, false)
	c.MasterBandwidth = sim.Mbit10
	for _, variant := range []struct {
		name    string
		collect bool
	}{{"piggyback", false}, {"collect-at-end", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := cfg.SimParams()
			p.BytesPerIter = 4096
			p.CollectAtEnd = variant.collect
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				// DTSS finishes the slaves near-simultaneously, so the
				// end-of-run dumps collide — the contention §5 observed.
				rep, err = sim.Run(c, sched.DTSSScheme{}, w, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
			b.ReportMetric(rep.MeanWait(), "meanWait_s")
		})
	}
}

// BenchmarkAblationTSSL sweeps TSS's final chunk size L (the paper
// notes L > 1 reduces synchronisations).
func BenchmarkAblationTSSL(b *testing.B) {
	cfg := experiments.Small()
	w := cfg.Workload()
	c := experiments.Cluster(8, false)
	for _, l := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = sim.Run(c, sched.TSSScheme{Last: l}, w, cfg.SimParams())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
			b.ReportMetric(float64(rep.Chunks), "chunks")
		})
	}
}

// BenchmarkAblationSharedBus compares independent slave links against
// the era-accurate shared half-duplex medium (hub Ethernet).
func BenchmarkAblationSharedBus(b *testing.B) {
	cfg := experiments.Small()
	w := cfg.Workload()
	c := experiments.Cluster(8, false)
	for _, variant := range []struct {
		name string
		bus  bool
	}{{"switched", false}, {"shared-bus", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := cfg.SimParams()
			p.SharedBus = variant.bus
			var rep metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = sim.Run(c, sched.DTSSScheme{}, w, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Tp, "Tp_s")
			b.ReportMetric(rep.MeanWait(), "meanWait_s")
		})
	}
}

// BenchmarkAblationPowerRatio sweeps the fast:slow power ratio and
// reports how much DTSS buys over TSS at each heterogeneity level —
// at ratio 1 the distributed machinery is pure overhead; the gap
// should widen with the ratio.
func BenchmarkAblationPowerRatio(b *testing.B) {
	cfg := experiments.Small()
	w := cfg.Workload()
	for _, ratio := range []float64{1, 2, 3, 6} {
		b.Run(fmt.Sprintf("ratio=%g", ratio), func(b *testing.B) {
			c := experiments.Cluster(8, false)
			for i := range c.Machines {
				if c.Machines[i].Power > 1 {
					c.Machines[i].Power = ratio
				}
			}
			var tss, dtss metrics.Report
			var err error
			for i := 0; i < b.N; i++ {
				tss, err = sim.Run(c, sched.TSSScheme{}, w, cfg.SimParams())
				if err != nil {
					b.Fatal(err)
				}
				dtss, err = sim.Run(c, sched.DTSSScheme{}, w, cfg.SimParams())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tss.Tp, "TSS_Tp_s")
			b.ReportMetric(dtss.Tp, "DTSS_Tp_s")
			b.ReportMetric(tss.Tp/dtss.Tp, "gain")
		})
	}
}

// ---- Micro-benchmarks ----

// BenchmarkPolicyNext measures raw chunk-computation throughput.
func BenchmarkPolicyNext(b *testing.B) {
	for _, name := range []string{"SS", "GSS", "TSS", "FSS", "FISS", "TFSS", "DTSS", "DFSS", "DTFSS"} {
		s, err := sched.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := sched.Config{Iterations: 1 << 30, Workers: 8}
			pol, err := s.NewPolicy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := pol.Next(sched.Request{Worker: i & 7, ACP: 1}); !ok {
					pol, _ = s.NewPolicy(cfg)
				}
			}
		})
	}
}

// BenchmarkSimulator measures discrete-event throughput.
func BenchmarkSimulator(b *testing.B) {
	c := experiments.Cluster(8, true)
	w := workload.Uniform{N: 5000}
	p := sim.Params{BaseRate: 1e5, BytesPerIter: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, sched.DTSSScheme{}, w, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeSimulator measures the Tree Scheduling event loop.
func BenchmarkTreeSimulator(b *testing.B) {
	c := experiments.Cluster(8, true)
	w := workload.Uniform{N: 5000}
	p := sim.Params{BaseRate: 1e5, BytesPerIter: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Run(c, tree.Options{Weighted: true}, w, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTrip measures one NextChunk call through the real
// net/rpc stack over loopback TCP.
func BenchmarkRPCRoundTrip(b *testing.B) {
	// 1M single-iteration chunks outlast any realistic benchtime
	// without allocating a gigantic result table.
	m, err := loopsched.NewMaster(loopsched.NewSS(), 1_000_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := m.Serve(l); err != nil {
		b.Fatal(err)
	}
	client, err := rpc.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reply loopsched.ChunkReply
		if err := client.Call("Master.NextChunk", loopsched.ChunkArgs{Worker: 0}, &reply); err != nil {
			b.Fatal(err)
		}
		if reply.Stop {
			b.Fatal("exhausted")
		}
	}
}

// BenchmarkRPCPipeline runs a full 512-chunk master/worker loop over
// loopback TCP across the codec matrix: the original net/rpc+gob
// protocol (serial and double-buffered) against the binary wire codec
// at credit windows 1, 2 and 8. The kernel is near-free and the
// payload small, so the numbers isolate protocol overhead — encoding,
// allocation, and round-trip count — which is exactly what the binary
// codec and the batched-grant window exist to shrink. One benchmark op
// is one complete run (512 chunks), so ns/op and allocs/op compare
// whole-loop protocol cost between variants; `make bench-json`
// publishes the table as BENCH_wire.json.
func BenchmarkRPCPipeline(b *testing.B) {
	const n = 512
	kernel := func(i int) []byte {
		buf := make([]byte, 1024)
		binary.LittleEndian.PutUint64(buf, uint64(i)+1)
		return buf
	}
	for _, variant := range []struct {
		name      string
		transport loopsched.RPCTransport
		pipeline  bool
		window    int
	}{
		{"gob-serial", "netrpc", false, 0},
		{"gob-pipelined", "netrpc", true, 0},
		{"binary-w1", "binary", true, 1},
		{"binary-w2", "binary", true, 2},
		{"binary-w8", "binary", true, 8},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := loopsched.NewMaster(loopsched.NewSS(), n, 1)
				if err != nil {
					b.Fatal(err)
				}
				m.SetWindow(variant.window)
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Serve(l); err != nil {
					b.Fatal(err)
				}
				w := loopsched.Worker{
					ID: 0, Kernel: kernel,
					Pipeline:  variant.pipeline,
					Transport: variant.transport,
					Window:    variant.window,
				}
				if err := w.Run(l.Addr().String()); err != nil {
					b.Fatal(err)
				}
				if _, _, err := m.Wait(); err != nil {
					b.Fatal(err)
				}
				l.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "chunks/s")
		})
	}
}

// BenchmarkMPRoundTrip measures one request/assign exchange through
// the in-process message-passing world.
func BenchmarkMPRoundTrip(b *testing.B) {
	world, err := mp.NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	// Minimal master loop: answer every request with a fixed frame.
	go func() {
		for {
			if _, err := world[0].Recv(mp.AnySource, mp.AnyTag); err != nil {
				return
			}
			if err := world[0].Send(1, 2, []byte{0, 0, 0, 0, 0, 0, 0, 1}); err != nil {
				return
			}
		}
	}()
	defer world[0].Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world[1].Send(0, 1, []byte{0, 0, 0, 1}); err != nil {
			b.Fatal(err)
		}
		if _, err := world[1].Recv(0, mp.AnyTag); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMandelbrotColumn measures the workload kernel.
func BenchmarkMandelbrotColumn(b *testing.B) {
	p := mandelbrot.Params{Region: mandelbrot.PaperRegion, Width: 4000, Height: 2000, MaxIter: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mandelbrot.ColumnWork(p, i%p.Width)
	}
}

// BenchmarkLocalEngine races the two local runtimes — the channel
// master and the work-stealing deques — at growing worker counts on a
// fixed-chunk scheme with an empty body, so the numbers are pure
// scheduling overhead. The channel master serialises every grant
// through one goroutine; the steal engine amortises the policy lock
// over credit-window-sized refills and otherwise runs lock-free, so
// the gap should widen with p. One benchmark op is one complete run
// (n/K chunks); `make bench-json` publishes the table as
// BENCH_local.json.
func BenchmarkLocalEngine(b *testing.B) {
	const (
		n = 1 << 17 // iterations per run
		k = 4       // CSS chunk size: 32768 chunks per run
	)
	for _, engine := range []string{loopsched.EngineChannel, loopsched.EngineSteal} {
		for _, p := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s-p%d", engine, p), func(b *testing.B) {
				workers := make([]*loopsched.WorkerSpec, p)
				for i := range workers {
					workers[i] = &loopsched.WorkerSpec{WorkScale: 1}
				}
				ex := &loopsched.LocalExecutor{
					Scheme:  loopsched.NewCSS(k),
					Workers: workers,
					Engine:  engine,
				}
				w := loopsched.Uniform{N: n}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep, err := ex.Run(w, func(int) {})
					if err != nil {
						b.Fatal(err)
					}
					if rep.Iterations != n {
						b.Fatalf("ran %d of %d iterations", rep.Iterations, n)
					}
				}
				b.ReportMetric(float64(n/k)*float64(b.N)/b.Elapsed().Seconds(), "chunks/s")
			})
		}
	}
}

// BenchmarkLocalExecutor measures the goroutine master–worker loop on
// a trivial body (scheduling overhead dominated).
func BenchmarkLocalExecutor(b *testing.B) {
	ex := &loopsched.LocalExecutor{
		Scheme: loopsched.NewTFSS(),
		Workers: []*loopsched.WorkerSpec{
			{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1}, {WorkScale: 1},
		},
	}
	w := loopsched.Uniform{N: 10000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sink int64
		if _, err := ex.Run(w, func(it int) { sink += int64(it) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler measures the multi-tenant scheduler daemon as a
// job-stream pipeline: one long-lived fleet, batches of concurrent
// jobs from several tenants, trivial bodies so admission, arbitration
// and refill dominate. Headline metrics are jobs/s and chunks/s
// (published to BENCH_service.json by make bench-json).
func BenchmarkScheduler(b *testing.B) {
	const (
		batch = 32      // concurrent jobs per iteration
		n     = 1 << 12 // iterations per job
		k     = 8       // CSS chunk size: n/k chunks per job
	)
	ctx := context.Background()
	for _, cfg := range []struct {
		name       string
		p, tenants int
	}{
		{"p8-t1", 8, 1},
		{"p8-t4", 8, 4},
		{"p32-t8", 32, 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			workers := make([]*loopsched.WorkerSpec, cfg.p)
			for i := range workers {
				workers[i] = &loopsched.WorkerSpec{WorkScale: 1}
			}
			s, err := loopsched.NewScheduler(loopsched.SchedulerOptions{
				Workers:      workers,
				CreditWindow: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var chunks int64
			for i := 0; i < b.N; i++ {
				jobs := make([]*loopsched.Job, batch)
				for j := range jobs {
					jobs[j], err = s.Submit(ctx, loopsched.JobSpec{
						Scheme:   loopsched.NewCSS(k),
						Workload: loopsched.Uniform{N: n},
						Body:     func(int) {},
						Tenant:   fmt.Sprintf("tenant-%d", j%cfg.tenants),
						Weight:   float64(1 + j%3),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, j := range jobs {
					if _, err := j.Wait(ctx); err != nil {
						b.Fatal(err)
					}
					chunks += int64(j.ChunksGranted())
				}
			}
			elapsed := b.Elapsed().Seconds()
			b.ReportMetric(float64(batch)*float64(b.N)/elapsed, "jobs/s")
			b.ReportMetric(float64(chunks)/elapsed, "chunks/s")
		})
	}
}

// BenchmarkLedger measures the scheduling-step ledger at both layers;
// `make bench-json` publishes the table as BENCH_ledger.json.
//
// The simulated matrix hammers the in-process half — one fetch-and-add
// on the shared step counter plus a table lookup — from p concurrent
// claimers, which is the whole per-chunk acquire cost the steal engine
// and the master's ledger branch pay. The loopback matrix runs full
// master/worker loops over TCP with the ledger off (the PR 5
// credit-window grant path: every chunk is requested and granted in a
// master frame) and on (workers claim with one-sided FetchAdd frames
// and self-compute boundaries from a table replica), so chunks/s
// compares what the protocol costs per chunk end to end.
func BenchmarkLedger(b *testing.B) {
	b.Run("simulated", func(b *testing.B) {
		tab, err := ledger.Build(sched.TSSScheme{}, sched.Config{Iterations: 1 << 20, Workers: 64})
		if err != nil {
			b.Fatal(err)
		}
		steps := uint64(tab.Steps())
		for _, p := range []int{128, 1024, 8192} {
			b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
				var ctr ledger.Local
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < p; g++ {
					claims := b.N / p
					if g < b.N%p {
						claims++
					}
					if claims == 0 {
						continue
					}
					wg.Add(1)
					go func(claims int) {
						defer wg.Done()
						for j := 0; j < claims; j++ {
							step, _ := ctr.FetchAdd(1)
							// Claim-then-check: wrap so the table never
							// drains while the benchmark runs.
							if _, ok := tab.Chunk(step % steps); !ok {
								panic("table lookup failed")
							}
						}
					}(claims)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "chunks/s")
			})
		}
	})

	b.Run("loopback", func(b *testing.B) {
		const n = 2048 // SS: one iteration per chunk, 2048 protocol acquisitions per op
		kernel := func(i int) []byte {
			buf := make([]byte, 1024)
			binary.LittleEndian.PutUint64(buf, uint64(i)+1)
			return buf
		}
		for _, p := range []int{2, 8, 32} {
			for _, mode := range []string{"master", "ledger"} {
				b.Run(fmt.Sprintf("%s-p%d", mode, p), func(b *testing.B) {
					b.ReportAllocs()
					chunks := 0
					for i := 0; i < b.N; i++ {
						m, err := loopsched.NewMaster(loopsched.NewSS(), n, p)
						if err != nil {
							b.Fatal(err)
						}
						if mode == "ledger" {
							if err := m.SetLedger("on"); err != nil {
								b.Fatal(err)
							}
							if !m.LedgerActive() {
								b.Fatal("ledger did not arm")
							}
						}
						l, err := net.Listen("tcp", "127.0.0.1:0")
						if err != nil {
							b.Fatal(err)
						}
						if err := m.Serve(l); err != nil {
							b.Fatal(err)
						}
						var wg sync.WaitGroup
						errs := make([]error, p)
						for id := 0; id < p; id++ {
							// Both sides run at the default credit window of 1
							// (the PR 5 double buffer): the master path
							// pipelines one prefetched grant per round trip,
							// the ledger path claims ledgerClaimFactor steps.
							w := loopsched.Worker{
								ID: id, Kernel: kernel,
								Transport:   "binary",
								Pipeline:    mode == "master",
								LedgerTable: m.Ledger(), // nil in master mode
							}
							wg.Add(1)
							go func(id int, w loopsched.Worker) {
								defer wg.Done()
								errs[id] = w.Run(l.Addr().String())
							}(id, w)
						}
						wg.Wait()
						for id, err := range errs {
							if err != nil {
								b.Fatalf("worker %d: %v", id, err)
							}
						}
						if _, rep, err := m.Wait(); err != nil {
							b.Fatal(err)
						} else {
							chunks += rep.Chunks
						}
						l.Close()
					}
					b.ReportMetric(float64(chunks)/b.Elapsed().Seconds(), "chunks/s")
				})
			}
		}
	})
}
