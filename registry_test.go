package loopsched_test

import (
	"strings"
	"testing"

	"loopsched"
)

// TestSchemeRegistryRoundTrip pins the catalogue API contract: every
// name SchemeNames advertises resolves through LookupScheme, back to a
// scheme carrying that exact name, in any letter case.
func TestSchemeRegistryRoundTrip(t *testing.T) {
	names := loopsched.SchemeNames()
	if len(names) < 10 {
		t.Fatalf("suspiciously small registry: %v", names)
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("SchemeNames lists %q twice", name)
		}
		seen[name] = true
		s, err := loopsched.LookupScheme(name)
		if err != nil {
			t.Errorf("advertised name %q does not resolve: %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("LookupScheme(%q) returned scheme named %q", name, s.Name())
		}
		for _, variant := range []string{strings.ToLower(name), strings.ToUpper(name)} {
			v, err := loopsched.LookupScheme(variant)
			if err != nil {
				t.Errorf("lookup is not case-insensitive: %q failed: %v", variant, err)
				continue
			}
			if v.Name() != s.Name() {
				t.Errorf("LookupScheme(%q) = %q, want %q", variant, v.Name(), s.Name())
			}
		}
	}
	if _, err := loopsched.LookupScheme("no-such-scheme"); err == nil {
		t.Error("unknown scheme name resolved")
	}
}

// TestDescribeSchemesCoversCatalogue checks the prose catalogue and
// the machine-readable one agree: DescribeSchemes with no filter
// documents every SchemeCatalogue entry, and per-name filters select
// exactly that entry.
func TestDescribeSchemesCoversCatalogue(t *testing.T) {
	cat := loopsched.SchemeCatalogue()
	if len(cat) == 0 {
		t.Fatal("empty catalogue")
	}
	all := loopsched.DescribeSchemes("")
	for _, info := range cat {
		header := info.Name + " (" + info.Category + ")"
		if !strings.Contains(all, header) {
			t.Errorf("DescribeSchemes omits %q", header)
		}
		if info.Formula == "" || !strings.Contains(all, info.Formula) {
			t.Errorf("DescribeSchemes omits the chunk rule of %s", info.Name)
		}
		only := loopsched.DescribeSchemes(info.Name)
		if !strings.Contains(only, info.Formula) {
			t.Errorf("DescribeSchemes(%q) misses its own formula", info.Name)
		}
	}
}
