// Package loopsched is a Go implementation of the loop self-scheduling
// schemes for heterogeneous clusters from Chronopoulos, Andonie,
// Benche and Grosu, "A Class of Loop Self-Scheduling for Heterogeneous
// Clusters" (IEEE CLUSTER 2001).
//
// It provides:
//
//   - the complete family of simple self-scheduling schemes — Static,
//     (Pure/Chunk) Self-Scheduling, Guided, Trapezoid, Factoring,
//     Fixed-Increase, and the paper's new Trapezoid Factoring (TFSS) —
//     plus Weighted Factoring;
//   - their distributed, load-adaptive versions (DTSS, DFSS, DFISS,
//     DTFSS) driven by the Available Computing Power model of §3.1
//     with the §5.2 improvements (decimal powers, scale factor,
//     availability threshold);
//   - Tree Scheduling (Kim & Purtilo) for comparison;
//   - real executors: an in-process goroutine master–worker and a TCP
//     net/rpc master–worker with piggy-backed results;
//   - a deterministic discrete-event simulator of a heterogeneous
//     master–slave cluster (powers, link speeds, run-queue dynamics)
//     for reproducible scheduling experiments;
//   - loop-workload generators (uniform, linear, conditional,
//     irregular) with the paper's sampling reordering, and the
//     Mandelbrot kernel used in its evaluation.
//
// The subsystems live in internal packages; this package is the public
// surface and re-exports everything a downstream user needs.
package loopsched

import (
	"context"
	"image"
	"io"
	"net"

	"loopsched/internal/acp"
	"loopsched/internal/affinity"
	"loopsched/internal/exec"
	"loopsched/internal/experiments"
	"loopsched/internal/loadgen"
	"loopsched/internal/mandelbrot"
	"loopsched/internal/metrics"
	"loopsched/internal/mp"
	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/tree"
	"loopsched/internal/viz"
	"loopsched/internal/workload"
)

// ---- Scheduling schemes ----

// Scheme produces per-run chunk policies; see NewPolicy.
type Scheme = sched.Scheme

// Policy computes successive chunk sizes for one run.
type Policy = sched.Policy

// SchedConfig configures one scheduling run (iterations, workers,
// optional per-worker powers).
type SchedConfig = sched.Config

// Request is a worker's demand for work, optionally carrying its ACP.
type Request = sched.Request

// Assignment is a half-open iteration range [Start, Start+Size).
type Assignment = sched.Assignment

// Scheme constructors. The zero-parameter forms use the paper's
// defaults.
func NewStatic() Scheme           { return sched.StaticScheme{} }
func NewWeightedStatic() Scheme   { return sched.WeightedStaticScheme{} }
func NewSS() Scheme               { return sched.SelfScheduling }
func NewCSS(k int) Scheme         { return sched.CSSScheme{K: k} }
func NewGSS(minChunk int) Scheme  { return sched.GSSScheme{MinChunk: minChunk} }
func NewTSS() Scheme              { return sched.TSSScheme{} }
func NewFSS() Scheme              { return sched.FSSScheme{} }
func NewFISS(stages int) Scheme   { return sched.FISSScheme{Stages: stages} }
func NewTFSS() Scheme             { return sched.TFSSScheme{} }
func NewWF() Scheme               { return sched.WFScheme{} }
func NewDTSS() Scheme             { return sched.DTSSScheme{} }
func NewDFSS() Scheme             { return sched.NewDFSS() }
func NewDFISS(stages int) Scheme  { return sched.NewDFISS(stages) }
func NewDTFSS() Scheme            { return sched.NewDTFSS() }
func NewDGSS(minChunk int) Scheme { return sched.NewDGSS(minChunk) }
func NewDCSS(k int) Scheme        { return sched.NewDCSS(k) }
func NewAWF() Scheme              { return sched.AWFScheme{} }

// WithMinChunk lifts GSS(k)'s minimum-chunk floor onto any scheme.
func WithMinChunk(s Scheme, k int) Scheme { return sched.WithMinChunk(s, k) }

// Synchronized wraps a policy with a mutex so multiple goroutines can
// claim chunks directly (the paper's shared loop-index lock, §2.2).
func Synchronized(p Policy) Policy { return sched.Synchronized(p) }

// ForEach runs body(i) for every i in [0, n) on `workers` goroutines
// under the scheme — the self-scheduled DOALL as a one-liner.
func ForEach(s Scheme, n, workers int, body func(i int)) error {
	return sched.ForEach(s, n, workers, body)
}

// LookupScheme finds a registered scheme by name ("TSS", "DTSS", …).
func LookupScheme(name string) (Scheme, error) { return sched.Lookup(name) }

// SchemeNames lists all registered scheme names.
func SchemeNames() []string { return sched.Names() }

// DescribeSchemes renders the scheme catalogue (formulas, origins,
// trade-offs); filter by category or name, empty for everything.
func DescribeSchemes(filter string) string { return sched.Describe(filter) }

// SchemeCatalogue returns the documented scheme families.
func SchemeCatalogue() []sched.Info { return sched.Catalogue() }

// SchemeInfo documents one scheme family.
type SchemeInfo = sched.Info

// IsDistributed reports whether a scheme consumes run-time load
// information (the paper's section 6 classification).
func IsDistributed(s Scheme) bool { return sched.Distributed(s) }

// ChunkSequence returns the chunk sizes of a homogeneous run of I
// iterations on p workers (clipped; sums to I).
func ChunkSequence(s Scheme, iterations, p int) ([]int, error) {
	return sched.Sequence(s, iterations, p)
}

// ---- Available computing power ----

// ACPModel computes A_i = ⌊scale·V_i/Q_i⌋ (§3.1 with the §5.2 fixes).
type ACPModel = acp.Model

// ---- Workloads ----

// Workload is a parallel loop: independent iterations with costs.
type Workload = workload.Workload

type (
	// Uniform is the constant-cost loop of §2.1.
	Uniform = workload.Uniform
	// LinearIncreasing is the increasing triangular loop of §2.1.
	LinearIncreasing = workload.LinearIncreasing
	// LinearDecreasing is the decreasing triangular loop of §2.1.
	LinearDecreasing = workload.LinearDecreasing
	// FromCosts wraps an explicit per-iteration cost vector.
	FromCosts = workload.FromCosts
	// Reordered is a workload viewed through a permutation.
	Reordered = workload.Reordered
)

// NewConditional builds the IF/ELSE loop of §2.1 deterministically.
func NewConditional(n int, pTrue, cTrue, cFalse float64, seed int64) Workload {
	return workload.NewConditional(n, pTrue, cTrue, cFalse, seed)
}

// Reorder applies the paper's sampling reordering with frequency sf.
func Reorder(w Workload, sf int) Reordered { return workload.Reorder(w, sf) }

// SortDescending reorders a *predictable* loop costliest-first (the
// longest-processing-time heuristic for §2.1's middle difficulty
// class).
func SortDescending(w Workload) Reordered { return workload.SortDescending(w) }

// NewRandom builds a reproducible log-normal random-cost loop.
func NewRandom(n int, mean, sigma float64, seed int64) Workload {
	return workload.NewRandom(n, mean, sigma, seed)
}

// NewAutocorrelated builds an AR(1) cost series whose expensive
// iterations cluster (coefficient rho), the structure the sampling
// reorder exists for.
func NewAutocorrelated(n int, mean, sigma, rho float64, seed int64) Workload {
	return workload.NewAutocorrelated(n, mean, sigma, rho, seed)
}

// WriteCosts persists a workload's per-iteration costs as CSV.
func WriteCosts(w io.Writer, wl Workload) error { return workload.WriteCosts(w, wl) }

// ReadCosts loads a cost profile written by WriteCosts.
func ReadCosts(r io.Reader, label string) (FromCosts, error) {
	return workload.ReadCosts(r, label)
}

// OriginalIndex maps a (possibly reordered) workload iteration back to
// the underlying problem index.
func OriginalIndex(w Workload, i int) int { return workload.OriginalIndex(w, i) }

// ---- Mandelbrot (the paper's test problem) ----

// MandelbrotParams describe a rendering job; the zero Region is not
// valid — use PaperRegion.
type MandelbrotParams = mandelbrot.Params

// MandelbrotRegion is a window of the complex plane.
type MandelbrotRegion = mandelbrot.Region

// PaperRegion is [-2.0, 1.25] × [-1.25, 1.25], the paper's domain.
var PaperRegion = mandelbrot.PaperRegion

// MandelbrotColumn computes one column's per-row escape counts and its
// total work — the smallest schedulable unit of the paper's runs.
func MandelbrotColumn(p MandelbrotParams, c int) (rows []int, work int) {
	return mandelbrot.Column(p, c)
}

// MandelbrotWorkload builds the per-column cost workload of Figure 1.
func MandelbrotWorkload(p MandelbrotParams) Workload {
	return FromCosts{Label: "mandelbrot", Costs: mandelbrot.ColumnCosts(p)}
}

// RenderMandelbrot computes the full fractal image (Figure 2).
func RenderMandelbrot(p MandelbrotParams) *image.Gray { return mandelbrot.Render(p) }

// MandelbrotShadedColumn computes one column as shaded pixel bytes —
// the kernel for distributed renderers.
func MandelbrotShadedColumn(p MandelbrotParams, c int) []byte {
	return mandelbrot.ShadedColumn(p, c)
}

// AssembleMandelbrot builds the image from per-column pixel data.
func AssembleMandelbrot(p MandelbrotParams, columns [][]byte) *image.Gray {
	return mandelbrot.RenderColumns(p, columns)
}

// ---- Metrics ----

type (
	// Report is the outcome of one scheduled execution.
	Report = metrics.Report
	// Times is a per-PE T_com/T_wait/T_comp breakdown.
	Times = metrics.Times
	// Speedup is one point of a speedup curve.
	Speedup = metrics.Speedup
)

// FormatTable renders reports in the paper's Tables 2–3 layout.
func FormatTable(title string, reports []Report) string {
	return metrics.FormatTable(title, reports)
}

// PlotSpeedups renders speedup curves as a terminal chart.
func PlotSpeedups(title string, curves map[string][]Speedup, height int) string {
	return metrics.PlotSpeedups(title, curves, height)
}

// Sparkline renders a numeric series as a compact unicode bar string.
func Sparkline(values []float64, width int) string {
	return metrics.Sparkline(values, width)
}

// SpeedupSVG renders Figure 4–7 style curves as a standalone SVG.
func SpeedupSVG(title string, curves map[string][]Speedup) string {
	return viz.SpeedupSVG(title, curves)
}

// GanttSVG renders an execution trace as an SVG Gantt chart.
func GanttSVG(tr *Trace) string { return viz.GanttSVG(tr) }

// ProfileSVG renders Figure 1 style cost distributions as SVG.
func ProfileSVG(title string, series map[string][]float64) string {
	return viz.ProfileSVG(title, series)
}

// ---- Cluster simulation ----

type (
	// Cluster is a simulated set of slave machines.
	Cluster = sim.Cluster
	// Machine is one simulated slave (power, link, load timeline).
	Machine = sim.Machine
	// Link is a slave's connection to the master.
	Link = sim.Link
	// LoadPhase is an interval of external load on a machine.
	LoadPhase = sim.LoadPhase
	// LoadScript is a machine's external-load timeline.
	LoadScript = sim.LoadScript
	// SimParams tunes the simulated protocol.
	SimParams = sim.Params
	// TreeOptions tunes a Tree Scheduling run.
	TreeOptions = tree.Options
)

// Link speeds, in bytes per second.
const (
	Mbit10  = sim.Mbit10
	Mbit100 = sim.Mbit100
)

// Simulate runs the workload on the cluster under the scheme in the
// discrete-event simulator and returns the paper-style report.
//
// Deprecated: Simulate is a legacy adapter kept for compatibility; use
// Run(ctx, RunSpec{Backend: BackendSim, …}), which adds cancellation
// and the hierarchical runtime behind the same spec, or NewScheduler
// for a stream of jobs. See the deprecation policy in README.md.
func Simulate(c Cluster, s Scheme, w Workload, p SimParams) (Report, error) {
	return sim.Run(c, s, w, p)
}

// SimulateTree runs Tree Scheduling on the simulated cluster.
func SimulateTree(c Cluster, o TreeOptions, w Workload, p SimParams) (Report, error) {
	return tree.Run(c, o, w, p)
}

// AffinityOptions tune an Affinity Scheduling run (Markatos &
// LeBlanc, the paper's reference [12]).
type AffinityOptions = affinity.Options

// SimulateAffinity runs Affinity Scheduling on the simulated cluster.
func SimulateAffinity(c Cluster, o AffinityOptions, w Workload, p SimParams) (Report, error) {
	return affinity.Run(c, o, w, p)
}

// ReadCluster parses a JSON cluster description (see
// internal/sim.ClusterConfig for the schema) into a Cluster.
func ReadCluster(r io.Reader) (Cluster, error) { return sim.ReadCluster(r) }

// WriteCluster serialises a Cluster as JSON config.
func WriteCluster(w io.Writer, c Cluster) error { return sim.WriteCluster(w, c) }

// PaperCluster builds the paper's testbed mix for p slaves (3 fast :
// 5 slow at p = 8, 3× power ratio, 100/10 Mbit links), optionally with
// the §5.1 non-dedicated background load.
func PaperCluster(p int, nondedicated bool) Cluster {
	return experiments.Cluster(p, nondedicated)
}

// Load-timeline generators for non-dedicated experiments (see
// internal/loadgen): constant background processes (the paper's §5.1
// load), a single burst, Poisson job arrivals, a periodic square wave,
// and a monotone staircase.
func ConstantLoad(extra int) LoadScript { return loadgen.Constant(extra) }
func WindowLoad(start, end float64, extra int) LoadScript {
	return loadgen.Window(start, end, extra)
}
func PoissonLoad(rate, meanDuration, horizon float64, seed int64) LoadScript {
	return loadgen.Poisson(rate, meanDuration, horizon, seed)
}
func SquareLoad(period, duty, horizon float64, extra int) LoadScript {
	return loadgen.Square(period, duty, horizon, extra)
}
func StaircaseLoad(interval float64, steps int) LoadScript {
	return loadgen.Staircase(interval, steps)
}

// ---- Execution traces ----

// Trace records chunk-level execution events; attach one via
// SimParams.Trace or LocalExecutor.Trace, then render with Gantt or
// export with WriteCSV.
type Trace = trace.Trace

// TraceEvent is one chunk's lifecycle on a worker.
type TraceEvent = trace.Event

// ---- Live telemetry ----

// Telemetry is a live observation session: an event bus every backend
// publishes protocol events to, feeding a metric aggregator, an
// optional HTTP debug endpoint (Prometheus /metrics, expvar,
// net/http/pprof), and an optional Perfetto trace exporter. Attach one
// via RunSpec.Telemetry; one session can observe several runs in
// sequence. Close it when done.
type Telemetry = telemetry.Telemetry

// TelemetryOptions configures NewTelemetry: DebugAddr starts the HTTP
// debug server, Perfetto streams Chrome trace-event JSON to a writer,
// BufferSize overrides the event ring capacity.
type TelemetryOptions = telemetry.Options

// TelemetryEvent is one protocol event on the bus; see Telemetry.
type TelemetryEvent = telemetry.Event

// NewTelemetry starts a live telemetry session.
func NewTelemetry(o TelemetryOptions) (*Telemetry, error) { return telemetry.New(o) }

// ---- Real executors ----

type (
	// LocalExecutor runs a loop with goroutine workers and a channel
	// master (or, with Engine: EngineSteal, per-worker work-stealing
	// deques). Its Run method is a legacy adapter; prefer
	// Run(ctx, RunSpec{Backend: BackendLocal, …}).
	LocalExecutor = exec.Local
	// WorkerSpec emulates one heterogeneous worker in-process.
	WorkerSpec = exec.WorkerSpec
	// Master is the net/rpc scheduling service.
	Master = exec.Master
	// Worker is a net/rpc slave.
	Worker = exec.Worker
	// Kernel computes one iteration and serialises its result.
	Kernel = exec.Kernel
	// ChunkArgs/ChunkReply/ChunkResult are the RPC wire types.
	ChunkArgs   = exec.ChunkArgs
	ChunkReply  = exec.ChunkReply
	ChunkResult = exec.ChunkResult
	// RPCTransport selects a worker's wire format: "binary" (the
	// framing codec of internal/wire) or "netrpc" (net/rpc + gob).
	// Masters serve both at once by sniffing each connection.
	RPCTransport = exec.Transport
)

// Local engine names for RunSpec.LocalEngine / LocalExecutor.Engine.
const (
	// EngineChannel drives one master goroutine over an unbuffered
	// channel — the paper's request/grant protocol verbatim.
	EngineChannel = exec.EngineChannel
	// EngineSteal runs a bounded Chase–Lev deque per worker with
	// batched policy refills; see docs/LOCAL.md.
	EngineSteal = exec.EngineSteal
)

// NewMaster builds an RPC master scheduling `iterations` across
// `workers` slaves under the scheme.
//
// Deprecated: NewMaster + Serve + Wait is the manual wiring for
// multi-process deployments (cmd/master still uses it for real
// clusters); when everything runs in one process, use
// Run(ctx, RunSpec{Backend: BackendRPC, …}), which self-hosts the
// master and workers on loopback and supports cancellation, or
// NewScheduler for a stream of jobs. See the deprecation policy in
// README.md.
func NewMaster(scheme Scheme, iterations, workers int) (*Master, error) {
	return exec.NewMaster(scheme, iterations, workers)
}

// OSLoadProbe reads the host's real run-queue pressure from
// /proc/loadavg — the paper's Q_i signal — for Worker.LoadProbe.
func OSLoadProbe() func() int { return exec.OSLoadProbe() }

// ---- Message passing (the MPI-style substrate of internal/mp) ----

type (
	// Comm is one rank's communicator endpoint (rank 0 = master).
	Comm = mp.Comm
	// MPMessage is one received tagged message.
	MPMessage = mp.Message
	// MPMasterOptions tune RunMPMaster.
	MPMasterOptions = mp.MasterOptions
	// MPWorkerOptions describe one RunMPWorker slave.
	MPWorkerOptions = mp.WorkerOptions
)

// Receive wildcards.
const (
	AnySource = mp.AnySource
	AnyTag    = mp.AnyTag
)

// NewWorld creates an in-process message-passing world of n ranks.
func NewWorld(n int) ([]Comm, error) { return mp.NewWorld(n) }

// ListenTCP creates rank 0 of a TCP message-passing star.
func ListenTCP(ln net.Listener, size int) (Comm, error) { return mp.ListenTCP(ln, size) }

// DialTCP joins a TCP world as a worker rank.
func DialTCP(addr string, rank, size int) (Comm, error) { return mp.DialTCP(addr, rank, size) }

// RunMPMaster runs the paper's master program (§3.1) on rank 0.
//
// Deprecated: RunMPMaster is a legacy adapter kept for custom Comm
// wiring; use Run(ctx, RunSpec{Backend: BackendMP, …}) for in-process
// worlds, or RunMPMasterContext when you need cancellation over your
// own Comm. See the deprecation policy in README.md.
func RunMPMaster(c Comm, scheme Scheme, iterations int, opts MPMasterOptions) ([][]byte, Report, error) {
	return mp.RunMaster(c, scheme, iterations, opts)
}

// RunMPMasterContext is RunMPMaster with cancellation: when ctx ends
// the master stops every slave it has not already stopped and returns
// ctx's error.
func RunMPMasterContext(ctx context.Context, c Comm, scheme Scheme, iterations int, opts MPMasterOptions) ([][]byte, Report, error) {
	return mp.RunMasterContext(ctx, c, scheme, iterations, opts)
}

// RunMPWorker runs the paper's slave program on a non-zero rank.
func RunMPWorker(c Comm, opts MPWorkerOptions) error { return mp.RunWorker(c, opts) }
