package loopsched_test

import (
	"fmt"
	"strings"
	"testing"

	"loopsched"
)

// ExampleChunkSequence reproduces the paper's Example 2: the TFSS
// chunk sizes for I = 1000, p = 4.
func ExampleChunkSequence() {
	seq, _ := loopsched.ChunkSequence(loopsched.NewTFSS(), 1000, 4)
	fmt.Println(seq[:8])
	// Output: [113 113 113 113 81 81 81 81]
}

// ExampleSimulate runs DTSS on the paper's 8-slave heterogeneous
// cluster over a uniform loop and reports which scheme ran.
func ExampleSimulate() {
	cluster := loopsched.PaperCluster(8, false)
	rep, err := loopsched.Simulate(cluster, loopsched.NewDTSS(),
		loopsched.Uniform{N: 4000}, loopsched.SimParams{BaseRate: 1e5, BytesPerIter: 8})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Scheme, rep.Iterations)
	// Output: DTSS 4000
}

func TestFacadeSchemeConstructors(t *testing.T) {
	cases := []struct {
		s    loopsched.Scheme
		name string
		dist bool
	}{
		{loopsched.NewStatic(), "S", false},
		{loopsched.NewWeightedStatic(), "WS", false},
		{loopsched.NewSS(), "SS", false},
		{loopsched.NewCSS(16), "CSS(16)", false},
		{loopsched.NewGSS(0), "GSS", false},
		{loopsched.NewTSS(), "TSS", false},
		{loopsched.NewFSS(), "FSS", false},
		{loopsched.NewFISS(0), "FISS", false},
		{loopsched.NewTFSS(), "TFSS", false},
		{loopsched.NewWF(), "WF", false},
		{loopsched.NewDTSS(), "DTSS", true},
		{loopsched.NewDFSS(), "DFSS", true},
		{loopsched.NewDFISS(0), "DFISS", true},
		{loopsched.NewDTFSS(), "DTFSS", true},
	}
	for _, c := range cases {
		if c.s.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.s.Name(), c.name)
		}
		if loopsched.IsDistributed(c.s) != c.dist {
			t.Errorf("%s: IsDistributed = %v", c.name, !c.dist)
		}
		seq, err := loopsched.ChunkSequence(c.s, 500, 3)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		sum := 0
		for _, v := range seq {
			sum += v
		}
		if sum != 500 {
			t.Errorf("%s: coverage %d", c.name, sum)
		}
	}
}

func TestFacadeLookup(t *testing.T) {
	s, err := loopsched.LookupScheme("DTSS")
	if err != nil || s.Name() != "DTSS" {
		t.Fatalf("LookupScheme: %v, %v", s, err)
	}
	if len(loopsched.SchemeNames()) < 12 {
		t.Errorf("SchemeNames too short: %v", loopsched.SchemeNames())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	w := loopsched.NewConditional(100, 0.5, 2, 1, 7)
	if w.Len() != 100 {
		t.Errorf("conditional len %d", w.Len())
	}
	r := loopsched.Reorder(loopsched.LinearIncreasing{N: 10}, 2)
	if loopsched.OriginalIndex(r, 1) != 2 {
		t.Errorf("OriginalIndex = %d", loopsched.OriginalIndex(r, 1))
	}
}

func TestFacadeMandelbrot(t *testing.T) {
	p := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: 32, Height: 24, MaxIter: 50,
	}
	rows, work := loopsched.MandelbrotColumn(p, 16)
	if len(rows) != 24 || work < 24 {
		t.Errorf("column: %d rows, %d work", len(rows), work)
	}
	w := loopsched.MandelbrotWorkload(p)
	if w.Len() != 32 {
		t.Errorf("workload len %d", w.Len())
	}
	img := loopsched.RenderMandelbrot(p)
	if img.Bounds().Dx() != 32 {
		t.Errorf("image bounds %v", img.Bounds())
	}
}

func TestFacadeACP(t *testing.T) {
	m := loopsched.ACPModel{Scale: 10}
	if m.ACP(3, 4) != 7 {
		t.Errorf("ACP = %d", m.ACP(3, 4))
	}
}

func TestFacadeTreeSim(t *testing.T) {
	c := loopsched.PaperCluster(4, true)
	rep, err := loopsched.SimulateTree(c, loopsched.TreeOptions{Weighted: true},
		loopsched.Uniform{N: 1000}, loopsched.SimParams{BaseRate: 1e5, BytesPerIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 1000 || rep.Scheme != "TreeS" {
		t.Errorf("report %+v", rep)
	}
}

func TestFacadeNewSurface(t *testing.T) {
	// Scheme extensions.
	if loopsched.NewAWF().Name() != "AWF" || loopsched.NewDGSS(1).Name() != "DGSS" ||
		loopsched.NewDCSS(4).Name() != "DCSS(4)" {
		t.Error("extension constructors broken")
	}
	if loopsched.WithMinChunk(loopsched.NewTSS(), 8).Name() != "TSS+min8" {
		t.Error("WithMinChunk broken")
	}
	if !strings.Contains(loopsched.DescribeSchemes("TFSS"), "TFSS") {
		t.Error("DescribeSchemes broken")
	}
	if len(loopsched.SchemeCatalogue()) < 15 {
		t.Error("catalogue too small")
	}

	// Workload extensions.
	if loopsched.NewRandom(10, 1, 1, 1).Len() != 10 {
		t.Error("NewRandom broken")
	}
	sorted := loopsched.SortDescending(loopsched.FromCosts{Costs: []float64{1, 3, 2}})
	if sorted.Cost(0) != 3 {
		t.Error("SortDescending broken")
	}
	var sb strings.Builder
	if err := loopsched.WriteCosts(&sb, loopsched.Uniform{N: 3}); err != nil {
		t.Fatal(err)
	}
	loaded, err := loopsched.ReadCosts(strings.NewReader(sb.String()), "x")
	if err != nil || loaded.Len() != 3 {
		t.Errorf("costs round trip: %v %d", err, loaded.Len())
	}

	// Load generators.
	if loopsched.ConstantLoad(1).ExtraAt(5) != 1 {
		t.Error("ConstantLoad broken")
	}
	if loopsched.WindowLoad(1, 2, 3).ExtraAt(1.5) != 3 {
		t.Error("WindowLoad broken")
	}
	if loopsched.StaircaseLoad(1, 2).ExtraAt(10) != 2 {
		t.Error("StaircaseLoad broken")
	}
	if len(loopsched.PoissonLoad(1, 1, 10, 1)) == 0 {
		t.Error("PoissonLoad broken")
	}
	if loopsched.SquareLoad(1, 0.5, 2, 1).ExtraAt(0.25) != 1 {
		t.Error("SquareLoad broken")
	}

	// Plots.
	if !strings.Contains(loopsched.PlotSpeedups("t", map[string][]loopsched.Speedup{
		"A": {{P: 1, Sp: 1}},
	}, 6), "A") {
		t.Error("PlotSpeedups broken")
	}
	if loopsched.Sparkline([]float64{1, 2, 3}, 3) == "" {
		t.Error("Sparkline broken")
	}

	// Affinity + shared bus + trace via the facade.
	c := loopsched.PaperCluster(2, false)
	w := loopsched.Uniform{N: 500}
	tr := &loopsched.Trace{}
	params := loopsched.SimParams{BaseRate: 1e5, BytesPerIter: 2, SharedBus: true, Trace: tr}
	rep, err := loopsched.Simulate(c, loopsched.NewAWF(), w, params)
	if err != nil || rep.Iterations != 500 {
		t.Fatalf("bus+trace sim: %v %+v", err, rep)
	}
	if tr.Len() == 0 || tr.Gantt(40) == "" {
		t.Error("trace not recorded")
	}
	afs, err := loopsched.SimulateAffinity(c, loopsched.AffinityOptions{}, w,
		loopsched.SimParams{BaseRate: 1e5, BytesPerIter: 2})
	if err != nil || afs.Scheme != "AFS" {
		t.Errorf("affinity: %v %+v", err, afs)
	}
}

// TestFacadeMPWorld drives the message-passing surface end to end.
func TestFacadeMPWorld(t *testing.T) {
	world, err := loopsched.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	kernel := func(i int) []byte { return []byte{byte(i)} }
	done := make(chan error, 2)
	for r := 1; r <= 2; r++ {
		go func(r int) {
			done <- loopsched.RunMPWorker(world[r], loopsched.MPWorkerOptions{Kernel: kernel})
		}(r)
	}
	results, rep, err := loopsched.RunMPMaster(world[0], loopsched.NewTSS(), 100, loopsched.MPMasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if rep.Iterations != 100 || results[42][0] != 42 {
		t.Errorf("mp run: %+v", rep)
	}
	if loopsched.AnySource != -1 || loopsched.AnyTag != -1 {
		t.Error("wildcards broken")
	}
}

func TestFacadeMandelbrotHelpers(t *testing.T) {
	p := loopsched.MandelbrotParams{Region: loopsched.PaperRegion, Width: 8, Height: 6, MaxIter: 30}
	cols := make([][]byte, 8)
	for c := range cols {
		cols[c] = loopsched.MandelbrotShadedColumn(p, c)
	}
	img := loopsched.AssembleMandelbrot(p, cols)
	if img.Bounds().Dx() != 8 {
		t.Error("AssembleMandelbrot broken")
	}
}

func TestFacadeFormatTable(t *testing.T) {
	out := loopsched.FormatTable("t", []loopsched.Report{{
		Scheme: "TSS", Tp: 1, PerWorker: []loopsched.Times{{Comm: 1, Wait: 2, Comp: 3}},
	}})
	if out == "" {
		t.Error("empty table")
	}
}
