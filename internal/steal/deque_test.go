package steal

import (
	"sync"
	"sync/atomic"
	"testing"

	"loopsched/internal/sched"
)

func TestNewDequeCapacity(t *testing.T) {
	for _, tc := range []struct{ want, cap int }{
		{0, MinCapacity}, {1, MinCapacity}, {8, 8}, {9, 16}, {64, 64}, {65, 128},
	} {
		if got := NewDeque(tc.want).Cap(); got != tc.cap {
			t.Errorf("NewDeque(%d).Cap() = %d, want %d", tc.want, got, tc.cap)
		}
	}
}

func TestDequeLIFOPopFIFOSteal(t *testing.T) {
	d := NewDeque(8)
	for i := 0; i < 4; i++ {
		if !d.Push(sched.Assignment{Start: i * 10, Size: 10}) {
			t.Fatalf("Push %d failed on non-full deque", i)
		}
	}
	if n := d.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
	// Owner pops the newest.
	if a, ok := d.Pop(); !ok || a.Start != 30 {
		t.Fatalf("Pop = %+v, %v; want Start 30", a, ok)
	}
	// Thief steals the oldest.
	if a, ok := d.Steal(); !ok || a.Start != 0 {
		t.Fatalf("Steal = %+v, %v; want Start 0", a, ok)
	}
	if a, ok := d.Steal(); !ok || a.Start != 10 {
		t.Fatalf("Steal = %+v, %v; want Start 10", a, ok)
	}
	if a, ok := d.Pop(); !ok || a.Start != 20 {
		t.Fatalf("Pop = %+v, %v; want Start 20", a, ok)
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque reported ok")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque reported ok")
	}
}

func TestDequePushFull(t *testing.T) {
	d := NewDeque(MinCapacity)
	for i := 0; i < d.Cap(); i++ {
		if !d.Push(sched.Assignment{Start: i, Size: 1}) {
			t.Fatalf("Push %d failed below capacity", i)
		}
	}
	if d.Push(sched.Assignment{Start: 99, Size: 1}) {
		t.Fatal("Push succeeded on a full ring")
	}
	// Freeing one slot at the top re-admits a push (ring wrap-around).
	if _, ok := d.Steal(); !ok {
		t.Fatal("Steal failed on full deque")
	}
	if !d.Push(sched.Assignment{Start: 99, Size: 1}) {
		t.Fatal("Push failed after a steal freed a slot")
	}
}

// TestDequeStress hammers one owner (push/pop) against many thieves
// under -race: every pushed assignment must be consumed exactly once,
// with no torn (start, size) pairs observed.
func TestDequeStress(t *testing.T) {
	const (
		thieves = 4
		total   = 200000
	)
	d := NewDeque(64)
	// Each assignment i carries Size = i+1 so a torn pair is detectable.
	taken := make([]atomic.Int32, total)
	check := func(a sched.Assignment) {
		if a.Size != a.Start+1 {
			t.Errorf("torn read: %+v", a)
		}
		if n := taken[a.Start].Add(1); n != 1 {
			t.Errorf("assignment %d consumed %d times", a.Start, n)
		}
	}

	var wg sync.WaitGroup
	var done atomic.Bool
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if a, ok := d.Steal(); ok {
					check(a)
				}
			}
			// Final drain: the owner may have exited with work queued.
			for {
				a, ok := d.Steal()
				if !ok {
					return
				}
				check(a)
			}
		}()
	}

	next := 0
	for next < total {
		if d.Push(sched.Assignment{Start: next, Size: next + 1}) {
			next++
			continue
		}
		// Full: act like a worker and pop one.
		if a, ok := d.Pop(); ok {
			check(a)
		}
	}
	// Owner drains roughly half of the leftovers, racing the thieves
	// for the tail.
	for i := 0; i < d.Cap()/2; i++ {
		if a, ok := d.Pop(); ok {
			check(a)
		}
	}
	done.Store(true)
	wg.Wait()

	for i := range taken {
		if n := taken[i].Load(); n != 1 {
			t.Fatalf("assignment %d consumed %d times, want 1", i, n)
		}
	}
}

// The push/pop and steal alloc guards live in hotguard_test.go,
// generated from the //lint:loopsched-hotpath annotations.
