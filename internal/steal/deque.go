// Package steal is the lock-free substrate of the work-stealing local
// runtime: a bounded Chase–Lev deque of pre-sliced chunk assignments
// per worker, plus cache-line-padded per-worker counters. The owner
// pushes and pops at the bottom (LIFO, so the hottest chunk stays
// cache-warm and the fast path is two atomic loads and a store);
// thieves steal from the top (FIFO, so they take the oldest — and for
// decreasing-chunk schemes the largest — work, amortising the steal).
//
// The algorithm is the classic Chase & Le (SPAA 2005) dynamic circular
// deque, restricted to a fixed-capacity ring: the local executor
// refills a worker's deque with at most a credit-window of chunks at a
// time, so the ring never needs to grow and push can simply report
// "full". Two deviations keep the Go race detector honest without
// giving up the lock-freedom:
//
//   - Every slot field is accessed atomically. A thief may read a slot
//     that the owner is concurrently overwriting after a wrap-around,
//     but the overwrite is only permitted once top has advanced past
//     the thief's snapshot, so the thief's CompareAndSwap on top fails
//     and the torn value is discarded. Atomic field access makes that
//     benign race invisible to -race and well-defined under the Go
//     memory model.
//   - top and bottom sit on separate cache lines, as do the per-worker
//     counters, so a thief hammering one worker's top does not false-
//     share with the owner's bottom or with neighbouring workers.
package steal

import (
	"sync/atomic"

	"loopsched/internal/sched"
)

// cacheLine is the padding granularity. 128 bytes covers the adjacent-
// line prefetcher on current x86 parts as well as the 64-byte line.
const cacheLine = 128

// slot holds one assignment with atomically accessed fields. The two
// fields are not read as a unit: a torn (start, size) pair can only be
// observed by a thief whose subsequent CAS on top is guaranteed to
// fail, so the pair is never used.
type slot struct {
	start atomic.Int64
	size  atomic.Int64
}

// MinCapacity is the smallest ring a Deque will allocate.
const MinCapacity = 8

// Deque is one worker's bounded chunk deque. The zero value is not
// usable; construct with NewDeque. Push and Pop may be called only by
// the owning worker; Steal by any goroutine.
type Deque struct {
	_      [cacheLine]byte // keep neighbours off the bottom line
	bottom atomic.Int64    // next index the owner writes
	_      [cacheLine - 8]byte
	top    atomic.Int64 // next index a thief reads
	_      [cacheLine - 8]byte
	mask   int64
	slots  []slot
}

// NewDeque builds a deque holding at least capacity assignments
// (rounded up to a power of two, minimum MinCapacity).
func NewDeque(capacity int) *Deque {
	n := MinCapacity
	for n < capacity {
		n <<= 1
	}
	return &Deque{mask: int64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring capacity.
//
//lint:loopsched-hotpath
func (d *Deque) Cap() int { return len(d.slots) }

// Len returns a point-in-time size estimate (exact when only the owner
// is active).
//
//lint:loopsched-hotpath
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Push appends an assignment at the owner's end. It reports false when
// the ring is full; the owner then executes the chunk directly instead
// of queueing it. Owner-only.
//
//lint:loopsched-hotpath
func (d *Deque) Push(a sched.Assignment) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.slots)) {
		return false
	}
	s := &d.slots[b&d.mask]
	s.start.Store(int64(a.Start))
	s.size.Store(int64(a.Size))
	d.bottom.Store(b + 1)
	return true
}

// Pop removes the most recently pushed assignment (LIFO). It reports
// false when the deque is empty or a thief won the race for the last
// element. Owner-only.
//
//lint:loopsched-hotpath
func (d *Deque) Pop() (sched.Assignment, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom and bail.
		d.bottom.Store(t)
		return sched.Assignment{}, false
	}
	s := &d.slots[b&d.mask]
	a := sched.Assignment{Start: int(s.start.Load()), Size: int(s.size.Load())}
	if t == b {
		// Last element: race thieves for it through top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return sched.Assignment{}, false
		}
	}
	return a, true
}

// Steal removes the oldest assignment (FIFO). It reports false when
// the deque is empty. Safe for any goroutine, concurrently with the
// owner and other thieves.
//
//lint:loopsched-hotpath
func (d *Deque) Steal() (sched.Assignment, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return sched.Assignment{}, false
		}
		s := &d.slots[t&d.mask]
		a := sched.Assignment{Start: int(s.start.Load()), Size: int(s.size.Load())}
		if d.top.CompareAndSwap(t, t+1) {
			// The CAS proves the slot was not recycled between the read
			// and here (a recycling push requires top > t first), so the
			// pair is consistent.
			return a, true
		}
		// Lost to another thief or the owner's last-element pop; the
		// value may be torn — discard and retry from fresh indices.
	}
}

// Counters is one worker's event tally as a plain value snapshot.
// The live tally is an AtomicCounters; this type is what Snapshot
// materialises for reporting once no concurrent writer matters.
type Counters struct {
	// Pops counts chunks the owner took from its own deque.
	Pops int64
	// Steals counts chunks this worker stole from victims.
	Steals int64
	// FailedSteals counts full victim scans that found nothing.
	FailedSteals int64
	// Refills counts trips to the scheme policy under the refill lock.
	Refills int64
	// RefillChunks counts chunks those refills returned.
	RefillChunks int64
}

// AtomicCounters is the live form of Counters: each field is written
// by its owning worker and may be read at any moment by an observer
// (a scheduler snapshotting a running job's accounting), so every
// access is atomic — the atomic.Int64 method types make a plain mixed
// access unrepresentable, which is the discipline the
// atomicdiscipline analyzer enforces for function-style sites. The
// struct is padded so adjacent workers' counters never share a cache
// line.
type AtomicCounters struct {
	Pops         atomic.Int64
	Steals       atomic.Int64
	FailedSteals atomic.Int64
	Refills      atomic.Int64
	RefillChunks atomic.Int64
	_            [cacheLine - 5*8]byte
}

// Snapshot reads the tally atomically field by field. The result is
// not a consistent cross-field cut — fields advance independently —
// but each field is a valid count at some moment during the call,
// which is what live reporting needs.
func (c *AtomicCounters) Snapshot() Counters {
	return Counters{
		Pops:         c.Pops.Load(),
		Steals:       c.Steals.Load(),
		FailedSteals: c.FailedSteals.Load(),
		Refills:      c.Refills.Load(),
		RefillChunks: c.RefillChunks.Load(),
	}
}
