package steal

import (
	"os"
	"testing"

	"loopsched/internal/leakcheck"
)

// TestMain fails the binary if any goroutine spawned by the stress
// tests (owners, thieves) survives them.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
