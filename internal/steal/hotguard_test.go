package steal

import (
	"sort"
	"testing"

	"loopsched/internal/hotpath"
	"loopsched/internal/sched"
)

// hotGuards is this package's alloc-guard table: one entry per
// //lint:loopsched-hotpath function, generated against the annotations
// by TestHotPathGuardTable — annotating a new exported function fails
// that test until a guard lands here. Entries may share a guard when
// one steady-state cycle exercises several hot functions.
var hotGuards = map[string]func(t *testing.T){
	"(*Deque).Push":  dequeOwnerGuard,
	"(*Deque).Pop":   dequeOwnerGuard,
	"(*Deque).Steal": dequeStealGuard,
	"(*Deque).Len":   dequeReadGuard,
	"(*Deque).Cap":   dequeReadGuard,
}

// TestHotPathGuardTable pins hotGuards to the annotation set.
func TestHotPathGuardTable(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	missing, stale, err := hotpath.TableErrors(".", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("annotated hot function %s has no alloc guard; add a hotGuards entry", name)
	}
	for _, name := range stale {
		t.Errorf("hotGuards entry %s matches no annotated function; remove it or annotate", name)
	}
}

// TestHotPathAllocGuards runs every guard in the table.
func TestHotPathAllocGuards(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, hotGuards[name])
	}
}

// dequeOwnerGuard pins the owner fast path — push then pop — at zero
// steady-state allocations.
func dequeOwnerGuard(t *testing.T) {
	d := NewDeque(64)
	a := sched.Assignment{Start: 1, Size: 2}
	if n := testing.AllocsPerRun(1000, func() {
		d.Push(a)
		d.Pop()
	}); n != 0 {
		t.Fatalf("owner push+pop allocates %.1f/op, want 0", n)
	}
}

// dequeStealGuard pins the thief path at zero allocations too.
func dequeStealGuard(t *testing.T) {
	d := NewDeque(64)
	a := sched.Assignment{Start: 1, Size: 2}
	if n := testing.AllocsPerRun(1000, func() {
		d.Push(a)
		d.Steal()
	}); n != 0 {
		t.Fatalf("push+steal allocates %.1f/op, want 0", n)
	}
}

// dequeReadGuard covers the observer accessors.
func dequeReadGuard(t *testing.T) {
	d := NewDeque(64)
	d.Push(sched.Assignment{Start: 1, Size: 2})
	if n := testing.AllocsPerRun(1000, func() {
		if d.Len() > d.Cap() {
			panic("len exceeds cap")
		}
	}); n != 0 {
		t.Fatalf("Len+Cap allocates %.1f/op, want 0", n)
	}
}
