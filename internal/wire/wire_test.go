package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"testing"

	"loopsched/internal/sched"
)

// pipeEnd is one direction of an in-memory duplex pipe: reads drain
// one buffer, writes fill the other. The tests drive the protocol's
// strict request/reply alternation single-threaded, so plain buffers
// suffice — data is always written before the peer reads it.
type pipeEnd struct {
	r *bytes.Buffer
	w *bytes.Buffer
}

func (p pipeEnd) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipeEnd) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p pipeEnd) Close() error                { return nil }

// connPair builds a client and server Conn joined back to back. The
// client's preamble is consumed the way the listener sniffer would.
func connPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	var c2s, s2c bytes.Buffer
	client, err := NewClient(pipeEnd{r: &s2c, w: &c2s})
	if err != nil {
		t.Fatal(err)
	}
	// The preamble sits in the client's write buffer until the first
	// frame flushes it; force it out so the server can consume it.
	if err := client.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	server := NewServer(pipeEnd{r: &c2s, w: &s2c}, nil)
	if err := ConsumePreamble(server.br); err != nil {
		t.Fatal(err)
	}
	return client, server
}

func sampleRequests() []Request {
	return []Request{
		{},
		{Worker: 3, ACP: 17, CompSeconds: 1.25, IdleSeconds: 0.5, Credits: 4},
		{Worker: 0, Prefetch: true, Credits: 1, Results: []Record{{Index: 0, Data: nil}}},
		{
			Worker: 250, ACP: 1 << 20, CompSeconds: -3.5, IdleSeconds: 1e300,
			Prefetch: true, Credits: 8,
			Results: []Record{
				{Index: 7, Data: []byte{1, 2, 3}},
				{Index: 1 << 28, Data: bytes.Repeat([]byte{0xAB}, 10000)},
				{Index: 9, Data: []byte{}},
			},
		},
		{
			Worker: 2, ACP: 50, Credits: 4,
			Results: []Record{
				{Index: 3, Data: []byte{9}},
				{Index: 4, Data: []byte{8, 7}},
			},
			Spans: []uint64{1<<40 | 101, 0},
		},
		{
			Worker: 5, Prefetch: true, NoReply: true,
			Results: []Record{{Index: 12, Data: []byte{6, 6, 6}}},
		},
	}
}

func sampleReplies() []Reply {
	return []Reply{
		{},
		{Stop: true},
		{Err: "no such worker 9"},
		{Stop: true, Err: "cancelled"},
		{Grants: []sched.Assignment{{Start: 0, Size: 1}}},
		{Grants: []sched.Assignment{{Start: 100, Size: 50}, {Start: 150, Size: 25}, {Start: 1 << 29, Size: 1 << 29}}},
		{
			Grants: []sched.Assignment{{Start: 0, Size: 10}, {Start: 10, Size: 5}},
			Spans:  []uint64{1, 11},
		},
	}
}

// spansEqual treats nil and empty as equal, like the slice reuse in
// the decoders.
func spansEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reqEqual compares decoded against sent, treating nil and empty
// slices as equal (the decoder reuses caller slices) and floats
// bit-for-bit (NaN payloads must survive the trip).
func reqEqual(a, b *Request) bool {
	if a.Worker != b.Worker || a.ACP != b.ACP ||
		math.Float64bits(a.CompSeconds) != math.Float64bits(b.CompSeconds) ||
		math.Float64bits(a.IdleSeconds) != math.Float64bits(b.IdleSeconds) ||
		a.Prefetch != b.Prefetch || a.NoReply != b.NoReply || a.Credits != b.Credits ||
		len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		if a.Results[i].Index != b.Results[i].Index ||
			!bytes.Equal(a.Results[i].Data, b.Results[i].Data) {
			return false
		}
	}
	return spansEqual(a.Spans, b.Spans)
}

func repEqual(a, b *Reply) bool {
	if a.Stop != b.Stop || a.Err != b.Err || len(a.Grants) != len(b.Grants) {
		return false
	}
	for i := range a.Grants {
		if a.Grants[i] != b.Grants[i] {
			return false
		}
	}
	return spansEqual(a.Spans, b.Spans)
}

func TestRequestRoundTrip(t *testing.T) {
	var got Request
	for i, want := range sampleRequests() {
		body, err := appendRequest(nil, &want)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if err := decodeRequest(body, &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reqEqual(&want, &got) {
			t.Errorf("case %d: round trip mismatch:\nsent %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var got Reply
	for i, want := range sampleReplies() {
		body, err := appendReply(nil, &want)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if err := decodeReply(body, &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !repEqual(&want, &got) {
			t.Errorf("case %d: round trip mismatch:\nsent %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestEncodeRejectsNegativeFields(t *testing.T) {
	for i, r := range []Request{
		{Worker: -1},
		{ACP: -1},
		{Credits: -1},
		{Results: []Record{{Index: -1}}},
	} {
		if _, err := appendRequest(nil, &r); !errors.Is(err, ErrCorrupt) {
			t.Errorf("request case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	for i, r := range []Reply{
		{Grants: []sched.Assignment{{Start: -1, Size: 1}}},
		{Grants: []sched.Assignment{{Start: 0, Size: -1}}},
	} {
		if _, err := appendReply(nil, &r); !errors.Is(err, ErrCorrupt) {
			t.Errorf("reply case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

// TestDecodeErrors feeds structurally broken bodies to both decoders.
// Every case must draw an error from both (a request body is never a
// valid reply and vice versa — the type byte differs), and none may
// panic.
func TestDecodeErrors(t *testing.T) {
	validReq, err := appendRequest(nil, &sampleRequests()[3])
	if err != nil {
		t.Fatal(err)
	}
	validRep, err := appendReply(nil, &sampleReplies()[5])
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"unknown type byte", []byte{0x7F}},
		{"truncated varint", []byte{frameRequest, 0x80}},
		{"request truncated floats", []byte{frameRequest, 0x01, 0x02, 0x00}},
		{"request truncated mid-frame", validReq[:len(validReq)/2]},
		{"request trailing bytes", append(append([]byte{}, validReq...), 0x00)},
		{"lying result count", append(append([]byte{}, validReq[:22]...), 0x00, 0x01, 0xFF, 0xFF, 0x03)},
		{"reply missing flags", []byte{frameReply}},
		{"reply error flag without text", []byte{frameReply, flagError}},
		{"reply error text truncated", []byte{frameReply, flagError, 0x10, 'x'}},
		{"lying grant count", []byte{frameReply, 0x00, 0xFF, 0xFF, 0x03, 0x01}},
		{"reply trailing bytes", append(append([]byte{}, validRep...), 0x00)},
		{"count over MaxFrame", append([]byte{frameReply, 0x00}, binary.AppendUvarint(nil, MaxFrame+1)...)},
		// Span-block corruption: the flag with nothing to attach spans
		// to is non-canonical, and a flagged frame must carry exactly
		// one span per item.
		{"request span flag without records", []byte{frameRequest, 0x00, 0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, flagRecordSpans, 0x01, 0x00}},
		{"reply span flag without grants", []byte{frameReply, flagSpans, 0x00}},
		{"reply span block truncated", []byte{frameReply, flagSpans, 0x02, 0x00, 0x01, 0x01, 0x02, 0x07}},
		{"reply span block overlong", []byte{frameReply, flagSpans, 0x01, 0x00, 0x01, 0x07, 0x08}},
	}
	for _, c := range cases {
		var req Request
		if err := decodeRequest(c.body, &req); err == nil {
			t.Errorf("decodeRequest(%s): no error", c.name)
		}
		var rep Reply
		if err := decodeReply(c.body, &rep); err == nil {
			t.Errorf("decodeReply(%s): no error", c.name)
		}
	}
}

// TestSpanlessEncodingMatchesV1 pins the span-free encodings to the
// protocol-v1 byte layout with hand-built golden frames: enabling span
// support must not move a single byte of a frame that carries no
// spans, so span-less peers keep interoperating.
func TestSpanlessEncodingMatchesV1(t *testing.T) {
	req := Request{Worker: 3, ACP: 17, CompSeconds: 1.0, Credits: 2,
		Results: []Record{{Index: 7, Data: []byte{0xAA, 0xBB}}}}
	golden := []byte{frameRequest, 3, 17}
	golden = binary.LittleEndian.AppendUint64(golden, math.Float64bits(1.0))
	golden = binary.LittleEndian.AppendUint64(golden, math.Float64bits(0.0))
	golden = append(golden, 0x00, 2, 1, 7, 2, 0xAA, 0xBB)
	body, err := appendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, golden) {
		t.Errorf("span-less request encoding drifted from v1:\ngot  % x\nwant % x", body, golden)
	}

	rep := Reply{Grants: []sched.Assignment{{Start: 100, Size: 50}, {Start: 150, Size: 25}}}
	repGolden := []byte{frameReply, 0x00, 2, 100, 50, 150, 1, 25}
	repBody, err := appendReply(nil, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repBody, repGolden) {
		t.Errorf("span-less reply encoding drifted from v1:\ngot  % x\nwant % x", repBody, repGolden)
	}
}

// TestSpanEncodingAppendsOnly proves the grant sequence is
// byte-identical with and without span ids: a span-carrying reply is
// the span-less encoding with only the flag bit set and the span block
// appended after the grants.
func TestSpanEncodingAppendsOnly(t *testing.T) {
	grants := []sched.Assignment{{Start: 0, Size: 10}, {Start: 10, Size: 5}, {Start: 1 << 20, Size: 3}}
	spans := []uint64{5, 15, 1<<40 | 9}
	plain, err := appendReply(nil, &Reply{Grants: grants})
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := appendReply(nil, &Reply{Grants: grants, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) <= len(plain) {
		t.Fatalf("tagged frame (%d bytes) not longer than plain (%d)", len(tagged), len(plain))
	}
	if tagged[0] != plain[0] {
		t.Errorf("type byte changed: %x vs %x", tagged[0], plain[0])
	}
	if tagged[1] != plain[1]|flagSpans {
		t.Errorf("flags = %x, want %x", tagged[1], plain[1]|flagSpans)
	}
	if !bytes.Equal(tagged[2:len(plain)], plain[2:]) {
		t.Errorf("grant bytes differ with spans enabled:\nplain  % x\ntagged % x", plain[2:], tagged[2:len(plain)])
	}
	var wantBlock []byte
	for _, s := range spans {
		wantBlock = binary.AppendUvarint(wantBlock, s)
	}
	if !bytes.Equal(tagged[len(plain):], wantBlock) {
		t.Errorf("span block = % x, want % x", tagged[len(plain):], wantBlock)
	}

	// Mismatched span counts must be rejected at encode time.
	if _, err := appendReply(nil, &Reply{Grants: grants, Spans: spans[:1]}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("span/grant count mismatch: err = %v, want ErrCorrupt", err)
	}
	if _, err := appendRequest(nil, &Request{Results: []Record{{Index: 1}}, Spans: []uint64{1, 2}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("span/result count mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestConsumePreamble(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"valid", preamble[:], nil},
		{"bad magic", []byte{0x01, 'L', 'S', Version}, ErrCorrupt},
		{"bad tag", []byte{Magic, 'X', 'S', Version}, ErrCorrupt},
		{"future version", []byte{Magic, 'L', 'S', Version + 1}, ErrVersion},
		{"truncated", preamble[:2], io.ErrUnexpectedEOF},
	}
	for _, c := range cases {
		err := ConsumePreamble(newConn(pipeEnd{r: bytes.NewBuffer(c.raw)}, nil).br)
		if c.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestConnRoundTrip exercises the full framed dialogue over the
// in-memory pipe, both directions.
func TestConnRoundTrip(t *testing.T) {
	client, server := connPair(t)

	req := sampleRequests()[3]
	if err := client.WriteRequest(&req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := server.ReadRequest(&got); err != nil {
		t.Fatal(err)
	}
	if !reqEqual(&req, &got) {
		t.Fatalf("request mismatch:\nsent %+v\ngot  %+v", req, got)
	}

	rep := sampleReplies()[5]
	if err := server.WriteReply(&rep); err != nil {
		t.Fatal(err)
	}
	var gotRep Reply
	if err := client.ReadReply(&gotRep); err != nil {
		t.Fatal(err)
	}
	if !repEqual(&rep, &gotRep) {
		t.Fatalf("reply mismatch:\nsent %+v\ngot  %+v", rep, gotRep)
	}
}

// TestCallServerError runs a real synchronous Call over net.Pipe: a
// reply carrying Err must surface as a ServerError, mirroring
// rpc.ServerError.
func TestCallServerError(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	defer cliEnd.Close()
	defer srvEnd.Close()

	go func() {
		server := NewServer(srvEnd, nil)
		if err := ConsumePreamble(server.br); err != nil {
			return
		}
		var req Request
		if server.ReadRequest(&req) != nil {
			return
		}
		server.WriteReply(&Reply{Err: "no such worker 9"})
	}()

	client, err := NewClient(cliEnd)
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	var rep Reply
	err = client.Call(&req, &rep)
	var sErr ServerError
	if !errors.As(err, &sErr) {
		t.Fatalf("Call err = %v (%T), want ServerError", err, err)
	}
	if sErr.Error() != "no such worker 9" {
		t.Fatalf("ServerError = %q", sErr)
	}
}

// TestFrameLimits: a header claiming more than MaxFrame is rejected
// before any body bytes are read, and a zero-length frame is corrupt.
func TestFrameLimits(t *testing.T) {
	var raw bytes.Buffer
	raw.Write(binary.AppendUvarint(nil, MaxFrame+1))
	c := newConn(pipeEnd{r: &raw}, nil)
	if _, err := c.readFrame(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized header: err = %v, want ErrTooLarge", err)
	}

	raw.Reset()
	raw.WriteByte(0)
	c = newConn(pipeEnd{r: &raw}, nil)
	if _, err := c.readFrame(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty frame: err = %v, want ErrCorrupt", err)
	}
}

// TestLyingLengthDoesNotOverAllocate: a truncated stream whose header
// claims a huge body must fail with the scratch buffer grown only as
// far as bytes actually arrived — a lying header cannot reserve
// megabytes.
func TestLyingLengthDoesNotOverAllocate(t *testing.T) {
	var raw bytes.Buffer
	raw.Write(binary.AppendUvarint(nil, 512<<20)) // claims 512 MiB
	raw.Write([]byte{frameRequest, 1, 2, 3})      // …delivers 4 bytes
	c := newConn(pipeEnd{r: &raw}, nil)
	_, err := c.readFrame()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if cap(c.rbuf) > 64<<10 {
		t.Fatalf("scratch buffer grew to %d bytes on a truncated stream", cap(c.rbuf))
	}
}

// TestCleanEOFBetweenFrames: a connection closed between frames reads
// as plain io.EOF (the serve loops treat that as orderly shutdown),
// while one closed mid-frame does not.
func TestCleanEOFBetweenFrames(t *testing.T) {
	c := newConn(pipeEnd{r: &bytes.Buffer{}}, nil)
	if _, err := c.readFrame(); err != io.EOF {
		t.Fatalf("between frames: err = %v, want io.EOF", err)
	}

	var raw bytes.Buffer
	raw.Write(binary.AppendUvarint(nil, 10))
	raw.Write([]byte{frameRequest, 1})
	c = newConn(pipeEnd{r: &raw}, nil)
	if _, err := c.readFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame: err = %v, want ErrUnexpectedEOF", err)
	}
}

// The codec and framing alloc guards live in hotguard_test.go,
// generated from the //lint:loopsched-hotpath annotations.

// FuzzWireDecode drives both decoders with arbitrary bodies. The
// contract under fuzz: errors are fine, panics are not, and any body
// that decodes successfully must round-trip through the encoder to an
// equivalent value (canonical form).
func FuzzWireDecode(f *testing.F) {
	for _, r := range sampleRequests() {
		if body, err := appendRequest(nil, &r); err == nil {
			f.Add(body)
		}
	}
	for _, r := range sampleReplies() {
		if body, err := appendReply(nil, &r); err == nil {
			f.Add(body)
		}
	}
	f.Add([]byte{frameRequest, 0x80})
	f.Add([]byte{frameReply, flagError, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Ledger frames: a well-formed claim, a well-formed huge step, a
	// lying count past MaxFrame, a truncated varint, and trailing junk.
	if b, err := appendFetchAdd(nil, 8); err == nil {
		f.Add(b)
	}
	f.Add(appendStep(nil, 1<<63))
	f.Add([]byte{frameFetchAdd, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte{frameFetchAdd, 0x80})
	f.Add([]byte{frameStep, 0x07, 0x07})

	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := decodeRequest(body, &req); err == nil {
			re, err := appendRequest(nil, &req)
			if err != nil {
				t.Fatalf("decoded request does not re-encode: %v (%+v)", err, req)
			}
			var req2 Request
			if err := decodeRequest(re, &req2); err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if !reqEqual(&req, &req2) {
				t.Fatalf("request not canonical:\nfirst  %+v\nsecond %+v", req, req2)
			}
		}
		var rep Reply
		if err := decodeReply(body, &rep); err == nil {
			re, err := appendReply(nil, &rep)
			if err != nil {
				t.Fatalf("decoded reply does not re-encode: %v (%+v)", err, rep)
			}
			var rep2 Reply
			if err := decodeReply(re, &rep2); err != nil {
				t.Fatalf("re-encoded reply does not decode: %v", err)
			}
			if !repEqual(&rep, &rep2) {
				t.Fatalf("reply not canonical:\nfirst  %+v\nsecond %+v", rep, rep2)
			}
		}
		if n, err := decodeFetchAdd(body); err == nil {
			if n <= 0 || n > MaxFrame {
				t.Fatalf("decodeFetchAdd accepted out-of-range count %d", n)
			}
			re, err := appendFetchAdd(nil, n)
			if err != nil {
				t.Fatalf("decoded fetchadd does not re-encode: %v (n=%d)", err, n)
			}
			if n2, err := decodeFetchAdd(re); err != nil || n2 != n {
				t.Fatalf("fetchadd not canonical: n=%d re=%d err=%v", n, n2, err)
			}
		}
		if step, err := decodeStep(body); err == nil {
			// Any uint64 is a legal step (lying values are discarded at
			// the table lookup), but the codec must stay canonical.
			re := appendStep(nil, step)
			if s2, err := decodeStep(re); err != nil || s2 != step {
				t.Fatalf("step not canonical: step=%d re=%d err=%v", step, s2, err)
			}
		}
	})
}
