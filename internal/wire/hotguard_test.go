package wire

import (
	"bytes"
	"sort"
	"testing"

	"loopsched/internal/hotpath"
	"loopsched/internal/sched"
)

// hotGuards is this package's alloc-guard table: one entry per
// //lint:loopsched-hotpath function, checked against the annotations
// by TestHotPathGuardTable — annotating a new exported function fails
// that test until a guard lands here. One steady-state cycle guards
// several hot functions at once: the codec round trip covers the
// append/decode/reset layer, the framed round trip covers the Conn
// layer on top of it (Call is WriteRequest + ReadReply composed).
var hotGuards = map[string]func(t *testing.T){
	"(*Request).reset":        codecGuard,
	"(*Reply).Reset":          codecGuard,
	"appendRequest":           codecGuard,
	"appendReply":             codecGuard,
	"decodeRequest":           codecGuard,
	"decodeReply":             codecGuard,
	"(*Conn).writeFrame":      connGuard,
	"(*Conn).queueFrame":      connGuard,
	"(*Conn).QueueRequest":    ledgerConnGuard,
	"(*Conn).WriteRequest":    connGuard,
	"(*Conn).WriteReply":      connGuard,
	"(*Conn).readBody":        connGuard,
	"(*Conn).readFrame":       connGuard,
	"(*Conn).publishReceived": connGuard,
	"(*Conn).ReadRequest":     connGuard,
	"(*Conn).ReadReply":       connGuard,
	"(*Conn).Call":            connGuard,
	"appendFetchAdd":          ledgerCodecGuard,
	"decodeFetchAdd":          ledgerCodecGuard,
	"appendStep":              ledgerCodecGuard,
	"decodeStep":              ledgerCodecGuard,
	"(*Conn).WriteFetchAdd":   ledgerConnGuard,
	"(*Conn).WriteStep":       ledgerConnGuard,
	"(*Conn).ReadStep":        ledgerConnGuard,
	"(*Conn).FetchAdd":        ledgerConnGuard,
	"(*Conn).ReadClientFrame": ledgerConnGuard,
}

// TestHotPathGuardTable pins hotGuards to the annotation set.
func TestHotPathGuardTable(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	missing, stale, err := hotpath.TableErrors(".", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("annotated hot function %s has no alloc guard; add a hotGuards entry", name)
	}
	for _, name := range stale {
		t.Errorf("hotGuards entry %s matches no annotated function; remove it or annotate", name)
	}
}

// TestHotPathAllocGuards runs every guard in the table exactly once
// per distinct guard (many names share one cycle).
func TestHotPathAllocGuards(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, hotGuards[name])
	}
}

// codecGuard pins the steady-state property the package exists for:
// encoding and decoding a realistic batch into reused buffers performs
// zero allocations per round trip.
func codecGuard(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 2048)
	req := Request{
		Worker: 3, ACP: 17, CompSeconds: 0.012, IdleSeconds: 0.001,
		Prefetch: true, Credits: 8,
		Results: []Record{{Index: 41, Data: payload}, {Index: 42, Data: payload}},
	}
	rep := Reply{Grants: []sched.Assignment{{Start: 100, Size: 25}, {Start: 125, Size: 25}}}

	buf := make([]byte, 0, 8192)
	decReq := Request{Results: make([]Record, 0, 4)}
	decRep := Reply{Grants: make([]sched.Assignment, 0, 4)}

	allocs := testing.AllocsPerRun(1000, func() {
		b, err := appendRequest(buf[:0], &req)
		if err != nil {
			panic(err)
		}
		if err := decodeRequest(b, &decReq); err != nil {
			panic(err)
		}
		b, err = appendReply(buf[:0], &rep)
		if err != nil {
			panic(err)
		}
		if err := decodeReply(b, &decRep); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("codec round trip allocates %.1f times per op, want 0", allocs)
	}
}

// ledgerCodecGuard pins the single-uvarint ledger frames to zero
// allocations per encode/decode pair.
func ledgerCodecGuard(t *testing.T) {
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		b, err := appendFetchAdd(buf[:0], 8)
		if err != nil {
			panic(err)
		}
		if _, err := decodeFetchAdd(b); err != nil {
			panic(err)
		}
		b = appendStep(buf[:0], 1<<40)
		if _, err := decodeStep(b); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ledger codec round trip allocates %.1f times per op, want 0", allocs)
	}
}

// ledgerConnGuard runs the framed ledger dialogue exactly as the
// worker does — a no-reply deposit queued unflushed, a FetchAdd claim
// whose flush ships both frames in one segment, the step reply — and
// demands the steady state stays allocation-free.
func ledgerConnGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the framing path")
	}
	client, server := connPair(t)
	deposit := Request{Worker: 1, Prefetch: true, NoReply: true,
		Results: []Record{{Index: 7, Data: []byte{1, 2, 3, 4}}}}
	decReq := Request{Results: make([]Record, 0, 4)}

	cycle := func() {
		if err := client.QueueRequest(&deposit); err != nil {
			panic(err)
		}
		if err := client.WriteFetchAdd(4); err != nil {
			panic(err)
		}
		kind, _, err := server.ReadClientFrame(&decReq)
		if err != nil || kind != KindRequest || !decReq.NoReply {
			panic("deposit dispatch failed")
		}
		kind, n, err := server.ReadClientFrame(&decReq)
		if err != nil || kind != KindFetchAdd || n != 4 {
			panic("fetchadd dispatch failed")
		}
		if err := server.WriteStep(12); err != nil {
			panic(err)
		}
		if step, err := client.ReadStep(); err != nil || step != 12 {
			panic("step round trip failed")
		}
	}
	cycle() // warm the scratch buffers and pools
	if allocs := testing.AllocsPerRun(1000, cycle); allocs >= 1 {
		t.Fatalf("ledger dialogue allocates %.1f times per op, want 0", allocs)
	}
}

// connGuard extends the guard through the framing layer: after
// warm-up, a full WriteRequest/ReadRequest + WriteReply/ReadReply
// cycle over a Conn allocates nothing. The bound is < 1 rather than
// == 0 only to tolerate a GC emptying the encode buffer pool
// mid-measurement.
func connGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the framing path")
	}
	client, server := connPair(t)
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	req := Request{
		Worker: 1, Credits: 4,
		Results: []Record{{Index: 7, Data: payload}},
	}
	rep := Reply{Grants: []sched.Assignment{{Start: 10, Size: 5}}}
	decReq := Request{Results: make([]Record, 0, 4)}
	decRep := Reply{Grants: make([]sched.Assignment, 0, 4)}

	cycle := func() {
		if err := client.WriteRequest(&req); err != nil {
			panic(err)
		}
		if err := server.ReadRequest(&decReq); err != nil {
			panic(err)
		}
		if err := server.WriteReply(&rep); err != nil {
			panic(err)
		}
		if err := client.ReadReply(&decRep); err != nil {
			panic(err)
		}
	}
	cycle() // warm the scratch buffers and pools
	if allocs := testing.AllocsPerRun(1000, cycle); allocs >= 1 {
		t.Fatalf("framed round trip allocates %.1f times per op, want 0", allocs)
	}
}
