//go:build race

package wire

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in production builds.
const raceEnabled = true
