// Package wire implements the binary wire protocol of the chunk
// runtimes: a length-prefixed, varint-headed framing codec for the
// master–slave self-scheduling dialogue that replaces net/rpc's
// reflective gob encoding on the hot path.
//
// Design constraints, in order:
//
//  1. No reflection and no per-frame allocations on the steady-state
//     path. Frames encode into pooled buffers (sync.Pool) and decode
//     into caller-owned structs whose slices are reused call over
//     call; decoded []byte payloads alias the connection's read
//     buffer and are valid until the next Read on the same Conn.
//  2. The decoder must never panic and never over-allocate on
//     corrupt, truncated or oversized input: every count is validated
//     against the bytes actually present before memory is reserved,
//     and the frame-body buffer grows incrementally as payload bytes
//     arrive, so a lying length header cannot reserve gigabytes.
//  3. One frame carries a batch. A request ships N completion
//     records and asks for up to Credits grants; a reply grants up to
//     that many chunks. This generalises the RPC runtime's two-slot
//     prefetch to a configurable credit window.
//
// Frame layout (see docs/PROTOCOL.md for the normative description):
//
//	uvarint bodyLen | body
//
//	request body: 0x01 | uvarint worker | uvarint acp |
//	              fixed64 compSeconds | fixed64 idleSeconds |
//	              flags (bit0 prefetch, bit1 record spans, bit2 no-reply) |
//	              uvarint credits |
//	              uvarint nResults | nResults × record |
//	              [nResults × uvarint span]          (iff bit1 set)
//	record:       uvarint index | uvarint dataLen | dataLen bytes
//
//	reply body:   0x02 | flags (bit0 stop, bit1 error, bit2 spans) |
//	              [uvarint errLen | errLen bytes] |
//	              uvarint nGrants | nGrants × (uvarint start | uvarint size) |
//	              [nGrants × uvarint span]           (iff bit2 set)
//
//	fetchadd body: 0x03 | uvarint n                  (claim n steps)
//	step body:     0x04 | uvarint step               (first claimed step)
//
// FetchAdd/Step are the one-sided ledger dialogue (docs/LEDGER.md): a
// worker claims n scheduling steps with a fetch-and-add on the
// server's step counter and computes its own chunk boundaries from a
// replicated table, so the frames carry a single uvarint each instead
// of a grant batch. The no-reply request flag (bit2) marks a
// deposit-only request — piggy-backed completion records for which the
// client will not read a reply; servers must not write one.
//
// Span blocks are optional trailing fields: a frame without the span
// flag is byte-identical to protocol v1, so span-aware and span-less
// peers interoperate on the same sniffed listener, and the gob
// fallback is unaffected. A span flag with a zero item count is
// rejected as non-canonical (the encoder never produces it), which
// keeps decode→re-encode byte-stable.
//
// A connection opens with a 4-byte preamble (Magic 'L' 'S' Version)
// written by the client, which lets a server share one listener
// between this protocol and net/rpc by sniffing the first byte: gob's
// self-describing streams never start with Magic.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"loopsched/internal/sched"
)

const (
	// Magic is the first byte of the connection preamble. It is
	// deliberately outside the range a gob stream can start with (gob
	// messages open with a small positive byte count), so a listener
	// can sniff one byte to tell the two protocols apart.
	Magic = 0xA7

	// Version is the protocol revision carried in the preamble's
	// fourth byte. Decoders reject preambles from a later major
	// revision instead of misparsing them.
	Version = 1

	// MaxFrame bounds a frame body. Matches the mp transport's 1 GiB
	// sanity limit; anything larger is a corrupt or hostile header.
	MaxFrame = 1 << 30

	frameRequest  = 0x01
	frameReply    = 0x02
	frameFetchAdd = 0x03
	frameStep     = 0x04

	flagPrefetch    = 1 << 0
	flagRecordSpans = 1 << 1 // request carries one span id per record
	flagNoReply     = 1 << 2 // deposit-only request: server must not reply
	flagStop        = 1 << 0
	flagError       = 1 << 1
	flagSpans       = 1 << 2 // reply carries one span id per grant
)

// Kind discriminates the client-originated frame types a ledger-aware
// server can receive interleaved on one connection.
type Kind byte

// Client frame kinds, as returned by Conn.ReadClientFrame.
const (
	KindRequest  Kind = frameRequest
	KindFetchAdd Kind = frameFetchAdd
)

// preamble is the client hello: Magic, "LS", Version.
var preamble = [4]byte{Magic, 'L', 'S', Version}

// Exported decode errors. Decode failures that carry positional
// detail wrap one of these, so callers can errors.Is them.
var (
	// ErrTooLarge marks a frame whose claimed body exceeds MaxFrame.
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrCorrupt marks a structurally invalid frame body.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrVersion marks a preamble from an incompatible revision.
	ErrVersion = errors.New("wire: incompatible protocol version")
)

// ServerError is a protocol-level failure reported by the remote
// master inside a reply frame (the binary analogue of
// rpc.ServerError).
type ServerError string

func (e ServerError) Error() string { return string(e) }

// Record is one piggy-backed iteration result.
type Record struct {
	Index int
	Data  []byte
}

// Request is a slave's work request: the previous batch's completion
// records ride along, and Credits asks for up to that many grants in
// the reply. Spans, when non-empty, echoes one trace span id per
// record (same order); it must be empty or match len(Results).
type Request struct {
	Worker      int
	ACP         int
	CompSeconds float64
	IdleSeconds float64
	Prefetch    bool
	// NoReply marks a deposit-only request: the client ships completion
	// records but will not read a reply, and the server must not write
	// one. The ledger worker loop uses it so steady-state completion
	// reports never block on a round trip.
	NoReply bool
	Credits int
	Results []Record
	Spans   []uint64
}

// reset clears the request for reuse, keeping slice capacity.
//
//lint:loopsched-hotpath
func (r *Request) reset() {
	r.Results = r.Results[:0]
	r.Spans = r.Spans[:0]
	*r = Request{Results: r.Results, Spans: r.Spans}
}

// Reply is the master's answer: up to Credits grants, a stop flag, or
// a protocol error. Spans, when non-empty, stamps one trace span id
// per grant (same order); it must be empty or match len(Grants).
type Reply struct {
	Stop   bool
	Err    string
	Grants []sched.Assignment
	Spans  []uint64
}

// Reset clears the reply for reuse, keeping slice capacity.
//
//lint:loopsched-hotpath
func (r *Reply) Reset() {
	r.Grants = r.Grants[:0]
	r.Spans = r.Spans[:0]
	*r = Reply{Grants: r.Grants, Spans: r.Spans}
}

// bufPool recycles frame encode buffers across connections.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// appendRequest encodes the request body (type byte included) onto b.
//
//lint:loopsched-hotpath
func appendRequest(b []byte, r *Request) ([]byte, error) {
	if r.Worker < 0 || r.ACP < 0 || r.Credits < 0 {
		return b, fmt.Errorf("%w: negative request field", ErrCorrupt)
	}
	if len(r.Spans) != 0 && len(r.Spans) != len(r.Results) {
		return b, fmt.Errorf("%w: %d spans for %d results", ErrCorrupt, len(r.Spans), len(r.Results))
	}
	b = append(b, frameRequest)
	b = binary.AppendUvarint(b, uint64(r.Worker))
	b = binary.AppendUvarint(b, uint64(r.ACP))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.CompSeconds))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.IdleSeconds))
	var flags byte
	if r.Prefetch {
		flags |= flagPrefetch
	}
	if len(r.Spans) > 0 {
		flags |= flagRecordSpans
	}
	if r.NoReply {
		flags |= flagNoReply
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(r.Credits))
	b = binary.AppendUvarint(b, uint64(len(r.Results)))
	for _, rec := range r.Results {
		if rec.Index < 0 {
			return b, fmt.Errorf("%w: negative result index", ErrCorrupt)
		}
		b = binary.AppendUvarint(b, uint64(rec.Index))
		b = binary.AppendUvarint(b, uint64(len(rec.Data)))
		b = append(b, rec.Data...)
	}
	for _, s := range r.Spans {
		b = binary.AppendUvarint(b, s)
	}
	return b, nil
}

// appendReply encodes the reply body (type byte included) onto b.
//
//lint:loopsched-hotpath
func appendReply(b []byte, r *Reply) ([]byte, error) {
	if len(r.Spans) != 0 && len(r.Spans) != len(r.Grants) {
		return b, fmt.Errorf("%w: %d spans for %d grants", ErrCorrupt, len(r.Spans), len(r.Grants))
	}
	b = append(b, frameReply)
	var flags byte
	if r.Stop {
		flags |= flagStop
	}
	if r.Err != "" {
		flags |= flagError
	}
	if len(r.Spans) > 0 {
		flags |= flagSpans
	}
	b = append(b, flags)
	if r.Err != "" {
		b = binary.AppendUvarint(b, uint64(len(r.Err)))
		b = append(b, r.Err...)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Grants)))
	for _, g := range r.Grants {
		if g.Start < 0 || g.Size < 0 {
			return b, fmt.Errorf("%w: negative grant field", ErrCorrupt)
		}
		b = binary.AppendUvarint(b, uint64(g.Start))
		b = binary.AppendUvarint(b, uint64(g.Size))
	}
	for _, s := range r.Spans {
		b = binary.AppendUvarint(b, s)
	}
	return b, nil
}

// decoder walks one frame body. All methods validate against the
// bytes that are actually present before touching memory.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// smallInt decodes a uvarint that must fit a non-negative int and be
// sane for a count/index (≤ MaxFrame).
func (d *decoder) smallInt(what string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > MaxFrame {
		return 0, fmt.Errorf("%w: %s %d out of range", ErrCorrupt, what, v)
	}
	return int(v), nil
}

func (d *decoder) float64() (float64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated float at offset %d", ErrCorrupt, d.off)
	}
	bits := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

func (d *decoder) byte(what string) (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: missing %s", ErrCorrupt, what)
	}
	c := d.b[d.off]
	d.off++
	return c, nil
}

// bytes returns n payload bytes aliasing the frame buffer.
func (d *decoder) bytes(n int, what string) ([]byte, error) {
	if n > d.remaining() {
		return nil, fmt.Errorf("%w: %s claims %d bytes, %d left", ErrCorrupt, what, n, d.remaining())
	}
	p := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return p, nil
}

// decodeRequest parses a request body into r, reusing r.Results.
// Record data aliases body.
//
//lint:loopsched-hotpath
func decodeRequest(body []byte, r *Request) error {
	d := decoder{b: body}
	typ, err := d.byte("frame type")
	if err != nil {
		return err
	}
	if typ != frameRequest {
		return fmt.Errorf("%w: want request frame, got type 0x%02x", ErrCorrupt, typ)
	}
	r.reset()
	if r.Worker, err = d.smallInt("worker"); err != nil {
		return err
	}
	if r.ACP, err = d.smallInt("acp"); err != nil {
		return err
	}
	if r.CompSeconds, err = d.float64(); err != nil {
		return err
	}
	if r.IdleSeconds, err = d.float64(); err != nil {
		return err
	}
	flags, err := d.byte("flags")
	if err != nil {
		return err
	}
	r.Prefetch = flags&flagPrefetch != 0
	r.NoReply = flags&flagNoReply != 0
	if r.Credits, err = d.smallInt("credits"); err != nil {
		return err
	}
	n, err := d.smallInt("result count")
	if err != nil {
		return err
	}
	// Each record takes at least two bytes; a count beyond that is a
	// lie — reject before reserving anything.
	if n > d.remaining()/2 {
		return fmt.Errorf("%w: %d results cannot fit in %d bytes", ErrCorrupt, n, d.remaining())
	}
	for i := 0; i < n; i++ {
		var rec Record
		if rec.Index, err = d.smallInt("result index"); err != nil {
			return err
		}
		size, err := d.smallInt("result size")
		if err != nil {
			return err
		}
		if rec.Data, err = d.bytes(size, "result data"); err != nil {
			return err
		}
		r.Results = append(r.Results, rec)
	}
	if flags&flagRecordSpans != 0 {
		if n == 0 {
			return fmt.Errorf("%w: span flag with no records", ErrCorrupt)
		}
		for i := 0; i < n; i++ {
			s, err := d.uvarint()
			if err != nil {
				return err
			}
			r.Spans = append(r.Spans, s)
		}
	}
	if d.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return nil
}

// decodeReply parses a reply body into r, reusing r.Grants.
//
//lint:loopsched-hotpath
func decodeReply(body []byte, r *Reply) error {
	d := decoder{b: body}
	typ, err := d.byte("frame type")
	if err != nil {
		return err
	}
	if typ != frameReply {
		return fmt.Errorf("%w: want reply frame, got type 0x%02x", ErrCorrupt, typ)
	}
	r.Reset()
	flags, err := d.byte("flags")
	if err != nil {
		return err
	}
	r.Stop = flags&flagStop != 0
	if flags&flagError != 0 {
		size, err := d.smallInt("error size")
		if err != nil {
			return err
		}
		msg, err := d.bytes(size, "error text")
		if err != nil {
			return err
		}
		// Error replies are terminal, never steady-state, so the string
		// copy is allowed; the directive records that for escapecheck,
		// which would otherwise flag the compiler's []byte->string
		// allocation inside this hot function.
		//lint:loopsched-ignore hotalloc error replies are off the steady-state path
		r.Err = string(msg)
	}
	n, err := d.smallInt("grant count")
	if err != nil {
		return err
	}
	if n > d.remaining()/2 {
		return fmt.Errorf("%w: %d grants cannot fit in %d bytes", ErrCorrupt, n, d.remaining())
	}
	for i := 0; i < n; i++ {
		var g sched.Assignment
		if g.Start, err = d.smallInt("grant start"); err != nil {
			return err
		}
		if g.Size, err = d.smallInt("grant size"); err != nil {
			return err
		}
		r.Grants = append(r.Grants, g)
	}
	if flags&flagSpans != 0 {
		if n == 0 {
			return fmt.Errorf("%w: span flag with no grants", ErrCorrupt)
		}
		for i := 0; i < n; i++ {
			s, err := d.uvarint()
			if err != nil {
				return err
			}
			r.Spans = append(r.Spans, s)
		}
	}
	if d.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return nil
}

// appendFetchAdd encodes a ledger claim of n steps (type byte
// included) onto b. n must be positive: a zero-step claim is useless
// and the encoder refusing it keeps the codec canonical.
//
//lint:loopsched-hotpath
func appendFetchAdd(b []byte, n int) ([]byte, error) {
	if n <= 0 {
		return b, fmt.Errorf("%w: non-positive fetchadd count %d", ErrCorrupt, n)
	}
	b = append(b, frameFetchAdd)
	b = binary.AppendUvarint(b, uint64(n))
	return b, nil
}

// decodeFetchAdd parses a fetchadd body and returns the claimed step
// count. The count is bounded like every other wire count, so a lying
// client cannot make the server's ledger wrap within one claim.
//
//lint:loopsched-hotpath
func decodeFetchAdd(body []byte) (int, error) {
	d := decoder{b: body}
	typ, err := d.byte("frame type")
	if err != nil {
		return 0, err
	}
	if typ != frameFetchAdd {
		return 0, fmt.Errorf("%w: want fetchadd frame, got type 0x%02x", ErrCorrupt, typ)
	}
	n, err := d.smallInt("fetchadd count")
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("%w: zero-step fetchadd", ErrCorrupt)
	}
	if d.remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return n, nil
}

// appendStep encodes the ledger's answer — the first claimed step —
// onto b. The full uint64 range is legal: a step at or past the
// table's end is the protocol's "drained" signal, and a counter that
// has run far past the end is still a valid (wasted) claim.
//
//lint:loopsched-hotpath
func appendStep(b []byte, step uint64) []byte {
	b = append(b, frameStep)
	b = binary.AppendUvarint(b, step)
	return b
}

// decodeStep parses a step body. Lying or hostile step values need no
// range check here: the claim-then-check protocol discards any step
// past Table.Steps() at the lookup, so the decoder only guards
// structure (type byte, truncation, trailing bytes) — never allocates.
//
//lint:loopsched-hotpath
func decodeStep(body []byte) (uint64, error) {
	d := decoder{b: body}
	typ, err := d.byte("frame type")
	if err != nil {
		return 0, err
	}
	if typ != frameStep {
		return 0, fmt.Errorf("%w: want step frame, got type 0x%02x", ErrCorrupt, typ)
	}
	step, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if d.remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return step, nil
}
