package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"loopsched/internal/telemetry"
)

// Conn frames Requests and Replies over a byte stream. A Conn is the
// unit of the protocol's concurrency model: the chunk dialogue is
// strictly request/reply per connection (each worker holds its own),
// so reads and writes each need a single owner and no internal
// locking. Decoded payloads alias the Conn's read buffer and are valid
// until the next Read* call.
type Conn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
	bw  *bufio.Writer

	rbuf []byte                      // frame-body scratch, grown incrementally
	hdr  [binary.MaxVarintLen64]byte // length-prefix scratch (kept off the stack so it cannot escape per frame)

	bus    *telemetry.Bus // nil disables wire counters
	worker int
	shard  int
}

// NewClient wraps a client-side connection: it writes the protocol
// preamble so a sniffing server can route the stream, and returns the
// framed Conn.
func NewClient(rwc io.ReadWriteCloser) (*Conn, error) {
	c := newConn(rwc, nil)
	if _, err := c.bw.Write(preamble[:]); err != nil {
		return nil, fmt.Errorf("wire: writing preamble: %w", err)
	}
	return c, nil
}

// NewServer wraps a server-side connection whose 4-byte preamble has
// already been consumed by the listener's protocol sniffer. br, if
// non-nil, is the buffered reader the sniffer used (it may hold
// already-buffered frame bytes).
func NewServer(rwc io.ReadWriteCloser, br *bufio.Reader) *Conn {
	return newConn(rwc, br)
}

func newConn(rwc io.ReadWriteCloser, br *bufio.Reader) *Conn {
	if br == nil {
		br = bufio.NewReader(rwc)
	}
	return &Conn{rwc: rwc, br: br, bw: bufio.NewWriter(rwc)}
}

// ConsumePreamble reads and validates a client preamble whose Magic
// byte has already been peeked (not consumed) on br.
func ConsumePreamble(br *bufio.Reader) error {
	var p [4]byte
	if _, err := io.ReadFull(br, p[:]); err != nil {
		return fmt.Errorf("wire: reading preamble: %w", err)
	}
	if p[0] != Magic || p[1] != 'L' || p[2] != 'S' {
		return fmt.Errorf("%w: bad preamble % x", ErrCorrupt, p)
	}
	if p[3] != Version {
		return fmt.Errorf("%w: peer speaks v%d, this side v%d", ErrVersion, p[3], Version)
	}
	return nil
}

// SetTelemetry attaches an event bus: every frame written or read
// publishes a WireFrameSent / WireFrameReceived event carrying the
// frame size, batch item count and encode/decode time. worker and
// shard label the events. A nil bus (the default) is free.
func (c *Conn) SetTelemetry(bus *telemetry.Bus, worker, shard int) {
	c.bus = bus
	c.worker = worker
	c.shard = shard
}

// Close closes the underlying stream, failing any blocked Read.
func (c *Conn) Close() error { return c.rwc.Close() }

// writeFrame appends the body's length prefix and the body to the
// stream and flushes. items is the batch size for telemetry.
//
//lint:loopsched-hotpath
func (c *Conn) writeFrame(body []byte, items int, encodeSec float64) error {
	if err := c.queueFrame(body, items, encodeSec); err != nil {
		return err
	}
	return c.bw.Flush()
}

// queueFrame is writeFrame without the flush: the frame sits in the
// send buffer until the next flushed write, so a caller can coalesce
// several frames into one segment (the ledger worker rides its
// completion deposit on the same flush as the next claim).
//
//lint:loopsched-hotpath
func (c *Conn) queueFrame(body []byte, items int, encodeSec float64) error {
	n := binary.PutUvarint(c.hdr[:], uint64(len(body)))
	if _, err := c.bw.Write(c.hdr[:n]); err != nil {
		return err
	}
	if _, err := c.bw.Write(body); err != nil {
		return err
	}
	if c.bus != nil {
		c.bus.Publish(telemetry.Event{
			Kind: telemetry.WireFrameSent, Worker: c.worker, Shard: c.shard,
			Start: items, Size: n + len(body),
			At: c.bus.Now(), Seconds: encodeSec,
		})
	}
	return nil
}

// WriteRequest encodes and sends one request frame.
//
//lint:loopsched-hotpath
func (c *Conn) WriteRequest(r *Request) error {
	var t0 time.Time
	if c.bus != nil {
		t0 = time.Now()
	}
	bp := bufPool.Get().(*[]byte)
	body, err := appendRequest((*bp)[:0], r)
	if err != nil {
		bufPool.Put(bp)
		return err
	}
	*bp = body
	var enc float64
	if c.bus != nil {
		enc = time.Since(t0).Seconds()
	}
	err = c.writeFrame(body, len(r.Results), enc)
	bufPool.Put(bp)
	return err
}

// QueueRequest encodes a request frame into the send buffer without
// flushing it; the frame ships with the connection's next flushed
// write. The ledger worker queues its no-reply completion deposit this
// way so deposit and claim leave in one segment.
//
//lint:loopsched-hotpath
func (c *Conn) QueueRequest(r *Request) error {
	var t0 time.Time
	if c.bus != nil {
		t0 = time.Now()
	}
	bp := bufPool.Get().(*[]byte)
	body, err := appendRequest((*bp)[:0], r)
	if err != nil {
		bufPool.Put(bp)
		return err
	}
	*bp = body
	var enc float64
	if c.bus != nil {
		enc = time.Since(t0).Seconds()
	}
	err = c.queueFrame(body, len(r.Results), enc)
	bufPool.Put(bp)
	return err
}

// WriteReply encodes and sends one reply frame.
//
//lint:loopsched-hotpath
func (c *Conn) WriteReply(r *Reply) error {
	var t0 time.Time
	if c.bus != nil {
		t0 = time.Now()
	}
	bp := bufPool.Get().(*[]byte)
	body, err := appendReply((*bp)[:0], r)
	if err != nil {
		bufPool.Put(bp)
		return err
	}
	*bp = body
	var enc float64
	if c.bus != nil {
		enc = time.Since(t0).Seconds()
	}
	err = c.writeFrame(body, len(r.Grants), enc)
	bufPool.Put(bp)
	return err
}

// readBody reads an n-byte frame body into the Conn's scratch buffer.
// The buffer grows incrementally as bytes actually arrive, so a lying
// length header on a truncated stream cannot force a large
// allocation.
//
//lint:loopsched-hotpath
func (c *Conn) readBody(n int) ([]byte, error) {
	if n <= cap(c.rbuf) {
		buf := c.rbuf[:n]
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return nil, noEOF(err)
		}
		return buf, nil
	}
	buf := c.rbuf[:cap(c.rbuf)]
	filled := 0
	for filled < n {
		if filled == len(buf) {
			step := len(buf)
			if step < 4<<10 {
				step = 4 << 10
			}
			if step > 1<<20 {
				step = 1 << 20
			}
			if rest := n - len(buf); step > rest {
				step = rest
			}
			// The growth step is the one allocation readBody is allowed:
			// it is bounded (<=1MiB), amortised over the buffer's lifetime,
			// and only taken when a frame outgrows every previous frame —
			// steady-state reads reuse rbuf and never reach this line.
			//lint:loopsched-ignore hotalloc bounded one-off growth of the reusable read buffer
			buf = append(buf, make([]byte, step)...)
		}
		m, err := c.br.Read(buf[filled:])
		filled += m
		if err != nil {
			return nil, noEOF(err)
		}
	}
	c.rbuf = buf
	return buf[:n], nil
}

// noEOF converts a mid-frame EOF into ErrUnexpectedEOF, so only a
// clean close between frames reads as io.EOF.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readFrame reads one length-prefixed frame body. io.EOF is returned
// untouched only for a connection closed between frames.
//
//lint:loopsched-hotpath
func (c *Conn) readFrame() ([]byte, error) {
	size, err := binary.ReadUvarint(c.br)
	if err != nil {
		return nil, err
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	if size == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrCorrupt)
	}
	return c.readBody(int(size))
}

// publishReceived reports one decoded frame to the telemetry bus.
//
//lint:loopsched-hotpath
func (c *Conn) publishReceived(items, size int, decodeSec float64) {
	if c.bus == nil {
		return
	}
	c.bus.Publish(telemetry.Event{
		Kind: telemetry.WireFrameReceived, Worker: c.worker, Shard: c.shard,
		Start: items, Size: size,
		At: c.bus.Now(), Seconds: decodeSec,
	})
}

// ReadRequest blocks for the next request frame and decodes it into
// r, reusing r's slices. Record data is valid until the next Read* on
// this Conn.
//
//lint:loopsched-hotpath
func (c *Conn) ReadRequest(r *Request) error {
	body, err := c.readFrame()
	if err != nil {
		return err
	}
	var t0 time.Time
	if c.bus != nil {
		t0 = time.Now()
	}
	if err := decodeRequest(body, r); err != nil {
		return err
	}
	var dec float64
	if c.bus != nil {
		dec = time.Since(t0).Seconds()
	}
	c.publishReceived(len(r.Results), len(body), dec)
	return nil
}

// ReadReply blocks for the next reply frame and decodes it into r,
// reusing r's slices.
//
//lint:loopsched-hotpath
func (c *Conn) ReadReply(r *Reply) error {
	body, err := c.readFrame()
	if err != nil {
		return err
	}
	var t0 time.Time
	if c.bus != nil {
		t0 = time.Now()
	}
	if err := decodeReply(body, r); err != nil {
		return err
	}
	var dec float64
	if c.bus != nil {
		dec = time.Since(t0).Seconds()
	}
	c.publishReceived(len(r.Grants), len(body), dec)
	return nil
}

// WriteFetchAdd sends one ledger claim for n scheduling steps.
//
//lint:loopsched-hotpath
func (c *Conn) WriteFetchAdd(n int) error {
	bp := bufPool.Get().(*[]byte)
	body, err := appendFetchAdd((*bp)[:0], n)
	if err != nil {
		bufPool.Put(bp)
		return err
	}
	*bp = body
	err = c.writeFrame(body, 1, 0)
	bufPool.Put(bp)
	return err
}

// WriteStep sends the ledger's answer to one claim: the first claimed
// step.
//
//lint:loopsched-hotpath
func (c *Conn) WriteStep(step uint64) error {
	bp := bufPool.Get().(*[]byte)
	body := appendStep((*bp)[:0], step)
	*bp = body
	err := c.writeFrame(body, 1, 0)
	bufPool.Put(bp)
	return err
}

// ReadStep blocks for the next step frame and returns the first
// claimed step.
//
//lint:loopsched-hotpath
func (c *Conn) ReadStep() (uint64, error) {
	body, err := c.readFrame()
	if err != nil {
		return 0, err
	}
	step, err := decodeStep(body)
	if err != nil {
		return 0, err
	}
	c.publishReceived(1, len(body), 0)
	return step, nil
}

// FetchAdd performs one synchronous ledger round trip: claim n steps,
// block for the first claimed step.
//
//lint:loopsched-hotpath
func (c *Conn) FetchAdd(n int) (uint64, error) {
	if err := c.WriteFetchAdd(n); err != nil {
		return 0, err
	}
	return c.ReadStep()
}

// ReadClientFrame blocks for the next client-originated frame and
// dispatches on its type: a request frame decodes into r (exactly as
// ReadRequest), a fetchadd frame returns its claimed step count. This
// is how one server loop interleaves the two-sided grant dialogue and
// the one-sided ledger dialogue on a single connection.
//
//lint:loopsched-hotpath
func (c *Conn) ReadClientFrame(r *Request) (Kind, int, error) {
	body, err := c.readFrame()
	if err != nil {
		return 0, 0, err
	}
	if body[0] == frameFetchAdd {
		n, err := decodeFetchAdd(body)
		if err != nil {
			return 0, 0, err
		}
		c.publishReceived(1, len(body), 0)
		return KindFetchAdd, n, nil
	}
	var t0 time.Time
	if c.bus != nil {
		t0 = time.Now()
	}
	if err := decodeRequest(body, r); err != nil {
		return 0, 0, err
	}
	var dec float64
	if c.bus != nil {
		dec = time.Since(t0).Seconds()
	}
	c.publishReceived(len(r.Results), len(body), dec)
	return KindRequest, 0, nil
}

// Call performs one synchronous round trip: write the request, block
// for the reply. A protocol-level failure reported by the server
// surfaces as a ServerError.
//
//lint:loopsched-hotpath
func (c *Conn) Call(req *Request, rep *Reply) error {
	if err := c.WriteRequest(req); err != nil {
		return err
	}
	if err := c.ReadReply(rep); err != nil {
		return err
	}
	if rep.Err != "" {
		// Boxing the error into the interface return allocates, but a
		// server-reported protocol failure is terminal for the stream,
		// never steady-state; escapecheck honours this directive.
		//lint:loopsched-ignore hotalloc server error replies are off the steady-state path
		return ServerError(rep.Err)
	}
	return nil
}
