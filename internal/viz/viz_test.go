package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"loopsched/internal/metrics"
	"loopsched/internal/trace"
)

// wellFormed parses the SVG as XML — malformed markup fails.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func TestSpeedupSVG(t *testing.T) {
	svg := SpeedupSVG("Figure 6", map[string][]metrics.Speedup{
		"DTSS":  {{P: 1, Sp: 1}, {P: 2, Sp: 1.3}, {P: 4, Sp: 2.2}, {P: 8, Sp: 4.1}},
		"TreeS": {{P: 1, Sp: 1}, {P: 2, Sp: 1.3}, {P: 4, Sp: 2.6}, {P: 8, Sp: 4.4}},
	})
	wellFormed(t, svg)
	for _, want := range []string{"<svg", "Figure 6", "polyline", "DTSS", "TreeS", "speedup"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	// Titles with XML specials are escaped.
	svg2 := SpeedupSVG(`a < b & "c"`, nil)
	wellFormed(t, svg2)
	if strings.Contains(svg2, `a < b`) {
		t.Error("title not escaped")
	}
}

func TestProfileSVGDownsamples(t *testing.T) {
	long := make([]float64, 10000)
	long[7777] = 99 // spike must survive downsampling
	svg := ProfileSVG("Figure 1", map[string][]float64{"original": long})
	wellFormed(t, svg)
	if !strings.Contains(svg, "original") {
		t.Error("legend missing")
	}
	// The spike sets the y scale: a tick near 99 must appear.
	if !strings.Contains(svg, "99") && !strings.Contains(svg, "103.9") {
		t.Errorf("spike lost from scale")
	}
	// Point count bounded.
	if n := strings.Count(svg, "<circle"); n > 400 {
		t.Errorf("%d points after downsampling", n)
	}
}

func TestEmptyPlot(t *testing.T) {
	svg := Plot{Title: "empty"}.SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "empty") {
		t.Error("title missing")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGanttSVG(t *testing.T) {
	tr := &trace.Trace{Scheme: "TSS", Workload: "uniform", Workers: 2}
	tr.Add(trace.Event{Worker: 0, Start: 0, Size: 5, Begin: 0, End: 1})
	tr.Add(trace.Event{Worker: 1, Start: 5, Size: 5, Begin: 0.5, End: 2})
	svg := GanttSVG(tr)
	wellFormed(t, svg)
	for _, want := range []string{"Gantt", "TSS", "PE1", "PE2", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
	if n := strings.Count(svg, "<rect"); n != 3 { // background + 2 chunks
		t.Errorf("%d rects, want 3", n)
	}
	// Empty trace stays well-formed.
	wellFormed(t, GanttSVG(&trace.Trace{Workers: 1}))
}
