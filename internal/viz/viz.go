// Package viz renders the reproduced figures as standalone SVG files
// (stdlib only): speedup curves in the style of the paper's Figures
// 4–7 and cost-profile plots in the style of Figure 1. The output is
// plain SVG 1.1 — viewable in any browser, embeddable in docs.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"loopsched/internal/metrics"
	"loopsched/internal/trace"
)

const (
	width    = 640
	height   = 420
	marginL  = 56
	marginR  = 150 // room for the legend
	marginT  = 40
	marginB  = 48
	plotW    = width - marginL - marginR
	plotH    = height - marginT - marginB
	fontFam  = "ui-monospace, Menlo, Consolas, monospace"
	axisGrey = "#888888"
)

// palette holds distinguishable series colours (cycled when exceeded).
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a generic line chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// esc escapes text for SVG/XML.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVG renders the chart.
func (p Plot) SVG() string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis anchored at 0
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) { // no data
		minX, maxX, maxY = 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	maxY *= 1.05 // headroom

	px := func(x float64) float64 {
		return marginL + plotW*(x-minX)/(maxX-minX)
	}
	py := func(y float64) float64 {
		return marginT + plotH*(1-(y-minY)/(maxY-minY))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="22" font-family="%s" font-size="14" font-weight="bold">%s</text>`,
		marginL, fontFam, esc(p.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`,
		marginL, marginT, marginL, marginT+plotH, axisGrey)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH, axisGrey)

	// Y ticks (5) with gridlines.
	for i := 0; i <= 5; i++ {
		y := minY + (maxY-minY)*float64(i)/5
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eeeeee"/>`,
			marginL, py(y), marginL+plotW, py(y))
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="%s" font-size="10" text-anchor="end">%.1f</text>`,
			marginL-6, py(y)+3, fontFam, y)
	}
	// X ticks at each distinct x of the first series (speedup charts
	// have few, meaningful x values).
	xticks := map[float64]bool{}
	for _, s := range p.Series {
		for _, x := range s.X {
			xticks[x] = true
		}
	}
	xs := make([]float64, 0, len(xticks))
	for x := range xticks {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	if len(xs) > 12 { // too many: decimate to ~8
		step := len(xs) / 8
		var kept []float64
		for i := 0; i < len(xs); i += step + 1 {
			kept = append(kept, xs[i])
		}
		xs = kept
	}
	for _, x := range xs {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="%s" font-size="10" text-anchor="middle">%g</text>`,
			px(x), marginT+plotH+16, fontFam, x)
	}
	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="%s" font-size="11" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-10, fontFam, esc(p.XLabel))
	fmt.Fprintf(&sb, `<text x="14" y="%d" font-family="%s" font-size="11" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`,
		marginT+plotH/2, fontFam, marginT+plotH/2, esc(p.YLabel))

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`,
				px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 14*si
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			marginL+plotW+12, ly, marginL+plotW+30, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="%s" font-size="11">%s</text>`,
			marginL+plotW+36, ly+4, fontFam, esc(s.Name))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// SpeedupSVG renders Figure 4–7 style curves.
func SpeedupSVG(title string, curves map[string][]metrics.Speedup) string {
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	p := Plot{Title: title, XLabel: "number of slaves p", YLabel: "speedup S_p"}
	for _, n := range names {
		var s Series
		s.Name = n
		for _, pt := range curves[n] {
			s.X = append(s.X, float64(pt.P))
			s.Y = append(s.Y, pt.Sp)
		}
		p.Series = append(p.Series, s)
	}
	return p.SVG()
}

// GanttSVG renders an execution trace as an SVG Gantt chart: one lane
// per worker, one rectangle per chunk (coloured by worker, alternating
// shade per chunk so boundaries stay visible).
func GanttSVG(tr *trace.Trace) string {
	begin, end := tr.Span()
	lanes := tr.Workers
	if lanes < 1 {
		lanes = 1
	}
	laneH := 24
	h := marginT + lanes*laneH + marginB
	w := width

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="22" font-family="%s" font-size="14" font-weight="bold">%s</text>`,
		marginL, fontFam, esc(fmt.Sprintf("Gantt: %s on %s (%.2fs)", tr.Scheme, tr.Workload, end-begin)))
	if end <= begin {
		sb.WriteString(`</svg>`)
		return sb.String()
	}
	plotWidth := float64(w - marginL - 20)
	px := func(ts float64) float64 {
		return float64(marginL) + plotWidth*(ts-begin)/(end-begin)
	}
	count := make([]int, lanes)
	for _, e := range tr.Events() {
		if e.Worker < 0 || e.Worker >= lanes {
			continue
		}
		y := marginT + e.Worker*laneH
		color := palette[e.Worker%len(palette)]
		opacity := 0.95
		if count[e.Worker]%2 == 1 {
			opacity = 0.55
		}
		count[e.Worker]++
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="%.2f"/>`,
			px(e.Begin), y+3, math.Max(px(e.End)-px(e.Begin), 0.5), laneH-6, color, opacity)
	}
	for i := 0; i < lanes; i++ {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="%s" font-size="11" text-anchor="end">PE%d</text>`,
			marginL-6, marginT+i*laneH+laneH/2+4, fontFam, i+1)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="%s" font-size="11">time → %.2fs</text>`,
		marginL, h-12, fontFam, end-begin)
	sb.WriteString(`</svg>`)
	return sb.String()
}

// ProfileSVG renders a Figure 1 style cost distribution (one value per
// iteration). Long profiles are downsampled by window maxima so spikes
// survive.
func ProfileSVG(title string, series map[string][]float64) string {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	p := Plot{Title: title, XLabel: "iteration (column)", YLabel: "cost"}
	for _, n := range names {
		vals := series[n]
		const maxPts = 320
		step := 1
		if len(vals) > maxPts {
			step = len(vals) / maxPts
		}
		var s Series
		s.Name = n
		for start := 0; start < len(vals); start += step {
			end := start + step
			if end > len(vals) {
				end = len(vals)
			}
			m := math.Inf(-1)
			for _, v := range vals[start:end] {
				m = math.Max(m, v)
			}
			s.X = append(s.X, float64(start))
			s.Y = append(s.Y, m)
		}
		p.Series = append(p.Series, s)
	}
	return p.SVG()
}
