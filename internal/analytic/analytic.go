// Package analytic provides closed-form predictions for the
// self-scheduling schemes — scheduling-step counts, overhead, and
// physical lower bounds on the parallel time — used both as
// documentation of each scheme's behaviour and as an oracle in tests:
// the policies must match the exact formulas, and the simulator must
// never beat the physics.
package analytic

import (
	"math"

	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

// StaticSteps is the chunk count of the static scheme: one per PE.
func StaticSteps(i, p int) int {
	if i < p {
		return i
	}
	return p
}

// CSSSteps is ⌈I/k⌉, the chunk count of chunk self-scheduling.
func CSSSteps(i, k int) int {
	if k < 1 {
		k = 1
	}
	return (i + k - 1) / k
}

// GSSSteps bounds guided self-scheduling's chunk count: the remaining
// count decays by a factor (1−1/p) per step until single-iteration
// chunks take over, giving N ≈ p·ln(I/p) + p. The returned value is
// the exact count obtained by running the recurrence (cheap, O(N)).
func GSSSteps(i, p int) int {
	n := 0
	r := i
	for r > 0 {
		c := (r + p - 1) / p
		r -= c
		n++
	}
	return n
}

// GSSStepsApprox is the textbook p·ln(I/p) + p approximation.
func GSSStepsApprox(i, p int) float64 {
	if i <= 0 || p <= 0 {
		return 0
	}
	x := float64(i) / float64(p)
	if x < 1 {
		x = 1
	}
	return float64(p)*math.Log(x) + float64(p)
}

// TSSSteps is the trapezoid's step count N = ⌈2I/(F+L)⌉ for the
// default F = ⌊I/(2p)⌋, L = 1, clipped to the iteration budget.
func TSSSteps(i, p int) int {
	prm := sched.ComputeTSSParams(i, p, 0, 0)
	// The descent covers the budget before exhausting all N steps when
	// rounding makes the nominal sum overshoot; count the clipped run.
	sum, n, c := 0, 0, prm.F
	for sum < i {
		if c < prm.L {
			c = prm.L
		}
		sum += c
		c -= prm.D
		n++
	}
	return n
}

// FSSStages is factoring's stage count: the remaining work halves per
// stage (α = 2) with p chunks of at least one iteration each, so
// roughly log₂(I/p) + 1 stages; computed exactly by the recurrence
// with the paper's half-even rounding.
func FSSStages(i, p int) int {
	stages := 0
	r := i
	for r > 0 {
		chunk := roundHalfEvenInt(float64(r) / float64(2*p))
		if chunk < 1 {
			chunk = 1
		}
		take := chunk * p
		if take > r {
			take = r
		}
		r -= take
		stages++
	}
	return stages
}

func roundHalfEvenInt(x float64) int {
	f := math.Floor(x)
	frac := x - f
	v := int(f)
	switch {
	case frac > 0.5:
		v++
	case frac == 0.5 && v%2 == 1:
		v++
	}
	return v
}

// FISSSteps is fixed-increase's chunk count: exactly σ stages of p
// chunks (the final stage absorbs the remainder).
func FISSSteps(i, p, sigma int) int {
	if sigma < 2 {
		sigma = 3
	}
	n := sigma * p
	if i < n {
		return i // degenerate: fewer iterations than slots
	}
	return n
}

// Overhead models the total scheduling overhead of a run: each of the
// n scheduling steps costs one request/reply round trip plus the
// master's service time.
func Overhead(n int, roundTrip, service float64) float64 {
	return float64(n) * (roundTrip + service)
}

// Bounds are physical lower bounds on a run's parallel time.
type Bounds struct {
	// Work is the total work divided by the cluster's aggregate
	// dedicated throughput: no schedule can beat it.
	Work float64
	// Serial is the most expensive single iteration on the fastest
	// machine: the critical path of a single task.
	Serial float64
}

// Tp returns the binding lower bound.
func (b Bounds) Tp() float64 { return math.Max(b.Work, b.Serial) }

// LowerBounds computes Bounds for a workload on machines with the
// given powers (work-units/s per unit power times baseRate).
func LowerBounds(w workload.Workload, powers []float64, baseRate float64) Bounds {
	var total float64
	maxCost := 0.0
	for i := 0; i < w.Len(); i++ {
		c := w.Cost(i)
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	var aggregate, fastest float64
	for _, p := range powers {
		aggregate += p * baseRate
		if p*baseRate > fastest {
			fastest = p * baseRate
		}
	}
	if aggregate == 0 {
		return Bounds{}
	}
	return Bounds{Work: total / aggregate, Serial: maxCost / fastest}
}

// CriticalChunkPenalty bounds the imbalance tail of a schedule: the
// largest chunk (in work units) landing on the slowest machine right
// before the end delays completion by at most its execution time
// there.
func CriticalChunkPenalty(chunkWork, slowestPower, baseRate float64) float64 {
	if slowestPower <= 0 || baseRate <= 0 {
		return math.Inf(1)
	}
	return chunkWork / (slowestPower * baseRate)
}
