package analytic

import (
	"math"
	"math/rand"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/workload"
)

// steps runs a scheme's policy to exhaustion and counts chunks.
func steps(t *testing.T, s sched.Scheme, i, p int) int {
	t.Helper()
	seq, err := sched.Sequence(s, i, p)
	if err != nil {
		t.Fatal(err)
	}
	return len(seq)
}

// TestStepPredictionsExact: the closed-form step counts must equal
// the actual policies' chunk counts, scheme by scheme, across a sweep
// of problem sizes.
func TestStepPredictionsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		i := 16 + rng.Intn(20000)
		p := 1 + rng.Intn(12)

		if got, want := steps(t, sched.StaticScheme{}, i, p), StaticSteps(i, p); got != want {
			t.Errorf("S I=%d p=%d: %d vs %d", i, p, got, want)
		}
		k := 1 + rng.Intn(200)
		if got, want := steps(t, sched.CSSScheme{K: k}, i, p), CSSSteps(i, k); got != want {
			t.Errorf("CSS(%d) I=%d p=%d: %d vs %d", k, i, p, got, want)
		}
		if got, want := steps(t, sched.GSSScheme{}, i, p), GSSSteps(i, p); got != want {
			t.Errorf("GSS I=%d p=%d: %d vs %d", i, p, got, want)
		}
		if got, want := steps(t, sched.TSSScheme{}, i, p), TSSSteps(i, p); got != want {
			t.Errorf("TSS I=%d p=%d: %d vs %d", i, p, got, want)
		}
		if got, want := steps(t, sched.FISSScheme{}, i, p), FISSSteps(i, p, 3); got != want {
			t.Errorf("FISS I=%d p=%d: %d vs %d", i, p, got, want)
		}
		// FSS: stage count × p chunk slots, last stage possibly short.
		gotChunks := steps(t, sched.FSSScheme{}, i, p)
		stages := FSSStages(i, p)
		if gotChunks > stages*p || gotChunks <= (stages-1)*p-p {
			t.Errorf("FSS I=%d p=%d: %d chunks vs %d stages", i, p, gotChunks, stages)
		}
	}
}

// TestGSSApproximation: the p·ln(I/p)+p textbook formula tracks the
// exact recurrence within a factor of 2 over realistic sizes.
func TestGSSApproximation(t *testing.T) {
	for _, i := range []int{100, 1000, 10000, 100000} {
		for _, p := range []int{2, 4, 8, 16} {
			exact := float64(GSSSteps(i, p))
			approx := GSSStepsApprox(i, p)
			if approx < exact/2 || approx > exact*2 {
				t.Errorf("I=%d p=%d: approx %.1f vs exact %.0f", i, p, approx, exact)
			}
		}
	}
}

// TestSchemeStepOrdering: the well-known overhead ordering holds —
// SS issues the most chunks, then GSS, then the stage/trapezoid
// schemes.
func TestSchemeStepOrdering(t *testing.T) {
	const i, p = 10000, 8
	ss := CSSSteps(i, 1)
	gss := GSSSteps(i, p)
	tss := TSSSteps(i, p)
	fiss := FISSSteps(i, p, 3)
	if !(ss > gss && gss > tss && tss > fiss) {
		t.Errorf("ordering broken: SS=%d GSS=%d TSS=%d FISS=%d", ss, gss, tss, fiss)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(100, 0.002, 0.001); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Overhead = %g", got)
	}
}

// TestSimRespectsLowerBounds: the simulator can never finish a run
// faster than the work bound or the serial bound, for any scheme and
// any random heterogeneous cluster.
func TestSimRespectsLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		p := 2 + rng.Intn(6)
		machines := make([]sim.Machine, p)
		powers := make([]float64, p)
		for j := range machines {
			powers[j] = 1 + 3*rng.Float64()
			machines[j] = sim.Machine{
				Power: powers[j],
				Link:  sim.Link{Latency: 0.001, Bandwidth: sim.Mbit10},
			}
		}
		c := sim.Cluster{Machines: machines}
		w := workload.NewConditional(500+rng.Intn(2000), 0.3, 25, 1, int64(trial))
		const baseRate = 1e4
		bounds := LowerBounds(w, powers, baseRate)
		for _, name := range []string{"TSS", "FSS", "DTSS", "DTFSS"} {
			s, err := sched.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Run(c, s, w, sim.Params{BaseRate: baseRate, BytesPerIter: 1})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tp < bounds.Tp()-1e-9 {
				t.Errorf("trial %d %s: Tp %.4f beats physics %.4f", trial, name, rep.Tp, bounds.Tp())
			}
		}
	}
}

func TestLowerBoundsEdges(t *testing.T) {
	b := LowerBounds(workload.Uniform{N: 100}, nil, 1e3)
	if b.Tp() != 0 {
		t.Errorf("no machines: %+v", b)
	}
	b = LowerBounds(workload.Uniform{N: 100}, []float64{2, 2}, 100)
	// total 100 units over 400 units/s = 0.25; serial 1/200.
	if math.Abs(b.Work-0.25) > 1e-12 || math.Abs(b.Serial-0.005) > 1e-12 {
		t.Errorf("bounds %+v", b)
	}
	if b.Tp() != 0.25 {
		t.Errorf("Tp bound %g", b.Tp())
	}
}

func TestCriticalChunkPenalty(t *testing.T) {
	if got := CriticalChunkPenalty(1000, 1, 100); got != 10 {
		t.Errorf("penalty = %g", got)
	}
	if got := CriticalChunkPenalty(1000, 0, 100); !math.IsInf(got, 1) {
		t.Errorf("zero power penalty = %g", got)
	}
}

// TestRoundHalfEvenInt mirrors the sched package's rounding.
func TestRoundHalfEvenInt(t *testing.T) {
	cases := map[float64]int{62.5: 62, 31.5: 32, 2.3: 2, 2.7: 3, 4.0: 4}
	for x, want := range cases {
		if got := roundHalfEvenInt(x); got != want {
			t.Errorf("round(%g) = %d, want %d", x, got, want)
		}
	}
}
