package hotpath

import "sort"

// TableErrors compares a package's alloc-guard table against its
// hot-path annotations: every exported annotated function must have a
// guard entry (keyed by display name, e.g. "(*Deque).Push"), and every
// entry must correspond to an annotated function — unexported ones may
// be guarded voluntarily but only exported ones are demanded. The
// returned slices are sorted; both empty means the table is exactly
// the annotation set. This is how annotating a function automatically
// demands an AllocsPerRun guard for it — the per-package
// TestHotPathGuardTable fails until the table entry exists.
func TableErrors(dir string, guarded []string) (missing, stale []string, err error) {
	funcs, err := Annotated(dir)
	if err != nil {
		return nil, nil, err
	}
	annotated := map[string]bool{} // name -> exported
	for _, fn := range funcs {
		annotated[fn.Name] = fn.Exported
	}
	have := map[string]bool{}
	for _, name := range guarded {
		have[name] = true
		if _, ok := annotated[name]; !ok {
			stale = append(stale, name)
		}
	}
	for name, exported := range annotated {
		if exported && !have[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	return missing, stale, nil
}
