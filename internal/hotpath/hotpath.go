// Package hotpath locates the functions the repo has declared to be on
// the chunk hot path via the //lint:loopsched-hotpath directive. Three
// consumers share this one scanner so they can never drift apart:
//
//   - the hotalloc analyzer (internal/lint) statically rejects
//     heap-escaping constructs in annotated functions and everything
//     they call within their package;
//   - cmd/escapecheck cross-checks the analyzer's verdicts against the
//     compiler's own escape analysis (go build -gcflags=-m);
//   - the per-package alloc-guard test tables (internal/steal,
//     internal/wire, …) are generated from the annotations, so
//     annotating an exported function automatically demands an
//     AllocsPerRun guard for it.
//
// The directive goes on its own line inside the function's doc
// comment (or on the line immediately above an undocumented one):
//
//	// Push appends an assignment at the owner's end.
//	//lint:loopsched-hotpath
//	func (d *Deque) Push(a sched.Assignment) bool {
//
// Like all //lint: directives it is invisible to go doc.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Directive marks a function as hot-path: it must not allocate on any
// steady-state execution. The comment form is //lint:loopsched-hotpath
// (no space after the slashes, per Go directive convention).
const Directive = "lint:loopsched-hotpath"

// Func describes one annotated function.
type Func struct {
	// Name is the display form: "Push" for plain functions,
	// "(*Deque).Push" for pointer-receiver methods, "(Kind).String"
	// for value-receiver methods.
	Name string
	// Recv is the bare receiver type name ("" for plain functions).
	Recv string
	// Ident is the function identifier alone ("Push").
	Ident string
	// Exported reports whether the function identifier is exported.
	Exported bool
	// File is the path as given to the parser; Line and EndLine span
	// the declaration (doc comment excluded).
	File    string
	Line    int
	EndLine int
}

// hasDirective reports whether any line of the comment group is the
// hot-path directive.
func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// directiveLines collects the line numbers of every hot-path directive
// comment in the file, for matching bare directives that sit directly
// above an undocumented declaration.
func directiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == Directive || strings.HasPrefix(text, Directive+" ") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// AnnotatedDecls returns the FuncDecls in the parsed files that carry
// the hot-path directive (in their doc comment, or on the line
// directly above). The files must have been parsed with
// parser.ParseComments.
func AnnotatedDecls(fset *token.FileSet, files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		lines := directiveLines(fset, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if hasDirective(fn.Doc) || lines[fset.Position(fn.Pos()).Line-1] {
				out = append(out, fn)
			}
		}
	}
	return out
}

// DeclName renders a FuncDecl's display name: "Push", "(*Deque).Push"
// or "(Kind).String".
func DeclName(fn *ast.FuncDecl) string {
	recv := recvTypeName(fn)
	if recv == "" {
		return fn.Name.Name
	}
	if recvIsPointer(fn) {
		return fmt.Sprintf("(*%s).%s", recv, fn.Name.Name)
	}
	return fmt.Sprintf("(%s).%s", recv, fn.Name.Name)
}

// recvTypeName returns the bare receiver type name, "" for functions.
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (IndexExpr) do not occur in this module.
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func recvIsPointer(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	_, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
	return ok
}

// Annotated parses every non-test .go file in dir (one package
// directory, not recursive) and returns its annotated functions,
// sorted by name.
func Annotated(dir string) ([]Func, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hotpath: %w", err)
	}
	fset := token.NewFileSet()
	var out []Func
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("hotpath: %w", err)
		}
		for _, fn := range AnnotatedDecls(fset, []*ast.File{f}) {
			out = append(out, Func{
				Name:     DeclName(fn),
				Recv:     recvTypeName(fn),
				Ident:    fn.Name.Name,
				Exported: ast.IsExported(fn.Name.Name),
				File:     path,
				Line:     fset.Position(fn.Pos()).Line,
				EndLine:  fset.Position(fn.End()).Line,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
