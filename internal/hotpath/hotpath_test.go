package hotpath_test

import (
	"os"
	"path/filepath"
	"testing"

	"loopsched/internal/hotpath"
)

func writeFixture(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnnotatedDocAndBareForms(t *testing.T) {
	dir := writeFixture(t, "a.go", `package a

// Push is documented; the directive rides in the doc comment.
//lint:loopsched-hotpath
func (d *Deque) Push(v int) bool { return true }

//lint:loopsched-hotpath
func bare() {}

// Pop has no directive.
func (d Deque) Pop() {}

type Deque struct{}
`)
	fns, err := hotpath.Annotated(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 2 {
		t.Fatalf("annotated = %v, want 2 entries", fns)
	}
	// Sorted by name: "(*Deque).Push" < "bare".
	if fns[0].Name != "(*Deque).Push" || fns[0].Recv != "Deque" || !fns[0].Exported {
		t.Errorf("first = %+v, want (*Deque).Push exported", fns[0])
	}
	if fns[1].Name != "bare" || fns[1].Exported {
		t.Errorf("second = %+v, want unexported bare", fns[1])
	}
	if fns[0].Line <= 0 || fns[0].EndLine < fns[0].Line {
		t.Errorf("bad span %d..%d", fns[0].Line, fns[0].EndLine)
	}
}

func TestAnnotatedSkipsTestFilesAndStrayComments(t *testing.T) {
	dir := writeFixture(t, "a.go", `package a

// A directive not attached to a declaration annotates nothing:
//lint:loopsched-hotpath

var x int

func plain() {}
`)
	if err := os.WriteFile(filepath.Join(dir, "a_test.go"), []byte(`package a

//lint:loopsched-hotpath
func helperInTest() {}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	fns, err := hotpath.Annotated(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 0 {
		t.Fatalf("annotated = %v, want none", fns)
	}
}

// TestRealPackagesHaveAnnotations pins the inventory sources: the
// packages docs/LINTING.md lists as annotated must actually carry
// directives, so the doc, the analyzer and the guard tables stay
// grounded.
func TestRealPackagesHaveAnnotations(t *testing.T) {
	for _, dir := range []string{"../steal", "../wire", "../telemetry", "../exec"} {
		fns, err := hotpath.Annotated(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(fns) == 0 {
			t.Errorf("%s: no //lint:loopsched-hotpath annotations found", dir)
		}
	}
}
