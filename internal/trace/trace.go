// Package trace records chunk-level execution traces of a scheduled
// loop: which worker computed which iteration range, and when. Traces
// power the ASCII Gantt view of cmd/loopsched, utilization analysis,
// and cross-checking invariants in tests (every iteration appears in
// exactly one traced chunk).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Event is one chunk's lifecycle on a worker.
type Event struct {
	// Worker is the executing slave (0-based).
	Worker int
	// Start/Size identify the iteration range [Start, Start+Size).
	Start, Size int
	// Begin/End bound the chunk's computation, in seconds.
	Begin, End float64
	// ACP is the worker's reported available computing power at
	// request time (0 when the scheme is not distributed).
	ACP int
}

// Trace accumulates events; safe for concurrent Add.
type Trace struct {
	Scheme   string
	Workload string
	Workers  int

	mu     sync.Mutex
	events []Event
}

// Add appends one event.
func (t *Trace) Add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events, ordered by Begin.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Event(nil), t.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Merge appends every event of other into t, so per-shard traces from
// the hierarchical runtime can be combined into one root view. Worker
// ids are taken as-is (the hier runtimes record run-global ids).
// Metadata (Scheme/Workload) is adopted from other only where t's own
// is empty, and t.Workers grows to cover the larger worker set. Safe
// for concurrent use; merging a trace into itself is a no-op.
func (t *Trace) Merge(other *Trace) {
	if other == nil || other == t {
		return
	}
	evs := other.Events()
	scheme, wl, workers := other.Scheme, other.Workload, other.Workers
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, evs...)
	if t.Scheme == "" {
		t.Scheme = scheme
	}
	if t.Workload == "" {
		t.Workload = wl
	}
	if workers > t.Workers {
		t.Workers = workers
	}
}

// Span returns the trace's time extent (earliest Begin, latest End).
func (t *Trace) Span() (begin, end float64) {
	evs := t.Events()
	if len(evs) == 0 {
		return 0, 0
	}
	begin = math.Inf(1)
	for _, e := range evs {
		if e.Begin < begin {
			begin = e.Begin
		}
		if e.End > end {
			end = e.End
		}
	}
	return begin, end
}

// CoverageError verifies that the traced chunks tile [0, iterations)
// exactly once; it returns nil when they do. Tests use it to
// cross-check schedulers against their own reports.
func (t *Trace) CoverageError(iterations int) error {
	seen := make([]int, iterations)
	for _, e := range t.Events() {
		if e.Size < 0 || e.Start < 0 || e.Start+e.Size > iterations {
			return fmt.Errorf("trace: chunk %+v out of range", e)
		}
		for i := e.Start; i < e.Start+e.Size; i++ {
			seen[i]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			return fmt.Errorf("trace: iteration %d executed %d times", i, n)
		}
	}
	return nil
}

// WriteCSV emits the events as comma-separated rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "worker,start,size,begin,end,acp"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.6f,%.6f,%d\n",
			e.Worker, e.Start, e.Size, e.Begin, e.End, e.ACP); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders an ASCII chart, one row per worker, `width` columns
// spanning the trace: '#' marks computing, '.' idle. Chunk boundaries
// inside a busy stretch alternate '#' and '='.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	begin, end := t.Span()
	if end <= begin {
		return "(empty trace)\n"
	}
	rows := make([][]byte, t.Workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	col := func(ts float64) int {
		c := int(float64(width) * (ts - begin) / (end - begin))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	marks := []byte{'#', '='}
	count := make([]int, t.Workers)
	for _, e := range t.Events() {
		if e.Worker < 0 || e.Worker >= t.Workers {
			continue
		}
		m := marks[count[e.Worker]%2]
		count[e.Worker]++
		for c := col(e.Begin); c <= col(e.End); c++ {
			rows[e.Worker][c] = m
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Gantt %s on %s — %.2fs span, one row per PE\n", t.Scheme, t.Workload, end-begin)
	for i, r := range rows {
		fmt.Fprintf(&sb, "PE%-2d |%s|\n", i+1, r)
	}
	return sb.String()
}

// Utilization returns, for each of `buckets` equal time slices, the
// fraction of workers computing (overlap-weighted, in [0, 1]). Each
// event touches only the buckets its [Begin, End] interval maps to —
// the scan is O(events + touched buckets), not O(events × buckets).
func (t *Trace) Utilization(buckets int) []float64 {
	if buckets < 1 {
		buckets = 1
	}
	out := make([]float64, buckets)
	begin, end := t.Span()
	if end <= begin || t.Workers == 0 {
		return out
	}
	bucketLen := (end - begin) / float64(buckets)
	for _, e := range t.Events() {
		if e.End <= e.Begin {
			continue
		}
		// The event can only overlap buckets b0..b1; clamp against
		// float rounding at the span edges.
		b0 := int((e.Begin - begin) / bucketLen)
		b1 := int((e.End - begin) / bucketLen)
		if b0 < 0 {
			b0 = 0
		}
		if b1 >= buckets {
			b1 = buckets - 1
		}
		for b := b0; b <= b1; b++ {
			lo := begin + float64(b)*bucketLen
			hi := lo + bucketLen
			overlap := math.Min(e.End, hi) - math.Max(e.Begin, lo)
			if overlap > 0 {
				out[b] += overlap / (bucketLen * float64(t.Workers))
			}
		}
	}
	for b := range out {
		if out[b] > 1 {
			out[b] = 1 // overlapping same-worker chunks can't exceed 1
		}
	}
	return out
}

// MeanUtilization is the overall computing fraction across the span.
func (t *Trace) MeanUtilization() float64 {
	begin, end := t.Span()
	if end <= begin || t.Workers == 0 {
		return 0
	}
	var busy float64
	for _, e := range t.Events() {
		busy += e.End - e.Begin
	}
	return busy / ((end - begin) * float64(t.Workers))
}
