package trace

import (
	"math"
	"strings"
	"testing"
)

func sample() *Trace {
	t := &Trace{Scheme: "TSS", Workload: "uniform", Workers: 2}
	t.Add(Event{Worker: 0, Start: 0, Size: 5, Begin: 0, End: 1})
	t.Add(Event{Worker: 1, Start: 5, Size: 5, Begin: 0, End: 3})
	t.Add(Event{Worker: 0, Start: 10, Size: 2, Begin: 1.5, End: 2})
	return t
}

func TestEventsSorted(t *testing.T) {
	tr := sample()
	evs := tr.Events()
	if len(evs) != 3 || tr.Len() != 3 {
		t.Fatalf("len %d/%d", len(evs), tr.Len())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Begin < evs[i-1].Begin {
			t.Errorf("not sorted: %+v", evs)
		}
	}
}

func TestSpan(t *testing.T) {
	tr := sample()
	b, e := tr.Span()
	if b != 0 || e != 3 {
		t.Errorf("span [%g, %g], want [0, 3]", b, e)
	}
	empty := &Trace{Workers: 1}
	if b, e := empty.Span(); b != 0 || e != 0 {
		t.Errorf("empty span [%g, %g]", b, e)
	}
}

func TestCoverage(t *testing.T) {
	tr := sample()
	if err := tr.CoverageError(12); err != nil {
		t.Errorf("good trace flagged: %v", err)
	}
	// Hole.
	if err := tr.CoverageError(13); err == nil {
		t.Error("missing iteration 12 not flagged")
	}
	// Overlap.
	tr.Add(Event{Worker: 1, Start: 3, Size: 1, Begin: 4, End: 5})
	if err := tr.CoverageError(12); err == nil {
		t.Error("double execution not flagged")
	}
	// Out of range.
	bad := &Trace{Workers: 1}
	bad.Add(Event{Worker: 0, Start: 10, Size: 5, Begin: 0, End: 1})
	if err := bad.CoverageError(12); err == nil {
		t.Error("out-of-range chunk not flagged")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "worker,start,size,begin,end,acp" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,5,") {
		t.Errorf("first row %q", lines[1])
	}
}

func TestGantt(t *testing.T) {
	out := sample().Gantt(40)
	if !strings.Contains(out, "PE1 ") || !strings.Contains(out, "PE2 ") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("%d lines", len(lines))
	}
	// PE2 computes the whole span → its row has no idle dots between
	// the bars; PE1 has an idle gap (1.0 → 1.5 of a 3 s span).
	if !strings.Contains(lines[1], ".") {
		t.Errorf("PE1 shows no idle time: %s", lines[1])
	}
	if strings.Contains(strings.Trim(lines[2][6:], "|"), ".") {
		t.Errorf("PE2 shows idle time: %s", lines[2])
	}
	// Tiny width is clamped.
	if out := sample().Gantt(1); !strings.Contains(out, "PE1") {
		t.Error("clamped width broke rendering")
	}
	if out := (&Trace{Workers: 1}).Gantt(20); !strings.Contains(out, "empty") {
		t.Error("empty trace not reported")
	}
}

func TestUtilization(t *testing.T) {
	tr := sample()
	u := tr.Utilization(3)
	if len(u) != 3 {
		t.Fatalf("%d buckets", len(u))
	}
	for i, v := range u {
		if v < 0 || v > 1 {
			t.Errorf("bucket %d = %g out of [0,1]", i, v)
		}
	}
	// First bucket [0,1): both workers busy → 1.0.
	if u[0] < 0.99 {
		t.Errorf("bucket 0 = %g, want 1", u[0])
	}
	// Last bucket [2,3): only worker 1 busy → 0.5.
	if u[2] < 0.45 || u[2] > 0.55 {
		t.Errorf("bucket 2 = %g, want 0.5", u[2])
	}
	// Mean utilization: busy = 1 + 3 + 0.5 = 4.5 over 2 workers × 3 s.
	if m := tr.MeanUtilization(); m < 0.74 || m > 0.76 {
		t.Errorf("mean utilization %g, want 0.75", m)
	}
	if (&Trace{Workers: 2}).MeanUtilization() != 0 {
		t.Error("empty mean utilization non-zero")
	}
}

func TestMerge(t *testing.T) {
	root := &Trace{}
	shard0 := &Trace{Scheme: "2level(tss)", Workload: "mandelbrot", Workers: 4}
	shard0.Add(Event{Worker: 0, Start: 0, Size: 10, Begin: 0, End: 1})
	shard0.Add(Event{Worker: 1, Start: 10, Size: 10, Begin: 0, End: 2})
	shard1 := &Trace{Scheme: "2level(tss)", Workload: "mandelbrot", Workers: 4}
	shard1.Add(Event{Worker: 2, Start: 20, Size: 10, Begin: 0.5, End: 1.5})
	shard1.Add(Event{Worker: 3, Start: 30, Size: 10, Begin: 1, End: 3})

	root.Merge(shard0)
	root.Merge(shard1)
	if root.Len() != 4 {
		t.Fatalf("merged Len = %d, want 4", root.Len())
	}
	if root.Scheme != "2level(tss)" || root.Workload != "mandelbrot" || root.Workers != 4 {
		t.Errorf("metadata not adopted: %q %q %d", root.Scheme, root.Workload, root.Workers)
	}
	if err := root.CoverageError(40); err != nil {
		t.Errorf("merged trace does not tile the loop: %v", err)
	}
	// Events() keeps global Begin order across shards.
	evs := root.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Begin < evs[i-1].Begin {
			t.Errorf("merged events out of order at %d", i)
		}
	}
	// Merging nil or self is a no-op.
	root.Merge(nil)
	root.Merge(root)
	if root.Len() != 4 {
		t.Errorf("nil/self merge changed Len to %d", root.Len())
	}
	// Existing metadata wins over the merged trace's.
	named := &Trace{Scheme: "tss", Workers: 8}
	named.Merge(shard0)
	if named.Scheme != "tss" || named.Workers != 8 {
		t.Errorf("merge overwrote metadata: %q %d", named.Scheme, named.Workers)
	}
}

// bigTrace builds a trace with n back-to-back events round-robined
// over 8 workers, spanning n/8 seconds.
func bigTrace(n int) *Trace {
	tr := &Trace{Workers: 8}
	for i := 0; i < n; i++ {
		w := i % 8
		begin := float64(i/8) + float64(w)*1e-4
		tr.Add(Event{
			Worker: w, Start: i * 4, Size: 4,
			Begin: begin, End: begin + 0.9,
		})
	}
	return tr
}

// TestUtilizationBucketRange cross-checks the direct bucket-range scan
// against a brute-force per-bucket evaluation.
func TestUtilizationBucketRange(t *testing.T) {
	tr := bigTrace(200)
	buckets := 37 // deliberately not aligned with event boundaries
	got := tr.Utilization(buckets)

	begin, end := tr.Span()
	bucketLen := (end - begin) / float64(buckets)
	want := make([]float64, buckets)
	for _, e := range tr.Events() {
		for b := 0; b < buckets; b++ {
			lo := begin + float64(b)*bucketLen
			hi := lo + bucketLen
			overlap := math.Min(e.End, hi) - math.Max(e.Begin, lo)
			if overlap > 0 {
				want[b] += overlap / (bucketLen * float64(tr.Workers))
			}
		}
	}
	for b := range want {
		if want[b] > 1 {
			want[b] = 1
		}
	}
	for b := range want {
		if diff := math.Abs(got[b] - want[b]); diff > 1e-9 {
			t.Errorf("bucket %d: got %g want %g (diff %g)", b, got[b], want[b], diff)
		}
	}
}

// BenchmarkUtilization10k measures the bucket-range scan on a
// 10k-event trace (the satellite target: the old implementation
// visited every bucket for every event).
func BenchmarkUtilization10k(b *testing.B) {
	tr := bigTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if u := tr.Utilization(1000); len(u) != 1000 {
			b.Fatal("bad bucket count")
		}
	}
}
