package trace

import (
	"strings"
	"testing"
)

func sample() *Trace {
	t := &Trace{Scheme: "TSS", Workload: "uniform", Workers: 2}
	t.Add(Event{Worker: 0, Start: 0, Size: 5, Begin: 0, End: 1})
	t.Add(Event{Worker: 1, Start: 5, Size: 5, Begin: 0, End: 3})
	t.Add(Event{Worker: 0, Start: 10, Size: 2, Begin: 1.5, End: 2})
	return t
}

func TestEventsSorted(t *testing.T) {
	tr := sample()
	evs := tr.Events()
	if len(evs) != 3 || tr.Len() != 3 {
		t.Fatalf("len %d/%d", len(evs), tr.Len())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Begin < evs[i-1].Begin {
			t.Errorf("not sorted: %+v", evs)
		}
	}
}

func TestSpan(t *testing.T) {
	tr := sample()
	b, e := tr.Span()
	if b != 0 || e != 3 {
		t.Errorf("span [%g, %g], want [0, 3]", b, e)
	}
	empty := &Trace{Workers: 1}
	if b, e := empty.Span(); b != 0 || e != 0 {
		t.Errorf("empty span [%g, %g]", b, e)
	}
}

func TestCoverage(t *testing.T) {
	tr := sample()
	if err := tr.CoverageError(12); err != nil {
		t.Errorf("good trace flagged: %v", err)
	}
	// Hole.
	if err := tr.CoverageError(13); err == nil {
		t.Error("missing iteration 12 not flagged")
	}
	// Overlap.
	tr.Add(Event{Worker: 1, Start: 3, Size: 1, Begin: 4, End: 5})
	if err := tr.CoverageError(12); err == nil {
		t.Error("double execution not flagged")
	}
	// Out of range.
	bad := &Trace{Workers: 1}
	bad.Add(Event{Worker: 0, Start: 10, Size: 5, Begin: 0, End: 1})
	if err := bad.CoverageError(12); err == nil {
		t.Error("out-of-range chunk not flagged")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "worker,start,size,begin,end,acp" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,5,") {
		t.Errorf("first row %q", lines[1])
	}
}

func TestGantt(t *testing.T) {
	out := sample().Gantt(40)
	if !strings.Contains(out, "PE1 ") || !strings.Contains(out, "PE2 ") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("%d lines", len(lines))
	}
	// PE2 computes the whole span → its row has no idle dots between
	// the bars; PE1 has an idle gap (1.0 → 1.5 of a 3 s span).
	if !strings.Contains(lines[1], ".") {
		t.Errorf("PE1 shows no idle time: %s", lines[1])
	}
	if strings.Contains(strings.Trim(lines[2][6:], "|"), ".") {
		t.Errorf("PE2 shows idle time: %s", lines[2])
	}
	// Tiny width is clamped.
	if out := sample().Gantt(1); !strings.Contains(out, "PE1") {
		t.Error("clamped width broke rendering")
	}
	if out := (&Trace{Workers: 1}).Gantt(20); !strings.Contains(out, "empty") {
		t.Error("empty trace not reported")
	}
}

func TestUtilization(t *testing.T) {
	tr := sample()
	u := tr.Utilization(3)
	if len(u) != 3 {
		t.Fatalf("%d buckets", len(u))
	}
	for i, v := range u {
		if v < 0 || v > 1 {
			t.Errorf("bucket %d = %g out of [0,1]", i, v)
		}
	}
	// First bucket [0,1): both workers busy → 1.0.
	if u[0] < 0.99 {
		t.Errorf("bucket 0 = %g, want 1", u[0])
	}
	// Last bucket [2,3): only worker 1 busy → 0.5.
	if u[2] < 0.45 || u[2] > 0.55 {
		t.Errorf("bucket 2 = %g, want 0.5", u[2])
	}
	// Mean utilization: busy = 1 + 3 + 0.5 = 4.5 over 2 workers × 3 s.
	if m := tr.MeanUtilization(); m < 0.74 || m > 0.76 {
		t.Errorf("mean utilization %g, want 0.75", m)
	}
	if (&Trace{Workers: 2}).MeanUtilization() != 0 {
		t.Error("empty mean utilization non-zero")
	}
}
