package sim

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"loopsched/internal/acp"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// Params tune the simulated protocol. The zero value gives the
// defaults documented on each field.
type Params struct {
	// BaseRate is the work-unit throughput of an unloaded power-1
	// machine, in units per second. 0 means 3e6 (calibrated so the
	// paper's 4000×2000 Mandelbrot lands in the paper's tens-of-
	// seconds range).
	BaseRate float64
	// MasterOverhead is the scheduling time per serviced request.
	// 0 means 1 ms.
	MasterOverhead float64
	// RequestBytes / ReplyBytes are the control-message sizes.
	// 0 means 64 bytes each.
	RequestBytes, ReplyBytes float64
	// BytesPerIter is the result payload produced by one iteration
	// (one Mandelbrot column ≈ Height × 2 bytes). 0 means 4096.
	BytesPerIter float64
	// CollectAtEnd disables the paper's piggy-backing optimisation:
	// slaves hold their results and dump them to the master when the
	// loop ends (the slower alternative §5 describes).
	CollectAtEnd bool
	// Prefetch models the pipelined, double-buffered runtime: a slave
	// requests chunk k+1 the moment chunk k starts computing, so the
	// master round-trip overlaps with the kernel. Transfers and master
	// services still shape the timeline, but they are no longer charged
	// to Comm/Wait — only the residue the pipeline fails to hide is
	// charged, as Idle (compute stalls between consecutive chunks).
	// Incompatible with CollectAtEnd: the pipeline piggy-backs results
	// by construction.
	Prefetch bool
	// SharedBus serialises every transfer on one half-duplex medium —
	// the hub/coax Ethernet of the paper's era — instead of giving
	// each slave an independent link. Queueing for the medium is
	// charged as waiting time.
	SharedBus bool
	// ACP is the available-computing-power model used by distributed
	// schemes (zero value = scale 10, no threshold).
	ACP acp.Model
	// DisableReplan turns off the DTSS step 2(c) majority re-plan
	// (ablation).
	DisableReplan bool
	// Trace, when non-nil, records every computed chunk (worker,
	// iteration range, compute interval, reported ACP).
	Trace *trace.Trace
	// Telemetry, when non-nil, receives live protocol events stamped
	// with *virtual* simulation time (Event.At is simulated seconds,
	// not wall seconds). Prefetch hits/misses are not modelled: the
	// simulator has no explicit prefetch handshake, so every grant is
	// published as ChunkGranted.
	Telemetry *telemetry.Bus
}

// WithDefaults resolves the documented zero-value defaults; other
// packages that reuse Params (e.g. the hierarchical simulator) call it
// so the knobs mean the same thing everywhere.
func (p Params) WithDefaults() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.BaseRate <= 0 {
		p.BaseRate = 3e6
	}
	if p.MasterOverhead <= 0 {
		p.MasterOverhead = 1e-3
	}
	if p.RequestBytes <= 0 {
		p.RequestBytes = 64
	}
	if p.ReplyBytes <= 0 {
		p.ReplyBytes = 64
	}
	if p.BytesPerIter <= 0 {
		p.BytesPerIter = 4096
	}
	return p
}

// event kinds.
const (
	evRequestArrive = iota // a slave request reached the master
	evServiceDone          // master finished servicing one request
	evReplyArrive          // the master's reply reached the slave
	evComputeDone          // slave finished computing its chunk
	evDumpArrive           // collect-at-end result dump reached master
	evBusDone              // a shared-bus transfer finished
)

type event struct {
	t      float64
	seq    int64
	kind   int
	worker int
	assign sched.Assignment
	stop   bool
	// payload is the event a bus transfer delivers on completion.
	payload *event
}

// busJob is one queued transfer on the shared medium.
type busJob struct {
	duration float64
	enqueued float64
	worker   int // whose Comm/Wait the transfer is charged to
	deliver  event
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type pendingReq struct {
	worker  int
	arrival float64
	acp     int
	bytes   float64 // inbound payload the master must receive
	dump    bool    // final result dump (collect-at-end mode)
}

type workerState struct {
	times      metrics.Times
	lastChunk  int     // iterations of the chunk just computed
	heldBytes  float64 // results held locally (collect-at-end)
	reqSent    float64 // when the in-flight request left the slave
	fbWork     float64 // cost of the chunk just computed (feedback)
	fbElapsed  float64 // its execution time (feedback)
	done       bool
	finishedAt float64
	iterations int
	requests   int
	// Pipelined-mode state (Params.Prefetch).
	computing      bool             // a chunk is executing right now
	queued         sched.Assignment // reply that arrived mid-compute
	hasQueued      bool
	stopPending    bool    // Stop arrived mid-compute; drain after
	lastComputeEnd float64 // when the previous chunk finished
	computedOnce   bool
}

type simulator struct {
	cluster  Cluster
	params   Params
	scheme   sched.Scheme
	work     workload.Workload
	dist     bool
	ctx      context.Context
	steps    int64
	now      float64
	seq      int64
	events   eventQueue
	queue    []pendingReq
	busy     bool
	workers  []workerState
	policy   sched.Policy
	planACP  []int // ACPs at last (re)plan
	liveACP  []int // most recently reported ACPs
	base     int   // iterations assigned so far
	planned  bool
	initSeen int
	chunks   int
	replans  int
	joined   []bool // workers whose first request arrived (telemetry)
	lastTime float64
	busBusy  bool
	busQueue []busJob
}

// transfer moves a message for worker w, delivering ev when it
// completes. Independent links deliver at t+d; the shared bus queues
// the job for the single medium, charging the queueing delay as
// waiting time.
func (s *simulator) transfer(w int, t, d float64, ev event) {
	if !s.params.SharedBus {
		// Pipelined transfers overlap with computation; their exposed
		// cost surfaces as Idle at the compute loop, not here.
		if !s.params.Prefetch {
			s.workers[w].times.Comm += d
		}
		ev.t = t + d
		s.push(ev)
		return
	}
	s.busQueue = append(s.busQueue, busJob{duration: d, enqueued: t, worker: w, deliver: ev})
	s.serviceBus(t)
}

func (s *simulator) serviceBus(t float64) {
	if s.busBusy || len(s.busQueue) == 0 {
		return
	}
	job := s.busQueue[0]
	s.busQueue = s.busQueue[1:]
	s.busBusy = true
	st := &s.workers[job.worker]
	if !s.params.Prefetch {
		st.times.Comm += job.duration
		if q := t - job.enqueued; q > 0 {
			st.times.Wait += q
		}
	}
	deliver := job.deliver
	deliver.t = t + job.duration
	s.push(event{t: t + job.duration, kind: evBusDone, payload: &deliver})
}

// Run executes the workload on the cluster under the scheme and
// returns the paper-style report. The simulation is deterministic.
func Run(c Cluster, s sched.Scheme, w workload.Workload, p Params) (metrics.Report, error) {
	return RunContext(context.Background(), c, s, w, p)
}

// RunContext is Run with cancellation: the event loop polls ctx and
// aborts with its error. The simulation stays deterministic — ctx only
// decides whether it runs to completion.
func RunContext(ctx context.Context, c Cluster, s sched.Scheme, w workload.Workload, p Params) (metrics.Report, error) {
	if err := c.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if p.Prefetch && p.CollectAtEnd {
		return metrics.Report{}, fmt.Errorf("sim: Prefetch piggy-backs results and cannot be combined with CollectAtEnd")
	}
	p = p.withDefaults()
	if p.Trace != nil {
		p.Trace.Scheme = s.Name()
		p.Trace.Workload = w.Name()
		p.Trace.Workers = len(c.Machines)
	}
	sim := &simulator{
		cluster: c,
		params:  p,
		scheme:  s,
		work:    w,
		ctx:     ctx,
		dist:    sched.Distributed(s),
		workers: make([]workerState, len(c.Machines)),
		planACP: make([]int, len(c.Machines)),
		liveACP: make([]int, len(c.Machines)),
		joined:  make([]bool, len(c.Machines)),
	}
	if err := sim.run(); err != nil {
		return metrics.Report{}, err
	}
	// Charge terminal idle: a slave that was stopped early still sits
	// in the barrier until the whole loop finishes — the paper's
	// T_wait is exactly this "fast PEs wait for the critical chunk"
	// signal (Table 2's 17–19 s waits on the fast PEs).
	for i := range sim.workers {
		if idle := sim.lastTime - sim.workers[i].finishedAt; idle > 0 && sim.workers[i].done {
			sim.workers[i].times.Wait += idle
		}
	}
	report := metrics.Report{
		Scheme:   s.Name(),
		Workload: w.Name(),
		Workers:  len(c.Machines),
		Tp:       sim.lastTime,
		Chunks:   sim.chunks,
		Replans:  sim.replans,
	}
	for i := range sim.workers {
		report.PerWorker = append(report.PerWorker, sim.workers[i].times)
		report.Iterations += sim.workers[i].iterations
	}
	if report.Iterations != w.Len() {
		return report, fmt.Errorf("sim: executed %d of %d iterations", report.Iterations, w.Len())
	}
	return report, nil
}

func (s *simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// acpAt evaluates a slave's ACP when it sends a request.
func (s *simulator) acpAt(w int, t float64) int {
	m := s.cluster.Machines[w]
	return s.params.ACP.ACP(m.Power, m.RunQueue(t))
}

// sendRequest models the slave transmitting a request (plus any
// piggy-backed results) to the master.
func (s *simulator) sendRequest(w int, t float64) {
	m := s.cluster.Machines[w]
	st := &s.workers[w]
	bytes := s.params.RequestBytes
	var inbound float64
	if !s.params.CollectAtEnd && st.lastChunk > 0 {
		payload := float64(st.lastChunk) * s.params.BytesPerIter
		bytes += payload
		inbound = payload
	}
	d := m.Link.Transfer(bytes)
	st.reqSent = t
	st.lastChunk = 0
	st.requests++
	s.transfer(w, t, d, event{kind: evRequestArrive, worker: w, assign: sched.Assignment{Size: int(inbound)}})
}

func (s *simulator) plan() error {
	powers := make([]float64, len(s.liveACP))
	for i, a := range s.liveACP {
		if a < 1 {
			a = 1
		}
		powers[i] = float64(a)
	}
	cfg := sched.Config{
		Iterations: s.work.Len() - s.base,
		Workers:    len(s.cluster.Machines),
	}
	if s.dist {
		cfg.Powers = powers
	}
	// Static-weight schemes (WF, WS) see the plan-time virtual powers
	// but never the run-time load (the paper's section 6 distinction).
	switch s.scheme.(type) {
	case sched.WFScheme, sched.WeightedStaticScheme:
		cfg.Powers = s.cluster.Powers()
	}
	pol, err := s.scheme.NewPolicy(cfg)
	if err != nil {
		return err
	}
	s.policy = sched.Offset(pol, s.base)
	copy(s.planACP, s.liveACP)
	s.planned = true
	return nil
}

func (s *simulator) run() error {
	heap.Init(&s.events)
	// Simple schemes plan immediately; distributed masters first wait
	// for every slave to report its A_i (master step 1(a)).
	if !s.dist {
		if err := s.plan(); err != nil {
			return err
		}
	}
	// All slaves fire their first (empty) request at t = 0.
	for w := range s.cluster.Machines {
		s.sendRequest(w, 0)
	}
	if s.ctx != nil { // a pre-cancelled run must not simulate at all
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	for s.events.Len() > 0 {
		if s.steps++; s.steps&1023 == 0 && s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.t
		if e.t > s.lastTime {
			s.lastTime = e.t
		}
		switch e.kind {
		case evRequestArrive:
			w := e.worker
			s.liveACP[w] = s.acpAt(w, s.workers[w].reqSent)
			if !s.joined[w] {
				s.joined[w] = true
				s.params.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.WorkerJoined, Worker: w,
					ACP: s.liveACP[w], At: e.t,
				})
			}
			s.params.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.ChunkRequested, Worker: w,
				ACP: s.liveACP[w], At: e.t,
			})
			s.queue = append(s.queue, pendingReq{
				worker:  w,
				arrival: e.t,
				acp:     s.liveACP[w],
				bytes:   float64(e.assign.Size),
			})
			if !s.planned {
				s.initSeen++
				if s.initSeen < len(s.cluster.Machines) {
					continue // master still gathering initial reports
				}
				// Sort the initial queue by ACP decreasing (step 1a).
				sort.SliceStable(s.queue, func(i, j int) bool {
					return s.queue[i].acp > s.queue[j].acp
				})
				if err := s.plan(); err != nil {
					return err
				}
			}
			s.serviceNext()

		case evDumpArrive:
			s.queue = append(s.queue, pendingReq{
				worker:  e.worker,
				arrival: e.t,
				bytes:   float64(e.assign.Size),
				dump:    true,
			})
			s.serviceNext()

		case evServiceDone:
			s.busy = false
			w := e.worker
			st := &s.workers[w]
			if e.assign.Size < 0 { // final dump acknowledged
				st.done = true
				st.finishedAt = e.t
			} else {
				m := s.cluster.Machines[w]
				d := m.Link.Transfer(s.params.ReplyBytes)
				s.transfer(w, e.t, d, event{kind: evReplyArrive, worker: w, assign: e.assign, stop: e.stop})
			}
			s.serviceNext()

		case evReplyArrive:
			if s.params.Prefetch {
				s.prefetchReply(e)
				continue
			}
			w := e.worker
			st := &s.workers[w]
			if e.stop {
				if s.params.CollectAtEnd && st.heldBytes > 0 {
					m := s.cluster.Machines[w]
					d := m.Link.Transfer(s.params.RequestBytes + st.heldBytes)
					st.reqSent = e.t
					s.transfer(w, e.t, d, event{kind: evDumpArrive, worker: w,
						assign: sched.Assignment{Size: int(st.heldBytes)}})
					st.heldBytes = 0
				} else {
					st.done = true
					st.finishedAt = e.t
				}
				continue
			}
			m := s.cluster.Machines[w]
			work := workload.RangeCost(s.work, e.assign.Start, e.assign.End())
			d := m.ComputeTime(s.params.BaseRate, e.t, work)
			st.times.Comp += d
			st.fbWork, st.fbElapsed = work, d
			if s.params.Trace != nil {
				s.params.Trace.Add(trace.Event{
					Worker: w,
					Start:  e.assign.Start,
					Size:   e.assign.Size,
					Begin:  e.t,
					End:    e.t + d,
					ACP:    s.liveACP[w],
				})
			}
			s.params.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.ChunkCompleted, Worker: w,
				Start: e.assign.Start, Size: e.assign.Size,
				ACP: s.liveACP[w], At: e.t + d, Seconds: d,
			})
			st.iterations += e.assign.Size
			st.lastChunk = e.assign.Size
			if s.params.CollectAtEnd {
				st.heldBytes += float64(e.assign.Size) * s.params.BytesPerIter
			}
			s.push(event{t: e.t + d, kind: evComputeDone, worker: w})

		case evComputeDone:
			if s.params.Prefetch {
				s.prefetchComputeDone(e)
				continue
			}
			s.sendRequest(e.worker, e.t)

		case evBusDone:
			s.busBusy = false
			if e.payload != nil {
				s.push(*e.payload)
			}
			s.serviceBus(e.t)
		}
	}
	return nil
}

// startCompute begins executing assignment a on worker w at time t and
// immediately sends the next (prefetch) request — carrying the results
// of the previously finished chunk — so the master round-trip overlaps
// with the kernel. Any gap since the last chunk ended is the stall the
// pipeline failed to hide, charged as Idle.
func (s *simulator) startCompute(w int, a sched.Assignment, t float64) {
	st := &s.workers[w]
	if st.computedOnce {
		if stall := t - st.lastComputeEnd; stall > 0 {
			st.times.Idle += stall
		}
	}
	m := s.cluster.Machines[w]
	work := workload.RangeCost(s.work, a.Start, a.End())
	d := m.ComputeTime(s.params.BaseRate, t, work)
	st.times.Comp += d
	st.fbWork, st.fbElapsed = work, d
	if s.params.Trace != nil {
		s.params.Trace.Add(trace.Event{
			Worker: w,
			Start:  a.Start,
			Size:   a.Size,
			Begin:  t,
			End:    t + d,
			ACP:    s.liveACP[w],
		})
	}
	s.params.Telemetry.Publish(telemetry.Event{
		Kind: telemetry.ChunkCompleted, Worker: w,
		Start: a.Start, Size: a.Size,
		ACP: s.liveACP[w], At: t + d, Seconds: d,
	})
	st.iterations += a.Size
	st.computing = true
	s.push(event{t: t + d, kind: evComputeDone, worker: w, assign: a})
	s.sendRequest(w, t)
}

// prefetchReply handles a master reply in pipelined mode: an
// assignment either starts computing at once (slave was stalled) or is
// buffered as the second outstanding chunk; a Stop either terminates
// an idle slave, triggers the final result drain, or is deferred until
// the current chunk finishes.
func (s *simulator) prefetchReply(e event) {
	w := e.worker
	st := &s.workers[w]
	if e.stop {
		if st.computing {
			st.stopPending = true
			return
		}
		if st.lastChunk > 0 {
			// Ship the held results; the master's next (Stop) reply
			// then terminates the slave.
			s.sendRequest(w, e.t)
			return
		}
		st.done = true
		st.finishedAt = e.t
		return
	}
	if st.computing {
		st.queued, st.hasQueued = e.assign, true
		return
	}
	s.startCompute(w, e.assign, e.t)
}

// prefetchComputeDone finishes a chunk in pipelined mode: if the
// prefetched reply already arrived the next chunk starts back-to-back
// (the hidden-communication case); a deferred Stop drains the final
// results; otherwise the slave stalls until its prefetch lands.
func (s *simulator) prefetchComputeDone(e event) {
	st := &s.workers[e.worker]
	st.computing = false
	st.lastChunk = e.assign.Size
	st.lastComputeEnd = e.t
	st.computedOnce = true
	switch {
	case st.hasQueued:
		a := st.queued
		st.hasQueued = false
		s.startCompute(e.worker, a, e.t)
	case st.stopPending:
		st.stopPending = false
		s.sendRequest(e.worker, e.t)
	}
}

// serviceNext pops the head request if the master is idle, decides the
// reply, and schedules evServiceDone after the receive + scheduling
// overhead. The waiting time (queueing + service) is charged to the
// slave, matching the paper's T_wait.
func (s *simulator) serviceNext() {
	if s.busy || len(s.queue) == 0 || !s.planned {
		return
	}
	req := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	recv := s.params.MasterOverhead + req.bytes/s.cluster.masterBandwidth()
	done := s.now + recv
	st := &s.workers[req.worker]
	if !s.params.Prefetch {
		st.times.Wait += done - req.arrival
	}

	if req.dump {
		s.push(event{t: done, kind: evServiceDone, worker: req.worker,
			assign: sched.Assignment{Size: -1}})
		return
	}

	// Timing feedback for learning policies (AWF): the master measures
	// each chunk's turnaround when the next request arrives.
	st2 := &s.workers[req.worker]
	if fb, ok := s.policy.(sched.FeedbackPolicy); ok && st2.fbElapsed > 0 {
		fb.Feedback(req.worker, st2.fbWork, st2.fbElapsed)
		st2.fbElapsed = 0
	}

	// DTSS step 2(c): re-plan when a majority of ACPs changed.
	if s.dist && !s.params.DisableReplan && acp.MajorityChanged(s.planACP, s.liveACP) {
		if err := s.plan(); err != nil {
			// Surface via a stop reply; Run's coverage check reports it.
			s.push(event{t: done, kind: evServiceDone, worker: req.worker, stop: true})
			return
		}
		s.replans++
		s.params.Telemetry.Publish(telemetry.Event{
			Kind: telemetry.StageAdvanced, Worker: req.worker, At: done,
		})
	}

	a, ok := s.policy.Next(sched.Request{Worker: req.worker, ACP: float64(req.acp)})
	if !ok {
		s.push(event{t: done, kind: evServiceDone, worker: req.worker, stop: true})
		return
	}
	s.base = a.End()
	s.chunks++
	s.params.Telemetry.Publish(telemetry.Event{
		Kind: telemetry.ChunkGranted, Worker: req.worker,
		Start: a.Start, Size: a.Size, ACP: req.acp,
		At: done, Seconds: done - req.arrival,
	})
	s.push(event{t: done, kind: evServiceDone, worker: req.worker, assign: a})
}
