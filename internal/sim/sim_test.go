package sim

import (
	"math"
	"reflect"
	"testing"

	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// testCluster builds the paper's machine mix scaled down: nFast
// machines with power 3 on 100 Mbit links and nSlow with power 1 on
// 10 Mbit links.
func testCluster(nFast, nSlow int) Cluster {
	var ms []Machine
	for i := 0; i < nFast; i++ {
		ms = append(ms, Machine{Name: "fast", Power: 3,
			Link: Link{Latency: 0.0002, Bandwidth: Mbit100}})
	}
	for i := 0; i < nSlow; i++ {
		ms = append(ms, Machine{Name: "slow", Power: 1,
			Link: Link{Latency: 0.001, Bandwidth: Mbit10}})
	}
	return Cluster{Machines: ms}
}

func testParams() Params {
	// Small synthetic problems: one work unit per iteration, so scale
	// the result payload down with it (the default 4 KiB per iteration
	// is calibrated for Mandelbrot columns worth ~10⁴ units each).
	return Params{BaseRate: 1e5, BytesPerIter: 1}
}

func mustRun(t *testing.T, c Cluster, s sched.Scheme, w workload.Workload, p Params) metrics.Report {
	t.Helper()
	rep, err := Run(c, s, w, p)
	if err != nil {
		t.Fatalf("%s on %s: %v", s.Name(), w.Name(), err)
	}
	return rep
}

func TestRunCoverageAllSchemes(t *testing.T) {
	c := testCluster(2, 2)
	w := workload.Uniform{N: 2000}
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustRun(t, c, s, w, testParams())
		if rep.Iterations != 2000 {
			t.Errorf("%s: %d iterations", name, rep.Iterations)
		}
		if rep.Tp <= 0 {
			t.Errorf("%s: Tp = %g", name, rep.Tp)
		}
		if rep.Chunks < 1 {
			t.Errorf("%s: no chunks", name)
		}
		if len(rep.PerWorker) != 4 {
			t.Errorf("%s: %d worker rows", name, len(rep.PerWorker))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	c := testCluster(2, 3)
	c.Machines[1].Load = LoadScript{{Start: 0.01, End: 10, Extra: 1}}
	w := workload.LinearIncreasing{N: 3000}
	a := mustRun(t, c, sched.DTSSScheme{}, w, testParams())
	b := mustRun(t, c, sched.DTSSScheme{}, w, testParams())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestDistributedBalancesComp: on a 3:1 heterogeneous cluster the
// simple scheme leaves the slow class computing roughly 3× longer
// than the fast class (the paper's Table 2: fast PEs ≈3.5 s vs slow
// ≈8–12 s), while the distributed version erases the class
// correlation and cuts T_p (Table 3) — the paper's headline result.
func TestDistributedBalancesComp(t *testing.T) {
	c := testCluster(2, 4)
	w := workload.Uniform{N: 8000}
	p := testParams()
	simple := mustRun(t, c, sched.TSSScheme{}, w, p)
	dist := mustRun(t, c, sched.DTSSScheme{}, w, p)

	classRatio := func(r metrics.Report) float64 {
		fast := (r.PerWorker[0].Comp + r.PerWorker[1].Comp) / 2
		slow := (r.PerWorker[2].Comp + r.PerWorker[3].Comp +
			r.PerWorker[4].Comp + r.PerWorker[5].Comp) / 4
		return slow / fast
	}
	rs, rd := classRatio(simple), classRatio(dist)
	// Self-scheduling partially adapts through request frequency even
	// without power knowledge, so on a uniform loop the simple ratio
	// is above 1 but not the full 3; the distributed ratio must be
	// both lower and near 1. (The full paper conditions — irregular
	// Mandelbrot columns and heavyweight results — are exercised by
	// the Table 2/3 experiment harness.)
	if rs <= 1.1 {
		t.Errorf("TSS slow/fast comp ratio %.2f, want > 1.1", rs)
	}
	if rd >= rs {
		t.Errorf("DTSS class ratio %.2f not below TSS %.2f", rd, rs)
	}
	if rd > 1.5 {
		t.Errorf("DTSS slow/fast comp ratio %.2f, want ≈1", rd)
	}
	// At this toy scale (uniform costs, near-free communication) the
	// simple scheme self-balances via request frequency, so DTSS is
	// only required not to lose; the realistic-condition T_p gap is
	// asserted by the internal/experiments Table 2/3 test.
	if dist.Tp > simple.Tp*1.10 {
		t.Errorf("DTSS Tp %.3f well above TSS %.3f", dist.Tp, simple.Tp)
	}
}

// TestDistributedFollowsPower: under DTSS the power-3 machines execute
// roughly 3× the iterations of the power-1 machines.
func TestDistributedFollowsPower(t *testing.T) {
	c := testCluster(1, 1)
	w := workload.Uniform{N: 10000}
	rep := mustRun(t, c, sched.DTSSScheme{}, w, testParams())
	fastComp := rep.PerWorker[0].Comp
	slowComp := rep.PerWorker[1].Comp
	ratio := fastComp / slowComp
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("comp times not balanced: fast %.3f vs slow %.3f", fastComp, slowComp)
	}
}

// TestSimpleIgnoresPower: a simple scheme gives both machines equal
// iteration counts, leaving the slow machine computing ~3× longer.
func TestSimpleIgnoresPower(t *testing.T) {
	c := testCluster(1, 1)
	w := workload.Uniform{N: 10000}
	rep := mustRun(t, c, sched.StaticScheme{}, w, testParams())
	ratio := rep.PerWorker[1].Comp / rep.PerWorker[0].Comp
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("static comp ratio %.2f, want ≈3", ratio)
	}
}

// TestNonDedicatedReplan: a load spike arriving mid-run must trigger
// the distributed master's majority re-plan.
func TestNonDedicatedReplan(t *testing.T) {
	c := testCluster(2, 2)
	for i := range c.Machines {
		if i < 3 {
			c.Machines[i].Load = LoadScript{{Start: 0.05, End: 1e9, Extra: 2}}
		}
	}
	w := workload.Uniform{N: 60000}
	rep := mustRun(t, c, sched.DTSSScheme{}, w, testParams())
	if rep.Replans == 0 {
		t.Errorf("no re-plans despite majority load change (chunks=%d)", rep.Chunks)
	}
	// Ablation: the switch works.
	p := testParams()
	p.DisableReplan = true
	rep2 := mustRun(t, c, sched.DTSSScheme{}, w, p)
	if rep2.Replans != 0 {
		t.Errorf("DisableReplan leaked %d replans", rep2.Replans)
	}
}

// TestCollectAtEndSlower: the paper found piggy-backed results faster
// than collecting everything at the end (master contention). The
// simulator must reproduce that ordering.
func TestCollectAtEndSlower(t *testing.T) {
	c := testCluster(2, 6)
	w := workload.Uniform{N: 4000}
	pig := testParams()
	col := testParams()
	col.CollectAtEnd = true
	a := mustRun(t, c, sched.TSSScheme{}, w, pig)
	b := mustRun(t, c, sched.TSSScheme{}, w, col)
	if b.Iterations != a.Iterations {
		t.Fatalf("iteration mismatch %d vs %d", a.Iterations, b.Iterations)
	}
	if b.Tp <= a.Tp {
		t.Errorf("collect-at-end Tp %.3f not above piggy-back %.3f", b.Tp, a.Tp)
	}
}

// TestChunkCountTracksScheme: SS issues one service per iteration,
// CSS(k) one per k iterations.
func TestChunkCountTracksScheme(t *testing.T) {
	c := testCluster(1, 1)
	w := workload.Uniform{N: 600}
	ss := mustRun(t, c, sched.SelfScheduling, w, testParams())
	if ss.Chunks != 600 {
		t.Errorf("SS chunks = %d, want 600", ss.Chunks)
	}
	css := mustRun(t, c, sched.CSSScheme{K: 100}, w, testParams())
	if css.Chunks != 6 {
		t.Errorf("CSS(100) chunks = %d, want 6", css.Chunks)
	}
	if ss.MeanWait()+ss.MeanComm() <= css.MeanWait()+css.MeanComm() {
		t.Errorf("SS overhead (%.4f) not above CSS(100) (%.4f)",
			ss.MeanWait()+ss.MeanComm(), css.MeanWait()+css.MeanComm())
	}
}

// TestTimesAddUp: each worker's Comm+Wait+Comp should account for
// (almost all of) its lifetime, and Tp must dominate every component.
func TestTimesAddUp(t *testing.T) {
	c := testCluster(2, 2)
	w := workload.LinearDecreasing{N: 4000}
	rep := mustRun(t, c, sched.TFSSScheme{}, w, testParams())
	for i, tt := range rep.PerWorker {
		if tt.Comp < 0 || tt.Wait < 0 || tt.Comm < 0 {
			t.Errorf("worker %d negative component: %+v", i, tt)
		}
		if tt.Total() > rep.Tp+1e-9 {
			t.Errorf("worker %d total %.4f exceeds Tp %.4f", i, tt.Total(), rep.Tp)
		}
	}
}

func TestRunErrors(t *testing.T) {
	w := workload.Uniform{N: 100}
	if _, err := Run(Cluster{}, sched.TSSScheme{}, w, Params{}); err == nil {
		t.Error("empty cluster accepted")
	}
	bad := Cluster{Machines: []Machine{{Power: -1}}}
	if _, err := Run(bad, sched.TSSScheme{}, w, Params{}); err == nil {
		t.Error("bad machine accepted")
	}
}

// TestEmptyWorkload: a zero-iteration loop terminates immediately with
// zero computation.
func TestEmptyWorkload(t *testing.T) {
	c := testCluster(1, 1)
	rep := mustRun(t, c, sched.GSSScheme{}, workload.Uniform{N: 0}, testParams())
	if rep.Iterations != 0 || rep.Chunks != 0 {
		t.Errorf("empty loop: %+v", rep)
	}
	for _, tt := range rep.PerWorker {
		if tt.Comp != 0 {
			t.Errorf("computation on empty loop: %+v", tt)
		}
	}
}

// TestFasterLinksLessComm: upgrading the slow links must reduce the
// slow workers' communication time.
func TestFasterLinksLessComm(t *testing.T) {
	w := workload.Uniform{N: 4000}
	slow := testCluster(0, 4)
	fast := testCluster(0, 4)
	for i := range fast.Machines {
		fast.Machines[i].Link = Link{Latency: 0.0002, Bandwidth: Mbit100}
	}
	a := mustRun(t, slow, sched.FSSScheme{}, w, testParams())
	b := mustRun(t, fast, sched.FSSScheme{}, w, testParams())
	if b.MeanComm() >= a.MeanComm() {
		t.Errorf("100 Mbit comm %.4f not below 10 Mbit %.4f", b.MeanComm(), a.MeanComm())
	}
}

// TestWeightedFactoringUsesStaticPowers: WF balances a dedicated
// heterogeneous cluster (it knows the powers) but, unlike DFSS, cannot
// react to run-time load.
func TestWeightedFactoringUsesStaticPowers(t *testing.T) {
	c := testCluster(1, 1)
	w := workload.Uniform{N: 10000}
	rep := mustRun(t, c, sched.WFScheme{}, w, testParams())
	ratio := rep.PerWorker[0].Comp / rep.PerWorker[1].Comp
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("WF dedicated comp ratio %.2f, want ≈1", ratio)
	}

	// Now overload the fast machine: WF keeps feeding it 3× work,
	// DFSS adapts. DFSS must finish sooner.
	c.Machines[0].Load = LoadScript{{Start: 0, End: 1e9, Extra: 2}}
	wf := mustRun(t, c, sched.WFScheme{}, w, testParams())
	dfss := mustRun(t, c, sched.NewDFSS(), w, testParams())
	if dfss.Tp >= wf.Tp {
		t.Errorf("DFSS Tp %.3f not below WF %.3f under load", dfss.Tp, wf.Tp)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestPrefetchHidesCommunication: with per-chunk compute comparable to
// the master round-trip, the pipelined protocol overlaps the two and
// finishes measurably sooner than the serial request–reply cycle.
func TestPrefetchHidesCommunication(t *testing.T) {
	c := testCluster(0, 2)
	w := workload.Uniform{N: 3000}
	p := testParams()
	pre := p
	pre.Prefetch = true
	ser := mustRun(t, c, sched.CSSScheme{K: 300}, w, p)
	pip := mustRun(t, c, sched.CSSScheme{K: 300}, w, pre)
	if pip.Iterations != 3000 || ser.Iterations != 3000 {
		t.Fatalf("iterations: serial %d, pipelined %d", ser.Iterations, pip.Iterations)
	}
	if pip.Tp >= ser.Tp*0.9 {
		t.Errorf("pipelined Tp %.4f not measurably below serial %.4f", pip.Tp, ser.Tp)
	}
	// Pipelined runs expose no Comm; the serial run exposes no Idle.
	if pip.MeanComm() != 0 {
		t.Errorf("pipelined MeanComm = %g, want 0", pip.MeanComm())
	}
	if ser.MeanIdle() != 0 {
		t.Errorf("serial MeanIdle = %g, want 0", ser.MeanIdle())
	}
	if h := metrics.HiddenComm(ser, pip); h <= 0 {
		t.Errorf("HiddenComm = %g, want > 0", h)
	}
}

// TestPrefetchExposesStalls: when the round-trip dwarfs the kernel the
// pipeline cannot hide it all, and the residue must surface as Idle.
func TestPrefetchExposesStalls(t *testing.T) {
	c := testCluster(0, 2)
	p := testParams()
	p.Prefetch = true
	rep := mustRun(t, c, sched.CSSScheme{K: 10}, workload.Uniform{N: 2000}, p)
	if rep.MeanIdle() <= 0 {
		t.Errorf("MeanIdle = %g, want > 0 with round-trip ≫ compute", rep.MeanIdle())
	}
}

// TestPrefetchCoverageAllSchemes: the pipelined protocol conserves
// every iteration and stays deterministic under every scheme,
// including the distributed ones with their gather phase and re-plans.
func TestPrefetchCoverageAllSchemes(t *testing.T) {
	c := testCluster(2, 2)
	c.Machines[1].Load = LoadScript{{Start: 0.01, End: 1e9, Extra: 1}}
	w := workload.LinearIncreasing{N: 2000}
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p := testParams()
		p.Prefetch = true
		rep := mustRun(t, c, s, w, p)
		if rep.Iterations != 2000 {
			t.Errorf("%s: %d iterations", name, rep.Iterations)
		}
		again := mustRun(t, c, s, w, p)
		if !reflect.DeepEqual(rep, again) {
			t.Errorf("%s: pipelined run not deterministic", name)
		}
		for i, tt := range rep.PerWorker {
			if tt.Comm != 0 {
				t.Errorf("%s: worker %d charged Comm %.4f in pipelined mode", name, i, tt.Comm)
			}
			if tt.Idle < 0 || tt.Comp < 0 {
				t.Errorf("%s: worker %d negative component: %+v", name, i, tt)
			}
			if tt.Total() > rep.Tp+1e-9 {
				t.Errorf("%s: worker %d total %.4f exceeds Tp %.4f", name, i, tt.Total(), rep.Tp)
			}
		}
	}
}

// TestPrefetchTraceCoverage: the pipelined trace still tiles the
// iteration space exactly and never overruns Tp.
func TestPrefetchTraceCoverage(t *testing.T) {
	c := testCluster(1, 2)
	tr := &trace.Trace{}
	p := testParams()
	p.Prefetch = true
	p.Trace = tr
	rep := mustRun(t, c, sched.TSSScheme{}, workload.Uniform{N: 2500}, p)
	if err := tr.CoverageError(2500); err != nil {
		t.Error(err)
	}
	if tr.Len() != rep.Chunks {
		t.Errorf("%d traced chunks vs %d reported", tr.Len(), rep.Chunks)
	}
	if _, end := tr.Span(); end > rep.Tp+1e-9 {
		t.Errorf("trace end %.4f after Tp %.4f", end, rep.Tp)
	}
}

// TestPrefetchEmptyWorkload: a zero-iteration pipelined loop stops at
// the first reply.
func TestPrefetchEmptyWorkload(t *testing.T) {
	c := testCluster(1, 1)
	p := testParams()
	p.Prefetch = true
	rep := mustRun(t, c, sched.GSSScheme{}, workload.Uniform{N: 0}, p)
	if rep.Iterations != 0 || rep.Chunks != 0 {
		t.Errorf("empty pipelined loop: %+v", rep)
	}
}

// TestPrefetchRejectsCollectAtEnd: the pipeline piggy-backs results by
// construction; asking it to also hold them until the end is an error.
func TestPrefetchRejectsCollectAtEnd(t *testing.T) {
	c := testCluster(1, 1)
	p := testParams()
	p.Prefetch = true
	p.CollectAtEnd = true
	if _, err := Run(c, sched.TSSScheme{}, workload.Uniform{N: 100}, p); err == nil {
		t.Error("Prefetch+CollectAtEnd accepted")
	}
}

// TestDifferentialAgainstPolicy: with a single worker the simulator's
// request order is deterministic, so the traced chunk sequence must
// equal the policy's raw sequence exactly — tying the DES master to
// the scheme library chunk for chunk.
func TestDifferentialAgainstPolicy(t *testing.T) {
	c := testCluster(1, 0)
	const n = 5000
	for _, name := range []string{"SS", "CSS(16)", "GSS", "TSS", "FSS", "FISS", "TFSS", "DTSS", "DFSS", "DTFSS", "DGSS", "AWF"} {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := &trace.Trace{}
		p := testParams()
		p.Trace = tr
		mustRun(t, c, s, workload.Uniform{N: n}, p)
		var simSeq []int
		for _, e := range tr.Events() {
			simSeq = append(simSeq, e.Size)
		}
		// The simulated single worker reports ACP 30 (power 3, scale
		// 10); replay the policy with the same power so distributed
		// schemes see identical inputs.
		pol, err := s.NewPolicy(sched.Config{Iterations: n, Workers: 1, Powers: []float64{30}})
		if err != nil {
			t.Fatal(err)
		}
		var polSeq []int
		for {
			a, ok := pol.Next(sched.Request{Worker: 0, ACP: 30})
			if !ok {
				break
			}
			polSeq = append(polSeq, a.Size)
		}
		if len(simSeq) != len(polSeq) {
			t.Fatalf("%s: sim %d chunks vs policy %d\nsim %v\npol %v",
				name, len(simSeq), len(polSeq), simSeq, polSeq)
		}
		for i := range simSeq {
			if simSeq[i] != polSeq[i] {
				t.Fatalf("%s: chunk %d differs: sim %d vs policy %d", name, i, simSeq[i], polSeq[i])
			}
		}
	}
}

// TestSharedBus: serialising every transfer on one medium must slow
// the run, and the more workers contend, the worse it gets; coverage
// and determinism are unaffected.
func TestSharedBus(t *testing.T) {
	w := workload.Uniform{N: 4000}
	p := testParams()
	p.BytesPerIter = 256 // enough traffic to make the medium matter
	bus := p
	bus.SharedBus = true

	c := testCluster(2, 6)
	indep := mustRun(t, c, sched.TSSScheme{}, w, p)
	shared := mustRun(t, c, sched.TSSScheme{}, w, bus)
	if shared.Iterations != 4000 {
		t.Fatalf("bus run lost iterations: %d", shared.Iterations)
	}
	if shared.Tp <= indep.Tp {
		t.Errorf("shared bus Tp %.4f not above independent links %.4f", shared.Tp, indep.Tp)
	}
	// Determinism holds in bus mode too.
	again := mustRun(t, c, sched.TSSScheme{}, w, bus)
	if !reflect.DeepEqual(shared, again) {
		t.Error("bus mode not deterministic")
	}
	// Contention grows with the worker count: the bus penalty at p=8
	// exceeds the penalty at p=2.
	c2 := testCluster(1, 1)
	i2 := mustRun(t, c2, sched.TSSScheme{}, w, p)
	s2 := mustRun(t, c2, sched.TSSScheme{}, w, bus)
	penalty2 := s2.Tp - i2.Tp
	penalty8 := shared.Tp - indep.Tp
	if penalty8 <= penalty2 {
		t.Errorf("bus penalty did not grow with p: %.4f (p=2) vs %.4f (p=8)", penalty2, penalty8)
	}
}

// TestFeatureInteractions: shared bus + collect-at-end + trace +
// replan all active at once still cover the loop exactly and stay
// deterministic.
func TestFeatureInteractions(t *testing.T) {
	c := testCluster(2, 3)
	for _, idx := range []int{0, 2, 3} {
		c.Machines[idx].Load = LoadScript{{Start: 0.02, End: 1e9, Extra: 2}}
	}
	run := func() (metrics.Report, *trace.Trace) {
		tr := &trace.Trace{}
		p := testParams()
		p.SharedBus = true
		p.CollectAtEnd = true
		p.Trace = tr
		return mustRun(t, c, sched.DTSSScheme{}, workload.LinearIncreasing{N: 2500}, p), tr
	}
	rep1, tr1 := run()
	rep2, _ := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("interaction run not deterministic")
	}
	if err := tr1.CoverageError(2500); err != nil {
		t.Errorf("trace coverage: %v", err)
	}
	if rep1.Iterations != 2500 {
		t.Errorf("iterations %d", rep1.Iterations)
	}
}

// TestChunkCountMatchesAnalyticTSS: simple TSS's chunk count is a
// pure function of (I, p) — the number of master services in the
// simulator equals the clipped trapezoid length regardless of
// request interleaving.
func TestChunkCountMatchesAnalyticTSS(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{1000, 4096, 50000} {
			c := testCluster((p+1)/2, p/2)
			rep := mustRun(t, c, sched.TSSScheme{}, workload.Uniform{N: n}, testParams())
			seq, err := sched.Sequence(sched.TSSScheme{}, n, p)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Chunks != len(seq) {
				t.Errorf("p=%d I=%d: sim %d chunks vs sequence %d", p, n, rep.Chunks, len(seq))
			}
		}
	}
}

// TestAWFBalancesThroughFeedback: the timing-feedback scheme also
// erases the fast/slow class correlation, like the ACP-driven schemes.
func TestAWFBalancesThroughFeedback(t *testing.T) {
	c := testCluster(2, 4)
	w := workload.Uniform{N: 8000}
	rep := mustRun(t, c, sched.AWFScheme{}, w, testParams())
	fast := (rep.PerWorker[0].Comp + rep.PerWorker[1].Comp) / 2
	slow := (rep.PerWorker[2].Comp + rep.PerWorker[3].Comp +
		rep.PerWorker[4].Comp + rep.PerWorker[5].Comp) / 4
	if ratio := slow / fast; ratio > 1.5 {
		t.Errorf("AWF slow/fast comp ratio %.2f, want ≈1", ratio)
	}
}

// TestTraceCrossChecks: the recorded trace must tile the iteration
// space exactly and agree with the report's chunk count and T_p.
func TestTraceCrossChecks(t *testing.T) {
	c := testCluster(2, 3)
	c.Machines[4].Load = LoadScript{{Start: 0.01, End: 1e9, Extra: 1}}
	for _, name := range []string{"TSS", "FSS", "DTSS", "DTFSS", "DGSS"} {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := &trace.Trace{}
		p := testParams()
		p.Trace = tr
		rep := mustRun(t, c, s, workload.LinearIncreasing{N: 3000}, p)
		if err := tr.CoverageError(3000); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tr.Len() != rep.Chunks {
			t.Errorf("%s: %d traced chunks vs %d reported", name, tr.Len(), rep.Chunks)
		}
		if _, end := tr.Span(); end > rep.Tp+1e-9 {
			t.Errorf("%s: trace end %.4f after Tp %.4f", name, end, rep.Tp)
		}
		if tr.Scheme != name {
			t.Errorf("trace scheme %q", tr.Scheme)
		}
		if u := tr.MeanUtilization(); u <= 0 || u > 1 {
			t.Errorf("%s: utilization %g", name, u)
		}
	}
}
