// Package sim is a deterministic discrete-event simulator of the
// paper's experimental platform: a master–slave heterogeneous
// workstation cluster executing a parallel loop under a
// self-scheduling scheme.
//
// It stands in for the authors' testbed (3 fast + 5 slow Sun
// workstations on a mixed 10/100 Mbit LAN running mpich): machines
// have a virtual power, a private link to the master, and a
// time-varying run queue; the master is a single server that services
// one request at a time. The simulator reproduces the paper's
// measurement vocabulary exactly — per-PE communication, waiting and
// computation times, and the master-measured parallel time T_p.
package sim

import (
	"fmt"
	"math"
)

// Link models one slave's connection to the master.
type Link struct {
	// Latency is the one-way message latency in seconds.
	Latency float64
	// Bandwidth is the link capacity in bytes per second.
	Bandwidth float64
}

// Transfer returns the time to move `bytes` over the link.
func (l Link) Transfer(bytes float64) float64 {
	t := l.Latency
	if l.Bandwidth > 0 && bytes > 0 {
		t += bytes / l.Bandwidth
	}
	return t
}

// Common LAN speeds, in bytes per second.
const (
	Mbit10  = 10e6 / 8
	Mbit100 = 100e6 / 8
)

// LoadPhase is one interval of external load on a machine: Extra
// CPU-bound processes share the CPU during [Start, End).
type LoadPhase struct {
	Start, End float64
	Extra      int
}

// LoadScript is a machine's external-load timeline. Phases may
// overlap; the extras add up.
type LoadScript []LoadPhase

// ExtraAt returns the number of external processes running at time t.
func (ls LoadScript) ExtraAt(t float64) int {
	extra := 0
	for _, ph := range ls {
		if t >= ph.Start && t < ph.End && ph.Extra > 0 {
			extra += ph.Extra
		}
	}
	return extra
}

// NextChange returns the earliest phase boundary strictly after t
// (+Inf when the load is constant from t on).
func (ls LoadScript) NextChange(t float64) float64 {
	next := math.Inf(1)
	for _, ph := range ls {
		if ph.Start > t && ph.Start < next {
			next = ph.Start
		}
		if ph.End > t && ph.End < next {
			next = ph.End
		}
	}
	return next
}

// Machine is one slave PE.
type Machine struct {
	// Name labels the machine in reports (optional).
	Name string
	// Power is the virtual power V_i (1 = slowest machine class).
	Power float64
	// Link connects the machine to the master.
	Link Link
	// Load is the external load timeline (empty = dedicated).
	Load LoadScript
}

// RunQueue returns Q_i at time t: the loop process plus externals.
func (m Machine) RunQueue(t float64) int {
	return 1 + m.Load.ExtraAt(t)
}

// Rate returns the machine's work-unit throughput at time t, assuming
// every process gets an equal CPU share (the paper's §3.1 model).
func (m Machine) Rate(baseRate, t float64) float64 {
	return baseRate * m.Power / float64(m.RunQueue(t))
}

// ComputeTime integrates the machine's rate from t0 until `work`
// units are done and returns the elapsed time.
func (m Machine) ComputeTime(baseRate, t0, work float64) float64 {
	if work <= 0 {
		return 0
	}
	t := t0
	remaining := work
	for {
		rate := m.Rate(baseRate, t)
		if rate <= 0 {
			return math.Inf(1)
		}
		next := m.Load.NextChange(t)
		finish := t + remaining/rate
		if finish <= next {
			return finish - t0
		}
		remaining -= rate * (next - t)
		t = next
	}
}

// Cluster is the set of slave machines (the master is implicit).
type Cluster struct {
	Machines []Machine
	// MasterBandwidth is the master NIC capacity in bytes/s; it
	// serialises inbound result traffic. 0 means 100 Mbit.
	MasterBandwidth float64
}

func (c Cluster) masterBandwidth() float64 {
	if c.MasterBandwidth <= 0 {
		return Mbit100
	}
	return c.MasterBandwidth
}

// Validate checks the cluster description.
func (c Cluster) Validate() error {
	if len(c.Machines) == 0 {
		return fmt.Errorf("sim: empty cluster")
	}
	for i, m := range c.Machines {
		if m.Power <= 0 {
			return fmt.Errorf("sim: machine %d has power %g", i, m.Power)
		}
		for _, ph := range m.Load {
			if ph.End < ph.Start {
				return fmt.Errorf("sim: machine %d has inverted load phase %+v", i, ph)
			}
		}
	}
	return nil
}

// Powers returns the static virtual powers (for weighted schemes).
func (c Cluster) Powers() []float64 {
	out := make([]float64, len(c.Machines))
	for i, m := range c.Machines {
		out[i] = m.Power
	}
	return out
}

// TotalPower sums the virtual powers.
func (c Cluster) TotalPower() float64 {
	var t float64
	for _, m := range c.Machines {
		t += m.Power
	}
	return t
}
