package sim

import (
	"math"
	"strings"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

func testWorkloadForConfig() workload.Workload { return workload.Uniform{N: 1000} }
func testSchemeForConfig() sched.Scheme        { return sched.TSSScheme{} }

const sampleConfig = `{
  "masterBandwidthMbit": 100,
  "machines": [
    {"name": "fast", "power": 3, "linkMbit": 100, "latencyMs": 0.2, "count": 3},
    {"name": "slow", "power": 1, "linkMbit": 10, "latencyMs": 1,
     "load": [{"start": 5, "end": -1, "extra": 2}]}
  ]
}`

func TestReadCluster(t *testing.T) {
	c, err := ReadCluster(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Machines) != 4 { // 3 fast + 1 slow
		t.Fatalf("%d machines", len(c.Machines))
	}
	if c.Machines[0].Power != 3 || c.Machines[0].Name != "fast" {
		t.Errorf("fast machine: %+v", c.Machines[0])
	}
	if got := c.Machines[0].Link.Bandwidth; math.Abs(got-Mbit100) > 1 {
		t.Errorf("fast bandwidth %g", got)
	}
	if got := c.Machines[0].Link.Latency; math.Abs(got-0.0002) > 1e-9 {
		t.Errorf("fast latency %g", got)
	}
	slow := c.Machines[3]
	if slow.RunQueue(4) != 1 || slow.RunQueue(5) != 3 {
		t.Errorf("load phases wrong: Q(4)=%d Q(5)=%d", slow.RunQueue(4), slow.RunQueue(5))
	}
	if slow.RunQueue(1e12) != 3 { // end: -1 = forever
		t.Error("open-ended phase not infinite")
	}
	if math.Abs(c.MasterBandwidth-Mbit100) > 1 {
		t.Errorf("master bandwidth %g", c.MasterBandwidth)
	}
}

func TestReadClusterErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"machines": [{"name": "x", "power": 1, "speed": 4}]}`,
		"zero power":    `{"machines": [{"name": "x", "power": 0}]}`,
		"no machines":   `{"machines": []}`,
	}
	for name, input := range cases {
		if _, err := ReadCluster(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWriteClusterRoundTrip(t *testing.T) {
	orig, err := ReadCluster(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCluster(&sb, orig); err != nil {
		t.Fatal(err)
	}
	again, err := ReadCluster(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, sb.String())
	}
	if len(again.Machines) != len(orig.Machines) {
		t.Fatalf("machine count changed: %d vs %d", len(again.Machines), len(orig.Machines))
	}
	for i := range orig.Machines {
		a, b := orig.Machines[i], again.Machines[i]
		if a.Power != b.Power || a.Name != b.Name ||
			math.Abs(a.Link.Latency-b.Link.Latency) > 1e-12 ||
			math.Abs(a.Link.Bandwidth-b.Link.Bandwidth) > 1 {
			t.Errorf("machine %d changed: %+v vs %+v", i, a, b)
		}
		if len(a.Load) != len(b.Load) {
			t.Errorf("machine %d load phases changed", i)
		}
	}
	// The round-tripped cluster behaves identically.
	w := testWorkloadForConfig()
	r1, err := Run(orig, testSchemeForConfig(), w, Params{BaseRate: 1e5, BytesPerIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(again, testSchemeForConfig(), w, Params{BaseRate: 1e5, BytesPerIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tp != r2.Tp || r1.Chunks != r2.Chunks {
		t.Errorf("round-tripped cluster diverged: %+v vs %+v", r1, r2)
	}
}
