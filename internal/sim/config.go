package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ClusterConfig is the JSON form of a Cluster, so experiments can be
// run against user-defined testbeds without recompiling:
//
//	{
//	  "masterBandwidthMbit": 100,
//	  "machines": [
//	    {"name": "fast", "power": 3, "linkMbit": 100, "latencyMs": 0.2, "count": 3},
//	    {"name": "slow", "power": 1, "linkMbit": 10, "latencyMs": 1,
//	     "load": [{"start": 5, "end": -1, "extra": 2}]}
//	  ]
//	}
//
// "count" stamps out identical machines; a load phase's end of -1
// means forever.
type ClusterConfig struct {
	MasterBandwidthMbit float64         `json:"masterBandwidthMbit"`
	Machines            []MachineConfig `json:"machines"`
}

// MachineConfig describes one machine class.
type MachineConfig struct {
	Name      string            `json:"name"`
	Power     float64           `json:"power"`
	LinkMbit  float64           `json:"linkMbit"`
	LatencyMs float64           `json:"latencyMs"`
	Count     int               `json:"count"`
	Load      []LoadPhaseConfig `json:"load"`
}

// LoadPhaseConfig is one external-load interval; End < 0 = forever.
type LoadPhaseConfig struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Extra int     `json:"extra"`
}

// ReadCluster parses a ClusterConfig and builds the Cluster.
func ReadCluster(r io.Reader) (Cluster, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg ClusterConfig
	if err := dec.Decode(&cfg); err != nil {
		return Cluster{}, fmt.Errorf("sim: cluster config: %w", err)
	}
	return cfg.Build()
}

// Build converts the config into a validated Cluster.
func (cfg ClusterConfig) Build() (Cluster, error) {
	var c Cluster
	if cfg.MasterBandwidthMbit > 0 {
		c.MasterBandwidth = cfg.MasterBandwidthMbit * 1e6 / 8
	}
	for i, mc := range cfg.Machines {
		count := mc.Count
		if count <= 0 {
			count = 1
		}
		link := Link{Latency: mc.LatencyMs / 1e3}
		if mc.LinkMbit > 0 {
			link.Bandwidth = mc.LinkMbit * 1e6 / 8
		}
		var load LoadScript
		for _, ph := range mc.Load {
			end := ph.End
			if end < 0 {
				end = math.Inf(1)
			}
			load = append(load, LoadPhase{Start: ph.Start, End: end, Extra: ph.Extra})
		}
		for j := 0; j < count; j++ {
			c.Machines = append(c.Machines, Machine{
				Name:  mc.Name,
				Power: mc.Power,
				Link:  link,
				Load:  load,
			})
		}
		if mc.Power <= 0 {
			return Cluster{}, fmt.Errorf("sim: machine class %d (%q) has power %g", i, mc.Name, mc.Power)
		}
	}
	if err := c.Validate(); err != nil {
		return Cluster{}, err
	}
	return c, nil
}

// WriteCluster serialises a Cluster back into config form (one class
// per machine; no count compression).
func WriteCluster(w io.Writer, c Cluster) error {
	cfg := ClusterConfig{MasterBandwidthMbit: c.MasterBandwidth * 8 / 1e6}
	for _, m := range c.Machines {
		mc := MachineConfig{
			Name:      m.Name,
			Power:     m.Power,
			LinkMbit:  m.Link.Bandwidth * 8 / 1e6,
			LatencyMs: m.Link.Latency * 1e3,
			Count:     1,
		}
		for _, ph := range m.Load {
			end := ph.End
			if math.IsInf(end, 1) {
				end = -1
			}
			mc.Load = append(mc.Load, LoadPhaseConfig{Start: ph.Start, End: end, Extra: ph.Extra})
		}
		cfg.Machines = append(cfg.Machines, mc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}
