package sim_test

import (
	"fmt"

	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/workload"
)

// Simulate the paper's experiment in miniature: a fast and a slow
// slave under DTSS. The simulator is deterministic, so the assigned
// iteration counts are exactly reproducible.
func ExampleRun() {
	cluster := sim.Cluster{Machines: []sim.Machine{
		{Name: "fast", Power: 3, Link: sim.Link{Latency: 0.0002, Bandwidth: sim.Mbit100}},
		{Name: "slow", Power: 1, Link: sim.Link{Latency: 0.001, Bandwidth: sim.Mbit10}},
	}}
	rep, err := sim.Run(cluster, sched.DTSSScheme{},
		workload.Uniform{N: 1000}, sim.Params{BaseRate: 1e5, BytesPerIter: 8})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s scheduled %d iterations in %d chunks\n",
		rep.Scheme, rep.Iterations, rep.Chunks)
	// Output: DTSS scheduled 1000 iterations in 7 chunks
}
