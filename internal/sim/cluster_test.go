package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkTransfer(t *testing.T) {
	l := Link{Latency: 0.001, Bandwidth: 1e6}
	if got := l.Transfer(0); got != 0.001 {
		t.Errorf("empty transfer = %g", got)
	}
	if got := l.Transfer(1e6); math.Abs(got-1.001) > 1e-12 {
		t.Errorf("1MB transfer = %g, want 1.001", got)
	}
	// Zero bandwidth: latency only (control messages on a modelled-
	// free link).
	free := Link{Latency: 0.002}
	if got := free.Transfer(100); got != 0.002 {
		t.Errorf("zero-bandwidth transfer = %g", got)
	}
}

func TestLoadScript(t *testing.T) {
	ls := LoadScript{
		{Start: 10, End: 20, Extra: 1},
		{Start: 15, End: 30, Extra: 2},
	}
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {10, 1}, {14.9, 1}, {15, 3}, {19.9, 3}, {20, 2}, {29.9, 2}, {30, 0},
	}
	for _, c := range cases {
		if got := ls.ExtraAt(c.t); got != c.want {
			t.Errorf("ExtraAt(%g) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := ls.NextChange(0); got != 10 {
		t.Errorf("NextChange(0) = %g", got)
	}
	if got := ls.NextChange(10); got != 15 {
		t.Errorf("NextChange(10) = %g", got)
	}
	if got := ls.NextChange(20); got != 30 {
		t.Errorf("NextChange(20) = %g", got)
	}
	if got := ls.NextChange(30); !math.IsInf(got, 1) {
		t.Errorf("NextChange(30) = %g, want +Inf", got)
	}
}

func TestMachineRunQueueAndRate(t *testing.T) {
	m := Machine{Power: 2, Load: LoadScript{{Start: 5, End: 10, Extra: 1}}}
	if m.RunQueue(0) != 1 || m.RunQueue(5) != 2 {
		t.Errorf("run queue: %d, %d", m.RunQueue(0), m.RunQueue(5))
	}
	if m.Rate(100, 0) != 200 {
		t.Errorf("unloaded rate = %g", m.Rate(100, 0))
	}
	if m.Rate(100, 5) != 100 {
		t.Errorf("loaded rate = %g (equal-share model)", m.Rate(100, 5))
	}
}

func TestComputeTimeDedicated(t *testing.T) {
	m := Machine{Power: 2}
	// 1000 units at rate 2·100 = 200/s → 5 s.
	if got := m.ComputeTime(100, 3, 1000); math.Abs(got-5) > 1e-12 {
		t.Errorf("ComputeTime = %g, want 5", got)
	}
	if got := m.ComputeTime(100, 0, 0); got != 0 {
		t.Errorf("zero work took %g", got)
	}
}

func TestComputeTimePiecewise(t *testing.T) {
	// Power 1, base rate 100; an extra process during [2, 4) halves
	// throughput. Starting at t=0 with 500 units:
	//   [0,2): 200 units at 100/s
	//   [2,4): 100 units at 50/s
	//   [4,…): 200 units at 100/s → finish at t = 6.
	m := Machine{Power: 1, Load: LoadScript{{Start: 2, End: 4, Extra: 1}}}
	if got := m.ComputeTime(100, 0, 500); math.Abs(got-6) > 1e-9 {
		t.Errorf("piecewise ComputeTime = %g, want 6", got)
	}
	// Entirely inside the loaded window.
	if got := m.ComputeTime(100, 2, 50); math.Abs(got-1) > 1e-9 {
		t.Errorf("loaded-window ComputeTime = %g, want 1", got)
	}
}

// TestComputeTimeConservation (property): the work implied by
// integrating the rate over the returned interval equals the input.
func TestComputeTimeConservation(t *testing.T) {
	m := Machine{Power: 1.5, Load: LoadScript{
		{Start: 1, End: 3, Extra: 2},
		{Start: 2.5, End: 7, Extra: 1},
	}}
	const base = 97
	f := func(w uint16, t0 uint8) bool {
		work := float64(w%5000) + 1
		start := float64(t0) / 16
		d := m.ComputeTime(base, start, work)
		// Re-integrate numerically.
		var got float64
		steps := 200000
		dt := d / float64(steps)
		for i := 0; i < steps; i++ {
			got += m.Rate(base, start+(float64(i)+0.5)*dt) * dt
		}
		return math.Abs(got-work)/work < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestClusterValidate(t *testing.T) {
	if err := (Cluster{}).Validate(); err == nil {
		t.Error("empty cluster accepted")
	}
	bad := Cluster{Machines: []Machine{{Power: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-power machine accepted")
	}
	inverted := Cluster{Machines: []Machine{{Power: 1, Load: LoadScript{{Start: 5, End: 1}}}}}
	if err := inverted.Validate(); err == nil {
		t.Error("inverted load phase accepted")
	}
	good := Cluster{Machines: []Machine{{Power: 3}, {Power: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good cluster rejected: %v", err)
	}
	if good.TotalPower() != 4 {
		t.Errorf("TotalPower = %g", good.TotalPower())
	}
	if p := good.Powers(); p[0] != 3 || p[1] != 1 {
		t.Errorf("Powers = %v", p)
	}
	if good.masterBandwidth() != Mbit100 {
		t.Errorf("default master bandwidth = %g", good.masterBandwidth())
	}
}
