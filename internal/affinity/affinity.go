// Package affinity implements Affinity Scheduling (Markatos &
// LeBlanc, reference [12] of the paper): iterations are statically
// partitioned into per-processor local queues; each processor works
// through its own queue in chunks of 1/k of the queue's remainder, and
// an idle processor steals 1/p of the remaining work of the *most
// loaded* processor. Where Tree Scheduling migrates along fixed
// partner edges, affinity scheduling picks victims globally — here
// through a directory lookup at the coordinator, which is how a
// distributed implementation realises the shared-memory original.
package affinity

import (
	"container/heap"
	"fmt"

	"loopsched/internal/metrics"
	"loopsched/internal/sim"
	"loopsched/internal/workload"
)

// Options tune an affinity-scheduling run.
type Options struct {
	// K is the local chunking denominator (a processor claims
	// ⌈remaining/K⌉ of its own queue per step). 0 means p.
	K int
	// Weighted makes the initial partition proportional to virtual
	// power, the natural heterogeneous variant.
	Weighted bool
	// StealBytes sizes the directory/steal control messages (0 = 64).
	StealBytes float64
}

func (o Options) stealBytes() float64 {
	if o.StealBytes <= 0 {
		return 64
	}
	return o.StealBytes
}

// Name labels the scheme in reports.
func (o Options) Name() string { return "AFS" }

type span struct{ lo, hi int }

func (s span) len() int { return s.hi - s.lo }

const (
	evChunkDone = iota
	evDirReply  // directory told the thief who is most loaded
	evStealGrant
	evRangeArrive
)

type event struct {
	t      float64
	seq    int64
	kind   int
	worker int
	victim int
	sp     span
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type workerState struct {
	times      metrics.Times
	queue      span
	busy       bool
	done       bool
	doneAt     float64
	waitSince  float64
	iterations int
	claims     int // local chunk claims (scheduling steps)
	steals     int
}

type simulator struct {
	cluster sim.Cluster
	params  sim.Params
	opts    Options
	work    workload.Workload
	events  eventQueue
	seq     int64
	workers []workerState
	k       int
	last    float64
}

// Run executes the workload under affinity scheduling on the simulated
// cluster.
func Run(c sim.Cluster, o Options, w workload.Workload, p sim.Params) (metrics.Report, error) {
	if err := c.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if p.BaseRate <= 0 {
		p.BaseRate = 3e6
	}
	if p.ReplyBytes <= 0 {
		p.ReplyBytes = 64
	}
	k := o.K
	if k < 1 {
		k = len(c.Machines)
	}
	s := &simulator{
		cluster: c,
		params:  p,
		opts:    o,
		work:    w,
		workers: make([]workerState, len(c.Machines)),
		k:       k,
	}
	if err := s.run(); err != nil {
		return metrics.Report{}, err
	}
	for i := range s.workers {
		if idle := s.last - s.workers[i].doneAt; idle > 0 && s.workers[i].done {
			s.workers[i].times.Wait += idle
		}
	}
	rep := metrics.Report{
		Scheme:   o.Name(),
		Workload: w.Name(),
		Workers:  len(c.Machines),
		Tp:       s.last,
	}
	for i := range s.workers {
		rep.PerWorker = append(rep.PerWorker, s.workers[i].times)
		rep.Iterations += s.workers[i].iterations
		rep.Chunks += s.workers[i].claims
	}
	if rep.Iterations != w.Len() {
		return rep, fmt.Errorf("affinity: executed %d of %d iterations", rep.Iterations, w.Len())
	}
	return rep, nil
}

func (s *simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *simulator) run() error {
	heap.Init(&s.events)
	p := len(s.cluster.Machines)
	total := s.work.Len()

	shares := make([]int, p)
	if s.opts.Weighted {
		tp := s.cluster.TotalPower()
		given := 0
		for i, m := range s.cluster.Machines {
			shares[i] = int(float64(total)*m.Power/tp + 0.5)
			given += shares[i]
		}
		shares[p-1] += total - given
		if shares[p-1] < 0 {
			for i := range shares {
				if shares[i] >= -shares[p-1] {
					shares[i] += shares[p-1]
					shares[p-1] = 0
					break
				}
			}
		}
	} else {
		for i := range shares {
			shares[i] = total / p
			if i < total%p {
				shares[i]++
			}
		}
	}
	lo := 0
	for i := range s.cluster.Machines {
		sp := span{lo, lo + shares[i]}
		lo = sp.hi
		d := s.cluster.Machines[i].Link.Transfer(s.params.ReplyBytes)
		s.workers[i].times.Comm += d
		s.push(event{t: d, kind: evRangeArrive, worker: i, sp: sp})
	}

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		if e.t > s.last {
			s.last = e.t
		}
		switch e.kind {
		case evRangeArrive:
			s.workers[e.worker].queue = e.sp
			s.startChunk(e.worker, e.t)

		case evChunkDone:
			s.workers[e.worker].busy = false
			s.startChunk(e.worker, e.t)

		case evDirReply:
			st := &s.workers[e.worker]
			st.times.Wait += e.t - st.waitSince
			victim := e.victim
			if victim < 0 { // nothing left anywhere
				st.done = true
				st.doneAt = e.t
				continue
			}
			// Steal round trip to the victim (its link + ours).
			d := s.cluster.Machines[victim].Link.Transfer(s.opts.stealBytes()) +
				s.cluster.Machines[e.worker].Link.Transfer(s.opts.stealBytes())
			st.times.Comm += d
			// The grant is computed at arrival time (evStealGrant) so
			// concurrent thieves see each other's effects.
			s.push(event{t: e.t + d, kind: evStealGrant, worker: e.worker, victim: victim})

		case evStealGrant:
			st := &s.workers[e.worker]
			v := &s.workers[e.victim]
			n := v.queue.len()
			if v.busy {
				// The in-progress chunk is untouchable; steal from the
				// tail beyond it.
				if n > 0 {
					take := (n + s.k - 1) / len(s.workers)
					if take < 1 {
						take = 1
					}
					if take > n {
						take = n
					}
					st.queue = span{v.queue.hi - take, v.queue.hi}
					v.queue.hi -= take
					st.steals++
					s.startChunk(e.worker, e.t)
					continue
				}
			} else if n > 0 {
				take := (n + len(s.workers) - 1) / len(s.workers)
				st.queue = span{v.queue.hi - take, v.queue.hi}
				v.queue.hi -= take
				st.steals++
				s.startChunk(e.worker, e.t)
				continue
			}
			// Victim drained in the meantime: ask the directory again.
			s.lookupDirectory(e.worker, e.t)
		}
	}
	return nil
}

// startChunk claims the next 1/k of the local queue and computes it,
// or consults the directory when the queue is empty.
func (s *simulator) startChunk(w int, t float64) {
	st := &s.workers[w]
	if st.busy || st.done {
		return
	}
	n := st.queue.len()
	if n == 0 {
		s.lookupDirectory(w, t)
		return
	}
	take := (n + s.k - 1) / s.k
	chunk := span{st.queue.lo, st.queue.lo + take}
	st.queue.lo = chunk.hi
	work := workload.RangeCost(s.work, chunk.lo, chunk.hi)
	d := s.cluster.Machines[w].ComputeTime(s.params.BaseRate, t, work)
	st.times.Comp += d
	st.iterations += chunk.len()
	st.claims++
	st.busy = true
	s.push(event{t: t + d, kind: evChunkDone, worker: w})
}

// lookupDirectory asks the coordinator who currently holds the most
// remaining work. The reply names the victim, or −1 when every queue
// is empty (then this worker is finished).
func (s *simulator) lookupDirectory(w int, t float64) {
	st := &s.workers[w]
	d := s.cluster.Machines[w].Link.Transfer(s.opts.stealBytes()) * 2 // query + reply
	if d <= 0 {
		d = 1e-9 // zero-cost links must still advance time (no livelock)
	}
	st.waitSince = t
	victim := -1
	best := 0
	// Directory contents as of the *query*: stale by the round trip,
	// like a real distributed directory.
	for i := range s.workers {
		if i == w {
			continue
		}
		if n := s.workers[i].queue.len(); n > best {
			best = n
			victim = i
		}
	}
	s.push(event{t: t + d, kind: evDirReply, worker: w, victim: victim})
}
