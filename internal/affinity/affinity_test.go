package affinity

import (
	"reflect"
	"testing"

	"loopsched/internal/sim"
	"loopsched/internal/tree"
	"loopsched/internal/workload"
)

func testCluster(nFast, nSlow int) sim.Cluster {
	var ms []sim.Machine
	for i := 0; i < nFast; i++ {
		ms = append(ms, sim.Machine{Power: 3,
			Link: sim.Link{Latency: 0.0002, Bandwidth: sim.Mbit100}})
	}
	for i := 0; i < nSlow; i++ {
		ms = append(ms, sim.Machine{Power: 1,
			Link: sim.Link{Latency: 0.001, Bandwidth: sim.Mbit10}})
	}
	return sim.Cluster{Machines: ms}
}

func testParams() sim.Params {
	return sim.Params{BaseRate: 1e4, BytesPerIter: 16}
}

func TestCoverage(t *testing.T) {
	for _, mix := range [][2]int{{1, 0}, {1, 1}, {2, 2}, {3, 5}} {
		for _, weighted := range []bool{false, true} {
			c := testCluster(mix[0], mix[1])
			rep, err := Run(c, Options{Weighted: weighted}, workload.Uniform{N: 1333}, testParams())
			if err != nil {
				t.Fatalf("mix %v weighted=%v: %v", mix, weighted, err)
			}
			if rep.Iterations != 1333 {
				t.Errorf("mix %v: %d iterations", mix, rep.Iterations)
			}
			if rep.Tp <= 0 || rep.Scheme != "AFS" {
				t.Errorf("report %+v", rep)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	c := testCluster(2, 3)
	w := workload.LinearDecreasing{N: 900}
	a, err := Run(c, Options{}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, Options{}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestStealsBalance: on a 3:1 cluster with an even split, steals move
// work toward the fast machine, far better than the no-migration
// bound of 3.
func TestStealsBalance(t *testing.T) {
	c := testCluster(1, 1)
	rep, err := Run(c, Options{}, workload.Uniform{N: 3000}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.PerWorker[1].Comp / rep.PerWorker[0].Comp
	if ratio > 1.6 {
		t.Errorf("slow/fast comp ratio %.2f, want ≈1", ratio)
	}
	if rep.Chunks < 3 {
		t.Errorf("no stealing happened: %d chunks", rep.Chunks)
	}
}

// TestGlobalVictimBeatsTreePartners: affinity scheduling's global
// most-loaded victim selection should balance at least as well as
// Tree Scheduling's fixed partners on a skewed workload.
func TestGlobalVictimBeatsTreePartners(t *testing.T) {
	c := testCluster(2, 6)
	w := workload.LinearDecreasing{N: 4000} // all the work at the front
	afs, err := Run(c, Options{}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	trs, err := tree.Run(c, tree.Options{}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if afs.Tp > trs.Tp*1.25 {
		t.Errorf("AFS Tp %.3f much worse than TreeS %.3f", afs.Tp, trs.Tp)
	}
}

func TestWeightedInitialSplitReducesSteals(t *testing.T) {
	c := testCluster(1, 1)
	w := workload.Uniform{N: 4000}
	even, err := Run(c, Options{}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Run(c, Options{Weighted: true}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Chunks > even.Chunks {
		t.Errorf("weighted split stole more (%d vs %d)", weighted.Chunks, even.Chunks)
	}
}

func TestErrorsAndEmpty(t *testing.T) {
	if _, err := Run(sim.Cluster{}, Options{}, workload.Uniform{N: 5}, sim.Params{}); err == nil {
		t.Error("empty cluster accepted")
	}
	rep, err := Run(testCluster(1, 1), Options{}, workload.Uniform{N: 0}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 0 {
		t.Errorf("empty loop ran %d iterations", rep.Iterations)
	}
}

// TestZeroCostLinksTerminate guards the livelock fix: with free links
// the directory loop must still advance time and finish.
func TestZeroCostLinksTerminate(t *testing.T) {
	c := sim.Cluster{Machines: []sim.Machine{{Power: 1}, {Power: 1}}}
	rep, err := Run(c, Options{}, workload.Uniform{N: 100}, sim.Params{BaseRate: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 100 {
		t.Errorf("iterations = %d", rep.Iterations)
	}
}

func TestKOption(t *testing.T) {
	c := testCluster(2, 2)
	w := workload.Uniform{N: 2000}
	coarse, err := Run(c, Options{K: 2}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Run(c, Options{K: 16}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Finer local chunking means more scheduling steps.
	if fine.Chunks <= coarse.Chunks {
		t.Errorf("K=16 chunks %d not above K=2 chunks %d", fine.Chunks, coarse.Chunks)
	}
}
