package hier

import (
	"testing"
)

func TestPartitionExact(t *testing.T) {
	cases := []struct {
		n      int
		powers []float64
	}{
		{100, []float64{1, 1, 1, 1}},
		{101, []float64{1, 1, 1}},
		{1000, []float64{5, 2, 1}},
		{7, []float64{10, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{0, []float64{1, 2}},
		{1, []float64{3, 3, 3}},
	}
	for _, c := range cases {
		parts := Partition(c.n, c.powers)
		if len(parts) != len(c.powers) {
			t.Fatalf("Partition(%d, %v): %d parts", c.n, c.powers, len(parts))
		}
		start, total := 0, 0
		for i, p := range parts {
			if p.Start != start {
				t.Errorf("Partition(%d, %v): part %d starts at %d, want %d", c.n, c.powers, i, p.Start, start)
			}
			if p.Size() < 0 {
				t.Errorf("Partition(%d, %v): part %d has negative size", c.n, c.powers, i)
			}
			start = p.End
			total += p.Size()
		}
		if total != c.n {
			t.Errorf("Partition(%d, %v): sizes sum to %d", c.n, c.powers, total)
		}
	}
}

func TestPartitionProportional(t *testing.T) {
	parts := Partition(900, []float64{2, 1})
	if parts[0].Size() != 600 || parts[1].Size() != 300 {
		t.Fatalf("got sizes %d, %d; want 600, 300", parts[0].Size(), parts[1].Size())
	}
}

func TestAssignShardsCoversAllWorkers(t *testing.T) {
	powers := []float64{5, 5, 5, 2, 2, 1, 1, 1}
	for k := 1; k <= len(powers)+2; k++ {
		shards := AssignShards(powers, k)
		want := k
		if want > len(powers) {
			want = len(powers)
		}
		if len(shards) != want {
			t.Fatalf("k=%d: %d shards, want %d", k, len(shards), want)
		}
		seen := make([]bool, len(powers))
		for si, members := range shards {
			if len(members) == 0 {
				t.Errorf("k=%d: shard %d empty", k, si)
			}
			for i := 1; i < len(members); i++ {
				if members[i-1] >= members[i] {
					t.Errorf("k=%d: shard %d members not sorted: %v", k, si, members)
				}
			}
			for _, w := range members {
				if seen[w] {
					t.Errorf("k=%d: worker %d in two shards", k, w)
				}
				seen[w] = true
			}
		}
		for w, ok := range seen {
			if !ok {
				t.Errorf("k=%d: worker %d unassigned", k, w)
			}
		}
	}
}

// drain pulls super-chunks for the given shard order until everyone is
// told to stop, checking exact single coverage of [0, n).
func drain(t *testing.T, root *Root, n, shards int, pick func(step int) int) {
	t.Helper()
	covered := make([]int, n)
	stopped := make([]bool, shards)
	allStopped := func() bool {
		for _, s := range stopped {
			if !s {
				return false
			}
		}
		return true
	}
	for step := 0; !allStopped(); step++ {
		si := pick(step)
		if stopped[si] {
			// Fall back to any live shard so preferences like
			// "always shard 0" still terminate.
			for j := range stopped {
				if !stopped[j] {
					si = j
					break
				}
			}
		}
		g, ok := root.Next(si)
		if !ok {
			stopped[si] = true
			continue
		}
		if g.Start < 0 || g.End > n || g.Size() <= 0 {
			t.Fatalf("bad grant %+v for n=%d", g, n)
		}
		for i := g.Start; i < g.End; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("iteration %d covered %d times", i, c)
		}
	}
	// Monotone-false: once stopped, a shard stays stopped.
	for si := 0; si < shards; si++ {
		if _, ok := root.Next(si); ok {
			t.Fatalf("shard %d got work after the root drained", si)
		}
	}
	if rem := root.Remaining(); rem != 0 {
		t.Fatalf("root still holds %d iterations", rem)
	}
}

func TestRootRoundRobinCoverage(t *testing.T) {
	const n, k = 10000, 4
	root, err := NewRoot(n, []float64{3, 2, 1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, root, n, k, func(step int) int { return step % k })
}

func TestRootStealsFromSlowShard(t *testing.T) {
	const n = 8000
	root, err := NewRoot(n, []float64{1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 fetches greedily; shard 1 never fetches, so every one of
	// shard 0's fetches after its own region drains must be a steal
	// from shard 1's untouched tail.
	drain(t, root, n, 2, func(step int) int { return 0 })
	if root.Steals() == 0 {
		t.Fatal("expected steals when one shard does all the work")
	}
	fetches, steals := root.ShardCounts(0)
	if steals == 0 || steals >= fetches {
		t.Fatalf("shard 0: %d fetches, %d steals; want 0 < steals < fetches", fetches, steals)
	}
	if _, s1 := root.ShardCounts(1); s1 != 0 {
		t.Fatalf("idle shard recorded %d steals", s1)
	}
}

func TestRootStealThresholdStops(t *testing.T) {
	// With a threshold larger than the whole loop, a drained shard must
	// stop rather than steal.
	root, err := NewRoot(100, []float64{1, 1}, Config{StealThreshold: 1000, MinGrant: 1})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := root.Next(0); !ok {
			break
		}
	}
	if root.Steals() != 0 {
		t.Fatalf("stole %d super-chunks despite the threshold", root.Steals())
	}
	if root.Remaining() != 50 {
		t.Fatalf("root should still hold shard 1's region, has %d", root.Remaining())
	}
}

func TestRootGrantsShrink(t *testing.T) {
	root, err := NewRoot(1<<16, []float64{1}, Config{MinGrant: 1, StealThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 17
	for {
		g, ok := root.Next(0)
		if !ok {
			break
		}
		if g.Size() > prev {
			t.Fatalf("grant grew: %d after %d", g.Size(), prev)
		}
		prev = g.Size()
	}
}

func TestMinGrantFloorsSuperChunks(t *testing.T) {
	const min = 64
	root, err := NewRoot(4096, []float64{1, 1}, Config{MinGrant: min, StealThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	for {
		g, ok := root.Next(0)
		if !ok {
			break
		}
		if g.Size() < min && root.Remaining() > 0 {
			t.Fatalf("grant %d below MinGrant %d with work left", g.Size(), min)
		}
	}
}
