package hier

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/sched"
)

// startHierarchy wires a complete two-level RPC runtime on loopback:
// a root exec.Master running RootScheme over K submasters, each
// serving its share of stock exec.Workers. Returns the root, the
// captured allocator, the submasters and their member counts.
func startHierarchy(t *testing.T, scheme sched.Scheme, n int, members [][]int, pipeline bool) (*exec.Master, **Root, []*Submaster, chan error) {
	t.Helper()
	workerErrs := make(chan error, 16)
	k := len(members)
	// The allocator is built lazily, at root-gather completion; hand the
	// caller a slot it can read after Wait (which orders the write).
	captured := new(*Root)
	rootScheme := RootScheme{OnRoot: func(r *Root) { *captured = r }}
	root, err := exec.NewMaster(rootScheme, n, k)
	if err != nil {
		t.Fatal(err)
	}
	root.DisableReplan()
	rootL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootL.Close() })
	if err := root.Serve(rootL); err != nil {
		t.Fatal(err)
	}

	subs := make([]*Submaster, k)
	for si := range members {
		sub, err := NewSubmaster(si, scheme, len(members[si]), rootL.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sub.Close() })
		subL, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { subL.Close() })
		if err := sub.Serve(subL); err != nil {
			t.Fatal(err)
		}
		subs[si] = sub
		for li, scale := range members[si] {
			w := exec.Worker{
				ID:           li,
				WorkScale:    scale,
				VirtualPower: float64(4 / scale),
				Pipeline:     pipeline,
				Kernel: func(i int) []byte {
					buf := make([]byte, 8)
					binary.LittleEndian.PutUint64(buf, uint64(i*i))
					return buf
				},
			}
			go func(w exec.Worker, addr string) {
				if err := w.Run(addr); err != nil {
					select {
					case workerErrs <- fmt.Errorf("worker %d: %w", w.ID, err):
					default:
					}
				}
			}(w, subL.Addr().String())
		}
	}
	return root, captured, subs, workerErrs
}

func checkResults(t *testing.T, results [][]byte, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if len(results[i]) != 8 {
			t.Fatalf("iteration %d: missing result", i)
		}
		if got := binary.LittleEndian.Uint64(results[i]); got != uint64(i*i) {
			t.Fatalf("iteration %d: got %d", i, got)
		}
	}
}

func TestRPCHierarchyEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		scheme   string
		pipeline bool
	}{
		{"TSS", false},
		{"DTSS", false},
		{"FSS", true},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/pipeline=%v", tc.scheme, tc.pipeline), func(t *testing.T) {
			const n = 2000
			scheme, err := sched.Lookup(tc.scheme)
			if err != nil {
				t.Fatal(err)
			}
			// Worker entries are WorkScales; two shards of three.
			members := [][]int{{1, 2, 4}, {1, 2, 4}}
			root, captured, subs, workerErrs := startHierarchy(t, scheme, n, members, tc.pipeline)

			results, rep, err := root.Wait()
			if err != nil {
				t.Fatal(err)
			}
			checkResults(t, results, n)
			if *captured == nil {
				t.Fatal("OnRoot never ran")
			}
			if rem := (*captured).Remaining(); rem != 0 {
				t.Fatalf("root still holds %d iterations", rem)
			}
			if rep.Iterations != n {
				t.Fatalf("report iterations %d", rep.Iterations)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			var localIters int
			for _, sub := range subs {
				if err := sub.Wait(ctx); err != nil {
					t.Fatal(err)
				}
				it, chunks, fetches, _, fin := sub.Counts()
				localIters += it
				if chunks == 0 || fetches == 0 || fin.IsZero() {
					t.Fatalf("submaster tallies incomplete: %d chunks, %d fetches", chunks, fetches)
				}
			}
			if localIters != n {
				t.Fatalf("submaster iterations sum to %d", localIters)
			}
			select {
			case err := <-workerErrs:
				t.Fatal(err)
			default:
			}
		})
	}
}

func TestRPCHierarchyCancel(t *testing.T) {
	const n = 1 << 20
	scheme, _ := sched.Lookup("TSS")
	members := [][]int{{1, 1}, {1, 1}}
	root, _, subs, _ := startHierarchy(t, scheme, n, members, false)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, _, err := root.WaitContext(ctx)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Cancellation must release the submasters' parked fetches so every
	// local worker is sent home — no goroutine left behind.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer waitCancel()
	for _, sub := range subs {
		if err := sub.Wait(waitCtx); err != nil {
			t.Fatalf("submaster did not drain after cancel: %v", err)
		}
	}
}
