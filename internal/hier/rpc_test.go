package hier

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

// startHierarchy wires a complete two-level RPC runtime on loopback:
// a root exec.Master running RootScheme over K submasters, each
// serving its share of stock exec.Workers. Returns the root, the
// captured allocator, the submasters and their member counts. When
// bus is non-nil the submasters, workers and root allocator publish
// telemetry to it (the root master itself stays silent: its grants
// are super-chunks and would double-count).
func startHierarchy(t *testing.T, scheme sched.Scheme, n int, members [][]int, pipeline bool, bus *telemetry.Bus) (*exec.Master, **Root, []*Submaster, chan error) {
	t.Helper()
	workerErrs := make(chan error, 16)
	k := len(members)
	// Run-global worker ids: shard-local index li in shard si maps to
	// globalID[si][li], mirroring run.go's numbering.
	globalID := make([][]int, k)
	next := 0
	for si := range members {
		globalID[si] = make([]int, len(members[si]))
		for li := range members[si] {
			globalID[si][li] = next
			next++
		}
	}
	// The allocator is built lazily, at root-gather completion; hand the
	// caller a slot it can read after Wait (which orders the write).
	captured := new(*Root)
	rootScheme := RootScheme{OnRoot: func(r *Root) {
		*captured = r
		r.SetTelemetry(bus)
	}}
	root, err := exec.NewMaster(rootScheme, n, k)
	if err != nil {
		t.Fatal(err)
	}
	root.DisableReplan()
	rootL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootL.Close() })
	if err := root.Serve(rootL); err != nil {
		t.Fatal(err)
	}

	subs := make([]*Submaster, k)
	for si := range members {
		sub, err := NewSubmaster(si, scheme, len(members[si]), rootL.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if bus != nil {
			sub.SetTelemetry(bus, globalID[si])
		}
		t.Cleanup(func() { sub.Close() })
		subL, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { subL.Close() })
		if err := sub.Serve(subL); err != nil {
			t.Fatal(err)
		}
		subs[si] = sub
		for li, scale := range members[si] {
			w := exec.Worker{
				ID:             li,
				WorkScale:      scale,
				VirtualPower:   float64(4 / scale),
				Pipeline:       pipeline,
				Telemetry:      bus,
				TelemetryID:    globalID[si][li],
				TelemetryShard: si,
				Kernel: func(i int) []byte {
					buf := make([]byte, 8)
					binary.LittleEndian.PutUint64(buf, uint64(i*i))
					return buf
				},
			}
			go func(w exec.Worker, addr string) {
				if err := w.Run(addr); err != nil {
					select {
					case workerErrs <- fmt.Errorf("worker %d: %w", w.ID, err):
					default:
					}
				}
			}(w, subL.Addr().String())
		}
	}
	return root, captured, subs, workerErrs
}

func checkResults(t *testing.T, results [][]byte, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if len(results[i]) != 8 {
			t.Fatalf("iteration %d: missing result", i)
		}
		if got := binary.LittleEndian.Uint64(results[i]); got != uint64(i*i) {
			t.Fatalf("iteration %d: got %d", i, got)
		}
	}
}

func TestRPCHierarchyEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		scheme   string
		pipeline bool
	}{
		{"TSS", false},
		{"DTSS", false},
		{"FSS", true},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/pipeline=%v", tc.scheme, tc.pipeline), func(t *testing.T) {
			const n = 2000
			scheme, err := sched.Lookup(tc.scheme)
			if err != nil {
				t.Fatal(err)
			}
			// Worker entries are WorkScales; two shards of three.
			members := [][]int{{1, 2, 4}, {1, 2, 4}}
			root, captured, subs, workerErrs := startHierarchy(t, scheme, n, members, tc.pipeline, nil)

			results, rep, err := root.Wait()
			if err != nil {
				t.Fatal(err)
			}
			checkResults(t, results, n)
			if *captured == nil {
				t.Fatal("OnRoot never ran")
			}
			if rem := (*captured).Remaining(); rem != 0 {
				t.Fatalf("root still holds %d iterations", rem)
			}
			if rep.Iterations != n {
				t.Fatalf("report iterations %d", rep.Iterations)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			var localIters int
			for _, sub := range subs {
				if err := sub.Wait(ctx); err != nil {
					t.Fatal(err)
				}
				it, chunks, fetches, _, fin := sub.Counts()
				localIters += it
				if chunks == 0 || fetches == 0 || fin.IsZero() {
					t.Fatalf("submaster tallies incomplete: %d chunks, %d fetches", chunks, fetches)
				}
			}
			if localIters != n {
				t.Fatalf("submaster iterations sum to %d", localIters)
			}
			select {
			case err := <-workerErrs:
				t.Fatal(err)
			default:
			}
		})
	}
}

func TestRPCHierarchyCancel(t *testing.T) {
	const n = 1 << 20
	scheme, _ := sched.Lookup("TSS")
	members := [][]int{{1, 1}, {1, 1}}
	root, _, subs, _ := startHierarchy(t, scheme, n, members, false, nil)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, _, err := root.WaitContext(ctx)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Cancellation must release the submasters' parked fetches so every
	// local worker is sent home — no goroutine left behind.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer waitCancel()
	for _, sub := range subs {
		if err := sub.Wait(waitCtx); err != nil {
			t.Fatalf("submaster did not drain after cancel: %v", err)
		}
	}
}

// TestRPCHierarchyTelemetry runs the full two-level RPC stack with a
// telemetry session attached — debug HTTP server included — and checks
// the worker-level counters reconcile: chunks granted at the
// submasters equal the submasters' own chunk tallies, and granted
// iterations tile the loop. The package's leak-checked TestMain covers
// the teardown: closing the session after Submaster.Close must leave
// no drainer or HTTP goroutine behind.
func TestRPCHierarchyTelemetry(t *testing.T) {
	tele, err := telemetry.New(telemetry.Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	const n = 3000
	scheme, err := sched.Lookup("DTSS")
	if err != nil {
		t.Fatal(err)
	}
	members := [][]int{{1, 2}, {1, 4}}
	root, _, subs, workerErrs := startHierarchy(t, scheme, n, members, true, tele.Bus())

	results, rep, err := root.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, results, n)
	if rep.Iterations != n {
		t.Fatalf("report iterations %d", rep.Iterations)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var subChunks int
	for _, sub := range subs {
		if err := sub.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		_, chunks, _, _, _ := sub.Counts()
		subChunks += chunks
	}
	select {
	case err := <-workerErrs:
		t.Fatal(err)
	default:
	}

	tele.Bus().Flush()
	snap := tele.Aggregator().Snapshot()
	if int(snap.ChunksGranted) != subChunks {
		t.Errorf("snapshot chunks granted %d, submasters granted %d", snap.ChunksGranted, subChunks)
	}
	if int(snap.Iterations) != n {
		t.Errorf("snapshot iterations %d, want %d", snap.Iterations, n)
	}
	if snap.Dropped != 0 {
		t.Errorf("%d events dropped", snap.Dropped)
	}
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}
}
