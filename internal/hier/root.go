package hier

import (
	"fmt"
	"math"
	"sync"

	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

// Root is the top-level allocator of the hierarchy. It owns the loop's
// iteration space, partitioned into one contiguous region per shard in
// proportion to the shard powers, and serves super-chunk fetches:
//
//   - a shard with unclaimed iterations left in its own region gets
//     the next GrantFraction of that remainder (floored at MinGrant);
//   - a drained shard steals from the victim holding the most
//     unclaimed iterations, taking StealFraction of that tail —
//     provided the victim holds at least StealThreshold, otherwise the
//     drained shard is told to stop.
//
// Because grants are fractions, the tail of every region stays at the
// root until late in the run, which is what makes stealing possible
// without ever revoking work a submaster already holds. Root is safe
// for concurrent use.
type Root struct {
	mu      sync.Mutex
	cfg     Config
	bus     *telemetry.Bus // nil unless SetTelemetry was called
	clock   func() float64 // event timestamps; nil means bus.Now
	regions []region
	fetches []int
	steals  []int
	total   int
}

// SetTelemetry attaches an event bus: the root publishes
// ShardStealStarted/ShardStealDone events for every steal attempt,
// stamped with the bus's wall-monotonic clock. A nil bus disables
// publishing.
func (r *Root) SetTelemetry(bus *telemetry.Bus) {
	r.SetTelemetryClock(bus, nil)
}

// SetTelemetryClock is SetTelemetry with an explicit clock, for
// callers whose events live on a different timeline (the discrete-
// event simulator stamps virtual seconds).
func (r *Root) SetTelemetryClock(bus *telemetry.Bus, now func() float64) {
	r.mu.Lock()
	r.bus = bus
	r.clock = now
	r.mu.Unlock()
}

// now returns the telemetry timestamp for an event; callers hold mu.
func (r *Root) now() float64 {
	if r.clock != nil {
		return r.clock()
	}
	return r.bus.Now()
}

type region struct {
	lo, next, hi int // [lo,hi) owned; [next,hi) unclaimed
}

// NewRoot partitions [0, n) among len(powers) shards and returns the
// allocator. cfg is resolved with the documented defaults; cfg.Shards
// is ignored in favour of len(powers).
func NewRoot(n int, powers []float64, cfg Config) (*Root, error) {
	if len(powers) == 0 {
		return nil, fmt.Errorf("hier: no shards")
	}
	if n < 0 {
		return nil, fmt.Errorf("hier: negative iteration count %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Shards = len(powers)
	cfg = cfg.withDefaults(n, len(powers))
	cfg.Shards = len(powers)
	parts := Partition(n, powers)
	regions := make([]region, len(parts))
	for i, p := range parts {
		regions[i] = region{lo: p.Start, next: p.Start, hi: p.End}
	}
	return &Root{
		cfg:     cfg,
		regions: regions,
		fetches: make([]int, len(powers)),
		steals:  make([]int, len(powers)),
	}, nil
}

// Next returns the next super-chunk for the shard, or false when
// neither its own region nor any steal-eligible victim has work left.
// Once Next returns false for a shard it returns false forever after
// (regions only shrink), so a submaster may stop its workers.
func (r *Root) Next(shard int) (Range, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= len(r.regions) {
		return Range{}, false
	}
	reg := &r.regions[shard]
	if rem := reg.hi - reg.next; rem > 0 {
		size := r.grantSize(rem, r.cfg.GrantFraction)
		g := Range{Start: reg.next, End: reg.next + size}
		reg.next += size
		r.fetches[shard]++
		return g, true
	}
	// Steal from the shard with the largest unclaimed tail.
	r.bus.Publish(telemetry.Event{
		Kind: telemetry.ShardStealStarted, Worker: shard, Shard: shard,
		At: r.now(),
	})
	victim, rem := -1, 0
	for j := range r.regions {
		if j == shard {
			continue
		}
		if u := r.regions[j].hi - r.regions[j].next; u > rem {
			victim, rem = j, u
		}
	}
	if victim < 0 || rem < r.cfg.StealThreshold {
		return Range{}, false
	}
	size := r.grantSize(rem, r.cfg.StealFraction)
	v := &r.regions[victim]
	v.hi -= size
	r.fetches[shard]++
	r.steals[shard]++
	r.total++
	r.bus.Publish(telemetry.Event{
		Kind: telemetry.ShardStealDone, Worker: shard, Shard: victim,
		Start: v.hi, Size: size, At: r.now(),
	})
	return Range{Start: v.hi, End: v.hi + size}, true
}

// grantSize applies the fraction with the MinGrant floor, clipped to
// the remainder. Callers hold mu.
func (r *Root) grantSize(rem int, frac float64) int {
	size := int(math.Ceil(float64(rem) * frac))
	if size < r.cfg.MinGrant {
		size = r.cfg.MinGrant
	}
	if size > rem {
		size = rem
	}
	return size
}

// Remaining returns the number of iterations the root still holds.
func (r *Root) Remaining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, reg := range r.regions {
		n += reg.hi - reg.next
	}
	return n
}

// Steals returns the total number of stolen super-chunks so far.
func (r *Root) Steals() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ShardCounts returns how many super-chunks the shard fetched and how
// many of those were steals.
func (r *Root) ShardCounts(shard int) (fetches, steals int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= len(r.fetches) {
		return 0, 0
	}
	return r.fetches[shard], r.steals[shard]
}

// Region returns the shard's current partition bounds [lo, hi) and the
// first unclaimed iteration. Steals shrink hi.
func (r *Root) Region(shard int) (lo, next, hi int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg := r.regions[shard]
	return reg.lo, reg.next, reg.hi
}

// RootScheme adapts the hierarchical root allocator to the sched
// interfaces, so a stock master (e.g. the net/rpc Master) can serve as
// the hierarchy's root: each "worker" of that master is a submaster,
// and every Policy.Next call returns one super-chunk. The scheme is
// distributed — the master gathers every submaster's aggregate ACP
// before partitioning — but it must be run with re-planning disabled:
// steals grant ranges out of order, which a mid-run re-plan (built on
// the flat masters' monotone `base` bookkeeping) would corrupt.
type RootScheme struct {
	Config Config
	// OnRoot, when non-nil, receives the allocator built by NewPolicy,
	// so the caller can read steal counts after the run.
	OnRoot func(*Root)
}

// Name implements sched.Scheme.
func (RootScheme) Name() string { return "HierRoot" }

// Distributed marks the scheme as power-driven: masters gather every
// shard's aggregate ACP before the partition is planned.
func (RootScheme) Distributed() bool { return true }

// NewPolicy implements sched.Scheme. cfg.Workers is the shard count;
// cfg.Powers (aggregate shard ACPs) drives the partition.
func (s RootScheme) NewPolicy(cfg sched.Config) (sched.Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	powers := cfg.Powers
	if powers == nil {
		powers = make([]float64, cfg.Workers)
		for i := range powers {
			powers[i] = 1
		}
	}
	root, err := NewRoot(cfg.Iterations, powers, s.Config)
	if err != nil {
		return nil, err
	}
	if s.OnRoot != nil {
		s.OnRoot(root)
	}
	return &rootPolicy{root: root}, nil
}

// rootPolicy exposes Root through sched.Policy. Request.Worker is the
// shard index.
type rootPolicy struct{ root *Root }

func (p *rootPolicy) Next(req sched.Request) (sched.Assignment, bool) {
	g, ok := p.root.Next(req.Worker)
	if !ok {
		return sched.Assignment{}, false
	}
	return sched.Assignment{Start: g.Start, Size: g.Size()}, true
}

func (p *rootPolicy) Remaining() int { return p.root.Remaining() }

// Stats assembles a shard's report entry, folding in the root's fetch
// and steal tallies for that shard. Drivers outside this package (the
// public Run executor) use it to build Report.Shards.
func (r *Root) Stats(shard, workers, iters, chunks int, comp, finished float64) metrics.ShardStats {
	fetches, steals := r.ShardCounts(shard)
	return metrics.ShardStats{
		Shard:      shard,
		Workers:    workers,
		Iterations: iters,
		Chunks:     chunks,
		Fetches:    fetches,
		Steals:     steals,
		Comp:       comp,
		Finished:   finished,
	}
}

// shardStats assembles the common per-shard report entry.
func shardStats(shard int, members []int, iters, chunks int, comp, finished float64, root *Root) metrics.ShardStats {
	return root.Stats(shard, len(members), iters, chunks, comp, finished)
}
