package hier

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// The hierarchical simulator mirrors internal/sim's protocol model one
// level up: workers speak the paper's serial request–reply protocol to
// their shard's submaster (each submaster is an independent single
// server, so master contention divides by K), and every submaster is a
// double-buffered client of the root — it fetches the next super-chunk
// over the RootLink hop while its workers chew the current one, piggy-
// backing the shard's accumulated results on each fetch. Waiting that
// a fetch fails to hide surfaces in the workers' T_wait, exactly where
// the flat simulator charges master queueing.

// event kinds.
const (
	hevWReq     = iota // worker request arrived at its submaster
	hevWService        // submaster finished servicing one request
	hevWReply          // submaster reply reached the worker
	hevWCompute        // worker finished its chunk
	hevRReq            // submaster fetch arrived at the root
	hevRService        // root finished servicing one fetch
	hevRReply          // root grant (or stop) reached the submaster
)

type hevent struct {
	t      float64
	seq    int64
	kind   int
	worker int // worker id (hevW*) or shard id (hevR*)
	assign sched.Assignment
	grant  Range
	stop   bool
	bytes  float64 // inbound payload carried by a request/fetch
}

type heventQueue []hevent

func (q heventQueue) Len() int { return len(q) }
func (q heventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q heventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *heventQueue) Push(x any)   { *q = append(*q, x.(hevent)) }
func (q *heventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type hpending struct {
	worker  int
	arrival float64
	acp     int
	bytes   float64
}

type hworker struct {
	times      metrics.Times
	lastChunk  int
	reqSent    float64
	done       bool
	finishedAt float64
	iterations int
	local      int // index within the shard
}

type hsub struct {
	members      []int
	policy       sched.Policy
	gathered     bool // distributed: all members reported an ACP
	initSeen     int
	buffered     []Range
	fetching     bool
	rootDone     bool
	busy         bool
	queue        []hpending
	pendingBytes float64
	iterations   int
	chunks       int
	comp         float64
	finished     float64
}

type hsim struct {
	cluster  sim.Cluster
	params   sim.Params
	cfg      Config
	scheme   sched.Scheme
	work     workload.Workload
	dist     bool
	root     *Root
	shardOf  []int
	subs     []hsub
	workers  []hworker
	liveACP  []int
	joined   []bool
	shardTr  []*trace.Trace // per-shard traces, merged into params.Trace
	mbw      float64        // submaster/root NIC bandwidth, bytes/s
	events   heventQueue
	rootBusy bool
	rootQ    []hpending // worker field holds the shard id
	now      float64
	seq      int64
	lastTime float64
	steps    int64
}

// Simulate runs the workload on the cluster under the two-level
// runtime: cfg.Shards submasters each drive their share of the
// machines with the scheme, fetching super-chunks from the root
// allocator over the RootLink hop. Deterministic, like sim.Run.
//
// Params.Prefetch, CollectAtEnd and SharedBus are flat-runtime knobs
// and are rejected here: the submaster↔root pipeline is always on
// (that is the point of the hierarchy), and workers always piggy-back.
func Simulate(ctx context.Context, c sim.Cluster, scheme sched.Scheme, w workload.Workload, p sim.Params, cfg Config) (metrics.Report, error) {
	if err := c.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if p.Prefetch || p.CollectAtEnd || p.SharedBus {
		return metrics.Report{}, fmt.Errorf("hier: Prefetch/CollectAtEnd/SharedBus are flat-simulator knobs")
	}
	if err := cfg.Validate(); err != nil {
		return metrics.Report{}, err
	}
	p = p.WithDefaults()
	n := len(c.Machines)
	cfg = cfg.withDefaults(w.Len(), n)
	if p.Trace != nil {
		p.Trace.Scheme = scheme.Name()
		p.Trace.Workload = w.Name()
		p.Trace.Workers = n
	}

	s := &hsim{
		cluster: c,
		params:  p,
		cfg:     cfg,
		scheme:  scheme,
		work:    w,
		dist:    sched.Distributed(scheme),
		shardOf: make([]int, n),
		workers: make([]hworker, n),
		liveACP: make([]int, n),
		joined:  make([]bool, n),
		mbw:     c.MasterBandwidth,
	}
	if s.mbw <= 0 {
		s.mbw = sim.Mbit100
	}

	// Shard the machines balancing static power, then size each
	// shard's partition by its aggregate ACP at t = 0 (the §3.1 model
	// lifted one level up; for simple schemes the virtual power is the
	// only signal, as in the flat planner).
	shards := AssignShards(c.Powers(), cfg.Shards)
	s.subs = make([]hsub, len(shards))
	shardPowers := make([]float64, len(shards))
	for si, members := range shards {
		s.subs[si].members = members
		for li, wi := range members {
			s.shardOf[wi] = si
			s.workers[wi].local = li
			if s.dist {
				shardPowers[si] += float64(maxInt(1, s.acpAt(wi, 0)))
			} else {
				shardPowers[si] += c.Machines[wi].Power
			}
		}
	}
	root, err := NewRoot(w.Len(), shardPowers, cfg)
	if err != nil {
		return metrics.Report{}, err
	}
	s.root = root
	// Steal events carry virtual timestamps, like everything else here.
	root.SetTelemetryClock(p.Telemetry, func() float64 { return s.now })

	// Each shard records its own trace; they are merged into the
	// caller's at the end, mirroring how the RPC hierarchy combines
	// shard traces shipped back by the submasters.
	if p.Trace != nil {
		s.shardTr = make([]*trace.Trace, len(shards))
		for si := range shards {
			s.shardTr[si] = &trace.Trace{Scheme: scheme.Name(), Workload: w.Name(), Workers: n}
		}
	}

	if err := s.run(ctx); err != nil {
		return metrics.Report{}, err
	}
	for _, tr := range s.shardTr {
		p.Trace.Merge(tr)
	}

	// Terminal idle: early-stopped workers sit in the barrier until the
	// whole loop finishes (the paper's T_wait signal).
	for i := range s.workers {
		if idle := s.lastTime - s.workers[i].finishedAt; idle > 0 && s.workers[i].done {
			s.workers[i].times.Wait += idle
		}
	}
	report := metrics.Report{
		Scheme:   scheme.Name(),
		Workload: w.Name(),
		Workers:  n,
		Tp:       s.lastTime,
		Steals:   root.Steals(),
	}
	for si := range s.subs {
		sub := &s.subs[si]
		report.Chunks += sub.chunks
		report.Shards = append(report.Shards,
			shardStats(si, sub.members, sub.iterations, sub.chunks, sub.comp, sub.finished, root))
	}
	for i := range s.workers {
		report.PerWorker = append(report.PerWorker, s.workers[i].times)
		report.Iterations += s.workers[i].iterations
	}
	if report.Iterations != w.Len() {
		return report, fmt.Errorf("hier: executed %d of %d iterations", report.Iterations, w.Len())
	}
	return report, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *hsim) push(e hevent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *hsim) acpAt(w int, t float64) int {
	m := s.cluster.Machines[w]
	return s.params.ACP.ACP(m.Power, m.RunQueue(t))
}

// sendRequest models worker w transmitting a request (plus previous
// results) to its submaster.
func (s *hsim) sendRequest(w int, t float64) {
	m := s.cluster.Machines[w]
	st := &s.workers[w]
	bytes := s.params.RequestBytes
	var inbound float64
	if st.lastChunk > 0 {
		inbound = float64(st.lastChunk) * s.params.BytesPerIter
		bytes += inbound
	}
	d := m.Link.Transfer(bytes)
	st.times.Comm += d
	st.reqSent = t
	st.lastChunk = 0
	s.push(hevent{t: t + d, kind: hevWReq, worker: w, bytes: inbound})
}

// launchFetch starts a super-chunk fetch for the shard, carrying the
// results accumulated since the previous fetch.
func (s *hsim) launchFetch(si int, t float64) {
	sub := &s.subs[si]
	if sub.fetching || sub.rootDone {
		return
	}
	sub.fetching = true
	bytes := s.params.RequestBytes + sub.pendingBytes
	inbound := sub.pendingBytes
	sub.pendingBytes = 0
	d := s.cfg.RootLink.Transfer(bytes)
	s.push(hevent{t: t + d, kind: hevRReq, worker: si, bytes: inbound})
}

// planRange points the shard's policy at a fresh super-chunk. The
// local plan recomputes worker powers from the latest reports, which
// is where the distributed schemes' load adaptivity lives at this
// level (re-plan cadence = one super-chunk).
func (s *hsim) planRange(si int, g Range) error {
	sub := &s.subs[si]
	cfg := sched.Config{Iterations: g.Size(), Workers: len(sub.members)}
	switch s.scheme.(type) {
	case sched.WFScheme, sched.WeightedStaticScheme:
		powers := make([]float64, len(sub.members))
		for li, wi := range sub.members {
			powers[li] = s.cluster.Machines[wi].Power
		}
		cfg.Powers = powers
	default:
		if s.dist {
			powers := make([]float64, len(sub.members))
			for li, wi := range sub.members {
				powers[li] = float64(maxInt(1, s.liveACP[wi]))
			}
			cfg.Powers = powers
		}
	}
	pol, err := s.scheme.NewPolicy(cfg)
	if err != nil {
		return err
	}
	sub.policy = sched.Offset(pol, g.Start)
	// Each super-chunk is a fresh scheduling stage for the shard.
	s.params.Telemetry.Publish(telemetry.Event{
		Kind: telemetry.StageAdvanced, Shard: si,
		Start: g.Start, Size: g.Size(), At: s.now,
	})
	return nil
}

func (s *hsim) run(ctx context.Context) error {
	heap.Init(&s.events)
	for si := range s.subs {
		s.launchFetch(si, 0)
	}
	for w := range s.cluster.Machines {
		s.sendRequest(w, 0)
	}
	if err := ctx.Err(); err != nil { // pre-cancelled: simulate nothing
		return err
	}
	for s.events.Len() > 0 {
		if s.steps++; s.steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := heap.Pop(&s.events).(hevent)
		s.now = e.t
		if e.t > s.lastTime {
			s.lastTime = e.t
		}
		switch e.kind {
		case hevWReq:
			w := e.worker
			si := s.shardOf[w]
			sub := &s.subs[si]
			s.liveACP[w] = s.acpAt(w, s.workers[w].reqSent)
			if !s.joined[w] {
				s.joined[w] = true
				s.params.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.WorkerJoined, Worker: w, Shard: si,
					ACP: s.liveACP[w], At: e.t,
				})
			}
			s.params.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.ChunkRequested, Worker: w, Shard: si,
				ACP: s.liveACP[w], At: e.t,
			})
			sub.pendingBytes += e.bytes
			sub.queue = append(sub.queue, hpending{worker: w, arrival: e.t, acp: s.liveACP[w], bytes: e.bytes})
			if s.dist && !sub.gathered {
				sub.initSeen++
				if sub.initSeen >= len(sub.members) {
					sub.gathered = true
					// Serve the initial shard queue fastest-first
					// (master step 1(a), per shard).
					sort.SliceStable(sub.queue, func(i, j int) bool {
						return sub.queue[i].acp > sub.queue[j].acp
					})
				}
			}
			if err := s.serviceShard(si); err != nil {
				return err
			}

		case hevWService:
			w := e.worker
			si := s.shardOf[w]
			s.subs[si].busy = false
			m := s.cluster.Machines[w]
			d := m.Link.Transfer(s.params.ReplyBytes)
			s.workers[w].times.Comm += d
			s.push(hevent{t: e.t + d, kind: hevWReply, worker: w, assign: e.assign, stop: e.stop})
			if err := s.serviceShard(si); err != nil {
				return err
			}

		case hevWReply:
			w := e.worker
			st := &s.workers[w]
			if e.stop {
				st.done = true
				st.finishedAt = e.t
				si := s.shardOf[w]
				if e.t > s.subs[si].finished {
					s.subs[si].finished = e.t
				}
				continue
			}
			m := s.cluster.Machines[w]
			work := workload.RangeCost(s.work, e.assign.Start, e.assign.End())
			d := m.ComputeTime(s.params.BaseRate, e.t, work)
			st.times.Comp += d
			s.subs[s.shardOf[w]].comp += d
			if s.shardTr != nil {
				s.shardTr[s.shardOf[w]].Add(trace.Event{
					Worker: w,
					Start:  e.assign.Start,
					Size:   e.assign.Size,
					Begin:  e.t,
					End:    e.t + d,
					ACP:    s.liveACP[w],
				})
			}
			s.params.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.ChunkCompleted, Worker: w, Shard: s.shardOf[w],
				Start: e.assign.Start, Size: e.assign.Size,
				ACP: s.liveACP[w], At: e.t + d, Seconds: d,
			})
			st.iterations += e.assign.Size
			st.lastChunk = e.assign.Size
			s.subs[s.shardOf[w]].iterations += e.assign.Size
			s.push(hevent{t: e.t + d, kind: hevWCompute, worker: w})

		case hevWCompute:
			s.sendRequest(e.worker, e.t)

		case hevRReq:
			s.rootQ = append(s.rootQ, hpending{worker: e.worker, arrival: e.t, bytes: e.bytes})
			s.serviceRoot()

		case hevRService:
			s.rootBusy = false
			d := s.cfg.RootLink.Transfer(s.params.ReplyBytes)
			s.push(hevent{t: e.t + d, kind: hevRReply, worker: e.worker, grant: e.grant, stop: e.stop})
			s.serviceRoot()

		case hevRReply:
			si := e.worker
			sub := &s.subs[si]
			sub.fetching = false
			if e.stop {
				sub.rootDone = true
			} else {
				sub.buffered = append(sub.buffered, e.grant)
			}
			if err := s.serviceShard(si); err != nil {
				return err
			}
		}
	}
	return nil
}

// serviceRoot pops the head fetch if the root is idle and schedules
// its completion after the receive plus scheduling overhead.
func (s *hsim) serviceRoot() {
	if s.rootBusy || len(s.rootQ) == 0 {
		return
	}
	req := s.rootQ[0]
	s.rootQ = s.rootQ[1:]
	s.rootBusy = true
	recv := s.params.MasterOverhead + req.bytes/s.mbw
	g, ok := s.root.Next(req.worker)
	s.push(hevent{t: s.now + recv, kind: hevRService, worker: req.worker, grant: g, stop: !ok})
}

// serviceShard drives one submaster: serve the head worker request if
// the submaster is idle and has work (or a stop) to hand out, pulling
// buffered super-chunks into the local policy and keeping the next
// fetch in flight (double buffering).
func (s *hsim) serviceShard(si int) error {
	sub := &s.subs[si]
	for {
		if sub.busy || len(sub.queue) == 0 {
			return nil
		}
		if s.dist && !sub.gathered {
			return nil // still gathering the shard's first reports
		}
		req := sub.queue[0]
		var assign sched.Assignment
		var ok bool
		if sub.policy != nil {
			assign, ok = sub.policy.Next(sched.Request{Worker: s.workers[req.worker].local, ACP: float64(req.acp)})
		}
		if !ok {
			if len(sub.buffered) > 0 {
				g := sub.buffered[0]
				sub.buffered = sub.buffered[1:]
				if err := s.planRange(si, g); err != nil {
					return err
				}
				if len(sub.buffered) == 0 {
					s.launchFetch(si, s.now)
				}
				continue // retry with the fresh policy
			}
			if !sub.rootDone {
				s.launchFetch(si, s.now)
				return nil // head request waits for the fetch
			}
			// Nothing anywhere: stop this worker.
			sub.queue = sub.queue[1:]
			sub.busy = true
			done := s.now + s.params.MasterOverhead + req.bytes/s.mbw
			s.workers[req.worker].times.Wait += done - req.arrival
			s.push(hevent{t: done, kind: hevWService, worker: req.worker, stop: true})
			return nil
		}
		sub.queue = sub.queue[1:]
		sub.busy = true
		sub.chunks++
		done := s.now + s.params.MasterOverhead + req.bytes/s.mbw
		s.workers[req.worker].times.Wait += done - req.arrival
		s.params.Telemetry.Publish(telemetry.Event{
			Kind: telemetry.ChunkGranted, Worker: req.worker, Shard: si,
			Start: assign.Start, Size: assign.Size, ACP: req.acp,
			At: done, Seconds: done - req.arrival,
		})
		s.push(hevent{t: done, kind: hevWService, worker: req.worker, assign: assign})
		return nil
	}
}
