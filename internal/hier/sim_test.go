package hier

import (
	"context"
	"fmt"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// testCluster builds a heterogeneous p-machine cluster in the paper's
// 2:1 fast/slow mix, with per-machine links.
func testCluster(p int) sim.Cluster {
	c := sim.Cluster{}
	for i := 0; i < p; i++ {
		power := 1.0
		link := sim.Link{Latency: 1e-4, Bandwidth: sim.Mbit10}
		if i%3 == 0 {
			power = 2
			link = sim.Link{Latency: 1e-4, Bandwidth: sim.Mbit100}
		}
		c.Machines = append(c.Machines, sim.Machine{
			Name:  fmt.Sprintf("m%d", i),
			Power: power,
			Link:  link,
		})
	}
	return c
}

// TestSimulateCoverageAllSchemes is the hierarchy invariant test: for
// every registered scheme, the two-level run executes each iteration
// exactly once — the per-shard chunk sequences tile the loop with no
// overlap and no gap — and the report's totals agree.
func TestSimulateCoverageAllSchemes(t *testing.T) {
	const n = 4000
	cluster := testCluster(9)
	w := workload.Uniform{N: n, C: 1}
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			scheme, err := sched.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := &trace.Trace{}
			rep, err := Simulate(context.Background(), cluster, scheme, w,
				sim.Params{Trace: tr}, Config{Shards: 3})
			if err != nil {
				t.Fatalf("Simulate(%s): %v", name, err)
			}
			covered := make([]int, n)
			for _, e := range tr.Events() {
				for i := e.Start; i < e.Start+e.Size; i++ {
					if i < 0 || i >= n {
						t.Fatalf("event outside loop: %+v", e)
					}
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("%s: iteration %d executed %d times", name, i, c)
				}
			}
			if rep.Iterations != n {
				t.Fatalf("%s: report says %d iterations", name, rep.Iterations)
			}
			var shardIters int
			for _, s := range rep.Shards {
				shardIters += s.Iterations
			}
			if shardIters != n {
				t.Fatalf("%s: shard iterations sum to %d", name, shardIters)
			}
			if len(rep.Shards) != 3 {
				t.Fatalf("%s: %d shards in report", name, len(rep.Shards))
			}
		})
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cluster := testCluster(8)
	w := workload.LinearDecreasing{N: 5000}
	scheme, _ := sched.Lookup("DTSS")
	run := func() float64 {
		rep, err := Simulate(context.Background(), cluster, scheme, w, sim.Params{}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Tp
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %g vs %g", a, b)
	}
}

func TestSimulateRejectsFlatKnobs(t *testing.T) {
	cluster := testCluster(4)
	w := workload.Uniform{N: 100, C: 1}
	scheme, _ := sched.Lookup("TSS")
	for _, p := range []sim.Params{{Prefetch: true}, {CollectAtEnd: true}, {SharedBus: true}} {
		if _, err := Simulate(context.Background(), cluster, scheme, w, p, Config{}); err == nil {
			t.Fatalf("expected rejection for %+v", p)
		}
	}
}

func TestSimulateCancel(t *testing.T) {
	cluster := testCluster(8)
	w := workload.Uniform{N: 200000, C: 1}
	scheme, _ := sched.Lookup("FSS")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, cluster, scheme, w, sim.Params{}, Config{}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSimulateStealsUnderLoad drives one shard's machines with heavy
// external load and checks the root rebalances toward the others.
func TestSimulateStealsUnderLoad(t *testing.T) {
	cluster := testCluster(8)
	// Load down every machine of shard 0 for the whole run, so that
	// shard falls far behind its static-power partition.
	for _, w := range AssignShards(cluster.Powers(), 2)[0] {
		cluster.Machines[w].Load = sim.LoadScript{{Start: 0, End: 1e9, Extra: 8}}
	}
	// Compute-bound run (tiny result payloads), so the external load —
	// not the wire — decides which shard lags.
	w := workload.Uniform{N: 20000, C: 100}
	scheme, _ := sched.Lookup("TSS")
	rep, err := Simulate(context.Background(), cluster, scheme, w,
		sim.Params{BytesPerIter: 1}, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steals == 0 {
		t.Fatal("expected root-level steals with half the cluster loaded")
	}
}
