// Package hier is the hierarchical (two-level) sharded scheduling
// runtime: a root coordinator partitions the loop among K submasters
// in proportion to each shard's aggregate available computing power —
// the paper's §3.1 power model lifted one level up — and each
// submaster runs any registered self-scheduling scheme over its own
// workers with purely local chunk calculation (the distributed
// chunk-calculation idea of Eleliemy & Ciorba, arXiv:2101.07050).
//
// The root does not hand a shard its whole partition at once: it
// grants it in geometrically shrinking super-chunks (the re-split
// policy), so the tail of every partition stays at the root. When a
// shard drains while another still holds a large unclaimed tail, the
// root rebalances by *stealing*: the fast shard's next fetch is served
// from the end of the slowest shard's partition. Steal threshold and
// re-split fractions are configurable via Config.
//
// Three backends share this logic:
//
//   - Simulate — a deterministic discrete-event model where the
//     submaster hop costs an extra link latency (sim.go);
//   - RunLocal — goroutine submasters over exec.WorkerSpec workers
//     (local.go);
//   - Submaster — a net/rpc server for its workers that is at the same
//     time a pipelined client of the root master, reusing the
//     double-buffered prefetch ledger of the flat RPC runtime
//     (rpc.go).
package hier

import (
	"fmt"
	"math"
	"sort"

	"loopsched/internal/sim"
)

// Config tunes the hierarchy. The zero value picks the documented
// defaults; every field is optional.
type Config struct {
	// Shards is K, the number of submasters. 0 means ⌈√workers⌉,
	// which balances master service load (workers/K per submaster)
	// against root fan-in (K clients).
	Shards int
	// GrantFraction is the re-split policy: the fraction of a shard's
	// remaining partition the root hands out per fetch. 0 means 0.5
	// (factoring at the super-chunk level).
	GrantFraction float64
	// StealFraction is how much of the victim's unclaimed tail a steal
	// takes. 0 means 0.5.
	StealFraction float64
	// StealThreshold is the minimum number of unclaimed iterations a
	// victim must hold for a steal to be worthwhile; below it the
	// drained shard simply stops. 0 means 2×MinGrant.
	StealThreshold int
	// MinGrant floors the super-chunk size so the root is not flooded
	// with tiny fetches. 0 means max(1, ⌈N/(64·K)⌉).
	MinGrant int
	// RootLink models the submaster↔root hop in the simulator: every
	// fetch pays its latency on top of the usual protocol costs. The
	// zero value means a 0.5 ms, 100 Mbit backbone link.
	RootLink sim.Link
}

// DefaultShards returns the default submaster count for p workers.
func DefaultShards(p int) int {
	if p <= 1 {
		return 1
	}
	k := int(math.Ceil(math.Sqrt(float64(p))))
	if k > p {
		k = p
	}
	return k
}

// withDefaults resolves the documented zero-value defaults for a run
// of n iterations on `workers` slaves.
func (c Config) withDefaults(n, workers int) Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards(workers)
	}
	if c.Shards > workers {
		c.Shards = workers
	}
	if c.GrantFraction <= 0 || c.GrantFraction > 1 {
		c.GrantFraction = 0.5
	}
	if c.StealFraction <= 0 || c.StealFraction > 1 {
		c.StealFraction = 0.5
	}
	if c.MinGrant <= 0 {
		c.MinGrant = (n + 64*c.Shards - 1) / (64 * c.Shards)
		if c.MinGrant < 1 {
			c.MinGrant = 1
		}
	}
	if c.StealThreshold <= 0 {
		c.StealThreshold = 2 * c.MinGrant
	}
	if c.RootLink == (sim.Link{}) {
		c.RootLink = sim.Link{Latency: 0.0005, Bandwidth: sim.Mbit100}
	}
	return c
}

// Validate reports whether the configuration is usable as given
// (before defaulting).
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("hier: negative shard count %d", c.Shards)
	}
	if c.GrantFraction < 0 || c.GrantFraction > 1 {
		return fmt.Errorf("hier: grant fraction %g outside [0,1]", c.GrantFraction)
	}
	if c.StealFraction < 0 || c.StealFraction > 1 {
		return fmt.Errorf("hier: steal fraction %g outside [0,1]", c.StealFraction)
	}
	if c.StealThreshold < 0 || c.MinGrant < 0 {
		return fmt.Errorf("hier: negative steal threshold or min grant")
	}
	return nil
}

// Range is a half-open iteration interval [Start, End).
type Range struct {
	Start, End int
}

// Size returns the number of iterations in the range.
func (r Range) Size() int { return r.End - r.Start }

// Partition splits [0, n) into len(powers) contiguous regions with
// sizes proportional to the powers (largest-remainder rounding, so the
// sizes sum to n exactly). A zero or negative power is treated as the
// smallest positive share so every shard owns at least part of the
// loop when n allows.
func Partition(n int, powers []float64) []Range {
	k := len(powers)
	out := make([]Range, k)
	if k == 0 || n <= 0 {
		return out
	}
	var total float64
	for _, p := range powers {
		if p <= 0 {
			p = 1
		}
		total += p
	}
	sizes := make([]int, k)
	fracs := make([]float64, k)
	assigned := 0
	for i, p := range powers {
		if p <= 0 {
			p = 1
		}
		exact := float64(n) * p / total
		sizes[i] = int(exact)
		fracs[i] = exact - float64(sizes[i])
		assigned += sizes[i]
	}
	// Hand the leftover iterations to the largest fractional parts
	// (ties to the lower shard index, for determinism).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for r := 0; r < n-assigned; r++ {
		sizes[order[r%k]]++
	}
	start := 0
	for i := range out {
		out[i] = Range{Start: start, End: start + sizes[i]}
		start = out[i].End
	}
	return out
}

// AssignShards distributes workers (identified by index into powers)
// across k shards, balancing aggregate power greedily: workers are
// taken in decreasing-power order and each goes to the currently
// lightest shard. Deterministic; every shard receives at least one
// worker when k ≤ len(powers). Members are returned sorted.
func AssignShards(powers []float64, k int) [][]int {
	if k < 1 {
		k = 1
	}
	if k > len(powers) {
		k = len(powers)
	}
	order := make([]int, len(powers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return powers[order[a]] > powers[order[b]] })
	shards := make([][]int, k)
	agg := make([]float64, k)
	for _, w := range order {
		best := 0
		for s := 1; s < k; s++ {
			// Prefer the lightest shard; break power ties by member
			// count, then index, so assignment is stable.
			if agg[s] < agg[best] ||
				(agg[s] == agg[best] && len(shards[s]) < len(shards[best])) {
				best = s
			}
		}
		shards[best] = append(shards[best], w)
		agg[best] += powers[w]
	}
	for s := range shards {
		sort.Ints(shards[s])
	}
	return shards
}
