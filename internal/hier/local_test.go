package hier

import (
	"context"
	"sync"
	"testing"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

func localSpecs() []*exec.WorkerSpec {
	return []*exec.WorkerSpec{
		{WorkScale: 1}, {WorkScale: 1}, {WorkScale: 2},
		{WorkScale: 2}, {WorkScale: 4}, {WorkScale: 4},
	}
}

func TestLocalRunCoverage(t *testing.T) {
	const n = 3000
	for _, name := range []string{"TSS", "DTSS", "FSS", "WF"} {
		name := name
		t.Run(name, func(t *testing.T) {
			scheme, err := sched.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			counts := make([]int, n)
			l := &LocalRun{
				Scheme:  scheme,
				Workers: localSpecs(),
				Config:  Config{Shards: 2},
			}
			rep, err := l.Run(context.Background(), workload.Uniform{N: n},
				func(i int) { mu.Lock(); counts[i]++; mu.Unlock() })
			if err != nil {
				t.Fatal(err)
			}
			// WorkScale repeats the body; what must hold is that every
			// iteration ran a positive multiple of its scale — and that
			// the report's exactly-once accounting agrees.
			for i, c := range counts {
				if c == 0 {
					t.Fatalf("iteration %d never executed", i)
				}
			}
			if rep.Iterations != n {
				t.Fatalf("report counts %d iterations", rep.Iterations)
			}
			if len(rep.Shards) != 2 {
				t.Fatalf("%d shards reported", len(rep.Shards))
			}
			var si int
			for _, s := range rep.Shards {
				si += s.Iterations
			}
			if si != n {
				t.Fatalf("shard iterations sum to %d", si)
			}
		})
	}
}

func TestLocalRunCancel(t *testing.T) {
	scheme, _ := sched.Lookup("TSS")
	ctx, cancel := context.WithCancel(context.Background())
	l := &LocalRun{Scheme: scheme, Workers: localSpecs()}
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := l.Run(ctx, workload.Uniform{N: 1 << 20},
			func(i int) {
				once.Do(cancel) // cancel as soon as work starts
			})
		if err != context.Canceled {
			t.Errorf("got %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}
