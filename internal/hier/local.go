package hier

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/exec"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// LocalRun executes a loop hierarchically inside one process: the
// workers are goroutines (exec.WorkerSpec emulated slaves), grouped
// into shards each driven by its own submaster goroutine, with the
// shared Root allocator handing out super-chunks and rebalancing by
// stealing. It is the shared-memory analogue of the RPC hierarchy —
// same partition, same steal policy, no wire.
type LocalRun struct {
	Scheme  sched.Scheme
	Workers []*exec.WorkerSpec
	// ACP is the availability model for distributed schemes.
	ACP acp.Model
	// Config tunes the hierarchy (zero value = defaults).
	Config Config
	// Trace, when non-nil, records each computed chunk with wall-clock
	// timestamps relative to Run's start.
	Trace *trace.Trace
	// Telemetry, when non-nil, receives live protocol events. Worker
	// ids in those events are run-global; Shard carries the shard
	// index.
	Telemetry *telemetry.Bus
}

type hlReq struct {
	local     int // index within the shard
	acp       int
	fbWork    float64
	fbElapsed float64
	at        float64 // send instant on the telemetry clock (0 = no bus)
	reply     chan hlReply
}

type hlReply struct {
	assign sched.Assignment
	ok     bool
}

// shardState is one submaster's bookkeeping, written by its goroutine
// and read by Run after all goroutines join.
type shardState struct {
	members  []int
	requests chan hlReq
	chunks   int
	iters    int
	finished float64
}

// Run executes body(i) exactly once for every iteration of the
// workload. Cancelling ctx stops the masters from handing out chunks;
// started iterations still complete.
func (l *LocalRun) Run(ctx context.Context, w workload.Workload, body func(i int)) (metrics.Report, error) {
	p := len(l.Workers)
	if p == 0 {
		return metrics.Report{}, fmt.Errorf("hier: no workers")
	}
	dist := sched.Distributed(l.Scheme)
	cfg := l.Config.withDefaults(w.Len(), p)

	maxScale := 1
	for _, ws := range l.Workers {
		s := ws.WorkScale
		if s < 1 {
			s = 1
		}
		if s > maxScale {
			maxScale = s
		}
	}
	scale := func(i int) int {
		if s := l.Workers[i].WorkScale; s > 1 {
			return s
		}
		return 1
	}
	virtual := func(i int) float64 { return float64(maxScale) / float64(scale(i)) }

	powers := make([]float64, p)
	for i := range powers {
		powers[i] = virtual(i)
	}
	assignment := AssignShards(powers, cfg.Shards)
	shardPowers := make([]float64, len(assignment))
	shards := make([]*shardState, len(assignment))
	shardOf := make([]int, p)
	localOf := make([]int, p)
	for si, members := range assignment {
		shards[si] = &shardState{members: members, requests: make(chan hlReq)}
		for li, wi := range members {
			shardOf[wi] = si
			localOf[wi] = li
			if dist {
				a := l.ACP.ACP(virtual(wi), 1+l.Workers[wi].Load())
				if a < 1 {
					a = 1
				}
				shardPowers[si] += float64(a)
			} else {
				shardPowers[si] += virtual(wi)
			}
		}
	}
	root, err := NewRoot(w.Len(), shardPowers, cfg)
	if err != nil {
		return metrics.Report{}, err
	}
	root.SetTelemetry(l.Telemetry)

	start := time.Now()
	if l.Trace != nil {
		l.Trace.Scheme = l.Scheme.Name()
		l.Trace.Workload = w.Name()
		l.Trace.Workers = p
	}

	times := make([]metrics.Times, p)
	iters := make([]int64, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			spec := l.Workers[id]
			sh := shards[shardOf[id]]
			reply := make(chan hlReply, 1)
			l.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.WorkerJoined, Worker: id,
				Shard: shardOf[id], At: l.Telemetry.Now(),
			})
			var fbWork, fbElapsed float64
			for {
				a := l.ACP.ACP(virtual(id), 1+spec.Load())
				reqAt := l.Telemetry.Now()
				l.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.ChunkRequested, Worker: id,
					Shard: shardOf[id], ACP: a, At: reqAt,
				})
				waitStart := time.Now()
				select {
				case sh.requests <- hlReq{local: localOf[id], acp: a,
					fbWork: fbWork, fbElapsed: fbElapsed, at: reqAt, reply: reply}:
				case <-ctx.Done():
					return
				}
				r := <-reply // an accepted request is always answered
				times[id].Wait += time.Since(waitStart).Seconds()
				if !r.ok {
					return
				}
				compStart := time.Now()
				for it := r.assign.Start; it < r.assign.End(); it++ {
					for rep := 0; rep < scale(id); rep++ {
						body(it)
					}
				}
				fbWork = workload.RangeCost(w, r.assign.Start, r.assign.End())
				fbElapsed = time.Since(compStart).Seconds()
				times[id].Comp += fbElapsed
				atomic.AddInt64(&iters[id], int64(r.assign.Size))
				l.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.ChunkCompleted, Worker: id,
					Shard: shardOf[id], Start: r.assign.Start,
					Size: r.assign.Size, ACP: a,
					At: l.Telemetry.Now(), Seconds: fbElapsed,
				})
				if l.Trace != nil {
					// Reuse the fbElapsed reading: a fresh time.Since
					// would close the span later than the chunk actually
					// finished (by however long the publish above took).
					begin := compStart.Sub(start).Seconds()
					l.Trace.Add(trace.Event{
						Worker: id,
						Start:  r.assign.Start,
						Size:   r.assign.Size,
						Begin:  begin,
						End:    begin + fbElapsed,
						ACP:    a,
					})
				}
			}
		}(i)
	}

	errs := make([]error, len(shards))
	var mwg sync.WaitGroup
	for si := range shards {
		mwg.Add(1)
		go func(si int) {
			defer mwg.Done()
			errs[si] = l.submaster(ctx, root, si, shards[si], powers, dist, start)
			if errs[si] != nil {
				// Keep draining so the shard's workers can exit; the
				// channel is closed once they have all joined.
				go func() {
					for req := range shards[si].requests {
						req.reply <- hlReply{}
					}
				}()
			}
		}(si)
	}
	mwg.Wait()
	wg.Wait()
	for _, sh := range shards {
		close(sh.requests)
	}

	rep := metrics.Report{
		Scheme:   l.Scheme.Name(),
		Workload: w.Name(),
		Workers:  p,
		Tp:       time.Since(start).Seconds(),
		Steals:   root.Steals(),
	}
	for i := 0; i < p; i++ {
		rep.PerWorker = append(rep.PerWorker, times[i])
		rep.Iterations += int(iters[i])
	}
	for si, sh := range shards {
		rep.Chunks += sh.chunks
		var comp float64
		for _, wi := range sh.members {
			comp += times[wi].Comp
		}
		rep.Shards = append(rep.Shards,
			shardStats(si, sh.members, sh.iters, sh.chunks, comp, sh.finished, root))
	}
	for _, e := range errs {
		if e != nil {
			return rep, e
		}
	}
	if rep.Iterations != w.Len() {
		return rep, fmt.Errorf("hier: executed %d of %d iterations", rep.Iterations, w.Len())
	}
	return rep, nil
}

// submaster drives one shard: it fetches super-chunks from the root
// and schedules them over its members with the configured scheme,
// re-planning from the freshest ACP reports at every super-chunk
// boundary (the hierarchy's adaptivity cadence).
func (l *LocalRun) submaster(ctx context.Context, root *Root, si int, sh *shardState, virtual []float64, dist bool, start time.Time) error {
	k := len(sh.members)
	liveACP := make([]int, k)
	var policy sched.Policy
	var pending []hlReq

	// Distributed submasters gather every member's first report before
	// the first plan, so it reflects real ACPs (master step 1(a),
	// applied per shard).
	if dist {
		seen := make([]bool, k)
		n := 0
		for n < k {
			select {
			case req := <-sh.requests:
				liveACP[req.local] = req.acp
				if !seen[req.local] {
					seen[req.local] = true
					n++
				}
				pending = append(pending, req)
			case <-ctx.Done():
				for _, req := range pending {
					req.reply <- hlReply{}
				}
				return ctx.Err()
			}
		}
	}

	// plan points the policy at the next super-chunk; false = root dry.
	plan := func() (bool, error) {
		g, ok := root.Next(si)
		if !ok {
			return false, nil
		}
		cfg := sched.Config{Iterations: g.Size(), Workers: k}
		switch l.Scheme.(type) {
		case sched.WFScheme, sched.WeightedStaticScheme:
			powers := make([]float64, k)
			for li, wi := range sh.members {
				powers[li] = virtual[wi]
			}
			cfg.Powers = powers
		default:
			if dist {
				powers := make([]float64, k)
				for li, a := range liveACP {
					if a < 1 {
						a = 1
					}
					powers[li] = float64(a)
				}
				cfg.Powers = powers
			}
		}
		pol, err := l.Scheme.NewPolicy(cfg)
		if err != nil {
			return false, err
		}
		policy = sched.Offset(pol, g.Start)
		// Each super-chunk is a fresh scheduling stage for the shard.
		l.Telemetry.Publish(telemetry.Event{
			Kind: telemetry.StageAdvanced, Shard: si,
			Start: g.Start, Size: g.Size(), At: l.Telemetry.Now(),
		})
		return true, nil
	}

	stopped := 0
	serve := func(req hlReq) error {
		liveACP[req.local] = req.acp
		if fb, ok := policy.(sched.FeedbackPolicy); ok && req.fbElapsed > 0 {
			fb.Feedback(req.local, req.fbWork, req.fbElapsed)
		}
		for {
			if policy != nil {
				if a, ok := policy.Next(sched.Request{Worker: req.local, ACP: float64(req.acp)}); ok {
					sh.chunks++
					sh.iters += a.Size
					now := l.Telemetry.Now()
					l.Telemetry.Publish(telemetry.Event{
						Kind: telemetry.ChunkGranted, Worker: sh.members[req.local],
						Shard: si, Start: a.Start, Size: a.Size, ACP: req.acp,
						At: now, Seconds: now - req.at,
					})
					req.reply <- hlReply{assign: a, ok: true}
					return nil
				}
			}
			ok, err := plan()
			if err != nil {
				req.reply <- hlReply{}
				return err
			}
			if !ok {
				stopped++
				req.reply <- hlReply{}
				return nil
			}
		}
	}
	for _, req := range pending {
		if err := serve(req); err != nil {
			return err
		}
	}
	for stopped < k {
		select {
		case req := <-sh.requests:
			if err := serve(req); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	sh.finished = time.Since(start).Seconds()
	return nil
}
