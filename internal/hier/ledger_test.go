package hier

import (
	"testing"

	"loopsched/internal/ledger"
	"loopsched/internal/sched"
)

// TestLedgerStageMatchesPolicy is the hierarchy's half of the ledger
// equivalence property. End-to-end the root's super-chunk splits depend
// on request timing, so the comparable unit is one stage: for every
// step-deterministic scheme and a spread of super-chunk grants, the
// table planLocked would arm (ledger.Build over the stage size, starts
// shifted by the grant offset) must reproduce the offset policy's chunk
// sequence byte for byte, including where both say the stage is drained.
func TestLedgerStageMatchesPolicy(t *testing.T) {
	stages := []struct{ start, size, workers int }{
		{0, 1, 1},
		{0, 1000, 4},
		{137, 963, 3},
		{4096, 555, 8},
		{25, 10000, 2},
		{999983, 77, 5},
	}
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !sched.StepDeterministic(s) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			for _, st := range stages {
				cfg := sched.Config{Iterations: st.size, Workers: st.workers}
				tab, err := ledger.Build(s, cfg)
				if err != nil {
					t.Fatalf("stage %+v: Build: %v", st, err)
				}
				pol, err := s.NewPolicy(cfg)
				if err != nil {
					t.Fatalf("stage %+v: NewPolicy: %v", st, err)
				}
				off := sched.Offset(pol, st.start)
				step := 0
				for {
					want, ok := off.Next(sched.Request{Worker: step % st.workers})
					got, gotOK := tab.Chunk(uint64(step))
					if gotOK {
						got.Start += st.start
					}
					if ok != gotOK {
						t.Fatalf("stage %+v step %d: policy ok=%v, ledger ok=%v", st, step, ok, gotOK)
					}
					if !ok {
						break
					}
					if want != got {
						t.Fatalf("stage %+v step %d: policy %+v, ledger %+v", st, step, want, got)
					}
					step++
				}
				if step != tab.Steps() {
					t.Errorf("stage %+v: policy drained after %d steps, table declares %d", st, step, tab.Steps())
				}
			}
		})
	}
}
