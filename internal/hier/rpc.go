package hier

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/ledger"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/wire"
)

// rootCaller abstracts the submaster's upward link so the root fetch
// can ride either transport. Calls are serialised by the `fetching`
// flag — at most one fetch is in flight — so implementations need no
// internal locking.
type rootCaller interface {
	Call(args exec.ChunkArgs, reply *exec.ChunkReply) error
	Close() error
}

// netrpcRoot speaks the original gob protocol to the root.
type netrpcRoot struct{ c *rpc.Client }

func (r netrpcRoot) Call(args exec.ChunkArgs, reply *exec.ChunkReply) error {
	return r.c.Call("Master.NextChunk", args, reply)
}

func (r netrpcRoot) Close() error { return r.c.Close() }

// wireRoot speaks the binary framing codec to the root, one
// super-chunk per round trip (the shard-level pipeline, not the
// credit window, hides the root latency here).
type wireRoot struct {
	c   *wire.Conn
	req wire.Request
	rep wire.Reply
}

func (r *wireRoot) Call(args exec.ChunkArgs, reply *exec.ChunkReply) error {
	r.req = wire.Request{
		Worker:      args.Worker,
		ACP:         args.ACP,
		CompSeconds: args.CompSeconds,
		IdleSeconds: args.IdleSeconds,
		Prefetch:    args.Prefetch,
		Credits:     1,
		Results:     r.req.Results[:0],
	}
	for _, res := range args.Results {
		r.req.Results = append(r.req.Results, wire.Record{Index: res.Index, Data: res.Data})
	}
	if err := r.c.Call(&r.req, &r.rep); err != nil {
		return err
	}
	reply.Stop = r.rep.Stop
	if len(r.rep.Grants) > 0 {
		reply.Assign = r.rep.Grants[0]
	}
	return nil
}

func (r *wireRoot) Close() error { return r.c.Close() }

// Submaster is the middle tier of the RPC hierarchy. To its workers it
// is indistinguishable from a flat master: it registers the same
// "Master" RPC service name and speaks the same NextChunk protocol, so
// stock exec.Worker slaves connect unchanged. To the root it is a
// pipelined client: it fetches super-chunks with the same
// double-buffered Prefetch handshake the flat runtime uses between
// worker and master, piggy-backing its shard's accumulated results on
// every fetch, so the root round-trip hides behind local computation.
//
// Deadlock discipline: a blocking (parkable) fetch is issued only when
// the shard holds no undelivered results — every iteration the
// submaster ever received has either been forwarded or rides on that
// very fetch. The root can therefore retire the shard's ledger
// entirely on receipt, and parking the fetch until the global run
// finishes is safe.
type Submaster struct {
	shard   int
	workers int
	scheme  sched.Scheme
	dist    bool
	root    rootCaller
	bg      sync.WaitGroup // in-flight prefetch goroutines
	serveWG sync.WaitGroup // accept loop + per-connection servers

	bus      *telemetry.Bus // nil unless SetTelemetry was called
	globalID []int          // shard-local worker index → run-global id

	mu       sync.Mutex
	conns    []net.Conn // accepted by Serve, closed by Close
	cond     *sync.Cond
	policy   sched.Policy
	buffered []sched.Assignment // fetched super-chunks not yet planned
	fetching bool
	rootDone bool
	rootErr  error

	// Stage-local scheduling ledger (SetLedger): when the scheme is
	// step-deterministic, every super-chunk grant from the root seeds a
	// fresh prefix table and resets the step counter, and local grants
	// become a fetch-add plus a table lookup instead of a policy
	// mutation. ledgerTab is nil on the policy path or once the stage
	// drains; ledgerBase is the super-chunk's offset in the loop.
	ledgerOn   bool
	ledgerTab  *ledger.Table
	ledgerCtr  ledger.Local
	ledgerBase int

	liveACP  []int
	seen     []bool
	gathered int

	pending     []exec.ChunkResult // results awaiting the next fetch
	outstanding int                // granted iterations not yet deposited back

	iters      int
	chunks     int
	fetches    int
	comp       float64
	stopped    int
	finishedAt time.Time
	done       chan struct{}
}

// NewSubmaster connects shard `shard` to the root master at rootAddr,
// serving `workers` local slaves under the scheme. The root link uses
// exec.DefaultTransport (the LOOPSCHED_TRANSPORT environment variable
// or the binary codec); use NewSubmasterTransport to pick explicitly.
func NewSubmaster(shard int, scheme sched.Scheme, workers int, rootAddr string) (*Submaster, error) {
	return NewSubmasterTransport(shard, scheme, workers, rootAddr, "")
}

// NewSubmasterTransport is NewSubmaster with an explicit root-link
// transport (empty means exec.DefaultTransport). The worker-facing
// listener always speaks both: Serve routes each connection by
// sniffing its first byte, exactly like the flat master.
func NewSubmasterTransport(shard int, scheme sched.Scheme, workers int, rootAddr string, transport exec.Transport) (*Submaster, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("hier: submaster needs at least one worker")
	}
	transport, ok := transport.Normalize()
	if !ok {
		return nil, fmt.Errorf("hier: unknown transport %q", transport)
	}
	var root rootCaller
	if transport == exec.TransportNetRPC {
		client, err := rpc.Dial("tcp", rootAddr)
		if err != nil {
			return nil, err
		}
		root = netrpcRoot{client}
	} else {
		conn, err := net.Dial("tcp", rootAddr)
		if err != nil {
			return nil, err
		}
		wc, err := wire.NewClient(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		root = &wireRoot{c: wc}
	}
	s := &Submaster{
		shard:   shard,
		workers: workers,
		scheme:  scheme,
		dist:    sched.Distributed(scheme),
		root:    root,
		liveACP: make([]int, workers),
		seen:    make([]bool, workers),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// SetTelemetry attaches an event bus: the submaster publishes
// worker-level protocol events (joins, requests, grants, prefetch
// misses, stage advances) tagged with its shard index. globalIDs maps
// the shard-local worker index to the run-global worker id used in
// events; nil keeps local ids. Call before Serve.
func (s *Submaster) SetTelemetry(bus *telemetry.Bus, globalIDs []int) {
	s.mu.Lock()
	s.bus = bus
	s.globalID = globalIDs
	s.mu.Unlock()
}

// SetLedger requests the stage-local scheduling ledger for this
// shard's grants. The mode is advisory exactly as on the flat master:
// a scheme that is not step-deterministic (or is distributed) silently
// keeps the policy path, so "on" is always safe. Call before Serve.
func (s *Submaster) SetLedger(mode exec.LedgerMode) error {
	mode, ok := mode.Normalize()
	if !ok {
		return fmt.Errorf("hier: unknown ledger mode %q", mode)
	}
	s.mu.Lock()
	s.ledgerOn = mode == exec.LedgerOn && !s.dist && sched.StepDeterministic(s.scheme)
	s.mu.Unlock()
	return nil
}

// fetchAddFunc reports the worker-facing one-sided claim hook. The
// shard's ledger is stage-local — its table changes with every
// super-chunk the root grants — so workers cannot hold a static
// replica and wire-level claims are not served; the ledger accelerates
// the shard's own grant path instead.
func (s *Submaster) fetchAddFunc() exec.FetchAddFunc { return nil }

// takeLocked draws the next local chunk for req, from the stage ledger
// when one is armed (fetch-add + table lookup + offset) and from the
// policy otherwise. A drained ledger stage disarms itself so the loop
// proceeds to plan the next super-chunk. Callers hold mu.
func (s *Submaster) takeLocked(req sched.Request) (sched.Assignment, bool) {
	if s.ledgerTab != nil {
		step, _ := s.ledgerCtr.FetchAdd(1)
		a, ok := s.ledgerTab.Chunk(step)
		if !ok {
			s.ledgerTab = nil
			return sched.Assignment{}, false
		}
		a.Start += s.ledgerBase
		if s.bus != nil {
			s.bus.Publish(telemetry.Event{
				Kind: telemetry.LedgerFetch, Worker: s.telemetryID(req.Worker),
				Shard: s.shard, Start: 1, At: s.bus.Now(),
			})
		}
		return a, true
	}
	if s.policy == nil {
		return sched.Assignment{}, false
	}
	return s.policy.Next(req)
}

// telemetryID maps a shard-local worker index to the id published in
// telemetry events. Callers hold mu.
func (s *Submaster) telemetryID(local int) int {
	if local >= 0 && local < len(s.globalID) {
		return s.globalID[local]
	}
	return local
}

// Serve registers the submaster under the flat master's service name
// and accepts worker connections until the listener closes. Like the
// flat master it sniffs each connection's first byte, so gob and
// binary workers coexist on one listener.
func (s *Submaster) Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", s); err != nil {
		return err
	}
	s.serveWG.Add(1)
	go func() {
		defer s.serveWG.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			bus := s.bus
			s.mu.Unlock()
			s.serveWG.Add(1)
			go func() {
				defer s.serveWG.Done()
				exec.ServeSniffed(srv, conn, bus, s.shard, s.nextBatch, s.fetchAddFunc())
			}()
		}
	}()
	return nil
}

// nextBatch adapts the submaster to the batched wire service: the
// first grant carries NextChunk's full semantics (parking a drained
// worker, stop on completion), and the remaining credits are filled
// best-effort from the already planned local stage — top-ups use the
// prefetch form, which never blocks and keeps the root pipeline
// primed, so a batched worker cannot deadlock the shard.
func (s *Submaster) nextBatch(args exec.ChunkArgs, credits int, rep *wire.Reply) error {
	var first exec.ChunkReply
	if err := s.NextChunk(args, &first); err != nil {
		return err
	}
	if first.Stop {
		rep.Stop = true
		return nil
	}
	if first.Assign.Size == 0 {
		return nil // empty prefetch answer: ask again plainly
	}
	rep.Grants = append(rep.Grants, first.Assign)
	topup := exec.ChunkArgs{Worker: args.Worker, ACP: args.ACP, Prefetch: true}
	for len(rep.Grants) < credits {
		var r exec.ChunkReply
		if err := s.NextChunk(topup, &r); err != nil {
			return err
		}
		if r.Assign.Size == 0 {
			break
		}
		rep.Grants = append(rep.Grants, r.Assign)
	}
	// Span-tag the batch when telemetry is attached, mirroring the ids
	// NextChunk stamped on the grant events, so the worker's completion
	// closes the same flow. A bus-less shard sends v1-identical frames.
	s.mu.Lock()
	tagged := s.bus != nil
	s.mu.Unlock()
	if tagged {
		for _, g := range rep.Grants {
			rep.Spans = append(rep.Spans, telemetry.SpanID(0, g.Start))
		}
	}
	return nil
}

// Close joins the in-flight prefetch (the root answers prefetches
// immediately, so this never parks), releases the root connection —
// which errors out any parked blocking fetch — and tears down the
// worker connections accepted by Serve, joining their server
// goroutines. Close the listener first so the accept loop can exit.
func (s *Submaster) Close() error {
	s.bg.Wait()
	err := s.root.Close()
	s.mu.Lock()
	if !s.rootDone && s.rootErr == nil {
		// Wake any NextChunk handler still parked on the pipeline so its
		// ServeConn loop can unwind before we join serveWG.
		s.rootErr = fmt.Errorf("hier: submaster closed")
	}
	s.cond.Broadcast()
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.serveWG.Wait()
	return err
}

// Wait blocks until every local worker has been stopped, or ctx ends.
func (s *Submaster) Wait(ctx context.Context) error {
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Counts returns the shard's tallies for the run report; finishedAt is
// zero until the last worker stops. fetches counts root round-trips
// the submaster initiated (its own view; the root counts grants).
func (s *Submaster) Counts() (iters, chunks, fetches int, comp float64, finishedAt time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.iters, s.chunks, s.fetches, s.comp, s.finishedAt
}

// aggregateACP sums the freshest member reports; callers hold mu.
func (s *Submaster) aggregateACP() int {
	total := 0
	for _, a := range s.liveACP {
		if a < 1 {
			a = 1
		}
		total += a
	}
	return total
}

// NextChunk is the worker-facing RPC, protocol-compatible with
// exec.Master.NextChunk.
func (s *Submaster) NextChunk(args exec.ChunkArgs, reply *exec.ChunkReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Worker < 0 || args.Worker >= s.workers {
		s.bus.Publish(telemetry.Event{
			Kind: telemetry.WorkerRejected, Worker: args.Worker,
			Shard: s.shard, At: s.bus.Now(),
		})
		return fmt.Errorf("hier: unknown worker %d", args.Worker)
	}
	reqAt := s.bus.Now()

	if len(args.Results) > 0 {
		s.pending = append(s.pending, args.Results...)
		s.outstanding -= len(args.Results)
		s.cond.Broadcast() // a drained peer may now issue the fetch
	}
	if args.CompSeconds > 0 {
		s.comp += args.CompSeconds
	}
	s.liveACP[args.Worker] = args.ACP
	if !s.seen[args.Worker] {
		s.seen[args.Worker] = true
		s.gathered++
		s.bus.Publish(telemetry.Event{
			Kind: telemetry.WorkerJoined, Worker: s.telemetryID(args.Worker),
			Shard: s.shard, ACP: args.ACP, At: reqAt,
		})
		if s.gathered == s.workers {
			s.cond.Broadcast() // gather complete: the first fetch may go
		}
	}
	s.bus.Publish(telemetry.Event{
		Kind: telemetry.ChunkRequested, Worker: s.telemetryID(args.Worker),
		Shard: s.shard, ACP: args.ACP, At: reqAt,
	})

	for {
		if s.rootErr != nil {
			return s.rootErr
		}
		if a, ok := s.takeLocked(sched.Request{Worker: args.Worker, ACP: float64(args.ACP)}); ok {
			s.chunks++
			s.iters += a.Size
			s.outstanding += a.Size
			reply.Assign = a
			kind := telemetry.ChunkGranted
			if args.Prefetch {
				kind = telemetry.ChunkPrefetched
			}
			if s.bus != nil {
				now := s.bus.Now()
				s.bus.Publish(telemetry.Event{
					Kind: kind, Worker: s.telemetryID(args.Worker),
					Shard: s.shard, Start: a.Start, Size: a.Size,
					ACP: args.ACP, Span: telemetry.SpanID(0, a.Start),
					At: now, Seconds: now - reqAt,
				})
			}
			return nil
		}
		if len(s.buffered) > 0 {
			if err := s.planLocked(); err != nil {
				return err
			}
			continue
		}
		if s.rootDone {
			if args.Prefetch {
				s.bus.Publish(telemetry.Event{
					Kind: telemetry.PrefetchMissed, Worker: s.telemetryID(args.Worker),
					Shard: s.shard, At: reqAt,
				})
				return nil // empty: finish your chunk, ask again plainly
			}
			reply.Stop = true
			s.stopped++
			if s.stopped >= s.workers {
				s.finishedAt = time.Now()
				close(s.done)
			}
			return nil
		}
		if args.Prefetch {
			// Can't give the pipelined worker anything yet; keep a root
			// prefetch moving and answer empty.
			s.launchPrefetchLocked()
			s.bus.Publish(telemetry.Event{
				Kind: telemetry.PrefetchMissed, Worker: s.telemetryID(args.Worker),
				Shard: s.shard, At: reqAt,
			})
			return nil
		}
		// Plain request with nothing local. Fetch from the root once the
		// shard is quiescent (gather done, no undelivered results, no
		// fetch already in flight); otherwise wait for state to change.
		if !s.fetching && s.gathered == s.workers && s.outstanding == 0 {
			if err := s.blockingFetchLocked(); err != nil {
				return err
			}
			continue
		}
		s.cond.Wait()
	}
}

// planLocked pops the next buffered super-chunk into a fresh local
// policy — powers re-derived from the members' latest ACP reports, the
// hierarchy's per-super-chunk adaptivity — and keeps the root pipeline
// primed. Callers hold mu.
func (s *Submaster) planLocked() error {
	g := s.buffered[0]
	s.buffered = s.buffered[1:]
	cfg := sched.Config{Iterations: g.Size, Workers: s.workers}
	if s.dist || s.isWeighted() {
		powers := make([]float64, s.workers)
		for i, a := range s.liveACP {
			if a < 1 {
				a = 1
			}
			powers[i] = float64(a)
		}
		cfg.Powers = powers
	}
	s.policy, s.ledgerTab = nil, nil
	if s.ledgerOn {
		// Seed a fresh ledger from the root's grant. Exactly one grant
		// source per stage: the policy stays nil while the table is
		// armed, so ledger claims and policy grants cannot overlap.
		if tab, err := ledger.Build(s.scheme, cfg); err == nil {
			s.ledgerTab = tab
			s.ledgerBase = g.Start
			s.ledgerCtr.Store(0)
		}
		// Any build error (over-long stage, scheme surprise) simply
		// falls back to the policy path below.
	}
	if s.ledgerTab == nil {
		pol, err := s.scheme.NewPolicy(cfg)
		if err != nil {
			s.rootErr = err
			s.cond.Broadcast()
			return err
		}
		s.policy = sched.Offset(pol, g.Start)
	}
	// Each super-chunk is a fresh scheduling stage for the shard.
	s.bus.Publish(telemetry.Event{
		Kind: telemetry.StageAdvanced, Shard: s.shard,
		Start: g.Start, Size: g.Size, At: s.bus.Now(),
	})
	if len(s.buffered) == 0 {
		s.launchPrefetchLocked()
	}
	return nil
}

// isWeighted reports whether the scheme wants static weights; the
// submaster has no machine table for its remote workers, so their
// reported ACPs stand in (proportional to virtual power on an
// unloaded slave).
func (s *Submaster) isWeighted() bool {
	switch s.scheme.(type) {
	case sched.WFScheme, sched.WeightedStaticScheme:
		return true
	}
	return false
}

// takeFetchArgs snapshots the outgoing fetch payload; callers hold mu.
func (s *Submaster) takeFetchArgs(prefetch bool) exec.ChunkArgs {
	args := exec.ChunkArgs{
		Worker:   s.shard,
		ACP:      s.aggregateACP(),
		Results:  s.pending,
		Prefetch: prefetch,
	}
	s.pending = nil
	s.fetches++
	return args
}

// launchPrefetchLocked starts an asynchronous Prefetch fetch if the
// pipeline is idle. The root answers immediately — possibly with an
// empty reply — so this never parks. Callers hold mu.
func (s *Submaster) launchPrefetchLocked() {
	if s.fetching || s.rootDone || s.gathered < s.workers {
		return
	}
	s.fetching = true
	args := s.takeFetchArgs(true)
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		var reply exec.ChunkReply
		err := s.root.Call(args, &reply)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.fetching = false
		if err != nil {
			// The results rode on this call; without knowing whether the
			// root got them, the run cannot continue safely.
			s.rootErr = err
		} else {
			s.absorbReplyLocked(reply)
		}
		s.cond.Broadcast()
	}()
}

// blockingFetchLocked performs a plain (parkable) fetch, dropping mu
// for the duration of the RPC. Only called when the shard is quiescent
// — see the type comment for why that makes parking at the root safe.
// Callers hold mu; it is held again on return.
func (s *Submaster) blockingFetchLocked() error {
	s.fetching = true
	args := s.takeFetchArgs(false)
	s.mu.Unlock()
	var reply exec.ChunkReply
	err := s.root.Call(args, &reply)
	s.mu.Lock()
	s.fetching = false
	if err != nil {
		s.rootErr = err
		s.cond.Broadcast()
		return err
	}
	s.absorbReplyLocked(reply)
	s.cond.Broadcast()
	return nil
}

// absorbReplyLocked files a root reply; callers hold mu.
func (s *Submaster) absorbReplyLocked(reply exec.ChunkReply) {
	switch {
	case reply.Stop:
		s.rootDone = true
	case reply.Assign.Size > 0:
		s.buffered = append(s.buffered, reply.Assign)
	}
}
