package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PlotSpeedups renders speedup curves as a terminal chart: the y axis
// is S_p (0 at the bottom), the x axis the worker counts, one letter
// per scheme. It is the text analogue of the paper's Figures 4–7.
func PlotSpeedups(title string, curves map[string][]Speedup, height int) string {
	if height < 4 {
		height = 12
	}
	names := make([]string, 0, len(curves))
	maxSp := 1.0
	var ps []int
	for n, c := range curves {
		names = append(names, n)
		for _, pt := range c {
			if pt.Sp > maxSp {
				maxSp = pt.Sp
			}
		}
		if len(c) > len(ps) {
			ps = ps[:0]
			for _, pt := range c {
				ps = append(ps, pt.P)
			}
		}
	}
	sort.Strings(names)
	if len(ps) == 0 {
		return title + "\n(no data)\n"
	}

	const colWidth = 8
	width := colWidth * len(ps)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(sp float64) int {
		r := height - 1 - int(float64(height-1)*sp/maxSp+0.5)
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for idx, name := range names {
		mark := byte('A' + idx%26)
		for i, pt := range curves[name] {
			if i >= len(ps) {
				break
			}
			c := i*colWidth + colWidth/2
			r := row(pt.Sp)
			if grid[r][c] == ' ' {
				grid[r][c] = mark
			} else {
				grid[r][c] = '*' // collision
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(title + "\n")
	for r := 0; r < height; r++ {
		y := maxSp * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&sb, "%5.1f |%s\n", y, string(grid[r]))
	}
	sb.WriteString("      +" + strings.Repeat("-", width) + "\n")
	sb.WriteString("       ")
	for _, p := range ps {
		fmt.Fprintf(&sb, "%-*s", colWidth, fmt.Sprintf("p=%d", p))
	}
	sb.WriteString("\n")
	for idx, name := range names {
		fmt.Fprintf(&sb, "       %c = %s\n", 'A'+idx%26, name)
	}
	return sb.String()
}

// Sparkline renders a numeric series as a compact unicode bar string —
// used for Figure 1's cost distribution in the terminal.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width < 1 || width > len(values) {
		width = len(values)
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	// Downsample by taking window maxima (spikes must stay visible).
	sampled := make([]float64, width)
	for b := range sampled {
		lo := b * len(values) / width
		hi := (b + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := math.Inf(-1)
		for _, v := range values[lo:hi] {
			if v > m {
				m = v
			}
		}
		sampled[b] = m
	}
	maxV := math.Inf(-1)
	minV := math.Inf(1)
	for _, v := range sampled {
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
	}
	var sb strings.Builder
	for _, v := range sampled {
		idx := 0
		if maxV > minV {
			idx = int(float64(len(bars)-1) * (v - minV) / (maxV - minV))
		}
		sb.WriteRune(bars[idx])
	}
	return sb.String()
}
