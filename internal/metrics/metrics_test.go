package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTimesTotalAndString(t *testing.T) {
	tt := Times{Comm: 1.5, Wait: 2.0, Comp: 3.25}
	if tt.Total() != 6.75 {
		t.Errorf("Total = %g", tt.Total())
	}
	if tt.String() != "1.5/2.0/3.2" {
		t.Errorf("String = %q", tt.String())
	}
	// Idle (pipelined runs) counts toward the total and shows up as a
	// fourth cell only when present.
	tt.Idle = 0.25
	if tt.Total() != 7.0 {
		t.Errorf("Total with idle = %g", tt.Total())
	}
	if tt.String() != "1.5/2.0/3.2/+0.2i" {
		t.Errorf("String with idle = %q", tt.String())
	}
}

func TestMeanIdleAndHiddenComm(t *testing.T) {
	serial := Report{PerWorker: []Times{{Comm: 4}, {Comm: 6}}}
	pipelined := Report{PerWorker: []Times{{Idle: 1}, {Comm: 0.5, Idle: 0.5}}}
	if pipelined.MeanIdle() != 0.75 {
		t.Errorf("MeanIdle = %g", pipelined.MeanIdle())
	}
	// serial comm 5, pipelined exposed 0.25+0.75 = 1 → 4 hidden.
	if got := HiddenComm(serial, pipelined); math.Abs(got-4) > 1e-12 {
		t.Errorf("HiddenComm = %g, want 4", got)
	}
	// Never negative.
	if got := HiddenComm(Report{}, pipelined); got != 0 {
		t.Errorf("HiddenComm clamp = %g", got)
	}
}

func TestCompImbalance(t *testing.T) {
	r := Report{PerWorker: []Times{{Comp: 2}, {Comp: 4}, {Comp: 6}}}
	// (6-2)/4 = 1
	if got := r.CompImbalance(); math.Abs(got-1) > 1e-12 {
		t.Errorf("imbalance = %g, want 1", got)
	}
	balanced := Report{PerWorker: []Times{{Comp: 3}, {Comp: 3}}}
	if balanced.CompImbalance() != 0 {
		t.Errorf("balanced imbalance = %g", balanced.CompImbalance())
	}
	single := Report{PerWorker: []Times{{Comp: 3}}}
	if single.CompImbalance() != 0 {
		t.Errorf("single-PE imbalance = %g", single.CompImbalance())
	}
	zero := Report{PerWorker: []Times{{}, {}}}
	if zero.CompImbalance() != 0 {
		t.Errorf("zero-comp imbalance = %g", zero.CompImbalance())
	}
}

func TestCompCV(t *testing.T) {
	r := Report{PerWorker: []Times{{Comp: 1}, {Comp: 1}, {Comp: 1}}}
	if r.CompCV() != 0 {
		t.Errorf("CV of equal comps = %g", r.CompCV())
	}
	r2 := Report{PerWorker: []Times{{Comp: 0}, {Comp: 2}}}
	if got := r2.CompCV(); math.Abs(got-1) > 1e-12 { // σ=1, μ=1
		t.Errorf("CV = %g, want 1", got)
	}
}

func TestMeans(t *testing.T) {
	r := Report{PerWorker: []Times{{Comm: 1, Wait: 2}, {Comm: 3, Wait: 6}}}
	if r.MeanComm() != 2 || r.MeanWait() != 4 {
		t.Errorf("means = %g, %g", r.MeanComm(), r.MeanWait())
	}
	empty := Report{}
	if empty.MeanComm() != 0 || empty.MeanWait() != 0 {
		t.Error("empty means non-zero")
	}
}

func TestSpeedupCurve(t *testing.T) {
	curve := SpeedupCurve(10, map[int]float64{4: 2.5, 1: 10, 2: 5})
	if len(curve) != 3 {
		t.Fatalf("%d points", len(curve))
	}
	// Sorted by p, Sp = 1, 2, 4.
	wantP := []int{1, 2, 4}
	wantS := []float64{1, 2, 4}
	for i, pt := range curve {
		if pt.P != wantP[i] || math.Abs(pt.Sp-wantS[i]) > 1e-12 {
			t.Errorf("point %d = %+v", i, pt)
		}
	}
	// Division by zero is guarded.
	z := SpeedupCurve(10, map[int]float64{1: 0})
	if z[0].Sp != 0 {
		t.Errorf("zero-Tp speedup = %g", z[0].Sp)
	}
}

func TestFormatTable(t *testing.T) {
	reports := []Report{
		{Scheme: "TSS", Tp: 23.6, PerWorker: []Times{
			{Comm: 2.7, Wait: 17.5, Comp: 3.5}, {Comm: 0.9, Wait: 18.8, Comp: 3.7}}},
		{Scheme: "FSS", Tp: 28.1, PerWorker: []Times{{Comm: 0.2, Wait: 0.8, Comp: 3.2}}},
	}
	out := FormatTable("Table 2 (dedicated)", reports)
	for _, want := range []string{"Table 2", "TSS", "FSS", "2.7/17.5/3.5", "23.6", "28.1", "Tp"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Ragged columns render a dash.
	if !strings.Contains(out, "-") {
		t.Errorf("missing filler for ragged report:\n%s", out)
	}
}

func TestFormatSpeedups(t *testing.T) {
	out := FormatSpeedups("Figure 4", map[string][]Speedup{
		"TSS": {{P: 1, Sp: 1}, {P: 2, Sp: 1.4}},
		"FSS": {{P: 1, Sp: 1}, {P: 2, Sp: 1.2}},
	})
	for _, want := range []string{"Figure 4", "p=1", "p=2", "TSS", "FSS", "1.40"} {
		if !strings.Contains(out, want) {
			t.Errorf("speedups missing %q:\n%s", want, out)
		}
	}
}
