// Package metrics defines the measurement vocabulary of the paper's
// evaluation: per-PE communication / waiting / computation time
// breakdowns (Tables 2 and 3), the parallel time T_p, speedup curves
// (Figures 4–7) and load-balance statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"loopsched/internal/telemetry/hist"
)

// Times is one slave's wall-clock decomposition, in seconds:
//
//	Comm — transferring requests, assignments and results
//	Wait — blocked on the master (queueing, scheduling latency) or idle
//	Comp — executing loop iterations
//	Idle — compute loop stalled on an unanswered prefetch (pipelined
//	       runtimes only; the round-trip residue that was NOT hidden
//	       behind computation)
//
// A serial run reports Idle = 0 and its full round-trip under Comm; a
// pipelined run reports Comm ≈ 0 and only the prefetch-miss residue
// under Idle, so Comm(serial) − Idle(pipelined) is the communication
// the overlap managed to hide.
type Times struct {
	Comm float64
	Wait float64
	Comp float64
	Idle float64
}

// Total returns the slave's busy-plus-blocked span.
func (t Times) Total() float64 { return t.Comm + t.Wait + t.Comp + t.Idle }

// String renders the paper's "T_com/T_wait/T_comp" cell format; a
// non-zero Idle (pipelined runs) is appended as a fourth "+Xi" cell.
func (t Times) String() string {
	if t.Idle > 0 {
		return fmt.Sprintf("%.1f/%.1f/%.1f/+%.1fi", t.Comm, t.Wait, t.Comp, t.Idle)
	}
	return fmt.Sprintf("%.1f/%.1f/%.1f", t.Comm, t.Wait, t.Comp)
}

// Report is the outcome of one scheduled loop execution.
type Report struct {
	Scheme   string
	Workload string
	Workers  int
	// PerWorker has one Times entry per slave.
	PerWorker []Times
	// Tp is the parallel execution time measured at the master.
	Tp float64
	// Chunks is the number of scheduling steps (master services).
	Chunks int
	// Iterations actually executed (for coverage asserts).
	Iterations int
	// Replans counts master re-planning events (distributed schemes).
	Replans int
	// Shards, when non-empty, is the per-shard breakdown of a
	// hierarchical (two-level) run: one entry per submaster.
	Shards []ShardStats
	// Steals counts work moved between peers: root-level rebalances in
	// a hierarchical run (tail ranges moved from one shard's partition
	// to another), or chunks stolen between workers under the local
	// work-stealing engine.
	Steals int
	// GrantLatency summarizes the per-chunk request-to-grant wait at
	// the scheduler (p50/p95/p99); CompLatency summarizes each chunk's
	// measured computation time. A backend that does not measure a
	// dimension leaves its Count zero.
	GrantLatency hist.Summary
	CompLatency  hist.Summary
}

// ShardStats is one submaster's slice of a hierarchical run.
type ShardStats struct {
	// Shard is the 0-based shard index.
	Shard int
	// Workers is the number of slaves the submaster drives.
	Workers int
	// Iterations the shard executed.
	Iterations int
	// Chunks is the number of local scheduling steps (submaster grants).
	Chunks int
	// Fetches is the number of super-chunks obtained from the root.
	Fetches int
	// Steals is how many of those fetches were tail ranges stolen from
	// another shard's partition.
	Steals int
	// Comp is the shard's aggregate computation time in seconds.
	Comp float64
	// Finished is when the shard's last worker drained, in seconds from
	// the start of the run (0 when the backend does not measure it).
	Finished float64
}

// CompImbalance returns (max−min)/mean over the per-worker computation
// times: the paper's Table 2 vs Table 3 "well-balanced execution"
// criterion. Zero means perfectly balanced; it is 0 for p < 2.
func (r Report) CompImbalance() float64 {
	if len(r.PerWorker) < 2 {
		return 0
	}
	minC, maxC, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, t := range r.PerWorker {
		if t.Comp < minC {
			minC = t.Comp
		}
		if t.Comp > maxC {
			maxC = t.Comp
		}
		sum += t.Comp
	}
	mean := sum / float64(len(r.PerWorker))
	if mean == 0 {
		return 0
	}
	return (maxC - minC) / mean
}

// CompCV returns the coefficient of variation of computation times.
func (r Report) CompCV() float64 {
	if len(r.PerWorker) < 2 {
		return 0
	}
	var sum float64
	for _, t := range r.PerWorker {
		sum += t.Comp
	}
	mean := sum / float64(len(r.PerWorker))
	if mean == 0 {
		return 0
	}
	var v float64
	for _, t := range r.PerWorker {
		d := t.Comp - mean
		v += d * d
	}
	return math.Sqrt(v/float64(len(r.PerWorker))) / mean
}

// MeanWait returns the average waiting time across slaves.
func (r Report) MeanWait() float64 {
	if len(r.PerWorker) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.PerWorker {
		sum += t.Wait
	}
	return sum / float64(len(r.PerWorker))
}

// MeanComm returns the average communication time across slaves.
func (r Report) MeanComm() float64 {
	if len(r.PerWorker) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.PerWorker {
		sum += t.Comm
	}
	return sum / float64(len(r.PerWorker))
}

// MeanIdle returns the average prefetch-stall time across slaves —
// the part of the master round-trip a pipelined run failed to hide.
func (r Report) MeanIdle() float64 {
	if len(r.PerWorker) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.PerWorker {
		sum += t.Idle
	}
	return sum / float64(len(r.PerWorker))
}

// HiddenComm estimates how much communication time the pipelined run
// `pipelined` hid relative to the serial run `serial` of the same
// problem: the serial exposed overhead (Comm) minus what the pipeline
// still exposes (Comm plus prefetch stalls), clamped at zero.
func HiddenComm(serial, pipelined Report) float64 {
	h := serial.MeanComm() - (pipelined.MeanComm() + pipelined.MeanIdle())
	if h < 0 {
		return 0
	}
	return h
}

// Speedup is one point of a Figures 4–7 curve.
type Speedup struct {
	P  int
	Sp float64
}

// SpeedupCurve computes S_p = T_1 / T_p for a series of runs; t1 is
// the single-PE reference time (the paper uses one fast PE).
func SpeedupCurve(t1 float64, runs map[int]float64) []Speedup {
	ps := make([]int, 0, len(runs))
	for p := range runs {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	curve := make([]Speedup, 0, len(ps))
	for _, p := range ps {
		tp := runs[p]
		sp := 0.0
		if tp > 0 {
			sp = t1 / tp
		}
		curve = append(curve, Speedup{P: p, Sp: sp})
	}
	return curve
}

// FormatTable renders reports in the layout of the paper's Tables 2–3:
// one row per PE with T_com/T_wait/T_comp cells, one column per
// scheme, and a final T_p row.
func FormatTable(title string, reports []Report) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "PE")
	for _, r := range reports {
		fmt.Fprintf(tw, "\t%s", r.Scheme)
	}
	fmt.Fprintln(tw)
	maxP := 0
	for _, r := range reports {
		if len(r.PerWorker) > maxP {
			maxP = len(r.PerWorker)
		}
	}
	for i := 0; i < maxP; i++ {
		fmt.Fprintf(tw, "%d", i+1)
		for _, r := range reports {
			if i < len(r.PerWorker) {
				fmt.Fprintf(tw, "\t%s", r.PerWorker[i])
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "Tp")
	for _, r := range reports {
		fmt.Fprintf(tw, "\t%.1f", r.Tp)
	}
	fmt.Fprintln(tw)
	// The paper argues Table 3's executions are "well-balanced" by
	// eye; the imbalance row quantifies it ((max−min)/mean of T_comp).
	fmt.Fprint(tw, "Imb")
	for _, r := range reports {
		fmt.Fprintf(tw, "\t%.2f", r.CompImbalance())
	}
	fmt.Fprintln(tw)
	// Per-chunk compute latency percentiles, when the backend measured
	// them (milliseconds, p50/p95/p99).
	any := false
	for _, r := range reports {
		if r.CompLatency.Count > 0 {
			any = true
		}
	}
	if any {
		fmt.Fprint(tw, "Lat")
		for _, r := range reports {
			if r.CompLatency.Count == 0 {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f/%.1f/%.1fms",
				r.CompLatency.P50*1e3, r.CompLatency.P95*1e3, r.CompLatency.P99*1e3)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return sb.String()
}

// FormatShards renders the per-shard breakdown of a hierarchical run
// as an aligned table, one row per submaster plus a totals row.
func FormatShards(r Report) string {
	if len(r.Shards) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s: %d workers in %d shards, Tp %.2f s, %d steals\n",
		r.Scheme, r.Workload, r.Workers, len(r.Shards), r.Tp, r.Steals)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shard\tworkers\titers\tchunks\tfetches\tsteals\tcomp\tfinished")
	var total ShardStats
	for _, s := range r.Shards {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
			s.Shard, s.Workers, s.Iterations, s.Chunks, s.Fetches, s.Steals, s.Comp, s.Finished)
		total.Workers += s.Workers
		total.Iterations += s.Iterations
		total.Chunks += s.Chunks
		total.Fetches += s.Fetches
		total.Steals += s.Steals
		total.Comp += s.Comp
		if s.Finished > total.Finished {
			total.Finished = s.Finished
		}
	}
	fmt.Fprintf(tw, "all\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
		total.Workers, total.Iterations, total.Chunks, total.Fetches, total.Steals, total.Comp, total.Finished)
	tw.Flush()
	return sb.String()
}

// FormatSpeedups renders Figures 4–7 as aligned text series, one line
// per scheme.
func FormatSpeedups(title string, curves map[string][]Speedup) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	// Header: p values from the first curve.
	fmt.Fprint(tw, "scheme")
	if len(names) > 0 {
		for _, pt := range curves[names[0]] {
			fmt.Fprintf(tw, "\tp=%d", pt.P)
		}
	}
	fmt.Fprintln(tw)
	for _, n := range names {
		fmt.Fprint(tw, n)
		for _, pt := range curves[n] {
			fmt.Fprintf(tw, "\t%.2f", pt.Sp)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return sb.String()
}
