package metrics

import (
	"strings"
	"testing"
)

func TestPlotSpeedups(t *testing.T) {
	out := PlotSpeedups("Figure 6", map[string][]Speedup{
		"DTSS":  {{P: 1, Sp: 1}, {P: 2, Sp: 1.3}, {P: 4, Sp: 2.2}, {P: 8, Sp: 4.1}},
		"TreeS": {{P: 1, Sp: 1}, {P: 2, Sp: 1.3}, {P: 4, Sp: 2.6}, {P: 8, Sp: 4.4}},
	}, 10)
	for _, want := range []string{"Figure 6", "p=1", "p=8", "A = DTSS", "B = TreeS", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The p=1 points of both curves collide at Sp=1 → a '*'.
	if !strings.Contains(out, "*") {
		t.Errorf("collision marker missing:\n%s", out)
	}
	// Monotone curve: DTSS's p=8 mark sits above its p=1 mark.
	lines := strings.Split(out, "\n")
	rowOf := func(mark byte, col int) int {
		for r, line := range lines {
			if idx := strings.IndexByte(line, '|'); idx >= 0 && len(line) > idx+col+1 {
				if line[idx+1+col] == mark || line[idx+1+col] == '*' {
					return r
				}
			}
		}
		return -1
	}
	p1 := rowOf('A', 4)  // first column centre
	p8 := rowOf('A', 28) // fourth column centre
	if p1 >= 0 && p8 >= 0 && p8 >= p1 {
		t.Errorf("p=8 mark (row %d) not above p=1 (row %d):\n%s", p8, p1, out)
	}
	// Degenerate input.
	if out := PlotSpeedups("x", nil, 5); !strings.Contains(out, "no data") {
		t.Error("empty plot not reported")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("width %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("scale wrong: %s", s)
	}
	// Downsampling keeps spikes.
	vals := make([]float64, 100)
	vals[50] = 10
	spark := []rune(Sparkline(vals, 10))
	if spark[5] != '█' {
		t.Errorf("spike lost: %s", string(spark))
	}
	if Sparkline(nil, 5) != "" {
		t.Error("empty series produced output")
	}
	// Constant series renders the lowest bar everywhere.
	flat := []rune(Sparkline([]float64{2, 2, 2}, 3))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series: %s", string(flat))
		}
	}
}
