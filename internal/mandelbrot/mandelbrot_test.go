package mandelbrot

import (
	"testing"
	"testing/quick"

	"loopsched/internal/workload"
)

func TestIterationsKnownPoints(t *testing.T) {
	// The origin is in the set: never escapes.
	if n := Iterations(0, 0, 100); n != 100 {
		t.Errorf("origin escaped after %d", n)
	}
	// c = -1 is in the set (period-2 cycle).
	if n := Iterations(-1, 0, 500); n != 500 {
		t.Errorf("-1 escaped after %d", n)
	}
	// c = 2 escapes immediately: z1 = 2, |z1| = 2 (not yet >2),
	// z2 = 6 → escape at iteration 2.
	if n := Iterations(2, 0, 100); n != 2 {
		t.Errorf("c=2 escaped after %d, want 2", n)
	}
	// Far outside: escapes fast.
	if n := Iterations(10, 10, 100); n > 1 {
		t.Errorf("far point took %d iterations", n)
	}
}

// TestEscapeRadiusProperty: points with |c| > 2 always escape within
// two iterations; escape count is always in [0, maxIter].
func TestEscapeRadiusProperty(t *testing.T) {
	f := func(a, b int8) bool {
		cx := float64(a) / 8
		cy := float64(b) / 8
		n := Iterations(cx, cy, 300)
		if n < 0 || n > 300 {
			return false
		}
		if cx*cx+cy*cy > 4 && n > 2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestColumnConsistency(t *testing.T) {
	p := Params{Region: PaperRegion, Width: 64, Height: 48, MaxIter: 80}
	rows, work := Column(p, 30)
	if len(rows) != 48 {
		t.Fatalf("rows = %d", len(rows))
	}
	sum := 0
	for _, n := range rows {
		sum += n
	}
	if sum != work {
		t.Errorf("work %d != sum %d", work, sum)
	}
	if cw := ColumnWork(p, 30); cw != work {
		t.Errorf("ColumnWork %d != Column work %d", cw, work)
	}
}

func TestColumnCostsIrregular(t *testing.T) {
	p := Params{Region: PaperRegion, Width: 120, Height: 100, MaxIter: 120}
	costs := ColumnCosts(p)
	if len(costs) != 120 {
		t.Fatalf("len = %d", len(costs))
	}
	w := workload.FromCosts{Costs: costs}
	st := workload.Describe(w, 0)
	// Every column costs at least Height (one iteration per pixel).
	if st.Min < 100 {
		t.Errorf("min column cost %g < height", st.Min)
	}
	// The profile must be genuinely irregular: the paper reports a
	// 1 200 → 56 000 spread (≈ 47×) on its window; we require ≥ 5×.
	if st.Max < 5*st.Min {
		t.Errorf("profile too flat: min %g max %g", st.Min, st.Max)
	}
	// Interior columns (the set) are the expensive ones.
	mid := costs[len(costs)*2/3] // x ≈ 0.16... inside-ish region
	edge := costs[0]             // x = −2, all points escape fast
	if mid < edge {
		t.Errorf("interior column (%g) cheaper than edge (%g)", mid, edge)
	}
}

// TestReorderFlattensMandelbrot is Figure 1 in miniature: sampling
// reordering with S_f = 4 must reduce the windowed imbalance of the
// real Mandelbrot cost profile.
func TestReorderFlattensMandelbrot(t *testing.T) {
	p := Params{Region: PaperRegion, Width: 240, Height: 80, MaxIter: 100}
	w := workload.FromCosts{Label: "mandel", Costs: ColumnCosts(p)}
	window := 240 / 8
	before := workload.Describe(w, window).WindowCV
	after := workload.Describe(workload.Reorder(w, 4), window).WindowCV
	if after >= before {
		t.Errorf("S_f=4 did not flatten mandelbrot: CV %g → %g", before, after)
	}
}

func TestRender(t *testing.T) {
	p := Params{Region: PaperRegion, Width: 64, Height: 64, MaxIter: 60}
	img := Render(p)
	b := img.Bounds()
	if b.Dx() != 64 || b.Dy() != 64 {
		t.Fatalf("bounds %v", b)
	}
	// Some pixels inside the set (black), some outside (light).
	black, light := 0, 0
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			switch v := img.GrayAt(x, y).Y; {
			case v == 0:
				black++
			case v > 200:
				light++
			}
		}
	}
	if black == 0 || light == 0 {
		t.Errorf("degenerate image: %d black, %d light", black, light)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{Region: PaperRegion, Width: 10, Height: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{Region: PaperRegion, Width: 0, Height: 10},
		{Region: PaperRegion, Width: 10, Height: -1},
		{Region: Region{XMin: 1, XMax: 0, YMin: 0, YMax: 1}, Width: 10, Height: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if (Params{}).maxIter() != DefaultMaxIter {
		t.Error("default MaxIter not applied")
	}
}

// TestRenderColumnsMatchesRender: assembling shaded columns must give
// exactly the image the serial renderer produces.
func TestRenderColumnsMatchesRender(t *testing.T) {
	p := Params{Region: PaperRegion, Width: 48, Height: 36, MaxIter: 60}
	columns := make([][]byte, p.Width)
	for c := range columns {
		columns[c] = ShadedColumn(p, c)
	}
	got := RenderColumns(p, columns)
	want := Render(p)
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d differs: %d vs %d", i, got.Pix[i], want.Pix[i])
		}
	}
	// Missing columns stay black, out-of-range data is ignored.
	partial := RenderColumns(p, columns[:10])
	if partial.Pix[p.Width-1] != 0 {
		t.Error("missing column not black")
	}
}

func TestShade(t *testing.T) {
	if Shade(100, 100).Y != 0 {
		t.Error("inside-set pixel not black")
	}
	if Shade(0, 100).Y != 255 {
		t.Error("instant escape not white")
	}
	if a, b := Shade(10, 100).Y, Shade(90, 100).Y; a <= b {
		t.Errorf("shade not monotone: %d vs %d", a, b)
	}
}
