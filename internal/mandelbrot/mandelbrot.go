// Package mandelbrot implements the paper's test problem: the
// escape-time Mandelbrot set computation on
// [-2.0, 1.25] × [-1.25, 1.25]. The computation of one image column is
// the smallest schedulable unit (a loop iteration), and the per-column
// iteration counts form the irregular cost profile of Figure 1.
package mandelbrot

import (
	"fmt"
	"image"
	"image/color"
)

// Region is an axis-aligned window of the complex plane.
type Region struct {
	XMin, XMax float64
	YMin, YMax float64
}

// PaperRegion is the domain used throughout the paper's experiments.
var PaperRegion = Region{XMin: -2.0, XMax: 1.25, YMin: -1.25, YMax: 1.25}

// Params describe one rendering job.
type Params struct {
	Region  Region
	Width   int // columns — the parallel loop's iteration count
	Height  int // rows — the serial inner loop
	MaxIter int // escape-time bound; 0 means DefaultMaxIter
}

// DefaultMaxIter keeps Figure-1-scale irregularity (the paper reports
// per-column basic-operation counts from 1 200 up to 56 000 on a
// 1200×1200 window, i.e. roughly Height … 47·Height).
const DefaultMaxIter = 160

func (p Params) maxIter() int {
	if p.MaxIter <= 0 {
		return DefaultMaxIter
	}
	return p.MaxIter
}

// Validate reports whether the parameters describe a real job.
func (p Params) Validate() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("mandelbrot: window %dx%d must be positive", p.Width, p.Height)
	}
	if p.Region.XMax <= p.Region.XMin || p.Region.YMax <= p.Region.YMin {
		return fmt.Errorf("mandelbrot: empty region %+v", p.Region)
	}
	return nil
}

// X returns the real coordinate of column c.
func (p Params) X(c int) float64 {
	return p.Region.XMin + (p.Region.XMax-p.Region.XMin)*float64(c)/float64(p.Width)
}

// Y returns the imaginary coordinate of row r.
func (p Params) Y(r int) float64 {
	return p.Region.YMin + (p.Region.YMax-p.Region.YMin)*float64(r)/float64(p.Height)
}

// Iterations runs the escape-time kernel at point (cx, cy) and returns
// the number of iterations executed (maxIter if the point never
// escaped |z| > 2). This count is the "basic computation" unit of
// Figure 1.
func Iterations(cx, cy float64, maxIter int) int {
	var zx, zy float64
	for i := 0; i < maxIter; i++ {
		zx2, zy2 := zx*zx, zy*zy
		if zx2+zy2 > 4 {
			return i
		}
		zx, zy = zx2-zy2+cx, 2*zx*zy+cy
	}
	return maxIter
}

// Column computes one column: it returns the per-row iteration counts
// and the column's total work (the sum of counts — what a scheduler's
// chunk actually costs).
func Column(p Params, c int) (rows []int, work int) {
	maxIter := p.maxIter()
	cx := p.X(c)
	rows = make([]int, p.Height)
	for r := 0; r < p.Height; r++ {
		n := Iterations(cx, p.Y(r), maxIter)
		rows[r] = n
		work += n
	}
	return rows, work
}

// ColumnWork computes only the column's total work, without
// materialising the per-row counts.
func ColumnWork(p Params, c int) int {
	maxIter := p.maxIter()
	cx := p.X(c)
	work := 0
	for r := 0; r < p.Height; r++ {
		work += Iterations(cx, p.Y(r), maxIter)
	}
	return work
}

// ColumnCosts returns the full per-column cost profile — the data
// behind Figure 1(a). The result has Width entries; entry c is the
// total iteration count of column c.
func ColumnCosts(p Params) []float64 {
	costs := make([]float64, p.Width)
	for c := 0; c < p.Width; c++ {
		costs[c] = float64(ColumnWork(p, c))
	}
	return costs
}

// Render computes the whole image (columns in any order produce the
// same picture — the loop is parallel). The palette maps escape time
// to a grey ramp with the set itself black, matching Figure 2's look.
func Render(p Params) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, p.Width, p.Height))
	maxIter := p.maxIter()
	for c := 0; c < p.Width; c++ {
		rows, _ := Column(p, c)
		for r, n := range rows {
			img.SetGray(c, r, Shade(n, maxIter))
		}
	}
	return img
}

// RenderColumns assembles an image from per-column pixel rows, the
// form produced by distributed renderers (one []byte of shaded pixels
// per column). Columns may be nil (left black).
func RenderColumns(p Params, columns [][]byte) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, p.Width, p.Height))
	for c := 0; c < p.Width && c < len(columns); c++ {
		col := columns[c]
		for r := 0; r < p.Height && r < len(col); r++ {
			img.Pix[r*img.Stride+c] = col[r]
		}
	}
	return img
}

// ShadedColumn computes one column and shades it into pixel bytes —
// the kernel distributed renderers hand to their workers.
func ShadedColumn(p Params, c int) []byte {
	maxIter := p.maxIter()
	rows, _ := Column(p, c)
	out := make([]byte, len(rows))
	for r, n := range rows {
		out[r] = Shade(n, maxIter).Y
	}
	return out
}

// Shade maps an escape count to a pixel.
func Shade(n, maxIter int) color.Gray {
	if n >= maxIter {
		return color.Gray{Y: 0} // inside the set
	}
	// Sqrt-ish ramp: early escapes are light, late escapes darker.
	v := 255 - int(200*float64(n)/float64(maxIter))
	return color.Gray{Y: uint8(v)}
}
