package experiments

import (
	"strings"
	"testing"

	"loopsched/internal/metrics"
	"loopsched/internal/workload"
)

func TestTable1Golden(t *testing.T) {
	out := Table1()
	// Spot-check the rows against the paper.
	for _, want := range []string{
		"S      250 250 250 250",
		"GSS    250 188 141 106 79 59 45 33 25 19 14 11 8 6 4 3 3 2 1 1 1 1",
		"TSS    125 117 109 101 93 85 77 69 61 53 45 37 29 21 13 5",
		"FISS   50 50 50 50 83 83 83 83 117 117 117 117",
		"TFSS   113 113 113 113 81 81 81 81 49 49 49 49 17 17 17 17",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	// FSS row: 125×4 62×4 … 1×4.
	if !strings.Contains(out, "125 125 125 125 62 62 62 62 32 32 32 32") {
		t.Errorf("FSS row wrong:\n%s", out)
	}
}

func TestClusterMixes(t *testing.T) {
	for _, c := range []struct{ p, fast, slow int }{
		{1, 1, 0}, {2, 1, 1}, {4, 2, 2}, {8, 3, 5},
	} {
		cl := Cluster(c.p, false)
		if len(cl.Machines) != c.p {
			t.Fatalf("p=%d: %d machines", c.p, len(cl.Machines))
		}
		fast := 0
		for _, m := range cl.Machines {
			if m.Power == 3 {
				fast++
			}
		}
		if fast != c.fast {
			t.Errorf("p=%d: %d fast machines, want %d", c.p, fast, c.fast)
		}
	}
	// Non-dedicated p=8: exactly 4 machines are overloaded (1 fast,
	// 3 slow per section 5.1).
	cl := Cluster(8, true)
	loadedFast, loadedSlow := 0, 0
	for _, m := range cl.Machines {
		if len(m.Load) > 0 {
			if m.Power == 3 {
				loadedFast++
			} else {
				loadedSlow++
			}
		}
	}
	if loadedFast != 1 || loadedSlow != 3 {
		t.Errorf("overloaded: %d fast, %d slow; want 1, 3", loadedFast, loadedSlow)
	}
}

func TestFigure1Shape(t *testing.T) {
	cfg := Small()
	orig, reord := Figure1(cfg)
	if len(orig) != cfg.Width || len(reord) != cfg.Width {
		t.Fatalf("series lengths %d, %d", len(orig), len(reord))
	}
	// Same multiset of costs.
	var so, sr float64
	for i := range orig {
		so += orig[i]
		sr += reord[i]
	}
	if so != sr {
		t.Errorf("totals differ: %g vs %g", so, sr)
	}
	// Reordering flattens the windowed imbalance.
	before := workload.Describe(workload.FromCosts{Costs: orig}, cfg.Width/8).WindowCV
	after := workload.Describe(workload.FromCosts{Costs: reord}, cfg.Width/8).WindowCV
	if after >= before {
		t.Errorf("reorder failed to flatten: %g → %g", before, after)
	}
}

func TestTables2And3Shapes(t *testing.T) {
	cfg := Small()
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Dedicated) != 5 || len(t3.Dedicated) != 5 {
		t.Fatalf("column counts: %d, %d", len(t2.Dedicated), len(t3.Dedicated))
	}

	minTp := func(reps []metrics.Report) float64 {
		m := reps[0].Tp
		for _, r := range reps {
			if r.Tp < m {
				m = r.Tp
			}
		}
		return m
	}
	// Headline: the best distributed scheme beats the best simple
	// scheme, in both modes (paper: 23.6→13.4 and 27.8→16.6).
	if minTp(t3.Dedicated) >= minTp(t2.Dedicated) {
		t.Errorf("dedicated: best distributed Tp %.2f not below best simple %.2f",
			minTp(t3.Dedicated), minTp(t2.Dedicated))
	}
	if minTp(t3.NonDedicated) >= minTp(t2.NonDedicated) {
		t.Errorf("non-dedicated: best distributed Tp %.2f not below best simple %.2f",
			minTp(t3.NonDedicated), minTp(t2.NonDedicated))
	}
	// Distributed schemes cut the waiting time (paper: "the
	// communication/waiting times are much reduced compared to the
	// Simple schemes").
	meanWait := func(reps []metrics.Report) float64 {
		var s float64
		for _, r := range reps[:4] { // exclude TreeS
			s += r.MeanWait()
		}
		return s / 4
	}
	if meanWait(t3.Dedicated) >= meanWait(t2.Dedicated) {
		t.Errorf("dedicated wait not reduced: %.2f vs %.2f",
			meanWait(t3.Dedicated), meanWait(t2.Dedicated))
	}
	// Formatting smoke test.
	out := t2.Format() + t3.Format()
	for _, want := range []string{"Table 2", "Table 3", "TSS", "DTSS", "TreeS", "Tp"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted tables missing %q", want)
		}
	}
}

func TestFiguresShapes(t *testing.T) {
	cfg := Small()
	for _, num := range []int{4, 5, 6, 7} {
		fig, err := Figure(num, cfg)
		if err != nil {
			t.Fatalf("figure %d: %v", num, err)
		}
		if len(fig.Curves) != 5 {
			t.Fatalf("figure %d: %d curves", num, len(fig.Curves))
		}
		for name, curve := range fig.Curves {
			if len(curve) != len(SpeedupPs) {
				t.Fatalf("figure %d %s: %d points", num, name, len(curve))
			}
			if curve[0].Sp != 1 {
				t.Errorf("figure %d %s: Sp(1) = %.2f", num, name, curve[0].Sp)
			}
			last := curve[len(curve)-1]
			if last.Sp <= 0 {
				t.Errorf("figure %d %s: Sp(8) = %.2f", num, name, last.Sp)
			}
			// Power bounds: dedicated figures are bounded by
			// 14/3 ≈ 4.67 (Fig 6's "S_p ≤ 4.5"); the non-dedicated
			// base T_1 runs on an overloaded fast PE (half speed), so
			// its bound is ≈ 2·11/3 ≈ 7.3 (the paper quotes S_p ≤ 6
			// for Fig 7 with its slightly different load mix).
			bound := 4.7
			if num == 5 || num == 7 {
				bound = 7.4
			}
			if last.Sp > bound {
				t.Errorf("figure %d %s: Sp(8) = %.2f exceeds the power bound %.1f", num, name, last.Sp, bound)
			}
		}
	}
}

// TestFigure6DistributedScales: in the dedicated distributed figure,
// DTSS's speedup grows with p and ends above 2 (the paper's Fig 6
// shows ≈3–4 at p=8 against a 4.5 bound).
func TestFigure6DistributedScales(t *testing.T) {
	fig, err := Figure(6, Small())
	if err != nil {
		t.Fatal(err)
	}
	dtss := fig.Curves["DTSS"]
	for i := 1; i < len(dtss); i++ {
		if dtss[i].Sp < dtss[i-1].Sp-0.15 {
			t.Errorf("DTSS speedup regressed: %+v", dtss)
			break
		}
	}
	if dtss[len(dtss)-1].Sp < 2 {
		t.Errorf("DTSS Sp(8) = %.2f, want > 2", dtss[len(dtss)-1].Sp)
	}
}

func TestFigureBadNumber(t *testing.T) {
	if _, err := Figure(3, Small()); err == nil {
		t.Error("figure 3 accepted")
	}
}

// TestPaperScaleHeadline pins the paper's central claims at the full
// 4000×2000 configuration (the exact numbers live in
// results/baseline-default.json; this asserts the orderings).
// Runtime ≈ 1.5 s; skipped under -short.
func TestPaperScaleHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	cfg := Default()
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tpOf := func(reps []metrics.Report, scheme string) float64 {
		for _, r := range reps {
			if r.Scheme == scheme {
				return r.Tp
			}
		}
		t.Fatalf("scheme %s missing", scheme)
		return 0
	}
	// "TSS performed best, followed by TFSS" among the paper's
	// centralized simple schemes (Table 2, dedicated).
	tss, tfss := tpOf(t2.Dedicated, "TSS"), tpOf(t2.Dedicated, "TFSS")
	fss, fiss := tpOf(t2.Dedicated, "FSS"), tpOf(t2.Dedicated, "FISS")
	for _, worse := range []float64{fss, fiss} {
		if tss >= worse || tfss >= worse {
			t.Errorf("TSS/TFSS (%.1f/%.1f) not leading FSS/FISS (%.1f/%.1f)",
				tss, tfss, fss, fiss)
		}
	}
	// DTSS best among the distributed schemes, both modes ("The DTSS
	// and DFISS were the most efficient": DTSS leads in both tables).
	for _, reps := range [][]metrics.Report{t3.Dedicated, t3.NonDedicated} {
		dtss := tpOf(reps, "DTSS")
		for _, other := range []string{"DFSS", "DFISS", "DTFSS"} {
			if dtss >= tpOf(reps, other) {
				t.Errorf("DTSS %.1f not below %s %.1f", dtss, other, tpOf(reps, other))
			}
		}
	}
	// Every distributed scheme beats its simple counterpart in
	// non-dedicated mode — the reason the schemes exist.
	for _, pair := range [][2]string{{"DTSS", "TSS"}, {"DFSS", "FSS"}, {"DFISS", "FISS"}, {"DTFSS", "TFSS"}} {
		d, s := tpOf(t3.NonDedicated, pair[0]), tpOf(t2.NonDedicated, pair[1])
		if d >= s {
			t.Errorf("non-dedicated: %s %.1f not below %s %.1f", pair[0], d, pair[1], s)
		}
	}
}

// TestOverlapStudy: both faces of the pipelined protocol show up. In
// the heavy-results regime it hides communication and beats the serial
// protocol for several schemes; in every regime iterations are
// conserved and hidden communication is non-negative.
func TestOverlapStudy(t *testing.T) {
	res, err := Overlap(Small())
	if err != nil {
		t.Fatal(err)
	}
	nSchemes := len(SimpleSchemes()) + len(DistributedSchemes())
	if len(res) != nSchemes*len(OverlapPayloadMults) {
		t.Fatalf("%d rows", len(res))
	}
	var hidden float64
	wins := 0
	for _, o := range res {
		if o.Pipelined.Iterations != o.Serial.Iterations {
			t.Errorf("%s ×%g: iterations %d vs %d",
				o.Scheme, o.PayloadMult, o.Pipelined.Iterations, o.Serial.Iterations)
		}
		if o.Hidden() < 0 {
			t.Errorf("%s ×%g: negative hidden comm", o.Scheme, o.PayloadMult)
		}
		if o.PayloadMult > 1 {
			hidden += o.Hidden()
			if o.Pipelined.Tp < o.Serial.Tp {
				wins++
			}
		}
	}
	if hidden <= 0 {
		t.Error("no communication hidden in the heavy-results regime")
	}
	if wins < 2 {
		t.Errorf("pipelined beat serial for only %d schemes in the heavy-results regime", wins)
	}
	out := FormatOverlap(res)
	for _, want := range []string{"Overlap study", "TSS", "hidden", "×128"} {
		if !strings.Contains(out, want) {
			t.Errorf("overlap table missing %q:\n%s", want, out)
		}
	}
}

// TestScalingStudy: speedup keeps growing to p=16 for the distributed
// schemes, but each extra slave buys less (master/communication
// saturation), and no point beats the power bound.
func TestScalingStudy(t *testing.T) {
	fig, err := ScalingStudy(Small(), DistributedSchemes()[:2], []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for name, curve := range fig.Curves {
		if len(curve) != 3 {
			t.Fatalf("%s: %d points", name, len(curve))
		}
		if curve[0].Sp != 1 {
			t.Errorf("%s: Sp(1) = %.2f", name, curve[0].Sp)
		}
		if curve[2].Sp <= curve[0].Sp {
			t.Errorf("%s: no scaling at all: %+v", name, curve)
		}
		// Power bound at p=16: mix(16) = 6 fast + 10 slow → 28/3 ≈ 9.3.
		if curve[2].Sp > 9.4 {
			t.Errorf("%s: Sp(16) = %.2f beats the power bound", name, curve[2].Sp)
		}
		// Diminishing returns: efficiency at 16 below efficiency at 4.
		eff4 := curve[1].Sp / 4
		eff16 := curve[2].Sp / 16
		if eff16 >= eff4 {
			t.Errorf("%s: efficiency grew with p (%.2f → %.2f)?", name, eff4, eff16)
		}
	}
}
