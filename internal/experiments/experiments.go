// Package experiments reproduces every table and figure of the
// paper's evaluation on the simulated cluster: Table 1 (chunk-size
// sequences), Tables 2–3 (per-PE time breakdowns for the simple and
// distributed schemes), Figure 1 (Mandelbrot cost distribution,
// original vs reordered) and Figures 4–7 (speedup curves). The same
// entry points back cmd/experiments and the root bench suite.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"loopsched/internal/mandelbrot"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/tree"
	"loopsched/internal/workload"
)

// Config sizes one reproduction run.
type Config struct {
	// Width and Height are the Mandelbrot window (the paper's main
	// experiment uses 4000×2000).
	Width, Height int
	// MaxIter bounds the escape-time kernel.
	MaxIter int
	// Sf is the sampling-reorder frequency (the paper uses 4).
	Sf int
	// BaseRate is the simulated power-1 throughput in work units per
	// second.
	BaseRate float64
}

// Default returns the paper-scale configuration (section 6.1). The
// base rate is calibrated so one column costs a slow PE ≈ 50 ms,
// which puts T_p in the paper's tens-of-seconds range and makes a
// mid-run TSS chunk on a slow PE the multi-second critical chunk the
// paper's Table 2 waits reveal.
func Default() Config {
	return Config{Width: 4000, Height: 2000, MaxIter: 160, Sf: 4, BaseRate: 1.2e6}
}

// Small returns a fast configuration with the same shape, for tests:
// the per-column compute time matches Default (so comm/compute ratios
// carry over) with 10× fewer columns.
func Small() Config {
	return Config{Width: 400, Height: 160, MaxIter: 120, Sf: 4, BaseRate: 9.6e4}
}

func (c Config) params() mandelbrot.Params {
	return mandelbrot.Params{
		Region:  mandelbrot.PaperRegion,
		Width:   c.Width,
		Height:  c.Height,
		MaxIter: c.MaxIter,
	}
}

// costCache memoises the expensive per-column cost profiles.
var costCache sync.Map // mandelbrot.Params -> []float64

func columnCosts(p mandelbrot.Params) []float64 {
	if v, ok := costCache.Load(p); ok {
		return v.([]float64)
	}
	costs := mandelbrot.ColumnCosts(p)
	costCache.Store(p, costs)
	return costs
}

// Workload builds the paper's scheduling workload: Mandelbrot columns
// reordered with the sampling frequency.
func (c Config) Workload() workload.Workload {
	base := workload.FromCosts{
		Label: fmt.Sprintf("mandelbrot(%dx%d)", c.Width, c.Height),
		Costs: columnCosts(c.params()),
	}
	if c.Sf <= 1 {
		return base
	}
	return workload.Reorder(base, c.Sf)
}

// SimParams returns the simulator protocol parameters scaled to the
// configuration: one column's results are 2 bytes per pixel row.
func (c Config) SimParams() sim.Params {
	return sim.Params{
		BaseRate:     c.BaseRate,
		BytesPerIter: float64(2 * c.Height),
	}
}

// fastMachine and slowMachine follow section 5.1: the fast class has
// 3× the power of the slow class (UltraSPARC 10 vs UltraSPARC 1) and a
// 100 Mbit link versus the slow class's 10 Mbit.
func fastMachine() sim.Machine {
	return sim.Machine{Name: "fast", Power: 3,
		Link: sim.Link{Latency: 0.0002, Bandwidth: sim.Mbit100}}
}

func slowMachine() sim.Machine {
	return sim.Machine{Name: "slow", Power: 1,
		Link: sim.Link{Latency: 0.001, Bandwidth: sim.Mbit10}}
}

// mix returns the paper's machine mixes per worker count: p=1 → 1
// fast; p=2 → 1 fast + 1 slow; p=4 → 2 fast + 2 slow; p=8 → 3 fast +
// 5 slow. Other p interpolate (≈3/8 fast).
func mix(p int) (nFast, nSlow int) {
	switch p {
	case 1:
		return 1, 0
	case 2:
		return 1, 1
	case 4:
		return 2, 2
	case 8:
		return 3, 5
	default:
		nFast = (3*p + 7) / 8
		if nFast < 1 {
			nFast = 1
		}
		return nFast, p - nFast
	}
}

// overloaded returns the indices of the PEs that receive an external
// process in the non-dedicated experiments (section 5.1's list).
func overloaded(p int) []int {
	nFast, _ := mix(p)
	switch p {
	case 1:
		return []int{0} // 1 fast
	case 2:
		return []int{0, 1} // 1 fast and 1 slow
	case 4:
		return []int{0, nFast} // 1 fast and 1 slow
	case 8:
		return []int{0, nFast, nFast + 1, nFast + 2} // 1 fast and 3 slow
	default:
		return []int{0}
	}
}

// Cluster builds the simulated testbed for p slaves.
func Cluster(p int, nondedicated bool) sim.Cluster {
	nFast, nSlow := mix(p)
	var ms []sim.Machine
	for i := 0; i < nFast; i++ {
		ms = append(ms, fastMachine())
	}
	for i := 0; i < nSlow; i++ {
		ms = append(ms, slowMachine())
	}
	if nondedicated {
		for _, idx := range overloaded(p) {
			if idx < len(ms) {
				ms[idx].Load = sim.LoadScript{{Start: 0, End: math.Inf(1), Extra: 1}}
			}
		}
	}
	return sim.Cluster{Machines: ms}
}

// SimpleSchemes are the Table 2 columns (TreeS is run separately).
func SimpleSchemes() []sched.Scheme {
	return []sched.Scheme{
		sched.TSSScheme{},
		sched.FSSScheme{},
		sched.FISSScheme{},
		sched.TFSSScheme{},
	}
}

// DistributedSchemes are the Table 3 columns (TreeS again separate).
func DistributedSchemes() []sched.Scheme {
	return []sched.Scheme{
		sched.DTSSScheme{},
		sched.NewDFSS(),
		sched.NewDFISS(0),
		sched.NewDTFSS(),
	}
}

// Table1 renders the chunk-size table for I = 1000, p = 4 exactly as
// the paper prints it (nominal sequences; the TSS and TFSS rows show
// the whole trapezoid).
func Table1() string {
	const i, p = 1000, 4
	var sb strings.Builder
	sb.WriteString("Table 1: sample chunk sizes for I = 1000 and p = 4\n")
	row := func(name string, seq []int) {
		fmt.Fprintf(&sb, "%-6s", name)
		for _, c := range seq {
			fmt.Fprintf(&sb, " %d", c)
		}
		sb.WriteByte('\n')
	}
	static, _ := sched.Sequence(sched.StaticScheme{}, i, p)
	row("S", static)
	row("SS", []int{1, 1, 1, 1, 1}) // "1 1 1 1 1 …" — elided like the paper
	sb.WriteString("CSS    k k k k ...\n")
	gss, _ := sched.NominalSequence(sched.GSSScheme{}, i, p)
	row("GSS", gss)
	row("TSS", sched.TrapezoidNominal(i, p))
	fss, _ := sched.Sequence(sched.FSSScheme{}, i, p)
	row("FSS", fss)
	fiss, _ := sched.Sequence(sched.FISSScheme{}, i, p)
	row("FISS", fiss)
	row("TFSS", sched.TFSSNominal(i, p))
	return sb.String()
}

// TableResult bundles one table's dedicated and non-dedicated halves.
type TableResult struct {
	Title                   string
	Dedicated, NonDedicated []metrics.Report
}

// Format renders the table in the paper's layout.
func (t TableResult) Format() string {
	return metrics.FormatTable(t.Title+" — Dedicated", t.Dedicated) +
		metrics.FormatTable(t.Title+" — NonDedicated", t.NonDedicated)
}

func runSet(cfg Config, p int, nondedicated bool, schemes []sched.Scheme, weightedTree bool) ([]metrics.Report, error) {
	c := Cluster(p, nondedicated)
	w := cfg.Workload()
	var out []metrics.Report
	for _, s := range schemes {
		rep, err := sim.Run(c, s, w, cfg.SimParams())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		out = append(out, rep)
	}
	treeRep, err := tree.Run(c, tree.Options{Weighted: weightedTree}, w, cfg.SimParams())
	if err != nil {
		return nil, fmt.Errorf("TreeS: %w", err)
	}
	out = append(out, treeRep)
	return out, nil
}

// Table2 reproduces the simple-scheme breakdown at p = 8.
func Table2(cfg Config) (TableResult, error) {
	return tableN(cfg, "Table 2: Simple Schemes, p = 8 (T_com/T_wait/T_comp sec)", SimpleSchemes(), false)
}

// Table3 reproduces the distributed-scheme breakdown at p = 8.
func Table3(cfg Config) (TableResult, error) {
	return tableN(cfg, "Table 3: Distributed Schemes, p = 8 (T_com/T_wait/T_comp sec)", DistributedSchemes(), true)
}

func tableN(cfg Config, title string, schemes []sched.Scheme, weightedTree bool) (TableResult, error) {
	ded, err := runSet(cfg, 8, false, schemes, weightedTree)
	if err != nil {
		return TableResult{}, err
	}
	non, err := runSet(cfg, 8, true, schemes, weightedTree)
	if err != nil {
		return TableResult{}, err
	}
	return TableResult{Title: title, Dedicated: ded, NonDedicated: non}, nil
}

// OverlapResult compares the serial request–reply protocol with the
// pipelined, double-buffered one for a single scheme on the same
// cluster and workload. PayloadMult scales the per-iteration result
// size relative to the paper's 2·Height bytes per column.
type OverlapResult struct {
	Scheme      string
	PayloadMult float64
	Serial      metrics.Report
	Pipelined   metrics.Report
}

// Hidden returns the communication time per PE the pipeline hid.
func (o OverlapResult) Hidden() float64 {
	return metrics.HiddenComm(o.Serial, o.Pipelined)
}

// OverlapPayloadMults are the two result-payload regimes of the
// overlap study: the paper's own payload (compute-bound chunks) and a
// heavy-results regime where the transfer is a real fraction of each
// chunk's round-trip.
var OverlapPayloadMults = []float64{1, 128}

// Overlap runs the serial and pipelined protocols for every scheme at
// p = 8 on the dedicated cluster, in the two payload regimes. The
// study shows both faces of the double-buffered protocol: with heavy
// results it hides most of the exposed communication and cuts T_p,
// while on compute-bound chunks the prefetch's one-chunk lookahead
// binds work to a slave one round-trip early — a slow PE can hoard two
// large trapezoid chunks — and self-scheduling loses adaptivity, so
// T_p can grow even though the (tiny) communication is still hidden.
func Overlap(cfg Config) ([]OverlapResult, error) {
	c := Cluster(8, false)
	w := cfg.Workload()
	var out []OverlapResult
	for _, mult := range OverlapPayloadMults {
		for _, s := range append(SimpleSchemes(), DistributedSchemes()...) {
			p := cfg.SimParams()
			p.BytesPerIter *= mult
			serial, err := sim.Run(c, s, w, p)
			if err != nil {
				return nil, fmt.Errorf("%s serial: %w", s.Name(), err)
			}
			p.Prefetch = true
			pip, err := sim.Run(c, s, w, p)
			if err != nil {
				return nil, fmt.Errorf("%s pipelined: %w", s.Name(), err)
			}
			out = append(out, OverlapResult{
				Scheme: s.Name(), PayloadMult: mult, Serial: serial, Pipelined: pip,
			})
		}
	}
	return out, nil
}

// FormatOverlap renders the overlap study as aligned tables, one block
// per payload regime.
func FormatOverlap(results []OverlapResult) string {
	var sb strings.Builder
	sb.WriteString("Overlap study: serial vs pipelined protocol, p = 8 dedicated\n")
	last := -1.0
	for _, o := range results {
		if o.PayloadMult != last {
			last = o.PayloadMult
			fmt.Fprintf(&sb, "result payload ×%g\n", o.PayloadMult)
			fmt.Fprintf(&sb, "%-8s %10s %10s %10s %10s %10s\n",
				"scheme", "Tp_ser", "Tp_pipe", "comm_ser", "idle_pipe", "hidden")
		}
		fmt.Fprintf(&sb, "%-8s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			o.Scheme, o.Serial.Tp, o.Pipelined.Tp,
			o.Serial.MeanComm(), o.Pipelined.MeanIdle(), o.Hidden())
	}
	return sb.String()
}

// Figure1 returns the per-column cost series before and after the
// sampling reorder — the two panels of Figure 1.
func Figure1(cfg Config) (original, reordered []float64) {
	w := workload.FromCosts{Costs: columnCosts(cfg.params())}
	r := workload.Reorder(w, cfg.Sf)
	original = append([]float64(nil), w.Costs...)
	reordered = make([]float64, r.Len())
	for i := range reordered {
		reordered[i] = r.Cost(i)
	}
	return original, reordered
}

// FigureResult is one speedup plot.
type FigureResult struct {
	Title  string
	Curves map[string][]metrics.Speedup
	// Tp holds the raw parallel times behind the curves.
	Tp map[string]map[int]float64
}

// Format renders the figure as aligned text series.
func (f FigureResult) Format() string {
	return metrics.FormatSpeedups(f.Title, f.Curves)
}

// SpeedupPs are the worker counts of Figures 4–7.
var SpeedupPs = []int{1, 2, 4, 8}

// ScalingStudy extends the paper's speedup figures beyond its 8-slave
// testbed (the natural "future work"): dedicated clusters with the
// same 3-fast-per-8 mix at p up to 32. At this scale the centralized
// master's service rate becomes the bottleneck, which is exactly the
// limitation the self-scheduling literature attributes to
// master–slave designs; the study quantifies where each scheme hits
// it (watch T_wait grow and the curves flatten).
func ScalingStudy(cfg Config, schemes []sched.Scheme, ps []int) (FigureResult, error) {
	if len(ps) == 0 {
		ps = []int{1, 2, 4, 8, 16, 32}
	}
	w := cfg.Workload()
	res := FigureResult{
		Title:  "Scaling study (beyond the paper): dedicated speedup",
		Curves: map[string][]metrics.Speedup{},
		Tp:     map[string]map[int]float64{},
	}
	for _, s := range schemes {
		res.Tp[s.Name()] = map[int]float64{}
	}
	for _, p := range ps {
		c := Cluster(p, false)
		for _, s := range schemes {
			rep, err := sim.Run(c, s, w, cfg.SimParams())
			if err != nil {
				return res, fmt.Errorf("%s p=%d: %w", s.Name(), p, err)
			}
			res.Tp[s.Name()][p] = rep.Tp
		}
	}
	for _, s := range schemes {
		res.Curves[s.Name()] = metrics.SpeedupCurve(res.Tp[s.Name()][ps[0]], res.Tp[s.Name()])
	}
	return res, nil
}

// Figure computes one of the speedup figures:
//
//	4 — simple schemes, dedicated
//	5 — simple schemes, non-dedicated
//	6 — distributed schemes, dedicated
//	7 — distributed schemes, non-dedicated
func Figure(num int, cfg Config) (FigureResult, error) {
	var (
		schemes      []sched.Scheme
		nondedicated bool
		weightedTree bool
		title        string
	)
	switch num {
	case 4:
		schemes, title = SimpleSchemes(), "Figure 4: Speedup of Simple Schemes — Dedicated"
	case 5:
		schemes, nondedicated, title = SimpleSchemes(), true, "Figure 5: Speedup of Simple Schemes — NonDedicated"
	case 6:
		schemes, weightedTree, title = DistributedSchemes(), true, "Figure 6: Speedup of Distributed Schemes — Dedicated"
	case 7:
		schemes, nondedicated, weightedTree, title = DistributedSchemes(), true, true, "Figure 7: Speedup of Distributed Schemes — NonDedicated"
	default:
		return FigureResult{}, fmt.Errorf("experiments: no figure %d", num)
	}
	w := cfg.Workload()
	res := FigureResult{
		Title:  title,
		Curves: map[string][]metrics.Speedup{},
		Tp:     map[string]map[int]float64{},
	}
	names := make([]string, 0, len(schemes)+1)
	for _, s := range schemes {
		names = append(names, s.Name())
	}
	names = append(names, "TreeS")
	for _, name := range names {
		res.Tp[name] = map[int]float64{}
	}
	for _, p := range SpeedupPs {
		c := Cluster(p, nondedicated)
		for _, s := range schemes {
			rep, err := sim.Run(c, s, w, cfg.SimParams())
			if err != nil {
				return res, fmt.Errorf("%s p=%d: %w", s.Name(), p, err)
			}
			res.Tp[s.Name()][p] = rep.Tp
		}
		treeRep, err := tree.Run(c, tree.Options{Weighted: weightedTree}, w, cfg.SimParams())
		if err != nil {
			return res, fmt.Errorf("TreeS p=%d: %w", p, err)
		}
		res.Tp["TreeS"][p] = treeRep.Tp
	}
	for _, name := range names {
		t1 := res.Tp[name][1]
		res.Curves[name] = metrics.SpeedupCurve(t1, res.Tp[name])
	}
	return res, nil
}
