package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"loopsched/internal/hier"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/telemetry/hist"
)

// The telemetry artefact demonstrates the observability pipeline on a
// deterministic run: the hierarchical simulator executes DTSS on the
// paper cluster with a live event bus attached, and the artefact
// captures both the aggregated protocol counters and the Perfetto
// trace document those events render to. Because the simulator is
// deterministic, the exported trace is a reproducible artefact — CI
// publishes it so any run of the suite can be opened in the Perfetto
// UI without re-running anything.

// TelemetryResult is one instrumented run: the aggregator's final
// counters plus the finished Perfetto (Chrome trace-event JSON)
// document.
type TelemetryResult struct {
	Scheme   string
	Workload string
	Workers  int
	Shards   int
	Snapshot telemetry.Snapshot
	Perfetto []byte
	// Flight is the imbalance flight recorder's JSON dump (the same
	// document /debug/flightrecorder serves on a live run).
	Flight []byte
	// Histograms is the per-backend latency histogram snapshot,
	// flattened to count/sum/p50/p95/p99 summaries per dimension.
	Histograms []byte
}

// histSummaries flattens the aggregator's per-backend latency
// histograms into percentile summaries for the JSON artefact.
func histSummaries(hists map[string]telemetry.LatencyHists) map[string]map[string]hist.Summary {
	out := make(map[string]map[string]hist.Summary, len(hists))
	for backend, h := range hists {
		out[backend] = map[string]hist.Summary{
			"queue_wait":        h.QueueWait.Summarize(),
			"comp":              h.Comp.Summarize(),
			"comm":              h.Comm.Summarize(),
			"grant_to_complete": h.GrantToComplete.Summarize(),
		}
	}
	return out
}

// Telemetry runs the instrumented hierarchical simulation and returns
// the counters and the Perfetto export.
func Telemetry(cfg Config) (TelemetryResult, error) {
	const workers = 8
	c := Cluster(workers, true) // non-dedicated: load makes ACP move
	w := cfg.Workload()
	scheme := sched.DTSSScheme{}
	hcfg := hier.Config{Shards: 3}

	var buf bytes.Buffer
	tele, err := telemetry.New(telemetry.Options{Perfetto: &buf})
	if err != nil {
		return TelemetryResult{}, err
	}
	bus := tele.Bus()
	bus.BeginRun(telemetry.RunMeta{
		Scheme:     scheme.Name(),
		Workload:   w.Name(),
		Backend:    "sim",
		Workers:    workers,
		Iterations: w.Len(),
	})
	p := cfg.SimParams()
	p.Telemetry = bus
	if _, err := hier.Simulate(context.Background(), c, scheme, w, p, hcfg); err != nil {
		_ = tele.Close()
		return TelemetryResult{}, fmt.Errorf("telemetry run: %w", err)
	}
	tele.Flush()
	snap := tele.Aggregator().Snapshot()
	var flight bytes.Buffer
	if err := tele.Flight().WriteJSON(&flight); err != nil {
		_ = tele.Close()
		return TelemetryResult{}, err
	}
	hists, err := json.MarshalIndent(histSummaries(snap.Hists), "", "  ")
	if err != nil {
		_ = tele.Close()
		return TelemetryResult{}, err
	}
	if err := tele.Close(); err != nil {
		return TelemetryResult{}, err
	}
	return TelemetryResult{
		Scheme:     scheme.Name(),
		Workload:   w.Name(),
		Workers:    workers,
		Shards:     hcfg.Shards,
		Snapshot:   snap,
		Perfetto:   buf.Bytes(),
		Flight:     flight.Bytes(),
		Histograms: hists,
	}, nil
}

// FormatTelemetry renders the artefact's counter summary.
func FormatTelemetry(r TelemetryResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Telemetry: %s on %s (p=%d, %d shards, simulated)\n",
		r.Scheme, r.Workload, r.Workers, r.Shards)
	tw := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "chunks granted\t%d\n", r.Snapshot.ChunksGranted)
	fmt.Fprintf(tw, "iterations granted\t%d\n", r.Snapshot.Iterations)
	fmt.Fprintf(tw, "shard steals\t%d\n", r.Snapshot.Steals)
	fmt.Fprintf(tw, "stage advances\t%d\n", r.Snapshot.Stages)
	fmt.Fprintf(tw, "dropped events\t%d\n", r.Snapshot.Dropped)
	kinds := make([]string, 0, len(r.Snapshot.Events))
	for k, n := range r.Snapshot.Events {
		if n > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, n))
		}
	}
	sort.Strings(kinds)
	fmt.Fprintf(tw, "events\t%s\n", strings.Join(kinds, " "))
	fmt.Fprintf(tw, "stragglers\t%d\n", r.Snapshot.Stragglers)
	backends := make([]string, 0, len(r.Snapshot.Hists))
	for b := range r.Snapshot.Hists {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	for _, b := range backends {
		s := r.Snapshot.Hists[b].Comp.Summarize()
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(tw, "chunk comp p50/p95/p99 (%s)\t%.2f/%.2f/%.2f ms\n",
			b, s.P50*1e3, s.P95*1e3, s.P99*1e3)
	}
	fmt.Fprintf(tw, "perfetto bytes\t%d\n", len(r.Perfetto))
	fmt.Fprintf(tw, "flight bytes\t%d\n", len(r.Flight))
	fmt.Fprintf(tw, "histogram bytes\t%d\n", len(r.Histograms))
	tw.Flush()
	return sb.String()
}
