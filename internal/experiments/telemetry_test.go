package experiments

import (
	"encoding/json"
	"testing"

	"loopsched/internal/telemetry"
	"loopsched/internal/telemetry/hist"
)

// TestTelemetryArtifact checks the CI-published Perfetto document: it
// must be valid JSON whose trace events carry the keys the Perfetto UI
// requires, and the counters must reconcile (every granted iteration
// accounted for, nothing dropped).
func TestTelemetryArtifact(t *testing.T) {
	res, err := Telemetry(Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Dropped != 0 {
		t.Errorf("%d events dropped", res.Snapshot.Dropped)
	}
	if got, want := int(res.Snapshot.Iterations), Small().Workload().Len(); got != want {
		t.Errorf("iterations granted %d, want %d", got, want)
	}
	if res.Snapshot.ChunksGranted == 0 {
		t.Error("no chunks granted")
	}

	if !json.Valid(res.Perfetto) {
		t.Fatalf("perfetto export is not valid JSON (%d bytes)", len(res.Perfetto))
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.Perfetto, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	completes := 0
	for i, raw := range doc.TraceEvents {
		var ev map[string]any
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %s", i, key, raw)
			}
		}
		if ev["ph"] == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d missing dur: %s", i, raw)
			}
			completes++
		}
	}
	// One complete slice per granted chunk: the simulator publishes a
	// completion for every chunk it grants.
	if completes != int(res.Snapshot.ChunksGranted) {
		t.Errorf("%d complete slices, %d chunks granted", completes, res.Snapshot.ChunksGranted)
	}

	// The flight-recorder dump decodes back into a snapshot with one
	// row per simulated worker.
	var flight telemetry.FlightSnapshot
	if err := json.Unmarshal(res.Flight, &flight); err != nil {
		t.Fatalf("flight dump is not a FlightSnapshot: %v\n%s", err, res.Flight)
	}
	if len(flight.Workers) != res.Snapshot.Meta.Workers {
		t.Errorf("flight dump has %d workers, run had %d", len(flight.Workers), res.Snapshot.Meta.Workers)
	}

	// The histogram snapshot reconciles with the chunk count: the sim
	// backend's queue-wait histogram observed every granted chunk.
	var hists map[string]map[string]hist.Summary
	if err := json.Unmarshal(res.Histograms, &hists); err != nil {
		t.Fatalf("histogram dump is not valid: %v\n%s", err, res.Histograms)
	}
	if got := hists["sim"]["queue_wait"].Count; got != res.Snapshot.ChunksGranted {
		t.Errorf("histogram dump counted %d chunks, run granted %d", got, res.Snapshot.ChunksGranted)
	}
}
