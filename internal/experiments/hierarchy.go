package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"

	"loopsched/internal/hier"
	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/tree"
)

// The hierarchy study compares three coordination topologies on the
// same cluster and workload as the paper's evaluation, at worker
// counts where a single master saturates:
//
//   - flat      — one master serves every slave (the paper's §3.1);
//   - 2-level   — the hier runtime: a root partitions the loop among
//     ⌈√p⌉ submasters by aggregate power and rebalances by stealing;
//   - tree      — Tree Scheduling (Kim & Purtilo), the decentralised
//     comparison point the paper itself uses.
//
// The flat master costs MasterOverhead plus the result transfer per
// service and serves one request at a time, so its service queue grows
// linearly with p; the hierarchy splits that load across submasters
// and only K clients ever contend at the root.

// HierarchyPoint is one (worker count, scheme, topology) simulated
// run of the study.
type HierarchyPoint struct {
	Workers  int     `json:"workers"`
	Scheme   string  `json:"scheme"`
	Topology string  `json:"topology"` // "flat", "2-level" or "tree"
	Shards   int     `json:"shards,omitempty"`
	Tp       float64 `json:"tp_seconds"`
	Chunks   int     `json:"chunks"`
	Steals   int     `json:"steals,omitempty"`
}

// HierarchyResult is the full study.
type HierarchyResult struct {
	Workload string           `json:"workload"`
	Points   []HierarchyPoint `json:"points"`
}

// HierarchySchemes are the schemes the study runs under both flat and
// 2-level coordination: the paper's TSS and its distributed variant.
func HierarchySchemes() []sched.Scheme {
	return []sched.Scheme{sched.TSSScheme{}, sched.DTSSScheme{}}
}

// HierarchyWorkerCounts are the study's default cluster sizes.
var HierarchyWorkerCounts = []int{8, 32, 128}

// Hierarchy runs the topology study on the dedicated cluster. Passing
// nil worker counts uses HierarchyWorkerCounts.
func Hierarchy(cfg Config, ps []int) (HierarchyResult, error) {
	if len(ps) == 0 {
		ps = HierarchyWorkerCounts
	}
	w := cfg.Workload()
	params := cfg.SimParams()
	res := HierarchyResult{Workload: w.Name()}
	for _, p := range ps {
		c := Cluster(p, false)
		for _, s := range HierarchySchemes() {
			flat, err := sim.Run(c, s, w, params)
			if err != nil {
				return res, fmt.Errorf("flat %s p=%d: %w", s.Name(), p, err)
			}
			res.Points = append(res.Points, HierarchyPoint{
				Workers: p, Scheme: s.Name(), Topology: "flat",
				Tp: flat.Tp, Chunks: flat.Chunks,
			})
			two, err := hier.Simulate(context.Background(), c, s, w, params, hier.Config{})
			if err != nil {
				return res, fmt.Errorf("2-level %s p=%d: %w", s.Name(), p, err)
			}
			res.Points = append(res.Points, HierarchyPoint{
				Workers: p, Scheme: s.Name(), Topology: "2-level",
				Shards: len(two.Shards), Tp: two.Tp, Chunks: two.Chunks,
				Steals: two.Steals,
			})
		}
		treeRep, err := tree.Run(c, tree.Options{Weighted: true}, w, params)
		if err != nil {
			return res, fmt.Errorf("tree p=%d: %w", p, err)
		}
		res.Points = append(res.Points, HierarchyPoint{
			Workers: p, Scheme: "TreeS", Topology: "tree",
			Tp: treeRep.Tp, Chunks: treeRep.Chunks,
		})
	}
	return res, nil
}

// Lookup returns the study's point for (p, scheme, topology), or nil.
func (r HierarchyResult) Lookup(p int, scheme, topology string) *HierarchyPoint {
	for i := range r.Points {
		pt := &r.Points[i]
		if pt.Workers == p && pt.Scheme == scheme && pt.Topology == topology {
			return pt
		}
	}
	return nil
}

// JSON renders the study for the CI artifact.
func (r HierarchyResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatHierarchy renders the study as a table; the "vs flat" column
// is the 2-level topology's speedup over the flat master with the same
// scheme at the same p.
func FormatHierarchy(r HierarchyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hierarchy study: flat vs 2-level vs tree (workload %s)\n", r.Workload)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tscheme\ttopology\tshards\tT_p\tchunks\tsteals\tvs flat")
	for _, pt := range r.Points {
		vs := ""
		if pt.Topology == "2-level" {
			if flat := r.Lookup(pt.Workers, pt.Scheme, "flat"); flat != nil && pt.Tp > 0 {
				vs = fmt.Sprintf("%.2f×", flat.Tp/pt.Tp)
			}
		}
		shards := ""
		if pt.Shards > 0 {
			shards = fmt.Sprintf("%d", pt.Shards)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%.2f\t%d\t%d\t%s\n",
			pt.Workers, pt.Scheme, pt.Topology, shards, pt.Tp, pt.Chunks, pt.Steals, vs)
	}
	tw.Flush()
	return sb.String()
}
