package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestHierarchyStudy runs the full topology study at test scale and
// checks the central claim: at p = 128 the two-level runtime beats the
// flat single master for every scheme in the study.
func TestHierarchyStudy(t *testing.T) {
	res, err := Hierarchy(Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(HierarchyWorkerCounts) * (2*len(HierarchySchemes()) + 1)
	if len(res.Points) != wantPoints {
		t.Fatalf("study has %d points, want %d", len(res.Points), wantPoints)
	}
	for _, s := range HierarchySchemes() {
		flat := res.Lookup(128, s.Name(), "flat")
		two := res.Lookup(128, s.Name(), "2-level")
		if flat == nil || two == nil {
			t.Fatalf("%s: missing p=128 points", s.Name())
		}
		if two.Tp >= flat.Tp {
			t.Errorf("%s at p=128: 2-level Tp %.3f not better than flat %.3f",
				s.Name(), two.Tp, flat.Tp)
		}
		if two.Shards == 0 || two.Chunks == 0 {
			t.Errorf("%s at p=128: 2-level point incomplete: %+v", s.Name(), *two)
		}
	}
	if res.Lookup(128, "TreeS", "tree") == nil {
		t.Error("missing tree comparison point")
	}
}

func TestHierarchyJSONRoundTrip(t *testing.T) {
	res, err := Hierarchy(Small(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back HierarchyResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(res.Points) || back.Workload != res.Workload {
		t.Fatalf("round-trip lost data: %d vs %d points", len(back.Points), len(res.Points))
	}
	text := FormatHierarchy(res)
	if !strings.Contains(text, "2-level") || !strings.Contains(text, "vs flat") {
		t.Fatalf("table misses expected columns:\n%s", text)
	}
}
