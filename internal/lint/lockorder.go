package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder lifts locksafe's per-function mutex reasoning to a
// module-wide lock-acquisition-order graph. Nodes are lock classes
// (named mutex fields like exec.JobState.mu, or package-level mutex
// variables); an edge A → B is recorded whenever B is acquired while A
// is held — directly, or through a call chain (the service arbiter
// finishing an attempt calls exec.JobState.Counts, which locks
// JobState.mu while Scheduler.mu is held; the steal refill publishes
// telemetry while JobState.mu is held). A cycle in this graph is a
// potential deadlock that no single-package analyzer can see, because
// each half of the inversion lives in a different package.
//
// Classes and functions are keyed by *string* (package path + type +
// field), never by go/types object identity: the module pass
// type-checks each package from source but sees its dependencies
// through export data, so the same function appears as two distinct
// types.Func objects depending on which side of the import you stand.
//
// The per-function walk is deliberately lenient — branches share one
// held-set, deferred unlocks keep the lock held to the end of the
// function (which is what defer means), and locks held through
// function literals are not tracked across the goroutine boundary.
// Lenient simulation can miss orderings; it does not invent them, so
// every reported cycle has a concrete witness chain.
var LockOrder = &ModuleAnalyzer{
	Name: "lockorder",
	Doc: "the module-wide lock acquisition graph must stay acyclic; a cycle between lock " +
		"classes (held-while-acquiring, directly or through calls) is a potential deadlock",
	Run: runLockOrder,
}

// lockEdge is one witness for "To acquired while From held".
type lockEdge struct {
	From, To string
	Pos      token.Position
	Via      string // callee name when the acquisition is indirect
}

type lockOrderPass struct {
	pass *ModulePass
	// acquires: funcKey → lock classes the function (transitively)
	// acquires. Built by fixpoint over callees.
	acquires map[string]map[string]bool
	callees  map[string]map[string]bool
	// edges: From → To → first witness.
	edges map[string]map[string]*lockEdge
}

func runLockOrder(pass *ModulePass) error {
	lo := &lockOrderPass{
		pass:     pass,
		acquires: map[string]map[string]bool{},
		callees:  map[string]map[string]bool{},
		edges:    map[string]map[string]*lockEdge{},
	}

	// Phase 1: per-function summaries — direct acquisitions (even
	// transient ones: a caller holding L that calls f still establishes
	// L → M if f locks M at any point) and module-internal callees.
	type declSite struct {
		pkg *Package
		fn  *ast.FuncDecl
		key string
	}
	var decls []declSite
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				tf, ok := pkg.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				key := lockFuncKey(tf)
				decls = append(decls, declSite{pkg, fn, key})
				lo.summarize(pkg, fn, key)
			}
		}
	}

	// Phase 2: transitive closure of acquires over callees.
	for changed := true; changed; {
		changed = false
		for fk, cs := range lo.callees {
			for callee := range cs {
				for class := range lo.acquires[callee] {
					if lo.acquires[fk] == nil {
						lo.acquires[fk] = map[string]bool{}
					}
					if !lo.acquires[fk][class] {
						lo.acquires[fk][class] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: simulate each function with an ordered held-set,
	// recording held × acquired edges (direct and via calls).
	for _, d := range decls {
		lo.simulate(d.pkg, d.fn.Body, d.key)
	}

	lo.reportCycles()
	return nil
}

// summarize records fn's direct lock classes and module callees.
// Function literals are excluded: their bodies typically run on other
// goroutines, whose acquisitions are not ordered by this call.
func (lo *lockOrderPass) summarize(pkg *Package, fn *ast.FuncDecl, key string) {
	if lo.acquires[key] == nil {
		lo.acquires[key] = map[string]bool{}
	}
	if lo.callees[key] == nil {
		lo.callees[key] = map[string]bool{}
	}
	walkOutsideFuncLits(fn.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if class, op := lockOp(pkg.TypesInfo, call); class != "" {
			if op == "Lock" || op == "RLock" {
				lo.acquires[key][class] = true
			}
			return
		}
		if callee := lockCalleeKey(pkg.TypesInfo, call); callee != "" && callee != key {
			lo.callees[key][callee] = true
		}
	})
}

// simulate walks one function body in source order with a held-set;
// nested function literals are simulated with a fresh held-set.
func (lo *lockOrderPass) simulate(pkg *Package, body *ast.BlockStmt, selfKey string) {
	var held []string
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				saved := held
				held = nil
				walk(x.Body)
				held = saved
				return false
			case *ast.DeferStmt:
				// defer mu.Unlock() releases at function end; for a
				// linear walk that means "held for the rest", which is
				// the default — so skip the call entirely.
				if class, op := lockOp(pkg.TypesInfo, x.Call); class != "" && (op == "Unlock" || op == "RUnlock") {
					return false
				}
				return true
			case *ast.CallExpr:
				if class, op := lockOp(pkg.TypesInfo, x); class != "" {
					switch op {
					case "Lock", "RLock":
						for _, h := range held {
							lo.addEdge(h, class, pkg.Fset.Position(x.Pos()), "")
						}
						held = append(held, class)
					case "Unlock", "RUnlock":
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == class {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
					return true
				}
				if len(held) == 0 {
					return true
				}
				callee := lockCalleeKey(pkg.TypesInfo, x)
				if callee == "" || callee == selfKey {
					return true
				}
				for _, h := range held {
					for class := range lo.acquires[callee] {
						lo.addEdge(h, class, pkg.Fset.Position(x.Pos()), callee)
					}
				}
				return true
			}
			return true
		})
	}
	walk(body)
}

func (lo *lockOrderPass) addEdge(from, to string, pos token.Position, via string) {
	if from == to {
		return // recursive re-acquisition is locksafe's business, not an ordering
	}
	if lo.edges[from] == nil {
		lo.edges[from] = map[string]*lockEdge{}
	}
	if _, ok := lo.edges[from][to]; !ok {
		lo.edges[from][to] = &lockEdge{From: from, To: to, Pos: pos, Via: via}
	}
}

// reportCycles finds strongly connected components of the edge graph
// and reports each cycle once, anchored at the witness edge leaving
// the lexicographically smallest class in the component.
func (lo *lockOrderPass) reportCycles() {
	var nodes []string
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range lo.edges {
		addNode(from)
		for to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	// Tarjan's SCC, iterative over the sorted node list for
	// deterministic component discovery.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range lo.edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strong(n)
		}
	}

	for _, comp := range sccs {
		sort.Strings(comp)
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		start := comp[0]
		path := lo.cyclePath(start, inComp)
		if len(path) == 0 {
			continue
		}
		var cycle string
		var witnesses string
		for i, e := range path {
			if i == 0 {
				cycle = e.From
			}
			cycle += " -> " + e.To
			if i > 0 {
				witnesses += "; "
			}
			witnesses += fmt.Sprintf("%s acquired at %s:%d while %s is held", e.To, e.Pos.Filename, e.Pos.Line, e.From)
			if e.Via != "" {
				witnesses += " (via call to " + e.Via + ")"
			}
		}
		lo.pass.ReportAt(path[0].Pos, "lock order cycle: %s: %s", cycle, witnesses)
	}
}

// cyclePath finds a cycle start → … → start within the component by
// BFS, returning the witness edges along it.
func (lo *lockOrderPass) cyclePath(start string, inComp map[string]bool) []*lockEdge {
	type step struct {
		node string
		via  []*lockEdge
	}
	queue := []step{{node: start}}
	visited := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var tos []string
		for to := range lo.edges[cur.node] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !inComp[to] {
				continue
			}
			e := lo.edges[cur.node][to]
			path := append(append([]*lockEdge{}, cur.via...), e)
			if to == start {
				return path
			}
			if !visited[to] {
				visited[to] = true
				queue = append(queue, step{node: to, via: path})
			}
		}
	}
	return nil
}

// lockOp recognises calls to the sync locking methods and resolves the
// receiver to a lock class. Returns ("", "") for anything else.
func lockOp(info *types.Info, call *ast.CallExpr) (class, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	return lockClassOf(info, sel.X), fn.Name()
}

// lockClassOf renders the mutex-bearing expression as a stable string
// class: "pkgpath.Type.field" for fields, "pkgpath.var" for
// package-level variables, "pkgpath.Type" for embedded locks. Returns
// "" when the expression cannot be classified (e.g. a local *Mutex
// whose provenance is unknown).
func lockClassOf(info *types.Info, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return lockClassOf(info, x.X)
	case *ast.StarExpr:
		return lockClassOf(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockClassOf(info, x.X)
		}
		return ""
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			// Package-qualified handled by SelectorExpr case; a plain
			// non-var ident has no class.
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Receiver or local of a named type with an embedded lock.
		return namedClass(v.Type())
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			recv := namedClass(sel.Recv())
			if recv == "" {
				recv = lockClassOf(info, x.X)
			} else if isStdSyncClass(sel.Recv()) {
				// A field of a std sync type (cond.L): prefix with the
				// module-side owner so distinct conds get distinct classes.
				if inner := lockClassOf(info, x.X); inner != "" {
					recv = inner
				}
			}
			if recv == "" {
				return ""
			}
			return recv + "." + x.Sel.Name
		}
		// pkg.Var reference.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	default:
		return ""
	}
}

// namedClass renders a (possibly pointer-to) named type as
// "pkgpath.Name", or "" for unnamed/universe types.
func namedClass(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

func isStdSyncClass(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// lockCalleeKey resolves a call to a module function's string key, or
// "" for calls that cannot be resolved (builtins, interface methods,
// std library).
func lockCalleeKey(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return lockFuncKey(fn)
}

// lockFuncKey keys a function by string — "pkgpath.Type.Name" for
// methods, "pkgpath.Name" for functions — so the source-checked and
// export-data views of the same function collide as intended.
func lockFuncKey(fn *types.Func) string {
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key = n.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}
