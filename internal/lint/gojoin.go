package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoJoin requires every `go` statement in non-test code to have a
// visible join or bound: the goroutine must either signal someone
// (sync.WaitGroup Done/Add, a channel send or close) or be bounded by
// a channel it receives from (a done channel, ctx.Done() in a select,
// a `for range ch` drain). Fire-and-forget goroutines are how the RPC
// teardown paths leaked before this suite existed: nothing joins them,
// so nothing notices when they block forever on a dead peer.
//
// For `go someFunc(...)` / `go recv.Method(...)` forms the analyzer
// resolves the callee inside the package and inspects its body with
// the same criteria; an unresolvable callee (another package's
// function) is reported, since its bound cannot be proven here — wrap
// it in a literal that signals a WaitGroup, or suppress with a
// justification.
var GoJoin = &Analyzer{
	Name: "gojoin",
	Doc: "every goroutine must be joined or bounded: WaitGroup, channel " +
		"send/close, or a receive (done channel / ctx-bounded select)",
	Run: runGoJoin,
}

func runGoJoin(pass *Pass) error {
	// Package-level declarations, for resolving `go f(...)` callees.
	funcBodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				funcBodies[obj] = fn
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !joinEvidence(pass, lit.Body) {
					pass.Report(g.Pos(),
						"goroutine has no visible join or bound (no WaitGroup Done, channel "+
							"send/close, or receive); it can outlive the run undetected")
				}
				return true
			}
			// Named callee: resolve within the package.
			body := resolveCalleeBody(pass, funcBodies, g.Call)
			if body == nil {
				pass.Report(g.Pos(),
					"goroutine body is outside this package, so its join cannot be verified; "+
						"wrap it in a literal that signals a WaitGroup or done channel")
				return true
			}
			if !joinEvidence(pass, body) {
				pass.Report(g.Pos(),
					"goroutine callee has no visible join or bound (no WaitGroup Done, channel "+
						"send/close, or receive); it can outlive the run undetected")
			}
			return true
		})
	}
	return nil
}

// resolveCalleeBody maps `go f(...)` or `go recv.Method(...)` to the
// callee's body when declared in this package.
func resolveCalleeBody(pass *Pass, funcBodies map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if decl, ok := funcBodies[obj]; ok {
		return decl.Body
	}
	return nil
}

// joinEvidence reports whether the goroutine body shows any of the
// accepted join/bound mechanisms. Nested function literals are not
// descended into — their evidence belongs to the goroutines they
// spawn — except that launching a further goroutine does not count as
// evidence for this one.
func joinEvidence(pass *Pass, body *ast.BlockStmt) bool {
	evidence := false
	ast.Inspect(body, func(n ast.Node) bool {
		if evidence {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			evidence = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				evidence = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					evidence = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					evidence = true
				}
			}
			if recv, name := receiverOf(x); recv != nil && (name == "Done" || name == "Add") {
				if tv, ok := pass.TypesInfo.Types[recv]; ok && tv.Type != nil &&
					isNamedType(tv.Type, "sync", "WaitGroup") {
					evidence = true
				}
			}
		}
		return !evidence
	})
	return evidence
}
