package lint

import (
	"go/ast"
	"strings"
)

// LockSafe is an intra-package call-graph pass over each struct's
// methods: Go's sync.Mutex is not reentrant, so a method that acquires
// its receiver's mutex must never be called from another method of the
// same type that already holds it — that is a guaranteed self-deadlock
// of exactly the kind the mutex-guarded ledgers in exec.Master and
// hier.Submaster are one refactor away from. The runtime encodes the
// convention as a `...Locked` method-name suffix ("callers hold mu");
// the analyzer machine-checks both directions:
//
//   - a method holding recv.mu (Lock seen, or a deferred Unlock) calls
//     a same-receiver method whose first mutex operation is Lock →
//     deadlock report;
//   - a method named `...Locked` whose first mutex operation on any
//     receiver mutex is Lock → convention violation report.
//
// Goroutine bodies launched while the lock is held run after the
// caller releases it, so function literals are not traversed.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "methods must not re-acquire a receiver mutex a caller already holds; " +
		"`...Locked` methods must not acquire the mutex themselves",
	Run: runLockSafe,
}

// mutexFacts summarises one method's interaction with its receiver's
// mutex fields.
type mutexFacts struct {
	decl     *ast.FuncDecl
	recvName string
	// firstOp maps mutex field name → "Lock" or "Unlock" (the first
	// operation the method performs on that field, in source order,
	// outside function literals). A method whose first op is Unlock
	// drops and reacquires — safe to call with the lock held.
	firstOp map[string]string
}

func runLockSafe(pass *Pass) error {
	// Pass 1: collect per-(type, method) mutex facts.
	facts := map[string]map[string]*mutexFacts{} // type name → method name → facts
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			typeName, recvName := receiverInfo(fn)
			if typeName == "" || recvName == "" {
				continue
			}
			mf := &mutexFacts{decl: fn, recvName: recvName, firstOp: map[string]string{}}
			walkOutsideFuncLits(fn.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				field, op := recvFieldMutexOp(pass.TypesInfo, call, recvName)
				if field == "" {
					return
				}
				if _, seen := mf.firstOp[field]; !seen {
					if op == "RLock" {
						op = "Lock"
					}
					if op == "RUnlock" {
						op = "Unlock"
					}
					mf.firstOp[field] = op
				}
			})
			if facts[typeName] == nil {
				facts[typeName] = map[string]*mutexFacts{}
			}
			facts[typeName][fn.Name.Name] = mf
		}
	}

	// Pass 2: simulate each method's held-set in source order and flag
	// same-receiver calls into lock-acquiring methods; also enforce the
	// `...Locked` naming convention.
	for typeName, methods := range facts {
		for _, mf := range methods {
			if strings.HasSuffix(mf.decl.Name.Name, "Locked") {
				for field, op := range mf.firstOp {
					if op == "Lock" {
						pass.Report(mf.decl.Pos(),
							"%s.%s is named *Locked (callers hold the mutex) but acquires %s.%s itself",
							typeName, mf.decl.Name.Name, mf.recvName, field)
					}
				}
			}
			checkMethod(pass, typeName, methods, mf)
		}
	}
	return nil
}

// receiverInfo extracts the receiver's type and identifier names.
func receiverInfo(fn *ast.FuncDecl) (typeName, recvName string) {
	if len(fn.Recv.List) != 1 {
		return "", ""
	}
	field := fn.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return typeName, recvName
}

// walkOutsideFuncLits visits nodes in source order, skipping function
// literal bodies.
func walkOutsideFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// checkMethod tracks which receiver mutexes are held through the
// method body — a linear source-order approximation: Lock sets held,
// Unlock clears it, a deferred Unlock holds to the end of the function
// — and reports same-receiver calls into methods whose first mutex
// operation would re-acquire a held mutex.
func checkMethod(pass *Pass, typeName string, methods map[string]*mutexFacts, mf *mutexFacts) {
	held := map[string]bool{}
	walkOutsideFuncLits(mf.decl.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if field, op := recvFieldMutexOp(pass.TypesInfo, x.Call, mf.recvName); field != "" {
				if op == "Unlock" || op == "RUnlock" {
					held[field] = true // held for the rest of the method
				}
			}
		case *ast.CallExpr:
			if field, op := recvFieldMutexOp(pass.TypesInfo, x, mf.recvName); field != "" {
				switch op {
				case "Lock", "RLock":
					held[field] = true
				case "Unlock", "RUnlock":
					if !isDeferredCall(x, mf.decl) {
						held[field] = false
					}
				}
				return
			}
			callee := sameReceiverCallee(x, mf.recvName)
			if callee == "" {
				return
			}
			target, ok := methods[callee]
			if !ok {
				return
			}
			for field, op := range target.firstOp {
				if op == "Lock" && held[field] {
					pass.Report(x.Pos(),
						"%s.%s calls %s while holding %s.%s, and %s acquires it again: self-deadlock "+
							"(extract a *Locked variant)",
						typeName, mf.decl.Name.Name, callee, mf.recvName, field, callee)
				}
			}
		}
	})
}

// isDeferredCall reports whether the call expression is the operand of
// a defer statement in fn.
func isDeferredCall(call *ast.CallExpr, fn *ast.FuncDecl) bool {
	deferred := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			deferred = true
		}
		return !deferred
	})
	return deferred
}

// sameReceiverCallee matches calls of the form recv.Method(...) and
// returns the method name.
func sameReceiverCallee(call *ast.CallExpr, recvName string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != recvName {
		return ""
	}
	return sel.Sel.Name
}
