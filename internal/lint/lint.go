// Package lint is loopsched's domain-aware static-analysis suite: a
// small, dependency-free re-implementation of the golang.org/x/tools
// go/analysis model (Analyzer, Pass, Diagnostic) plus the analyzers
// that machine-check the invariants the runtime's correctness
// arguments rest on — context observation in blocking loops, the
// paper's ⌈⌉/⌊⌋ chunk arithmetic discipline, mutex re-entry, scheme
// registry hygiene, goroutine joining, time-sample reuse, mixed
// atomic/plain field access, zero-allocation hot paths, decoded-count
// bounds in wire decoders, and the module-wide lock-acquisition order.
// cmd/loopschedlint drives the suite both standalone and as a
// `go vet -vettool`.
//
// The framework deliberately mirrors x/tools/go/analysis so the
// analyzers could be ported to the real thing verbatim if the module
// ever grows that dependency; docs/LINTING.md documents each
// analyzer's invariant and its pointer into the paper.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, shaped like x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name is the analyzer's identifier (also the suppression key).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, exactly like x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// report collects raw diagnostics; suppression is applied by
	// RunAnalyzers after the pass finishes.
	diags []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	// File/Line/Col flatten Pos for the -json encoding.
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// IgnoreDirective is the comment that suppresses a diagnostic on the
// same line or the line immediately above it:
//
//	//lint:loopsched-ignore analyzer reason...
//
// The analyzer name is mandatory ("all" matches every analyzer) and a
// human-readable reason is required — a bare directive suppresses
// nothing, so every suppression carries its justification.
const IgnoreDirective = "lint:loopsched-ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions scans a file's comments for ignore directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var sups []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, IgnoreDirective))
				if len(fields) < 2 {
					continue // no analyzer+reason: directive is inert
				}
				pos := fset.Position(c.Pos())
				sups = append(sups, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
				})
			}
		}
	}
	return sups
}

// suppressed reports whether d is covered by a directive on its own
// line or the line above.
func suppressed(d Diagnostic, sups []suppression) bool {
	for _, s := range sups {
		if s.file != d.Pos.Filename {
			continue
		}
		if s.analyzer != "all" && s.analyzer != d.Analyzer {
			continue
		}
		if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Finding is one diagnostic attributed to its package: the record both
// the -json and -sarif encodings of cmd/loopschedlint serialise, and
// the unit the findings-diff baseline is keyed on.
type Finding struct {
	Package string `json:"package"`
	Diagnostic
}

// ModuleAnalyzer is a whole-module static check: unlike Analyzer it
// sees every loaded package at once, so it can follow call chains
// across package boundaries (the lockorder analyzer's
// service → exec → telemetry lock-order graph needs exactly that).
// Under `go vet -vettool` each package is a separate process, so
// module analyzers degrade there to the packages of the current unit;
// the standalone runner (make lint-json) gets the full graph.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(pass *ModulePass) error
}

// ModulePass carries every loaded package to a module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Pkgs     []*Package
	diags    []Diagnostic
}

// ReportAt records a finding at an already-resolved position (module
// analyzers span file sets, so they resolve positions themselves).
func (p *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModuleAnalyzers applies the module analyzers across the loaded
// packages and returns the unsuppressed diagnostics, ordered by
// position. Suppression directives work exactly as for per-package
// analyzers: a //lint:loopsched-ignore in any loaded file covers
// diagnostics reported on its line (or the line below it).
func RunModuleAnalyzers(pkgs []*Package, analyzers []*ModuleAnalyzer) ([]Diagnostic, error) {
	var sups []suppression
	for _, pkg := range pkgs {
		sups = append(sups, collectSuppressions(pkg.Fset, pkg.Files)...)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Pkgs: pkgs}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !suppressed(d, sups) {
				d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// RunAnalyzers applies the analyzers to the package and returns the
// unsuppressed diagnostics, ordered by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sups := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
		for _, d := range pass.diags {
			if !suppressed(d, sups) {
				d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
