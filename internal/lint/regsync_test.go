package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestRegSync(t *testing.T) {
	runFixture(t, lint.RegSync, "regsync")
}
