package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestGoJoin(t *testing.T) {
	runFixture(t, lint.GoJoin, "gojoin")
}
