package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// RegSync cross-checks the scheme registry (internal/sched's
// database/sql-style Register/Lookup pair) against the package's
// declarations:
//
//   - every exported type implementing the package's Scheme interface
//     must be registered (directly, through a package variable, or via
//     a constructor whose body builds it) — an unregistered scheme is
//     invisible to Lookup, cmd/loopsched -scheme and the experiment
//     configs;
//   - Register must only be called from init functions, so the
//     registry is complete before any Lookup can run;
//   - two Register calls must not pass syntactically identical
//     arguments, and statically-known scheme names must be unique
//     case-insensitively — both would panic at init time, but only on
//     the first import, which tests that stub the registry never see;
//   - a statically-known scheme name must be non-empty.
//
// The analyzer activates in any package that declares both a `Scheme`
// interface (with a Name() string method) and a `Register` function.
var RegSync = &Analyzer{
	Name: "regsync",
	Doc: "every exported Scheme must be registered exactly once from an init " +
		"function, with case-insensitively unique names",
	Run: runRegSync,
}

func runRegSync(pass *Pass) error {
	scope := pass.Pkg.Scope()
	schemeObj := scope.Lookup("Scheme")
	regObj := scope.Lookup("Register")
	if schemeObj == nil || regObj == nil {
		return nil
	}
	iface, ok := schemeObj.Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return nil
	}

	// Collect package function declarations for constructor-body and
	// init-function scanning.
	funcDecls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Recv == nil {
				funcDecls[fn.Name.Name] = fn
			}
		}
	}

	registered := map[string]bool{}   // named type → seen in a Register call
	argSeen := map[string]ast.Node{}  // exact argument text → first call site
	nameSeen := map[string]ast.Node{} // canonical static name → first call site

	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != regObj {
				return true
			}
			arg := call.Args[0]

			if fn, _, isDecl := enclosingFunc(parents, call); !isDecl || fn.Name.Name != "init" {
				pass.Report(call.Pos(),
					"Register must be called from an init function so the registry is "+
						"complete before the first Lookup")
			}

			var buf bytes.Buffer
			if err := printer.Fprint(&buf, pass.Fset, arg); err != nil {
				buf.Reset()
				buf.WriteString(types.ExprString(arg))
			}
			argText := buf.String()
			exactDup := false
			if prev, dup := argSeen[argText]; dup {
				prevPos := pass.Fset.Position(prev.Pos())
				pass.Report(call.Pos(),
					"duplicate registration of %s (previously registered at %s); Register panics on duplicates",
					argText, prevPos)
				exactDup = true
			} else {
				argSeen[argText] = call
			}

			for _, tn := range registeredTypes(pass, funcDecls, arg) {
				registered[tn] = true
			}

			if name, ok := staticSchemeName(pass, funcDecls, arg); ok && !exactDup {
				if name == "" {
					pass.Report(call.Pos(), "registered scheme has an empty name")
				} else {
					key := strings.ToUpper(name)
					if prev, dup := nameSeen[key]; dup {
						prevPos := pass.Fset.Position(prev.Pos())
						pass.Report(call.Pos(),
							"scheme name %q collides case-insensitively with a registration at %s",
							name, prevPos)
					} else {
						nameSeen[key] = call
					}
				}
			}
			return true
		})
	}

	// Every exported implementation of Scheme must have been registered.
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok || named.Obj() == schemeObj {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if !registered[name] {
			pass.Report(obj.Pos(),
				"exported scheme type %s is never registered; Lookup(%q...) and the "+
					"-scheme flags cannot reach it", name, name)
		}
	}
	return nil
}

// registeredTypes resolves which package-level named types a Register
// argument covers: the argument's own named type, or — when the
// argument is a call to a package constructor returning the Scheme
// interface — every package type composite-literal'd in that
// constructor's body.
func registeredTypes(pass *Pass, funcDecls map[string]*ast.FuncDecl, arg ast.Expr) []string {
	var out []string
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				out = append(out, named.Obj().Name())
				return out
			}
		}
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return out
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return out
	}
	ctor, ok := funcDecls[id.Name]
	if !ok || ctor.Body == nil {
		return out
	}
	ast.Inspect(ctor.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || tv.Type == nil {
			return true
		}
		if named, ok := tv.Type.(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
			out = append(out, named.Obj().Name())
		}
		return true
	})
	return out
}

// staticSchemeName tries to compute the registered scheme's Name()
// result at analysis time. It succeeds for two shapes: a concrete type
// whose Name method is a single `return "literal"`, and a constructor
// whose body builds a composite literal with a `name: "literal"`
// field. Conditional names (GSS vs GSS(8)) are left to the runtime
// round-trip tests.
func staticSchemeName(pass *Pass, funcDecls map[string]*ast.FuncDecl, arg ast.Expr) (string, bool) {
	// Constructor form: look for a name: "..." field in the built literal.
	if call, ok := arg.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if ctor, ok := funcDecls[id.Name]; ok && ctor.Body != nil {
				return literalNameField(ctor.Body)
			}
		}
	}
	// Concrete type form: single-return Name method.
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != "Name" || fn.Body == nil {
				continue
			}
			tn, _ := receiverInfo(fn)
			if tn != named.Obj().Name() {
				continue
			}
			return singleStringReturn(fn.Body)
		}
	}
	return "", false
}

// literalNameField extracts `name: "literal"` from the body's sole
// composite literal, when unambiguous.
func literalNameField(body *ast.BlockStmt) (string, bool) {
	name, found, ambiguous := "", false, false
	ast.Inspect(body, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "name" {
			return true
		}
		lit, ok := kv.Value.(*ast.BasicLit)
		if !ok {
			ambiguous = true // computed name: give up
			return true
		}
		if found {
			ambiguous = true
			return true
		}
		name, found = strings.Trim(lit.Value, `"`), true
		return true
	})
	if ambiguous {
		return "", false
	}
	return name, found
}

// singleStringReturn returns the literal when the body is exactly one
// `return "literal"`.
func singleStringReturn(body *ast.BlockStmt) (string, bool) {
	returns := 0
	value := ""
	literal := true
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		returns++
		if len(ret.Results) != 1 {
			literal = false
			return true
		}
		lit, ok := ret.Results[0].(*ast.BasicLit)
		if !ok {
			literal = false
			return true
		}
		value = strings.Trim(lit.Value, `"`)
		return true
	})
	if returns != 1 || !literal {
		return "", false
	}
	return value, true
}
