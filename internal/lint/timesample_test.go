package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestTimeSample(t *testing.T) {
	runFixture(t, lint.TimeSample, "timesample")
}
