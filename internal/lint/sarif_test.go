package lint_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"loopsched/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite the SARIF golden file")

// TestSARIFGolden pins the exact SARIF 2.1.0 document the tool emits
// for a fixed finding list: code-scanning ingestion and the CI
// artifact diff both depend on the encoding staying byte-stable.
func TestSARIFGolden(t *testing.T) {
	findings := []lint.Finding{
		{
			Package: "loopsched/internal/wire",
			Diagnostic: lint.Diagnostic{
				Analyzer: "wirebounds",
				File:     "internal/wire/conn.go",
				Line:     42,
				Col:      7,
				Message:  "wire-decoded count n reaches make without a bound check against the frame cap",
			},
		},
		{
			Package: "loopsched/internal/exec",
			Diagnostic: lint.Diagnostic{
				Analyzer: "lockorder",
				File:     "internal/exec/jobstate.go",
				Line:     260,
				Col:      2,
				Message:  "lock order cycle: a.mu -> b.mu -> a.mu: b.mu acquired at x.go:1 while a.mu is held",
			},
		},
	}
	got, err := lint.SARIF(findings)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}

	golden := filepath.Join("testdata", "sarif", "golden.sarif")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test -run SARIFGolden -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output diverged from golden file %s\n--- got ---\n%s", golden, got)
	}
}

// TestSARIFEmpty: an empty finding list still yields a valid document
// with the full rule table and an empty results array (CI uploads this
// on clean runs).
func TestSARIFEmpty(t *testing.T) {
	doc, err := lint.SARIF(nil)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	for _, needle := range []string{`"results": []`, `"atomicdiscipline"`, `"hotalloc"`, `"wirebounds"`, `"lockorder"`, `"ctxloop"`} {
		if !bytes.Contains(doc, []byte(needle)) {
			t.Errorf("empty-findings SARIF missing %s", needle)
		}
	}
}
