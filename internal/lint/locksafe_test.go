package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestLockSafe(t *testing.T) {
	runFixture(t, lint.LockSafe, "locksafe")
}
