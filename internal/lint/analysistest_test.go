package lint_test

// A dependency-free re-implementation of x/tools' analysistest: each
// testdata/<name> directory is one fixture package whose `// want
// "regexp"` comments declare the expected diagnostics, line by line.
// Fixtures are type-checked for real (against std export data), so
// they stay honest — a fixture that does not compile fails the test.

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"loopsched/internal/lint"
)

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

// stdExports compiles (once) the export data for the std packages the
// fixtures import.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exports, exportsErr = lint.ExportMap(".",
			"context", "sync", "sync/atomic", "net", "net/rpc", "time", "fmt", "errors", "math",
			"encoding/binary",
			"loopsched/internal/wire", "loopsched/internal/steal", "loopsched/internal/telemetry")
	})
	if exportsErr != nil {
		t.Fatalf("building std export data: %v", exportsErr)
	}
	return exports
}

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants extracts the expectations from a fixture file's comments.
func parseWants(t *testing.T, filename string) []*expectation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s for want comments: %v", filename, err)
	}
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", filename, pos.Line, pat, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// runFixture type-checks testdata/<fixture> and asserts the analyzer's
// diagnostics exactly match the fixture's want comments.
func runFixture(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files under %s: %v", dir, err)
	}
	pkg, err := lint.TypeCheckFiles("loopsched/fixture/"+fixture, files, stdExports(t))
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", fixture, err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}

	var wants []*expectation
	for _, f := range files {
		wants = append(wants, parseWants(t, f)...)
	}

	for _, d := range diags {
		if exp := match(wants, d); exp != nil {
			exp.used = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// runModuleFixture is runFixture for module-wide analyzers: the
// fixture directory is treated as a one-package module view.
func runModuleFixture(t *testing.T, a *lint.ModuleAnalyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files under %s: %v", dir, err)
	}
	pkg, err := lint.TypeCheckFiles("loopsched/fixture/"+fixture, files, stdExports(t))
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", fixture, err)
	}
	diags, err := lint.RunModuleAnalyzers([]*lint.Package{pkg}, []*lint.ModuleAnalyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}

	var wants []*expectation
	for _, f := range files {
		wants = append(wants, parseWants(t, f)...)
	}
	for _, d := range diags {
		if exp := match(wants, d); exp != nil {
			exp.used = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func match(wants []*expectation, d lint.Diagnostic) *expectation {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// TestSuppressionDirective double-checks the ignore contract on a live
// fixture: the gojoin fixture contains one suppressed violation, and
// it must stay invisible.
func TestSuppressionDirective(t *testing.T) {
	if lint.IgnoreDirective != "lint:loopsched-ignore" {
		t.Fatalf("suppression directive renamed: %q", lint.IgnoreDirective)
	}
}
