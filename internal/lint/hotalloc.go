package lint

import (
	"go/ast"
	"go/types"

	"loopsched/internal/hotpath"
)

// HotAlloc is the annotation-driven zero-allocation checker. A
// function marked //lint:loopsched-hotpath (see internal/hotpath)
// declares that its steady-state executions must not touch the heap —
// the property the wire codec, the Chase–Lev deque and the telemetry
// publish path buy their throughput with, and which before this
// analyzer was pinned only dynamically by AllocsPerRun guards. The
// analyzer rejects the heap-escaping constructs in every annotated
// function and in every same-package function it (transitively)
// calls:
//
//   - fmt.* and errors.New calls — unless the call is part of a
//     return or panic statement (the cold error path: by the time a
//     decode error is being built, the hot path is over);
//   - map/slice composite literals, make, new, and &T{…};
//   - explicit conversions to interface types (the value escapes into
//     the interface);
//   - capturing closures (the closure and its captures may allocate);
//   - go statements (a goroutine allocates its stack);
//   - append whose destination is not rooted in a parameter or
//     receiver (growing locally-allocated slices is unbounded heap
//     traffic; appending to a caller-provided buffer is the codec's
//     own idiom and stays amortised by the caller's reuse).
//
// Calls into other packages of the module are not followed — the
// callee package annotates its own hot functions, and the dynamic
// side (AllocsPerRun guard tables generated from the same annotations
// plus cmd/escapecheck's `go build -gcflags=-m` cross-check) covers
// the composition. Deliberate allocations on genuinely cold branches
// carry //lint:loopsched-ignore hotalloc with a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//lint:loopsched-hotpath functions (and their same-package callees) must not use " +
		"heap-allocating constructs: no fmt, map/slice literals, make/new, interface " +
		"conversions, capturing closures, go statements, or append to local slices",
	Run: runHotAlloc,
}

// hotAllocPass bundles the per-package indexes one hotalloc run needs.
type hotAllocPass struct {
	pass *Pass
	info *types.Info
	// decls: functions declared in this package, for call following.
	decls map[types.Object]*ast.FuncDecl
	// firstAssign: object → RHS of its first := (or =) assignment, for
	// tracing append destinations back to parameters.
	firstAssign map[types.Object]ast.Expr
	// parents: per-file parent maps, built lazily.
	parents map[*ast.File]parentMap
}

func runHotAlloc(pass *Pass) error {
	roots := hotpath.AnnotatedDecls(pass.Fset, pass.Files)
	if len(roots) == 0 {
		return nil
	}
	h := &hotAllocPass{
		pass:        pass,
		info:        pass.TypesInfo,
		decls:       map[types.Object]*ast.FuncDecl{},
		firstAssign: map[types.Object]ast.Expr{},
		parents:     map[*ast.File]parentMap{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := h.info.Defs[fn.Name]; obj != nil {
				h.decls[obj] = fn
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range a.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := h.info.Defs[id]
				if obj == nil {
					obj = h.info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, seen := h.firstAssign[obj]; seen {
					continue
				}
				if len(a.Rhs) == len(a.Lhs) {
					h.firstAssign[obj] = a.Rhs[i]
				}
			}
			return true
		})
	}

	// Close the hot set over same-package calls, checking each function
	// once. via[fn] names the annotated root for the diagnostic text.
	via := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl
	for _, fn := range roots {
		if _, seen := via[fn]; !seen {
			via[fn] = "" // annotated directly
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		h.checkFunc(fn, via[fn])
		for _, callee := range h.callees(fn) {
			if _, seen := via[callee]; seen {
				continue
			}
			root := via[fn]
			if root == "" {
				root = hotpath.DeclName(fn)
			}
			via[callee] = root
			queue = append(queue, callee)
		}
	}
	return nil
}

// callees resolves the same-package functions fn calls (function
// literals excluded: capturing ones are flagged as constructs, and a
// literal's body is not a continuation the annotation covers).
func (h *hotAllocPass) callees(fn *ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	walkOutsideFuncLits(fn.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		var obj types.Object
		switch f := call.Fun.(type) {
		case *ast.Ident:
			obj = h.info.Uses[f]
		case *ast.SelectorExpr:
			obj = h.info.Uses[f.Sel]
		default:
			return
		}
		if obj == nil {
			return
		}
		if callee, ok := h.decls[obj]; ok {
			out = append(out, callee)
		}
	})
	return out
}

// fileParents returns (building lazily) the parent map of the file
// containing pos.
func (h *hotAllocPass) fileParents(fn *ast.FuncDecl) parentMap {
	for _, f := range h.pass.Files {
		if f.Pos() <= fn.Pos() && fn.Pos() <= f.End() {
			if p, ok := h.parents[f]; ok {
				return p
			}
			p := buildParents(f)
			h.parents[f] = p
			return p
		}
	}
	return parentMap{}
}

// checkFunc reports every heap-escaping construct in one hot function.
func (h *hotAllocPass) checkFunc(fn *ast.FuncDecl, root string) {
	where := hotpath.DeclName(fn)
	if root != "" {
		where += " (reached from hot path " + root + ")"
	}
	params := h.paramObjects(fn)
	parents := h.fileParents(fn)
	report := func(n ast.Node, what string) {
		h.pass.Report(n.Pos(), "hot path %s: %s", where, what)
	}

	walkOutsideFuncLits(fn.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.GoStmt:
			report(x, "go statement spawns a goroutine (stack allocation) on the hot path")
		case *ast.CompositeLit:
			if tv, ok := h.info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(x, "map literal allocates")
				case *types.Slice:
					report(x, "slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if _, ok := x.X.(*ast.CompositeLit); ok && x.Op.String() == "&" {
				report(x, "&composite literal escapes to the heap")
			}
		case *ast.CallExpr:
			h.checkCall(parents, params, x, report)
		}
	})

	// Capturing closures: walkOutsideFuncLits does not descend into
	// literals, but the literal node itself is a construct of the
	// enclosing hot function.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if h.capturesOuter(lit) {
			report(lit, "capturing closure may allocate (captured variables move to the heap)")
		}
		return false // the literal's own body is not hot
	})
}

// checkCall classifies one call expression inside a hot function.
func (h *hotAllocPass) checkCall(parents parentMap, params map[types.Object]bool, call *ast.CallExpr, report func(ast.Node, string)) {
	// Explicit conversion T(x) where T is an interface type.
	if tv, ok := h.info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if argTV, ok := h.info.Types[call.Args[0]]; ok && argTV.Type != nil {
				if _, already := argTV.Type.Underlying().(*types.Interface); !already {
					report(call, "conversion to interface type allocates")
				}
			}
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		b, ok := h.info.Uses[fun].(*types.Builtin)
		if !ok {
			return
		}
		switch b.Name() {
		case "make":
			report(call, "make allocates")
		case "new":
			report(call, "new allocates")
		case "append":
			if len(call.Args) > 0 && !h.rootedInParam(params, call.Args[0], 0) {
				report(call, "append to a locally-allocated slice grows the heap on the hot path "+
					"(append only to caller-provided buffers)")
			}
		}
	case *ast.SelectorExpr:
		fn, ok := h.info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "fmt":
			if !onColdErrorPath(parents, call) {
				report(call, "fmt."+fn.Name()+" allocates (its arguments escape into interfaces)")
			}
		case "errors":
			if fn.Name() == "New" && !onColdErrorPath(parents, call) {
				report(call, "errors.New allocates")
			}
		}
	}
}

// onColdErrorPath reports whether the call is part of a return or
// panic statement: building the error that ends the hot path is cold
// by definition.
func onColdErrorPath(parents parentMap, call *ast.CallExpr) bool {
	for p := parents[call]; p != nil; p = parents[p] {
		switch x := p.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		case *ast.BlockStmt, *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

// paramObjects collects the function's parameter, result and receiver
// objects: slices rooted in these belong to the caller, so appending
// to them is the caller's amortised buffer reuse, not fresh growth.
func (h *hotAllocPass) paramObjects(fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := h.info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(fn.Recv)
	if fn.Type != nil {
		add(fn.Type.Params)
		add(fn.Type.Results)
	}
	return out
}

// rootedInParam reports whether the expression's base identifier is a
// parameter/receiver (directly, through selectors/indices/slices, or
// through a local whose first assignment was itself parameter-rooted —
// the `batch := s.scratch[worker][:0]` idiom).
func (h *hotAllocPass) rootedInParam(params map[types.Object]bool, e ast.Expr, depth int) bool {
	if depth > 4 {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A field chain rooted at a receiver (c.rbuf) belongs to the
			// receiver's owner.
			e = x.X
		case *ast.Ident:
			obj := h.info.Uses[x]
			if obj == nil {
				obj = h.info.Defs[x]
			}
			if obj == nil {
				return false
			}
			if params[obj] {
				return true
			}
			if init, ok := h.firstAssign[obj]; ok && init != x {
				return h.rootedInParam(params, init, depth+1)
			}
			return false
		default:
			return false
		}
	}
}

// capturesOuter reports whether the literal references any identifier
// declared outside itself (package-level and universe names excluded):
// those captures are what force the closure onto the heap.
func (h *hotAllocPass) capturesOuter(lit *ast.FuncLit) bool {
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := h.info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := h.info.Uses[id]
		if obj == nil || declared[obj] {
			return true
		}
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true // package funcs/types/consts and fields via receiver don't capture
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level variable: no capture
		}
		captures = true
		return false
	})
	return captures
}
