package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireBounds enforces the decoder-bounds invariant of the wire
// protocol: every length or count read out of a wire frame must flow
// through a comparison against a cap before it reaches an allocation
// site — make, slice-header arithmetic, or a loop that appends. A
// missing check turns one hostile 5-byte frame ("count = 2^60") into
// an OOM on the master, which is exactly the class of bug the
// MaxFrame / remaining()-ratio guards in internal/wire exist to stop.
//
// The analysis is a per-function taint walk with a same-package
// fixpoint:
//
//   - sources: loads from byte slices (b[i] where b is []byte or
//     [N]byte) and calls to same-package functions that return such
//     taint unguarded (so decoder.uvarint, built from d.buf byte
//     loads, taints its callers);
//   - propagation: through arithmetic, conversions, and assignment —
//     integer-typed values only;
//   - guards: an if-condition ordering comparison (<, <=, >, >=)
//     mentioning a tainted value clears its taint — the code has
//     looked at the value against *something*, which is the invariant
//     this analyzer can check syntactically. For-loop conditions do
//     NOT guard: `for i := 0; i < n; i++ { append… }` is the bug, not
//     the check. A function that guards before returning (the
//     decoder.smallInt pattern) is therefore not a taint source;
//   - sinks: make sizes, slice-expression indices, allocating loops
//     bounded by taint, and calls passing taint to a same-package
//     function whose parameter reaches a sink unguarded.
var WireBounds = &Analyzer{
	Name: "wirebounds",
	Doc: "a length/count decoded from a wire frame must pass a bound check against the frame cap " +
		"before reaching make, slice arithmetic, or an allocating loop",
	Run: runWireBounds,
}

func runWireBounds(pass *Pass) error {
	w := &wireBoundsPass{
		pass:          pass,
		info:          pass.TypesInfo,
		taintReturner: map[types.Object]bool{},
		sinkParams:    map[types.Object]map[int]bool{},
	}
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}
	// Fixpoint: discovering one taint-returner or sink-param can expose
	// another one level up the call chain. Chains in practice are short
	// (byte → uvarint → smallInt); the iteration cap is a safety net.
	for round := 0; round < 8; round++ {
		changed := false
		for _, fn := range fns {
			obj := w.info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			r := w.analyze(fn, wbNormal, false)
			if r.taintReturner && !w.taintReturner[obj] {
				w.taintReturner[obj] = true
				changed = true
			}
			p := w.analyze(fn, wbParamProbe, false)
			for idx := range p.hitParams {
				if w.sinkParams[obj] == nil {
					w.sinkParams[obj] = map[int]bool{}
				}
				if !w.sinkParams[obj][idx] {
					w.sinkParams[obj][idx] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range fns {
		w.analyze(fn, wbNormal, true)
	}
	return nil
}

type wireBoundsPass struct {
	pass *Pass
	info *types.Info
	// taintReturner: functions whose result carries unguarded wire
	// taint; calling one is a taint source.
	taintReturner map[types.Object]bool
	// sinkParams: function → parameter indices that reach an
	// allocation sink without an intervening guard.
	sinkParams map[types.Object]map[int]bool
}

type wbMode int

const (
	// wbNormal taints byte-slice loads and taint-returner calls.
	wbNormal wbMode = iota
	// wbParamProbe taints ONLY the function's own parameters, to
	// discover which of them reach a sink unguarded.
	wbParamProbe
)

// wbTaint is one value's taint: hot means unguarded; prov records
// which parameter indices the taint derives from (empty in wbNormal —
// provenance is "the wire itself").
type wbTaint struct {
	prov map[int]bool
}

type wbResult struct {
	taintReturner bool
	hitParams     map[int]bool
}

// wbWalk is the per-function state machine.
type wbWalk struct {
	w    *wireBoundsPass
	mode wbMode
	emit bool
	hot  map[types.Object]*wbTaint
	res  wbResult
}

func (w *wireBoundsPass) analyze(fn *ast.FuncDecl, mode wbMode, emit bool) wbResult {
	walk := &wbWalk{
		w:    w,
		mode: mode,
		emit: emit,
		hot:  map[types.Object]*wbTaint{},
		res:  wbResult{hitParams: map[int]bool{}},
	}
	if mode == wbParamProbe && fn.Type.Params != nil {
		idx := 0
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if obj := w.info.Defs[name]; obj != nil && isIntegerObj(obj) {
					walk.hot[obj] = &wbTaint{prov: map[int]bool{idx: true}}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	walk.stmts(fn.Body.List)
	return walk.res
}

// stmts processes a statement list in source order, threading the
// taint/guard state through. Function literals are opaque: their
// bodies run on their own schedule and get their own (empty) state
// when this walker is not what the invariant reasons about.
func (v *wbWalk) stmts(list []ast.Stmt) {
	for _, s := range list {
		v.stmt(s)
	}
}

func (v *wbWalk) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		v.assign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					v.setFromRHS(name, rhs, len(vs.Values) == 1 && len(vs.Names) > 1)
				}
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			v.stmt(x.Init)
		}
		v.checkExpr(x.Cond)
		v.applyGuards(x.Cond)
		v.stmts(x.Body.List)
		if x.Else != nil {
			v.stmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			v.stmt(x.Init)
		}
		if x.Cond != nil {
			// For-loop conditions never guard; a tainted bound on an
			// allocating loop is itself a sink.
			if name, t := v.exprTaint(x.Cond); t != nil && bodyAllocates(x.Body) {
				v.sink(x.Cond.Pos(), t,
					"wire-decoded count %s bounds an allocating loop without a bound check against the frame cap", name)
			}
		}
		if x.Post != nil {
			v.stmt(x.Post)
		}
		v.stmts(x.Body.List)
	case *ast.RangeStmt:
		if name, t := v.exprTaint(x.X); t != nil && bodyAllocates(x.Body) {
			v.sink(x.X.Pos(), t,
				"wire-decoded count %s bounds an allocating loop without a bound check against the frame cap", name)
		}
		v.stmts(x.Body.List)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			v.checkExpr(r)
			if v.mode == wbNormal {
				if _, t := v.exprTaint(r); t != nil {
					v.res.taintReturner = true
				}
			}
		}
	case *ast.BlockStmt:
		v.stmts(x.List)
	case *ast.ExprStmt:
		v.checkExpr(x.X)
	case *ast.SwitchStmt:
		if x.Init != nil {
			v.stmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.stmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		v.checkExpr(x.Call)
	case *ast.DeferStmt:
		v.checkExpr(x.Call)
	case *ast.SendStmt:
		v.checkExpr(x.Value)
	case *ast.IncDecStmt:
		// n++ keeps n's taint state as-is.
	case *ast.LabeledStmt:
		v.stmt(x.Stmt)
	}
}

// assign transfers taint from RHS expressions to LHS objects; a
// non-tainted RHS clears the target (reassignment sanitises).
func (v *wbWalk) assign(a *ast.AssignStmt) {
	for _, r := range a.Rhs {
		v.checkExpr(r)
	}
	tuple := len(a.Rhs) == 1 && len(a.Lhs) > 1
	for i, lhs := range a.Lhs {
		var rhs ast.Expr
		if tuple {
			rhs = a.Rhs[0]
		} else if i < len(a.Rhs) {
			rhs = a.Rhs[i]
		}
		if a.Tok == token.ASSIGN || a.Tok == token.DEFINE {
			v.setFromRHS(lhs, rhs, tuple)
			continue
		}
		// Compound (+=, |=, <<=, …): merge RHS taint into the target.
		if rhs == nil {
			continue
		}
		if _, t := v.exprTaint(rhs); t != nil {
			if obj := wbLValueObj(v.w.info, lhs); obj != nil && isIntegerObj(obj) {
				v.merge(obj, t)
			}
		}
	}
}

func (v *wbWalk) setFromRHS(lhs ast.Node, rhs ast.Expr, tuple bool) {
	obj := wbLValueObj(v.w.info, lhs)
	if obj == nil {
		return
	}
	if rhs == nil {
		delete(v.hot, obj)
		return
	}
	_, t := v.exprTaint(rhs)
	if t != nil && isIntegerObj(obj) {
		v.hot[obj] = &wbTaint{prov: t.prov}
		return
	}
	if !tuple || !isIntegerObj(obj) {
		delete(v.hot, obj)
	} else if t != nil {
		v.hot[obj] = &wbTaint{prov: t.prov}
	} else {
		delete(v.hot, obj)
	}
}

func (v *wbWalk) merge(obj types.Object, t *wbTaint) {
	cur, ok := v.hot[obj]
	if !ok {
		v.hot[obj] = &wbTaint{prov: t.prov}
		return
	}
	for p := range t.prov {
		if cur.prov == nil {
			cur.prov = map[int]bool{}
		}
		cur.prov[p] = true
	}
}

// applyGuards clears taint for every object mentioned in an ordering
// comparison of an if-condition.
func (v *wbWalk) applyGuards(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			for _, obj := range wbMentionedObjs(v.w.info, side) {
				delete(v.hot, obj)
			}
		}
		return true
	})
}

// checkExpr scans an expression subtree for sinks: make sizes, slice
// indices, and calls into sink-param functions.
func (v *wbWalk) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SliceExpr:
			for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
				if idx == nil {
					continue
				}
				if name, t := v.exprTaint(idx); t != nil {
					v.sink(idx.Pos(), t,
						"wire-decoded count %s reaches slice arithmetic without a bound check against the frame cap", name)
				}
			}
		case *ast.CallExpr:
			v.checkCall(x)
		}
		return true
	})
}

func (v *wbWalk) checkCall(call *ast.CallExpr) {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = v.w.info.Uses[f]
	case *ast.SelectorExpr:
		obj = v.w.info.Uses[f.Sel]
	}
	if b, ok := obj.(*types.Builtin); ok {
		if b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				if name, t := v.exprTaint(arg); t != nil {
					v.sink(arg.Pos(), t,
						"wire-decoded count %s reaches make without a bound check against the frame cap", name)
				}
			}
		}
		return
	}
	if obj == nil {
		return
	}
	sinks := v.w.sinkParams[obj]
	if len(sinks) == 0 {
		return
	}
	for i, arg := range call.Args {
		if !sinks[i] {
			continue
		}
		if name, t := v.exprTaint(arg); t != nil {
			v.sink(arg.Pos(), t,
				"wire-decoded count %s is passed to %s, which allocates from this parameter without a bound check", name, obj.Name())
		}
	}
}

// sink reports (or, in param-probe mode, records) one sink hit.
func (v *wbWalk) sink(pos token.Pos, t *wbTaint, format string, args ...any) {
	if v.mode == wbParamProbe {
		for p := range t.prov {
			v.res.hitParams[p] = true
		}
		return
	}
	if v.emit {
		v.w.pass.Report(pos, format, args...)
	}
}

// exprTaint reports whether the expression carries taint, returning a
// human-readable name for the tainted value.
func (v *wbWalk) exprTaint(e ast.Expr) (string, *wbTaint) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return v.exprTaint(x.X)
	case *ast.UnaryExpr:
		return v.exprTaint(x.X)
	case *ast.BinaryExpr:
		if name, t := v.exprTaint(x.X); t != nil {
			return name, t
		}
		return v.exprTaint(x.Y)
	case *ast.Ident:
		obj := v.w.info.Uses[x]
		if obj == nil {
			obj = v.w.info.Defs[x]
		}
		if t, ok := v.hot[obj]; ok {
			return x.Name, t
		}
		return "", nil
	case *ast.SelectorExpr:
		var obj types.Object
		if sel, ok := v.w.info.Selections[x]; ok {
			obj = sel.Obj()
		} else {
			obj = v.w.info.Uses[x.Sel]
		}
		if t, ok := v.hot[obj]; ok {
			return x.Sel.Name, t
		}
		return "", nil
	case *ast.IndexExpr:
		if v.mode == wbNormal && isByteSeq(v.w.info, x.X) {
			return "value", &wbTaint{}
		}
		return "", nil
	case *ast.CallExpr:
		// Conversion int(v): taint passes through.
		if tv, ok := v.w.info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return v.exprTaint(x.Args[0])
			}
			return "", nil
		}
		if v.mode != wbNormal {
			return "", nil
		}
		var obj types.Object
		switch f := x.Fun.(type) {
		case *ast.Ident:
			obj = v.w.info.Uses[f]
		case *ast.SelectorExpr:
			obj = v.w.info.Uses[f.Sel]
		}
		if obj != nil && v.w.taintReturner[obj] {
			name := obj.Name() + " result"
			return name, &wbTaint{}
		}
		return "", nil
	default:
		return "", nil
	}
}

// wbLValueObj resolves an assignment target to its object (local,
// field via selector, or indexed base ignored).
func wbLValueObj(info *types.Info, lhs ast.Node) types.Object {
	switch x := lhs.(type) {
	case *ast.Ident:
		if o := info.Defs[x]; o != nil {
			return o
		}
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.ParenExpr:
		return wbLValueObj(info, x.X)
	}
	return nil
}

// wbMentionedObjs lists the variable/field objects an expression
// mentions (for guard application).
func wbMentionedObjs(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				out = append(out, o)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				out = append(out, sel.Obj())
			}
		}
		return true
	})
	return out
}

func isIntegerObj(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUntyped) != 0
}

// isByteSeq reports whether the expression is a []byte / [N]byte / string.
func isByteSeq(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	case *types.Basic:
		return t.Info()&types.IsString != 0
	case *types.Pointer:
		if arr, ok := t.Elem().Underlying().(*types.Array); ok {
			elem = arr.Elem()
		}
	}
	if elem == nil {
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func bodyAllocates(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "append") {
			found = true
		}
		return true
	})
	return found
}
