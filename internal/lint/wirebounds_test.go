package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestWireBounds(t *testing.T) {
	runFixture(t, lint.WireBounds, "wirebounds")
}
