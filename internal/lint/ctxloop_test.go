package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestCtxLoop(t *testing.T) {
	runFixture(t, lint.CtxLoop, "ctxloop")
}
