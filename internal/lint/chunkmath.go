package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ChunkMath guards the paper's chunk-size arithmetic (§4–5 of
// Chronopoulos et al.): every fractional chunk expression must go
// through the shared rounding helpers in internal/sched/chunkmath.go
// (RoundNearest, CeilPos, FloorPos, CeilDiv) rather than an ad-hoc
// int(...) truncation — silent floor-rounding is how a scheme loses
// the work-conservation property ΣC_i = I — and every subtraction of a
// remaining-iteration count must be guarded against going negative
// before it is used, or a drifted frontier turns into a negative
// Config.Iterations and a planning failure mid-run.
//
// The analyzer activates only in packages named "sched"; the helper
// file chunkmath.go is the one place raw float→int conversions are
// allowed.
var ChunkMath = &Analyzer{
	Name: "chunkmath",
	Doc: "chunk-size float→int conversions must use the shared chunkmath helpers, " +
		"and remaining-iteration subtractions must be guarded against negatives",
	Run: runChunkMath,
}

// remainingNames mark an expression as a remaining/total iteration
// count for the subtraction check.
func isRemainingName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range []string{"remaining", "iteration", "total"} {
		if strings.Contains(lower, w) {
			return true
		}
	}
	switch lower {
	case "rem", "iters", "left":
		return true
	}
	return false
}

func runChunkMath(pass *Pass) error {
	if pass.Pkg.Name() != "sched" {
		return nil
	}
	for _, f := range pass.Files {
		file := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if file != "chunkmath.go" && isFloatToIntConversion(pass.TypesInfo, x) {
					pass.Report(x.Pos(),
						"int(...) truncation of a float chunk expression bypasses the shared "+
							"rounding helpers; use RoundNearest/CeilPos/FloorPos from chunkmath.go")
				}
			case *ast.BinaryExpr:
				if x.Op == token.SUB && subtractsRemaining(x) && !guardedSubtraction(parents, x) {
					pass.Report(x.Pos(),
						"subtraction of a remaining-iteration count is not guarded against "+
							"going negative; clamp the result (if r > 0 / max) before use")
				}
			}
			return true
		})
	}
	return nil
}

// isFloatToIntConversion matches T(expr) where T is an integer type
// and expr is float-typed.
func isFloatToIntConversion(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	funTV, ok := info.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return false
	}
	dst, ok := funTV.Type.Underlying().(*types.Basic)
	if !ok || dst.Info()&types.IsInteger == 0 {
		return false
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return false
	}
	src, ok := argTV.Type.Underlying().(*types.Basic)
	return ok && src.Info()&types.IsFloat != 0
}

// subtractsRemaining reports whether either operand of the subtraction
// names a remaining/total iteration count.
func subtractsRemaining(bin *ast.BinaryExpr) bool {
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && isRemainingName(id.Name) {
				found = true
				return false
			}
			return !found
		})
		return found
	}
	return mentions(bin.X) || mentions(bin.Y)
}

// guardedSubtraction decides whether the subtraction's result is
// visibly clamped or range-checked:
//
//   - it is an argument of a call whose name suggests clamping
//     (max, min, clamp, nonneg), or
//   - it initialises a variable inside an if-init whose condition
//     tests that variable (`if r := a - b; r > 0`), or
//   - it is assigned to a variable and a following statement in the
//     same block is an if testing that variable, or
//   - an enclosing if-statement's condition compares identifiers that
//     also appear in the subtraction (the caller pre-checked the
//     ordering).
func guardedSubtraction(parents parentMap, bin *ast.BinaryExpr) bool {
	// Walk up: calls to clamp-like functions and pre-checked ifs.
	for p := parents[ast.Node(bin)]; p != nil; p = parents[p] {
		switch anc := p.(type) {
		case *ast.CallExpr:
			if name := callName(anc); name != "" {
				lower := strings.ToLower(name)
				for _, w := range []string{"max", "min", "clamp", "nonneg"} {
					if strings.Contains(lower, w) {
						return true
					}
				}
			}
		case *ast.IfStmt:
			if condGuards(anc.Cond, bin) {
				return true
			}
		case *ast.AssignStmt:
			if v := singleAssignTarget(anc); v != "" && guardedAfter(parents, anc, v) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func singleAssignTarget(assign *ast.AssignStmt) string {
	if len(assign.Lhs) != 1 {
		return ""
	}
	if id, ok := assign.Lhs[0].(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// condGuards reports whether the if-condition is a comparison that
// mentions a variable also mentioned by the subtraction (or its
// result variable).
func condGuards(cond ast.Expr, sub ast.Node) bool {
	comparison := false
	condNames := map[string]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
				comparison = true
			}
		case *ast.Ident:
			condNames[x.Name] = true
		}
		return true
	})
	if !comparison {
		return false
	}
	shared := false
	ast.Inspect(sub, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && condNames[id.Name] {
			shared = true
			return false
		}
		return !shared
	})
	return shared
}

// guardedAfter looks for an if-statement testing variable v among the
// statements that follow assign in its enclosing block.
func guardedAfter(parents parentMap, assign *ast.AssignStmt, v string) bool {
	block, ok := parents[ast.Node(assign)].(*ast.BlockStmt)
	if !ok {
		// Could be an if-init: `if r := a - b; r > 0`.
		if ifs, ok := parents[ast.Node(assign)].(*ast.IfStmt); ok && ifs.Init == ast.Stmt(assign) {
			return exprMentions(ifs.Cond, v)
		}
		return false
	}
	past := false
	for _, st := range block.List {
		if st == ast.Stmt(assign) {
			past = true
			continue
		}
		if !past {
			continue
		}
		if ifs, ok := st.(*ast.IfStmt); ok && exprMentions(ifs.Cond, v) {
			return true
		}
	}
	return false
}

func exprMentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
