package lint

import (
	"go/ast"
	"go/types"
)

// TimeSample guards the feedback/metrics coherence the schemes' ACP
// learning depends on: calling time.Since twice on the same sample
// point yields two different durations — they drift apart by whatever
// ran between the calls — so the elapsed time fed to
// FeedbackPolicy.Feedback silently disagrees with the Comp metric or
// the trace span computed from the second reading. The fix is always
// the same: take one reading into a variable and reuse it.
//
// The analyzer flags two or more time.Since(x) calls on the same
// variable x within one function body (closures are separate scopes),
// unless x is re-armed — assigned more than once in that scope —
// between measurements.
var TimeSample = &Analyzer{
	Name: "timesample",
	Doc: "repeated time.Since(x) on one sample point drifts: the readings differ " +
		"by the work between them; take one reading and reuse it",
	Run: runTimeSample,
}

func runTimeSample(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkTimeSampleScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkTimeSampleScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkTimeSampleScope analyzes one function body, treating nested
// function literals as foreign scopes (they get their own pass from
// runTimeSample's walk).
func checkTimeSampleScope(pass *Pass, body *ast.BlockStmt) {
	sinceCalls := map[types.Object][]ast.Node{}
	assigns := map[types.Object]int{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, analyzed on its own
		case *ast.CallExpr:
			if obj := timeSinceArg(pass.TypesInfo, x); obj != nil {
				sinceCalls[obj] = append(sinceCalls[obj], x)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := identObject(pass.TypesInfo, id); obj != nil {
					assigns[obj]++
				}
			}
		case *ast.ValueSpec:
			for _, id := range x.Names {
				if obj := identObject(pass.TypesInfo, id); obj != nil {
					assigns[obj]++
				}
			}
		}
		return true
	})

	for obj, calls := range sinceCalls {
		// One assignment is the sample point being armed; more means
		// the variable is re-armed between readings.
		if len(calls) < 2 || assigns[obj] > 1 {
			continue
		}
		for _, call := range calls[1:] {
			pass.Report(call.Pos(),
				"repeated time.Since(%s) on one sample point: the readings drift apart "+
					"by the work between them; take one reading and reuse it", obj.Name())
		}
	}
}

// timeSinceArg returns the variable object x when call is
// time.Since(x) with a plain identifier argument, else nil.
func timeSinceArg(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.FullName() != "time.Since" {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObject(info, id)
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// identObject resolves an identifier to its object via Uses or Defs.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
