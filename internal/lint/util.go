package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type helpers for the analyzers.

// isNamedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContext reports whether the expression has type context.Context.
func isContext(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isNamedType(tv.Type, "context", "Context")
}

// receiverOf returns the method call's receiver expression and method
// name, or nil/"" when the call is not of the form expr.Method(...).
func receiverOf(call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// terminationWords are name fragments that mark an expression as part
// of a run-termination or cancellation signal. A blocking loop that
// mentions one of these is considered to observe shutdown.
var terminationWords = []string{"done", "stop", "quit", "closed", "cancel", "finish"}

// mentionsTermination reports whether any identifier under n carries a
// termination-signal name (case-insensitive substring match).
func mentionsTermination(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		lower := strings.ToLower(id.Name)
		for _, w := range terminationWords {
			if strings.Contains(lower, w) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// parentMap records each node's syntactic parent within a file.
type parentMap map[ast.Node]ast.Node

func buildParents(f *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc walks up the parent chain to the nearest function
// declaration or literal containing n; the bool distinguishes a
// FuncDecl (true) from a FuncLit (false). Returns nil, nil, false at
// file scope.
func enclosingFunc(parents parentMap, n ast.Node) (*ast.FuncDecl, *ast.FuncLit, bool) {
	for p := parents[n]; p != nil; p = parents[p] {
		switch f := p.(type) {
		case *ast.FuncDecl:
			return f, nil, true
		case *ast.FuncLit:
			return nil, f, false
		}
	}
	return nil, nil, false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// recvFieldMutexOp decodes calls of the form recv.field.Lock() (and
// Unlock/RLock/RUnlock) where field is a mutex on the method's
// receiver: it returns the field name and the operation. The receiver
// identifier must match recvName.
func recvFieldMutexOp(info *types.Info, call *ast.CallExpr, recvName string) (field, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op = sel.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || base.Name != recvName {
		return "", ""
	}
	if tv, ok := info.Types[inner]; !ok || !isMutexType(tv.Type) {
		return "", ""
	}
	return inner.Sel.Name, op
}
