// Package hotalloc fixtures: //lint:loopsched-hotpath functions (and
// their same-package callees) must not use heap-allocating constructs.
package hotalloc

import (
	"fmt"

	"loopsched/internal/telemetry"
)

// Encode appends into the caller's buffer: parameter-rooted append is
// the codec idiom and stays clean.
//
//lint:loopsched-hotpath
func Encode(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// Gather allocates its own slice and grows it: both flagged.
//
//lint:loopsched-hotpath
func Gather(vs []int) []int {
	out := []int{} // want `slice literal allocates`
	for _, v := range vs {
		out = append(out, v) // want `append to a locally-allocated slice`
	}
	return out
}

//lint:loopsched-hotpath
func Resize(n int) []byte {
	return make([]byte, n) // want `make allocates`
}

// Decode shows the cold-error-path exemption: building the error that
// ends the hot path is allowed, chatter on the hot path is not.
//
//lint:loopsched-hotpath
func Decode(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("hotalloc fixture: empty frame") // ok: cold error path
	}
	fmt.Printf("decoding %d bytes\n", len(b)) // want `fmt.Printf allocates`
	return uint64(b[0]), nil
}

// Publish is clean itself but calls helper, which is checked as part
// of the hot closure.
//
//lint:loopsched-hotpath
func Publish(b []byte) int {
	return helper(b)
}

func helper(b []byte) int {
	m := map[int]int{} // want `hot path helper \(reached from hot path Publish\): map literal allocates`
	m[1] = len(b)
	return m[1]
}

//lint:loopsched-hotpath
func Box(v int) any {
	return any(v) // want `conversion to interface type allocates`
}

type node struct{ v int }

//lint:loopsched-hotpath
func NewNode(v int) *node {
	return &node{v: v} // want `&composite literal escapes`
}

//lint:loopsched-hotpath
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement spawns a goroutine` `capturing closure`
}

// Grow carries a documented suppression for a deliberate warmup
// allocation.
//
//lint:loopsched-hotpath
func Grow(b []byte, n int) []byte {
	//lint:loopsched-ignore hotalloc one-time warmup growth, amortised across calls
	extra := make([]byte, n)
	return append(b, extra...)
}

// hotPublish is the adversarial telemetry case: the nil-safe Publish
// path takes a flat Event value — struct literals stay on the stack,
// so a correctly written instrumentation site is clean.
//
//lint:loopsched-hotpath
func hotPublish(b *telemetry.Bus, worker, size int) {
	b.Publish(telemetry.Event{
		Worker: worker,
		Size:   size,
		At:     b.Now(),
	})
}
