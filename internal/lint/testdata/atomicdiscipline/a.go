// Package atomicdiscipline fixtures: a field accessed via sync/atomic
// anywhere must be accessed atomically everywhere, with the
// publication-pattern allowance (plain access before goroutine start
// or after join evidence).
package atomicdiscipline

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n    int64
	hits int64
}

// Start spawns the atomic writer.
func (c *counter) Start(done chan struct{}) {
	go func() {
		atomic.AddInt64(&c.n, 1)
		close(done)
	}()
}

// ReadRacy reads plainly with no join evidence and no spawn ordering:
// this is the mixed-access race the analyzer exists for.
func (c *counter) ReadRacy() int64 {
	return c.n // want `n is accessed via sync/atomic`
}

// joined reads after a WaitGroup join: allowed.
func joined() int64 {
	var n int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		atomic.AddInt64(&n, 1)
	}()
	wg.Wait()
	return n // ok: read after join
}

// chanJoined reads after a channel-receive join: allowed.
func chanJoined() int64 {
	var n int64
	done := make(chan struct{})
	go func() {
		atomic.AddInt64(&n, 1)
		close(done)
	}()
	<-done
	return n // ok: read after channel join
}

// initThenSpawn writes plainly before any goroutine exists: allowed.
func initThenSpawn() chan struct{} {
	var n int64
	n = 40 // ok: initialisation before spawn
	done := make(chan struct{})
	go func() {
		atomic.AddInt64(&n, 2)
		close(done)
	}()
	return done
}

// mixedPtr targets a pointer: moving the pointer around is fine, but a
// dereference is a plain value access.
func mixedPtr(p *int64) int64 {
	atomic.AddInt64(p, 1)
	q := p // ok: the pointer itself is not the value
	_ = q
	return *p // want `p is accessed via sync/atomic`
}

// ring is the adversarial Chase-Lev shape: slots written atomically by
// the owner, read with a deliberate torn read by thieves, validated by
// the CAS on top before the value is used.
type ring struct {
	top   int64
	slots [8]int64
}

func (r *ring) put(i int, v int64) {
	atomic.StoreInt64(&r.slots[i&7], v)
}

func (r *ring) steal() (int64, bool) {
	t := atomic.LoadInt64(&r.top)
	//lint:loopsched-ignore atomicdiscipline torn read is validated by the CAS on top before the value is trusted
	v := r.slots[t&7]
	if atomic.CompareAndSwapInt64(&r.top, t, t+1) {
		return v, true
	}
	return 0, false
}

// stealRacy is the same read without the validating CAS (and without
// the documented suppression): flagged.
func (r *ring) stealRacy() int64 {
	t := atomic.LoadInt64(&r.top)
	return r.slots[t&7] // want `slots is accessed via sync/atomic`
}

// reset writes top plainly in a function with no ordering evidence at
// all: flagged even though it "looks" single-threaded.
func (r *ring) reset() {
	r.top = 0 // want `top is accessed via sync/atomic`
}

// stepLedger is the fetch-and-add scheduling-ledger shape: every
// worker claims steps with AddUint64, so every other access to the
// counter must be atomic too.
type stepLedger struct {
	step uint64
}

func (l *stepLedger) claim(n uint64) uint64 {
	return atomic.AddUint64(&l.step, n) - n
}

// drainedRacy peeks at the counter plainly to decide whether the table
// is drained: flagged — the peek races every in-flight claim.
func (l *stepLedger) drainedRacy(steps uint64) bool {
	return l.step >= steps // want `step is accessed via sync/atomic`
}

// drained does the same check atomically: allowed.
func (l *stepLedger) drained(steps uint64) bool {
	return atomic.LoadUint64(&l.step) >= steps // ok: atomic everywhere
}

// seedRacy re-arms the counter for a fresh stage with a plain store
// and no ordering evidence: flagged; stage setup must use StoreUint64
// (or prove quiescence with a join).
func (l *stepLedger) seedRacy() {
	l.step = 0 // want `step is accessed via sync/atomic`
}
