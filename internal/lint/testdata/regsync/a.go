// Fixture for the regsync analyzer: a miniature of internal/sched's
// Register/Lookup registry.
package regsync

// Scheme mirrors sched.Scheme's shape.
type Scheme interface {
	Name() string
}

var registry = map[string]Scheme{}

// Register adds a scheme to the registry.
func Register(s Scheme) {
	registry[s.Name()] = s
}

// GoodScheme is registered once: clean.
type GoodScheme struct{}

func (GoodScheme) Name() string { return "GOOD" }

// OrphanScheme is exported, implements Scheme, and never registered.
type OrphanScheme struct{} // want `exported scheme type OrphanScheme is never registered`

func (OrphanScheme) Name() string { return "ORPHAN" }

// ShadowScheme's name collides with GoodScheme's up to case.
type ShadowScheme struct{}

func (ShadowScheme) Name() string { return "good" }

// NamelessScheme registers under the empty string.
type NamelessScheme struct{}

func (NamelessScheme) Name() string { return "" }

// builtScheme is unexported: exempt from the registration requirement,
// but its constructor-carried name still participates in uniqueness.
type builtScheme struct{ name string }

func (b builtScheme) Name() string { return b.name }

// NewBuilt mirrors sched's NewDFSS-style constructors.
func NewBuilt() Scheme { return builtScheme{name: "BUILT"} }

// VariantScheme has a conditional name: statically indeterminate, so
// only the runtime round-trip tests can check it.
type VariantScheme struct{ K int }

func (v VariantScheme) Name() string {
	if v.K > 1 {
		return "VARIANT+"
	}
	return "VARIANT"
}

func init() {
	Register(GoodScheme{})
	Register(GoodScheme{})     // want `duplicate registration of GoodScheme{}`
	Register(ShadowScheme{})   // want `scheme name "good" collides case-insensitively`
	Register(NamelessScheme{}) // want `registered scheme has an empty name`
	Register(NewBuilt())
	Register(VariantScheme{K: 1})
	Register(VariantScheme{K: 8})
}

// registerLate sneaks a registration past init ordering.
func registerLate() { // the call below, not the decl, is flagged
	Register(builtScheme{name: "late"}) // want `Register must be called from an init function`
}

var _ = registerLate
