// Fixture for the timesample analyzer: repeated time.Since on one
// sample point yields readings that drift apart by the work between
// them — take one reading and reuse it.
package timesample

import "time"

func work(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += float64(i)
	}
	return total
}

// Flagged: the elapsed fed downstream and the metric use different
// readings of the same sample point.
func drift(n int) (fed, comp float64) {
	start := time.Now()
	work(n)
	fed = time.Since(start).Seconds()
	comp = time.Since(start).Seconds() // want `repeated time\.Since\(start\)`
	return
}

// Flagged: a sample point received as a parameter, read twice.
func paramDrift(start time.Time) (a, b float64) {
	a = time.Since(start).Seconds()
	b = time.Since(start).Seconds() // want `repeated time\.Since\(start\)`
	return
}

// Flagged: three readings report twice (every call after the first).
func tripleDrift(n int) (a, b, c float64) {
	start := time.Now()
	work(n)
	a = time.Since(start).Seconds()
	b = time.Since(start).Seconds() // want `repeated time\.Since\(start\)`
	c = time.Since(start).Seconds() // want `repeated time\.Since\(start\)`
	return
}

// Clean: one reading, reused.
func single(n int) (fed, comp float64) {
	start := time.Now()
	work(n)
	elapsed := time.Since(start).Seconds()
	return elapsed, elapsed
}

// Clean: the sample point is re-armed between readings, so the two
// durations measure different intervals on purpose.
func rearmed(n int) (a, b float64) {
	start := time.Now()
	work(n)
	a = time.Since(start).Seconds()
	start = time.Now()
	work(n)
	b = time.Since(start).Seconds()
	return
}

// Clean: one reading per scope — the closure measures independently of
// the enclosing function.
func perScope(start time.Time) func() float64 {
	_ = time.Since(start).Seconds()
	return func() float64 {
		return time.Since(start).Seconds()
	}
}

// Clean: a fresh sample point per loop pass (single call site, single
// arming statement executed repeatedly).
func perIteration(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		chunkStart := time.Now()
		work(i)
		total += time.Since(chunkStart).Seconds()
	}
	return total
}

// Suppressed: deliberate re-reads carry their justification.
func suppressed(n int) (a, b float64) {
	start := time.Now()
	work(n)
	a = time.Since(start).Seconds()
	//lint:loopsched-ignore timesample fixture: progressive timestamps wanted here
	b = time.Since(start).Seconds()
	return
}
