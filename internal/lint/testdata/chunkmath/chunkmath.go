// chunkmath.go is the one file where raw float→int conversions are
// allowed: it hosts the shared rounding helpers everything else must
// go through (mirrors internal/sched/chunkmath.go).
package sched

// RoundNearest rounds half away from zero for non-negative x.
func RoundNearest(x float64) int {
	return int(x + 0.5)
}

// CeilPos is ⌈x⌉ for non-negative x.
func CeilPos(x float64) int {
	v := int(x)
	if float64(v) < x {
		v++
	}
	return v
}

// FloorPos is ⌊x⌋ for non-negative x.
func FloorPos(x float64) int {
	return int(x)
}
