// Fixture for the chunkmath analyzer: ad-hoc float truncation and
// unguarded remaining-count subtraction.
package sched

// Flagged: silent truncation of a fractional chunk size.
func truncatedChunk(remaining float64, p int) int {
	return int(remaining / float64(p)) // want `int\(\.\.\.\) truncation of a float chunk expression`
}

// Flagged: the rounding idiom still bypasses the shared helpers.
func handRolledRound(share float64) int {
	return int(share + 0.5) // want `int\(\.\.\.\) truncation of a float chunk expression`
}

// Clean: conversions through the chunkmath.go helpers.
func helperChunk(remaining float64, p int) int {
	return RoundNearest(remaining / float64(p))
}

// Clean: int→float widening is not a truncation.
func widen(total int) float64 {
	return float64(total) / 2
}

// Flagged: a drifted frontier makes this negative, and nothing clamps.
func unguardedRemaining(total, next int) int {
	return total - next // want `subtraction of a remaining-iteration count is not guarded`
}

// Flagged: the config field is built from an unguarded subtraction.
type planConfig struct {
	Iterations int
}

func unguardedPlan(iterations, base int) planConfig {
	return planConfig{Iterations: iterations - base} // want `subtraction of a remaining-iteration count is not guarded`
}

// Clean: the if-init guard is the canonical pattern.
func guardedRemaining(total, next int) int {
	if r := total - next; r > 0 {
		return r
	}
	return 0
}

// Clean: assign-then-test also counts.
func guardedAssign(iterations, base int) int {
	r := iterations - base
	if r < 1 {
		r = 1
	}
	return r
}

// Clean: clamped through a max-style helper.
func clampNonNeg(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func guardedByClamp(total, next int) int {
	return clampNonNeg(total-next, 0)
}

// Clean: the enclosing if pre-checks the ordering.
func guardedByBranch(total, next int) int {
	if total > next {
		return total - next
	}
	return 0
}

// Clean: subtraction of unrelated quantities is out of scope.
func unrelated(a, b int) int {
	return a - b
}
