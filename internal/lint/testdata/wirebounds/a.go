// Package wirebounds fixtures: every length/count decoded from a wire
// frame must pass a bound check against the frame cap before reaching
// make, slice arithmetic, or an allocating loop.
package wirebounds

const maxFrame = 1 << 20

// readU32 assembles a count from raw frame bytes: its result carries
// wire taint, and because it returns unguarded it taints its callers.
func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func decodeBad(b []byte) []byte {
	n := int(readU32(b))
	return make([]byte, n) // want `wire-decoded count n reaches make`
}

func decodeGood(b []byte) ([]byte, bool) {
	n := int(readU32(b))
	if n > maxFrame {
		return nil, false
	}
	return make([]byte, n), true // ok: guarded above
}

func sliceBad(b []byte) []byte {
	n := int(readU32(b))
	return b[4 : 4+n] // want `wire-decoded count n reaches slice arithmetic`
}

func sliceGood(b []byte) []byte {
	n := int(readU32(b))
	if 4+n > len(b) {
		return nil
	}
	return b[4 : 4+n] // ok: guarded against the buffer length
}

func loopBad(b []byte) []int {
	n := int(readU32(b))
	var out []int
	for i := 0; i < n; i++ { // want `wire-decoded count n bounds an allocating loop`
		out = append(out, i)
	}
	return out
}

func loopGood(b []byte) []int {
	n := int(readU32(b))
	if n > maxFrame {
		n = maxFrame
	}
	var out []int
	for i := 0; i < n; i++ { // ok: n was checked against the cap
		out = append(out, i)
	}
	return out
}

// alloc allocates from its parameter without checking it, so the
// obligation moves to its callers.
func alloc(n int) []byte {
	return make([]byte, n)
}

func callBad(b []byte) []byte {
	return alloc(int(readU32(b))) // want `wire-decoded count readU32 result is passed to alloc`
}

func callGood(b []byte) []byte {
	n := int(readU32(b))
	if n > maxFrame {
		n = maxFrame
	}
	return alloc(n) // ok: guarded before the call
}

// readChecked guards before returning — the decoder.smallInt pattern —
// so it is NOT a taint source and its callers owe no further checks.
func readChecked(b []byte) (int, bool) {
	n := int(readU32(b))
	if n > maxFrame {
		return 0, false
	}
	return n, true
}

func useChecked(b []byte) []byte {
	n, ok := readChecked(b)
	if !ok {
		return nil
	}
	return make([]byte, n) // ok: readChecked guarded internally
}

func suppressedSink(b []byte) []byte {
	n := int(readU32(b))
	//lint:loopsched-ignore wirebounds frame comes from the trusted in-process framer, capped at source
	return make([]byte, n)
}

// decodeClaim mirrors the ledger's FetchAdd/Step reply: a step count
// assembled from raw frame bytes, returned unguarded, so the claim
// size taints callers — a hostile "claim 2^60 steps" reply must meet a
// bound check before it sizes anything.
func decodeClaim(b []byte) int {
	return int(b[0]&0x7f) | int(b[1])<<7
}

const maxSteps = 1 << 22 // the ledger's table cap

func claimQueueBad(b []byte) []int {
	n := decodeClaim(b)
	var queue []int
	for i := 0; i < n; i++ { // want `wire-decoded count n bounds an allocating loop`
		queue = append(queue, i)
	}
	return queue
}

func claimQueueGood(b []byte) []int {
	n := decodeClaim(b)
	if n > maxSteps {
		n = maxSteps
	}
	var queue []int
	for i := 0; i < n; i++ { // ok: clamped to the table cap
		queue = append(queue, i)
	}
	return queue
}

func claimTableBad(b []byte) []int {
	n := decodeClaim(b)
	return make([]int, n) // want `wire-decoded count n reaches make`
}
