// Fixture for the gojoin analyzer: every goroutine needs a visible
// join or bound.
package gojoin

import (
	"context"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
)

// Flagged: fire-and-forget literal with no join evidence.
func fire(f func()) {
	go func() { // want `goroutine has no visible join or bound`
		f()
	}()
}

// Clean: WaitGroup join.
func joined(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

// Clean: signals completion by closing a channel.
func closer(f func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	return done
}

// Clean: bounded by a ctx-aware select.
func watcher(ctx context.Context, kick chan struct{}, f func()) {
	go func() {
		select {
		case <-ctx.Done():
		case <-kick:
			f()
		}
	}()
}

// Clean: bounded by draining a channel the producer closes.
func drain(ch chan int, total *int) {
	go func() {
		for v := range ch {
			*total += v
		}
	}()
}

// worker's body drains its channel: launching it is clean.
func worker(ch chan int) {
	for range ch {
	}
}

func spawnWorker(ch chan int) {
	go worker(ch)
}

// pump has no join evidence, so launching it is flagged.
func pump(xs []int) {
	s := 0
	for _, x := range xs {
		s += x
	}
	_ = s
}

func spawnPump(xs []int) {
	go pump(xs) // want `goroutine callee has no visible join or bound`
}

// Method callee resolution: run is bounded by its done channel.
type looper struct {
	done chan struct{}
}

func (l *looper) run() {
	<-l.done
}

func (l *looper) spawn() {
	go l.run()
}

// Flagged: a foreign callee's body cannot be checked from here.
func serveConn(srv *rpc.Server, conn net.Conn) {
	go srv.ServeConn(conn) // want `goroutine body is outside this package`
}

// The scheduler daemon's long-lived goroutines: the admission loop and
// the drainer outlive any one job, so Close can only prove the fleet
// exited if each carries join evidence.
type fleet struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

// Clean: the drainer signals the WaitGroup and is bounded by the quit
// channel, so Close's wg.Wait observes its exit.
func (f *fleet) startDrainer(settled chan int, outstanding *int) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			select {
			case <-settled:
				*outstanding--
			case <-f.quit:
				return
			}
		}
	}()
}

// admitSpin polls shared counters with no channel or WaitGroup in
// sight: nothing ever learns whether the admission loop exited.
func admitSpin(pending, active *int32) {
	for atomic.LoadInt32(pending) > 0 {
		atomic.AddInt32(active, 1)
		atomic.AddInt32(pending, -1)
	}
}

func (f *fleet) startAdmission(pending, active *int32) {
	go admitSpin(pending, active) // want `goroutine callee has no visible join or bound`
}

// Flagged then suppressed: the justification rides on the directive.
func suppressed(f func()) {
	//lint:loopsched-ignore gojoin fixture: process-lifetime helper, exits with main
	go func() {
		f()
	}()
}

// Nested literals: the outer goroutine's evidence cannot come from the
// inner one.
func nested(ch chan int) {
	go func() { // want `goroutine has no visible join or bound`
		go func() {
			<-ch
		}()
	}()
}
