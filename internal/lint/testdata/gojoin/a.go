// Fixture for the gojoin analyzer: every goroutine needs a visible
// join or bound.
package gojoin

import (
	"context"
	"net"
	"net/rpc"
	"sync"
)

// Flagged: fire-and-forget literal with no join evidence.
func fire(f func()) {
	go func() { // want `goroutine has no visible join or bound`
		f()
	}()
}

// Clean: WaitGroup join.
func joined(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

// Clean: signals completion by closing a channel.
func closer(f func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	return done
}

// Clean: bounded by a ctx-aware select.
func watcher(ctx context.Context, kick chan struct{}, f func()) {
	go func() {
		select {
		case <-ctx.Done():
		case <-kick:
			f()
		}
	}()
}

// Clean: bounded by draining a channel the producer closes.
func drain(ch chan int, total *int) {
	go func() {
		for v := range ch {
			*total += v
		}
	}()
}

// worker's body drains its channel: launching it is clean.
func worker(ch chan int) {
	for range ch {
	}
}

func spawnWorker(ch chan int) {
	go worker(ch)
}

// pump has no join evidence, so launching it is flagged.
func pump(xs []int) {
	s := 0
	for _, x := range xs {
		s += x
	}
	_ = s
}

func spawnPump(xs []int) {
	go pump(xs) // want `goroutine callee has no visible join or bound`
}

// Method callee resolution: run is bounded by its done channel.
type looper struct {
	done chan struct{}
}

func (l *looper) run() {
	<-l.done
}

func (l *looper) spawn() {
	go l.run()
}

// Flagged: a foreign callee's body cannot be checked from here.
func serveConn(srv *rpc.Server, conn net.Conn) {
	go srv.ServeConn(conn) // want `goroutine body is outside this package`
}

// Flagged then suppressed: the justification rides on the directive.
func suppressed(f func()) {
	//lint:loopsched-ignore gojoin fixture: process-lifetime helper, exits with main
	go func() {
		f()
	}()
}

// Nested literals: the outer goroutine's evidence cannot come from the
// inner one.
func nested(ch chan int) {
	go func() { // want `goroutine has no visible join or bound`
		go func() {
			<-ch
		}()
	}()
}
