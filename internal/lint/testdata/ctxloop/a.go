// Fixture for the ctxloop analyzer: blocking loops must observe a
// cancellation or termination signal.
package ctxloop

import (
	"context"
	"net/rpc"
	"sync"

	"loopsched/internal/steal"
	"loopsched/internal/wire"
)

// Flagged: receives forever with no way to observe shutdown.
func recvForever(ch chan int, out *int) {
	for { // want `blocking loop \(channel receive\) never observes ctx\.Done`
		v := <-ch
		*out += v
	}
}

// Flagged: the canonical condvar loop, but nothing in the predicate or
// body reflects a closed/done flag.
func condForever(c *sync.Cond, n *int) {
	c.L.Lock()
	for *n == 0 { // want `blocking loop \(cond\.Wait\) never observes ctx\.Done`
		c.Wait()
	}
	c.L.Unlock()
}

// Flagged: an RPC client loop that can only end via transport error.
func callForever(client *rpc.Client, acc *int) error {
	for { // want `blocking loop \(rpc round-trip\) never observes ctx\.Done`
		var reply int
		if err := client.Call("Master.NextChunk", 1, &reply); err != nil {
			return err
		}
		*acc += reply
	}
}

// Flagged: a framed-codec request loop with no termination evidence —
// only a transport error ends it, exactly the rpc.Client case.
func wireCallForever(c *wire.Conn, acc *int) error {
	var req wire.Request
	var rep wire.Reply
	for { // want `blocking loop \(wire round-trip\) never observes ctx\.Done`
		if err := c.Call(&req, &rep); err != nil {
			return err
		}
		*acc += len(rep.Grants)
	}
}

// Flagged: a server-side read loop that never checks for the Stop
// handshake.
func wireReadForever(c *wire.Conn, acc *int) error {
	var req wire.Request
	for { // want `blocking loop \(wire read\) never observes ctx\.Done`
		if err := c.ReadRequest(&req); err != nil {
			return err
		}
		*acc += len(req.Results)
	}
}

// Clean: the select observes ctx.Done().
func recvWithCtx(ctx context.Context, ch chan int, out *int) {
	for {
		select {
		case v := <-ch:
			*out += v
		case <-ctx.Done():
			return
		}
	}
}

// Clean: the condvar predicate includes a closed flag.
func condWithClosed(c *sync.Cond, n *int, closed *bool) {
	c.L.Lock()
	for *n == 0 && !*closed {
		c.Wait()
	}
	c.L.Unlock()
}

type chunkReply struct {
	Size int
	Stop bool
}

// Clean: the protocol's Stop reply terminates the loop.
func callWithStop(client *rpc.Client, acc *int) error {
	for {
		var reply chunkReply
		if err := client.Call("Master.NextChunk", 1, &reply); err != nil {
			return err
		}
		if reply.Stop {
			return nil
		}
		*acc += reply.Size
	}
}

// Clean: the wire protocol's Stop reply terminates the loop.
func wireCallWithStop(c *wire.Conn, acc *int) error {
	var req wire.Request
	var rep wire.Reply
	for {
		if err := c.Call(&req, &rep); err != nil {
			return err
		}
		if rep.Stop {
			return nil
		}
		*acc += len(rep.Grants)
	}
}

// Clean: a done channel is as good as a context.
func recvWithDone(done chan struct{}, ch chan int, out *int) {
	for {
		select {
		case v := <-ch:
			*out += v
		case <-done:
			return
		}
	}
}

// Clean: non-blocking loops are out of scope.
func pureCompute(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Flagged: a work-stealing acquisition spin with no termination check
// polls forever once the run is cancelled.
func popForever(d *steal.Deque, out *int) {
	for { // want `blocking loop \(work-stealing acquisition loop\) never observes ctx\.Done`
		if a, ok := d.Pop(); ok {
			*out += a.Size
		}
	}
}

// Flagged: scanning victims is the same spin.
func stealForever(victims []*steal.Deque, out *int) {
	for { // want `blocking loop \(work-stealing acquisition loop\) never observes ctx\.Done`
		for _, d := range victims {
			if a, ok := d.Steal(); ok {
				*out += a.Size
			}
		}
	}
}

// Clean: a conditioned victim scan is bounded by construction, not a
// spin.
func boundedScan(victims []*steal.Deque, out *int) bool {
	for i := 0; i < len(victims); i++ {
		if a, ok := victims[i].Steal(); ok {
			*out += a.Size
			return true
		}
	}
	return false
}

// Clean: the acquisition loop checks ctx on every pass.
func popWithCtx(ctx context.Context, d *steal.Deque, out *int) {
	for {
		if ctx.Err() != nil {
			return
		}
		if a, ok := d.Pop(); ok {
			*out += a.Size
		}
	}
}

// The scheduler daemon's service loops: an admission loop multiplexing
// a stream of job submissions, and a drain barrier awaiting settlement.
// Both run for the scheduler's lifetime, so both must observe shutdown.

type submitReq struct {
	tenant string
	weight int
}

// Flagged: the admission loop multiplexes submissions and completions
// but has no shutdown case; Close hangs waiting for it to exit.
func admitForever(submit chan submitReq, settled chan string, active map[string]int) {
	for { // want `blocking loop \(channel receive\) never observes ctx\.Done`
		select {
		case r := <-submit:
			active[r.tenant] += r.weight
		case t := <-settled:
			active[t]--
		}
	}
}

// Clean: the admission loop's select carries a stop case.
func admitWithStop(stop chan struct{}, submit chan submitReq, active map[string]int) {
	for {
		select {
		case r := <-submit:
			active[r.tenant] += r.weight
		case <-stop:
			return
		}
	}
}

// Flagged: the drain barrier counts outstanding jobs down but cannot
// see a cancelled run; Drain hangs if a worker dies without settling.
func drainForever(settled chan string, outstanding *int) {
	for *outstanding > 0 { // want `blocking loop \(channel receive\) never observes ctx\.Done`
		<-settled
		*outstanding--
	}
}

// Clean: the drain barrier races settlement against cancellation.
func drainWithCtx(ctx context.Context, settled chan string, outstanding *int) {
	for *outstanding > 0 {
		select {
		case <-settled:
			*outstanding--
		case <-ctx.Done():
			return
		}
	}
}

// Suppressed: the justification rides on the directive.
func suppressedRecv(ch chan int, out *int) {
	//lint:loopsched-ignore ctxloop fixture: lifetime bounded by the sender closing ch
	for {
		v := <-ch
		if v == 0 {
			return
		}
		*out += v
	}
}
