// Package lockorder fixtures: the module-wide lock acquisition graph
// must stay acyclic. Cycles are reported once, anchored at the witness
// edge leaving the lexicographically smallest lock class in the cycle.
package lockorder

import "sync"

// alpha/beta: a direct two-lock inversion.
type alpha struct {
	mu sync.Mutex
	b  *beta
}

type beta struct {
	mu sync.Mutex
	a  *alpha
}

func (a *alpha) lockBoth() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock() // want `lock order cycle`
	a.b.mu.Unlock()
}

func (b *beta) lockBoth() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
}

// gamma/delta: the same inversion, but both halves hide behind calls —
// the edge only exists interprocedurally.
type gamma struct{ mu sync.Mutex }

func (g *gamma) poke() {
	g.mu.Lock()
	g.mu.Unlock()
}

type delta struct {
	mu sync.Mutex
	g  *gamma
}

func (d *delta) run() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.g.poke() // want `lock order cycle`
}

func (d *delta) helper() {
	d.mu.Lock()
	d.mu.Unlock()
}

func (g *gamma) invert(d *delta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d.helper()
}

// sched/job/bus: the repo's real hierarchy shape — a DAG, so no
// findings even though three classes chain.
type bus struct{ mu sync.Mutex }

func (b *bus) publish() {
	b.mu.Lock()
	b.mu.Unlock()
}

type job struct {
	mu sync.Mutex
	b  *bus
}

func (j *job) refill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.b.publish() // ok: job.mu -> bus.mu, no back edge
}

type sched struct {
	mu sync.Mutex
	j  *job
}

func (s *sched) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j.refill() // ok: sched.mu -> job.mu -> bus.mu stays a DAG
}

// eps/zeta: a real inversion deliberately accepted, with the
// justification on the suppression.
type eps struct {
	mu sync.Mutex
	z  *zeta
}

type zeta struct {
	mu sync.Mutex
	e  *eps
}

func (e *eps) both() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:loopsched-ignore lockorder the zeta side is quiesced before eps ever locks in production
	e.z.mu.Lock()
	e.z.mu.Unlock()
}

func (z *zeta) both() {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.e.mu.Lock()
	z.e.mu.Unlock()
}
