// Fixture for the locksafe analyzer: non-reentrant mutex discipline
// across a type's methods.
package locksafe

import "sync"

type ledger struct {
	mu      sync.Mutex
	pending int
}

func (l *ledger) bump() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending++
}

// Flagged: bump re-acquires the mutex flush already holds.
func (l *ledger) flush() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bump() // want `flush calls bump while holding l\.mu.*self-deadlock`
	return l.pending
}

// Flagged: the *Locked suffix promises the caller holds the mutex.
func (l *ledger) resetLocked() { // want `resetLocked is named \*Locked .* but acquires l\.mu itself`
	l.mu.Lock()
	l.pending = 0
	l.mu.Unlock()
}

// Clean: the snapshot is taken under the lock, the call happens after.
func (l *ledger) poll() {
	l.mu.Lock()
	n := l.pending
	l.mu.Unlock()
	if n > 0 {
		l.bump()
	}
}

// Clean: drainLocked's first operation is Unlock (drop and reacquire),
// so calling it with the mutex held is the intended contract.
func (l *ledger) drainLocked() {
	l.mu.Unlock()
	l.mu.Lock()
}

func (l *ledger) hold() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
}

// Clean: the goroutine body runs after hold returns and the deferred
// Unlock has released the mutex.
func (l *ledger) spawnUnderLock(wg *sync.WaitGroup) {
	l.mu.Lock()
	defer l.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.bump()
	}()
}

// Clean: helpers that never touch the mutex are callable anywhere.
func (l *ledger) size() int { return l.pending }

func (l *ledger) report() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size()
}

// twoLocks: fields are tracked independently.
type twoLocks struct {
	mu  sync.Mutex
	wmu sync.Mutex
	n   int
}

func (t *twoLocks) write() {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.n++
}

// Clean: holds mu, calls a method that locks wmu — different mutexes.
func (t *twoLocks) coordinate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.write()
}
