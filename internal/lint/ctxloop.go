package lint

import (
	"go/ast"
	"go/token"
)

// CtxLoop flags for-loops that block — receiving from a channel,
// waiting on a sync.Cond, issuing a net/rpc round-trip, or reading
// from a wire.Conn (the binary framing codec blocks the same way) —
// without observing any cancellation or termination signal on some
// path.
//
// This is the invariant behind the hand-threaded shutdown plumbing in
// internal/{exec,hier,mp,sim}: every blocking service loop must be
// able to see ctx.Done(), a done/stop/quit channel, a closed flag, or
// a Stop reply, or a cancelled run hangs exactly the way the PR 2
// gather-barrier did before its wakeup fix. A loop "observes" shutdown
// when its condition or body mentions ctx.Done()/ctx.Err() or any
// identifier carrying a termination name (done, stop, quit, closed,
// cancel, finish).
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "blocking for-loops (chan receive, cond.Wait, rpc Call) must observe " +
		"ctx.Done() or a done/stop/closed termination signal",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			kind := blockingKind(pass, loop)
			if kind == "" {
				return true
			}
			if loopObservesTermination(pass, loop) {
				return true
			}
			pass.Report(loop.For,
				"blocking loop (%s) never observes ctx.Done() or a done/stop signal; "+
					"a cancelled run will hang here", kind)
			return true
		})
	}
	return nil
}

// blockingKind classifies the loop's blocking operations, descending
// into nested statements but not into function literals (a goroutine
// launched from the loop blocks its own loop, not this one).
func blockingKind(pass *Pass, loop *ast.ForStmt) string {
	kind := ""
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				kind = "channel receive"
			}
		case *ast.CallExpr:
			if recv, name := receiverOf(x); recv != nil {
				switch name {
				case "Wait":
					if tv, ok := pass.TypesInfo.Types[recv]; ok && isNamedType(tv.Type, "sync", "Cond") {
						kind = "cond.Wait"
					}
				case "Call":
					if tv, ok := pass.TypesInfo.Types[recv]; ok {
						if isNamedType(tv.Type, "net/rpc", "Client") {
							kind = "rpc round-trip"
						} else if isNamedType(tv.Type, "loopsched/internal/wire", "Conn") {
							kind = "wire round-trip"
						}
					}
				case "Steal", "Pop":
					// The deque never blocks, but an unconditional
					// acquisition spin built on it is a service loop all
					// the same: a worker that polls Pop/Steal without a
					// termination check spins forever once the run is
					// cancelled. Loops with a condition (victim scans,
					// bounded retries) terminate by construction.
					if loop.Cond != nil {
						break
					}
					if tv, ok := pass.TypesInfo.Types[recv]; ok && isNamedType(tv.Type, "loopsched/internal/steal", "Deque") {
						kind = "work-stealing acquisition loop"
					}
				case "ReadRequest", "ReadReply":
					// The framed codec's reads block exactly like an rpc
					// round-trip: only a closed connection or a Stop reply
					// ends them.
					if tv, ok := pass.TypesInfo.Types[recv]; ok && isNamedType(tv.Type, "loopsched/internal/wire", "Conn") {
						kind = "wire read"
					}
				}
			}
		}
		return true
	})
	return kind
}

// loopObservesTermination reports whether the loop's condition or body
// (excluding nested function literals) shows a shutdown signal:
// ctx.Done()/ctx.Err() on a context.Context, or any termination-named
// identifier (see terminationWords).
func loopObservesTermination(pass *Pass, loop *ast.ForStmt) bool {
	observed := false
	check := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if observed {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, name := receiverOf(call); recv != nil &&
					(name == "Done" || name == "Err") && isContext(pass.TypesInfo, recv) {
					observed = true
					return false
				}
			}
			if id, ok := n.(*ast.Ident); ok && mentionsTermination(id) {
				observed = true
				return false
			}
			return true
		})
	}
	if loop.Cond != nil {
		check(loop.Cond)
	}
	if !observed {
		check(loop.Body)
	}
	return observed
}
