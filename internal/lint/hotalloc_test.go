package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestHotAlloc(t *testing.T) {
	runFixture(t, lint.HotAlloc, "hotalloc")
}
