package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 encoding of the suite's findings, the interchange format
// GitHub code scanning ingests. Only the subset of the (large) SARIF
// schema that code-scanning consumes is emitted: one run, the driver's
// rule table (every analyzer, so rule metadata is stable whether or
// not it fired), and one result per finding with a single physical
// location. The output is deterministic for a given finding list —
// cmd/loopschedlint's golden-file test depends on that.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules renders the full analyzer suite (per-package and module)
// as the driver's rule table, sorted by id.
func sarifRules() []sarifRule {
	var rules []sarifRule
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	for _, a := range AllModule() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	return rules
}

// sarifURI renders a finding's file path as a SARIF artifact URI:
// slash-separated and, when possible, relative to the working
// directory (code scanning matches URIs against repo-relative paths).
func sarifURI(file string) string {
	if filepath.IsAbs(file) {
		if wd, err := os.Getwd(); err == nil {
			if rel, err := filepath.Rel(wd, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
				file = rel
			}
		}
	}
	return filepath.ToSlash(file)
}

// SARIF encodes the findings as an indented SARIF 2.1.0 document.
func SARIF(findings []Finding) ([]byte, error) {
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Package + ": " + f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "loopschedlint", InformationURI: "https://example.invalid/loopsched/docs/LINTING.md", Rules: sarifRules()}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
