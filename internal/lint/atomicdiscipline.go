package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicDiscipline enforces the Go memory model's all-or-nothing rule
// for function-style sync/atomic usage: a variable or field that is
// accessed through sync/atomic anywhere must be accessed through
// sync/atomic everywhere, because one plain read racing one atomic
// write is still a data race. The deque and job-state code moved to
// atomic.Int64 method types (which make mixed access unrepresentable),
// but the runtime still has function-style sites — per-worker
// iteration tallies in the local engines — and the distributed
// chunk-calculation direction in ROADMAP will add more one-sided
// atomic state, so the discipline needs machine checking.
//
// Publication-pattern allowance: a plain access is accepted when the
// surrounding function provides ordering that makes it race-free —
// either every `go` statement of the function comes after the access
// (initialisation before spawn), or join evidence (a sync.WaitGroup
// Wait or a channel receive) appears earlier in the same function
// (read after join). That is exactly the `iters` pattern in
// exec.Local.RunContext: atomic adds inside the workers, one plain
// read per worker after wg.Wait. Anything subtler — deliberate torn
// reads validated by a CAS, cross-function publication — must carry a
// //lint:loopsched-ignore atomicdiscipline directive with its
// justification.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc: "a field accessed via sync/atomic anywhere must be accessed atomically everywhere; " +
		"plain access is allowed only before goroutine start or after join evidence",
	Run: runAtomicDiscipline,
}

// atomicTarget records how one object is atomically accessed.
type atomicTarget struct {
	// ptrOnly: the object is itself a pointer handed to sync/atomic
	// (atomic.AddInt64(p, 1)), so only *p dereferences are value
	// accesses; passing p around is not.
	ptrOnly  bool
	firstPos token.Pos
}

func runAtomicDiscipline(pass *Pass) error {
	info := pass.TypesInfo

	// Phase 1: find every function-style sync/atomic call, resolve its
	// first argument to the object it targets, and remember the full
	// argument expressions (their identifiers are atomic accesses, not
	// plain ones).
	targets := map[types.Object]*atomicTarget{}
	atomicArgs := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isSyncAtomicFunc(info, call) {
				return true
			}
			arg := call.Args[0]
			atomicArgs[arg] = true
			ptrOnly := true
			target := arg
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				target = u.X
				ptrOnly = false
			}
			obj := atomicTargetObj(info, target)
			if obj == nil {
				return true
			}
			if t, ok := targets[obj]; ok {
				// Keep the strongest claim: an &x site means plain uses
				// of x itself are value accesses.
				if !ptrOnly {
					t.ptrOnly = false
				}
			} else {
				targets[obj] = &atomicTarget{ptrOnly: ptrOnly, firstPos: call.Pos()}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return nil
	}

	// Phase 2: every other use of a targeted object is a plain access;
	// flag it unless the publication allowance applies.
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true // Defs are declarations, not accesses
			}
			t, ok := targets[obj]
			if !ok {
				return true
			}
			for p := ast.Node(id); p != nil; p = parents[p] {
				if atomicArgs[p] {
					return true // part of a sync/atomic call's target
				}
			}
			if t.ptrOnly && !isDerefUse(parents, id) {
				return true // moving the pointer around is not a value access
			}
			if plainAccessAllowed(info, parents, id) {
				return true
			}
			pass.Report(id.Pos(),
				"%s is accessed via sync/atomic (%s) but accessed plainly here: "+
					"mixed atomic/plain access is a data race; use atomic ops, or move this access "+
					"before goroutine start / after join",
				obj.Name(), pass.Fset.Position(t.firstPos))
			return true
		})
	}
	return nil
}

// isSyncAtomicFunc reports whether the call is a package-level
// sync/atomic function (AddInt64, LoadPointer, …). Methods on the
// atomic.Int64-style types are excluded: those types make plain access
// unrepresentable, which is the discipline this analyzer asks for.
func isSyncAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// atomicTargetObj resolves the object an atomic access targets,
// unwrapping indexing and dereferencing down to the named field or
// variable: &s.counters[i].Steals → the Steals field, &iters[id] → the
// iters variable, p → the p variable.
func atomicTargetObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				return sel.Obj()
			}
			return info.Uses[x.Sel]
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// isDerefUse reports whether the identifier is dereferenced (*p or
// p[i]) rather than merely mentioned.
func isDerefUse(parents parentMap, id *ast.Ident) bool {
	for p := parents[id]; p != nil; p = parents[p] {
		switch x := p.(type) {
		case *ast.StarExpr:
			return true
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr, *ast.ParenExpr:
			_ = x
			continue
		default:
			return false
		}
	}
	return false
}

// plainAccessAllowed applies the publication allowance: within the
// access's enclosing function (literal bodies are their own scope),
// the access is race-free if join evidence — a sync.WaitGroup Wait
// call or a channel receive — appears earlier in source order, or if
// the function spawns goroutines and every `go` statement comes after
// the access (initialisation before spawn). A function with no `go`
// statements and no join evidence gets no allowance: it may be called
// concurrently with the atomic writers.
func plainAccessAllowed(info *types.Info, parents parentMap, id *ast.Ident) bool {
	decl, lit, isDecl := enclosingFunc(parents, id)
	var body *ast.BlockStmt
	switch {
	case isDecl && decl.Body != nil:
		body = decl.Body
	case lit != nil:
		body = lit.Body
	default:
		return false
	}
	pos := id.Pos()
	joined := false
	spawns, spawnsBefore := false, false
	walkOutsideFuncLits(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.GoStmt:
			spawns = true
			if x.Pos() < pos {
				spawnsBefore = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && x.Pos() < pos {
				joined = true // channel receive: join evidence, as in gojoin
			}
		case *ast.CallExpr:
			if x.Pos() >= pos {
				return
			}
			recv, method := receiverOf(x)
			if method != "Wait" || recv == nil {
				return
			}
			if tv, ok := info.Types[recv]; ok && isNamedType(tv.Type, "sync", "WaitGroup") {
				joined = true
			}
		}
	})
	if joined {
		return true
	}
	return spawns && !spawnsBefore
}

// walkOutsideFuncLits is shared with locksafe (defined there): the
// allowance reasons about one function's own control flow, and nested
// literals run on their own goroutines' schedules.
