package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestAtomicDiscipline(t *testing.T) {
	runFixture(t, lint.AtomicDiscipline, "atomicdiscipline")
}
