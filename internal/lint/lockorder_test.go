package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestLockOrder(t *testing.T) {
	runModuleFixture(t, lint.LockOrder, "lockorder")
}
