package lint_test

import (
	"testing"
	"time"

	"loopsched/internal/lint"
)

// TestLoadMemoized pins the load cache: a second Load with the same
// (dir, patterns) must return the identical package slice without
// re-running `go list` or the type checker. The timings are logged so
// the wall-time saving is visible in test output.
func TestLoadMemoized(t *testing.T) {
	t0 := time.Now()
	first, err := lint.Load("../..", "./internal/lint")
	if err != nil {
		t.Fatalf("first Load: %v", err)
	}
	cold := time.Since(t0)

	t1 := time.Now()
	second, err := lint.Load("../..", "./internal/lint")
	if err != nil {
		t.Fatalf("second Load: %v", err)
	}
	warm := time.Since(t1)

	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("loads disagree: %d vs %d packages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("package %d not memoized: distinct *Package values", i)
		}
	}
	if warm > cold {
		t.Errorf("memoized Load slower than cold: %v vs %v", warm, cold)
	}
	t.Logf("Load: cold %v, memoized %v", cold, warm)
}

// TestExportMapMemoized does the same for the fixture harness's path.
func TestExportMapMemoized(t *testing.T) {
	a, err := lint.ExportMap("../..", "context")
	if err != nil {
		t.Fatalf("first ExportMap: %v", err)
	}
	b, err := lint.ExportMap("../..", "context")
	if err != nil {
		t.Fatalf("second ExportMap: %v", err)
	}
	if len(a) == 0 {
		t.Fatal("empty export map")
	}
	// Memoized calls share one underlying map: a write through the
	// first result must be visible through the second.
	a["__probe__"] = "x"
	if b["__probe__"] != "x" {
		t.Error("ExportMap not memoized: second call returned a distinct map")
	}
	delete(a, "__probe__")
}
