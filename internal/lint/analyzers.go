package lint

// All returns the full per-package analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxLoop, ChunkMath, LockSafe, RegSync, GoJoin, TimeSample,
		AtomicDiscipline, HotAlloc, WireBounds}
}

// AllModule returns the module-wide analyzers: passes that need every
// package of the module in one view (cross-package lock ordering).
// Under `go vet -vettool` each compilation unit arrives alone, so the
// driver degrades these to a single-package view — intra-package
// findings still surface there; the full graph needs the standalone
// runner.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{LockOrder}
}

// ByName resolves a comma-separable analyzer name; nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ModuleByName resolves a module analyzer name; nil when unknown.
func ModuleByName(name string) *ModuleAnalyzer {
	for _, a := range AllModule() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
