package lint

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxLoop, ChunkMath, LockSafe, RegSync, GoJoin, TimeSample}
}

// ByName resolves a comma-separable analyzer name; nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
