package lint_test

import (
	"testing"

	"loopsched/internal/lint"
)

func TestChunkMath(t *testing.T) {
	runFixture(t, lint.ChunkMath, "chunkmath")
}
