package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader type-checks packages from source without any dependency
// beyond the go toolchain itself: `go list -export` compiles each
// dependency's export data into the build cache and reports the file
// path, and importer.ForCompiler turns that map into a types.Importer.
// This is the same shape x/tools/go/packages uses, reduced to what the
// analyzers need.

// listedPackage is the subset of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` for the patterns.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// The load cache. Every consumer of one lint invocation — the
// per-package analyzers, the module analyzers, the SARIF/JSON/baseline
// emitters and the fixture harness — wants the same `go list -export`
// walk and type-check, which dominates lint wall time (seconds for the
// full module). Memoizing by (dir, patterns) makes every call after
// the first free. The cache assumes sources do not change during one
// process's lifetime, which holds for every driver (a lint run is
// read-only); callers that need a fresh view start a fresh process.
var loadCache = struct {
	sync.Mutex
	exports map[string]map[string]string
	pkgs    map[string][]*Package
}{
	exports: map[string]map[string]string{},
	pkgs:    map[string][]*Package{},
}

// cacheKey canonicalises (dir, patterns) into one map key.
func cacheKey(dir string, patterns []string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	return dir + "\x00" + strings.Join(patterns, "\x00")
}

// ExportMap compiles the patterns (and their dependencies) and returns
// importPath → export-data file. Used directly by the fixture harness,
// which type-checks testdata packages against the standard library.
// Results are memoized per (dir, patterns); see loadCache.
func ExportMap(dir string, patterns ...string) (map[string]string, error) {
	key := cacheKey(dir, patterns)
	loadCache.Lock()
	cached, ok := loadCache.exports[key]
	loadCache.Unlock()
	if ok {
		return cached, nil
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	loadCache.Lock()
	loadCache.exports[key] = exports
	loadCache.Unlock()
	return exports, nil
}

// exportImporter builds a types.Importer that resolves imports through
// the export map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load type-checks the packages matching the patterns, resolved
// relative to dir (typically the module root). Only non-standard
// packages named by the patterns are returned; their dependencies are
// consumed as export data. Results are memoized per (dir, patterns),
// so the per-package pass and the module-wide pass of one lint run
// share a single `go list` walk and type-check (see loadCache).
func Load(dir string, patterns ...string) ([]*Package, error) {
	key := cacheKey(dir, patterns)
	loadCache.Lock()
	cached, ok := loadCache.pkgs[key]
	loadCache.Unlock()
	if ok {
		return cached, nil
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, g := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, g)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	loadCache.Lock()
	loadCache.pkgs[key] = out
	loadCache.Unlock()
	return out, nil
}

// TypeCheckFiles parses and type-checks one package from explicit file
// paths against the export map. The unitchecker path (go vet -vettool)
// uses it with the .cfg's file lists; the fixture harness uses it with
// a testdata directory listing.
func TypeCheckFiles(path string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	return typeCheck(fset, imp, path, filenames)
}

func typeCheck(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: typecheck: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info}, nil
}
