package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Section 2.1 distinguishes three difficulty classes: loops whose
// iteration costs are known at compile time, *predictable* loops whose
// costs can be ordered (even if not known exactly), and irregular
// loops that cannot be ordered. This file supports the middle class:
// when an ordering is available, scheduling the costliest iterations
// first shrinks the critical chunk — the classic longest-processing-
// time heuristic — and composes with every self-scheduling scheme.

// SortDescending reorders a workload so iterations run costliest
// first. The permutation is stable for equal costs, keeping runs
// deterministic.
func SortDescending(w Workload) Reordered {
	n := w.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return w.Cost(perm[a]) > w.Cost(perm[b])
	})
	return Reordered{Base: w, Perm: perm, Sf: 0}
}

// Random is a reproducible random-cost loop: costs are log-normal
// (heavy-tailed, like real irregular kernels), drawn once at
// construction from the seed.
type Random struct {
	n     int
	seed  int64
	costs []float64
}

// NewRandom builds a Random workload of n iterations whose log-costs
// are normal with the given mean and sigma (natural log space).
// sigma 0 selects 1.
func NewRandom(n int, mean, sigma float64, seed int64) *Random {
	if sigma <= 0 {
		sigma = 1
	}
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = math.Exp(mean + sigma*rng.NormFloat64())
	}
	return &Random{n: n, seed: seed, costs: costs}
}

func (r *Random) Name() string       { return fmt.Sprintf("random(%d,seed=%d)", r.n, r.seed) }
func (r *Random) Len() int           { return r.n }
func (r *Random) Cost(i int) float64 { return r.costs[i] }

// NewAutocorrelated builds an AR(1) cost series: successive iteration
// costs are correlated with coefficient rho ∈ (−1, 1), so expensive
// regions cluster — the structure that makes contiguous chunks
// dangerous and the sampling reorder valuable. Costs are exp() of the
// AR(1) process (positive, heavy-tailed), scaled so the mean is
// roughly e^mean.
func NewAutocorrelated(n int, mean, sigma, rho float64, seed int64) *Random {
	if sigma <= 0 {
		sigma = 1
	}
	if rho <= -1 || rho >= 1 {
		rho = 0.9
	}
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	// Innovation variance chosen so the process variance is sigma².
	innov := sigma * math.Sqrt(1-rho*rho)
	x := rng.NormFloat64() * sigma
	for i := range costs {
		costs[i] = math.Exp(mean + x)
		x = rho*x + innov*rng.NormFloat64()
	}
	return &Random{n: n, seed: seed, costs: costs}
}
