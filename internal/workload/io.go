package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCosts persists a workload's per-iteration costs as a two-column
// CSV with a header, the interchange format for bringing measured
// profiles into (or out of) the scheduler — the distributed analogue
// of Figure 1's data series.
func WriteCosts(w io.Writer, wl Workload) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "iteration,cost"); err != nil {
		return err
	}
	for i := 0; i < wl.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%d,%g\n", i, wl.Cost(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCosts loads a profile written by WriteCosts (or any CSV whose
// rows are "iteration,cost"). Iterations must appear in order,
// starting at 0, with no gaps — the loader validates because a
// permuted file silently changes what the schedulers see.
func ReadCosts(r io.Reader, label string) (FromCosts, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	var costs []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(strings.ToLower(text), "iteration") {
			continue // header
		}
		parts := strings.SplitN(text, ",", 2)
		if len(parts) != 2 {
			return FromCosts{}, fmt.Errorf("workload: line %d: want \"iteration,cost\", got %q", line, text)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return FromCosts{}, fmt.Errorf("workload: line %d: bad iteration %q", line, parts[0])
		}
		if idx != len(costs) {
			return FromCosts{}, fmt.Errorf("workload: line %d: iteration %d out of order (want %d)", line, idx, len(costs))
		}
		cost, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return FromCosts{}, fmt.Errorf("workload: line %d: bad cost %q", line, parts[1])
		}
		if cost < 0 {
			return FromCosts{}, fmt.Errorf("workload: line %d: negative cost %g", line, cost)
		}
		costs = append(costs, cost)
	}
	if err := sc.Err(); err != nil {
		return FromCosts{}, err
	}
	return FromCosts{Label: label, Costs: costs}, nil
}
