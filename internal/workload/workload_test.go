package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	u := Uniform{N: 10}
	if u.Len() != 10 {
		t.Fatalf("Len = %d", u.Len())
	}
	for i := 0; i < 10; i++ {
		if u.Cost(i) != 1 {
			t.Fatalf("Cost(%d) = %g", i, u.Cost(i))
		}
	}
	if TotalCost(u) != 10 {
		t.Errorf("TotalCost = %g", TotalCost(u))
	}
	u2 := Uniform{N: 5, C: 2.5}
	if TotalCost(u2) != 12.5 {
		t.Errorf("TotalCost = %g", TotalCost(u2))
	}
}

func TestLinear(t *testing.T) {
	inc := LinearIncreasing{N: 4}
	dec := LinearDecreasing{N: 4}
	// inc: 1 2 3 4; dec: 4 3 2 1 — mirror images with equal totals.
	if TotalCost(inc) != 10 || TotalCost(dec) != 10 {
		t.Fatalf("totals %g %g", TotalCost(inc), TotalCost(dec))
	}
	for i := 0; i < 4; i++ {
		if inc.Cost(i) != dec.Cost(3-i) {
			t.Errorf("not mirrored at %d", i)
		}
	}
	if MaxCost(inc) != 4 {
		t.Errorf("MaxCost = %g", MaxCost(inc))
	}
}

func TestConditionalDeterministic(t *testing.T) {
	a := NewConditional(1000, 0.3, 10, 1, 42)
	b := NewConditional(1000, 0.3, 10, 1, 42)
	for i := 0; i < 1000; i++ {
		if a.Cost(i) != b.Cost(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// Roughly 30% expensive iterations.
	expensive := 0
	for i := 0; i < 1000; i++ {
		if a.Cost(i) == 10 {
			expensive++
		}
	}
	if expensive < 230 || expensive > 370 {
		t.Errorf("expensive fraction %d/1000, want ≈300", expensive)
	}
}

func TestSamplingPermutationIsPermutation(t *testing.T) {
	f := func(n uint16, sf uint8) bool {
		nn := int(n)%500 + 1
		s := int(sf)%9 + 1
		perm := SamplingPermutation(nn, s)
		if len(perm) != nn {
			return false
		}
		seen := make([]int, nn)
		copy(seen, perm)
		sort.Ints(seen)
		for i, v := range seen {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSamplingPermutationOrder(t *testing.T) {
	// The paper's scheme: first i mod sf == 0, then == 1, ...
	got := SamplingPermutation(10, 4)
	want := []int{0, 4, 8, 1, 5, 9, 2, 6, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("perm = %v, want %v", got, want)
		}
	}
	// sf=1 is identity.
	id := SamplingPermutation(5, 1)
	for i, v := range id {
		if v != i {
			t.Fatalf("sf=1 not identity: %v", id)
		}
	}
}

func TestReorderPreservesMultiset(t *testing.T) {
	base := LinearIncreasing{N: 97}
	r := Reorder(base, 4)
	if r.Len() != 97 {
		t.Fatalf("Len = %d", r.Len())
	}
	if math.Abs(TotalCost(r)-TotalCost(base)) > 1e-9 {
		t.Errorf("reorder changed total cost: %g vs %g", TotalCost(r), TotalCost(base))
	}
	// Original() must invert the view.
	for i := 0; i < r.Len(); i++ {
		if r.Cost(i) != base.Cost(r.Original(i)) {
			t.Fatalf("cost/original mismatch at %d", i)
		}
	}
	if OriginalIndex(r, 1) != 4 {
		t.Errorf("OriginalIndex(r,1) = %d, want 4", OriginalIndex(r, 1))
	}
	if OriginalIndex(base, 7) != 7 {
		t.Errorf("identity OriginalIndex = %d", OriginalIndex(base, 7))
	}
}

// TestReorderFlattens: the sampling reorder must flatten *clustered*
// irregularity — a Mandelbrot-style expensive interior region — which
// is the entire purpose of Figure 1. (It deliberately does NOT help a
// globally monotone ramp: each sample is itself a ramp.)
func TestReorderFlattens(t *testing.T) {
	costs := make([]float64, 1200)
	for i := range costs {
		costs[i] = 1
		if i >= 500 && i < 700 { // the expensive hump
			costs[i] = 50
		}
	}
	base := FromCosts{Label: "hump", Costs: costs}
	before := Describe(base, 150).WindowCV
	after := Describe(Reorder(base, 4), 150).WindowCV
	if after >= before {
		t.Errorf("reorder did not flatten: CV %g → %g", before, after)
	}
	if after > before/3 {
		t.Errorf("reorder too weak: CV %g → %g", before, after)
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(Uniform{N: 100}, 10)
	if s.Mean != 1 || s.StdDev != 0 || s.Total != 100 || s.Min != 1 || s.Max != 1 {
		t.Errorf("uniform stats: %+v", s)
	}
	if s.WindowCV != 0 {
		t.Errorf("uniform WindowCV = %g", s.WindowCV)
	}
	empty := Describe(FromCosts{Costs: nil}, 0)
	if empty.N != 0 || empty.Total != 0 {
		t.Errorf("empty stats: %+v", empty)
	}
}

func TestFromCosts(t *testing.T) {
	f := FromCosts{Costs: []float64{3, 1, 2}}
	if f.Len() != 3 || f.Cost(2) != 2 {
		t.Errorf("FromCosts basic accessors broken")
	}
	if f.Name() != "costs(3)" {
		t.Errorf("Name = %q", f.Name())
	}
	g := FromCosts{Label: "mandel", Costs: []float64{1}}
	if g.Name() != "mandel" {
		t.Errorf("Name = %q", g.Name())
	}
	if RangeCost(f, 1, 3) != 3 {
		t.Errorf("RangeCost = %g", RangeCost(f, 1, 3))
	}
}
