package workload

import "fmt"

// SamplingPermutation returns the iteration reordering of section 2.1:
// for sampling frequency sf, the loop is scanned sf times, first
// taking iterations with i mod sf == 0, then i mod sf == 1, and so on,
// concatenating the samples. perm[k] is the original index of the
// iteration executed k-th. sf ≤ 1 is the identity.
func SamplingPermutation(n, sf int) []int {
	perm := make([]int, 0, n)
	if sf < 1 {
		sf = 1
	}
	for r := 0; r < sf; r++ {
		for i := r; i < n; i += sf {
			perm = append(perm, i)
		}
	}
	return perm
}

// Reordered presents a workload through a permutation: iteration k of
// the reordered loop is iteration Perm[k] of the original. Because
// loop iterations are independent, executing the reordered loop
// produces the same results; the permutation only smooths the cost
// profile seen by consecutive chunks (Figure 1(b) of the paper).
type Reordered struct {
	Base Workload
	Perm []int
	Sf   int // informational: the sampling frequency that built Perm
}

// Reorder applies the sampling reorder with frequency sf.
func Reorder(w Workload, sf int) Reordered {
	return Reordered{Base: w, Perm: SamplingPermutation(w.Len(), sf), Sf: sf}
}

func (r Reordered) Name() string {
	return fmt.Sprintf("%s/sf=%d", r.Base.Name(), r.Sf)
}

func (r Reordered) Len() int { return len(r.Perm) }

func (r Reordered) Cost(i int) float64 { return r.Base.Cost(r.Perm[i]) }

// Original returns the base-loop index of reordered iteration i, which
// executors need to write results to the right place.
func (r Reordered) Original(i int) int { return r.Perm[i] }

// OriginalIndexer is implemented by workloads whose iteration order
// differs from the underlying problem's natural order.
type OriginalIndexer interface {
	Original(i int) int
}

// OriginalIndex maps a workload iteration to the underlying problem
// index, unwrapping reorderings; for plain workloads it is identity.
func OriginalIndex(w Workload, i int) int {
	if o, ok := w.(OriginalIndexer); ok {
		return o.Original(i)
	}
	return i
}
