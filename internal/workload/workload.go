// Package workload generates the parallel-loop styles of section 2.1
// of the paper: uniform, linearly increasing/decreasing, conditional,
// and irregular (cost profiles supplied by a kernel such as the
// Mandelbrot computation). A Workload maps each iteration to its cost
// in abstract work units; schedulers never look at costs (that is the
// point of *self*-scheduling), but the simulator and the metrics do.
package workload

import (
	"fmt"
	"math/rand"
)

// Workload describes a parallel loop: I independent iterations, each
// with a (possibly unknown-to-the-scheduler) execution cost.
type Workload interface {
	// Name identifies the loop style in reports.
	Name() string
	// Len returns I, the iteration count.
	Len() int
	// Cost returns the work units of iteration i (0 ≤ i < Len).
	Cost(i int) float64
}

// TotalCost sums every iteration's cost.
func TotalCost(w Workload) float64 {
	var t float64
	for i := 0; i < w.Len(); i++ {
		t += w.Cost(i)
	}
	return t
}

// RangeCost sums the costs of iterations [start, end).
func RangeCost(w Workload, start, end int) float64 {
	var t float64
	for i := start; i < end; i++ {
		t += w.Cost(i)
	}
	return t
}

// MaxCost returns the largest single-iteration cost (0 for an empty
// loop).
func MaxCost(w Workload) float64 {
	var m float64
	for i := 0; i < w.Len(); i++ {
		if c := w.Cost(i); c > m {
			m = c
		}
	}
	return m
}

// Uniform is the uniformly distributed loop: every iteration costs the
// same (the DOALL X[K] = X[K] + A example).
type Uniform struct {
	N int
	C float64 // cost per iteration; 0 means 1
}

func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d)", u.N) }
func (u Uniform) Len() int     { return u.N }
func (u Uniform) Cost(i int) float64 {
	if u.C <= 0 {
		return 1
	}
	return u.C
}

// LinearIncreasing is the increasing triangular loop: iteration K runs
// an inner serial loop of K+1 steps.
type LinearIncreasing struct{ N int }

func (l LinearIncreasing) Name() string       { return fmt.Sprintf("linear-inc(%d)", l.N) }
func (l LinearIncreasing) Len() int           { return l.N }
func (l LinearIncreasing) Cost(i int) float64 { return float64(i + 1) }

// LinearDecreasing is the decreasing triangular loop: iteration K runs
// an inner serial loop of I−K steps.
type LinearDecreasing struct{ N int }

func (l LinearDecreasing) Name() string       { return fmt.Sprintf("linear-dec(%d)", l.N) }
func (l LinearDecreasing) Len() int           { return l.N }
func (l LinearDecreasing) Cost(i int) float64 { return float64(l.N - i) }

// Conditional models the IF/ELSE loop: a deterministic pseudo-random
// fraction PTrue of iterations execute Block1 (cost CTrue), the rest
// Block2 (cost CFalse). The same Seed always produces the same loop.
type Conditional struct {
	N      int
	PTrue  float64
	CTrue  float64
	CFalse float64
	Seed   int64

	costs []float64
}

// NewConditional materialises the iteration costs once.
func NewConditional(n int, pTrue, cTrue, cFalse float64, seed int64) *Conditional {
	c := &Conditional{N: n, PTrue: pTrue, CTrue: cTrue, CFalse: cFalse, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	c.costs = make([]float64, n)
	for i := range c.costs {
		if rng.Float64() < pTrue {
			c.costs[i] = cTrue
		} else {
			c.costs[i] = cFalse
		}
	}
	return c
}

func (c *Conditional) Name() string { return fmt.Sprintf("conditional(%d,p=%g)", c.N, c.PTrue) }
func (c *Conditional) Len() int     { return c.N }
func (c *Conditional) Cost(i int) float64 {
	return c.costs[i]
}

// FromCosts wraps an explicit cost vector — how irregular kernels
// (Mandelbrot columns) become workloads.
type FromCosts struct {
	Label string
	Costs []float64
}

func (f FromCosts) Name() string {
	if f.Label == "" {
		return fmt.Sprintf("costs(%d)", len(f.Costs))
	}
	return f.Label
}
func (f FromCosts) Len() int           { return len(f.Costs) }
func (f FromCosts) Cost(i int) float64 { return f.Costs[i] }
