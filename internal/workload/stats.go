package workload

import "math"

// Stats summarises a cost profile; the Figure 1 harness uses it to
// show how sampling reordering flattens the Mandelbrot distribution.
type Stats struct {
	N        int
	Total    float64
	Mean     float64
	Min, Max float64
	StdDev   float64
	// WindowCV is the coefficient of variation of window sums — the
	// imbalance a contiguous-chunk scheduler actually experiences.
	WindowCV float64
}

// Describe computes Stats with the given window size (≤ 0 picks
// N/16, minimum 1).
func Describe(w Workload, window int) Stats {
	n := w.Len()
	s := Stats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	if n == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	for i := 0; i < n; i++ {
		c := w.Cost(i)
		s.Total += c
		if c < s.Min {
			s.Min = c
		}
		if c > s.Max {
			s.Max = c
		}
	}
	s.Mean = s.Total / float64(n)
	var varSum float64
	for i := 0; i < n; i++ {
		d := w.Cost(i) - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(n))

	if window <= 0 {
		window = n / 16
		if window < 1 {
			window = 1
		}
	}
	var sums []float64
	for start := 0; start < n; start += window {
		end := start + window
		if end > n {
			end = n
		}
		sums = append(sums, RangeCost(w, start, end)/float64(end-start))
	}
	if len(sums) > 1 {
		var wm, wv float64
		for _, v := range sums {
			wm += v
		}
		wm /= float64(len(sums))
		for _, v := range sums {
			d := v - wm
			wv += d * d
		}
		wv /= float64(len(sums))
		if wm > 0 {
			s.WindowCV = math.Sqrt(wv) / wm
		}
	}
	return s
}
