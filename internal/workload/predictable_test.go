package workload

import (
	"math"
	"testing"
)

func TestSortDescending(t *testing.T) {
	w := FromCosts{Costs: []float64{3, 9, 1, 9, 5}}
	d := SortDescending(w)
	if d.Len() != 5 {
		t.Fatalf("len %d", d.Len())
	}
	// Costs non-increasing.
	for i := 1; i < d.Len(); i++ {
		if d.Cost(i) > d.Cost(i-1) {
			t.Fatalf("not descending at %d: %v", i, d.Perm)
		}
	}
	// Stable for ties: the first 9 (index 1) precedes the second (3).
	if d.Perm[0] != 1 || d.Perm[1] != 3 {
		t.Errorf("tie order not stable: %v", d.Perm)
	}
	// Still a permutation with the same total.
	if math.Abs(TotalCost(d)-TotalCost(w)) > 1e-12 {
		t.Errorf("total changed: %g vs %g", TotalCost(d), TotalCost(w))
	}
	seen := map[int]bool{}
	for _, v := range d.Perm {
		if seen[v] {
			t.Fatalf("duplicate %d in perm", v)
		}
		seen[v] = true
	}
}

func TestRandomWorkload(t *testing.T) {
	a := NewRandom(1000, 2, 0.8, 7)
	b := NewRandom(1000, 2, 0.8, 7)
	for i := 0; i < 1000; i++ {
		if a.Cost(i) != b.Cost(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a.Cost(i) <= 0 {
			t.Fatalf("non-positive cost at %d", i)
		}
	}
	c := NewRandom(1000, 2, 0.8, 8)
	same := true
	for i := 0; i < 1000; i++ {
		if a.Cost(i) != c.Cost(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical costs")
	}
	// Log-normal: heavy-tailed, max well above mean.
	st := Describe(a, 0)
	if st.Max < 3*st.Mean {
		t.Errorf("tail too light: max %g mean %g", st.Max, st.Mean)
	}
	if (&Random{}).Len() != 0 {
		t.Error("zero Random not empty")
	}
	if NewRandom(3, 0, 0, 1).Len() != 3 { // sigma default path
		t.Error("sigma default broken")
	}
}

// TestAutocorrelated: AR(1) costs are positive, reproducible, and the
// clustering actually happens — the lag-1 sample autocorrelation of
// the log-costs is near rho, and the sampling reorder flattens the
// windowed imbalance far more than it does for independent costs.
func TestAutocorrelated(t *testing.T) {
	const n = 4000
	w := NewAutocorrelated(n, 2, 1, 0.95, 5)
	again := NewAutocorrelated(n, 2, 1, 0.95, 5)
	for i := 0; i < n; i++ {
		if w.Cost(i) <= 0 {
			t.Fatalf("non-positive cost at %d", i)
		}
		if w.Cost(i) != again.Cost(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// Lag-1 autocorrelation of log-costs ≈ rho.
	logs := make([]float64, n)
	var mean float64
	for i := range logs {
		logs[i] = math.Log(w.Cost(i))
		mean += logs[i]
	}
	mean /= n
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (logs[i] - mean) * (logs[i+1] - mean)
	}
	for i := 0; i < n; i++ {
		den += (logs[i] - mean) * (logs[i] - mean)
	}
	if r := num / den; r < 0.85 || r > 1.0 {
		t.Errorf("lag-1 autocorrelation %.3f, want ≈0.95", r)
	}
	// The reorder flattens clustered costs dramatically.
	before := Describe(w, n/16).WindowCV
	after := Describe(Reorder(w, 8), n/16).WindowCV
	if after >= before/2 {
		t.Errorf("reorder too weak on clustered costs: %.3f → %.3f", before, after)
	}
	// Degenerate rho falls back.
	if NewAutocorrelated(10, 0, 1, 2, 1).Len() != 10 {
		t.Error("rho fallback broken")
	}
}

// TestLPTShrinksCriticalChunk: longest-first ordering puts the cheap
// iterations at the tail, so the last chunk of a decreasing-chunk
// scheme carries less work.
func TestLPTShrinksCriticalChunk(t *testing.T) {
	w := NewRandom(2000, 3, 1, 11)
	lastQuarter := func(v Workload) float64 {
		return RangeCost(v, 3*v.Len()/4, v.Len())
	}
	if lastQuarter(SortDescending(w)) >= lastQuarter(w) {
		t.Errorf("LPT did not lighten the tail: %g vs %g",
			lastQuarter(SortDescending(w)), lastQuarter(w))
	}
}
