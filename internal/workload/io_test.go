package workload

import (
	"strings"
	"testing"
)

func TestCostsRoundTrip(t *testing.T) {
	orig := LinearIncreasing{N: 50}
	var sb strings.Builder
	if err := WriteCosts(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCosts(strings.NewReader(sb.String()), "loaded")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 || got.Name() != "loaded" {
		t.Fatalf("loaded %d iterations as %q", got.Len(), got.Name())
	}
	for i := 0; i < 50; i++ {
		if got.Cost(i) != orig.Cost(i) {
			t.Fatalf("cost %d: %g vs %g", i, got.Cost(i), orig.Cost(i))
		}
	}
}

func TestReadCostsValidation(t *testing.T) {
	cases := map[string]string{
		"garbage row":   "iteration,cost\nhello\n",
		"bad index":     "iteration,cost\nx,1\n",
		"bad cost":      "iteration,cost\n0,x\n",
		"negative cost": "iteration,cost\n0,-1\n",
		"out of order":  "iteration,cost\n1,5\n0,3\n",
		"gap":           "iteration,cost\n0,5\n2,3\n",
	}
	for name, input := range cases {
		if _, err := ReadCosts(strings.NewReader(input), "x"); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Headerless files and blank lines are fine.
	w, err := ReadCosts(strings.NewReader("0,1.5\n\n1,2.5\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.Cost(1) != 2.5 {
		t.Errorf("headerless parse: %+v", w)
	}
	// Empty input yields an empty (valid) workload.
	e, err := ReadCosts(strings.NewReader(""), "empty")
	if err != nil || e.Len() != 0 {
		t.Errorf("empty input: %v %d", err, e.Len())
	}
}
