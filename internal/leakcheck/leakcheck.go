// Package leakcheck asserts at the end of a test binary that no
// goroutines from the package under test survived its tests. It is a
// hand-rolled, dependency-free analogue of go.uber.org/goleak: the
// gojoin and ctxloop analyzers (internal/lint) prove statically that
// every goroutine has a join point; this package checks dynamically
// that the joins actually fire.
//
// Usage, from a package's TestMain:
//
//	func TestMain(m *testing.M) {
//		os.Exit(leakcheck.Main(m))
//	}
//
// Main runs the tests and, if they pass, polls the runtime's goroutine
// stacks until only known-benign goroutines remain or a grace period
// expires. Legitimately asynchronous teardown (a conn reader between
// Close and its WaitGroup join) gets time to finish; anything still
// alive after the grace period is reported with its full stack.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// graceDefault bounds how long Main waits for stragglers to unwind.
const graceDefault = 5 * time.Second

// benign reports whether a single goroutine stack is expected to
// survive the tests: runtime helpers, the testing harness itself, and
// the net poller, none of which the package under test owns.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*M).",
		"testing.runTests",
		"testing.runFuzzing",
		"testing.runFuzzTests",
		"runtime.goexit",
		"created by runtime.gc",
		"created by runtime.createFakeM",
		"runtime.MHeap_Scavenger",
		"runtime.ReadTrace",
		"signal.signal_recv",
		"sigterm.handler",
		"runtime_mcall",
		"(*loggingT).flushDaemon",
		"goroutine in C code",
		"runtime.CPUProfile",
		// The goroutine currently running the leak check.
		"loopsched/internal/leakcheck.Check(",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// leaked returns the stacks of non-benign goroutines, one per entry.
func leaked() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || benign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Check polls until no goroutines leak or the grace period expires,
// returning the stacks of the survivors (nil means clean). Exported so
// individual tests can assert mid-run teardown, not just at exit.
func Check(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	var last []string
	for {
		last = leaked()
		if len(last) == 0 || time.Now().After(deadline) {
			return last
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testingM matches *testing.M without importing the testing package
// into non-test builds of dependents.
type testingM interface{ Run() int }

// Main runs the package's tests and then the leak check. The returned
// code is for os.Exit: the tests' own code when they fail, 1 when they
// pass but goroutines leaked, 0 otherwise.
func Main(m testingM) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	if stacks := Check(graceDefault); len(stacks) != 0 {
		fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) survived the tests:\n\n%s\n",
			len(stacks), strings.Join(stacks, "\n\n"))
		return 1
	}
	return 0
}
