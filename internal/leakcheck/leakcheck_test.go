package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckReportsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	stacks := Check(50 * time.Millisecond)
	found := false
	for _, s := range stacks {
		if strings.Contains(s, "TestCheckReportsBlockedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Check did not report the deliberately leaked goroutine; got %d stacks", len(stacks))
	}

	close(release)
	if stacks := Check(2 * time.Second); len(stacks) != 0 {
		t.Fatalf("Check still reports %d stacks after the goroutine exited:\n%s",
			len(stacks), strings.Join(stacks, "\n\n"))
	}
}
