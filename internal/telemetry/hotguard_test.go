package telemetry

import (
	"sort"
	"testing"

	"loopsched/internal/hotpath"
)

// hotGuards is this package's alloc-guard table: one entry per
// //lint:loopsched-hotpath function, checked against the annotations
// by TestHotPathGuardTable.
var hotGuards = map[string]func(t *testing.T){
	"(*Bus).Publish": publishGuard,
	"(*Bus).Now":     nowGuard,
	"SpanID":         spanIDGuard,
}

// TestHotPathGuardTable pins hotGuards to the annotation set.
func TestHotPathGuardTable(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	missing, stale, err := hotpath.TableErrors(".", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("annotated hot function %s has no alloc guard; add a hotGuards entry", name)
	}
	for _, name := range stale {
		t.Errorf("hotGuards entry %s matches no annotated function; remove it or annotate", name)
	}
}

// TestHotPathAllocGuards runs every guard in the table.
func TestHotPathAllocGuards(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, hotGuards[name])
	}
}

// publishGuard guards the chunk hot path: publishing to a live bus —
// and to a nil bus, the telemetry-disabled default — must not touch
// the heap.
func publishGuard(t *testing.T) {
	b := NewBus(1 << 16) // roomy: the drainer (alloc-free) keeps up
	defer b.Close()
	e := Event{Kind: ChunkGranted, Worker: 3, Start: 100, Size: 8, ACP: 75, Seconds: 1e-4}
	if avg := testing.AllocsPerRun(1000, func() { b.Publish(e) }); avg > 0 {
		t.Errorf("Publish allocates %.1f objects per call, want 0", avg)
	}
	var nilBus *Bus
	if avg := testing.AllocsPerRun(1000, func() { nilBus.Publish(e) }); avg > 0 {
		t.Errorf("nil-bus Publish allocates %.1f objects per call, want 0", avg)
	}
}

// spanIDGuard: every grant and completion derives a span id.
func spanIDGuard(t *testing.T) {
	if avg := testing.AllocsPerRun(1000, func() {
		if SpanID(3, 100) == 0 {
			panic("span id must never be zero")
		}
	}); avg > 0 {
		t.Errorf("SpanID allocates %.1f objects per call, want 0", avg)
	}
}

// nowGuard: the clock read is on every event path, live or nil bus.
func nowGuard(t *testing.T) {
	b := NewBus(64)
	defer b.Close()
	var nilBus *Bus
	if avg := testing.AllocsPerRun(1000, func() {
		if b.Now() < 0 || nilBus.Now() != 0 {
			panic("clock went backwards")
		}
	}); avg > 0 {
		t.Errorf("Now allocates %.1f objects per call, want 0", avg)
	}
}
