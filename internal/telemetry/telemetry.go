// Package telemetry is a low-overhead event bus for live observation of
// the chunk protocol. Every backend (exec RPC master/worker, hier
// root+submasters, mp TCP, sim, local) publishes protocol-level events
// — chunk requests, grants, prefetches, completions, worker joins and
// timeouts, shard steals, stage advances — and subscribers (metric
// aggregator, Perfetto exporter, trace recorder) consume them off the
// hot path.
//
// Design constraints, in order:
//
//  1. Publish must never block the chunk hot path. Events go into a
//     fixed-size ring buffer; when it is full the event is counted in
//     Dropped and discarded, the publisher never waits.
//  2. Publish must not allocate. Event is a flat value type (no
//     pointers, no strings) copied into a pre-allocated ring. Run-wide
//     strings (scheme, workload) travel once per run in RunMeta.
//  3. Subscribers run on a single drainer goroutine, so they need no
//     internal locking against each other and observe events in
//     publish order.
//
// A nil *Bus is valid and inert: all methods are nil-safe no-ops, so
// call sites publish unconditionally without guarding on "telemetry
// enabled".
package telemetry

import (
	"sync"
	"time"
)

// Kind enumerates the protocol events backends publish.
type Kind uint8

const (
	// KindUnknown is the zero Kind; the bus never publishes it.
	KindUnknown Kind = iota

	// RunStarted and RunFinished bracket one executor run.
	RunStarted
	RunFinished

	// ChunkRequested marks a worker request arriving at a master or
	// submaster. Worker/Shard/ACP identify the requester.
	ChunkRequested

	// ChunkGranted marks a chunk handed to a worker in direct reply
	// to a request. Start/Size give the iteration range, Seconds the
	// scheduling latency from request arrival to grant.
	ChunkGranted

	// ChunkPrefetched is a grant satisfying a pipelined prefetch
	// request (the worker asked for work ahead of need). Counted as a
	// grant and as a prefetch hit.
	ChunkPrefetched

	// PrefetchMissed marks a prefetch request the master could not
	// satisfy (loop exhausted or nothing grantable): the pipeline
	// bubble the prefetch protocol tries to avoid.
	PrefetchMissed

	// ChunkCompleted marks a worker finishing the computation of a
	// chunk. Seconds is the computation time; At is the completion
	// instant, so the chunk occupied [At-Seconds, At].
	ChunkCompleted

	// WorkerJoined marks the first contact from a worker.
	WorkerJoined

	// WorkerTimedOut marks a worker declared failed by the timeout
	// watchdog; its outstanding iterations were requeued.
	WorkerTimedOut

	// WorkerRejected marks a request from a worker that was already
	// declared failed (a "resurrected" worker told to stop).
	WorkerRejected

	// ShardStealStarted marks a shard (Worker = thief shard id)
	// exhausting its own region and asking the root for a steal.
	ShardStealStarted

	// ShardStealDone marks a successful steal: Worker is the thief
	// shard, Shard the victim, Start/Size the stolen range.
	ShardStealDone

	// StageAdvanced marks a scheduling-stage boundary: an adaptive
	// replan on fresh ACP figures, or a hier submaster moving to its
	// next super-chunk.
	StageAdvanced

	// WireFrameSent marks one binary-protocol frame written to a
	// connection. Size is the frame's bytes on the wire (header
	// included), Start the batch item count it carried (completion
	// records for requests, grants for replies), Seconds the encode
	// time. Worker/Shard label the connection's owner.
	WireFrameSent

	// WireFrameReceived marks one binary-protocol frame decoded from
	// a connection, with the same field semantics as WireFrameSent
	// (Seconds is the decode time).
	WireFrameReceived

	// ChunkStolen marks a chunk moved between workers inside the
	// work-stealing local engine: Worker is the thief, Shard (reused;
	// these runs are flat) the victim worker's id, Start/Size the
	// chunk.
	ChunkStolen

	// DequeRefilled marks one trip to the scheme policy by the
	// work-stealing local engine: Worker refilled its deque with Size
	// chunks starting at iteration Start.
	DequeRefilled

	// JobSubmitted marks a job entering a scheduler's admission queue.
	// Job/Tenant identify it; Size is the job's iteration count. The
	// job's strings (tenant name, scheme, workload) travel once in
	// JobMeta via Bus.BeginJob.
	JobSubmitted

	// JobAdmitted marks a queued job starting on the shared fleet.
	// Seconds is the admission-queue wait (submit to start), Size the
	// job's iteration count.
	JobAdmitted

	// JobFinished marks a job completing every granted iteration.
	// Seconds is the job's runtime, Size its executed iterations.
	JobFinished

	// JobFailed marks a job failing terminally (retry budget spent,
	// deadline exceeded, or an unschedulable spec).
	JobFailed

	// JobRequeued marks a failed attempt pushed back onto the
	// scheduler's fail-queue for a later retry. Size is the attempt
	// number just finished.
	JobRequeued

	// JobCancelled marks a job cancelled by its owner or by the
	// scheduler closing.
	JobCancelled

	// JobQueueDepth is a gauge sample of the scheduler's admission
	// queue: Size is the number of jobs waiting (queued + fail-queue).
	JobQueueDepth

	// StragglerDetected marks the flight recorder observing a worker
	// whose EWMA chunk latency exceeds k times the fleet median:
	// Worker is the straggler, Seconds its EWMA latency, At the
	// detection instant. Published by the recorder itself (from the
	// drainer goroutine), never by a backend.
	StragglerDetected

	// LedgerFetch marks one fetch-and-add claim on the scheduling
	// ledger: Worker is the claimer, Start the number of steps claimed,
	// Seconds the claim's round-trip time (zero for the in-process
	// backend, where the claim is a single atomic add). Published by
	// the claiming side, so the aggregator can count claims and track
	// claim latency per backend.
	LedgerFetch

	kindCount // number of kinds; keep last
)

// kindNames indexes Kind. Names are stable: they appear in Prometheus
// label values and in the Perfetto export.
var kindNames = [kindCount]string{
	KindUnknown:       "unknown",
	RunStarted:        "run_started",
	RunFinished:       "run_finished",
	ChunkRequested:    "chunk_requested",
	ChunkGranted:      "chunk_granted",
	ChunkPrefetched:   "chunk_prefetched",
	PrefetchMissed:    "prefetch_missed",
	ChunkCompleted:    "chunk_completed",
	WorkerJoined:      "worker_joined",
	WorkerTimedOut:    "worker_timed_out",
	WorkerRejected:    "worker_rejected",
	ShardStealStarted: "shard_steal_started",
	ShardStealDone:    "shard_steal_done",
	StageAdvanced:     "stage_advanced",
	WireFrameSent:     "wire_frame_sent",
	WireFrameReceived: "wire_frame_received",
	ChunkStolen:       "chunk_stolen",
	DequeRefilled:     "deque_refilled",
	JobSubmitted:      "job_submitted",
	JobAdmitted:       "job_admitted",
	JobFinished:       "job_finished",
	JobFailed:         "job_failed",
	JobRequeued:       "job_requeued",
	JobCancelled:      "job_cancelled",
	JobQueueDepth:     "job_queue_depth",
	StragglerDetected: "straggler_detected",
	LedgerFetch:       "ledger_fetch",
}

// String returns the stable snake_case name of the kind.
func (k Kind) String() string {
	if k >= kindCount {
		return "invalid"
	}
	return kindNames[k]
}

// Event is one protocol event. It is a flat value type — no pointers,
// no strings — so publishing copies it into the ring without touching
// the heap. Fields beyond Kind are populated per kind (see the Kind
// docs); unused fields are zero.
type Event struct {
	Kind   Kind
	Worker int // worker id (global across shards); thief shard for steals
	Shard  int // shard index; 0 for flat runs, victim shard for ShardStealDone
	Job    int // scheduler job id; 0 for single-run executions
	Tenant int // scheduler tenant id; 0 for single-run executions
	Start  int // first iteration of the chunk / stolen range
	Size   int // iterations in the chunk / stolen range
	ACP    int // available computing power the requester reported, percent

	// Span is the chunk's trace/span id (see SpanID), carried by
	// ChunkGranted, ChunkPrefetched and ChunkCompleted so the
	// Perfetto export can draw one flow per chunk across processes.
	// Zero means untraced.
	Span uint64

	// At is the event instant in seconds on the backend's clock:
	// wall-monotonic seconds since the bus epoch for real backends,
	// virtual simulated seconds for the sim backend.
	At float64

	// Seconds is the kind-specific duration payload: computation time
	// for ChunkCompleted, scheduling latency for ChunkGranted and
	// ChunkPrefetched.
	Seconds float64
}

// SpanID derives a chunk's deterministic trace/span id from its job id
// and first iteration. A job's chunks partition its iteration space,
// so (job, start) identifies a chunk uniquely and both the granting
// master and the completing worker can compute the same id without
// threading state between them. The id is never zero (zero means "no
// span"); a requeued chunk re-granted after a worker failure reuses
// the id — it is the same chunk, and the trace shows the retry as a
// second slice on the same flow.
//
//lint:loopsched-hotpath
func SpanID(job, start int) uint64 {
	return uint64(uint32(job))<<40 | (uint64(uint32(start)) + 1)
}

// RunMeta describes one executor run. It is delivered to subscribers
// via BeginRun before any of the run's events, carrying the run-wide
// strings that Event deliberately omits.
type RunMeta struct {
	Scheme     string
	Workload   string
	Backend    string
	Workers    int
	Iterations int
}

// JobMeta describes one scheduler job, carrying the per-job strings
// that Event deliberately omits. It is delivered to subscribers that
// implement JobObserver via Bus.BeginJob, before any of the job's
// events.
type JobMeta struct {
	Job        int
	Tenant     int
	TenantName string
	Scheme     string
	Workload   string
	Iterations int
	Priority   int
	Weight     float64
}

// JobObserver is optionally implemented by subscribers that want
// per-job announcements from a scheduler. It is a separate interface
// (rather than a fourth Subscriber method) so existing subscribers
// keep compiling; Bus.BeginJob type-asserts at delivery time.
type JobObserver interface {
	// BeginJob announces a job submission. Like BeginRun it is called
	// from the publisher's goroutine, never concurrently with OnEvent.
	BeginJob(m JobMeta)
}

// Subscriber consumes events from the bus. All three methods are
// called from the bus's single drainer goroutine (BeginRun from the
// publisher's goroutine, but never concurrently with OnEvent — the bus
// flushes first), so implementations need no locking against the bus.
type Subscriber interface {
	// BeginRun announces a new run. Events published after BeginRun
	// belong to that run.
	BeginRun(m RunMeta)
	// OnEvent delivers one event, in publish order.
	OnEvent(e Event)
	// Close flushes and releases the subscriber. Called once by
	// Bus.Close.
	Close() error
}

// DefaultBufferSize is the ring capacity used when NewBus is given a
// non-positive size. At 72 bytes per Event this is ~1.2 MiB.
const DefaultBufferSize = 1 << 14

// Bus is the event ring. Create with NewBus, stop with Close.
type Bus struct {
	epoch time.Time

	mu         sync.Mutex
	cond       *sync.Cond
	ring       []Event
	head       int // index of oldest queued event
	queued     int // events waiting in the ring
	dropped    uint64
	delivering bool // drainer is between Lock windows with a batch in flight
	closed     bool
	subs       []Subscriber

	wg sync.WaitGroup
}

// NewBus creates a bus with the given ring capacity (DefaultBufferSize
// if size <= 0) and starts its drainer goroutine. The caller must
// Close the bus to stop the drainer and close subscribers.
func NewBus(size int) *Bus {
	if size <= 0 {
		size = DefaultBufferSize
	}
	b := &Bus{
		epoch: time.Now(),
		ring:  make([]Event, size),
	}
	b.cond = sync.NewCond(&b.mu)
	b.wg.Add(1)
	go b.drain()
	return b
}

// Now returns seconds since the bus epoch on the wall-monotonic clock,
// the At timestamp real backends stamp events with. Nil-safe: a nil
// bus reports 0, and the corresponding Publish discards the event, so
// the pair stays coherent.
//
//lint:loopsched-hotpath
func (b *Bus) Now() float64 {
	if b == nil {
		return 0
	}
	return time.Since(b.epoch).Seconds()
}

// Publish enqueues an event. It never blocks and never allocates: if
// the ring is full the event is dropped and counted in Dropped. Safe
// for concurrent use; nil-safe no-op.
//
//lint:loopsched-hotpath
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if b.queued == len(b.ring) {
		b.dropped++
		b.mu.Unlock()
		return
	}
	b.ring[(b.head+b.queued)%len(b.ring)] = e
	b.queued++
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Dropped reports how many events were discarded because the ring was
// full. Nil-safe.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Subscribe attaches a subscriber. Events published after Subscribe
// returns are guaranteed to reach it; events already queued may too.
func (b *Bus) Subscribe(s Subscriber) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Copy-on-write so the drainer can hold a snapshot without the lock.
	subs := make([]Subscriber, 0, len(b.subs)+1)
	subs = append(subs, b.subs...)
	b.subs = append(subs, s)
}

// Unsubscribe detaches a subscriber previously passed to Subscribe.
// It does not Close the subscriber. After Unsubscribe returns the
// subscriber may still receive the batch currently in flight; call
// Flush first for a clean cut.
func (b *Bus) Unsubscribe(s Subscriber) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := make([]Subscriber, 0, len(b.subs))
	for _, have := range b.subs {
		if have != s {
			subs = append(subs, have)
		}
	}
	b.subs = subs
}

// Flush blocks until every event published before the call has been
// delivered to the subscribers. Nil-safe.
func (b *Bus) Flush() {
	if b == nil {
		return
	}
	b.mu.Lock()
	for (b.queued > 0 || b.delivering) && !b.closed {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// BeginRun flushes the queue and then synchronously announces the run
// to every subscriber, so the meta is observed before any of the run's
// events. Nil-safe.
func (b *Bus) BeginRun(m RunMeta) {
	if b == nil {
		return
	}
	b.Flush()
	b.mu.Lock()
	subs := b.subs
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return
	}
	for _, s := range subs {
		s.BeginRun(m)
	}
}

// BeginJob flushes the queue and then synchronously announces a
// scheduler job to every subscriber implementing JobObserver, so the
// meta is observed before any of the job's events. Nil-safe.
func (b *Bus) BeginJob(m JobMeta) {
	if b == nil {
		return
	}
	b.Flush()
	b.mu.Lock()
	subs := b.subs
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return
	}
	for _, s := range subs {
		if jo, ok := s.(JobObserver); ok {
			jo.BeginJob(m)
		}
	}
}

// Close drains queued events, stops the drainer goroutine (joining it,
// per the gojoin contract), and closes every subscriber. Publishing
// after Close is a counted-free no-op. Close is idempotent; nil-safe.
func (b *Bus) Close() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
	b.wg.Wait()

	b.mu.Lock()
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()
	var first error
	for _, s := range subs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// drainBatch bounds how many events the drainer copies out per lock
// window. Bounding keeps Publish latency flat while the drainer is
// busy delivering.
const drainBatch = 256

// drain is the single delivery goroutine: it copies batches out of the
// ring under the lock and runs subscribers outside it, so a slow
// subscriber delays delivery, never publishers. On Close it first
// drains whatever is queued, then exits.
func (b *Bus) drain() {
	defer b.wg.Done()
	var batch [drainBatch]Event
	for {
		b.mu.Lock()
		for b.queued == 0 && !b.closed {
			b.cond.Wait()
		}
		if b.queued == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		n := 0
		for n < len(batch) && b.queued > 0 {
			batch[n] = b.ring[b.head]
			b.head = (b.head + 1) % len(b.ring)
			b.queued--
			n++
		}
		b.delivering = true
		subs := b.subs
		b.mu.Unlock()

		for _, s := range subs {
			for i := 0; i < n; i++ {
				s.OnEvent(batch[i])
			}
		}

		b.mu.Lock()
		b.delivering = false
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}
