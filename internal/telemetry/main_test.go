package telemetry

import (
	"os"
	"testing"

	"loopsched/internal/leakcheck"
)

func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
