package telemetry

import (
	"sync"
	"testing"
)

// collector is a test Subscriber that records everything it sees.
type collector struct {
	mu     sync.Mutex
	metas  []RunMeta
	events []Event
	closed int
}

func (c *collector) BeginRun(m RunMeta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metas = append(c.metas, m)
}

func (c *collector) OnEvent(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed++
	return nil
}

func (c *collector) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func TestBusDeliversInOrder(t *testing.T) {
	b := NewBus(64)
	defer b.Close()
	c := &collector{}
	b.Subscribe(c)

	const n = 1000 // far more than the ring: Flush between batches
	for i := 0; i < n; i++ {
		if i%50 == 0 {
			b.Flush()
		}
		b.Publish(Event{Kind: ChunkGranted, Start: i})
	}
	b.Flush()

	got := c.snapshot()
	if len(got) != n {
		t.Fatalf("delivered %d events, want %d (dropped=%d)", len(got), n, b.Dropped())
	}
	for i, e := range got {
		if e.Start != i {
			t.Fatalf("event %d out of order: Start=%d", i, e.Start)
		}
	}
}

func TestBusDropsWhenFull(t *testing.T) {
	// A bus with no subscribers still drains (into the void), so to
	// observe overflow deterministically use a blocking subscriber.
	b := NewBus(4)
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	b.Subscribe(&funcSub{onEvent: func(Event) {
		once.Do(func() { close(first) })
		<-release
	}})

	b.Publish(Event{Kind: ChunkGranted})
	<-first // drainer is now stuck inside the subscriber
	// Fill the ring beyond capacity while delivery is blocked. The
	// drainer may have already pulled a batch, so publish generously.
	for i := 0; i < 64; i++ {
		b.Publish(Event{Kind: ChunkGranted})
	}
	if b.Dropped() == 0 {
		t.Error("expected dropped events on a saturated ring")
	}
	close(release)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// funcSub adapts a function to Subscriber.
type funcSub struct {
	onEvent func(Event)
}

func (f *funcSub) BeginRun(RunMeta) {}
func (f *funcSub) OnEvent(e Event) {
	if f.onEvent != nil {
		f.onEvent(e)
	}
}
func (f *funcSub) Close() error { return nil }

func TestBusCloseClosesSubscribers(t *testing.T) {
	b := NewBus(16)
	c := &collector{}
	b.Subscribe(c)
	b.Publish(Event{Kind: ChunkCompleted})
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if c.closed != 1 {
		t.Errorf("subscriber closed %d times, want 1", c.closed)
	}
	if got := c.snapshot(); len(got) != 1 {
		t.Errorf("events queued before Close must be drained: got %d, want 1", len(got))
	}
	// Idempotent, and publish-after-close is an inert no-op.
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	b.Publish(Event{Kind: ChunkCompleted})
	if got := c.snapshot(); len(got) != 1 {
		t.Errorf("publish after Close must not deliver: got %d events", len(got))
	}
}

func TestBusBeginRunOrdering(t *testing.T) {
	b := NewBus(16)
	defer b.Close()
	c := &collector{}
	b.Subscribe(c)
	b.Publish(Event{Kind: ChunkGranted, Start: 1})
	b.BeginRun(RunMeta{Scheme: "tss", Workers: 4})
	b.Publish(Event{Kind: ChunkGranted, Start: 2})
	b.Flush()

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.metas) != 1 || c.metas[0].Scheme != "tss" {
		t.Fatalf("metas = %+v, want one tss entry", c.metas)
	}
	if len(c.events) != 2 {
		t.Fatalf("got %d events, want 2", len(c.events))
	}
}

func TestBusUnsubscribe(t *testing.T) {
	b := NewBus(16)
	defer b.Close()
	c := &collector{}
	b.Subscribe(c)
	b.Publish(Event{Kind: ChunkGranted})
	b.Flush()
	b.Unsubscribe(c)
	b.Publish(Event{Kind: ChunkGranted})
	b.Flush()
	if got := len(c.snapshot()); got != 1 {
		t.Errorf("got %d events after unsubscribe, want 1", got)
	}
}

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	b.Publish(Event{Kind: ChunkGranted}) // must not panic
	b.Flush()
	b.BeginRun(RunMeta{})
	b.Subscribe(&collector{})
	b.Unsubscribe(nil)
	if b.Now() != 0 || b.Dropped() != 0 {
		t.Error("nil bus must report zero Now/Dropped")
	}
	if err := b.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	var tl *Telemetry
	if tl.Bus() != nil || tl.DebugAddr() != "" {
		t.Error("nil Telemetry must expose nil bus and empty addr")
	}
	tl.Flush()
	if err := tl.Close(); err != nil {
		t.Errorf("nil Telemetry Close: %v", err)
	}
}

// The Publish and Now alloc guards live in hotguard_test.go,
// generated from the //lint:loopsched-hotpath annotations.

func TestKindString(t *testing.T) {
	for k := KindUnknown; k < kindCount; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); got != "invalid" {
		t.Errorf("out-of-range kind = %q, want invalid", got)
	}
}
