package hist

import (
	"math"
	"testing"
	"unsafe"
)

func TestBucketEdges(t *testing.T) {
	cases := []float64{0, -1, 0.4e-9, 1e-9, 1.9e-9, 2e-9, 1e-6, 1.0, 3600.0}
	for _, sec := range cases {
		got := bucketOf(sec)
		// The expectation follows from the definition: bucket index is
		// the bit length of the duration in nanoseconds, clamped.
		ns := int64(sec * 1e9)
		if ns < 0 {
			ns = 0
		}
		want := 0
		for v := uint64(ns); v > 0; v >>= 1 {
			want++
		}
		if want >= NumBuckets {
			want = NumBuckets - 1
		}
		if got != want {
			t.Errorf("bucketOf(%g) = %d, want %d", sec, got, want)
		}
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	var h Hist
	h.Record(1e-6)
	h.Record(1e-6)
	h.Record(1e-3)
	h.Record(0) // zero bucket, no sum contribution
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantSum := 2*1e-6 + 1e-3
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Errorf("SumSeconds = %g, want %g", s.SumSeconds, wantSum)
	}
	if s.Counts[0] != 1 {
		t.Errorf("zero bucket = %d, want 1", s.Counts[0])
	}
	if s.Counts[bucketOf(1e-6)] != 2 {
		t.Errorf("1µs bucket = %d, want 2", s.Counts[bucketOf(1e-6)])
	}
}

func TestNilSafety(t *testing.T) {
	var h *Hist
	h.Record(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil Hist snapshot Count = %d", s.Count)
	}
	var sh *Sharded
	sh.Record(0, 1)
	if s := sh.Snapshot(); s.Count != 0 {
		t.Errorf("nil Sharded snapshot Count = %d", s.Count)
	}
}

func TestShardedFoldsAndMerges(t *testing.T) {
	s := NewSharded(4)
	for w := 0; w < 4; w++ {
		s.Record(w, 1e-4)
	}
	s.Record(-3, 1e-4) // out of range: folded, not dropped
	s.Record(17, 1e-4)
	snap := s.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("merged Count = %d, want 6", snap.Count)
	}
	if math.Abs(snap.SumSeconds-6e-4) > 1e-9 {
		t.Errorf("merged SumSeconds = %g, want 6e-4", snap.SumSeconds)
	}
}

func TestShardPadding(t *testing.T) {
	if sz := unsafe.Sizeof(paddedHist{}); sz%64 != 0 {
		t.Errorf("paddedHist is %d bytes, want a 64-byte multiple", sz)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var h Hist
	// 100 samples all in the [64ns, 128ns) bucket.
	for i := 0; i < 100; i++ {
		h.Record(100e-9)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		if got < 64e-9 || got > 128e-9 {
			t.Errorf("Quantile(%g) = %g, want within [64ns, 128ns)", q, got)
		}
	}
	// p50 should land below p99 within the bucket.
	if !(s.Quantile(0.5) < s.Quantile(0.99)) {
		t.Errorf("quantiles not monotonic: p50=%g p99=%g", s.Quantile(0.5), s.Quantile(0.99))
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	var h Hist
	for i := 0; i < 90; i++ {
		h.Record(1e-6) // ~1µs
	}
	for i := 0; i < 10; i++ {
		h.Record(1e-3) // ~1ms tail
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 > 10e-6 {
		t.Errorf("p50 = %g, want ~1µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 100e-6 {
		t.Errorf("p99 = %g, want in the ms tail", p99)
	}
	sum := s.Summarize()
	if sum.Count != 100 || sum.P50 > sum.P95 || sum.P95 > sum.P99 {
		t.Errorf("summary not monotonic: %+v", sum)
	}
}

func TestQuantileEmptyAndBounds(t *testing.T) {
	var s Snapshot
	if s.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
	if s.Mean() != 0 {
		t.Error("empty snapshot mean should be 0")
	}
	var h Hist
	h.Record(1)
	snap := h.Snapshot()
	if snap.Quantile(-1) != snap.Quantile(0) || snap.Quantile(2) != snap.Quantile(1) {
		t.Error("quantile arguments should clamp to [0, 1]")
	}
}

func TestUpperBounds(t *testing.T) {
	if UpperBound(0) != 1e-9 {
		t.Errorf("UpperBound(0) = %g, want 1ns", UpperBound(0))
	}
	if !math.IsInf(UpperBound(NumBuckets-1), 1) {
		t.Error("last bucket should be unbounded")
	}
	for i := 1; i < NumBuckets-1; i++ {
		if UpperBound(i) != 2*UpperBound(i-1) {
			t.Errorf("bucket %d bound %g is not double bucket %d's %g", i, UpperBound(i), i-1, UpperBound(i-1))
		}
	}
}

func TestMergeAccumulates(t *testing.T) {
	var a, b Hist
	a.Record(1e-6)
	b.Record(1e-3)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 2 {
		t.Errorf("merged Count = %d, want 2", sa.Count)
	}
	if math.Abs(sa.SumSeconds-(1e-6+1e-3)) > 1e-9 {
		t.Errorf("merged SumSeconds = %g", sa.SumSeconds)
	}
}
