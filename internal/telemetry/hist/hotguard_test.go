package hist

import (
	"sort"
	"testing"

	"loopsched/internal/hotpath"
)

// hotGuards is this package's alloc-guard table: one entry per
// //lint:loopsched-hotpath function, checked against the annotations
// by TestHotPathGuardTable.
var hotGuards = map[string]func(t *testing.T){
	"(*Hist).Record":    histRecordGuard,
	"(*Sharded).Record": shardedRecordGuard,
}

// TestHotPathGuardTable pins hotGuards to the annotation set.
func TestHotPathGuardTable(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	missing, stale, err := hotpath.TableErrors(".", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("annotated hot function %s has no alloc guard; add a hotGuards entry", name)
	}
	for _, name := range stale {
		t.Errorf("hotGuards entry %s matches no annotated function; remove it or annotate", name)
	}
}

// TestHotPathAllocGuards runs every guard in the table.
func TestHotPathAllocGuards(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, hotGuards[name])
	}
}

// histRecordGuard: every grant and completion records a latency, so
// the record path must never touch the heap — live or nil histogram.
func histRecordGuard(t *testing.T) {
	var h Hist
	if avg := testing.AllocsPerRun(1000, func() { h.Record(1.25e-4) }); avg > 0 {
		t.Errorf("Record allocates %.1f objects per call, want 0", avg)
	}
	var nilHist *Hist
	if avg := testing.AllocsPerRun(1000, func() { nilHist.Record(1.25e-4) }); avg > 0 {
		t.Errorf("nil-Hist Record allocates %.1f objects per call, want 0", avg)
	}
}

// shardedRecordGuard: the per-worker sharded form rides the same hot
// paths as the flat one.
func shardedRecordGuard(t *testing.T) {
	s := NewSharded(8)
	if avg := testing.AllocsPerRun(1000, func() { s.Record(3, 1.25e-4) }); avg > 0 {
		t.Errorf("Record allocates %.1f objects per call, want 0", avg)
	}
	var nilSharded *Sharded
	if avg := testing.AllocsPerRun(1000, func() { nilSharded.Record(3, 1.25e-4) }); avg > 0 {
		t.Errorf("nil-Sharded Record allocates %.1f objects per call, want 0", avg)
	}
}
