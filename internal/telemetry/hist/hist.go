// Package hist provides fixed-bucket log₂ latency histograms for the
// chunk hot path. A Hist is a flat array of atomic counters — recording
// a sample is two atomic adds and never allocates, so grant and
// completion paths can record into one unconditionally. Sharded pads
// one Hist per worker onto its own cache lines, so a fleet hammering
// Record never bounces a bucket line between cores.
//
// Buckets are powers of two of nanoseconds: bucket i counts samples
// whose duration in nanoseconds needs i bits, i.e. lies in
// [2^(i-1), 2^i) ns (bucket 0 is the sub-nanosecond/zero bucket, the
// last bucket is unbounded). 42 buckets span 1 ns to ~36 min, which
// covers every latency the scheduler can produce — from a channel
// round trip to a straggling super-chunk — with ≤ 2× relative error,
// plenty for p50/p95/p99 scheduling decisions.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Hist.
const NumBuckets = 42

// Hist is one log₂ histogram. The zero value is ready to use; all
// methods are safe for concurrent use and nil-safe.
type Hist struct {
	buckets  [NumBuckets]atomic.Uint64
	sumNanos atomic.Int64
}

// bucketOf maps a duration in seconds to its bucket index.
//
//lint:loopsched-hotpath
func bucketOf(seconds float64) int {
	ns := int64(seconds * 1e9)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// Record adds one sample. Negative and NaN durations count into the
// zero bucket (they are clock artefacts, not real latencies, but
// dropping them would break count reconciliation). Nil-safe; never
// allocates.
//
//lint:loopsched-hotpath
func (h *Hist) Record(seconds float64) {
	if h == nil {
		return
	}
	if !(seconds > 0) { // NaN or <= 0
		h.buckets[0].Add(1)
		return
	}
	ns := int64(seconds * 1e9)
	h.buckets[bucketOf(seconds)].Add(1)
	h.sumNanos.Add(ns)
}

// Snapshot copies the histogram's current state. Buckets are read one
// atomic at a time, so a snapshot taken mid-record may be off by the
// in-flight sample; successive snapshots are monotonic per bucket.
func (h *Hist) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.SumSeconds = float64(h.sumNanos.Load()) / 1e9
	return s
}

// histPad rounds Hist up to a 64-byte multiple so adjacent shards in a
// Sharded never share a cache line (42×8 bucket bytes + 8 sum bytes =
// 344; +40 = 384 = 6 lines).
const histPad = 40

type paddedHist struct {
	Hist
	_ [histPad]byte
}

// Sharded is a per-worker sharded histogram: worker i records into its
// own cache-padded Hist, and Snapshot merges all shards. Use it where
// many workers record concurrently (completion paths); a single-writer
// site (a master's grant loop) can use a plain Hist.
type Sharded struct {
	shards []paddedHist
}

// NewSharded returns a histogram with n padded shards (min 1).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	return &Sharded{shards: make([]paddedHist, n)}
}

// Record adds one sample to the worker's shard. Out-of-range worker
// ids fold onto a shard rather than dropping the sample, so counts
// still reconcile. Nil-safe; never allocates.
//
//lint:loopsched-hotpath
func (s *Sharded) Record(worker int, seconds float64) {
	if s == nil || len(s.shards) == 0 {
		return
	}
	if worker < 0 || worker >= len(s.shards) {
		worker = ((worker % len(s.shards)) + len(s.shards)) % len(s.shards)
	}
	s.shards[worker].Record(seconds)
}

// Snapshot merges every shard into one Snapshot.
func (s *Sharded) Snapshot() Snapshot {
	var out Snapshot
	if s == nil {
		return out
	}
	for i := range s.shards {
		out.Merge(s.shards[i].Snapshot())
	}
	return out
}

// Snapshot is a point-in-time copy of a histogram, mergeable and
// quantile-queryable off the hot path.
type Snapshot struct {
	Counts     [NumBuckets]uint64
	Count      uint64
	SumSeconds float64
}

// Merge adds another snapshot's samples into s.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumSeconds += o.SumSeconds
}

// UpperBound returns bucket i's exclusive upper bound in seconds
// (+Inf for the last bucket). These are the Prometheus `le` edges.
func UpperBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) / 1e9
}

// lowerBound returns bucket i's inclusive lower bound in seconds.
func lowerBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	return float64(uint64(1)<<uint(i-1)) / 1e9
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the covering bucket. An empty snapshot reports
// 0. The estimate's relative error is bounded by the bucket width
// (≤ 2×).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := lowerBound(i), UpperBound(i)
			if math.IsInf(hi, 1) {
				return lo // unbounded tail: report the bucket floor
			}
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return lowerBound(NumBuckets - 1)
}

// Summary condenses a snapshot to the percentiles the reports print.
type Summary struct {
	Count      uint64
	SumSeconds float64
	P50        float64
	P95        float64
	P99        float64
}

// Summarize computes the report summary for the snapshot.
func (s Snapshot) Summarize() Summary {
	return Summary{
		Count:      s.Count,
		SumSeconds: s.SumSeconds,
		P50:        s.Quantile(0.50),
		P95:        s.Quantile(0.95),
		P99:        s.Quantile(0.99),
	}
}

// Mean returns the snapshot's mean sample in seconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}
