package telemetry

import "io"

// Options configures a telemetry session. The zero value enables the
// bus and aggregator with no HTTP server and no Perfetto export.
type Options struct {
	// DebugAddr, when non-empty, starts an HTTP debug server on the
	// address (":0" picks a free port; see Telemetry.DebugAddr)
	// serving Prometheus text at /metrics, expvar at /debug/vars and
	// net/http/pprof under /debug/pprof/.
	DebugAddr string

	// Perfetto, when non-nil, streams Chrome trace-event JSON to the
	// writer. The document is finished when the session is Closed.
	Perfetto io.Writer

	// BufferSize overrides the event ring capacity
	// (DefaultBufferSize when <= 0). When the ring overflows, events
	// are dropped and counted, never blocking publishers.
	BufferSize int

	// FlightRing overrides the flight recorder's completion-sample
	// ring capacity (DefaultFlightRing when <= 0). The recorder is
	// always on: its per-completion cost is a map update on the
	// drainer goroutine, off the chunk hot path.
	FlightRing int
}

// Telemetry owns one bus plus the standard subscribers: the metric
// aggregator, optionally the debug HTTP server, and optionally the
// Perfetto exporter. One session can observe any number of runs
// (sequentially); Close it when done.
type Telemetry struct {
	bus    *Bus
	agg    *Aggregator
	flight *FlightRecorder
	pf     *PerfettoWriter
	srv    *debugServer
}

// New starts a telemetry session.
func New(o Options) (*Telemetry, error) {
	bus := NewBus(o.BufferSize)
	t := &Telemetry{bus: bus, agg: NewAggregator(bus.Dropped)}
	bus.Subscribe(t.agg)
	t.flight = NewFlightRecorder(bus, o.FlightRing)
	bus.Subscribe(t.flight)
	if o.Perfetto != nil {
		t.pf = NewPerfettoWriter(o.Perfetto)
		bus.Subscribe(t.pf)
	}
	if o.DebugAddr != "" {
		srv, err := newDebugServer(o.DebugAddr, t.agg, t.flight)
		if err != nil {
			_ = bus.Close()
			return nil, err
		}
		t.srv = srv
	}
	return t, nil
}

// Bus returns the session's event bus. Nil-safe: a nil session has a
// nil bus, whose methods are inert, so backends publish
// unconditionally.
func (t *Telemetry) Bus() *Bus {
	if t == nil {
		return nil
	}
	return t.bus
}

// Aggregator returns the session's metric aggregator (never nil on a
// non-nil session).
func (t *Telemetry) Aggregator() *Aggregator {
	if t == nil {
		return nil
	}
	return t.agg
}

// Flight returns the session's imbalance flight recorder (never nil
// on a non-nil session).
func (t *Telemetry) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// DebugAddr returns the debug server's listen address, or "" when no
// server was started. Useful with Options.DebugAddr ":0".
func (t *Telemetry) DebugAddr() string {
	if t == nil || t.srv == nil {
		return ""
	}
	return t.srv.Addr()
}

// Flush blocks until all published events reached the subscribers.
func (t *Telemetry) Flush() {
	if t == nil {
		return
	}
	t.bus.Flush()
}

// Close drains the bus, finishes the Perfetto document, and stops the
// debug server. Idempotent; nil-safe.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	err := t.bus.Close() // drains, then closes aggregator + perfetto
	if t.srv != nil {
		if serr := t.srv.Close(); err == nil {
			err = serr
		}
		t.srv = nil
	}
	return err
}
