package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses a finished Perfetto document, failing the test on
// invalid JSON.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	if !json.Valid(data) {
		t.Fatalf("export is not valid JSON:\n%s", data)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return doc.TraceEvents
}

func TestPerfettoExport(t *testing.T) {
	var sb strings.Builder
	p := NewPerfettoWriter(&sb)
	p.BeginRun(RunMeta{Scheme: "tss", Workload: "mandelbrot", Backend: "sim", Workers: 2})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 0, Start: 0, Size: 32, ACP: 100, At: 1.5, Seconds: 0.5})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 1, Start: 32, Size: 16, ACP: 50, At: 2.0, Seconds: 1.0})
	p.OnEvent(Event{Kind: ShardStealDone, Worker: 1, Shard: 0, Start: 48, Size: 8, At: 2.5})
	p.OnEvent(Event{Kind: WorkerTimedOut, Worker: 0, At: 3.0})
	p.OnEvent(Event{Kind: ChunkRequested, Worker: 0, At: 3.5}) // not exported
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events := decodeTrace(t, []byte(sb.String()))
	// 1 process_name + 2 thread_name metadata + 2 slices + 2 instants.
	if len(events) != 7 {
		t.Fatalf("got %d trace events, want 7:\n%s", len(events), sb.String())
	}
	var slices, instants int
	for _, e := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("trace event missing required key %q: %v", key, e)
			}
		}
		switch e["ph"] {
		case "X":
			slices++
			if _, ok := e["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", e)
			}
		case "i":
			instants++
		}
	}
	if slices != 2 || instants != 2 {
		t.Errorf("slices=%d instants=%d, want 2 and 2", slices, instants)
	}
}

func TestPerfettoSliceTiming(t *testing.T) {
	var sb strings.Builder
	p := NewPerfettoWriter(&sb)
	p.BeginRun(RunMeta{Workers: 1})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 0, At: 2.0, Seconds: 0.5})
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events := decodeTrace(t, []byte(sb.String()))
	for _, e := range events {
		if e["ph"] != "X" {
			continue
		}
		// At=2.0s, Seconds=0.5s: slice is [1.5s, 2.0s] = ts 1.5e6 µs, dur 5e5 µs.
		if ts := e["ts"].(float64); ts != 1.5e6 {
			t.Errorf("ts = %v µs, want 1.5e6", ts)
		}
		if dur := e["dur"].(float64); dur != 5e5 {
			t.Errorf("dur = %v µs, want 5e5", dur)
		}
	}
}

func TestPerfettoEmptyDocumentIsValid(t *testing.T) {
	var sb strings.Builder
	p := NewPerfettoWriter(&sb)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if events := decodeTrace(t, []byte(sb.String())); len(events) != 0 {
		t.Errorf("empty document has %d events", len(events))
	}
}

func TestPerfettoTenantTracksAndFlows(t *testing.T) {
	var sb strings.Builder
	p := NewPerfettoWriter(&sb)
	p.BeginRun(RunMeta{Scheme: "tss", Backend: "service", Workers: 2})
	p.BeginJob(JobMeta{Job: 1, Tenant: 1, TenantName: "alpha"})
	p.BeginJob(JobMeta{Job: 2, Tenant: 2, TenantName: "beta"})
	p.BeginJob(JobMeta{Job: 3, Tenant: 1, TenantName: "alpha"}) // second job, same track
	span := SpanID(1, 64)
	p.OnEvent(Event{Kind: ChunkGranted, Worker: 0, Job: 1, Tenant: 1, Start: 64, Size: 8, Span: span, At: 1.0})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 0, Job: 1, Tenant: 1, Start: 64, Size: 8, Span: span, At: 1.5, Seconds: 0.25})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 1, Job: 2, Tenant: 2, Start: 0, Size: 4, At: 2.0, Seconds: 0.5})
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events := decodeTrace(t, []byte(sb.String()))
	// Each tenant gets exactly one named process track, distinct pids.
	tenantPids := map[string]float64{}
	for _, e := range events {
		if e["name"] != "process_name" {
			continue
		}
		args := e["args"].(map[string]any)
		name := args["name"].(string)
		if !strings.HasPrefix(name, "tenant ") {
			continue
		}
		if prev, dup := tenantPids[name]; dup {
			t.Errorf("tenant track %q named twice (pids %v and %v)", name, prev, e["pid"])
		}
		tenantPids[name] = e["pid"].(float64)
	}
	if len(tenantPids) != 2 || tenantPids["tenant alpha"] == tenantPids["tenant beta"] {
		t.Fatalf("tenant tracks = %v, want two distinct pids", tenantPids)
	}

	// The span-tagged grant/completion pair draws one flow: an "s" on
	// the grant and an "f" on the completion, same id, tenant's pid.
	var starts, finishes int
	for _, e := range events {
		if e["cat"] != "flow" {
			continue
		}
		if id := e["id"].(float64); id != float64(span) {
			t.Errorf("flow id %v, want %d", id, span)
		}
		if pid := e["pid"].(float64); pid != tenantPids["tenant alpha"] {
			t.Errorf("flow event pid %v, want tenant alpha's %v", pid, tenantPids["tenant alpha"])
		}
		switch e["ph"] {
		case "s":
			starts++
		case "f":
			finishes++
		}
	}
	if starts != 1 || finishes != 1 {
		t.Errorf("flow starts=%d finishes=%d, want 1 and 1", starts, finishes)
	}

	// Tenant-tagged slices land on the tenant's track, not the run's.
	for _, e := range events {
		if e["ph"] != "X" {
			continue
		}
		args := e["args"].(map[string]any)
		var want float64
		switch args["job"].(float64) {
		case 1:
			want = tenantPids["tenant alpha"]
		case 2:
			want = tenantPids["tenant beta"]
		default:
			t.Fatalf("unexpected job on slice: %v", e)
		}
		if e["pid"].(float64) != want {
			t.Errorf("slice for job %v on pid %v, want %v", args["job"], e["pid"], want)
		}
	}
}

func TestPerfettoMultipleRunsGetSeparateProcesses(t *testing.T) {
	var sb strings.Builder
	p := NewPerfettoWriter(&sb)
	p.BeginRun(RunMeta{Scheme: "tss", Workers: 1})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 0, At: 1, Seconds: 0.5})
	p.BeginRun(RunMeta{Scheme: "gss", Workers: 1})
	p.OnEvent(Event{Kind: ChunkCompleted, Worker: 0, At: 1, Seconds: 0.5})
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range decodeTrace(t, []byte(sb.String())) {
		if e["ph"] == "X" {
			pids[e["pid"].(float64)] = true
		}
	}
	if len(pids) != 2 {
		t.Errorf("slices landed in %d processes, want 2", len(pids))
	}
}
