package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// Flight-recorder defaults: ring capacity, EWMA smoothing, and the
// straggler threshold multiplier (a worker is flagged when its EWMA
// chunk latency exceeds StragglerK times the fleet median).
const (
	DefaultFlightRing = 256
	flightEWMAAlpha   = 0.2
	StragglerK        = 3.0
)

// FlightSample is one completion observation kept in the recorder's
// ring: which worker finished a chunk, when, how long the chunk took,
// and the worker's smoothed latency at that instant.
type FlightSample struct {
	At      float64 `json:"at"`
	Worker  int     `json:"worker"`
	Seconds float64 `json:"seconds"`
	EWMA    float64 `json:"ewma"`
}

// FlightWorker is one worker's row in a flight-recorder snapshot.
type FlightWorker struct {
	Worker     int     `json:"worker"`
	Chunks     uint64  `json:"chunks"`
	Busy       float64 `json:"busy_seconds"`
	EWMA       float64 `json:"ewma_seconds"`
	LastFinish float64 `json:"last_finish"`
	Straggler  bool    `json:"straggler"`
}

// FlightSnapshot is the recorder's JSON dump: the paper's load-balance
// metrics over the current (or just-finished) run, the per-worker
// rows they derive from, and the ring of recent completion samples.
type FlightSnapshot struct {
	Scheme   string `json:"scheme,omitempty"`
	Workload string `json:"workload,omitempty"`
	Backend  string `json:"backend,omitempty"`

	Workers []FlightWorker `json:"workers"`

	// MaxBusy and MeanBusy are the paper's T_max and mean worker busy
	// time; their ratio is the classic load-imbalance factor.
	MaxBusy  float64 `json:"max_busy_seconds"`
	MeanBusy float64 `json:"mean_busy_seconds"`
	// CV is the coefficient of variation of per-worker busy time
	// (σ/mean), the imbalance metric the adaptive schemes minimise.
	CV float64 `json:"busy_cv"`
	// TailIdleFrac is the fraction of fleet time idled at the end of
	// the run: Σ_i (T_end − finish_i) / (p · (T_end − T_start)).
	TailIdleFrac float64 `json:"tail_idle_frac"`

	Stragglers uint64         `json:"stragglers"`
	Samples    []FlightSample `json:"samples"`
}

// flightWorker is the recorder's mutable per-worker state.
type flightWorker struct {
	chunks     uint64
	busy       float64
	ewma       float64
	lastFinish float64
	straggler  bool
}

// FlightRecorder is a bus subscriber that computes the paper's
// load-balance metrics live from completion events: per-worker busy
// time, max/mean busy, coefficient of variation, and tail-idle
// fraction, plus an EWMA straggler detector that publishes a
// StragglerDetected event when a worker's smoothed chunk latency
// exceeds k times the fleet median. It keeps a bounded ring of recent
// completion samples and is dumpable as JSON at any moment via
// Snapshot / WriteJSON (the /debug/flightrecorder endpoint) — and the
// finished run's final state stays readable via LastRun.
type FlightRecorder struct {
	bus  *Bus // for publishing straggler events; may be nil
	k    float64
	ring int

	mu         sync.Mutex
	meta       RunMeta
	runStart   float64
	workers    map[int]*flightWorker
	samples    []FlightSample
	next       int // ring write cursor
	filled     bool
	stragglers uint64
	lastRun    *FlightSnapshot
	scratch    []float64 // median scratch, reused
}

// NewFlightRecorder creates a recorder with the given sample-ring
// capacity (DefaultFlightRing when <= 0). bus, if non-nil, receives
// StragglerDetected events; the recorder itself ignores them on
// redelivery, so feeding a recorder from the bus it publishes to is
// safe.
func NewFlightRecorder(bus *Bus, ringSize int) *FlightRecorder {
	if ringSize <= 0 {
		ringSize = DefaultFlightRing
	}
	return &FlightRecorder{
		bus:     bus,
		k:       StragglerK,
		ring:    ringSize,
		workers: make(map[int]*flightWorker),
	}
}

// BeginRun resets the recorder for a new run.
func (f *FlightRecorder) BeginRun(m RunMeta) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.meta = m
	f.runStart = 0
	f.workers = make(map[int]*flightWorker)
	f.samples = nil
	f.next = 0
	f.filled = false
	f.stragglers = 0
}

// OnEvent consumes completion events; everything else is cheap to
// skip. Called from the bus's single drainer goroutine.
func (f *FlightRecorder) OnEvent(e Event) {
	switch e.Kind {
	case RunStarted:
		f.mu.Lock()
		f.runStart = e.At
		f.mu.Unlock()
	case ChunkCompleted:
		f.observe(e)
	case RunFinished:
		f.mu.Lock()
		snap := f.snapshotLocked()
		f.lastRun = &snap
		f.mu.Unlock()
	}
}

// observe folds one completion into the per-worker state, appends it
// to the ring, and runs the straggler detector.
func (f *FlightRecorder) observe(e Event) {
	f.mu.Lock()
	w := f.workers[e.Worker]
	if w == nil {
		w = &flightWorker{ewma: e.Seconds}
		f.workers[e.Worker] = w
	}
	w.chunks++
	w.busy += e.Seconds
	w.ewma = flightEWMAAlpha*e.Seconds + (1-flightEWMAAlpha)*w.ewma
	if e.At > w.lastFinish {
		w.lastFinish = e.At
	}

	if f.samples == nil {
		f.samples = make([]FlightSample, f.ring)
	}
	f.samples[f.next] = FlightSample{At: e.At, Worker: e.Worker, Seconds: e.Seconds, EWMA: w.ewma}
	f.next++
	if f.next == len(f.samples) {
		f.next = 0
		f.filled = true
	}

	// Straggler detection against the fleet median EWMA. The flag is
	// edge-triggered: one event when the worker crosses the threshold,
	// re-armed once it drops back under.
	var fire bool
	if len(f.workers) >= 2 {
		f.scratch = f.scratch[:0]
		for _, o := range f.workers {
			f.scratch = append(f.scratch, o.ewma)
		}
		sort.Float64s(f.scratch)
		median := f.scratch[len(f.scratch)/2]
		if median > 0 && w.ewma > f.k*median {
			if !w.straggler {
				w.straggler = true
				f.stragglers++
				fire = true
			}
		} else {
			w.straggler = false
		}
	}
	ewma := w.ewma
	f.mu.Unlock()

	if fire {
		f.bus.Publish(Event{
			Kind: StragglerDetected, Worker: e.Worker, Shard: e.Shard,
			Job: e.Job, Tenant: e.Tenant, At: e.At, Seconds: ewma,
		})
	}
}

// Close releases nothing; the recorder keeps its last state readable.
func (f *FlightRecorder) Close() error { return nil }

// Stragglers reports how many straggler detections fired this run.
func (f *FlightRecorder) Stragglers() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stragglers
}

// Snapshot dumps the recorder's current state.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{Workers: []FlightWorker{}, Samples: []FlightSample{}}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

// LastRun returns the snapshot captured when the run finished, or nil
// if no run has finished since the recorder (re)started.
func (f *FlightRecorder) LastRun() *FlightSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lastRun == nil {
		return nil
	}
	snap := *f.lastRun
	return &snap
}

// snapshotLocked builds the dump; callers hold f.mu.
func (f *FlightRecorder) snapshotLocked() FlightSnapshot {
	snap := FlightSnapshot{
		Scheme:     f.meta.Scheme,
		Workload:   f.meta.Workload,
		Backend:    f.meta.Backend,
		Workers:    make([]FlightWorker, 0, len(f.workers)),
		Samples:    make([]FlightSample, 0, f.ringLenLocked()),
		Stragglers: f.stragglers,
	}
	var tEnd float64
	for id, w := range f.workers {
		snap.Workers = append(snap.Workers, FlightWorker{
			Worker: id, Chunks: w.chunks, Busy: w.busy,
			EWMA: w.ewma, LastFinish: w.lastFinish, Straggler: w.straggler,
		})
		if w.lastFinish > tEnd {
			tEnd = w.lastFinish
		}
	}
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].Worker < snap.Workers[j].Worker })

	p := len(snap.Workers)
	if p > 0 {
		var sum, max, idle float64
		for _, w := range snap.Workers {
			sum += w.Busy
			if w.Busy > max {
				max = w.Busy
			}
			idle += tEnd - w.LastFinish
		}
		mean := sum / float64(p)
		snap.MaxBusy, snap.MeanBusy = max, mean
		if mean > 0 {
			var ss float64
			for _, w := range snap.Workers {
				d := w.Busy - mean
				ss += d * d
			}
			snap.CV = math.Sqrt(ss/float64(p)) / mean
		}
		if span := tEnd - f.runStart; span > 0 {
			snap.TailIdleFrac = idle / (float64(p) * span)
		}
	}

	// Ring in chronological order: oldest first.
	if f.filled {
		snap.Samples = append(snap.Samples, f.samples[f.next:]...)
	}
	snap.Samples = append(snap.Samples, f.samples[:f.next]...)
	return snap
}

// ringLenLocked is the number of valid samples; callers hold f.mu.
func (f *FlightRecorder) ringLenLocked() int {
	if f.filled {
		return len(f.samples)
	}
	return f.next
}

// WriteJSON dumps the current snapshot as indented JSON.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}
