package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// PerfettoWriter is a bus Subscriber that streams events as Chrome
// trace-event JSON (the "JSON Array Format" with a traceEvents
// wrapper), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Layout: each run is one "process" (pid = run ordinal), each worker
// one "thread" (tid = worker id), so every worker gets its own track.
// Scheduler tenants get their own processes (pid = tenantPidBase +
// tenant id) named from JobMeta, so a multi-tenant trace groups each
// tenant's chunks under a readable track. ChunkCompleted events become
// complete ("X") slices on the worker's track; steals, timeouts and
// stage advances become instant ("i") events; span-tagged grants and
// completions become flow ("s"/"f") events keyed by the span id, so
// one chunk draws one arrow from grant to completion even across
// processes. Timestamps are microseconds on the backend clock (bus
// epoch for real backends, virtual time for sim).
//
// The writer never seeks: JSON is emitted strictly append-only so it
// can stream to a pipe, and Close finishes the document.
type PerfettoWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	run     int             // current pid; 0 until the first BeginRun
	first   bool            // no event emitted yet (controls comma placement)
	tenants map[int]bool    // tenant process tracks already named
	threads map[[2]int]bool // (pid, tid) thread tracks already named
	err     error
}

// tenantPidBase offsets tenant process ids away from run ordinals.
const tenantPidBase = 1000

// NewPerfettoWriter starts a trace-event document on w. The caller
// must Close (directly or via Bus.Close) to finish the JSON.
func NewPerfettoWriter(w io.Writer) *PerfettoWriter {
	p := &PerfettoWriter{
		bw:      bufio.NewWriter(w),
		first:   true,
		tenants: make(map[int]bool),
		threads: make(map[[2]int]bool),
	}
	p.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	return p
}

// printf appends to the stream, latching the first error.
func (p *PerfettoWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.bw, format, args...)
}

// emit writes one raw trace-event object, handling the comma between
// array elements.
func (p *PerfettoWriter) emit(body string) {
	if p.first {
		p.first = false
	} else {
		p.printf(",")
	}
	p.printf("\n%s", body)
}

// BeginRun implements Subscriber: it opens a new "process" for the run
// and names its worker tracks.
func (p *PerfettoWriter) BeginRun(m RunMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.run++
	name := fmt.Sprintf("%s on %s (%s)", m.Scheme, m.Workload, m.Backend)
	p.emit(fmt.Sprintf(
		`{"name":"process_name","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":%s}}`,
		p.run, strconv.Quote(name)))
	for w := 0; w < m.Workers; w++ {
		p.threads[[2]int{p.run, w}] = true
		p.emit(fmt.Sprintf(
			`{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":"PE %d"}}`,
			p.run, w, w))
	}
}

// BeginJob implements JobObserver: the first job of each tenant names
// the tenant's process track with the tenant metadata, so service-run
// traces group chunks per tenant under a readable heading.
func (p *PerfettoWriter) BeginJob(m JobMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m.Tenant == 0 || p.tenants[m.Tenant] {
		return
	}
	p.tenants[m.Tenant] = true
	name := m.TenantName
	if name == "" {
		name = fmt.Sprintf("tenant-%d", m.Tenant)
	}
	p.emit(fmt.Sprintf(
		`{"name":"process_name","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":%s}}`,
		tenantPidBase+m.Tenant, strconv.Quote(fmt.Sprintf("tenant %s", name))))
}

// pidFor places an event: tenant-tagged events land in the tenant's
// process, everything else in the current run's. Callers hold p.mu.
func (p *PerfettoWriter) pidFor(e Event) int {
	if e.Tenant != 0 {
		return tenantPidBase + e.Tenant
	}
	return p.run
}

// nameThread lazily names a worker track the first time an event lands
// on it (tenant processes have no BeginRun to pre-name their workers).
// Callers hold p.mu.
func (p *PerfettoWriter) nameThread(pid, tid int) {
	k := [2]int{pid, tid}
	if p.threads[k] {
		return
	}
	p.threads[k] = true
	p.emit(fmt.Sprintf(
		`{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":"PE %d"}}`,
		pid, tid, tid))
}

// OnEvent implements Subscriber.
func (p *PerfettoWriter) OnEvent(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.run == 0 {
		p.run = 1 // events without a BeginRun still land in a process
	}
	us := e.At * 1e6
	switch e.Kind {
	case ChunkGranted, ChunkPrefetched:
		// Span-tagged grants open a flow: the arrow's tail sits on the
		// granted worker's track at the grant instant.
		if e.Span != 0 {
			pid := p.pidFor(e)
			p.nameThread(pid, e.Worker)
			p.emit(fmt.Sprintf(
				`{"name":"chunk-flow","cat":"flow","ph":"s","id":%d,"ts":%s,"pid":%d,"tid":%d,"args":{"start":%d,"size":%d,"job":%d}}`,
				e.Span, jsonNum(us), pid, e.Worker, e.Start, e.Size, e.Job))
		}
	case ChunkCompleted:
		// One complete slice per computed chunk: [At-Seconds, At].
		pid := p.pidFor(e)
		p.nameThread(pid, e.Worker)
		dur := e.Seconds * 1e6
		p.emit(fmt.Sprintf(
			`{"name":"chunk","cat":"chunk","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"start":%d,"size":%d,"shard":%d,"acp":%d,"job":%d}}`,
			jsonNum(us-dur), jsonNum(dur), pid, e.Worker, e.Start, e.Size, e.Shard, e.ACP, e.Job))
		if e.Span != 0 {
			// Close the chunk's flow on the completion slice.
			p.emit(fmt.Sprintf(
				`{"name":"chunk-flow","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
				e.Span, jsonNum(us), pid, e.Worker))
		}
	case ShardStealDone:
		p.emit(fmt.Sprintf(
			`{"name":"steal","cat":"steal","ph":"i","s":"p","ts":%s,"pid":%d,"tid":%d,"args":{"thief":%d,"victim":%d,"start":%d,"size":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Worker, e.Shard, e.Start, e.Size))
	case WorkerTimedOut:
		p.emit(fmt.Sprintf(
			`{"name":"timeout","cat":"fault","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"shard":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Shard))
	case WorkerRejected:
		p.emit(fmt.Sprintf(
			`{"name":"rejected","cat":"fault","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"shard":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Shard))
	case StageAdvanced:
		p.emit(fmt.Sprintf(
			`{"name":"stage","cat":"stage","ph":"i","s":"p","ts":%s,"pid":%d,"tid":%d,"args":{"shard":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Shard))
	}
}

// jsonNum formats a float as a JSON number: fixed-point (trace-event
// ts/dur are microseconds; sub-µs precision is kept to 3 decimals) and
// never NaN/Inf/exponent notation, which some trace viewers reject.
func jsonNum(v float64) string {
	if v != v || v > 1e18 || v < -1e18 {
		return "0"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// Close implements Subscriber: it terminates the JSON document and
// flushes, returning the first error seen while streaming.
func (p *PerfettoWriter) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.printf("\n]}\n")
	if err := p.bw.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}
