package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// PerfettoWriter is a bus Subscriber that streams events as Chrome
// trace-event JSON (the "JSON Array Format" with a traceEvents
// wrapper), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Layout: each run is one "process" (pid = run ordinal), each worker
// one "thread" (tid = worker id), so every worker gets its own track.
// ChunkCompleted events become complete ("X") slices on the worker's
// track; steals, timeouts and stage advances become instant ("i")
// events. Timestamps are microseconds on the backend clock (bus epoch
// for real backends, virtual time for sim).
//
// The writer never seeks: JSON is emitted strictly append-only so it
// can stream to a pipe, and Close finishes the document.
type PerfettoWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	run   int  // current pid; 0 until the first BeginRun
	first bool // no event emitted yet (controls comma placement)
	err   error
}

// NewPerfettoWriter starts a trace-event document on w. The caller
// must Close (directly or via Bus.Close) to finish the JSON.
func NewPerfettoWriter(w io.Writer) *PerfettoWriter {
	p := &PerfettoWriter{bw: bufio.NewWriter(w), first: true}
	p.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	return p
}

// printf appends to the stream, latching the first error.
func (p *PerfettoWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.bw, format, args...)
}

// emit writes one raw trace-event object, handling the comma between
// array elements.
func (p *PerfettoWriter) emit(body string) {
	if p.first {
		p.first = false
	} else {
		p.printf(",")
	}
	p.printf("\n%s", body)
}

// BeginRun implements Subscriber: it opens a new "process" for the run
// and names its worker tracks.
func (p *PerfettoWriter) BeginRun(m RunMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.run++
	name := fmt.Sprintf("%s on %s (%s)", m.Scheme, m.Workload, m.Backend)
	p.emit(fmt.Sprintf(
		`{"name":"process_name","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":%s}}`,
		p.run, strconv.Quote(name)))
	for w := 0; w < m.Workers; w++ {
		p.emit(fmt.Sprintf(
			`{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":"PE %d"}}`,
			p.run, w, w))
	}
}

// OnEvent implements Subscriber.
func (p *PerfettoWriter) OnEvent(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.run == 0 {
		p.run = 1 // events without a BeginRun still land in a process
	}
	us := e.At * 1e6
	switch e.Kind {
	case ChunkCompleted:
		// One complete slice per computed chunk: [At-Seconds, At].
		dur := e.Seconds * 1e6
		p.emit(fmt.Sprintf(
			`{"name":"chunk","cat":"chunk","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"start":%d,"size":%d,"shard":%d,"acp":%d}}`,
			jsonNum(us-dur), jsonNum(dur), p.run, e.Worker, e.Start, e.Size, e.Shard, e.ACP))
	case ShardStealDone:
		p.emit(fmt.Sprintf(
			`{"name":"steal","cat":"steal","ph":"i","s":"p","ts":%s,"pid":%d,"tid":%d,"args":{"thief":%d,"victim":%d,"start":%d,"size":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Worker, e.Shard, e.Start, e.Size))
	case WorkerTimedOut:
		p.emit(fmt.Sprintf(
			`{"name":"timeout","cat":"fault","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"shard":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Shard))
	case WorkerRejected:
		p.emit(fmt.Sprintf(
			`{"name":"rejected","cat":"fault","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"shard":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Shard))
	case StageAdvanced:
		p.emit(fmt.Sprintf(
			`{"name":"stage","cat":"stage","ph":"i","s":"p","ts":%s,"pid":%d,"tid":%d,"args":{"shard":%d}}`,
			jsonNum(us), p.run, e.Worker, e.Shard))
	}
}

// jsonNum formats a float as a JSON number: fixed-point (trace-event
// ts/dur are microseconds; sub-µs precision is kept to 3 decimals) and
// never NaN/Inf/exponent notation, which some trace viewers reject.
func jsonNum(v float64) string {
	if v != v || v > 1e18 || v < -1e18 {
		return "0"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// Close implements Subscriber: it terminates the JSON document and
// flushes, returning the first error seen while streaming.
func (p *PerfettoWriter) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.printf("\n]}\n")
	if err := p.bw.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}
