package telemetry

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// shutdownGrace bounds how long Close waits for in-flight scrapes
// before hard-closing their connections.
const shutdownGrace = 2 * time.Second

// debugServer is the opt-in HTTP endpoint: Prometheus text at
// /metrics, expvar JSON at /debug/vars, and the stock pprof handlers
// under /debug/pprof/. It uses its own mux, never http.DefaultServeMux,
// so enabling telemetry cannot leak handlers into an embedding
// application.
type debugServer struct {
	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup
}

// newDebugServer listens on addr (":0" picks a free port) and serves
// until Close. flight, if non-nil, is dumped as JSON at
// /debug/flightrecorder.
func newDebugServer(addr string, agg *Aggregator, flight *FlightRecorder) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", agg)
	if flight != nil {
		mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = flight.WriteJSON(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &debugServer{
		srv: &http.Server{Handler: mux},
		ln:  ln,
	}
	publishExpvar(agg)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		// Serve returns ErrServerClosed once Close shuts it down.
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the listener's address, useful when the server was
// started on ":0".
func (d *debugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down: graceful for shutdownGrace so an
// in-flight scrape can finish, then hard. The serve goroutine is
// joined before returning, per the gojoin contract.
func (d *debugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if err != nil {
		err = d.srv.Close()
	}
	d.wg.Wait()
	publishExpvar(nil)
	return err
}
