package telemetry

import "loopsched/internal/trace"

// traceSubscriber rebuilds a trace.Trace from bus events, so the
// post-hoc consumers (Gantt, CoverageError, WriteCSV, the experiments
// suite) keep working unchanged when a backend routes its trace
// through the bus instead of filling it directly: every ChunkCompleted
// event becomes exactly one trace.Event.
type traceSubscriber struct {
	tr *trace.Trace
}

// TraceSubscriber returns a Subscriber that records ChunkCompleted
// events into tr. BeginRun stamps the trace's Scheme/Workload/Workers.
func TraceSubscriber(tr *trace.Trace) Subscriber {
	return &traceSubscriber{tr: tr}
}

func (t *traceSubscriber) BeginRun(m RunMeta) {
	t.tr.Scheme = m.Scheme
	t.tr.Workload = m.Workload
	t.tr.Workers = m.Workers
}

func (t *traceSubscriber) OnEvent(e Event) {
	if e.Kind != ChunkCompleted {
		return
	}
	t.tr.Add(trace.Event{
		Worker: e.Worker,
		Start:  e.Start,
		Size:   e.Size,
		Begin:  e.At - e.Seconds,
		End:    e.At,
		ACP:    e.ACP,
	})
}

func (t *traceSubscriber) Close() error { return nil }
