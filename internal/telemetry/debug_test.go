package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a URL from the debug server, returning the body.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	tl, err := New(Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tl.Close()
	bus := tl.Bus()
	bus.BeginRun(RunMeta{Scheme: "tss", Workload: "flat", Backend: "local", Workers: 1, Iterations: 10})
	bus.Publish(Event{Kind: ChunkGranted, Worker: 0, Size: 10, Seconds: 1e-4})
	bus.Publish(Event{Kind: ChunkCompleted, Worker: 0, Size: 10, Seconds: 0.01, At: 0.02})
	bus.Flush()

	base := "http://" + tl.DebugAddr()

	metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`loopsched_run_info{scheme="tss"`,
		`loopsched_chunks_granted_total{shard="0",worker="0"} 1`,
		`loopsched_iterations_granted_total{shard="0",worker="0"} 10`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n--- got ---\n%s", want, metrics)
		}
	}

	vars := get(t, base+"/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, vars)
	}
	raw, ok := decoded["loopsched"]
	if !ok {
		t.Fatalf("/debug/vars has no loopsched var:\n%s", vars)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("loopsched expvar is not a Snapshot: %v", err)
	}
	if snap.ChunksGranted != 1 || snap.Iterations != 10 {
		t.Errorf("expvar snapshot = %+v, want 1 chunk / 10 iterations", snap)
	}

	if idx := get(t, base+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", idx)
	}
}

func TestDebugServerCloseStopsListening(t *testing.T) {
	tl, err := New(Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr := tl.DebugAddr()
	if err := tl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
}

func TestNoServerWithoutDebugAddr(t *testing.T) {
	tl, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tl.Close()
	if tl.DebugAddr() != "" {
		t.Errorf("DebugAddr = %q, want empty when no server requested", tl.DebugAddr())
	}
}

func TestSessionPerfettoEndToEnd(t *testing.T) {
	var sb strings.Builder
	tl, err := New(Options{Perfetto: &sb})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bus := tl.Bus()
	bus.BeginRun(RunMeta{Scheme: "fss", Workload: "flat", Backend: "sim", Workers: 2})
	for i := 0; i < 5; i++ {
		bus.Publish(Event{Kind: ChunkCompleted, Worker: i % 2, Start: i * 10, Size: 10,
			At: float64(i+1) * 0.1, Seconds: 0.05})
	}
	if err := tl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events := decodeTrace(t, []byte(sb.String()))
	slices := 0
	for _, e := range events {
		if e["ph"] == "X" {
			slices++
		}
	}
	if slices != 5 {
		t.Errorf("got %d slices, want 5", slices)
	}
}
