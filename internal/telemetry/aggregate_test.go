package telemetry

import (
	"strings"
	"testing"
)

// feed pushes events straight into the aggregator, bypassing the bus:
// OnEvent is what the drainer would call anyway.
func feed(a *Aggregator, events ...Event) {
	for _, e := range events {
		a.OnEvent(e)
	}
}

func TestAggregatorCounters(t *testing.T) {
	a := NewAggregator(func() uint64 { return 7 })
	a.BeginRun(RunMeta{Scheme: "fss", Workload: "mandelbrot", Backend: "rpc", Workers: 2, Iterations: 100})
	feed(a,
		Event{Kind: WorkerJoined, Worker: 0, ACP: 100},
		Event{Kind: WorkerJoined, Worker: 1, ACP: 50},
		Event{Kind: ChunkGranted, Worker: 0, Start: 0, Size: 60, ACP: 100, Seconds: 0.002},
		Event{Kind: ChunkPrefetched, Worker: 1, Start: 60, Size: 40, ACP: 50, Seconds: 0.001},
		Event{Kind: PrefetchMissed, Worker: 1},
		Event{Kind: ChunkCompleted, Worker: 0, Start: 0, Size: 60, Seconds: 0.5, At: 1.0},
		Event{Kind: ChunkCompleted, Worker: 1, Start: 60, Size: 40, Seconds: 0.25, At: 1.0},
		Event{Kind: ShardStealDone, Worker: 1, Shard: 0, Start: 90, Size: 10},
		Event{Kind: WorkerTimedOut, Worker: 1},
		Event{Kind: StageAdvanced},
	)

	s := a.Snapshot()
	if s.ChunksGranted != 2 {
		t.Errorf("ChunksGranted = %d, want 2", s.ChunksGranted)
	}
	if s.Iterations != 100 {
		t.Errorf("Iterations = %d, want 100", s.Iterations)
	}
	if s.PrefetchHits != 1 || s.PrefetchMisses != 1 || s.PrefetchRatio != 0.5 {
		t.Errorf("prefetch hits=%d misses=%d ratio=%g, want 1/1/0.5",
			s.PrefetchHits, s.PrefetchMisses, s.PrefetchRatio)
	}
	if s.Steals != 1 || s.Timeouts != 1 || s.Stages != 1 {
		t.Errorf("steals=%d timeouts=%d stages=%d, want 1 each", s.Steals, s.Timeouts, s.Stages)
	}
	if s.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7 (from droppedFn)", s.Dropped)
	}
	w0 := s.Workers["0/0"]
	if w0.Chunks != 1 || w0.Iterations != 60 || w0.CompSec != 0.5 || w0.WaitSec != 0.002 {
		t.Errorf("worker 0 stats = %+v", w0)
	}
	if s.LatencyCount != 2 {
		t.Errorf("LatencyCount = %d, want 2", s.LatencyCount)
	}
	if s.Meta.Scheme != "fss" || s.Runs != 1 {
		t.Errorf("meta=%+v runs=%d", s.Meta, s.Runs)
	}
}

func TestWritePromFormat(t *testing.T) {
	a := NewAggregator(func() uint64 { return 3 })
	a.BeginRun(RunMeta{Scheme: "gss", Workload: "flat", Backend: "local", Workers: 1})
	feed(a,
		Event{Kind: ChunkGranted, Worker: 0, Size: 10, Seconds: 5e-5},
		Event{Kind: ChunkCompleted, Worker: 0, Size: 10, Seconds: 0.125, At: 0.25},
	)
	var sb strings.Builder
	if err := a.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`loopsched_run_info{scheme="gss",workload="flat",backend="local"} 1`,
		`loopsched_runs_total 1`,
		`loopsched_events_total{kind="chunk_granted"} 1`,
		`loopsched_chunks_granted_total{shard="0",worker="0"} 1`,
		`loopsched_iterations_granted_total{shard="0",worker="0"} 10`,
		`loopsched_worker_comp_seconds_total{shard="0",worker="0"} 0.125`,
		`loopsched_scheduling_latency_seconds_bucket{le="0.0001"} 1`,
		`loopsched_scheduling_latency_seconds_bucket{le="+Inf"} 1`,
		`loopsched_scheduling_latency_seconds_count 1`,
		`loopsched_dropped_events_total 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	a := NewAggregator(nil)
	feed(a,
		Event{Kind: ChunkGranted, Seconds: 5e-7}, // le 1e-6
		Event{Kind: ChunkGranted, Seconds: 5e-3}, // le 1e-2
		Event{Kind: ChunkGranted, Seconds: 50},   // +Inf
	)
	var sb strings.Builder
	if err := a.WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`loopsched_scheduling_latency_seconds_bucket{le="1e-06"} 1`,
		`loopsched_scheduling_latency_seconds_bucket{le="0.01"} 2`,
		`loopsched_scheduling_latency_seconds_bucket{le="10"} 2`,
		`loopsched_scheduling_latency_seconds_bucket{le="+Inf"} 3`,
		`loopsched_scheduling_latency_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q\n--- got ---\n%s", want, out)
		}
	}
}
