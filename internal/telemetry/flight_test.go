package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// feed pushes a run straight into a recorder, bypassing the bus, the
// way the drainer goroutine would.
func feedFlight(f *FlightRecorder, events ...Event) {
	for _, e := range events {
		f.OnEvent(e)
	}
}

func TestFlightRecorderLoadBalanceMetrics(t *testing.T) {
	f := NewFlightRecorder(nil, 0)
	f.BeginRun(RunMeta{Scheme: "tss", Workload: "flat", Backend: "local", Workers: 2})
	feedFlight(f,
		Event{Kind: RunStarted, At: 0},
		Event{Kind: ChunkCompleted, Worker: 0, Seconds: 1.0, At: 1.0},
		Event{Kind: ChunkCompleted, Worker: 1, Seconds: 1.0, At: 1.0},
		Event{Kind: ChunkCompleted, Worker: 0, Seconds: 2.0, At: 3.0},
		Event{Kind: ChunkCompleted, Worker: 1, Seconds: 1.0, At: 2.0},
	)
	snap := f.Snapshot()
	if snap.Scheme != "tss" || snap.Backend != "local" {
		t.Errorf("snapshot meta = %q/%q, want tss/local", snap.Scheme, snap.Backend)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("got %d worker rows, want 2", len(snap.Workers))
	}
	// Busy: worker 0 = 3s, worker 1 = 2s. Mean 2.5, max 3.
	if snap.MaxBusy != 3.0 || snap.MeanBusy != 2.5 {
		t.Errorf("max/mean busy = %g/%g, want 3/2.5", snap.MaxBusy, snap.MeanBusy)
	}
	// CV = sqrt(((3-2.5)^2 + (2-2.5)^2)/2) / 2.5 = 0.5/2.5 = 0.2.
	if math.Abs(snap.CV-0.2) > 1e-12 {
		t.Errorf("busy CV = %g, want 0.2", snap.CV)
	}
	// T_end = 3 (worker 0's last finish); worker 1 idled 3-2 = 1s of
	// the 2 workers' 3s span each: 1 / (2*3).
	if want := 1.0 / 6.0; math.Abs(snap.TailIdleFrac-want) > 1e-12 {
		t.Errorf("tail idle frac = %g, want %g", snap.TailIdleFrac, want)
	}
	if len(snap.Samples) != 4 {
		t.Errorf("ring kept %d samples, want 4", len(snap.Samples))
	}
}

func TestFlightRecorderRingWrapsOldestFirst(t *testing.T) {
	f := NewFlightRecorder(nil, 3)
	f.BeginRun(RunMeta{Workers: 1})
	for i := 1; i <= 5; i++ {
		feedFlight(f, Event{Kind: ChunkCompleted, Worker: 0, Seconds: 0.1, At: float64(i)})
	}
	snap := f.Snapshot()
	if len(snap.Samples) != 3 {
		t.Fatalf("ring kept %d samples, want 3", len(snap.Samples))
	}
	for i, want := range []float64{3, 4, 5} {
		if snap.Samples[i].At != want {
			t.Errorf("sample %d at %g, want %g (oldest first)", i, snap.Samples[i].At, want)
		}
	}
	if w := snap.Workers[0]; w.Chunks != 5 {
		t.Errorf("worker chunks = %d, want 5 (ring eviction must not lose counts)", w.Chunks)
	}
}

func TestFlightRecorderStragglerDetection(t *testing.T) {
	bus := NewBus(0)
	defer bus.Close()
	col := &collector{}
	bus.Subscribe(col)
	f := NewFlightRecorder(bus, 0)
	f.BeginRun(RunMeta{Workers: 3})

	// Two fast workers anchor the fleet median; worker 2's first chunk
	// seeds its EWMA at 100x the median and must fire exactly once —
	// the detector is edge-triggered, so a second slow chunk stays
	// silent while the flag is up.
	feedFlight(f,
		Event{Kind: ChunkCompleted, Worker: 0, Seconds: 0.001, At: 0.1},
		Event{Kind: ChunkCompleted, Worker: 1, Seconds: 0.001, At: 0.1},
		Event{Kind: ChunkCompleted, Worker: 2, Seconds: 0.1, At: 0.2},
		Event{Kind: ChunkCompleted, Worker: 2, Seconds: 0.1, At: 0.3},
	)
	bus.Flush()
	if got := f.Stragglers(); got != 1 {
		t.Errorf("stragglers = %d, want 1 (edge-triggered)", got)
	}
	var fired []Event
	for _, e := range col.events {
		if e.Kind == StragglerDetected {
			fired = append(fired, e)
		}
	}
	if len(fired) != 1 || fired[0].Worker != 2 {
		t.Fatalf("straggler events = %+v, want one for worker 2", fired)
	}
	if fired[0].Seconds <= StragglerK*0.001 {
		t.Errorf("straggler event carries EWMA %g, expected well above threshold", fired[0].Seconds)
	}

	snap := f.Snapshot()
	if snap.Stragglers != 1 || !snap.Workers[2].Straggler {
		t.Errorf("snapshot stragglers=%d worker2.straggler=%v, want 1/true",
			snap.Stragglers, snap.Workers[2].Straggler)
	}
}

func TestFlightRecorderWriteJSONRoundTrips(t *testing.T) {
	f := NewFlightRecorder(nil, 0)
	f.BeginRun(RunMeta{Scheme: "gss", Backend: "rpc", Workers: 2})
	feedFlight(f,
		Event{Kind: RunStarted, At: 0},
		Event{Kind: ChunkCompleted, Worker: 0, Seconds: 0.5, At: 1},
		Event{Kind: ChunkCompleted, Worker: 1, Seconds: 0.25, At: 1},
	)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("dump is not a FlightSnapshot: %v\n%s", err, buf.String())
	}
	if snap.Scheme != "gss" || len(snap.Workers) != 2 || len(snap.Samples) != 2 {
		t.Errorf("decoded dump = %+v, want gss run with 2 workers / 2 samples", snap)
	}
}

func TestFlightRecorderLastRunSurvivesReset(t *testing.T) {
	f := NewFlightRecorder(nil, 0)
	f.BeginRun(RunMeta{Scheme: "tss", Workers: 1})
	feedFlight(f,
		Event{Kind: RunStarted, At: 0},
		Event{Kind: ChunkCompleted, Worker: 0, Seconds: 0.5, At: 1},
		Event{Kind: RunFinished, At: 1},
	)
	f.BeginRun(RunMeta{Scheme: "gss", Workers: 1}) // next run resets live state
	if live := f.Snapshot(); len(live.Workers) != 0 {
		t.Errorf("live snapshot has %d workers after reset, want 0", len(live.Workers))
	}
	last := f.LastRun()
	if last == nil || last.Scheme != "tss" || len(last.Workers) != 1 {
		t.Fatalf("LastRun = %+v, want the finished tss run", last)
	}
}

func TestFlightRecorderDebugEndpoint(t *testing.T) {
	tl, err := New(Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tl.Close()
	bus := tl.Bus()
	bus.BeginRun(RunMeta{Scheme: "tss", Workload: "flat", Backend: "local", Workers: 2})
	bus.Publish(Event{Kind: RunStarted, At: 0})
	bus.Publish(Event{Kind: ChunkCompleted, Worker: 0, Seconds: 0.5, At: 1})
	bus.Publish(Event{Kind: ChunkCompleted, Worker: 1, Seconds: 0.25, At: 1})
	bus.Flush()

	body := get(t, "http://"+tl.DebugAddr()+"/debug/flightrecorder")
	var snap FlightSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/flightrecorder is not a FlightSnapshot: %v\n%s", err, body)
	}
	if snap.Scheme != "tss" || len(snap.Workers) != 2 || snap.MaxBusy != 0.5 {
		t.Errorf("endpoint snapshot = %+v, want live tss run with 2 workers", snap)
	}
}
