package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"loopsched/internal/telemetry/hist"
)

// latencyBuckets are the upper bounds (seconds) of the scheduling
// latency histogram, exponential from 1 µs to 10 s. A final implicit
// +Inf bucket catches the rest, per Prometheus convention.
var latencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// workerKey identifies a worker within a (possibly hierarchical) run.
type workerKey struct {
	Shard, Worker int
}

// workerStats accumulates per-worker counters.
type workerStats struct {
	Chunks     uint64  // chunks granted to the worker (direct + prefetched)
	Iterations uint64  // iterations granted
	Completed  uint64  // chunks the worker reported computed
	CompSec    float64 // computation seconds (sum of ChunkCompleted.Seconds)
	WaitSec    float64 // scheduling-latency seconds (sum of grant latencies)
	ACP        int     // last reported available computing power, percent
}

// wireStats accumulates one direction of binary-protocol frame
// traffic (sent or received).
type wireStats struct {
	Frames   uint64  // frames on the wire
	Bytes    uint64  // bytes on the wire, length prefix included
	Items    uint64  // batch items carried (results or grants)
	CodecSec float64 // encode (sent) / decode (received) seconds
}

// TenantStats accumulates one scheduler tenant's share of the fleet.
// Chunks/Iterations are attributed from grant events carrying a
// non-zero Tenant tag, so they reconcile exactly with the per-job
// reports the scheduler returns.
type TenantStats struct {
	Name         string  // from JobMeta; "tenant-<id>" until announced
	Jobs         uint64  // jobs announced via BeginJob
	Finished     uint64  // jobs that completed every iteration
	Failed       uint64  // jobs that failed terminally
	Cancelled    uint64  // jobs cancelled
	Requeues     uint64  // failed attempts sent back for retry
	Chunks       uint64  // chunks granted to the tenant's jobs
	Iterations   uint64  // iterations granted to the tenant's jobs
	CompSec      float64 // computation seconds across the tenant's chunks
	QueueWaitSec float64 // admission-queue seconds across the tenant's jobs

	// Chunk-compute latency percentiles and the per-worker busy-time
	// imbalance CV, derived from the tenant's latency histogram at
	// snapshot time (zero until the tenant completes a chunk).
	CompP50 float64
	CompP95 float64
	CompP99 float64
	BusyCV  float64
}

// LatencyHists is the per-backend set of chunk-latency distributions
// the aggregator maintains: scheduling queue-wait (request to grant),
// computation, grant-to-complete, and the inferred communication slack
// (grant-to-complete minus computation, clamped at zero).
type LatencyHists struct {
	QueueWait       hist.Snapshot
	Comp            hist.Snapshot
	Comm            hist.Snapshot
	GrantToComplete hist.Snapshot
	// LedgerFetch is the scheduling-ledger claim round trip (one
	// fetch-and-add): near zero on the in-process backends, one wire
	// round trip on rpc. Its Count is the backend's fetchadd total.
	LedgerFetch hist.Snapshot
}

// backendHists is the live (recording) form of LatencyHists.
type backendHists struct {
	queueWait hist.Hist
	comp      hist.Hist
	comm      hist.Hist
	g2c       hist.Hist
	ledger    hist.Hist
}

func (b *backendHists) snapshot() LatencyHists {
	return LatencyHists{
		QueueWait:       b.queueWait.Snapshot(),
		Comp:            b.comp.Snapshot(),
		Comm:            b.comm.Snapshot(),
		GrantToComplete: b.g2c.Snapshot(),
		LedgerFetch:     b.ledger.Snapshot(),
	}
}

// pendKey identifies an in-flight chunk for grant-to-complete pairing:
// a job's chunks partition its iteration space, so (job, start) is
// unique among outstanding chunks.
type pendKey struct{ Job, Start int }

// maxPending bounds the grant-to-complete pairing map so a run that
// loses completions (worker failures) cannot grow it without bound.
const maxPending = 1 << 16

// Aggregator is a bus Subscriber that maintains the counters behind
// the /metrics and /debug/vars endpoints. All methods are safe for
// concurrent use: OnEvent runs on the bus drainer while WriteProm runs
// on HTTP handler goroutines.
type Aggregator struct {
	droppedFn func() uint64 // reads the bus's dropped counter at render time

	mu         sync.Mutex
	meta       RunMeta
	runs       uint64
	kinds      [kindCount]uint64
	workers    map[workerKey]*workerStats
	tenants    map[int]*TenantStats
	queueDepth int // last JobQueueDepth gauge sample
	jobWaitSum float64
	jobWaitN   uint64
	wire       [2]wireStats // [0] sent, [1] received
	latCount   [9]uint64    // len(latencyBuckets)+1, last is +Inf
	latSum     float64
	latN       uint64

	hists      map[string]*backendHists // per-backend latency hists, keyed by RunMeta.Backend
	pending    map[pendKey]float64      // grant instant per in-flight chunk (g2c pairing)
	tenantComp map[int]*hist.Hist       // per-tenant chunk-compute latency
	tenantBusy map[int]map[int]float64  // tenant -> worker -> busy seconds
}

// NewAggregator creates an empty aggregator. dropped, if non-nil, is
// read at render time to report the bus's dropped-event counter.
func NewAggregator(dropped func() uint64) *Aggregator {
	return &Aggregator{
		droppedFn:  dropped,
		workers:    make(map[workerKey]*workerStats),
		tenants:    make(map[int]*TenantStats),
		hists:      make(map[string]*backendHists),
		pending:    make(map[pendKey]float64),
		tenantComp: make(map[int]*hist.Hist),
		tenantBusy: make(map[int]map[int]float64),
	}
}

// BeginRun implements Subscriber.
func (a *Aggregator) BeginRun(m RunMeta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.meta = m
	a.runs++
}

// BeginJob implements JobObserver: it records the tenant's name and
// counts the job against its tenant.
func (a *Aggregator) BeginJob(m JobMeta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.tenant(m.Tenant)
	if m.TenantName != "" {
		t.Name = m.TenantName
	}
	t.Jobs++
}

// Close implements Subscriber. The aggregator keeps its totals after
// close so a debug endpoint can still be scraped post-run.
func (a *Aggregator) Close() error { return nil }

// OnEvent implements Subscriber.
func (a *Aggregator) OnEvent(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.Kind < kindCount {
		a.kinds[e.Kind]++
	}
	switch e.Kind {
	case ChunkGranted, ChunkPrefetched:
		w := a.worker(e)
		w.Chunks++
		w.Iterations += uint64(e.Size)
		w.WaitSec += e.Seconds
		a.observeLatency(e.Seconds)
		h := a.hist()
		h.queueWait.Record(e.Seconds)
		if len(a.pending) < maxPending {
			a.pending[pendKey{e.Job, e.Start}] = e.At
		}
		if e.Tenant != 0 {
			t := a.tenant(e.Tenant)
			t.Chunks++
			t.Iterations += uint64(e.Size)
		}
	case ChunkCompleted:
		w := a.worker(e)
		w.Completed++
		w.CompSec += e.Seconds
		h := a.hist()
		h.comp.Record(e.Seconds)
		k := pendKey{e.Job, e.Start}
		if grantAt, ok := a.pending[k]; ok {
			delete(a.pending, k)
			g2c := e.At - grantAt
			if g2c < 0 {
				g2c = 0
			}
			h.g2c.Record(g2c)
			comm := g2c - e.Seconds
			if comm < 0 {
				comm = 0
			}
			h.comm.Record(comm)
		}
		if e.Tenant != 0 {
			a.tenant(e.Tenant).CompSec += e.Seconds
			tc := a.tenantComp[e.Tenant]
			if tc == nil {
				tc = &hist.Hist{}
				a.tenantComp[e.Tenant] = tc
			}
			tc.Record(e.Seconds)
			busy := a.tenantBusy[e.Tenant]
			if busy == nil {
				busy = make(map[int]float64)
				a.tenantBusy[e.Tenant] = busy
			}
			busy[e.Worker] += e.Seconds
		}
	case LedgerFetch:
		a.hist().ledger.Record(e.Seconds)
	case WorkerJoined, ChunkRequested:
		a.worker(e)
	case JobAdmitted:
		a.jobWaitSum += e.Seconds
		a.jobWaitN++
		if e.Tenant != 0 {
			a.tenant(e.Tenant).QueueWaitSec += e.Seconds
		}
	case JobFinished:
		if e.Tenant != 0 {
			a.tenant(e.Tenant).Finished++
		}
	case JobFailed:
		if e.Tenant != 0 {
			a.tenant(e.Tenant).Failed++
		}
	case JobCancelled:
		if e.Tenant != 0 {
			a.tenant(e.Tenant).Cancelled++
		}
	case JobRequeued:
		if e.Tenant != 0 {
			a.tenant(e.Tenant).Requeues++
		}
	case JobQueueDepth:
		a.queueDepth = e.Size
	case WireFrameSent, WireFrameReceived:
		dir := 0
		if e.Kind == WireFrameReceived {
			dir = 1
		}
		ws := &a.wire[dir]
		ws.Frames++
		ws.Bytes += uint64(e.Size)
		ws.Items += uint64(e.Start)
		ws.CodecSec += e.Seconds
	}
}

// worker returns (creating if needed) the stats for the event's
// worker, refreshing its last-seen ACP. Callers hold a.mu.
func (a *Aggregator) worker(e Event) *workerStats {
	k := workerKey{Shard: e.Shard, Worker: e.Worker}
	w := a.workers[k]
	if w == nil {
		w = &workerStats{}
		a.workers[k] = w
	}
	if e.ACP > 0 {
		w.ACP = e.ACP
	}
	return w
}

// hist returns (creating if needed) the latency hists for the current
// run's backend. Callers hold a.mu.
func (a *Aggregator) hist() *backendHists {
	key := a.meta.Backend
	if key == "" {
		key = "unknown"
	}
	h := a.hists[key]
	if h == nil {
		h = &backendHists{}
		a.hists[key] = h
	}
	return h
}

// busyCV computes the coefficient of variation of a tenant's
// per-worker busy seconds. Callers hold a.mu.
func busyCV(busy map[int]float64) float64 {
	if len(busy) < 2 {
		return 0
	}
	var sum float64
	for _, b := range busy {
		sum += b
	}
	mean := sum / float64(len(busy))
	if mean <= 0 {
		return 0
	}
	var ss float64
	for _, b := range busy {
		d := b - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(busy))) / mean
}

// tenant returns (creating if needed) the stats for a tenant id.
// Callers hold a.mu.
func (a *Aggregator) tenant(id int) *TenantStats {
	t := a.tenants[id]
	if t == nil {
		t = &TenantStats{Name: fmt.Sprintf("tenant-%d", id)}
		a.tenants[id] = t
	}
	return t
}

// observeLatency records one scheduling latency. Callers hold a.mu.
func (a *Aggregator) observeLatency(sec float64) {
	i := sort.SearchFloat64s(latencyBuckets, sec)
	a.latCount[i]++
	a.latSum += sec
	a.latN++
}

// Snapshot is a point-in-time copy of the aggregator's state, used by
// tests and the expvar endpoint.
type Snapshot struct {
	Meta           RunMeta
	Runs           uint64
	Events         map[string]uint64
	ChunksGranted  uint64
	Iterations     uint64
	PrefetchHits   uint64
	PrefetchMisses uint64
	PrefetchRatio  float64
	Steals         uint64
	LocalSteals    uint64
	LocalRefills   uint64
	Timeouts       uint64
	Rejected       uint64
	Stages         uint64
	Dropped        uint64
	Workers        map[string]workerStats
	Tenants        map[string]TenantStats
	QueueDepth     int
	JobWaitSec     float64
	JobWaitCount   uint64
	JobsSubmitted  uint64
	JobsAdmitted   uint64
	JobsFinished   uint64
	JobsFailed     uint64
	JobsRequeued   uint64
	JobsCancelled  uint64
	WireSent       wireStats
	WireReceived   wireStats
	LatencySum     float64
	LatencyCount   uint64
	Stragglers     uint64
	LedgerFetches  uint64
	Hists          map[string]LatencyHists
}

// Snapshot returns a copy of the current totals.
func (a *Aggregator) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Snapshot{
		Meta:         a.meta,
		Runs:         a.runs,
		Events:       make(map[string]uint64, int(kindCount)),
		Steals:       a.kinds[ShardStealDone],
		LocalSteals:  a.kinds[ChunkStolen],
		LocalRefills: a.kinds[DequeRefilled],
		Timeouts:     a.kinds[WorkerTimedOut],
		Rejected:     a.kinds[WorkerRejected],
		Stages:       a.kinds[StageAdvanced],
		Workers:      make(map[string]workerStats, len(a.workers)),
		Tenants:      make(map[string]TenantStats, len(a.tenants)),

		QueueDepth:    a.queueDepth,
		JobWaitSec:    a.jobWaitSum,
		JobWaitCount:  a.jobWaitN,
		JobsSubmitted: a.kinds[JobSubmitted],
		JobsAdmitted:  a.kinds[JobAdmitted],
		JobsFinished:  a.kinds[JobFinished],
		JobsFailed:    a.kinds[JobFailed],
		JobsRequeued:  a.kinds[JobRequeued],
		JobsCancelled: a.kinds[JobCancelled],

		PrefetchHits:   a.kinds[ChunkPrefetched],
		PrefetchMisses: a.kinds[PrefetchMissed],
		ChunksGranted:  a.kinds[ChunkGranted] + a.kinds[ChunkPrefetched],
		WireSent:       a.wire[0],
		WireReceived:   a.wire[1],
		LatencySum:     a.latSum,
		LatencyCount:   a.latN,
		Stragglers:     a.kinds[StragglerDetected],
		LedgerFetches:  a.kinds[LedgerFetch],
		Hists:          make(map[string]LatencyHists, len(a.hists)),
	}
	for backend, h := range a.hists {
		s.Hists[backend] = h.snapshot()
	}
	for k := KindUnknown + 1; k < kindCount; k++ {
		if a.kinds[k] > 0 {
			s.Events[k.String()] = a.kinds[k]
		}
	}
	for k, w := range a.workers {
		s.Workers[fmt.Sprintf("%d/%d", k.Shard, k.Worker)] = *w
		s.Iterations += w.Iterations
	}
	for id, t := range a.tenants {
		row := *t
		if tc := a.tenantComp[id]; tc != nil {
			sum := tc.Snapshot().Summarize()
			row.CompP50, row.CompP95, row.CompP99 = sum.P50, sum.P95, sum.P99
		}
		row.BusyCV = busyCV(a.tenantBusy[id])
		s.Tenants[t.Name] = row
	}
	if att := s.PrefetchHits + s.PrefetchMisses; att > 0 {
		s.PrefetchRatio = float64(s.PrefetchHits) / float64(att)
	}
	if a.droppedFn != nil {
		s.Dropped = a.droppedFn()
	}
	return s
}

// WriteProm renders the totals in the Prometheus text exposition
// format (version 0.0.4).
func (a *Aggregator) WriteProm(w io.Writer) error {
	a.mu.Lock()
	// Copy everything we render, then release the lock before writing:
	// a stalled scrape must not hold up the bus drainer.
	meta := a.meta
	runs := a.runs
	kinds := a.kinds
	wire := a.wire
	lat := a.latCount
	latSum, latN := a.latSum, a.latN
	type workerRow struct {
		key   workerKey
		stats workerStats
	}
	rows := make([]workerRow, 0, len(a.workers))
	for k, ws := range a.workers {
		rows = append(rows, workerRow{k, *ws})
	}
	tenants := make([]TenantStats, 0, len(a.tenants))
	for id, t := range a.tenants {
		row := *t
		if tc := a.tenantComp[id]; tc != nil {
			sum := tc.Snapshot().Summarize()
			row.CompP50, row.CompP95, row.CompP99 = sum.P50, sum.P95, sum.P99
		}
		row.BusyCV = busyCV(a.tenantBusy[id])
		tenants = append(tenants, row)
	}
	hists := make(map[string]LatencyHists, len(a.hists))
	for backend, h := range a.hists {
		hists[backend] = h.snapshot()
	}
	stragglers := a.kinds[StragglerDetected]
	queueDepth := a.queueDepth
	jobWaitSum, jobWaitN := a.jobWaitSum, a.jobWaitN
	a.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key.Shard != rows[j].key.Shard {
			return rows[i].key.Shard < rows[j].key.Shard
		}
		return rows[i].key.Worker < rows[j].key.Worker
	})

	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	pf("# HELP loopsched_run_info Metadata of the most recent run (value is always 1).\n")
	pf("# TYPE loopsched_run_info gauge\n")
	pf("loopsched_run_info{scheme=%q,workload=%q,backend=%q} 1\n",
		meta.Scheme, meta.Workload, meta.Backend)
	pf("# HELP loopsched_runs_total Executor runs observed by this bus.\n")
	pf("# TYPE loopsched_runs_total counter\n")
	pf("loopsched_runs_total %d\n", runs)

	pf("# HELP loopsched_events_total Protocol events by kind.\n")
	pf("# TYPE loopsched_events_total counter\n")
	for k := KindUnknown + 1; k < kindCount; k++ {
		pf("loopsched_events_total{kind=%q} %d\n", k.String(), kinds[k])
	}

	pf("# HELP loopsched_chunks_granted_total Chunks granted per worker (direct and prefetched).\n")
	pf("# TYPE loopsched_chunks_granted_total counter\n")
	for _, r := range rows {
		pf("loopsched_chunks_granted_total{shard=\"%d\",worker=\"%d\"} %d\n",
			r.key.Shard, r.key.Worker, r.stats.Chunks)
	}
	pf("# HELP loopsched_iterations_granted_total Loop iterations granted per worker.\n")
	pf("# TYPE loopsched_iterations_granted_total counter\n")
	for _, r := range rows {
		pf("loopsched_iterations_granted_total{shard=\"%d\",worker=\"%d\"} %d\n",
			r.key.Shard, r.key.Worker, r.stats.Iterations)
	}
	pf("# HELP loopsched_worker_comp_seconds_total Computation seconds per worker.\n")
	pf("# TYPE loopsched_worker_comp_seconds_total counter\n")
	for _, r := range rows {
		pf("loopsched_worker_comp_seconds_total{shard=\"%d\",worker=\"%d\"} %g\n",
			r.key.Shard, r.key.Worker, r.stats.CompSec)
	}
	pf("# HELP loopsched_worker_wait_seconds_total Scheduling-latency seconds per worker.\n")
	pf("# TYPE loopsched_worker_wait_seconds_total counter\n")
	for _, r := range rows {
		pf("loopsched_worker_wait_seconds_total{shard=\"%d\",worker=\"%d\"} %g\n",
			r.key.Shard, r.key.Worker, r.stats.WaitSec)
	}
	pf("# HELP loopsched_worker_acp Last reported available computing power, percent.\n")
	pf("# TYPE loopsched_worker_acp gauge\n")
	for _, r := range rows {
		pf("loopsched_worker_acp{shard=\"%d\",worker=\"%d\"} %d\n",
			r.key.Shard, r.key.Worker, r.stats.ACP)
	}

	hits, misses := kinds[ChunkPrefetched], kinds[PrefetchMissed]
	pf("# HELP loopsched_prefetch_hits_total Prefetch requests satisfied with a chunk.\n")
	pf("# TYPE loopsched_prefetch_hits_total counter\n")
	pf("loopsched_prefetch_hits_total %d\n", hits)
	pf("# HELP loopsched_prefetch_misses_total Prefetch requests the master could not satisfy.\n")
	pf("# TYPE loopsched_prefetch_misses_total counter\n")
	pf("loopsched_prefetch_misses_total %d\n", misses)
	pf("# HELP loopsched_prefetch_hit_ratio Fraction of prefetch requests satisfied.\n")
	pf("# TYPE loopsched_prefetch_hit_ratio gauge\n")
	ratio := 0.0
	if att := hits + misses; att > 0 {
		ratio = float64(hits) / float64(att)
	}
	pf("loopsched_prefetch_hit_ratio %g\n", ratio)

	pf("# HELP loopsched_scheduling_latency_seconds Request-to-grant latency at the (sub)master.\n")
	pf("# TYPE loopsched_scheduling_latency_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += lat[i]
		pf("loopsched_scheduling_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += lat[len(latencyBuckets)]
	pf("loopsched_scheduling_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	pf("loopsched_scheduling_latency_seconds_sum %g\n", latSum)
	pf("loopsched_scheduling_latency_seconds_count %d\n", latN)

	backends := make([]string, 0, len(hists))
	for b := range hists {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	promHist := func(name, help string, pick func(LatencyHists) hist.Snapshot) {
		pf("# HELP %s %s\n", name, help)
		pf("# TYPE %s histogram\n", name)
		for _, b := range backends {
			s := pick(hists[b])
			cum := uint64(0)
			for i := 0; i < hist.NumBuckets-1; i++ {
				cum += s.Counts[i]
				pf("%s_bucket{backend=%q,le=\"%g\"} %d\n", name, b, hist.UpperBound(i), cum)
			}
			cum += s.Counts[hist.NumBuckets-1]
			pf("%s_bucket{backend=%q,le=\"+Inf\"} %d\n", name, b, cum)
			pf("%s_sum{backend=%q} %g\n", name, b, s.SumSeconds)
			pf("%s_count{backend=%q} %d\n", name, b, s.Count)
		}
	}
	promHist("loopsched_chunk_queue_wait_seconds",
		"Request-to-grant scheduling latency per chunk, by backend.",
		func(h LatencyHists) hist.Snapshot { return h.QueueWait })
	promHist("loopsched_chunk_comp_seconds",
		"Chunk computation latency, by backend.",
		func(h LatencyHists) hist.Snapshot { return h.Comp })
	promHist("loopsched_chunk_comm_seconds",
		"Inferred per-chunk communication slack (grant-to-complete minus compute), by backend.",
		func(h LatencyHists) hist.Snapshot { return h.Comm })
	promHist("loopsched_chunk_grant_to_complete_seconds",
		"Grant-to-complete latency per chunk, by backend.",
		func(h LatencyHists) hist.Snapshot { return h.GrantToComplete })
	promHist("loopsched_ledger_fetch_seconds",
		"Scheduling-ledger claim round trip (one fetch-and-add), by backend.",
		func(h LatencyHists) hist.Snapshot { return h.LedgerFetch })
	pf("# HELP loopsched_ledger_fetchadds_total Scheduling-ledger fetch-and-add claims, by backend.\n")
	pf("# TYPE loopsched_ledger_fetchadds_total counter\n")
	for _, b := range backends {
		pf("loopsched_ledger_fetchadds_total{backend=%q} %d\n", b, hists[b].LedgerFetch.Count)
	}

	dirs := [2]string{"sent", "received"}
	pf("# HELP loopsched_wire_frames_total Binary-protocol frames by direction.\n")
	pf("# TYPE loopsched_wire_frames_total counter\n")
	for i, d := range dirs {
		pf("loopsched_wire_frames_total{dir=%q} %d\n", d, wire[i].Frames)
	}
	pf("# HELP loopsched_wire_bytes_total Binary-protocol bytes on the wire by direction.\n")
	pf("# TYPE loopsched_wire_bytes_total counter\n")
	for i, d := range dirs {
		pf("loopsched_wire_bytes_total{dir=%q} %d\n", d, wire[i].Bytes)
	}
	pf("# HELP loopsched_wire_batch_items_total Batch items (completion records / grants) carried in frames.\n")
	pf("# TYPE loopsched_wire_batch_items_total counter\n")
	for i, d := range dirs {
		pf("loopsched_wire_batch_items_total{dir=%q} %d\n", d, wire[i].Items)
	}
	pf("# HELP loopsched_wire_codec_seconds_total Frame encode (sent) and decode (received) seconds.\n")
	pf("# TYPE loopsched_wire_codec_seconds_total counter\n")
	for i, d := range dirs {
		pf("loopsched_wire_codec_seconds_total{dir=%q} %g\n", d, wire[i].CodecSec)
	}

	pf("# HELP loopsched_job_queue_depth Jobs waiting for admission (queued + fail-queue) at the scheduler.\n")
	pf("# TYPE loopsched_job_queue_depth gauge\n")
	pf("loopsched_job_queue_depth %d\n", queueDepth)
	pf("# HELP loopsched_job_wait_seconds Admission-queue wait from submit to start, per admitted job.\n")
	pf("# TYPE loopsched_job_wait_seconds summary\n")
	pf("loopsched_job_wait_seconds_sum %g\n", jobWaitSum)
	pf("loopsched_job_wait_seconds_count %d\n", jobWaitN)
	pf("# HELP loopsched_tenant_jobs_total Jobs submitted per scheduler tenant.\n")
	pf("# TYPE loopsched_tenant_jobs_total counter\n")
	for _, t := range tenants {
		pf("loopsched_tenant_jobs_total{tenant=%q} %d\n", t.Name, t.Jobs)
	}
	pf("# HELP loopsched_tenant_chunks_total Chunks granted per scheduler tenant.\n")
	pf("# TYPE loopsched_tenant_chunks_total counter\n")
	for _, t := range tenants {
		pf("loopsched_tenant_chunks_total{tenant=%q} %d\n", t.Name, t.Chunks)
	}
	pf("# HELP loopsched_tenant_iterations_total Loop iterations granted per scheduler tenant.\n")
	pf("# TYPE loopsched_tenant_iterations_total counter\n")
	for _, t := range tenants {
		pf("loopsched_tenant_iterations_total{tenant=%q} %d\n", t.Name, t.Iterations)
	}
	pf("# HELP loopsched_tenant_comp_seconds_total Computation seconds per scheduler tenant.\n")
	pf("# TYPE loopsched_tenant_comp_seconds_total counter\n")
	for _, t := range tenants {
		pf("loopsched_tenant_comp_seconds_total{tenant=%q} %g\n", t.Name, t.CompSec)
	}
	pf("# HELP loopsched_tenant_chunk_latency_seconds Chunk-compute latency percentiles per scheduler tenant.\n")
	pf("# TYPE loopsched_tenant_chunk_latency_seconds summary\n")
	for _, t := range tenants {
		pf("loopsched_tenant_chunk_latency_seconds{tenant=%q,quantile=\"0.5\"} %g\n", t.Name, t.CompP50)
		pf("loopsched_tenant_chunk_latency_seconds{tenant=%q,quantile=\"0.95\"} %g\n", t.Name, t.CompP95)
		pf("loopsched_tenant_chunk_latency_seconds{tenant=%q,quantile=\"0.99\"} %g\n", t.Name, t.CompP99)
	}
	pf("# HELP loopsched_tenant_busy_cv Coefficient of variation of per-worker busy time per tenant.\n")
	pf("# TYPE loopsched_tenant_busy_cv gauge\n")
	for _, t := range tenants {
		pf("loopsched_tenant_busy_cv{tenant=%q} %g\n", t.Name, t.BusyCV)
	}

	pf("# HELP loopsched_shard_steals_total Completed shard steals at the hier root.\n")
	pf("# TYPE loopsched_shard_steals_total counter\n")
	pf("loopsched_shard_steals_total %d\n", kinds[ShardStealDone])
	pf("# HELP loopsched_local_steals_total Chunks stolen between workers by the local work-stealing engine.\n")
	pf("# TYPE loopsched_local_steals_total counter\n")
	pf("loopsched_local_steals_total %d\n", kinds[ChunkStolen])
	pf("# HELP loopsched_local_refills_total Deque refill trips to the scheme policy by the local work-stealing engine.\n")
	pf("# TYPE loopsched_local_refills_total counter\n")
	pf("loopsched_local_refills_total %d\n", kinds[DequeRefilled])
	pf("# HELP loopsched_worker_timeouts_total Workers declared failed by the timeout watchdog.\n")
	pf("# TYPE loopsched_worker_timeouts_total counter\n")
	pf("loopsched_worker_timeouts_total %d\n", kinds[WorkerTimedOut])
	pf("# HELP loopsched_worker_rejected_total Requests rejected from already-failed workers.\n")
	pf("# TYPE loopsched_worker_rejected_total counter\n")
	pf("loopsched_worker_rejected_total %d\n", kinds[WorkerRejected])
	pf("# HELP loopsched_stage_advances_total Replans and hier super-chunk boundaries.\n")
	pf("# TYPE loopsched_stage_advances_total counter\n")
	pf("loopsched_stage_advances_total %d\n", kinds[StageAdvanced])
	pf("# HELP loopsched_stragglers_total Straggler detections (worker EWMA latency over k times the fleet median).\n")
	pf("# TYPE loopsched_stragglers_total counter\n")
	pf("loopsched_stragglers_total %d\n", stragglers)

	dropped := uint64(0)
	if a.droppedFn != nil {
		dropped = a.droppedFn()
	}
	pf("# HELP loopsched_dropped_events_total Events discarded because the telemetry ring was full.\n")
	pf("# TYPE loopsched_dropped_events_total counter\n")
	pf("loopsched_dropped_events_total %d\n", dropped)
	return err
}

// ServeHTTP serves the Prometheus text format, so an Aggregator can be
// mounted directly on a mux at /metrics.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := a.WriteProm(w); err != nil {
		// The connection is gone; nothing useful to do.
		return
	}
}

// expvarAgg is the aggregator currently exported under the "loopsched"
// expvar. expvar.Publish panics on duplicate names, so the variable is
// registered once per process and indirects through this pointer.
var expvarAgg atomic.Pointer[Aggregator]

var expvarOnce sync.Once

// publishExpvar exposes the aggregator's Snapshot as the "loopsched"
// expvar (JSON at /debug/vars). The most recently published aggregator
// wins; passing nil detaches.
func publishExpvar(a *Aggregator) {
	expvarOnce.Do(func() {
		expvar.Publish("loopsched", expvar.Func(func() any {
			agg := expvarAgg.Load()
			if agg == nil {
				return nil
			}
			return agg.Snapshot()
		}))
	})
	expvarAgg.Store(a)
}
