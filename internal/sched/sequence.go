package sched

// NominalSequence returns the chunk-size sequence a scheme produces
// for a homogeneous run of I iterations on p workers, with clipping
// disabled, exactly as the paper prints them in Table 1: generation
// stops once the cumulative size reaches I, and the last entry may
// overshoot (the paper's TSS row sums to 1040 for I = 1000).
// Requests are issued round-robin, which is how a table is read —
// stage-based schemes hand identical chunks to all p workers anyway.
func NominalSequence(s Scheme, iterations, p int) ([]int, error) {
	pol, err := s.NewPolicy(Config{Iterations: iterations, Workers: p, NoClip: true})
	if err != nil {
		return nil, err
	}
	var seq []int
	for w := 0; ; w = (w + 1) % p {
		a, ok := pol.Next(Request{Worker: w})
		if !ok {
			break
		}
		seq = append(seq, a.Size)
	}
	return seq, nil
}

// Sequence returns the clipped chunk-size sequence of a real
// homogeneous run: sizes are positive and sum exactly to I.
func Sequence(s Scheme, iterations, p int) ([]int, error) {
	pol, err := s.NewPolicy(Config{Iterations: iterations, Workers: p})
	if err != nil {
		return nil, err
	}
	var seq []int
	for w := 0; ; w = (w + 1) % p {
		a, ok := pol.Next(Request{Worker: w})
		if !ok {
			break
		}
		seq = append(seq, a.Size)
	}
	return seq, nil
}

// TrapezoidNominal returns the full nominal TSS chunk descent
// F, F−D, …, down to the last value ≥ L, ignoring the iteration
// budget. This is exactly what the paper's Table 1 prints for TSS
// (the row sums to 1040 for I = 1000 because the trapezoid is shown
// whole; a real run clips the tail).
func TrapezoidNominal(iterations, p int) []int {
	prm := ComputeTSSParams(iterations, p, 0, 0)
	var seq []int
	for c := prm.F; c >= prm.L; c -= prm.D {
		seq = append(seq, c)
		if prm.D == 0 && Sum(seq) >= iterations {
			break
		}
	}
	return seq
}

// TFSSNominal returns the paper's Table 1 TFSS row: each stage value
// (the mean of the next p nominal TSS chunks) repeated p times, for as
// long as the underlying trapezoid head stays ≥ L.
func TFSSNominal(iterations, p int) []int {
	prm := ComputeTSSParams(iterations, p, 0, 0)
	var seq []int
	for c := prm.F; c >= prm.L; c -= p * prm.D {
		sum := 0
		for j := 0; j < p; j++ {
			v := c - j*prm.D
			if v < prm.L {
				v = prm.L
			}
			sum += v
		}
		stage := RoundHalfEven.apply(float64(sum) / float64(p))
		for j := 0; j < p; j++ {
			seq = append(seq, stage)
		}
		if prm.D == 0 && Sum(seq) >= iterations {
			break
		}
	}
	return seq
}

// Sum is a convenience for asserting coverage in tests and examples.
func Sum(seq []int) int {
	total := 0
	for _, c := range seq {
		total += c
	}
	return total
}
