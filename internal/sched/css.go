package sched

import "fmt"

// CSSScheme is Chunk Self-Scheduling: every request is answered with a
// fixed, user-chosen chunk of K iterations. K = 1 is pure
// Self-Scheduling (the paper's SS). Strength: trivial bookkeeping.
// Weakness: K is workload-dependent and non-adaptive — too small means
// p·I/K scheduling messages, too large means imbalance at the tail.
type CSSScheme struct {
	// K is the fixed chunk size; 0 means 1 (pure self-scheduling).
	K int
}

func (s CSSScheme) Name() string {
	if s.chunk() == 1 {
		return "SS"
	}
	return fmt.Sprintf("CSS(%d)", s.chunk())
}

func (s CSSScheme) chunk() int {
	if s.K < 1 {
		return 1
	}
	return s.K
}

func (s CSSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cssPolicy{counter: newCounter(cfg), k: s.chunk()}, nil
}

type cssPolicy struct {
	counter
	k int
}

func (c *cssPolicy) Next(req Request) (Assignment, bool) {
	return c.take(c.k)
}

// FixedChunk implements FixedChunker: every CSS grant is exactly K
// iterations (modulo the final clip), independent of request order.
func (s CSSScheme) FixedChunk(cfg Config) (int, bool) {
	return s.chunk(), true
}

// StepDeterministic: the k-th grant is always [k·K, (k+1)·K) clipped,
// regardless of who asked.
func (CSSScheme) StepDeterministic() bool { return true }

// SelfScheduling is the pure SS scheme (CSS with K = 1).
var SelfScheduling = CSSScheme{K: 1}

func init() {
	Register(SelfScheduling)    // "SS"
	Register(CSSScheme{K: 16})  // a representative fixed-chunk variant
	Register(CSSScheme{K: 125}) // I/(2p) for the paper's running example
}
