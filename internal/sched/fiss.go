package sched

import "fmt"

// FISSScheme is Fixed-Increase Self-Scheduling (Philip & Das 1997):
// chunks grow by a constant "bump" B across a fixed number of stages
// σ, starting from C_0 = ⌊I/(X·p)⌋ with
// B = ⌊2I(1−σ/X) / (p·σ·(σ−1))⌋. The authors suggest X = σ + 2; the
// paper's Example 1 (50 83 117 for I = 1000, p = 4) uses σ = 3.
// Because B is floored, the nominal stages undershoot I; like the
// paper's example we let the final stage absorb the remainder so that
// exactly σ stages cover the loop.
type FISSScheme struct {
	// Stages is σ, the number of stages; values < 2 select 3.
	Stages int
	// X is the initial-chunk divisor; values ≤ 0 select σ + 2.
	X int
}

func (s FISSScheme) sigma() int {
	if s.Stages < 2 {
		return 3
	}
	return s.Stages
}

func (s FISSScheme) x() int {
	if s.X <= 0 {
		return s.sigma() + 2
	}
	return s.X
}

func (s FISSScheme) Name() string {
	if s.Stages == 0 && s.X == 0 {
		return "FISS"
	}
	return fmt.Sprintf("FISS(σ=%d,X=%d)", s.sigma(), s.x())
}

func (s FISSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sigma, x := s.sigma(), s.x()
	p := cfg.Workers
	i := cfg.Iterations
	c0 := i / (x * p)
	bump := 2 * i * (x - sigma) / (x * p * sigma * (sigma - 1))
	return &stagePolicy{
		counter: newCounter(cfg),
		p:       p,
		nextChunk: func(stage, remaining int) int {
			if stage >= sigma-1 {
				// Final stage (and any overflow stages forced by
				// rounding): split the remainder evenly.
				return CeilDiv(remaining, p)
			}
			return c0 + stage*bump
		},
	}, nil
}

// StepDeterministic: C_0, the bump and the stage count are all fixed
// at plan time; grants never read the request.
func (FISSScheme) StepDeterministic() bool { return true }

func init() {
	Register(FISSScheme{})
}
