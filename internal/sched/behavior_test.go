package sched

import (
	"math"
	"testing"
)

// These tests pin each scheme's chunk-decay *law*, not just its
// values: TSS decreases linearly, GSS geometrically, FSS is piecewise
// constant with halving stages, FISS increases linearly. A refactor
// that preserves coverage but bends a curve fails here.

// diffs returns successive differences of a sequence.
func diffs(seq []int) []int {
	out := make([]int, 0, len(seq)-1)
	for i := 1; i < len(seq); i++ {
		out = append(out, seq[i]-seq[i-1])
	}
	return out
}

// TestTSSLinearDecay: all the paper-default trapezoid's successive
// differences equal −D until the clipped tail.
func TestTSSLinearDecay(t *testing.T) {
	const i, p = 20000, 5
	seq, err := Sequence(TSSScheme{}, i, p)
	if err != nil {
		t.Fatal(err)
	}
	prm := ComputeTSSParams(i, p, 0, 0)
	ds := diffs(seq)
	for k, d := range ds[:len(ds)-1] { // final diff may be clipped
		if d != -prm.D {
			t.Fatalf("step %d: difference %d, want %d (not linear)", k, d, -prm.D)
		}
	}
}

// TestGSSGeometricDecay: the ratio C_{i+1}/C_i stays near (1−1/p)
// while chunks are large.
func TestGSSGeometricDecay(t *testing.T) {
	const i, p = 100000, 4
	seq, err := Sequence(GSSScheme{}, i, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 1.0/float64(p)
	for k := 0; k+1 < len(seq) && seq[k+1] > 100; k++ {
		ratio := float64(seq[k+1]) / float64(seq[k])
		if math.Abs(ratio-want) > 0.02 {
			t.Fatalf("step %d: ratio %.3f, want ≈%.3f (not geometric)", k, ratio, want)
		}
	}
}

// TestFSSStageStructure: chunks come in runs of exactly p equal
// values, and each stage's chunk is about half the previous stage's.
func TestFSSStageStructure(t *testing.T) {
	const i, p = 65536, 4
	seq, err := Sequence(FSSScheme{}, i, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq)%p != 0 {
		t.Fatalf("%d chunks is not a whole number of stages", len(seq))
	}
	var stages []int
	for s := 0; s < len(seq); s += p {
		for j := 1; j < p; j++ {
			if seq[s+j] != seq[s] {
				t.Fatalf("stage at %d not equal-sized: %v", s, seq[s:s+p])
			}
		}
		stages = append(stages, seq[s])
	}
	for k := 0; k+1 < len(stages) && stages[k+1] > 8; k++ {
		ratio := float64(stages[k+1]) / float64(stages[k])
		if math.Abs(ratio-0.5) > 0.05 {
			t.Fatalf("stage %d: ratio %.3f, want ≈0.5", k, ratio)
		}
	}
}

// TestFISSLinearGrowth: stage chunks increase by exactly B until the
// remainder-absorbing final stage.
func TestFISSLinearGrowth(t *testing.T) {
	const i, p, sigma = 30000, 5, 4
	seq, err := Sequence(FISSScheme{Stages: sigma}, i, p)
	if err != nil {
		t.Fatal(err)
	}
	var stages []int
	for s := 0; s < len(seq); s += p {
		stages = append(stages, seq[s])
	}
	if len(stages) != sigma {
		t.Fatalf("%d stages, want %d", len(stages), sigma)
	}
	x := sigma + 2
	bump := 2 * i * (x - sigma) / (x * p * sigma * (sigma - 1))
	for k := 0; k+2 < len(stages); k++ { // exclude the final stage
		if stages[k+1]-stages[k] != bump {
			t.Fatalf("stage %d→%d grew by %d, want %d", k, k+1, stages[k+1]-stages[k], bump)
		}
	}
}

// TestTFSSStageLinearDecay: TFSS stage values decrease by exactly p·D.
func TestTFSSStageLinearDecay(t *testing.T) {
	const i, p = 20000, 4
	seq, err := Sequence(TFSSScheme{}, i, p)
	if err != nil {
		t.Fatal(err)
	}
	prm := ComputeTSSParams(i, p, 0, 0)
	var stages []int
	for s := 0; s+p <= len(seq); s += p {
		stages = append(stages, seq[s])
	}
	for k := 0; k+2 < len(stages); k++ {
		if d := stages[k] - stages[k+1]; d != p*prm.D {
			t.Fatalf("stage %d decay %d, want %d", k, d, p*prm.D)
		}
	}
}

// TestFirstChunkFractions: the headline "how aggressive is the first
// chunk" constants — GSS grabs 1/p of the loop, TSS and FSS 1/(2p),
// FISS 1/((σ+2)p).
func TestFirstChunkFractions(t *testing.T) {
	const i, p = 100000, 4
	cases := []struct {
		s    Scheme
		frac float64
	}{
		{GSSScheme{}, 1.0 / p},
		{TSSScheme{}, 1.0 / (2 * p)},
		{FSSScheme{}, 1.0 / (2 * p)},
		{FISSScheme{}, 1.0 / (5 * p)}, // σ=3 → X=5
		{TFSSScheme{}, 0.113},         // (the Table-1 ratio 113/1000)
	}
	for _, c := range cases {
		seq, err := Sequence(c.s, i, p)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(seq[0]) / float64(i)
		if math.Abs(got-c.frac) > 0.01 {
			t.Errorf("%s first chunk fraction %.4f, want ≈%.4f", c.s.Name(), got, c.frac)
		}
	}
}

// TestTailMass: decreasing schemes leave little work in their final
// p chunks (fine balancing), while FISS concentrates the most work
// there — the structural risk its catalogue entry documents.
func TestTailMass(t *testing.T) {
	const i, p = 100000, 4
	tail := func(s Scheme) float64 {
		seq, err := Sequence(s, i, p)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, c := range seq[len(seq)-p:] {
			sum += c
		}
		return float64(sum) / float64(i)
	}
	gss, tss, fiss := tail(GSSScheme{}), tail(TSSScheme{}), tail(FISSScheme{})
	if gss > 0.001 {
		t.Errorf("GSS tail mass %.4f, want <0.1%% (geometric tail)", gss)
	}
	// TSS's linear descent leaves a visibly coarser tail than GSS's
	// geometric one (~8% here) — the trade the paper makes for far
	// fewer scheduling steps — but still far below FISS's.
	if tss < gss || tss > 0.15 {
		t.Errorf("TSS tail mass %.4f, want between GSS's %.4f and 15%%", tss, gss)
	}
	if fiss < 0.3 {
		t.Errorf("FISS tail mass %.4f, want >30%% (largest chunks last)", fiss)
	}
}
