package sched

import "fmt"

// The distributed schemes of section 6 follow the pattern the paper
// extracts from DTSS: a stage-based simple scheme provides the stage
// total SC_k, and the request from slave P_j is answered with
//
//	C_j^k = SC_k · A_j / A
//
// where A_j is the ACP piggy-backed on the request and A the total
// ACP recorded when the master (re)planned. A stage consists of p
// chunk-slots, matching FSS's "groups of p chunks" structure; in a
// homogeneous system (all A_j equal) each distributed scheme reduces
// exactly to its simple counterpart, which the tests verify.

// stageTotals yields the SC_k series for one run of a distributed
// scheme.
type stageTotals interface {
	// next returns SC_k for the stage starting with `remaining`
	// unassigned iterations; stage is 0-based.
	next(stage, remaining int) float64
}

// DistributedScheme lifts a stage-total rule into a full scheme.
type DistributedScheme struct {
	name string
	mk   func(cfg Config) stageTotals
}

func (d DistributedScheme) Name() string { return d.name }

// Distributed marks the scheme as load-adaptive for sched.Distributed.
func (DistributedScheme) Distributed() bool { return true }

func (d DistributedScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &distPolicy{
		counter: newCounter(cfg),
		cfg:     cfg,
		totals:  d.mk(cfg),
		total:   cfg.TotalPower(),
	}, nil
}

type distPolicy struct {
	counter
	cfg        Config
	totals     stageTotals
	total      float64 // A at plan time
	stage      int
	slotsLeft  int
	stageTotal float64
}

func (dp *distPolicy) Next(req Request) (Assignment, bool) {
	if dp.Remaining() == 0 {
		return Assignment{}, false
	}
	if dp.slotsLeft == 0 {
		dp.stageTotal = dp.totals.next(dp.stage, dp.Remaining())
		dp.stage++
		dp.slotsLeft = dp.cfg.Workers
	}
	dp.slotsLeft--
	acp := req.ACP
	if acp <= 0 {
		acp = dp.cfg.Power(req.Worker)
	}
	size := RoundHalfEven.apply(dp.stageTotal * acp / dp.total)
	return dp.take(size)
}

// dfssTotals: factoring stage total SC_k = R/α (α = 2 by default).
//
// Fidelity note: the paper's section 6 literally writes
// SC_k = ⌊2·R_{i−1}/A⌋, but together with C_j = SC_k·A_j/A that gives
// per-worker chunks 2R·A_j/A², which reduces to FSS's R/(2p) only when
// p = 4 — the worked example's worker count. The power-invariant
// reading (stage total = half the remaining work, split by ACP share)
// reduces to FSS for every p and is what we implement.
type dfssTotals struct{ alpha float64 }

func (t dfssTotals) next(_, remaining int) float64 {
	return float64(remaining) / t.alpha
}

// dfissTotals: SC_0 = ⌊I/X⌋ and SC_{k+1} = SC_k + B with
// B = ⌈2I(1−σ/X)/(σ(σ−1))⌉ (section 6, modification iii); the final
// stage absorbs the remainder as in our FISS.
type dfissTotals struct {
	sigma int
	sc0   int
	bump  int
}

func newDFISSTotals(cfg Config, sigma, x int) *dfissTotals {
	i := cfg.Iterations
	b := 2 * i * (x - sigma)
	den := x * sigma * (sigma - 1)
	bump := (b + den - 1) / den // ceiling, per the paper's ⌈·⌉
	return &dfissTotals{sigma: sigma, sc0: i / x, bump: bump}
}

func (t *dfissTotals) next(stage, remaining int) float64 {
	if stage >= t.sigma-1 {
		return float64(remaining)
	}
	return float64(t.sc0 + stage*t.bump)
}

// dtfssTotals: the trapezoid parameters are computed with p := A
// (DTSS step 1b), and the stage total is the sum of the next A nominal
// TSS chunks, so that per unit of power the chunk decreases linearly.
// With all ACPs equal to 1 this is exactly TFSS's stage total.
type dtfssTotals struct {
	prm   TSSParams
	group int // number of nominal chunks summed per stage (≈ A)
	cTSS  int // head of the nominal sequence
}

func newDTFSSTotals(cfg Config) *dtfssTotals {
	a := cfg.TotalPower()
	aInt := RoundNearest(a)
	if aInt < 1 {
		aInt = 1
	}
	prm := ComputeTSSParams(cfg.Iterations, aInt, 0, 0)
	return &dtfssTotals{prm: prm, group: aInt, cTSS: prm.F}
}

func (t *dtfssTotals) next(_, _ int) float64 {
	sum := 0
	for j := 0; j < t.group; j++ {
		c := t.cTSS - j*t.prm.D
		if c < t.prm.L {
			c = t.prm.L
		}
		sum += c
	}
	t.cTSS -= t.group * t.prm.D
	return float64(sum)
}

// NewDFSS returns Distributed Factoring Self-Scheduling.
func NewDFSS() Scheme {
	return DistributedScheme{name: "DFSS", mk: func(cfg Config) stageTotals {
		return dfssTotals{alpha: 2}
	}}
}

// NewDFISS returns Distributed Fixed-Increase Self-Scheduling with
// σ stages (σ < 2 selects 3) and X = σ + 2.
func NewDFISS(sigma int) Scheme {
	if sigma < 2 {
		sigma = 3
	}
	name := "DFISS"
	if sigma != 3 {
		name = fmt.Sprintf("DFISS(σ=%d)", sigma)
	}
	return DistributedScheme{name: name, mk: func(cfg Config) stageTotals {
		return newDFISSTotals(cfg, sigma, sigma+2)
	}}
}

// NewDTFSS returns Distributed Trapezoid Factoring Self-Scheduling,
// the distributed version of the paper's new TFSS scheme.
func NewDTFSS() Scheme {
	return DistributedScheme{name: "DTFSS", mk: func(cfg Config) stageTotals {
		return newDTFSSTotals(cfg)
	}}
}

// Offset wraps a policy so that its assignments start at base instead
// of zero. Masters use it when re-planning mid-run (DTSS step 2c):
// the fresh policy schedules the remaining iterations, and Offset maps
// them back into the original index space. A learning policy
// (FeedbackPolicy) keeps its feedback channel through the wrapper.
func Offset(p Policy, base int) Policy {
	o := &offsetPolicy{p: p, base: base}
	if fb, ok := p.(FeedbackPolicy); ok {
		return &offsetFeedbackPolicy{offsetPolicy: o, fb: fb}
	}
	return o
}

type offsetFeedbackPolicy struct {
	*offsetPolicy
	fb FeedbackPolicy
}

func (o *offsetFeedbackPolicy) Feedback(worker int, work, elapsed float64) {
	o.fb.Feedback(worker, work, elapsed)
}

type offsetPolicy struct {
	p    Policy
	base int
}

func (o *offsetPolicy) Next(req Request) (Assignment, bool) {
	a, ok := o.p.Next(req)
	if !ok {
		return Assignment{}, false
	}
	a.Start += o.base
	return a, true
}

func (o *offsetPolicy) Remaining() int { return o.p.Remaining() }

func init() {
	Register(NewDFSS())
	Register(NewDFISS(0))
	Register(NewDTFSS())
}
