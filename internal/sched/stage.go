package sched

// Rounding selects how a fractional per-stage chunk size is converted
// to an integer. The paper's Table 1 FSS row is reproduced by
// round-half-to-even; the classic Hummel, Schonberg & Flynn paper uses
// the ceiling. Both are provided so the difference can be measured
// (see BenchmarkAblationFSSRounding).
type Rounding int

const (
	// RoundHalfEven rounds to nearest, ties to even (banker's
	// rounding). Default; matches the paper's printed sequences.
	RoundHalfEven Rounding = iota
	// RoundCeil always rounds up (the original FSS formulation).
	RoundCeil
	// RoundFloor always rounds down.
	RoundFloor
)

func (r Rounding) String() string {
	switch r {
	case RoundCeil:
		return "ceil"
	case RoundFloor:
		return "floor"
	default:
		return "half-even"
	}
}

// apply rounds x per the rule, with a floor of 1 (a scheduling step
// always assigns at least one iteration).
func (r Rounding) apply(x float64) int {
	var v int
	switch r {
	case RoundCeil:
		v = CeilPos(x)
	case RoundFloor:
		v = FloorPos(x)
	default: // half-even
		f := FloorPos(x)
		frac := x - float64(f)
		switch {
		case frac > 0.5:
			v = f + 1
		case frac < 0.5:
			v = f
		default: // exactly .5: to even
			if f%2 == 0 {
				v = f
			} else {
				v = f + 1
			}
		}
	}
	if v < 1 {
		v = 1
	}
	return v
}

// stagePolicy drives the simple stage-based schemes (FSS, FISS, TFSS):
// a stage consists of p equal chunks; when the p slots are consumed, a
// scheme-specific callback computes the next stage's chunk size from
// the remaining iteration count and the stage index.
type stagePolicy struct {
	counter
	p         int
	slotsLeft int
	chunk     int
	stage     int
	// nextChunk returns the per-PE chunk size for stage k (0-based)
	// given the remaining iteration count at stage start.
	nextChunk func(stage, remaining int) int
}

func (s *stagePolicy) Next(req Request) (Assignment, bool) {
	if s.Remaining() == 0 {
		return Assignment{}, false
	}
	if s.slotsLeft == 0 {
		s.chunk = s.nextChunk(s.stage, s.Remaining())
		if s.chunk < 1 {
			s.chunk = 1
		}
		s.stage++
		s.slotsLeft = s.p
	}
	s.slotsLeft--
	return s.take(s.chunk)
}
