package sched

// AWFScheme is Adaptive Weighted Factoring (in the spirit of
// Banicescu & Liu's AWF, the best-known successor of the paper's
// scheme family): factoring stages whose per-worker share follows
// weights learned from *measured* chunk execution rates, rather than
// from the run-queue-based ACP the paper's distributed schemes use.
// The two adaptation channels are complementary — ACP reacts before
// the slowdown is observed (the OS reports the run queue), AWF reacts
// to ground truth including effects the run queue cannot see (cache,
// memory pressure, thermal throttling) — which makes AWF the natural
// ablation point for the paper's §3 model (see
// BenchmarkAblationFeedback).
//
// Masters deliver measurements through the FeedbackPolicy interface;
// until a worker has a measurement its weight is the plan-time power
// (1 for unknown).
type AWFScheme struct {
	// Alpha is the factoring parameter; ≤ 0 selects 2.
	Alpha float64
}

func (s AWFScheme) alpha() float64 {
	if s.Alpha <= 0 {
		return 2
	}
	return s.Alpha
}

func (AWFScheme) Name() string { return "AWF" }

// Distributed: AWF adapts at run time (through timing instead of run
// queues), so the paper's section-6 definition applies.
func (AWFScheme) Distributed() bool { return true }

// FeedbackPolicy is implemented by policies that learn from completed
// chunks. Masters that know the execution outcome call Feedback after
// every chunk; policies that don't implement it are unaffected.
type FeedbackPolicy interface {
	Policy
	// Feedback reports that `worker` finished a chunk of `work` cost
	// units in `elapsed` seconds.
	Feedback(worker int, work, elapsed float64)
}

func (s AWFScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &awfPolicy{
		counter: newCounter(cfg),
		cfg:     cfg,
		alpha:   s.alpha(),
		rates:   make([]float64, cfg.Workers),
		weights: make([]float64, cfg.Workers),
	}
	for i := range p.weights {
		p.weights[i] = cfg.Power(i)
	}
	return p, nil
}

type awfPolicy struct {
	counter
	cfg        Config
	alpha      float64
	slotsLeft  int
	stageTotal float64
	rates      []float64 // measured work units per second (EWMA)
	weights    []float64 // current share weights
}

// ewma smoothing for measured rates: new measurements count double the
// history, reacting within a couple of chunks without thrashing.
const awfSmoothing = 2.0 / 3.0

func (p *awfPolicy) Feedback(worker int, work, elapsed float64) {
	if worker < 0 || worker >= len(p.rates) || elapsed <= 0 || work <= 0 {
		return
	}
	rate := work / elapsed
	if p.rates[worker] == 0 {
		p.rates[worker] = rate
	} else {
		p.rates[worker] = awfSmoothing*rate + (1-awfSmoothing)*p.rates[worker]
	}
	// Re-derive weights. Measured workers use their measured rate;
	// unmeasured workers keep their plan-time prior, *calibrated* into
	// rate units via the measured population (mean rate per unit of
	// prior weight), so a single early measurement neither starves nor
	// floods anyone.
	var rateSum, priorSum float64
	for i, r := range p.rates {
		if r > 0 {
			rateSum += r
			priorSum += p.cfg.Power(i)
		}
	}
	if priorSum <= 0 {
		return
	}
	ratePerPrior := rateSum / priorSum
	for i, r := range p.rates {
		if r > 0 {
			p.weights[i] = r
		} else {
			p.weights[i] = p.cfg.Power(i) * ratePerPrior
		}
	}
}

func (p *awfPolicy) Next(req Request) (Assignment, bool) {
	if p.Remaining() == 0 {
		return Assignment{}, false
	}
	if p.slotsLeft == 0 {
		p.stageTotal = float64(p.Remaining()) / p.alpha
		p.slotsLeft = p.cfg.Workers
	}
	p.slotsLeft--
	var total float64
	for _, w := range p.weights {
		total += w
	}
	w := p.weights[0]
	if req.Worker >= 0 && req.Worker < len(p.weights) {
		w = p.weights[req.Worker]
	}
	size := RoundHalfEven.apply(p.stageTotal * w / total)
	return p.take(size)
}

func init() {
	Register(AWFScheme{})
}
