package sched

import "fmt"

// WithMinChunk lifts GSS(k)'s idea — never assign fewer than k
// iterations — onto any scheme: the paper applies the floor only to
// GSS ("a modified version GSS(k) with minimum assigned chunk-size k
// ... attempts to improve on the weaknesses of GSS"), but every
// decreasing-chunk scheme develops a fine tail whose synchronisation
// cost the floor caps. The wrapped scheme keeps its name with a
// "+min" suffix and its distributed classification.
func WithMinChunk(s Scheme, k int) Scheme {
	if k <= 1 {
		return s
	}
	return minChunkScheme{base: s, k: k}
}

type minChunkScheme struct {
	base Scheme
	k    int
}

func (m minChunkScheme) Name() string {
	return fmt.Sprintf("%s+min%d", m.base.Name(), m.k)
}

// Distributed follows the wrapped scheme.
func (m minChunkScheme) Distributed() bool { return Distributed(m.base) }

// StepDeterministic follows the wrapped scheme: the floor is applied
// per grant, so a request-blind base stays request-blind.
func (m minChunkScheme) StepDeterministic() bool { return StepDeterministic(m.base) }

func (m minChunkScheme) NewPolicy(cfg Config) (Policy, error) {
	pol, err := m.base.NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	return &minChunkPolicy{base: pol, k: m.k, cfg: cfg}, nil
}

// minChunkPolicy inflates undersized assignments. Because the base
// policy has already consumed the inflated range's prefix, the wrapper
// tracks its own frontier and drains the base policy until it catches
// up — the base's internal bookkeeping (stages, trapezoid position)
// advances naturally.
type minChunkPolicy struct {
	base Policy
	k    int
	cfg  Config
	next int // wrapper's frontier within [0, Iterations)
}

func (m *minChunkPolicy) Remaining() int {
	if r := m.cfg.Iterations - m.next; r > 0 {
		return r
	}
	return 0
}

func (m *minChunkPolicy) Next(req Request) (Assignment, bool) {
	rem := m.Remaining()
	if rem == 0 {
		return Assignment{}, false
	}
	// Drain the base policy past our frontier (it may lag after an
	// earlier inflation).
	end := m.next
	for end <= m.next {
		a, ok := m.base.Next(req)
		if !ok {
			end = m.cfg.Iterations
			break
		}
		end = a.End()
	}
	if end-m.next < m.k {
		end = m.next + m.k
	}
	if end > m.cfg.Iterations {
		end = m.cfg.Iterations
	}
	out := Assignment{Start: m.next, Size: end - m.next}
	m.next = end
	return out, true
}
