package sched

import (
	"fmt"
	"math"
)

// Section 6 opens with the observation that "any self-scheduling
// scheme discussed in section 2 can become a Master-Slave centralized
// distributed scheme". The paper only works out the stage-based ones
// (DFSS/DFISS/DTFSS) plus DTSS; this file provides the same lift for
// the per-request schemes — GSS and CSS — as the natural extension:
//
//	C_j = simple chunk at effective worker count p · (A_j·p / A)
//
// i.e. the simple scheme's chunk for a *unit-share* worker, scaled by
// how many unit shares the requester represents. With all ACPs equal
// the lift is exact: DGSS ≡ GSS and DCSS(k) ≡ CSS(k), which the tests
// verify.

// requestChunker computes the unit-share chunk for the underlying
// simple scheme.
type requestChunker interface {
	// unit returns the chunk a power-1/p worker would get with R
	// iterations remaining.
	unit(remaining int) float64
}

// RequestDistributedScheme lifts a per-request chunk rule into a
// distributed scheme (the counterpart of DistributedScheme for schemes
// without stage structure).
type RequestDistributedScheme struct {
	name string
	mk   func(cfg Config) requestChunker
}

func (d RequestDistributedScheme) Name() string { return d.name }

// Distributed marks the scheme as load-adaptive for sched.Distributed.
func (RequestDistributedScheme) Distributed() bool { return true }

func (d RequestDistributedScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &requestDistPolicy{
		counter: newCounter(cfg),
		cfg:     cfg,
		chunker: d.mk(cfg),
		total:   cfg.TotalPower(),
	}, nil
}

type requestDistPolicy struct {
	counter
	cfg     Config
	chunker requestChunker
	total   float64
}

func (rp *requestDistPolicy) Next(req Request) (Assignment, bool) {
	if rp.Remaining() == 0 {
		return Assignment{}, false
	}
	acp := req.ACP
	if acp <= 0 {
		acp = rp.cfg.Power(req.Worker)
	}
	share := acp * float64(rp.cfg.Workers) / rp.total
	size := RoundHalfEven.apply(rp.chunker.unit(rp.Remaining()) * share)
	return rp.take(size)
}

// dgssChunker: GSS's ⌈R/p⌉ with an optional minimum chunk.
type dgssChunker struct {
	p   int
	min int
}

func (c dgssChunker) unit(remaining int) float64 {
	v := math.Ceil(float64(remaining) / float64(c.p)) // GSS's ⌈R/p⌉
	if m := float64(c.min); v < m {
		v = m
	}
	return v
}

// dcssChunker: CSS's fixed k.
type dcssChunker struct{ k int }

func (c dcssChunker) unit(int) float64 { return float64(c.k) }

// NewDGSS returns Distributed Guided Self-Scheduling: each request is
// answered with ⌈R/A⌉·A_j iterations (minChunk < 1 means no floor).
// The paper sets GSS aside in favour of its linearised approximation
// TSS; DGSS completes the section-6 family for comparison.
func NewDGSS(minChunk int) Scheme {
	if minChunk < 1 {
		minChunk = 1
	}
	name := "DGSS"
	if minChunk > 1 {
		name = fmt.Sprintf("DGSS(%d)", minChunk)
	}
	return RequestDistributedScheme{name: name, mk: func(cfg Config) requestChunker {
		return dgssChunker{p: cfg.Workers, min: minChunk}
	}}
}

// NewDCSS returns Distributed Chunk Self-Scheduling: the fixed chunk
// k is scaled by each requester's power share, the load-aware version
// of CSS(k). k < 1 means 1.
func NewDCSS(k int) Scheme {
	if k < 1 {
		k = 1
	}
	return RequestDistributedScheme{name: fmt.Sprintf("DCSS(%d)", k),
		mk: func(cfg Config) requestChunker { return dcssChunker{k: k} }}
}

func init() {
	Register(NewDGSS(1))
	Register(NewDCSS(16))
}
