package sched

// WFScheme is Weighted Factoring (Hummel, Schmidt, Uma & Wein 1996):
// FSS stages whose per-worker chunk is scaled by the worker's *static*
// relative power w_j. The paper classifies it as NOT distributed —
// it uses the plan-time powers but never the run-time load — which
// makes it the natural ablation point between FSS and DFSS.
type WFScheme struct {
	// Alpha is the factoring parameter; values ≤ 0 select 2.
	Alpha float64
}

func (s WFScheme) alpha() float64 {
	if s.Alpha <= 0 {
		return 2
	}
	return s.Alpha
}

func (WFScheme) Name() string { return "WF" }

func (s WFScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &wfPolicy{
		counter: newCounter(cfg),
		cfg:     cfg,
		alpha:   s.alpha(),
		total:   cfg.TotalPower(),
	}, nil
}

type wfPolicy struct {
	counter
	cfg        Config
	alpha      float64
	total      float64
	slotsLeft  int
	stageTotal float64 // SC_k of the current stage
}

func (w *wfPolicy) Next(req Request) (Assignment, bool) {
	if w.Remaining() == 0 {
		return Assignment{}, false
	}
	if w.slotsLeft == 0 {
		w.stageTotal = float64(w.Remaining()) / w.alpha
		w.slotsLeft = w.cfg.Workers
	}
	w.slotsLeft--
	// Static weight only: requests never update powers (that is what
	// separates WF from the distributed schemes).
	pw := w.cfg.Power(req.Worker)
	size := RoundHalfEven.apply(w.stageTotal * pw / w.total)
	return w.take(size)
}

func init() {
	Register(WFScheme{})
}
