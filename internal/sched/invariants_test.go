package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allSchemes returns one instance of every scheme family, including
// parameterised variants, for invariant sweeps.
func allSchemes() []Scheme {
	return []Scheme{
		StaticScheme{},
		WeightedStaticScheme{},
		SelfScheduling,
		CSSScheme{K: 7},
		GSSScheme{},
		GSSScheme{MinChunk: 5},
		TSSScheme{},
		TSSScheme{First: 100, Last: 4},
		FSSScheme{},
		FSSScheme{Round: RoundCeil},
		FSSScheme{Alpha: 1.5},
		FISSScheme{},
		FISSScheme{Stages: 5},
		TFSSScheme{},
		WFScheme{},
		DTSSScheme{},
		NewDFSS(),
		NewDFISS(0),
		NewDFISS(4),
		NewDTFSS(),
	}
}

// TestCoverageInvariant: for every scheme, every iteration is assigned
// exactly once — chunks are positive, contiguous, non-overlapping and
// sum to I. This is the fundamental self-scheduling correctness
// property (equation (1): R_i = R_{i−1} − C_i down to 0).
func TestCoverageInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range allSchemes() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 40; trial++ {
				i := 1 + rng.Intn(5000)
				p := 1 + rng.Intn(12)
				var powers []float64
				if trial%2 == 1 {
					powers = make([]float64, p)
					for j := range powers {
						powers[j] = 0.5 + 3*rng.Float64()
					}
				}
				pol, err := s.NewPolicy(Config{Iterations: i, Workers: p, Powers: powers})
				if err != nil {
					t.Fatalf("I=%d p=%d: %v", i, p, err)
				}
				next := 0
				steps := 0
				for {
					a, ok := pol.Next(Request{Worker: steps % p})
					if !ok {
						break
					}
					steps++
					if a.Size < 1 {
						t.Fatalf("I=%d p=%d: non-positive chunk %+v", i, p, a)
					}
					if a.Start != next {
						t.Fatalf("I=%d p=%d: chunk %+v not contiguous (want start %d)", i, p, a, next)
					}
					next = a.End()
					if steps > 10*i+100 {
						t.Fatalf("I=%d p=%d: runaway policy (%d steps)", i, p, steps)
					}
				}
				if next != i {
					t.Fatalf("I=%d p=%d: covered %d of %d iterations", i, p, next, i)
				}
				if pol.Remaining() != 0 {
					t.Fatalf("I=%d p=%d: %d remaining after exhaustion", i, p, pol.Remaining())
				}
			}
		})
	}
}

// TestCoverageQuick drives the same invariant through testing/quick's
// input generation for the core schemes.
func TestCoverageQuick(t *testing.T) {
	check := func(s Scheme) func(i uint16, p uint8) bool {
		return func(i uint16, p uint8) bool {
			iterations := int(i)%4096 + 1
			workers := int(p)%16 + 1
			pol, err := s.NewPolicy(Config{Iterations: iterations, Workers: workers})
			if err != nil {
				return false
			}
			covered := 0
			for w := 0; ; w = (w + 1) % workers {
				a, ok := pol.Next(Request{Worker: w})
				if !ok {
					break
				}
				if a.Size < 1 || a.Start != covered {
					return false
				}
				covered = a.End()
			}
			return covered == iterations
		}
	}
	for _, s := range []Scheme{GSSScheme{}, TSSScheme{}, FSSScheme{}, FISSScheme{}, TFSSScheme{}, DTSSScheme{}, NewDTFSS()} {
		if err := quick.Check(check(s), &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

// TestMonotoneDecreasing: GSS, TSS and TFSS chunk sizes never grow
// within a run; FISS chunk sizes never shrink before the final stage.
func TestMonotoneDecreasing(t *testing.T) {
	for _, s := range []Scheme{GSSScheme{}, TSSScheme{}, TFSSScheme{}} {
		seq, err := Sequence(s, 3000, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] > seq[i-1] {
				t.Errorf("%s: chunk grew at step %d: %v", s.Name(), i, seq)
				break
			}
		}
	}
	seq, err := Sequence(FISSScheme{}, 3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(seq)-5; i++ { // final stage may absorb a remainder
		if seq[i] < seq[i-1] {
			t.Errorf("FISS: chunk shrank at step %d: %v", i, seq)
			break
		}
	}
}

// TestDistributedReducesToSimple: with all ACPs equal to 1, DFSS and
// DTFSS reproduce their simple counterparts chunk-for-chunk (section
// 6's construction is exact in the homogeneous case).
func TestDistributedReducesToSimple(t *testing.T) {
	cases := []struct {
		dist, simple Scheme
	}{
		{NewDFSS(), FSSScheme{}},
		{NewDTFSS(), TFSSScheme{}},
	}
	for _, c := range cases {
		for _, p := range []int{2, 4, 7} {
			for _, i := range []int{500, 1000, 4096} {
				got, err := Sequence(c.dist, i, p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Sequence(c.simple, i, p)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s vs %s I=%d p=%d: %d vs %d chunks\n%v\n%v",
						c.dist.Name(), c.simple.Name(), i, p, len(got), len(want), got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s vs %s I=%d p=%d chunk %d: %d vs %d",
							c.dist.Name(), c.simple.Name(), i, p, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestDFISSApproximatesFISS: the paper's DFISS bump formula rounds up
// where FISS rounds down, so the reduction is approximate: same stage
// structure, stage chunks within one iteration per unit power.
func TestDFISSApproximatesFISS(t *testing.T) {
	got, err := Sequence(NewDFISS(0), 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Sequence(FISSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(got) != 1000 || Sum(want) != 1000 {
		t.Fatalf("coverage: %d vs %d", Sum(got), Sum(want))
	}
	if len(got) != len(want) {
		t.Fatalf("stage structure differs: %v vs %v", got, want)
	}
	for j := range got {
		diff := got[j] - want[j]
		if diff < -2 || diff > 2 {
			t.Errorf("chunk %d: DFISS %d vs FISS %d", j, got[j], want[j])
		}
	}
}

// TestDistributedProportionality: a worker with twice the ACP receives
// about twice the iterations within a stage.
func TestDistributedProportionality(t *testing.T) {
	for _, s := range []Scheme{NewDFSS(), NewDFISS(0), NewDTFSS()} {
		cfg := Config{Iterations: 10000, Workers: 2, Powers: []float64{1, 2}}
		pol, err := s.NewPolicy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a0, ok0 := pol.Next(Request{Worker: 0, ACP: 1})
		a1, ok1 := pol.Next(Request{Worker: 1, ACP: 2})
		if !ok0 || !ok1 {
			t.Fatalf("%s: stage starved", s.Name())
		}
		ratio := float64(a1.Size) / float64(a0.Size)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%s: first-stage ratio %.2f (chunks %d, %d), want ≈2",
				s.Name(), ratio, a0.Size, a1.Size)
		}
	}
}

// TestDTSSProportionality checks the DTSS per-request formula: early
// chunks scale with A_i and later chunks shrink (trapezoid descent).
func TestDTSSProportionality(t *testing.T) {
	cfg := Config{Iterations: 100000, Workers: 2, Powers: []float64{10, 30}}
	pol, err := DTSSScheme{}.NewPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := pol.Next(Request{Worker: 0, ACP: 10})
	a1, _ := pol.Next(Request{Worker: 1, ACP: 30})
	if a1.Size < 2*a0.Size {
		t.Errorf("DTSS: power-30 chunk %d not ≫ power-10 chunk %d", a1.Size, a0.Size)
	}
	// Descent: drain the policy as worker 0 and verify late chunks are
	// smaller than the first.
	var last Assignment
	for {
		a, ok := pol.Next(Request{Worker: 0, ACP: 10})
		if !ok {
			break
		}
		last = a
	}
	if last.Size >= a0.Size {
		t.Errorf("DTSS: final chunk %d not smaller than first %d", last.Size, a0.Size)
	}
}

// TestNoUnitChunkTail is a regression test: with N floored (the
// paper's literal formula) the trapezoid undershoots I and TSS/TFSS
// drain the gap as thousands of single-iteration chunks. With the
// ceiling the whole loop is covered in roughly N scheduling steps.
func TestNoUnitChunkTail(t *testing.T) {
	for _, s := range []Scheme{TSSScheme{}, TFSSScheme{}, DTSSScheme{}, NewDTFSS()} {
		for _, i := range []int{10000, 100000, 999999} {
			seq, err := Sequence(s, i, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) > 64 {
				t.Errorf("%s I=%d: %d scheduling steps (unit-chunk tail?)", s.Name(), i, len(seq))
			}
		}
	}
}

// TestOffset verifies the re-plan helper shifts assignments.
func TestOffset(t *testing.T) {
	pol, err := GSSScheme{}.NewPolicy(Config{Iterations: 100, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	off := Offset(pol, 400)
	a, ok := off.Next(Request{})
	if !ok || a.Start != 400 {
		t.Fatalf("offset start = %d, want 400", a.Start)
	}
	if off.Remaining() != 100-a.Size {
		t.Fatalf("offset remaining = %d", off.Remaining())
	}
}

// TestConfigValidate exercises the error paths.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Iterations: -1, Workers: 1},
		{Iterations: 10, Workers: 0},
		{Iterations: 10, Workers: 2, Powers: []float64{1}},
		{Iterations: 10, Workers: 2, Powers: []float64{1, -1}},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if _, err := (GSSScheme{}).NewPolicy(cfg); err == nil {
			t.Errorf("NewPolicy(%+v) = nil error", cfg)
		}
	}
	good := Config{Iterations: 0, Workers: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate empty loop: %v", err)
	}
	pol, err := GSSScheme{}.NewPolicy(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pol.Next(Request{}); ok {
		t.Error("empty loop yielded a chunk")
	}
}

// TestRegistry checks Lookup/Names round-trips.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"SS", "GSS", "TSS", "FSS", "FISS", "TFSS", "DTSS", "DFSS", "DFISS", "DTFSS", "WF", "S"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded")
	}
	names := Names()
	if len(names) < 12 {
		t.Errorf("only %d registered schemes: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

// TestDistributedFlag checks the paper's classification: WF is not
// distributed, the D* schemes are.
func TestDistributedFlag(t *testing.T) {
	if Distributed(WFScheme{}) {
		t.Error("WF must not be classified distributed (section 6)")
	}
	if Distributed(FSSScheme{}) || Distributed(TSSScheme{}) {
		t.Error("simple schemes classified distributed")
	}
	for _, s := range []Scheme{DTSSScheme{}, NewDFSS(), NewDFISS(0), NewDTFSS()} {
		if !Distributed(s) {
			t.Errorf("%s must be distributed", s.Name())
		}
	}
}

// TestRounding covers the three rounding rules.
func TestRounding(t *testing.T) {
	cases := []struct {
		x    float64
		he   int
		ceil int
		fl   int
	}{
		{62.5, 62, 63, 62},
		{31.5, 32, 32, 31},
		{0.5, 1, 1, 1}, // floor of 1 everywhere
		{2.0, 2, 2, 2},
		{2.3, 2, 3, 2},
		{2.7, 3, 3, 2},
		{-1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := RoundHalfEven.apply(c.x); got != c.he {
			t.Errorf("half-even(%g) = %d, want %d", c.x, got, c.he)
		}
		if got := RoundCeil.apply(c.x); got != c.ceil {
			t.Errorf("ceil(%g) = %d, want %d", c.x, got, c.ceil)
		}
		if got := RoundFloor.apply(c.x); got != c.fl {
			t.Errorf("floor(%g) = %d, want %d", c.x, got, c.fl)
		}
	}
}
