package sched

import (
	"strings"
	"testing"
)

// TestCatalogueCoversRegistry: every catalogued family has a runnable
// registered implementation (TreeS/AFS live outside the registry).
func TestCatalogueCoversRegistry(t *testing.T) {
	external := map[string]bool{"TreeS": true, "AFS": true}
	registered := map[string]bool{}
	for _, n := range Names() {
		// Strip parameter suffixes: "CSS(16)" → "CSS".
		base := n
		if i := strings.IndexByte(base, '('); i > 0 {
			base = base[:i]
		}
		registered[base] = true
	}
	for _, info := range Catalogue() {
		if external[info.Name] {
			continue
		}
		if !registered[info.Name] {
			t.Errorf("catalogued scheme %q has no registered implementation", info.Name)
		}
	}
	// And the paper's new schemes are marked.
	marked := 0
	for _, info := range Catalogue() {
		if info.PaperNew {
			marked++
		}
	}
	if marked != 4 { // TFSS, DFSS, DFISS, DTFSS
		t.Errorf("%d schemes marked as paper-new, want 4", marked)
	}
}

func TestCatalogueSorted(t *testing.T) {
	infos := Catalogue()
	for i := 1; i < len(infos); i++ {
		a, b := infos[i-1], infos[i]
		if a.Category > b.Category || (a.Category == b.Category && a.Name >= b.Name) {
			t.Fatalf("catalogue unsorted at %d: %s/%s then %s/%s",
				i, a.Category, a.Name, b.Category, b.Name)
		}
	}
	for _, info := range infos {
		if info.Formula == "" || info.Origin == "" || info.Strengths == "" || info.Weaknesses == "" {
			t.Errorf("%s: incomplete info %+v", info.Name, info)
		}
	}
}

func TestDescribe(t *testing.T) {
	all := Describe("")
	for _, want := range []string{"TFSS", "DTSS", "★", "chunk rule", "Tzen & Ni"} {
		if !strings.Contains(all, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
	only := Describe("TSS")
	if !strings.Contains(only, "TSS (simple)") || strings.Contains(only, "DTSS") {
		t.Errorf("name filter broken:\n%s", only)
	}
	cat := Describe("distributed")
	if strings.Contains(cat, "TSS (simple)") || !strings.Contains(cat, "DTSS") {
		t.Errorf("category filter broken")
	}
}
