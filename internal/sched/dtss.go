package sched

// DTSSScheme is Distributed Trapezoid Self-Scheduling (Xu &
// Chronopoulos 1999, as improved in section 5.2 of the paper). The
// master computes the trapezoid with p := A (the total available
// computing power) and answers a request from slave P_i, whose ACP is
// A_i, with
//
//	C = A_i · (F − D·(S_{i−1} + (A_i − 1)/2))
//
// where S_{i−1} is the cumulative ACP of all previously answered
// requests: the slave receives the A_i consecutive unit-power chunks
// it is entitled to, collapsed into one message. Slaves piggy-back a
// fresh A_i on every request; the master (see the executors) re-plans
// when more than half of them changed.
type DTSSScheme struct {
	// Last overrides the trapezoid's final chunk size L (default 1).
	Last int
}

func (DTSSScheme) Name() string { return "DTSS" }

// Distributed marks the scheme as load-adaptive for sched.Distributed.
func (DTSSScheme) Distributed() bool { return true }

func (s DTSSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := cfg.TotalPower()
	aInt := RoundNearest(a)
	if aInt < 1 {
		aInt = 1
	}
	prm := ComputeTSSParams(cfg.Iterations, aInt, 0, s.Last)
	return &dtssPolicy{
		counter: newCounter(cfg),
		cfg:     cfg,
		f:       float64(prm.F),
		l:       float64(prm.L),
		// D is kept fractional: with p = A the integer ⌊(F−L)/(N−1)⌋
		// collapses to 0 for large A and the trapezoid would
		// degenerate into fixed chunks.
		d: trapezoidSlope(cfg.Iterations, prm),
	}, nil
}

// trapezoidSlope returns the real-valued decrement (F−L)/(N−1).
func trapezoidSlope(iterations int, prm TSSParams) float64 {
	if prm.N <= 1 {
		return 0
	}
	return float64(prm.F-prm.L) / float64(prm.N-1)
}

type dtssPolicy struct {
	counter
	cfg Config
	f   float64 // first chunk per unit power
	l   float64 // last chunk per unit power
	d   float64 // slope per unit power
	s   float64 // S_{i−1}: cumulative ACP of previous assignments
}

func (t *dtssPolicy) Next(req Request) (Assignment, bool) {
	acp := req.ACP
	if acp <= 0 {
		acp = t.cfg.Power(req.Worker)
	}
	if acp < 1 {
		acp = 1
	}
	perUnit := t.f - t.d*(t.s+(acp-1)/2)
	if perUnit < t.l {
		perUnit = t.l
	}
	size := RoundNearest(acp * perUnit)
	t.s += acp
	return t.take(size)
}

func init() {
	Register(DTSSScheme{})
}
