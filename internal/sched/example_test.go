package sched_test

import (
	"fmt"

	"loopsched/internal/sched"
)

// The paper's Table 1, one row at a time.

func ExampleSequence() {
	seq, _ := sched.Sequence(sched.FSSScheme{}, 1000, 4)
	fmt.Println(seq[:8])
	// Output: [125 125 125 125 62 62 62 62]
}

func ExampleTrapezoidNominal() {
	fmt.Println(sched.TrapezoidNominal(1000, 4))
	// Output: [125 117 109 101 93 85 77 69 61 53 45 37 29 21 13 5]
}

func ExampleTFSSNominal() {
	fmt.Println(sched.TFSSNominal(1000, 4)[:4])
	// Output: [113 113 113 113]
}

// A distributed policy sizes each chunk by the requester's available
// computing power.
func ExampleDTSSScheme() {
	pol, _ := sched.DTSSScheme{}.NewPolicy(sched.Config{
		Iterations: 10000,
		Workers:    2,
		Powers:     []float64{10, 30}, // slow and fast slave ACPs
	})
	slow, _ := pol.Next(sched.Request{Worker: 0, ACP: 10})
	fast, _ := pol.Next(sched.Request{Worker: 1, ACP: 30})
	fmt.Println(fast.Size > 2*slow.Size)
	// Output: true
}

func ExampleWithMinChunk() {
	seq, _ := sched.Sequence(sched.WithMinChunk(sched.GSSScheme{}, 50), 1000, 4)
	fmt.Println(seq)
	// Output: [250 188 141 106 79 59 50 50 50 27]
}
