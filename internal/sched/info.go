package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Info documents one scheme family for humans: the chunk formula, its
// origin, and where it sits in the paper's taxonomy. cmd/loopsched
// -describe renders the catalogue.
type Info struct {
	Name        string
	Category    string // "static", "simple", "weighted", "distributed"
	Formula     string // chunk-size rule, paper notation
	Origin      string // citation
	Strengths   string
	Weaknesses  string
	PaperNew    bool   // introduced by the reproduced paper
	PaperNumber string // section of the reproduced paper
}

// Catalogue returns the documented scheme families, sorted by category
// then name. It is data, not behaviour: the executable definitions
// live in the Scheme implementations.
func Catalogue() []Info {
	infos := []Info{
		{
			Name: "S", Category: "static",
			Formula:     "C = ⌈I/p⌉, one chunk per PE",
			Origin:      "folklore",
			Strengths:   "one scheduling message per PE",
			Weaknesses:  "no adaptation at all; worst imbalance on heterogeneous or irregular runs",
			PaperNumber: "§2.2 (Example 1)",
		},
		{
			Name: "WS", Category: "weighted",
			Formula:     "C_j = I·V_j/V, one chunk per PE",
			Origin:      "folklore; the paper's §3.1 weighting example",
			Strengths:   "corrects for known speed differences at zero run-time cost",
			Weaknesses:  "static: blind to load and to irregular iteration costs",
			PaperNumber: "§3.1",
		},
		{
			Name: "SS", Category: "simple",
			Formula:     "C = 1",
			Origin:      "Tang & Yew 1986",
			Strengths:   "perfect balance",
			Weaknesses:  "one request round-trip per iteration",
			PaperNumber: "§2.2",
		},
		{
			Name: "CSS", Category: "simple",
			Formula:     "C = k (user-chosen)",
			Origin:      "Kruskal & Weiss 1985",
			Strengths:   "amortises scheduling overhead",
			Weaknesses:  "optimal k is workload-dependent; non-adaptive",
			PaperNumber: "§2.2",
		},
		{
			Name: "GSS", Category: "simple",
			Formula:     "C_i = ⌈R_{i−1}/p⌉",
			Origin:      "Polychronopoulos & Kuck 1987",
			Strengths:   "large chunks early, fine balance late",
			Weaknesses:  "floods the master with unit chunks at the tail (GSS(k) caps it)",
			PaperNumber: "§2.2",
		},
		{
			Name: "TSS", Category: "simple",
			Formula:     "C_i = C_{i−1} − D, F = ⌊I/2p⌋ … L = 1, N = ⌈2I/(F+L)⌉",
			Origin:      "Tzen & Ni 1993",
			Strengths:   "linear decrease ≈ GSS with far fewer steps; best simple scheme in the paper",
			Weaknesses:  "a mid-run chunk on a slow PE becomes the critical chunk",
			PaperNumber: "§2.2",
		},
		{
			Name: "FSS", Category: "simple",
			Formula:     "stages of p chunks, C = R/(2p) per stage",
			Origin:      "Hummel, Schonberg & Flynn 1992",
			Strengths:   "probabilistically robust to irregular costs",
			Weaknesses:  "α is hard to tune; stage barrier semantics",
			PaperNumber: "§2.2",
		},
		{
			Name: "FISS", Category: "simple",
			Formula:     "C_{i+1} = C_i + B, σ stages, C_0 = ⌊I/(σ+2)p⌋",
			Origin:      "Philip & Das 1997",
			Strengths:   "fewest scheduling steps (σ·p)",
			Weaknesses:  "growing chunks put the biggest chunk last — risky on heterogeneous PEs",
			PaperNumber: "§2.2",
		},
		{
			Name: "TFSS", Category: "simple",
			Formula:     "stages of p chunks, C = mean of next p TSS chunks",
			Origin:      "THIS PAPER (Chronopoulos et al. 2001)",
			Strengths:   "TSS's linear decrease with FSS's stage structure; second-best simple scheme",
			Weaknesses:  "inherits TSS's critical-chunk exposure",
			PaperNew:    true,
			PaperNumber: "§4",
		},
		{
			Name: "WF", Category: "weighted",
			Formula:     "FSS stage totals split ∝ static weights w_j",
			Origin:      "Hummel, Schmidt, Uma & Wein 1996",
			Strengths:   "heterogeneity-aware without run-time cost",
			Weaknesses:  "the paper's §6 point: NOT distributed — blind to run-time load",
			PaperNumber: "§3/§6",
		},
		{
			Name: "DTSS", Category: "distributed",
			Formula:     "C = A_i·(F − D·(S_{i−1} + (A_i−1)/2)), p := A",
			Origin:      "Xu & Chronopoulos 1999; §5.2 fixes in this paper",
			Strengths:   "best distributed scheme in the paper's tables, both modes",
			Weaknesses:  "scale factor must stay small relative to I/p or F degenerates to 1",
			PaperNumber: "§3.1/§5.2",
		},
		{
			Name: "DFSS", Category: "distributed",
			Formula:     "SC_k = R/2 split as C_j = SC_k·A_j/A",
			Origin:      "THIS PAPER §6",
			Strengths:   "factoring's robustness plus load awareness",
			Weaknesses:  "stage totals fixed between re-plans",
			PaperNew:    true,
			PaperNumber: "§6",
		},
		{
			Name: "DFISS", Category: "distributed",
			Formula:     "SC_0 = ⌊I/X⌋, SC += B; C_j = SC_k·A_j/A",
			Origin:      "THIS PAPER §6",
			Strengths:   "fewest messages of the distributed family",
			Weaknesses:  "benefits most from the majority re-plan (plan-time stage totals)",
			PaperNew:    true,
			PaperNumber: "§6",
		},
		{
			Name: "DTFSS", Category: "distributed",
			Formula:     "TSS(p := A) group sums split as C_j = SC_k·A_j/A",
			Origin:      "THIS PAPER §6",
			Strengths:   "the new TFSS lifted to heterogeneous clusters",
			Weaknesses:  "as DTSS for degenerate F",
			PaperNew:    true,
			PaperNumber: "§6",
		},
		{
			Name: "DGSS", Category: "distributed",
			Formula:     "C_j = ⌈R/p⌉·(A_j·p/A) per request",
			Origin:      "this repo, completing §6's \"any scheme can become distributed\"",
			Strengths:   "per-request adaptation, no stage state",
			Weaknesses:  "inherits GSS's tail behaviour",
			PaperNumber: "§6 (extension)",
		},
		{
			Name: "DCSS", Category: "distributed",
			Formula:     "C_j = k·(A_j·p/A) per request",
			Origin:      "this repo, same lift",
			Strengths:   "fixed-chunk simplicity, load-scaled",
			Weaknesses:  "k remains workload-dependent",
			PaperNumber: "§6 (extension)",
		},
		{
			Name: "AWF", Category: "distributed",
			Formula:     "FSS stage totals split ∝ measured rates (EWMA feedback)",
			Origin:      "Banicescu & Liu lineage (extension)",
			Strengths:   "adapts to effects the run queue cannot see",
			Weaknesses:  "needs a chunk per worker before weights are informed",
			PaperNumber: "extension",
		},
		{
			Name: "TreeS", Category: "distributed",
			Formula:     "even/weighted split; idle PE takes half a tree partner's remainder",
			Origin:      "Kim & Purtilo 1996",
			Strengths:   "no central scheduling bottleneck",
			Weaknesses:  "fixed partners limit migration; results still funnel to one coordinator",
			PaperNumber: "§5/§6 comparison",
		},
		{
			Name: "AFS", Category: "distributed",
			Formula:     "local queues in ⌈rem/k⌉ chunks; idle PE steals 1/p of the most loaded",
			Origin:      "Markatos & LeBlanc 1994 (the paper's ref [12])",
			Strengths:   "global victim selection beats fixed partners on skewed loads",
			Weaknesses:  "directory lookups add latency; shared-memory assumptions stretched",
			PaperNumber: "related work",
		},
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Category != infos[j].Category {
			return infos[i].Category < infos[j].Category
		}
		return infos[i].Name < infos[j].Name
	})
	return infos
}

// Describe renders the catalogue as text; filter (empty = all) matches
// a category or a scheme name.
func Describe(filter string) string {
	var sb strings.Builder
	for _, info := range Catalogue() {
		if filter != "" && !strings.EqualFold(filter, info.Category) &&
			!strings.EqualFold(filter, info.Name) {
			continue
		}
		star := ""
		if info.PaperNew {
			star = "  ★ introduced by the reproduced paper"
		}
		fmt.Fprintf(&sb, "%s (%s)%s\n", info.Name, info.Category, star)
		fmt.Fprintf(&sb, "  chunk rule: %s\n", info.Formula)
		fmt.Fprintf(&sb, "  origin:     %s  [%s]\n", info.Origin, info.PaperNumber)
		fmt.Fprintf(&sb, "  +           %s\n", info.Strengths)
		fmt.Fprintf(&sb, "  -           %s\n\n", info.Weaknesses)
	}
	return sb.String()
}
