// Package sched implements the loop self-scheduling schemes studied in
// Chronopoulos, Andonie, Benche and Grosu, "A Class of Loop
// Self-Scheduling for Heterogeneous Clusters" (CLUSTER 2001).
//
// A Scheme is a factory: given the run configuration (total iteration
// count I, worker count p, and — for the distributed schemes — the
// workers' available computing powers), it produces a Policy. The
// master calls Policy.Next once per slave request and hands the
// returned half-open iteration range to the slave. All chunk-size
// arithmetic from the paper (equation (1) and the per-scheme formulas
// of sections 2, 4 and 6) lives behind this interface; masters,
// simulators and executors are scheme-agnostic.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Config describes one scheduling run.
type Config struct {
	// Iterations is I, the total number of loop iterations to schedule.
	Iterations int
	// Workers is p, the number of slave PEs.
	Workers int
	// Powers, if non-nil, holds the available computing power A_j of
	// each worker at plan time (len == Workers). Distributed schemes
	// use these; simple schemes ignore them. A nil Powers means a
	// homogeneous system (every A_j = 1).
	Powers []float64
	// NoClip disables clipping chunk sizes to the remaining iteration
	// count. It exists only so that the Table 1 generator can print
	// the nominal sequences exactly as the paper does; real runs must
	// leave it false.
	NoClip bool
}

// TotalPower returns A, the total available computing power, which is
// the worker count when Powers is nil (homogeneous system).
func (c Config) TotalPower() float64 {
	if c.Powers == nil {
		return float64(c.Workers)
	}
	var a float64
	for _, p := range c.Powers {
		a += p
	}
	return a
}

// Power returns worker w's power (1 when Powers is nil).
func (c Config) Power(w int) float64 {
	if c.Powers == nil || w < 0 || w >= len(c.Powers) {
		return 1
	}
	return c.Powers[w]
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Iterations < 0 {
		return fmt.Errorf("sched: negative iteration count %d", c.Iterations)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("sched: worker count %d must be positive", c.Workers)
	}
	if c.Powers != nil {
		if len(c.Powers) != c.Workers {
			return fmt.Errorf("sched: %d powers for %d workers", len(c.Powers), c.Workers)
		}
		for i, p := range c.Powers {
			if p <= 0 {
				return fmt.Errorf("sched: worker %d has non-positive power %g", i, p)
			}
		}
	}
	return nil
}

// Request is one slave's demand for work.
type Request struct {
	// Worker identifies the requesting slave (0-based).
	Worker int
	// ACP is the slave's available computing power attached to the
	// request (the paper's A_i, piggy-backed on every request in the
	// distributed schemes). Zero or negative means "unknown": the
	// policy falls back to the power recorded at plan time.
	ACP float64
}

// Assignment is the master's reply: work on iterations
// [Start, Start+Size).
type Assignment struct {
	Start int
	Size  int
}

// End returns the first iteration index past the assignment.
func (a Assignment) End() int { return a.Start + a.Size }

// Policy computes successive chunk sizes for a single run. Policies
// are not safe for concurrent use; the master serialises requests
// (which is exactly the paper's centralized model — the serialisation
// is what the simulator charges as master contention).
type Policy interface {
	// Next returns the next assignment for the requesting worker and
	// true, or a zero Assignment and false when no iterations remain.
	Next(req Request) (Assignment, bool)
	// Remaining returns the number of still-unassigned iterations.
	Remaining() int
}

// Scheme creates policies. Implementations are immutable and safe for
// concurrent use; all mutable state lives in the Policy.
type Scheme interface {
	// Name returns the scheme's canonical short name (e.g. "TSS").
	Name() string
	// NewPolicy builds the per-run state. It fails only on invalid
	// configuration.
	NewPolicy(cfg Config) (Policy, error)
}

// Distributed reports whether the scheme consumes run-time ACP
// information (the paper's definition in section 6: distributed
// schemes use both the initial powers and the run-queue lengths).
// Weighted Factoring, which uses only static weights, reports false.
func Distributed(s Scheme) bool {
	type distributed interface{ Distributed() bool }
	if d, ok := s.(distributed); ok {
		return d.Distributed()
	}
	return false
}

// FixedChunker is implemented by schemes whose policies hand every
// requester the same fixed chunk size regardless of request order or
// worker identity (SS, CSS). For those, "next chunk" reduces to a
// fetch-and-add on a shared iteration counter, so a master may grant
// without serialising requests through the policy lock. Stage-based
// schemes (GSS, TSS, factoring, ...) cannot implement this: their
// chunk size depends on how much has already been assigned.
type FixedChunker interface {
	Scheme
	// FixedChunk returns the constant chunk size the scheme would use
	// under cfg, and true; or 0 and false when the configuration makes
	// the size non-constant.
	FixedChunk(cfg Config) (int, bool)
}

// FixedChunk reports the constant chunk size of s under cfg, when s
// grants one. The final chunk is still clipped to the remaining
// iterations, exactly as the policy's counter would (equation (1));
// clipping does not disqualify a scheme.
func FixedChunk(s Scheme, cfg Config) (int, bool) {
	f, ok := s.(FixedChunker)
	if !ok || cfg.NoClip {
		return 0, false
	}
	return f.FixedChunk(cfg)
}

// StepDeterministicScheme is implemented by schemes whose chunk
// sequence is a pure function of the scheduling step: the k-th chunk
// handed out has the same start and size no matter which worker asked
// for it, what ACP it attached, or how requests interleaved. For those
// schemes the whole sequence can be precomputed into a prefix table
// and "next chunk" collapses to a fetch-and-add on a shared step
// counter (the distributed chunk-calculation model of
// arXiv:2101.07050) — see internal/ledger. Schemes that read
// Request.Worker or Request.ACP, or that re-plan from run-time
// feedback, must not implement this.
type StepDeterministicScheme interface {
	Scheme
	// StepDeterministic reports whether every policy the scheme builds
	// ignores the request entirely (worker identity and ACP alike).
	StepDeterministic() bool
}

// StepDeterministic reports whether s declares its chunk sequence to
// be a pure function of the scheduling step. The default — for schemes
// that do not implement StepDeterministicScheme — is false, so new
// schemes are conservatively kept on the master path until they opt
// in.
func StepDeterministic(s Scheme) bool {
	if d, ok := s.(StepDeterministicScheme); ok {
		return d.StepDeterministic()
	}
	return false
}

// counter is the shared bookkeeping every policy embeds: the next
// iteration index and clipping per equation (1) of the paper.
type counter struct {
	next   int // first unassigned iteration
	total  int // I
	noClip bool
}

func newCounter(cfg Config) counter {
	return counter{total: cfg.Iterations, noClip: cfg.NoClip}
}

func (c *counter) Remaining() int {
	if r := c.total - c.next; r > 0 {
		return r
	}
	return 0
}

// take converts a desired chunk size into an assignment, enforcing a
// minimum chunk of one iteration and clipping to the remaining count
// (unless NoClip, in which case only exhaustion stops the run).
func (c *counter) take(size int) (Assignment, bool) {
	rem := c.Remaining()
	if rem == 0 {
		return Assignment{}, false
	}
	if size < 1 {
		size = 1
	}
	if !c.noClip && size > rem {
		size = rem
	}
	a := Assignment{Start: c.next, Size: size}
	c.next += size
	return a, true
}

// ErrUnknownScheme is returned by Lookup for unregistered names.
var ErrUnknownScheme = errors.New("sched: unknown scheme")

var (
	registryMu sync.RWMutex
	registry   = map[string]Scheme{} // keyed by canonical (upper-case) name
)

// canonical folds a scheme name for case-insensitive lookup.
func canonical(name string) string { return strings.ToUpper(name) }

// Register makes a scheme available to Lookup and Names. The standard
// schemes register themselves; callers may add their own. Registering
// a duplicate name (compared case-insensitively) panics, mirroring
// database/sql's driver registry.
func Register(s Scheme) {
	registryMu.Lock()
	defer registryMu.Unlock()
	key := canonical(s.Name())
	if _, dup := registry[key]; dup {
		panic("sched: duplicate registration of " + s.Name())
	}
	registry[key] = s
}

// Lookup finds a registered scheme by name. Matching is
// case-insensitive: "tss", "TSS" and "Tss" all resolve to TSS.
func Lookup(name string) (Scheme, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[canonical(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, name)
	}
	return s, nil
}

// Names returns all registered scheme names (in their canonical
// spelling, as reported by Scheme.Name), sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return names
}
