package sched

import "fmt"

// FSSScheme is Factoring Self-Scheduling (Hummel, Schonberg & Flynn
// 1992): iterations are scheduled in stages of p equal chunks, with
// the stage chunk C = R/(α·p) recomputed from the remaining count R at
// every stage boundary. The suboptimal-but-robust α = 2 (half the
// remaining work per stage) is the paper's choice and our default.
type FSSScheme struct {
	// Alpha is the factoring parameter; values ≤ 0 select 2.
	Alpha float64
	// Round picks the integer-rounding rule for R/(α·p); the zero
	// value (RoundHalfEven) reproduces the paper's Table 1 row.
	Round Rounding
}

func (s FSSScheme) alpha() float64 {
	if s.Alpha <= 0 {
		return 2
	}
	return s.Alpha
}

func (s FSSScheme) Name() string {
	if s.alpha() == 2 && s.Round == RoundHalfEven {
		return "FSS"
	}
	return fmt.Sprintf("FSS(α=%g,%s)", s.alpha(), s.Round)
}

func (s FSSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	alpha, round := s.alpha(), s.Round
	p := cfg.Workers
	return &stagePolicy{
		counter: newCounter(cfg),
		p:       p,
		nextChunk: func(_, remaining int) int {
			return round.apply(float64(remaining) / (alpha * float64(p)))
		},
	}, nil
}

// StepDeterministic: stage boundaries fall every p grants and the
// stage chunk is recomputed from the remaining count alone.
func (FSSScheme) StepDeterministic() bool { return true }

func init() {
	Register(FSSScheme{})
}
