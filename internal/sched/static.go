package sched

// StaticScheme is the paper's baseline "S": the iteration space is
// divided into p equal chunks, one per worker, decided entirely at
// plan time. It is the degenerate self-scheduling scheme (one request
// per worker) and the usual strawman for load imbalance on
// heterogeneous systems.
type StaticScheme struct{}

func (StaticScheme) Name() string { return "S" }

func (s StaticScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &staticPolicy{counter: newCounter(cfg), p: cfg.Workers}, nil
}

type staticPolicy struct {
	counter
	p      int
	issued int
}

func (s *staticPolicy) Next(req Request) (Assignment, bool) {
	if s.issued >= s.p {
		return Assignment{}, false
	}
	// Spread the remainder over the first I mod p chunks so every
	// chunk size differs by at most one (250 250 250 250 in the
	// paper's Example 1).
	rem := s.Remaining()
	left := s.p - s.issued
	size := rem / left
	if rem%left != 0 {
		size++
	}
	s.issued++
	return s.take(size)
}

// StepDeterministic: the p equal chunks depend only on issue order;
// the policy never reads the request. (WS, by contrast, sizes each
// chunk from Request.Worker's power and must stay on the master path.)
func (StaticScheme) StepDeterministic() bool { return true }

// WeightedStaticScheme divides the iteration space proportionally to
// the workers' powers in a single plan-time allocation. It is the
// static scheme the paper uses to introduce weighting in section 3.1
// (the 75/75/125/250 example) and the initial allocation of the
// distributed Tree Scheduling variant.
type WeightedStaticScheme struct{}

func (WeightedStaticScheme) Name() string { return "WS" }

func (s WeightedStaticScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &weightedStaticPolicy{counter: newCounter(cfg), cfg: cfg}, nil
}

type weightedStaticPolicy struct {
	counter
	cfg    Config
	issued int
	power  float64 // powers already served
}

func (s *weightedStaticPolicy) Next(req Request) (Assignment, bool) {
	if s.issued >= s.cfg.Workers {
		return Assignment{}, false
	}
	w := req.Worker
	if w < 0 || w >= s.cfg.Workers {
		w = s.issued
	}
	pw := req.ACP
	if pw <= 0 {
		pw = s.cfg.Power(w)
	}
	total := s.cfg.TotalPower() - s.power
	if total <= 0 {
		total = pw
	}
	size := RoundNearest(float64(s.Remaining()) * pw / total)
	s.issued++
	s.power += pw
	if s.issued == s.cfg.Workers {
		size = s.Remaining() // last request takes whatever is left
	}
	return s.take(size)
}

func init() {
	Register(StaticScheme{})
	Register(WeightedStaticScheme{})
}
