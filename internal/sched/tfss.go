package sched

import "fmt"

// TFSSScheme is the paper's new scheme, Trapezoid Factoring
// Self-Scheduling (section 4): it schedules in FSS-style stages of p
// equal chunks, but sizes each stage as the mean of the next p chunks
// of the nominal TSS sequence, so the stage chunk decreases linearly
// like TSS instead of geometrically like FSS. Example 2 of the paper:
// for I = 1000, p = 4 the TSS sequence 125 117 109 101 | 93 85 77 69 |
// ... yields TFSS stages 113, 81, 49, 17.
type TFSSScheme struct {
	// First and Last override the underlying trapezoid endpoints,
	// exactly as in TSSScheme.
	First, Last int
}

func (s TFSSScheme) Name() string {
	if s.First == 0 && s.Last <= 1 {
		return "TFSS"
	}
	return fmt.Sprintf("TFSS(%d,%d)", s.First, s.Last)
}

func (s TFSSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prm := ComputeTSSParams(cfg.Iterations, cfg.Workers, s.First, s.Last)
	p := cfg.Workers
	cTSS := prm.F // head of the nominal TSS sequence
	return &stagePolicy{
		counter: newCounter(cfg),
		p:       p,
		nextChunk: func(_, _ int) int {
			// Sum the next p nominal TSS chunks (each at least L) and
			// divide by p.
			sum := 0
			for j := 0; j < p; j++ {
				c := cTSS - j*prm.D
				if c < prm.L {
					c = prm.L
				}
				sum += c
			}
			cTSS -= p * prm.D
			return RoundHalfEven.apply(float64(sum) / float64(p))
		},
	}, nil
}

// StepDeterministic: the stage means come from the nominal TSS
// sequence, fixed at plan time.
func (TFSSScheme) StepDeterministic() bool { return true }

func init() {
	Register(TFSSScheme{})
}
