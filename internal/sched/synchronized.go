package sched

import "sync"

// Synchronized wraps a policy with a mutex so callers can drive it
// directly from multiple goroutines without building a master loop —
// the in-process equivalent of the paper's lock on the loop index
// variable ("requesting PE acquire a lock on the loop index variable
// in order to be assigned new iterations", §2.2). Feedback support is
// preserved when the wrapped policy learns.
func Synchronized(p Policy) Policy {
	s := &syncPolicy{p: p}
	if fb, ok := p.(FeedbackPolicy); ok {
		return &syncFeedbackPolicy{syncPolicy: s, fb: fb}
	}
	return s
}

type syncPolicy struct {
	mu sync.Mutex
	p  Policy
}

func (s *syncPolicy) Next(req Request) (Assignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Next(req)
}

func (s *syncPolicy) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Remaining()
}

type syncFeedbackPolicy struct {
	*syncPolicy
	fb FeedbackPolicy
}

func (s *syncFeedbackPolicy) Feedback(worker int, work, elapsed float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fb.Feedback(worker, work, elapsed)
}

// ForEach is the paper's self-scheduled DOALL as a library one-liner:
// it runs body(i) for every i in [0, n) on `workers` goroutines,
// claiming chunks from the scheme through a synchronized policy. It is
// the minimal shared-memory counterpart of exec.Local (no ACP, no
// per-worker metrics) for callers who just want the loop done.
func ForEach(s Scheme, n, workers int, body func(i int)) error {
	pol, err := s.NewPolicy(Config{Iterations: n, Workers: workers})
	if err != nil {
		return err
	}
	shared := Synchronized(pol)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				a, ok := shared.Next(Request{Worker: w})
				if !ok {
					return
				}
				for i := a.Start; i < a.End(); i++ {
					body(i)
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}
