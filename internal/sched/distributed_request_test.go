package sched

import (
	"reflect"
	"testing"
)

// TestDGSSReducesToGSS: with unit powers the lifted scheme reproduces
// GSS chunk-for-chunk.
func TestDGSSReducesToGSS(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for _, i := range []int{100, 1000, 4096} {
			got, err := Sequence(NewDGSS(1), i, p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Sequence(GSSScheme{}, i, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("I=%d p=%d:\nDGSS %v\nGSS  %v", i, p, got, want)
			}
		}
	}
}

// TestDCSSReducesToCSS: same for the chunk scheme.
func TestDCSSReducesToCSS(t *testing.T) {
	got, err := Sequence(NewDCSS(50), 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Sequence(CSSScheme{K: 50}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DCSS %v\nCSS  %v", got, want)
	}
}

// TestRequestDistributedProportional: at identical remaining counts, a
// worker with twice the power receives twice the chunk. (Two fresh
// policies are compared because per-request schemes shrink R between
// requests.)
func TestRequestDistributedProportional(t *testing.T) {
	for _, s := range []Scheme{NewDGSS(1), NewDCSS(40)} {
		cfg := Config{Iterations: 8000, Workers: 2, Powers: []float64{10, 20}}
		first := func(worker int, acp float64) int {
			pol, err := s.NewPolicy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a, ok := pol.Next(Request{Worker: worker, ACP: acp})
			if !ok {
				t.Fatalf("%s: starved", s.Name())
			}
			return a.Size
		}
		slow, fast := first(0, 10), first(1, 20)
		ratio := float64(fast) / float64(slow)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%s: chunk ratio %.2f (%d vs %d), want ≈2", s.Name(), ratio, fast, slow)
		}
	}
}

// TestRequestDistributedCoverage: the lifted schemes cover the loop
// exactly under heterogeneous powers.
func TestRequestDistributedCoverage(t *testing.T) {
	for _, s := range []Scheme{NewDGSS(1), NewDGSS(8), NewDCSS(1), NewDCSS(33)} {
		cfg := Config{Iterations: 5000, Workers: 3, Powers: []float64{5, 10, 30}}
		pol, err := s.NewPolicy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		covered, steps := 0, 0
		for {
			a, ok := pol.Next(Request{Worker: steps % 3, ACP: cfg.Powers[steps%3]})
			if !ok {
				break
			}
			if a.Start != covered || a.Size < 1 {
				t.Fatalf("%s: bad assignment %+v at %d", s.Name(), a, covered)
			}
			covered = a.End()
			steps++
			if steps > 20000 {
				t.Fatalf("%s: runaway", s.Name())
			}
		}
		if covered != 5000 {
			t.Fatalf("%s: covered %d", s.Name(), covered)
		}
	}
}

// TestRequestDistributedFlagAndNames: registry and classification.
func TestRequestDistributedFlagAndNames(t *testing.T) {
	if !Distributed(NewDGSS(1)) || !Distributed(NewDCSS(5)) {
		t.Error("lifted schemes must be classified distributed")
	}
	if NewDGSS(1).Name() != "DGSS" || NewDGSS(4).Name() != "DGSS(4)" {
		t.Errorf("DGSS names: %q, %q", NewDGSS(1).Name(), NewDGSS(4).Name())
	}
	if NewDCSS(16).Name() != "DCSS(16)" || NewDCSS(0).Name() != "DCSS(1)" {
		t.Errorf("DCSS names: %q, %q", NewDCSS(16).Name(), NewDCSS(0).Name())
	}
	for _, name := range []string{"DGSS", "DCSS(16)"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}
