package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSynchronizedConcurrentDrive: many goroutines hammer one wrapped
// policy; the assignments must still tile the loop exactly.
func TestSynchronizedConcurrentDrive(t *testing.T) {
	const n = 50000
	pol, err := TSSScheme{}.NewPolicy(Config{Iterations: n, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	shared := Synchronized(pol)
	seen := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				a, ok := shared.Next(Request{Worker: w})
				if !ok {
					return
				}
				for i := a.Start; i < a.End(); i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			}
		}(w)
	}
	wg.Wait()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
	if shared.Remaining() != 0 {
		t.Errorf("remaining %d", shared.Remaining())
	}
}

// TestSynchronizedKeepsFeedback: the wrapper forwards the learning
// channel when present and omits it when not.
func TestSynchronizedKeepsFeedback(t *testing.T) {
	awf, _ := AWFScheme{}.NewPolicy(Config{Iterations: 1000, Workers: 2})
	if _, ok := Synchronized(awf).(FeedbackPolicy); !ok {
		t.Error("feedback channel dropped")
	}
	plain, _ := GSSScheme{}.NewPolicy(Config{Iterations: 1000, Workers: 2})
	if _, ok := Synchronized(plain).(FeedbackPolicy); ok {
		t.Error("plain policy gained feedback")
	}
}

// TestForEach: the one-liner runs every iteration exactly once.
func TestForEach(t *testing.T) {
	const n = 20000
	seen := make([]int32, n)
	if err := ForEach(TFSSScheme{}, n, 4, func(i int) {
		atomic.AddInt32(&seen[i], 1)
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	// Error path.
	if err := ForEach(TSSScheme{}, 10, 0, func(int) {}); err == nil {
		t.Error("zero workers accepted")
	}
	// Empty loop is a no-op.
	if err := ForEach(TSSScheme{}, 0, 4, func(int) { t.Error("ran") }); err != nil {
		t.Fatal(err)
	}
}
