package sched

import (
	"strings"
	"testing"
)

func TestWithMinChunkFloorsTail(t *testing.T) {
	base, err := Sequence(GSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	floored, err := Sequence(WithMinChunk(GSSScheme{}, 8), 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(floored) != 1000 {
		t.Fatalf("coverage %d", Sum(floored))
	}
	// Every chunk except possibly the last is ≥ 8.
	for i, c := range floored[:len(floored)-1] {
		if c < 8 {
			t.Fatalf("chunk %d = %d below floor", i, c)
		}
	}
	if len(floored) >= len(base) {
		t.Errorf("floor did not reduce steps: %d vs %d", len(floored), len(base))
	}
	// Matches the native GSS(k) behaviour on the tail count.
	native, err := Sequence(GSSScheme{MinChunk: 8}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(floored) != len(native) {
		t.Errorf("wrapped %d steps vs native GSS(8) %d", len(floored), len(native))
	}
}

func TestWithMinChunkOnEverything(t *testing.T) {
	for _, s := range []Scheme{TSSScheme{}, FSSScheme{}, TFSSScheme{}, DTSSScheme{}, NewDTFSS()} {
		wrapped := WithMinChunk(s, 16)
		if !strings.HasSuffix(wrapped.Name(), "+min16") {
			t.Errorf("name %q", wrapped.Name())
		}
		if Distributed(wrapped) != Distributed(s) {
			t.Errorf("%s: distributed flag changed", s.Name())
		}
		for _, i := range []int{1, 17, 1000, 4096} {
			seq, err := Sequence(wrapped, i, 3)
			if err != nil {
				t.Fatal(err)
			}
			if Sum(seq) != i {
				t.Fatalf("%s I=%d: coverage %d", wrapped.Name(), i, Sum(seq))
			}
			for j, c := range seq[:max(0, len(seq)-1)] {
				if c < 16 {
					t.Fatalf("%s I=%d: chunk %d = %d below floor", wrapped.Name(), i, j, c)
				}
			}
		}
	}
}

func TestWithMinChunkPassthrough(t *testing.T) {
	s := GSSScheme{}
	if WithMinChunk(s, 1) != Scheme(s) {
		t.Error("k=1 must return the scheme unchanged")
	}
	if WithMinChunk(s, 0) != Scheme(s) {
		t.Error("k=0 must return the scheme unchanged")
	}
	// Invalid config propagates.
	if _, err := WithMinChunk(s, 5).NewPolicy(Config{Iterations: 10, Workers: 0}); err == nil {
		t.Error("bad config accepted")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
