package sched

import (
	"reflect"
	"testing"
)

// The goldens below are Table 1 of the paper: sample chunk sizes for
// I = 1000 and p = 4.

func TestExample1Static(t *testing.T) {
	seq, err := Sequence(StaticScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{250, 250, 250, 250}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("S: got %v, want %v", seq, want)
	}
}

func TestExample1SS(t *testing.T) {
	seq, err := Sequence(SelfScheduling, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1000 {
		t.Fatalf("SS: got %d chunks, want 1000", len(seq))
	}
	for i, c := range seq {
		if c != 1 {
			t.Fatalf("SS: chunk %d = %d, want 1", i, c)
		}
	}
}

func TestExample1CSS(t *testing.T) {
	seq, err := Sequence(CSSScheme{K: 100}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 10 {
		t.Fatalf("CSS(100): got %d chunks, want 10", len(seq))
	}
	for i, c := range seq {
		if c != 100 {
			t.Fatalf("CSS(100): chunk %d = %d, want 100", i, c)
		}
	}
}

func TestExample1GSS(t *testing.T) {
	seq, err := Sequence(GSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{250, 188, 141, 106, 79, 59, 45, 33, 25, 19, 14, 11,
		8, 6, 4, 3, 3, 2, 1, 1, 1, 1}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("GSS: got %v, want %v", seq, want)
	}
	if Sum(seq) != 1000 {
		t.Errorf("GSS: sum %d, want 1000", Sum(seq))
	}
}

func TestExample1TSSNominal(t *testing.T) {
	got := TrapezoidNominal(1000, 4)
	want := []int{125, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37,
		29, 21, 13, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TSS nominal: got %v, want %v", got, want)
	}
	// The paper's row deliberately overshoots I (sum 1040): the table
	// shows the whole trapezoid, a real run clips.
	if Sum(got) != 1040 {
		t.Errorf("TSS nominal sum %d, want 1040", Sum(got))
	}
}

func TestExample1TSSClipped(t *testing.T) {
	seq, err := Sequence(TSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The clipped run follows the trapezoid until the budget runs out.
	wantPrefix := []int{125, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37}
	if len(seq) < len(wantPrefix) {
		t.Fatalf("TSS: only %d chunks: %v", len(seq), seq)
	}
	if !reflect.DeepEqual(seq[:len(wantPrefix)], wantPrefix) {
		t.Errorf("TSS prefix: got %v, want %v", seq[:len(wantPrefix)], wantPrefix)
	}
	if Sum(seq) != 1000 {
		t.Errorf("TSS: sum %d, want 1000", Sum(seq))
	}
}

func TestExample1FSS(t *testing.T) {
	seq, err := Sequence(FSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := repeatStages(4, 125, 62, 32, 16, 8, 4, 2, 1)
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("FSS: got %v, want %v", seq, want)
	}
	if Sum(seq) != 1000 {
		t.Errorf("FSS: sum %d, want 1000", Sum(seq))
	}
}

func TestExample1FISS(t *testing.T) {
	seq, err := Sequence(FISSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := repeatStages(4, 50, 83, 117)
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("FISS: got %v, want %v", seq, want)
	}
}

func TestExample2TFSSNominal(t *testing.T) {
	got := TFSSNominal(1000, 4)
	want := repeatStages(4, 113, 81, 49, 17)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TFSS nominal: got %v, want %v", got, want)
	}
}

func TestExample2TFSSClipped(t *testing.T) {
	seq, err := Sequence(TFSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := repeatStages(4, 113, 81, 49)
	if !reflect.DeepEqual(seq[:len(wantPrefix)], wantPrefix) {
		t.Errorf("TFSS prefix: got %v, want %v", seq[:len(wantPrefix)], wantPrefix)
	}
	if Sum(seq) != 1000 {
		t.Errorf("TFSS: sum %d, want 1000", Sum(seq))
	}
}

// TestWeightedFirstStage checks the section 3.1 worked example:
// I = 1000, powers ½ ½ 1 2; the first FSS stage of 500 iterations is
// split proportionally to power. (The paper prints 75/75/125/250,
// which sums to 525 ≠ 500 and is not proportional to the stated ½ ½ 1
// 2 weights; the exact proportional split is 62.5/62.5/125/250, so we
// assert the two big shares exactly and the two halves to rounding.)
func TestWeightedFirstStage(t *testing.T) {
	cfg := Config{Iterations: 1000, Workers: 4, Powers: []float64{0.5, 0.5, 1, 2}}
	pol, err := WFScheme{}.NewPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{62, 62, 125, 250}
	for w, wantSize := range want {
		a, ok := pol.Next(Request{Worker: w})
		if !ok {
			t.Fatalf("WF: no chunk for worker %d", w)
		}
		if a.Size != wantSize {
			t.Errorf("WF worker %d: chunk %d, want %d", w, a.Size, wantSize)
		}
	}
}

func repeatStages(p int, stages ...int) []int {
	var seq []int
	for _, s := range stages {
		for j := 0; j < p; j++ {
			seq = append(seq, s)
		}
	}
	return seq
}

func TestComputeTSSParams(t *testing.T) {
	prm := ComputeTSSParams(1000, 4, 0, 0)
	if prm.F != 125 || prm.L != 1 || prm.D != 8 {
		t.Errorf("got %+v, want F=125 L=1 D=8", prm)
	}
	// Degenerate: tiny loop.
	prm = ComputeTSSParams(3, 4, 0, 0)
	if prm.D != 0 || prm.F < 1 {
		t.Errorf("degenerate params %+v", prm)
	}
}

func TestNominalSequenceStopsAtCoverage(t *testing.T) {
	seq, err := NominalSequence(GSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(seq) < 1000 {
		t.Errorf("nominal GSS sum %d < 1000", Sum(seq))
	}
}
