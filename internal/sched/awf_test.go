package sched

import "testing"

// TestAWFLearnsRates: after feedback showing worker 1 runs 3× faster,
// its chunks should be about 3× larger.
func TestAWFLearnsRates(t *testing.T) {
	pol, err := AWFScheme{}.NewPolicy(Config{Iterations: 100000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fb := pol.(FeedbackPolicy)
	// Warm up the rate estimates: worker 0 does 100 units/s, worker 1
	// does 300.
	for i := 0; i < 4; i++ {
		fb.Feedback(0, 100, 1)
		fb.Feedback(1, 300, 1)
	}
	a0, ok0 := pol.Next(Request{Worker: 0})
	a1, ok1 := pol.Next(Request{Worker: 1})
	if !ok0 || !ok1 {
		t.Fatal("starved")
	}
	ratio := float64(a1.Size) / float64(a0.Size)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("learned ratio %.2f (chunks %d vs %d), want ≈3", ratio, a1.Size, a0.Size)
	}
}

// TestAWFCoverageAndDefaults: without any feedback AWF behaves like
// (weighted) FSS and still covers the loop exactly.
func TestAWFCoverageAndDefaults(t *testing.T) {
	seq, err := Sequence(AWFScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(seq) != 1000 {
		t.Errorf("coverage %d", Sum(seq))
	}
	// No feedback, equal weights: identical to FSS.
	want, err := Sequence(FSSScheme{}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(want) {
		t.Fatalf("AWF %v\nFSS %v", seq, want)
	}
	for i := range seq {
		if seq[i] != want[i] {
			t.Fatalf("chunk %d: AWF %d vs FSS %d", i, seq[i], want[i])
		}
	}
	if !Distributed(AWFScheme{}) {
		t.Error("AWF must be classified distributed")
	}
	if name := (AWFScheme{}).Name(); name != "AWF" {
		t.Errorf("name %q", name)
	}
}

// TestAWFFeedbackIgnoresGarbage: bad measurements must not poison the
// weights.
func TestAWFFeedbackIgnoresGarbage(t *testing.T) {
	pol, _ := AWFScheme{}.NewPolicy(Config{Iterations: 1000, Workers: 2})
	fb := pol.(FeedbackPolicy)
	fb.Feedback(-1, 100, 1)
	fb.Feedback(5, 100, 1)
	fb.Feedback(0, 0, 1)
	fb.Feedback(0, 100, 0)
	a0, _ := pol.Next(Request{Worker: 0})
	a1, _ := pol.Next(Request{Worker: 1})
	if a0.Size != a1.Size {
		t.Errorf("garbage feedback changed weights: %d vs %d", a0.Size, a1.Size)
	}
}

// TestAWFUnmeasuredWorkerGetsMeanRate: a worker with no measurements
// is assigned the mean measured rate, not starved.
func TestAWFUnmeasuredWorkerGetsMeanRate(t *testing.T) {
	pol, _ := AWFScheme{}.NewPolicy(Config{Iterations: 100000, Workers: 3})
	fb := pol.(FeedbackPolicy)
	for i := 0; i < 4; i++ {
		fb.Feedback(0, 200, 1)
		fb.Feedback(1, 200, 1)
	}
	a2, ok := pol.Next(Request{Worker: 2})
	if !ok || a2.Size == 0 {
		t.Fatal("unmeasured worker starved")
	}
	a0, _ := pol.Next(Request{Worker: 0})
	ratio := float64(a2.Size) / float64(a0.Size)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unmeasured share ratio %.2f, want ≈1", ratio)
	}
}

// TestOffsetKeepsFeedback: the re-plan Offset wrapper forwards the
// learning channel.
func TestOffsetKeepsFeedback(t *testing.T) {
	pol, _ := AWFScheme{}.NewPolicy(Config{Iterations: 50000, Workers: 2})
	wrapped := Offset(pol, 1000)
	fb, ok := wrapped.(FeedbackPolicy)
	if !ok {
		t.Fatal("Offset dropped FeedbackPolicy")
	}
	for i := 0; i < 4; i++ {
		fb.Feedback(0, 100, 1)
		fb.Feedback(1, 400, 1)
	}
	a0, _ := wrapped.Next(Request{Worker: 0})
	a1, _ := wrapped.Next(Request{Worker: 1})
	if a0.Start != 1000 {
		t.Errorf("offset lost: start %d", a0.Start)
	}
	if float64(a1.Size)/float64(a0.Size) < 3 {
		t.Errorf("feedback lost through wrapper: %d vs %d", a1.Size, a0.Size)
	}
	// Non-learning policies stay plain.
	plain := Offset(mustPolicy(t, GSSScheme{}, 100, 2), 0)
	if _, ok := plain.(FeedbackPolicy); ok {
		t.Error("plain policy gained a feedback channel")
	}
}

func mustPolicy(t *testing.T, s Scheme, i, p int) Policy {
	t.Helper()
	pol, err := s.NewPolicy(Config{Iterations: i, Workers: p})
	if err != nil {
		t.Fatal(err)
	}
	return pol
}
