package sched

import "fmt"

// TSSParams are the trapezoid parameters of Tzen & Ni's Trapezoid
// Self-Scheduling: chunks decrease linearly from F to (about) L in
// steps of D over N scheduling steps.
type TSSParams struct {
	F int // first chunk size
	L int // last chunk size
	N int // number of scheduling steps
	D int // per-step decrement
}

// ComputeTSSParams derives the trapezoid from the paper's defaults:
// F = ⌊I/(2p)⌋, L as given (1 if unset), N = ⌈2I/(F+L)⌉,
// D = ⌊(F−L)/(N−1)⌋. The paper's text floors N, but its own Table 1
// row (16 chunks, 125 … 5) requires the ceiling — and flooring N can
// leave the descent short of I by almost a whole chunk, which then
// drains as thousands of size-L chunks; the ceiling overshoots
// slightly and real runs clip the tail instead. Degenerate inputs
// (tiny I) collapse to constant unit chunks.
func ComputeTSSParams(iterations, p, first, last int) TSSParams {
	if last < 1 {
		last = 1
	}
	f := first
	if f < 1 {
		f = iterations / (2 * p)
	}
	if f < last {
		f = last
	}
	n := 1
	if f+last > 0 {
		n = (2*iterations + f + last - 1) / (f + last)
	}
	if n < 2 {
		return TSSParams{F: f, L: last, N: 1, D: 0}
	}
	d := (f - last) / (n - 1)
	return TSSParams{F: f, L: last, N: n, D: d}
}

// TSSScheme is Trapezoid Self-Scheduling: C_i = C_{i−1} − D starting
// from C_1 = F. It linearises GSS's geometric decrease, trading a few
// extra early synchronisations for far fewer tiny tail chunks. The
// paper reports it as the best simple scheme on their cluster.
type TSSScheme struct {
	// First and Last override the F and L trapezoid endpoints;
	// zero values select the paper defaults F = ⌊I/(2p)⌋, L = 1.
	First, Last int
}

func (s TSSScheme) Name() string {
	if s.First == 0 && s.Last <= 1 {
		return "TSS"
	}
	return fmt.Sprintf("TSS(%d,%d)", s.First, s.Last)
}

func (s TSSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prm := ComputeTSSParams(cfg.Iterations, cfg.Workers, s.First, s.Last)
	return &tssPolicy{counter: newCounter(cfg), prm: prm, chunk: prm.F}, nil
}

type tssPolicy struct {
	counter
	prm   TSSParams
	chunk int
}

func (t *tssPolicy) Next(req Request) (Assignment, bool) {
	size := t.chunk
	if size < t.prm.L {
		size = t.prm.L
	}
	t.chunk -= t.prm.D
	return t.take(size)
}

// StepDeterministic: the trapezoid decrement advances one fixed step
// per grant, independent of the requester.
func (TSSScheme) StepDeterministic() bool { return true }

func init() {
	Register(TSSScheme{})
}
