package sched

// This file is the only place in the package allowed to convert float
// chunk arithmetic to integer iteration counts (enforced by the
// chunkmath analyzer in internal/lint). Centralising the conversions
// keeps every scheme's rounding bias explicit and uniform: the paper's
// chunk formulas are real-valued, and an ad-hoc int(...) truncation
// at a call site silently switches a scheme from round-to-nearest to
// floor, which over thousands of chunks drifts the assigned total away
// from N.

// RoundNearest converts a non-negative float chunk expression to an
// iteration count, rounding half away from zero (the paper's ⌊x+0.5⌋).
func RoundNearest(x float64) int {
	return int(x + 0.5)
}

// CeilPos returns ⌈x⌉ for non-negative x.
func CeilPos(x float64) int {
	v := int(x)
	if float64(v) < x {
		v++
	}
	return v
}

// FloorPos returns ⌊x⌋ for non-negative x.
func FloorPos(x float64) int {
	return int(x)
}

// CeilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0 in integer arithmetic,
// replacing hand-written (a + b - 1) / b sites that the chunkmath
// analyzer would otherwise flag as unguarded subtractions.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}
