package sched

import "testing"

// FuzzSchemeCoverage: for arbitrary (I, p, k) the core schemes always
// tile the iteration space exactly, with positive chunks, in a bounded
// number of steps.
func FuzzSchemeCoverage(f *testing.F) {
	f.Add(uint16(1000), uint8(4), uint8(2))
	f.Add(uint16(1), uint8(1), uint8(0))
	f.Add(uint16(65535), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, iRaw uint16, pRaw, kRaw uint8) {
		iterations := int(iRaw)
		p := int(pRaw)%32 + 1
		k := int(kRaw)%64 + 1
		schemes := []Scheme{
			StaticScheme{},
			CSSScheme{K: k},
			GSSScheme{MinChunk: k % 8},
			TSSScheme{},
			FSSScheme{},
			FISSScheme{Stages: k%6 + 2},
			TFSSScheme{},
			DTSSScheme{},
			NewDFSS(),
			NewDTFSS(),
			NewDGSS(1),
			NewDCSS(k),
		}
		for _, s := range schemes {
			pol, err := s.NewPolicy(Config{Iterations: iterations, Workers: p})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			covered, steps := 0, 0
			for {
				a, ok := pol.Next(Request{Worker: steps % p})
				if !ok {
					break
				}
				if a.Size < 1 || a.Start != covered {
					t.Fatalf("%s I=%d p=%d: bad assignment %+v at %d", s.Name(), iterations, p, a, covered)
				}
				covered = a.End()
				steps++
				if steps > 2*iterations+256 {
					t.Fatalf("%s I=%d p=%d: runaway policy", s.Name(), iterations, p)
				}
			}
			if covered != iterations {
				t.Fatalf("%s I=%d p=%d: covered %d", s.Name(), iterations, p, covered)
			}
		}
	})
}

// FuzzWeightedCoverage: the same invariant with arbitrary power
// vectors for the distributed schemes.
func FuzzWeightedCoverage(f *testing.F) {
	f.Add(uint16(500), uint8(3), uint8(10), uint8(30), uint8(7))
	f.Fuzz(func(t *testing.T, iRaw uint16, pRaw, w1, w2, w3 uint8) {
		iterations := int(iRaw)
		p := int(pRaw)%3 + 1
		powers := []float64{float64(w1%50) + 0.5, float64(w2%50) + 0.5, float64(w3%50) + 0.5}[:p]
		for _, s := range []Scheme{DTSSScheme{}, NewDFSS(), NewDFISS(0), NewDTFSS(), NewDGSS(1), WFScheme{}} {
			pol, err := s.NewPolicy(Config{Iterations: iterations, Workers: p, Powers: powers})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			covered, steps := 0, 0
			for {
				a, ok := pol.Next(Request{Worker: steps % p, ACP: powers[steps%p]})
				if !ok {
					break
				}
				if a.Size < 1 || a.Start != covered {
					t.Fatalf("%s: bad assignment %+v", s.Name(), a)
				}
				covered = a.End()
				steps++
				if steps > 2*iterations+512 {
					t.Fatalf("%s: runaway (I=%d p=%d powers=%v)", s.Name(), iterations, p, powers)
				}
			}
			if covered != iterations {
				t.Fatalf("%s: covered %d of %d", s.Name(), covered, iterations)
			}
		}
	})
}
