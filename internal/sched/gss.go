package sched

import "fmt"

// GSSScheme is Guided Self-Scheduling (Polychronopoulos & Kuck 1987):
// C_i = ⌈R_{i-1}/p⌉. Chunks start at I/p and shrink geometrically, so
// communication is cheap early and balance is fine-grained late; the
// known weakness is the flood of single-iteration chunks at the tail,
// which GSS(k) caps with a minimum chunk size k.
type GSSScheme struct {
	// MinChunk is the k of GSS(k); values below 1 mean plain GSS.
	MinChunk int
}

func (s GSSScheme) Name() string {
	if s.MinChunk > 1 {
		return fmt.Sprintf("GSS(%d)", s.MinChunk)
	}
	return "GSS"
}

func (s GSSScheme) NewPolicy(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := s.MinChunk
	if k < 1 {
		k = 1
	}
	return &gssPolicy{counter: newCounter(cfg), p: cfg.Workers, k: k}, nil
}

type gssPolicy struct {
	counter
	p int
	k int
}

func (g *gssPolicy) Next(req Request) (Assignment, bool) {
	r := g.Remaining()
	size := CeilDiv(r, g.p) // ⌈R/p⌉
	if size < g.k {
		size = g.k
	}
	return g.take(size)
}

// StepDeterministic: ⌈R/p⌉ depends only on how much has been assigned,
// never on the requester.
func (GSSScheme) StepDeterministic() bool { return true }

func init() {
	Register(GSSScheme{})
	Register(GSSScheme{MinChunk: 8})
}
