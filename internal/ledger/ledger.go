// Package ledger implements decentralized chunk calculation: for
// self-scheduling schemes whose chunk sequence is a pure function of
// the scheduling step (sched.StepDeterministic), the whole sequence
// can be fixed at plan time, so "give me my next chunk" collapses from
// a request/grant round trip through the master's policy lock into a
// fetch-and-add on a shared step counter plus a local table lookup —
// the distributed chunk-calculation model of Eleliemy & Ciorba
// (arXiv:2101.07050) and its MPI passive-target RMA predecessor
// (arXiv:1901.02773).
//
// The package provides the two halves of that model behind one
// interface:
//
//   - Table precomputes step → [start, end) for one run. Fixed-chunk
//     schemes (SS, CSS) get an analytic table — start is step·K, no
//     array at all — while every other step-deterministic scheme is
//     replayed once through its Policy into a prefix-starts slice.
//   - Ledger is the step counter. Local is the in-process
//     implementation (one cache-line-padded atomic.Uint64, used by the
//     steal engine and as the master-side source of truth); the wire
//     protocol's FetchAdd/Step frames (internal/wire) carry the same
//     operation to remote workers, which hold a replica of the Table
//     and self-compute their boundaries.
//
// Claiming is claim-then-check: a worker fetch-adds first and only
// then consults the table. Steps claimed at or past Table.Steps() are
// simply wasted — the counter is monotone, so no range is ever handed
// out twice and termination needs no retraction protocol.
package ledger

import (
	"errors"
	"fmt"
	"sync/atomic"

	"loopsched/internal/sched"
)

// MaxSteps caps the size of a replayed prefix table. A scheme whose
// sequence is longer (SS over a huge loop, say) would cost more memory
// per worker replica than the round trips it saves; Build reports such
// configurations ineligible and the caller stays on the master path.
// Fixed-chunk schemes are analytic and exempt from the cap.
const MaxSteps = 1 << 22

// ErrIneligible marks a scheme/config pair the ledger cannot serve:
// the scheme is not step-deterministic (it reads worker identity, ACP
// or feedback), or its replayed table would exceed MaxSteps. Callers
// treat it as "use the master path", not as a failure.
var ErrIneligible = errors.New("ledger: scheme not step-deterministic")

// Ledger is a shared fetch-and-add step source. Local implements it
// in-process; exec wraps the wire protocol's FetchAdd/Step frames in
// the same shape for remote workers.
type Ledger interface {
	// FetchAdd atomically claims n consecutive scheduling steps and
	// returns the first. The error is always nil for Local; wire-backed
	// implementations surface transport failures.
	FetchAdd(n int) (uint64, error)
}

// Local is the in-process ledger: one fetch-and-add counter padded to
// its own cache line so the hottest word in the scheduler never
// false-shares with neighbouring allocations.
type Local struct {
	_    [64]byte
	next atomic.Uint64
	_    [56]byte
}

// FetchAdd claims n consecutive steps and returns the first. It is the
// whole acquire protocol — one uncontended LOCK XADD in steady state.
//
//lint:loopsched-hotpath
func (l *Local) FetchAdd(n int) (uint64, error) {
	u := uint64(n)
	return l.next.Add(u) - u, nil
}

// Next returns the number of steps claimed so far.
func (l *Local) Next() uint64 { return l.next.Load() }

// Store seeds the counter; hier submasters use it to rebuild a ledger
// for each super-chunk grant. Not safe concurrently with FetchAdd.
func (l *Local) Store(v uint64) { l.next.Store(v) }

// Table is one run's precomputed chunk sequence: step k maps to the
// k-th assignment the scheme's policy would have granted. A Table is
// immutable after Build and safe for concurrent lookups from any
// number of workers.
type Table struct {
	total int
	fixed int   // >0: analytic fixed-chunk scheme, no starts array
	steps int   // number of chunks in the sequence
	start []int // prefix starts, len steps+1 with start[steps] == total
}

// Build precomputes the chunk table for s under cfg, or reports
// ErrIneligible when the scheme must stay on the master path. The
// eligibility rule is exactly the one docs/LEDGER.md documents:
// the scheme declares StepDeterministic, is not Distributed, and its
// policy takes no run-time feedback; everything else — including
// table-size overflow — keeps the round trip.
func Build(s sched.Scheme, cfg sched.Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NoClip {
		return nil, fmt.Errorf("%w: NoClip sequences are unbounded", ErrIneligible)
	}
	if sched.Distributed(s) || !sched.StepDeterministic(s) {
		return nil, fmt.Errorf("%w: %s", ErrIneligible, s.Name())
	}
	if k, ok := sched.FixedChunk(s, cfg); ok && k > 0 {
		steps := (cfg.Iterations + k - 1) / k
		return &Table{total: cfg.Iterations, fixed: k, steps: steps}, nil
	}
	pol, err := s.NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	if _, fb := pol.(sched.FeedbackPolicy); fb {
		// A feedback-taking policy contradicts the declaration; be
		// conservative rather than replay a sequence the live run
		// would diverge from.
		return nil, fmt.Errorf("%w: %s policy takes feedback", ErrIneligible, s.Name())
	}
	t := &Table{total: cfg.Iterations}
	t.start = append(t.start, 0)
	for {
		a, ok := pol.Next(sched.Request{})
		if !ok {
			break
		}
		if a.Start != t.start[len(t.start)-1] {
			return nil, fmt.Errorf("ledger: %s replay is not contiguous at step %d (start %d, want %d)",
				s.Name(), len(t.start)-1, a.Start, t.start[len(t.start)-1])
		}
		if len(t.start) > MaxSteps {
			return nil, fmt.Errorf("%w: %s sequence exceeds %d steps", ErrIneligible, s.Name(), MaxSteps)
		}
		t.start = append(t.start, a.End())
	}
	t.steps = len(t.start) - 1
	if t.steps > 0 && t.start[t.steps] != t.total {
		return nil, fmt.Errorf("ledger: %s replay covers %d of %d iterations",
			s.Name(), t.start[t.steps], t.total)
	}
	return t, nil
}

// Eligible reports whether Build would succeed for s under cfg.
func Eligible(s sched.Scheme, cfg sched.Config) bool {
	_, err := Build(s, cfg)
	return err == nil
}

// Steps returns the number of chunks in the sequence; fetch-add
// results at or past Steps are wasted claims.
func (t *Table) Steps() int { return t.steps }

// Iterations returns the total iteration count the table covers.
func (t *Table) Iterations() int { return t.total }

// Chunk maps a claimed step to its assignment. Steps at or beyond the
// end of the sequence return false — a worker that over-claims simply
// discards the claim and stops.
//
//lint:loopsched-hotpath
func (t *Table) Chunk(step uint64) (sched.Assignment, bool) {
	if step >= uint64(t.steps) {
		return sched.Assignment{}, false
	}
	if t.fixed > 0 {
		start := int(step) * t.fixed
		size := t.fixed
		if start+size > t.total {
			size = t.total - start
		}
		return sched.Assignment{Start: start, Size: size}, true
	}
	s := int(step)
	return sched.Assignment{Start: t.start[s], Size: t.start[s+1] - t.start[s]}, true
}
