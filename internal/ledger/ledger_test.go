package ledger

import (
	"errors"
	"sync"
	"testing"

	"loopsched/internal/sched"
)

// replay drains a policy under the given request pattern.
func replay(t *testing.T, pol sched.Policy, reqs func(step int) sched.Request) []sched.Assignment {
	t.Helper()
	var out []sched.Assignment
	for step := 0; ; step++ {
		a, ok := pol.Next(reqs(step))
		if !ok {
			return out
		}
		out = append(out, a)
		if step > 1<<20 {
			t.Fatal("replay does not terminate")
		}
	}
}

// tableSeq drains a table in step order.
func tableSeq(t *testing.T, tab *Table) []sched.Assignment {
	t.Helper()
	out := make([]sched.Assignment, 0, tab.Steps())
	for s := 0; s < tab.Steps(); s++ {
		a, ok := tab.Chunk(uint64(s))
		if !ok {
			t.Fatalf("step %d < Steps() %d returned no chunk", s, tab.Steps())
		}
		out = append(out, a)
	}
	if _, ok := tab.Chunk(uint64(tab.Steps())); ok {
		t.Fatal("step past Steps() returned a chunk")
	}
	return out
}

// TestRegistryDeclaresStepDeterminism is the registry-wide capability
// audit: every scheme that declares StepDeterministic must produce a
// table byte-identical to its policy's sequence under *any* request
// interleaving, and every scheme that does not declare it must have a
// visible reason — it is distributed, it takes feedback, or a change
// of requester provably changes its sequence. A new scheme cannot
// register with a wrong declaration without failing here.
func TestRegistryDeclaresStepDeterminism(t *testing.T) {
	cfg := sched.Config{Iterations: 997, Workers: 4}
	het := sched.Config{Iterations: 997, Workers: 4, Powers: []float64{1, 2, 3, 10}}
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			if sched.StepDeterministic(s) {
				tab, err := Build(s, cfg)
				if err != nil {
					t.Fatalf("declared step-deterministic but Build failed: %v", err)
				}
				want := tableSeq(t, tab)
				// Adversarial interleavings: rotating workers,
				// reversed workers, wild ACP swings. All must match
				// the table exactly.
				patterns := []func(step int) sched.Request{
					func(step int) sched.Request { return sched.Request{Worker: step % cfg.Workers} },
					func(step int) sched.Request {
						return sched.Request{Worker: cfg.Workers - 1 - step%cfg.Workers, ACP: float64(1 + step%7)}
					},
					func(step int) sched.Request { return sched.Request{Worker: 0, ACP: 1000} },
				}
				for pi, pat := range patterns {
					pol, err := s.NewPolicy(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := replay(t, pol, pat)
					if len(got) != len(want) {
						t.Fatalf("pattern %d: policy granted %d chunks, table has %d", pi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("pattern %d: chunk %d: policy %+v, table %+v", pi, i, got[i], want[i])
						}
					}
				}
				return
			}
			// Not declared: demand a visible reason.
			if sched.Distributed(s) {
				return
			}
			if _, err := s.NewPolicy(het); err == nil {
				pol, _ := s.NewPolicy(het)
				if _, fb := pol.(sched.FeedbackPolicy); fb {
					return
				}
				// Last resort: a worker permutation must change the
				// sequence, proving the policy reads the request.
				a, _ := s.NewPolicy(het)
				b, _ := s.NewPolicy(het)
				fwd := replay(t, a, func(step int) sched.Request { return sched.Request{Worker: step % het.Workers} })
				rev := replay(t, b, func(step int) sched.Request {
					return sched.Request{Worker: het.Workers - 1 - step%het.Workers}
				})
				same := len(fwd) == len(rev)
				if same {
					for i := range fwd {
						if fwd[i] != rev[i] {
							same = false
							break
						}
					}
				}
				if same {
					t.Fatalf("%s is undeclared yet request-blind: permuting workers left the sequence unchanged — declare StepDeterministic or justify here", name)
				}
			}
		})
	}
}

// TestBuildIneligible pins the eligibility rule's refusals.
func TestBuildIneligible(t *testing.T) {
	cfg := sched.Config{Iterations: 100, Workers: 4}
	for _, s := range []sched.Scheme{
		sched.WeightedStaticScheme{}, // reads Request.Worker
		sched.WFScheme{},             // static weights per worker
		sched.AWFScheme{},            // feedback
		sched.DTSSScheme{},           // distributed
	} {
		if _, err := Build(s, cfg); !errors.Is(err, ErrIneligible) {
			t.Errorf("%s: Build err = %v, want ErrIneligible", s.Name(), err)
		}
		if Eligible(s, cfg) {
			t.Errorf("%s reported eligible", s.Name())
		}
	}
	if _, err := Build(sched.TSSScheme{}, sched.Config{Iterations: 100, Workers: 4, NoClip: true}); !errors.Is(err, ErrIneligible) {
		t.Errorf("NoClip: err = %v, want ErrIneligible", err)
	}
	// SS over a loop longer than MaxSteps steps stays eligible: the
	// fixed-chunk table is analytic, no array to blow up.
	big := sched.Config{Iterations: MaxSteps * 4, Workers: 4}
	tab, err := Build(sched.SelfScheduling, big)
	if err != nil {
		t.Fatalf("analytic SS table: %v", err)
	}
	if tab.Steps() != big.Iterations {
		t.Fatalf("SS steps = %d, want %d", tab.Steps(), big.Iterations)
	}
}

// TestFixedAnalyticMatchesReplay cross-checks the analytic fixed-chunk
// path against a forced replay of the same policy.
func TestFixedAnalyticMatchesReplay(t *testing.T) {
	cfg := sched.Config{Iterations: 103, Workers: 3}
	s := sched.CSSScheme{K: 8}
	tab, err := Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.fixed == 0 {
		t.Fatal("CSS table is not analytic")
	}
	pol, err := s.NewPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := replay(t, pol, func(int) sched.Request { return sched.Request{} })
	got := tableSeq(t, tab)
	if len(got) != len(want) {
		t.Fatalf("table %d chunks, policy %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("chunk %d: table %+v, policy %+v", i, got[i], want[i])
		}
	}
}

// TestLocalFetchAddClaimsDisjointSteps hammers one Local from many
// goroutines and asserts the claims partition the step space.
func TestLocalFetchAddClaimsDisjointSteps(t *testing.T) {
	const (
		workers = 8
		claims  = 1000
		batch   = 3
	)
	var l Local
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < claims; i++ {
				first, err := l.FetchAdd(batch)
				if err != nil {
					panic(err)
				}
				mu.Lock()
				for s := first; s < first+batch; s++ {
					if seen[s] {
						mu.Unlock()
						panic("step claimed twice")
					}
					seen[s] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	want := uint64(workers * claims * batch)
	if l.Next() != want {
		t.Fatalf("counter = %d, want %d", l.Next(), want)
	}
	for s := uint64(0); s < want; s++ {
		if !seen[s] {
			t.Fatalf("step %d never claimed", s)
		}
	}
}

// TestLocalStoreSeedsCounter covers the hier rebuild path.
func TestLocalStoreSeedsCounter(t *testing.T) {
	var l Local
	if _, err := l.FetchAdd(5); err != nil {
		t.Fatal(err)
	}
	l.Store(0)
	first, _ := l.FetchAdd(2)
	if first != 0 {
		t.Fatalf("after Store(0), FetchAdd = %d, want 0", first)
	}
}
