package ledger

import (
	"sort"
	"testing"

	"loopsched/internal/hotpath"
	"loopsched/internal/sched"
)

// hotGuards is this package's alloc-guard table (see
// internal/hotpath): one entry per //lint:loopsched-hotpath function.
// The fetch-add + table-lookup pair IS the decentralized scheduling
// round trip, so both share one steady-state cycle guard.
var hotGuards = map[string]func(t *testing.T){
	"(*Local).FetchAdd": claimGuard,
	"(*Table).Chunk":    claimGuard,
}

// TestHotPathGuardTable pins hotGuards to the annotation set.
func TestHotPathGuardTable(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	missing, stale, err := hotpath.TableErrors(".", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("annotated hot function %s has no alloc guard; add a hotGuards entry", name)
	}
	for _, name := range stale {
		t.Errorf("hotGuards entry %s matches no annotated function; remove it or annotate", name)
	}
}

// TestHotPathAllocGuards runs every guard in the table.
func TestHotPathAllocGuards(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, hotGuards[name])
	}
}

// claimGuard is the zero-alloc acceptance criterion for the whole PR:
// one steady-state claim — fetch-add the counter, look the step up in
// both table shapes — allocates nothing.
func claimGuard(t *testing.T) {
	var l Local
	analytic, err := Build(sched.CSSScheme{K: 16}, sched.Config{Iterations: 1 << 20, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Build(sched.TSSScheme{}, sched.Config{Iterations: 1 << 20, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		step, err := l.FetchAdd(1)
		if err != nil {
			panic(err)
		}
		// Wrap each lookup into its table's range: the guard measures
		// the claim cycle, not a full drain (TSS has ~32 steps here).
		if _, ok := analytic.Chunk(step % uint64(analytic.Steps())); !ok {
			panic("analytic table dry")
		}
		if _, ok := replayed.Chunk(step % uint64(replayed.Steps())); !ok {
			panic("replayed table dry")
		}
	})
	if allocs != 0 {
		t.Fatalf("claim cycle allocates %.1f times per op, want 0", allocs)
	}
}
