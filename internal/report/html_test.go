package report

import (
	"strings"
	"testing"

	"loopsched/internal/experiments"
)

func TestHTMLReport(t *testing.T) {
	var sb strings.Builder
	if err := HTML(&sb, experiments.Small(), "small"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "reproduction report", "Table 1", "Figure 4",
		"<svg", "DTSS", "TreeS", "Scaling study",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// All six figures embedded.
	if n := strings.Count(out, "<svg"); n != 6 {
		t.Errorf("%d SVGs, want 6", n)
	}
	// Table text is escaped into <pre>, not interpreted.
	if !strings.Contains(out, "<pre>") {
		t.Error("tables not preformatted")
	}
}
