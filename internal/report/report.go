// Package report persists reproduced experiment numbers as JSON
// baselines and compares later runs against them, so changes to the
// schemes or the simulator that shift the paper's reproduced results
// are caught mechanically (cmd/experiments -save-baseline /
// -check-baseline).
package report

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"loopsched/internal/experiments"
)

// Baseline maps metric keys (e.g. "table2/dedicated/TSS/Tp") to
// values. The simulator is deterministic, so matching means equality
// up to the comparison tolerance.
type Baseline struct {
	// Config notes what produced the numbers (label only).
	Config string `json:"config"`
	// Metrics holds the reproduced values.
	Metrics map[string]float64 `json:"metrics"`
}

// New creates an empty baseline.
func New(config string) *Baseline {
	return &Baseline{Config: config, Metrics: map[string]float64{}}
}

// Put records one metric.
func (b *Baseline) Put(key string, value float64) { b.Metrics[key] = value }

// AddTable records every scheme's T_p from both halves of a table.
func (b *Baseline) AddTable(name string, t experiments.TableResult) {
	for _, r := range t.Dedicated {
		b.Put(fmt.Sprintf("%s/dedicated/%s/Tp", name, r.Scheme), r.Tp)
	}
	for _, r := range t.NonDedicated {
		b.Put(fmt.Sprintf("%s/nondedicated/%s/Tp", name, r.Scheme), r.Tp)
	}
}

// AddFigure records every scheme's speedup at each p.
func (b *Baseline) AddFigure(name string, f experiments.FigureResult) {
	for scheme, curve := range f.Curves {
		for _, pt := range curve {
			b.Put(fmt.Sprintf("%s/%s/Sp@p=%d", name, scheme, pt.P), pt.Sp)
		}
	}
}

// Save writes the baseline as indented JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a baseline written by Save.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	if b.Metrics == nil {
		b.Metrics = map[string]float64{}
	}
	return &b, nil
}

// Diff is one metric's deviation from the baseline.
type Diff struct {
	Key      string
	Old, New float64
	// Relative is |new−old| / max(|old|, tiny).
	Relative float64
	// Missing marks metrics present in only one side.
	Missing string // "", "baseline" or "current"
}

// Compare returns every metric whose relative deviation exceeds the
// tolerance, plus metrics present on only one side, sorted by key.
func Compare(baseline, current *Baseline, tolerance float64) []Diff {
	var out []Diff
	for key, oldV := range baseline.Metrics {
		newV, ok := current.Metrics[key]
		if !ok {
			out = append(out, Diff{Key: key, Old: oldV, Missing: "current"})
			continue
		}
		den := math.Max(math.Abs(oldV), 1e-12)
		rel := math.Abs(newV-oldV) / den
		if rel > tolerance {
			out = append(out, Diff{Key: key, Old: oldV, New: newV, Relative: rel})
		}
	}
	for key, newV := range current.Metrics {
		if _, ok := baseline.Metrics[key]; !ok {
			out = append(out, Diff{Key: key, New: newV, Missing: "baseline"})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Format renders a diff list for humans ("" when empty).
func Format(diffs []Diff) string {
	if len(diffs) == 0 {
		return ""
	}
	out := fmt.Sprintf("%d metric(s) deviate from the baseline:\n", len(diffs))
	for _, d := range diffs {
		switch d.Missing {
		case "current":
			out += fmt.Sprintf("  %-40s missing from current run (baseline %.4g)\n", d.Key, d.Old)
		case "baseline":
			out += fmt.Sprintf("  %-40s new metric (%.4g)\n", d.Key, d.New)
		default:
			out += fmt.Sprintf("  %-40s %.4g → %.4g (%+.1f%%)\n",
				d.Key, d.Old, d.New, 100*d.Relative)
		}
	}
	return out
}

// Collect builds a full baseline from the standard artefact set.
func Collect(cfg experiments.Config, label string) (*Baseline, error) {
	b := New(label)
	t2, err := experiments.Table2(cfg)
	if err != nil {
		return nil, err
	}
	b.AddTable("table2", t2)
	t3, err := experiments.Table3(cfg)
	if err != nil {
		return nil, err
	}
	b.AddTable("table3", t3)
	for _, num := range []int{4, 5, 6, 7} {
		f, err := experiments.Figure(num, cfg)
		if err != nil {
			return nil, err
		}
		b.AddFigure(fmt.Sprintf("fig%d", num), f)
	}
	return b, nil
}
