package report

import (
	"path/filepath"
	"strings"
	"testing"

	"loopsched/internal/experiments"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	b := New("small")
	b.Put("x/y", 1.5)
	b.Put("a/b", -2)
	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != "small" || got.Metrics["x/y"] != 1.5 || got.Metrics["a/b"] != -2 {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCompare(t *testing.T) {
	old := New("c")
	old.Put("a", 10)
	old.Put("b", 5)
	old.Put("gone", 1)
	cur := New("c")
	cur.Put("a", 10.2) // +2%
	cur.Put("b", 7)    // +40%
	cur.Put("fresh", 3)

	diffs := Compare(old, cur, 0.05)
	byKey := map[string]Diff{}
	for _, d := range diffs {
		byKey[d.Key] = d
	}
	if _, flagged := byKey["a"]; flagged {
		t.Error("2% deviation flagged at 5% tolerance")
	}
	if d, flagged := byKey["b"]; !flagged || d.Relative < 0.39 {
		t.Errorf("40%% deviation not flagged: %+v", d)
	}
	if d := byKey["gone"]; d.Missing != "current" {
		t.Errorf("missing metric not flagged: %+v", d)
	}
	if d := byKey["fresh"]; d.Missing != "baseline" {
		t.Errorf("new metric not flagged: %+v", d)
	}
	// Sorted output.
	for i := 1; i < len(diffs); i++ {
		if diffs[i].Key < diffs[i-1].Key {
			t.Errorf("diffs unsorted: %+v", diffs)
		}
	}
	out := Format(diffs)
	for _, want := range []string{"b", "gone", "fresh", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	if Format(nil) != "" {
		t.Error("empty diff formatted non-empty")
	}
}

// TestCollectDeterministic: collecting twice at the same config
// produces zero diffs — the reproduction is exactly repeatable.
func TestCollectDeterministic(t *testing.T) {
	cfg := experiments.Small()
	a, err := Collect(cfg, "small")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(cfg, "small")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Metrics) < 40 {
		t.Fatalf("only %d metrics collected", len(a.Metrics))
	}
	if diffs := Compare(a, b, 0); len(diffs) != 0 {
		t.Errorf("deterministic collection diverged:\n%s", Format(diffs))
	}
	// Spot-check key presence.
	for _, key := range []string{
		"table2/dedicated/TSS/Tp",
		"table3/nondedicated/DTSS/Tp",
		"fig6/DTSS/Sp@p=8",
	} {
		if _, ok := a.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
}
