package service

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/workload"
)

// soakJob is the test-side ground truth for one submitted job.
type soakJob struct {
	idx       int
	n         int
	tenant    string
	injected  bool // one body panic on the first attempt
	cancelled bool // Cancel() returned true
	job       *Job
	counts    []atomic.Int32
}

// TestSoakMultiTenant drives one shared fleet with a concurrent stream
// of jobs from five tenants — mixed schemes, priorities, weights,
// injected body panics (retried) and mid-flight cancellations — and
// then reconciles every report against the scraped telemetry:
//
//   - every successful job executed each iteration exactly once per
//     attempt (exactly once when it was never retried);
//   - per-tenant chunk and iteration totals from the aggregator equal
//     the sums over the tenant's job handles, cancelled jobs included;
//   - the Prometheus rendering agrees with the same sums;
//   - cancelling one job never stalls the others (the whole stream
//     drains).
func TestSoakMultiTenant(t *testing.T) {
	bus := telemetry.NewBus(1 << 17)
	agg := telemetry.NewAggregator(bus.Dropped)
	bus.Subscribe(agg)
	defer bus.Close()

	// A scale-1 fleet: WorkScale > 1 repeats bodies (slow-machine
	// emulation), which would break the exactly-once counts below.
	s, err := New(Options{
		Workers:      fleet(1, 1, 1, 1, 1, 1),
		Window:       4,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Telemetry:    bus,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ctx := testCtx(t)

	tenants := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	schemes := []sched.Scheme{
		sched.CSSScheme{K: 4},
		sched.GSSScheme{},
		sched.NewDCSS(4),
		sched.NewDGSS(2),
	}
	const total = 120
	jobs := make([]*soakJob, total)
	for i := range jobs {
		jobs[i] = &soakJob{
			idx:      i,
			n:        150 + (i%16)*25,
			tenant:   tenants[i%len(tenants)],
			injected: i%13 == 5,
		}
		jobs[i].counts = make([]atomic.Int32, jobs[i].n)
	}

	// Submit concurrently from several goroutines: the admission path
	// must hold up under contention, not just a for loop.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < total; i += 6 {
				sj := jobs[i]
				var tripped atomic.Bool
				body := func(i int) { sj.counts[i].Add(1) }
				if sj.injected {
					mid := sj.n / 3
					body = func(i int) {
						if i == mid && tripped.CompareAndSwap(false, true) {
							panic("injected worker death")
						}
						sj.counts[i].Add(1)
					}
				}
				spec := JobSpec{
					Scheme:   schemes[sj.idx%len(schemes)],
					Workload: workload.Uniform{N: sj.n},
					Body:     body,
					Tenant:   sj.tenant,
					Priority: sj.idx % 3,
					Weight:   float64(1 + sj.idx%2),
				}
				if sj.idx%7 == 0 {
					spec.Deadline = time.Now().Add(time.Hour)
				}
				j, err := s.Submit(ctx, spec)
				if err != nil {
					t.Errorf("Submit %d: %v", sj.idx, err)
					return
				}
				sj.job = j
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Cancel a spread of jobs mid-flight (disjoint from the injected
	// set, so retry accounting stays deterministic).
	for i := 15; i < total; i += 15 {
		jobs[i].cancelled = jobs[i].job.Cancel()
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	var succeeded, cancelled, requeued int
	sumChunks := map[string]uint64{}
	sumIters := map[string]uint64{}
	jobCount := map[string]uint64{}
	for _, sj := range jobs {
		j := sj.job
		jobCount[sj.tenant]++
		sumChunks[sj.tenant] += uint64(j.ChunksGranted())
		sumIters[sj.tenant] += uint64(j.Granted())
		rep, werr := j.Wait(ctx)
		switch {
		case sj.cancelled:
			cancelled++
			if !errors.Is(werr, ErrCancelled) {
				t.Errorf("job %d: cancelled but err = %v", sj.idx, werr)
			}
		default:
			succeeded++
			if werr != nil {
				t.Errorf("job %d (%s): %v", sj.idx, sj.tenant, werr)
				continue
			}
			if rep.Iterations != sj.n {
				t.Errorf("job %d: Iterations = %d, want %d", sj.idx, rep.Iterations, sj.n)
			}
			wantAttempts := 1
			if sj.injected {
				wantAttempts = 2
				requeued++
			}
			if got := j.Attempts(); got != wantAttempts {
				t.Errorf("job %d: Attempts = %d, want %d", sj.idx, got, wantAttempts)
			}
			for i := range sj.counts {
				c := sj.counts[i].Load()
				if !sj.injected && c != 1 {
					t.Fatalf("job %d: iteration %d executed %d times, want exactly 1", sj.idx, i, c)
				}
				if sj.injected && (c < 1 || c > 2) {
					t.Fatalf("job %d: iteration %d executed %d times, want 1..2 (once per attempt)", sj.idx, i, c)
				}
			}
		}
	}
	if succeeded+cancelled != total {
		t.Fatalf("accounted %d jobs of %d", succeeded+cancelled, total)
	}
	if st := s.Stats(); st.Queued != 0 || st.Active != 0 || st.Outstanding != 0 {
		t.Errorf("Stats after drain = %+v, want empty", st)
	}

	// Telemetry reconciliation: the aggregator saw exactly what the job
	// handles report, tenant by tenant.
	bus.Flush()
	if d := bus.Dropped(); d != 0 {
		t.Fatalf("bus dropped %d events; reconciliation needs a lossless ring", d)
	}
	snap := agg.Snapshot()
	if snap.JobsSubmitted != total {
		t.Errorf("JobsSubmitted = %d, want %d", snap.JobsSubmitted, total)
	}
	if int(snap.JobsFinished) != succeeded {
		t.Errorf("JobsFinished = %d, want %d", snap.JobsFinished, succeeded)
	}
	if int(snap.JobsCancelled) != cancelled {
		t.Errorf("JobsCancelled = %d, want %d", snap.JobsCancelled, cancelled)
	}
	if int(snap.JobsRequeued) != requeued {
		t.Errorf("JobsRequeued = %d, want %d", snap.JobsRequeued, requeued)
	}
	for _, tn := range tenants {
		ts, ok := snap.Tenants[tn]
		if !ok {
			t.Errorf("tenant %q missing from snapshot", tn)
			continue
		}
		if ts.Jobs != jobCount[tn] {
			t.Errorf("tenant %s: Jobs = %d, want %d", tn, ts.Jobs, jobCount[tn])
		}
		if ts.Chunks != sumChunks[tn] {
			t.Errorf("tenant %s: telemetry Chunks = %d, summed job chunks = %d", tn, ts.Chunks, sumChunks[tn])
		}
		if ts.Iterations != sumIters[tn] {
			t.Errorf("tenant %s: telemetry Iterations = %d, summed job grants = %d", tn, ts.Iterations, sumIters[tn])
		}
	}

	// The scraped Prometheus rendering must agree with the same sums.
	var buf bytes.Buffer
	if err := agg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	scraped := scrapeTenantCounter(t, buf.String(), "loopsched_tenant_chunks_total")
	for _, tn := range tenants {
		if scraped[tn] != sumChunks[tn] {
			t.Errorf("scraped chunks for %s = %d, summed job chunks = %d", tn, scraped[tn], sumChunks[tn])
		}
	}
}

// scrapeTenantCounter parses `name{tenant="x"} value` lines from a
// Prometheus text exposition.
func scrapeTenantCounter(t *testing.T, text, name string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	prefix := name + `{tenant="`
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		q := strings.Index(rest, `"`)
		if q < 0 {
			t.Fatalf("malformed metric line: %s", line)
		}
		tenant := rest[:q]
		fields := strings.Fields(rest[q+2:])
		if len(fields) != 1 {
			t.Fatalf("malformed metric line: %s", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		out[tenant] = uint64(v)
	}
	if len(out) == 0 {
		t.Fatalf("no %s series in scrape:\n%s", name, text)
	}
	return out
}

// TestCancellationNeverStallsOthers pairs each tenant with a victim
// job that gets cancelled the moment it starts and a bystander that
// must still finish promptly.
func TestCancellationNeverStallsOthers(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1, 1, 1)})
	ctx := testCtx(t)
	type pair struct{ victim, bystander *Job }
	var pairs []pair
	for i := 0; i < 8; i++ {
		tn := fmt.Sprintf("tenant-%d", i%4)
		victim, err := s.Submit(ctx, withTenant(uniformSpec(1<<20, func(int) {}), tn))
		if err != nil {
			t.Fatalf("Submit victim %d: %v", i, err)
		}
		bystander, err := s.Submit(ctx, withTenant(uniformSpec(2000, nil), tn))
		if err != nil {
			t.Fatalf("Submit bystander %d: %v", i, err)
		}
		pairs = append(pairs, pair{victim, bystander})
	}
	for _, p := range pairs {
		p.victim.Cancel()
	}
	for i, p := range pairs {
		if _, err := p.bystander.Wait(ctx); err != nil {
			t.Errorf("bystander %d stalled by cancellation: %v", i, err)
		}
	}
}
