package service

import (
	"testing"
	"time"

	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

// TestWeightedFairShare saturates the fleet with two tenants whose
// jobs carry 2:1 fairness weights and checks that the arbiter's
// granted-iteration totals track the weights. CSS is a fixed-chunk
// scheme, so every refill costs the same and deficit-round-robin's
// long-run ratio is the weight ratio; the tolerance absorbs the
// bounded per-round overdraft (one credit window of chunks).
func TestWeightedFairShare(t *testing.T) {
	s := newTestScheduler(t, Options{
		Workers: fleet(1, 1, 1, 1),
		Quantum: 32,
	})
	ctx := testCtx(t)
	submit := func(tenant string, weight float64) *Job {
		j, err := s.Submit(ctx, JobSpec{
			Scheme:   sched.CSSScheme{K: 4},
			Workload: workload.Uniform{N: 1 << 21},
			Body:     func(int) {},
			Tenant:   tenant,
			Weight:   weight,
		})
		if err != nil {
			t.Fatalf("Submit %s: %v", tenant, err)
		}
		return j
	}
	heavy := submit("heavy", 2)
	light := submit("light", 1)

	// Let the fleet grant a meaningful share of both loops, then
	// snapshot. 120k iterations is ~2000 arbitrated refills, far past
	// DRR's warm-up.
	const target = 120_000
	deadline := time.Now().Add(20 * time.Second)
	var gh, gl int64
	for {
		gh, gl = heavy.Granted(), light.Granted()
		if gh+gl >= target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet too slow: granted %d+%d of %d", gh, gl, target)
		}
		time.Sleep(time.Millisecond)
	}
	heavy.Cancel()
	light.Cancel()

	if gl == 0 {
		t.Fatal("light tenant starved: 0 iterations granted")
	}
	ratio := float64(gh) / float64(gl)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("granted ratio heavy:light = %.3f (heavy=%d light=%d), want 2.0 within 10%%", ratio, gh, gl)
	}

	// Both cancellations leave the fleet serviceable.
	after, err := s.Submit(ctx, uniformSpec(500, nil))
	if err != nil {
		t.Fatalf("Submit after cancels: %v", err)
	}
	if _, err := after.Wait(ctx); err != nil {
		t.Fatalf("job after cancels: %v", err)
	}
}

// TestStrictPriority pins the fleet with a saturating low-priority job
// and checks a later high-priority job's backlog is granted ahead of
// it: while the high-priority loop still has work, the low class gets
// essentially no new credit. Both bodies sleep so grant rates are slow
// enough to observe; the baseline is taken only once the high job is
// seen running, so admission-latency grants don't count against it.
func TestStrictPriority(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1), Quantum: 16})
	ctx := testCtx(t)
	low, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: workload.Uniform{N: 1 << 21},
		Body:     func(int) { time.Sleep(5 * time.Microsecond) },
		Priority: 0,
	})
	if err != nil {
		t.Fatalf("Submit low: %v", err)
	}
	waitState(t, low, StateRunning)

	const hiN = 5000
	high, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: workload.Uniform{N: hiN},
		Body:     func(int) { time.Sleep(20 * time.Microsecond) },
		Priority: 5,
	})
	if err != nil {
		t.Fatalf("Submit high: %v", err)
	}
	waitState(t, high, StateRunning)
	base := low.Granted()
	if _, err := high.Wait(ctx); err != nil {
		t.Fatalf("high: %v", err)
	}
	lowDuring := low.Granted() - base
	low.Cancel()
	// While the high-priority job had backlog, low could only be
	// granted by a refill already in flight at admission or during the
	// high job's drained tail — a few credit windows, not a share.
	if lowDuring > 2000 {
		t.Errorf("low-priority job was granted %d iterations while a high-priority backlog existed (high ran %d)", lowDuring, hiN)
	}
}
