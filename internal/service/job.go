package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

// Report is the paper-style execution report a finished job returns.
type Report = metrics.Report

// JobSpec describes one loop job for Scheduler.Submit.
type JobSpec struct {
	// Scheme is the self-scheduling scheme (required).
	Scheme sched.Scheme
	// Workload is the loop: its length and per-iteration costs
	// (required).
	Workload workload.Workload
	// Body executes one iteration for its side effects (required). It
	// must be safe for concurrent invocation on distinct iterations.
	Body func(i int)
	// Tenant names the submitting tenant for quotas, fairness and
	// telemetry attribution. Empty means "default".
	Tenant string
	// Priority orders jobs strictly: the arbiter never grants work to
	// a job while a runnable job with a higher Priority wants credit.
	// Equal priorities share by Weight. Zero is the normal class.
	Priority int
	// Weight is the job's fair share within its priority class
	// (deficit-round-robin credit per round). <= 0 means 1.
	Weight float64
	// Deadline, when set, fails the job (context.DeadlineExceeded)
	// if it has not finished by then. Chunks already being executed
	// still run to completion.
	Deadline time.Time
	// Retries is the re-admission budget when an attempt fails: 0
	// inherits the scheduler's Options.Retries, a negative value
	// disables retries for this job.
	Retries int
}

// validate applies the same structural checks Run's RunSpec validation
// applies, so Submit and Run reject bad specs identically.
func (spec JobSpec) validate() error {
	if spec.Scheme == nil {
		return fmt.Errorf("service: JobSpec.Scheme is required")
	}
	if spec.Workload == nil {
		return fmt.Errorf("service: JobSpec.Workload is required")
	}
	if spec.Body == nil {
		return fmt.Errorf("service: JobSpec.Body is required")
	}
	return nil
}

// retryBudget resolves the job's effective retry budget.
func (spec JobSpec) retryBudget(def int) int {
	switch {
	case spec.Retries < 0:
		return 0
	case spec.Retries == 0:
		return def
	default:
		return spec.Retries
	}
}

// State is a job's lifecycle state.
type State int32

const (
	// StateQueued means waiting for admission (or for a retry slot).
	StateQueued State = iota
	// StateRunning means admitted: chunks are being granted/executed.
	StateRunning
	// StateSucceeded means every iteration executed exactly once.
	StateSucceeded
	// StateFailed means the job failed terminally.
	StateFailed
	// StateCancelled means the job was withdrawn.
	StateCancelled
)

// Terminal reports whether the state is final.
func (st State) Terminal() bool {
	return st == StateSucceeded || st == StateFailed || st == StateCancelled
}

// String returns the lower-case state name.
func (st State) String() string {
	switch st {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return "invalid"
}

// attempt is one admission's execution state: the fleet-shared
// JobState plus per-worker accounting for the report. comp and iters
// are atomics so a cancelled job's report can be snapshotted while a
// worker is still finishing its in-flight chunk.
type attempt struct {
	js    *exec.JobState
	comp  []atomic.Int64 // per-worker computation nanoseconds
	iters []atomic.Int64 // per-worker executed iterations
}

// workerTimes renders one worker's slice of the attempt for the report.
func workerTimes(att *attempt, i int) metrics.Times {
	return metrics.Times{Comp: time.Duration(att.comp[i].Load()).Seconds()}
}

// Job is a handle on one submitted job. All methods are safe for
// concurrent use.
type Job struct {
	s         *Scheduler
	id        int
	spec      JobSpec
	tenant    *tenant
	submitted time.Time

	state atomic.Int32
	att   atomic.Pointer[attempt]
	done  chan struct{}

	// Guarded by s.mu.
	attempts int
	deficit  float64
	retryAt  time.Time
	started  time.Time
	err      error
	report   Report
	// Cumulative grant accounting across finished attempts (the live
	// attempt's share is added on read). These reconcile exactly with
	// the job's ChunkGranted telemetry: attempts are aborted under the
	// refill mutex before being counted, so no grant is ever missed.
	chunksTotal  int
	grantedTotal int64
}

// ID returns the scheduler-assigned job id (1-based; matches the Job
// tag on the job's telemetry events).
func (j *Job) ID() int { return j.id }

// Tenant returns the tenant name the job was submitted under.
func (j *Job) Tenant() string { return j.tenant.name }

// State returns the job's current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Attempts returns how many times the job has been admitted.
func (j *Job) Attempts() int {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.attempts
}

// Granted returns the iterations granted to the job so far, summed
// across every attempt (frozen once the job is terminal). It matches
// the iterations the job's ChunkGranted telemetry reports exactly.
func (j *Job) Granted() int64 {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	g := j.grantedTotal
	if att := j.att.Load(); att != nil && !j.State().Terminal() {
		g += att.js.Granted()
	}
	return g
}

// ChunksGranted returns the chunks granted to the job so far, summed
// across every attempt. It matches the job's ChunkGranted telemetry
// event count exactly, even for cancelled and retried jobs.
func (j *Job) ChunksGranted() int {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	c := j.chunksTotal
	if att := j.att.Load(); att != nil && !j.State().Terminal() {
		c += att.js.Counts().Chunks
	}
	return c
}

// Wait blocks until the job is terminal (returning its report and
// final error) or ctx is done (returning ctx's error).
func (j *Job) Wait(ctx context.Context) (Report, error) {
	select {
	case <-j.done:
		return j.report, j.err
	case <-ctx.Done():
		return Report{}, ctx.Err()
	}
}

// Report returns the job's report — final for terminal jobs, a live
// snapshot for running ones — plus the final error and whether the job
// is terminal.
func (j *Job) Report() (Report, error, bool) {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	if j.State().Terminal() {
		return j.report, j.err, true
	}
	return j.s.reportLocked(j), nil, false
}

// Cancel withdraws the job. Queued jobs never start; running jobs stop
// granting new chunks immediately, but chunks a worker already started
// run to completion (cancellation, like preemption, never splits a
// granted chunk). Cancel reports whether this call performed the
// cancellation; cancelling a terminal job is a false no-op. Cancelled
// jobs report ErrCancelled.
func (j *Job) Cancel() bool {
	s := j.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.State().Terminal() {
		return false
	}
	s.finishLocked(j, StateCancelled, ErrCancelled)
	return true
}

// weight resolves the job's effective fairness weight.
func (j *Job) weight() float64 {
	if j.spec.Weight > 0 {
		return j.spec.Weight
	}
	return 1
}
