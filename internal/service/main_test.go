package service

import (
	"os"
	"testing"

	"loopsched/internal/leakcheck"
)

// TestMain fails the binary if any goroutine started by the scheduler
// — fleet workers, the admission loop, bus drainers — survives the
// tests. Complements the static gojoin analyzer: the joins it proves
// exist must also fire.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
