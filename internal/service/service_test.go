package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

// fleet builds one WorkerSpec per scale factor.
func fleet(scales ...int) []*exec.WorkerSpec {
	ws := make([]*exec.WorkerSpec, len(scales))
	for i, sc := range scales {
		ws[i] = &exec.WorkerSpec{WorkScale: sc}
	}
	return ws
}

// newTestScheduler starts a scheduler that is closed when the test
// ends, defaulting to a homogeneous 4-worker fleet.
func newTestScheduler(t *testing.T, o Options) *Scheduler {
	t.Helper()
	if len(o.Workers) == 0 {
		o.Workers = fleet(1, 1, 1, 1)
	}
	s, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// testCtx returns a context that expires comfortably before go test's
// own timeout, so a stuck scheduler fails loudly instead of hanging.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// uniformSpec is a plain CSS job over a uniform loop.
func uniformSpec(n int, body func(i int)) JobSpec {
	if body == nil {
		body = func(int) {}
	}
	return JobSpec{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: workload.Uniform{N: n},
		Body:     body,
	}
}

// blockingJob submits a job whose iterations block until release is
// called. n is the iteration count (CSS chunk 1, so the job occupies
// up to n workers). release is idempotent.
func blockingJob(t *testing.T, s *Scheduler, tenant string, n int) (*Job, func()) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	j, err := s.Submit(context.Background(), JobSpec{
		Scheme:   sched.CSSScheme{K: 1},
		Workload: workload.Uniform{N: n},
		Body:     func(int) { <-ch },
		Tenant:   tenant,
	})
	if err != nil {
		t.Fatalf("Submit blocking job: %v", err)
	}
	t.Cleanup(release)
	return j, release
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %v, want %v", j.ID(), j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestScheduler(t, Options{})
	ctx := testCtx(t)
	base := uniformSpec(100, nil)
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"missing scheme", func(sp *JobSpec) { sp.Scheme = nil }, "Scheme is required"},
		{"missing workload", func(sp *JobSpec) { sp.Workload = nil }, "Workload is required"},
		{"missing body", func(sp *JobSpec) { sp.Body = nil }, "Body is required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mut(&spec)
			if _, err := s.Submit(ctx, spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit: err = %v, want %q", err, tc.want)
			}
		})
	}
	if _, err := s.Submit(ctx, base); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestJobLifecycle(t *testing.T) {
	// A scale-1 fleet: WorkScale > 1 repeats the body to emulate slow
	// machines, which would break the exactly-once body count below.
	s := newTestScheduler(t, Options{Workers: fleet(1, 1, 1, 1)})
	ctx := testCtx(t)
	const n = 5000
	counts := make([]atomic.Int32, n)
	j, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 7},
		Workload: workload.Uniform{N: n},
		Body:     func(i int) { counts[i].Add(1) },
		Tenant:   "acme",
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.ID() < 1 {
		t.Errorf("ID() = %d, want >= 1", j.ID())
	}
	if got := j.Tenant(); got != "acme" {
		t.Errorf("Tenant() = %q, want acme", got)
	}
	rep, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.State() != StateSucceeded {
		t.Fatalf("State = %v, want succeeded", j.State())
	}
	if rep.Iterations != n {
		t.Errorf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if rep.Workers != 4 {
		t.Errorf("Workers = %d, want 4", rep.Workers)
	}
	if rep.Chunks == 0 {
		t.Error("Chunks = 0, want > 0")
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("iteration %d executed %d times, want exactly 1", i, c)
		}
	}
	if g := j.Granted(); g != n {
		t.Errorf("Granted = %d, want %d", g, n)
	}
	if got := j.Attempts(); got != 1 {
		t.Errorf("Attempts = %d, want 1", got)
	}
	if j.Cancel() {
		t.Error("Cancel on a terminal job returned true")
	}
	select {
	case <-j.Done():
	default:
		t.Error("Done() channel not closed after Wait")
	}
}

func TestStreamOfSchemes(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 2, 1, 3)})
	ctx := testCtx(t)
	schemes := []sched.Scheme{
		sched.CSSScheme{K: 8},
		sched.GSSScheme{},
		sched.NewDCSS(8),
		sched.NewDGSS(2),
	}
	var jobs []*Job
	for r := 0; r < 6; r++ {
		for si, sc := range schemes {
			n := 300 + 50*si
			j, err := s.Submit(ctx, JobSpec{
				Scheme:   sc,
				Workload: workload.Uniform{N: n},
				Body:     func(int) {},
				Tenant:   []string{"a", "b"}[r%2],
				Priority: si % 2,
			})
			if err != nil {
				t.Fatalf("Submit round %d scheme %s: %v", r, sc.Name(), err)
			}
			jobs = append(jobs, j)
		}
	}
	for _, j := range jobs {
		rep, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d (%s): %v", j.ID(), rep.Scheme, err)
		}
		if rep.Iterations != j.spec.Workload.Len() {
			t.Errorf("job %d: Iterations = %d, want %d", j.ID(), rep.Iterations, j.spec.Workload.Len())
		}
	}
	if st := s.Stats(); st.Outstanding != 0 || st.Queued != 0 || st.Active != 0 {
		t.Errorf("Stats after all jobs done = %+v, want all zero", st)
	}
}

func TestTenantQueueQuota(t *testing.T) {
	s := newTestScheduler(t, Options{
		Workers:            fleet(1, 1),
		MaxActive:          1,
		MaxQueuedPerTenant: 1,
	})
	ctx := testCtx(t)
	running, release := blockingJob(t, s, "t", 1)
	waitState(t, running, StateRunning)

	q1, err := s.Submit(ctx, withTenant(uniformSpec(50, nil), "t"))
	if err != nil {
		t.Fatalf("first queued submit: %v", err)
	}
	if _, err := s.Submit(ctx, withTenant(uniformSpec(50, nil), "t")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-quota submit: err = %v, want ErrQueueFull", err)
	}
	// Another tenant's queue is unaffected.
	q2, err := s.Submit(ctx, withTenant(uniformSpec(50, nil), "other"))
	if err != nil {
		t.Fatalf("other-tenant submit: %v", err)
	}
	release()
	for _, j := range []*Job{running, q1, q2} {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
	}
}

func withTenant(spec JobSpec, tenant string) JobSpec {
	spec.Tenant = tenant
	return spec
}

func TestMaxActivePerTenant(t *testing.T) {
	s := newTestScheduler(t, Options{
		Workers:            fleet(1, 1, 1, 1),
		MaxActivePerTenant: 1,
	})
	ctx := testCtx(t)
	a1, release := blockingJob(t, s, "a", 1)
	waitState(t, a1, StateRunning)

	a2, err := s.Submit(ctx, withTenant(uniformSpec(50, nil), "a"))
	if err != nil {
		t.Fatalf("submit a2: %v", err)
	}
	b1, err := s.Submit(ctx, withTenant(uniformSpec(50, nil), "b"))
	if err != nil {
		t.Fatalf("submit b1: %v", err)
	}
	// Tenant b is not starved by a's quota...
	if _, err := b1.Wait(ctx); err != nil {
		t.Fatalf("b1: %v", err)
	}
	// ...while a's second job is still waiting for a's slot.
	if got := a2.State(); got != StateQueued {
		t.Fatalf("a2 state = %v, want queued while a1 blocks the tenant slot", got)
	}
	release()
	if _, err := a1.Wait(ctx); err != nil {
		t.Fatalf("a1: %v", err)
	}
	if _, err := a2.Wait(ctx); err != nil {
		t.Fatalf("a2: %v", err)
	}
}

func TestRetryAfterBodyPanic(t *testing.T) {
	s := newTestScheduler(t, Options{
		Workers:      fleet(1, 1),
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	ctx := testCtx(t)
	const n = 400
	counts := make([]atomic.Int32, n)
	var tripped atomic.Bool
	j, err := s.Submit(ctx, uniformSpec(n, func(i int) {
		if i == n/2 && tripped.CompareAndSwap(false, true) {
			panic("injected worker death")
		}
		counts[i].Add(1)
	}))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.State() != StateSucceeded {
		t.Fatalf("State = %v, want succeeded", j.State())
	}
	if got := j.Attempts(); got != 2 {
		t.Errorf("Attempts = %d, want 2", got)
	}
	if rep.Iterations != n {
		t.Errorf("Iterations = %d, want %d (the successful attempt covers the loop)", rep.Iterations, n)
	}
	for i := range counts {
		if c := counts[i].Load(); c < 1 || c > 2 {
			t.Fatalf("iteration %d executed %d times, want 1 or 2 (once per attempt at most)", i, c)
		}
	}
	// Cumulative grants cover both attempts.
	if g := j.Granted(); g < n {
		t.Errorf("Granted = %d, want >= %d across attempts", g, n)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	s := newTestScheduler(t, Options{
		Workers:      fleet(1, 1),
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})
	ctx := testCtx(t)
	j, err := s.Submit(ctx, uniformSpec(100, func(i int) {
		if i == 0 {
			panic("always fails")
		}
	}))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, werr := j.Wait(ctx)
	if werr == nil || !strings.Contains(werr.Error(), "panicked") {
		t.Fatalf("Wait err = %v, want body panic error", werr)
	}
	if j.State() != StateFailed {
		t.Fatalf("State = %v, want failed", j.State())
	}
	if got := j.Attempts(); got != 2 {
		t.Errorf("Attempts = %d, want 2 (original + one retry)", got)
	}

	// A job opting out of retries fails on its first attempt.
	noRetry, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: workload.Uniform{N: 100},
		Body: func(i int) {
			if i == 0 {
				panic("always fails")
			}
		},
		Retries: -1,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, werr := noRetry.Wait(ctx); werr == nil {
		t.Fatal("Wait: no error from a job that always panics")
	}
	if got := noRetry.Attempts(); got != 1 {
		t.Errorf("Attempts = %d, want 1 (Retries < 0 disables retries)", got)
	}
}

func TestDeadlineBeforeAdmission(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1)})
	ctx := testCtx(t)
	j, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: workload.Uniform{N: 100},
		Body:     func(int) {},
		Deadline: time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, werr := j.Wait(ctx)
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", werr)
	}
	if j.State() != StateFailed {
		t.Fatalf("State = %v, want failed", j.State())
	}
}

func TestDeadlineWhileRunning(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1)})
	ctx := testCtx(t)
	j, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 1},
		Workload: workload.Uniform{N: 1 << 20},
		Body:     func(int) { time.Sleep(100 * time.Microsecond) },
		Deadline: time.Now().Add(30 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, werr := j.Wait(ctx)
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", werr)
	}
	if rep.Iterations >= 1<<20 {
		t.Errorf("Iterations = %d: the deadline should have cut the job short", rep.Iterations)
	}
	// The fleet is still serviceable after the expiry.
	after, err := s.Submit(ctx, uniformSpec(200, nil))
	if err != nil {
		t.Fatalf("Submit after expiry: %v", err)
	}
	if _, err := after.Wait(ctx); err != nil {
		t.Fatalf("job after expiry: %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1), MaxActive: 1})
	ctx := testCtx(t)
	running, release := blockingJob(t, s, "", 1)
	waitState(t, running, StateRunning)

	queued, err := s.Submit(ctx, uniformSpec(50, nil))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !queued.Cancel() {
		t.Fatal("Cancel(queued) = false, want true")
	}
	if _, werr := queued.Wait(ctx); !errors.Is(werr, ErrCancelled) {
		t.Fatalf("queued Wait err = %v, want ErrCancelled", werr)
	}

	if !running.Cancel() {
		t.Fatal("Cancel(running) = false, want true")
	}
	if _, werr := running.Wait(ctx); !errors.Is(werr, ErrCancelled) {
		t.Fatalf("running Wait err = %v, want ErrCancelled", werr)
	}
	// Cancellation never stalls the rest of the stream: a fresh job
	// still runs to completion (one worker is still parked in the
	// cancelled job's blocking body; the other picks this up).
	next, err := s.Submit(ctx, uniformSpec(200, nil))
	if err != nil {
		t.Fatalf("Submit after cancel: %v", err)
	}
	if _, err := next.Wait(ctx); err != nil {
		t.Fatalf("job after cancel: %v", err)
	}
	release()
}

func TestDrain(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1, 1, 1)})
	ctx := testCtx(t)
	var jobs []*Job
	for i := 0; i < 20; i++ {
		j, err := s.Submit(ctx, withTenant(uniformSpec(300, nil), []string{"a", "b", "c"}[i%3]))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, j := range jobs {
		if j.State() != StateSucceeded {
			t.Errorf("job %d state after Drain = %v, want succeeded", j.ID(), j.State())
		}
	}
	if _, err := s.Submit(ctx, uniformSpec(10, nil)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: err = %v, want ErrDraining", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Submit(ctx, uniformSpec(10, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if err := s.Drain(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close: err = %v, want ErrClosed", err)
	}
}

func TestCloseCancelsOutstanding(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1), MaxActive: 1})
	ctx := testCtx(t)
	running, release := blockingJob(t, s, "", 1)
	waitState(t, running, StateRunning)
	queued, err := s.Submit(ctx, uniformSpec(50, nil))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Close blocks until the fleet joins, which needs the blocked body
	// to return; release it once Close is underway.
	go func() {
		time.Sleep(10 * time.Millisecond)
		release()
	}()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, j := range []*Job{running, queued} {
		if _, werr := j.Wait(ctx); !errors.Is(werr, ErrClosed) {
			t.Errorf("job %d Wait err = %v, want ErrClosed", j.ID(), werr)
		}
		if j.State() != StateCancelled {
			t.Errorf("job %d state = %v, want cancelled", j.ID(), j.State())
		}
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestUnschedulableSpecFailsPermanently(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: fleet(1, 1), Retries: 3})
	ctx := testCtx(t)
	// A negative-length loop cannot build a policy; the failure is
	// permanent — no retry can fix the spec.
	j, err := s.Submit(ctx, JobSpec{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: negativeWorkload{},
		Body:     func(int) {},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, werr := j.Wait(ctx); werr == nil {
		t.Fatal("Wait: no error from an unschedulable spec")
	}
	if j.State() != StateFailed {
		t.Fatalf("State = %v, want failed", j.State())
	}
	if got := j.Attempts(); got != 0 {
		t.Errorf("Attempts = %d, want 0 (plan errors fail before admission)", got)
	}
}

// negativeWorkload reports an impossible loop length, so every scheme
// refuses to plan it.
type negativeWorkload struct{}

func (negativeWorkload) Name() string     { return "negative" }
func (negativeWorkload) Len() int         { return -1 }
func (negativeWorkload) Cost(int) float64 { return 1 }
