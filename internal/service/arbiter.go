package service

import (
	"context"
	"fmt"
	"time"

	"loopsched/internal/exec"
)

// pickRefill is the credit arbiter: it chooses the job the next refill
// goes to. Arbitration is strict priority first — no job receives
// credit while a refillable job of a higher priority class exists —
// and weighted deficit-round-robin within a class: every round each
// runnable job's deficit grows by weight·quantum iterations, a refill
// is charged at the iterations it actually granted, and the job with
// the largest positive deficit spends next. Because a grant may
// overdraw (the policy decides chunk sizes, the arbiter doesn't split
// them), debt carries across rounds and long-run granted-iteration
// totals converge to the weight ratio. Preemption is implicit and
// exact: admitting a higher-priority job merely redirects future
// refills — chunks already granted stay where they are and run to
// completion, so no iteration is ever lost or re-executed.
func (s *Scheduler) pickRefill() (*Job, *exec.JobState) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	i := 0
	for i < len(s.active) {
		pri := s.active[i].spec.Priority
		var class []*Job
		end := i
		for end < len(s.active) && s.active[end].spec.Priority == pri {
			j := s.active[end]
			if att := j.att.Load(); att != nil && !att.js.Drained() {
				class = append(class, j)
			}
			end++
		}
		if len(class) > 0 {
			for {
				var best *Job
				for _, j := range class {
					if j.deficit > 0 && (best == nil || j.deficit > best.deficit) {
						best = j
					}
				}
				if best != nil {
					return best, best.att.Load().js
				}
				// New round: replenish the whole class; debt carries.
				for _, j := range class {
					j.deficit += j.weight() * float64(s.quantum)
				}
			}
		}
		i = end
	}
	return nil, nil
}

// charge debits a refill's granted iterations against the job's
// credit budget.
func (s *Scheduler) charge(j *Job, iters int) {
	s.mu.Lock()
	j.deficit -= float64(iters)
	s.mu.Unlock()
}

// expireLocked fails running jobs whose deadline has passed; the
// refill they were denied is the preemption point, so only
// not-yet-granted chunks are withheld. Callers hold s.mu.
func (s *Scheduler) expireLocked(now time.Time) {
	var expired []*Job
	for _, j := range s.active {
		if dl := j.spec.Deadline; !dl.IsZero() && now.After(dl) {
			expired = append(expired, j)
		}
	}
	for _, j := range expired {
		s.finishLocked(j, StateFailed,
			fmt.Errorf("service: job %d missed its deadline: %w", j.id, context.DeadlineExceeded))
	}
}
