// Package service is the long-lived multi-tenant scheduler: one shared
// worker fleet serving a stream of loop jobs. Where Run executes a
// single loop and tears its workers down, a Scheduler keeps the fleet
// (work-stealing deque workers, as in internal/exec's steal engine)
// alive and admits JobSpecs continuously: an admission queue enforces
// per-tenant quotas, an arbiter hands refill credit to ready jobs by
// strict priority and weighted deficit-round-robin, and a fail-queue
// re-admits jobs whose attempt died (a panicking body, the stand-in
// for a dying worker). Preemption only ever withholds not-yet-granted
// chunks — a chunk a worker has started always runs to completion — so
// every job that succeeds executed each of its iterations exactly
// once.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/exec"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

// Sentinel errors returned by Submit, Wait and Report.
var (
	// ErrClosed is returned by Submit after Close, and reported by
	// jobs the closing scheduler cancelled.
	ErrClosed = errors.New("service: scheduler closed")
	// ErrDraining is returned by Submit after Drain began.
	ErrDraining = errors.New("service: scheduler draining")
	// ErrCancelled is reported by jobs cancelled via Job.Cancel.
	ErrCancelled = errors.New("service: job cancelled")
	// ErrQueueFull is returned by Submit when the tenant's admission
	// queue quota is exhausted.
	ErrQueueFull = errors.New("service: tenant admission queue full")
)

// DefaultQuantum is the deficit-round-robin replenishment per unit of
// fairness weight per round, in iterations, when Options.Quantum is
// unset.
const DefaultQuantum = 64

// DefaultRetryBackoff is the fail-queue's base backoff when
// Options.RetryBackoff is unset; attempt k waits backoff << (k-1).
const DefaultRetryBackoff = 2 * time.Millisecond

// Options configures New.
type Options struct {
	// Workers is the shared fleet: one long-lived goroutine per entry,
	// heterogeneity emulated by WorkScale exactly as in exec.Local.
	Workers []*exec.WorkerSpec
	// Window is the per-refill credit window (chunks pulled from a
	// job's policy per arbitration grant); <= 0 means
	// exec.DefaultStealWindow.
	Window int
	// ACP is the availability model distributed schemes report with.
	ACP acp.Model
	// MaxActive caps concurrently running jobs fleet-wide (0 = no cap).
	MaxActive int
	// MaxActivePerTenant caps concurrently running jobs per tenant
	// (0 = no cap).
	MaxActivePerTenant int
	// MaxQueuedPerTenant caps jobs waiting for admission per tenant;
	// Submit fails with ErrQueueFull beyond it (0 = no cap).
	MaxQueuedPerTenant int
	// Retries is the default re-admission budget for jobs whose
	// attempt fails (JobSpec.Retries == 0 inherits it).
	Retries int
	// RetryBackoff is the fail-queue's base delay before re-admitting
	// a failed job (DefaultRetryBackoff when <= 0).
	RetryBackoff time.Duration
	// Quantum is the DRR replenishment per weight unit per round, in
	// iterations (DefaultQuantum when <= 0).
	Quantum int
	// DisableReplan turns off the majority re-plan in every job.
	DisableReplan bool
	// Telemetry, when non-nil, receives job lifecycle and chunk
	// events, tagged with job and tenant ids.
	Telemetry *telemetry.Bus
}

// tenant is one named tenant's admission accounting.
type tenant struct {
	id     int
	name   string
	queued int // jobs waiting (admission queue + fail-queue)
	active int // jobs running on the fleet
}

// Scheduler owns a worker fleet and schedules a stream of jobs on it.
// Create with New, feed with Submit, stop with Close.
type Scheduler struct {
	opts    Options
	p       int
	window  int
	quantum int
	virtual []float64 // paper-style virtual powers, slowest = 1
	bus     *telemetry.Bus

	mu          sync.Mutex
	cond        *sync.Cond // workers idle-wait for gen to move
	gen         uint64     // bumped whenever new work may exist
	pending     []*Job     // admission queue, submit order
	failq       []*Job     // failed attempts awaiting retryAt
	active      []*Job     // running jobs, priority-descending, stable
	tenants     map[string]*tenant
	nextJob     int
	nextTenant  int
	queueDepth  int // jobs in StateQueued (pending + failq, minus lazily removed)
	outstanding int // submitted jobs not yet terminal
	draining    bool
	closed      bool
	drainDone   chan struct{} // closed when draining && outstanding == 0

	admitCh chan struct{} // kicks the admission loop
	stop    chan struct{} // closed by Close; joins the admission loop
	wg      sync.WaitGroup
}

// Stats is a point-in-time summary of the scheduler's queues.
type Stats struct {
	Queued      int // jobs waiting for admission (incl. fail-queue)
	Active      int // jobs running on the fleet
	Outstanding int // submitted jobs not yet terminal
	Tenants     int // tenants seen
}

// New starts the fleet (one goroutine per worker plus the admission
// loop) and returns the ready scheduler. Close releases everything.
func New(o Options) (*Scheduler, error) {
	if len(o.Workers) == 0 {
		return nil, fmt.Errorf("service: Options.Workers is required")
	}
	p := len(o.Workers)
	window := o.Window
	if window <= 0 {
		window = exec.DefaultStealWindow
	}
	quantum := o.Quantum
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	maxScale := 1
	for _, ws := range o.Workers {
		if ws.WorkScale > maxScale {
			maxScale = ws.WorkScale
		}
	}
	s := &Scheduler{
		opts:    o,
		p:       p,
		window:  window,
		quantum: quantum,
		virtual: make([]float64, p),
		bus:     o.Telemetry,
		tenants: make(map[string]*tenant),
		admitCh: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	for i, ws := range o.Workers {
		scale := ws.WorkScale
		if scale < 1 {
			scale = 1
		}
		s.virtual[i] = float64(maxScale) / float64(scale)
	}
	s.cond = sync.NewCond(&s.mu)
	s.bus.BeginRun(telemetry.RunMeta{Backend: "service", Workers: p})
	s.wg.Add(1)
	go s.admissionLoop()
	for i := 0; i < p; i++ {
		s.wg.Add(1)
		go s.runWorker(i)
	}
	return s, nil
}

// Submit queues a job for admission. The returned Job is live
// immediately: Wait blocks until it reaches a terminal state, Cancel
// withdraws it. Submit fails fast on a bad spec (the same validation
// Run applies), a closed or draining scheduler, or an exhausted
// per-tenant queue quota.
func (s *Scheduler) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	t := s.tenantLocked(spec.Tenant)
	if q := s.opts.MaxQueuedPerTenant; q > 0 && t.queued >= q {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q already has %d jobs queued", ErrQueueFull, t.name, t.queued)
	}
	s.nextJob++
	j := &Job{
		s:         s,
		id:        s.nextJob,
		spec:      spec,
		tenant:    t,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	j.state.Store(int32(StateQueued))
	t.queued++
	s.queueDepth++
	s.outstanding++
	s.pending = append(s.pending, j)
	meta := telemetry.JobMeta{
		Job:        j.id,
		Tenant:     t.id,
		TenantName: t.name,
		Scheme:     spec.Scheme.Name(),
		Workload:   spec.Workload.Name(),
		Iterations: spec.Workload.Len(),
		Priority:   spec.Priority,
		Weight:     j.weight(),
	}
	s.mu.Unlock()

	// BeginJob flushes the bus, so it must not run under s.mu.
	s.bus.BeginJob(meta)
	e := s.jobEvent(telemetry.JobSubmitted, j)
	e.Size = spec.Workload.Len()
	s.bus.Publish(e)
	s.publishDepth()
	s.kickAdmit()
	return j, nil
}

// Drain stops admission of new jobs (Submit fails with ErrDraining)
// and blocks until every outstanding job reaches a terminal state or
// ctx is done. Draining is permanent; follow with Close.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.draining = true
	if s.outstanding == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drainDone == nil {
		s.drainDone = make(chan struct{})
	}
	ch := s.drainDone
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every non-terminal job (they report ErrClosed), stops
// the fleet and joins every goroutine the scheduler started. Close is
// idempotent and never blocks on in-flight chunk bodies longer than
// they take to finish: granted-but-unstarted chunks are discarded.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	jobs := make([]*Job, 0, len(s.pending)+len(s.failq)+len(s.active))
	jobs = append(jobs, s.pending...)
	jobs = append(jobs, s.failq...)
	jobs = append(jobs, s.active...)
	for _, j := range jobs {
		if !j.State().Terminal() {
			s.finishLocked(j, StateCancelled, ErrClosed)
		}
	}
	s.closed = true
	close(s.stop)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.publishDepth()
	return nil
}

// Stats returns a point-in-time queue summary.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Queued:      s.queueDepth,
		Active:      len(s.active),
		Outstanding: s.outstanding,
		Tenants:     len(s.tenants),
	}
}

// Workers returns the fleet size.
func (s *Scheduler) Workers() int { return s.p }

// tenantLocked returns (creating if needed) the named tenant. Tenant
// ids start at 1 so id 0 stays "untagged single run" in telemetry.
// Callers hold s.mu.
func (s *Scheduler) tenantLocked(name string) *tenant {
	if name == "" {
		name = "default"
	}
	t := s.tenants[name]
	if t == nil {
		s.nextTenant++
		t = &tenant{id: s.nextTenant, name: name}
		s.tenants[name] = t
	}
	return t
}

// jobEvent returns an event tagged with the job's identity.
func (s *Scheduler) jobEvent(kind telemetry.Kind, j *Job) telemetry.Event {
	return telemetry.Event{
		Kind: kind, Job: j.id, Tenant: j.tenant.id,
		At: s.bus.Now(),
	}
}

// publishDepth samples the admission-queue depth gauge.
func (s *Scheduler) publishDepth() {
	s.mu.Lock()
	depth := s.queueDepth
	s.mu.Unlock()
	s.bus.Publish(telemetry.Event{
		Kind: telemetry.JobQueueDepth, Size: depth,
		At: s.bus.Now(),
	})
}

// kickAdmit nudges the admission loop without blocking.
func (s *Scheduler) kickAdmit() {
	select {
	case s.admitCh <- struct{}{}:
	default:
	}
}

// bumpLocked wakes idle workers: new work may exist. Callers hold s.mu.
func (s *Scheduler) bumpLocked() {
	s.gen++
	s.cond.Broadcast()
}

// admissionLoop is the scheduler's long-lived admission goroutine: it
// moves due fail-queue entries back into the queue, admits whatever
// quota allows, and sleeps until kicked (a submit, a finished job
// freeing quota) or the earliest retry falls due. Close joins it via
// the stop channel.
func (s *Scheduler) admissionLoop() {
	defer s.wg.Done()
	for {
		s.admit()
		var tc <-chan time.Time
		var timer *time.Timer
		if d, ok := s.nextRetry(); ok {
			timer = time.NewTimer(d)
			tc = timer.C
		}
		select {
		case <-s.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-s.admitCh:
		case <-tc:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// nextRetry reports the wait until the earliest fail-queue retry.
func (s *Scheduler) nextRetry() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var earliest time.Time
	for _, j := range s.failq {
		if j.State() != StateQueued {
			continue
		}
		if earliest.IsZero() || j.retryAt.Before(earliest) {
			earliest = j.retryAt
		}
	}
	if earliest.IsZero() {
		return 0, false
	}
	d := time.Until(earliest)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, true
}

// admit runs one admission pass: due retries rejoin the queue, then
// every queued job the quotas allow starts on the fleet. Quota-blocked
// jobs do not block jobs behind them (skip-ahead), so one tenant's
// backlog never starves another tenant's admission.
func (s *Scheduler) admit() {
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// Fail-queue entries whose backoff elapsed rejoin the queue.
	rest := s.failq[:0]
	for _, j := range s.failq {
		if j.State() != StateQueued {
			continue // cancelled while parked; finishLocked already accounted it
		}
		if j.retryAt.After(now) {
			rest = append(rest, j)
			continue
		}
		s.pending = append(s.pending, j)
	}
	s.failq = rest

	keep := s.pending[:0]
	for _, j := range s.pending {
		if j.State() != StateQueued {
			continue // cancelled while queued; drop lazily
		}
		if dl := j.spec.Deadline; !dl.IsZero() && now.After(dl) {
			s.finishLocked(j, StateFailed, fmt.Errorf("service: job %d missed its deadline before admission: %w", j.id, context.DeadlineExceeded))
			continue
		}
		if !s.admissibleLocked(j) {
			keep = append(keep, j)
			continue
		}
		if err := s.startLocked(j, now); err != nil {
			// An unschedulable spec (the policy cannot be built) is a
			// permanent failure; retrying cannot fix it.
			s.finishLocked(j, StateFailed, err)
		}
	}
	s.pending = keep
	s.mu.Unlock()
	s.publishDepth()
}

// admissibleLocked applies the concurrency quotas. Callers hold s.mu.
func (s *Scheduler) admissibleLocked(j *Job) bool {
	if m := s.opts.MaxActive; m > 0 && len(s.active) >= m {
		return false
	}
	if m := s.opts.MaxActivePerTenant; m > 0 && j.tenant.active >= m {
		return false
	}
	return true
}

// startLocked begins one attempt: it plans the job's policy, allocates
// its per-worker deques and moves it into the active set. Callers hold
// s.mu.
func (s *Scheduler) startLocked(j *Job, now time.Time) error {
	var initACP []int
	if sched.Distributed(j.spec.Scheme) {
		initACP = make([]int, s.p)
		for i, ws := range s.opts.Workers {
			initACP[i] = s.opts.ACP.ACP(s.virtual[i], 1+ws.Load())
		}
	}
	js, err := exec.NewJobState(exec.JobConfig{
		Scheme:        j.spec.Scheme,
		Workload:      j.spec.Workload,
		Workers:       s.p,
		Window:        s.window,
		InitACP:       initACP,
		DisableReplan: s.opts.DisableReplan,
		Telemetry:     s.bus,
		Job:           j.id,
		Tenant:        j.tenant.id,
	})
	if err != nil {
		return err
	}
	att := &attempt{
		js:    js,
		comp:  make([]atomic.Int64, s.p),
		iters: make([]atomic.Int64, s.p),
	}
	j.att.Store(att)
	j.attempts++
	j.started = now
	j.deficit = 0
	j.tenant.queued--
	s.queueDepth--
	j.tenant.active++
	j.state.Store(int32(StateRunning))
	s.insertActiveLocked(j)
	e := s.jobEvent(telemetry.JobAdmitted, j)
	e.Size = j.spec.Workload.Len()
	e.Seconds = now.Sub(j.submitted).Seconds()
	s.bus.Publish(e)
	s.bumpLocked()
	return nil
}

// insertActiveLocked keeps active sorted by priority descending,
// stable in admission order within a priority class. Callers hold s.mu.
func (s *Scheduler) insertActiveLocked(j *Job) {
	i := len(s.active)
	for i > 0 && s.active[i-1].spec.Priority < j.spec.Priority {
		i--
	}
	s.active = append(s.active, nil)
	copy(s.active[i+1:], s.active[i:])
	s.active[i] = j
}

// removeActiveLocked drops j from the active set. Callers hold s.mu.
func (s *Scheduler) removeActiveLocked(j *Job) {
	for i, have := range s.active {
		if have == j {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// finishLocked is the single terminal transition: it snapshots the
// report, adjusts tenant accounting for the state the job leaves,
// publishes the lifecycle event and releases every waiter. Callers
// hold s.mu and guarantee j is not already terminal.
func (s *Scheduler) finishLocked(j *Job, final State, jerr error) {
	switch j.State() {
	case StateQueued:
		j.tenant.queued--
		s.queueDepth--
	case StateRunning:
		j.tenant.active--
		s.removeActiveLocked(j)
		if att := j.att.Load(); att != nil {
			// Abort first, then snapshot: Refill re-checks the abort
			// flag under the job mutex Counts acquires, so the report
			// sees every grant that will ever happen.
			att.js.Abort()
			counts := att.js.Counts()
			j.chunksTotal += counts.Chunks
			j.grantedTotal += counts.Granted
		}
	}
	j.report = s.reportLocked(j)
	j.err = jerr
	j.state.Store(int32(final))
	s.outstanding--
	if s.draining && s.outstanding == 0 && s.drainDone != nil {
		close(s.drainDone)
		s.drainDone = nil
	}
	var kind telemetry.Kind
	switch final {
	case StateSucceeded:
		kind = telemetry.JobFinished
	case StateFailed:
		kind = telemetry.JobFailed
	default:
		kind = telemetry.JobCancelled
	}
	e := s.jobEvent(kind, j)
	e.Size = j.report.Iterations
	if !j.started.IsZero() {
		e.Seconds = time.Since(j.started).Seconds()
	}
	s.bus.Publish(e)
	close(j.done)
	s.kickAdmit() // a slot may have freed
	s.bumpLocked()
}

// reportLocked builds the job's paper-style report from the current
// attempt. Callers hold s.mu.
func (s *Scheduler) reportLocked(j *Job) Report {
	rep := Report{}
	rep.Scheme = j.spec.Scheme.Name()
	rep.Workload = j.spec.Workload.Name()
	rep.Workers = s.p
	att := j.att.Load()
	if att == nil {
		return rep
	}
	counts := att.js.Counts()
	rep.Chunks = counts.Chunks
	rep.Replans = counts.Replans
	rep.Steals = int(counts.Steals)
	for i := 0; i < s.p; i++ {
		rep.PerWorker = append(rep.PerWorker, workerTimes(att, i))
		rep.Iterations += int(att.iters[i].Load())
	}
	if !j.started.IsZero() {
		rep.Tp = time.Since(j.started).Seconds()
	}
	return rep
}
