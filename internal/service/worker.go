package service

import (
	"fmt"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/workload"
)

// jobRef pairs a job with the attempt observed when the active set was
// snapshotted, so a worker never pops from a newer attempt's deques
// under an older attempt's identity.
type jobRef struct {
	job *Job
	att *attempt
}

// runWorker is one fleet goroutine's lifetime: acquire a chunk, run
// it, repeat until the scheduler closes. Join evidence is the
// scheduler WaitGroup.
func (s *Scheduler) runWorker(id int) {
	defer s.wg.Done()
	s.bus.Publish(telemetry.Event{
		Kind: telemetry.WorkerJoined, Worker: id,
		At: s.bus.Now(),
	})
	var cur *Job
	for {
		j, js, a, ok := s.next(id, cur)
		if !ok {
			return
		}
		cur = j
		s.execute(id, j, js, a)
	}
}

// next acquires the worker's next chunk: the last job's own deque
// first (locality), then every active job's own deque in priority
// order, then an arbitrated refill, then stealing from other workers.
// When the whole fleet looks empty it sleeps on the scheduler
// condition until the generation counter moves or the scheduler is
// closed (the false return).
func (s *Scheduler) next(id int, cur *Job) (*Job, *exec.JobState, sched.Assignment, bool) {
	for {
		if cur != nil && cur.State() == StateRunning {
			if att := cur.att.Load(); att != nil {
				if a, ok := att.js.Pop(id); ok {
					return cur, att.js, a, true
				}
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, nil, sched.Assignment{}, false
		}
		gen := s.gen
		refs := make([]jobRef, 0, len(s.active))
		for _, j := range s.active {
			if att := j.att.Load(); att != nil {
				refs = append(refs, jobRef{j, att})
			}
		}
		s.mu.Unlock()

		// Pass 1: pop our own deques, highest priority first.
		for _, r := range refs {
			if r.job == cur || r.job.State() != StateRunning {
				continue
			}
			if a, ok := r.att.js.Pop(id); ok {
				return r.job, r.att.js, a, true
			}
		}
		// Pass 2: spend one arbitrated refill credit.
		if j, js := s.pickRefill(); j != nil {
			a, granted, ok := js.Refill(id, s.acpNow(id), 0, 0)
			if granted > 0 {
				s.charge(j, granted)
			}
			if ok {
				// New chunks landed in our deque: wake sleepers to steal.
				s.mu.Lock()
				s.bumpLocked()
				s.mu.Unlock()
				return j, js, a, true
			}
			// The refill came back empty: the job just drained. If its
			// outstanding chunks are already executed this worker is
			// the one that observes completion.
			s.completeJob(j, js)
			continue
		}
		// Pass 3: steal queued chunks from other workers.
		for _, r := range refs {
			if r.job.State() != StateRunning {
				continue
			}
			if a, ok := r.att.js.Steal(id); ok {
				return r.job, r.att.js, a, true
			}
		}
		// Idle: sleep until the generation moves (new admission, a
		// refill, a finish) or the scheduler closes.
		s.mu.Lock()
		for s.gen == gen && !s.closed {
			s.cond.Wait()
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, nil, sched.Assignment{}, false
		}
	}
}

// acpNow probes worker id's current ACP.
func (s *Scheduler) acpNow(id int) int {
	return s.opts.ACP.ACP(s.virtual[id], 1+s.opts.Workers[id].Load())
}

// execute runs one chunk of one job on this worker, emulating the
// worker's WorkScale exactly as exec.Local does. A panicking body is
// the fleet's worker-death signal: the attempt is aborted and the job
// heads to the fail-queue (or fails terminally once its retry budget
// is spent). Chunks whose attempt was cancelled or requeued between
// acquisition and execution are discarded unrun.
func (s *Scheduler) execute(id int, j *Job, js *exec.JobState, a sched.Assignment) {
	att := j.att.Load()
	if att == nil || att.js != js || j.State() != StateRunning {
		return // stale chunk of a finished, cancelled or requeued attempt
	}
	scale := s.opts.Workers[id].WorkScale
	if scale < 1 {
		scale = 1
	}
	start := time.Now()
	err := runChunk(j.spec.Body, a, scale)
	elapsed := time.Since(start) // single reading: feedback == report accounting
	if err != nil {
		s.failAttempt(j, js, fmt.Errorf("service: job %d: %w", j.id, err))
		return
	}
	sec := elapsed.Seconds()
	att.comp[id].Add(int64(elapsed))
	att.iters[id].Add(int64(a.Size))
	js.Feedback(id, workload.RangeCost(js.Workload(), a.Start, a.End()), sec)
	if js.Complete(id, a, s.acpNow(id), sec) {
		s.completeJob(j, js)
	}
}

// runChunk executes one assignment, converting a body panic into an
// error so one job's crash never takes a fleet worker down.
func runChunk(body func(i int), a sched.Assignment, scale int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("body panicked on iteration range [%d,%d): %v", a.Start, a.End(), r)
		}
	}()
	for it := a.Start; it < a.End(); it++ {
		for rep := 0; rep < scale; rep++ {
			body(it)
		}
	}
	return nil
}

// completeJob finishes the job if its attempt has executed every
// granted iteration. Safe to call speculatively; only the current
// attempt of a still-running job can transition.
func (s *Scheduler) completeJob(j *Job, js *exec.JobState) {
	if !js.Finished() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	att := j.att.Load()
	if att == nil || att.js != js || j.State() != StateRunning {
		return
	}
	s.finishLocked(j, StateSucceeded, nil)
}

// failAttempt aborts the current attempt after a body panic and either
// parks the job on the fail-queue for a retry or fails it terminally.
func (s *Scheduler) failAttempt(j *Job, js *exec.JobState, ferr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	att := j.att.Load()
	if att == nil || att.js != js || j.State() != StateRunning {
		return // another worker already failed or finished this attempt
	}
	att.js.Abort()
	budget := j.spec.retryBudget(s.opts.Retries)
	if j.attempts > budget {
		s.finishLocked(j, StateFailed, ferr)
		return
	}
	// Requeue: the job goes back to Queued with exponential backoff.
	// The aborted attempt's grants fold into the cumulative totals
	// before the attempt pointer is dropped.
	counts := att.js.Counts()
	j.chunksTotal += counts.Chunks
	j.grantedTotal += counts.Granted
	j.att.Store(nil)
	j.tenant.active--
	s.removeActiveLocked(j)
	j.state.Store(int32(StateQueued))
	j.tenant.queued++
	s.queueDepth++
	shift := j.attempts - 1
	if shift > 10 {
		shift = 10
	}
	backoff := s.opts.RetryBackoff << shift
	if backoff > time.Second {
		backoff = time.Second
	}
	j.retryAt = time.Now().Add(backoff)
	s.failq = append(s.failq, j)
	e := s.jobEvent(telemetry.JobRequeued, j)
	e.Size = j.attempts
	s.bus.Publish(e)
	s.kickAdmit()
	s.bumpLocked()
}
