package acp

import (
	"testing"
	"testing/quick"
)

// TestSection52ExampleI reproduces worked example (I) of §5.2:
// V₁ = 1, Q₁ = 2 and V₂ = 3, Q₂ = 4. With the original integer
// division both ACPs are 0 and the computation stalls; with the
// decimal scale of 10 they become 5 and 7, A = 12.
func TestSection52ExampleI(t *testing.T) {
	original := Model{Scale: 1}
	if a := original.ACP(1, 2); a != 0 {
		t.Errorf("original DTSS A1 = %d, want 0", a)
	}
	if a := original.ACP(3, 4); a != 0 {
		t.Errorf("original DTSS A2 = %d, want 0", a)
	}

	improved := Model{Scale: 10}
	a1 := improved.ACP(1, 2)
	a2 := improved.ACP(3, 4)
	if a1 != 5 {
		t.Errorf("A1 = %d, want 5", a1)
	}
	if a2 != 7 {
		t.Errorf("A2 = %d, want 7", a2)
	}
	if a1+a2 != 12 {
		t.Errorf("A = %d, want 12", a1+a2)
	}
}

// TestSection52AMin reproduces the §5.2 threshold example: with
// A_min = 6, the slow machine (ACP 5) is excluded and only the quick
// one (ACP 7) computes.
func TestSection52AMin(t *testing.T) {
	m := Model{Scale: 10, MinACP: 6}
	acps, total := m.Snapshot([]Machine{
		{VirtualPower: 1, RunQueue: 2},
		{VirtualPower: 3, RunQueue: 4},
	})
	if acps[0] != 0 {
		t.Errorf("machine below A_min kept ACP %d", acps[0])
	}
	if acps[1] != 7 || total != 7 {
		t.Errorf("acps=%v total=%d, want [0 7] 7", acps, total)
	}
}

// TestSection52ExampleII reproduces worked example (II): decimal
// virtual power V = 3.4 with Q = 4 gives A = ⌊0.85·10⌋ = 8, where the
// integer-power model would under-estimate it as 7.
func TestSection52ExampleII(t *testing.T) {
	m := Model{Scale: 10}
	if a := m.ACP(3.4, 4); a != 8 {
		t.Errorf("decimal V: A = %d, want 8", a)
	}
	if a := m.ACP(3, 4); a != 7 {
		t.Errorf("integer V: A = %d, want 7", a)
	}
}

// TestDedicatedMachine: with Q = 1, ACP = scale·V (the §3.1 example:
// V = 2 with one extra process behaves like the slowest machine).
func TestDedicatedMachine(t *testing.T) {
	m := Model{Scale: 10}
	if a := m.ACP(2, 1); a != 20 {
		t.Errorf("dedicated V=2: %d, want 20", a)
	}
	if a := m.ACP(2, 2); a != 10 {
		t.Errorf("V=2 with an extra process: %d, want 10 (like the slowest PE)", a)
	}
}

func TestACPEdgeCases(t *testing.T) {
	m := Model{}
	if a := m.ACP(1, 0); a != DefaultScale {
		t.Errorf("Q<1 clamps to 1: got %d", a)
	}
	if a := m.ACP(0, 3); a != 0 {
		t.Errorf("zero power: got %d", a)
	}
	if a := m.ACP(-2, 3); a != 0 {
		t.Errorf("negative power: got %d", a)
	}
	if m.Available(0) {
		t.Error("ACP 0 must be unavailable")
	}
	if !m.Available(1) {
		t.Error("ACP 1 must be available with no threshold")
	}
}

func TestMajorityChanged(t *testing.T) {
	cases := []struct {
		old, new []int
		want     bool
	}{
		{[]int{1, 2, 3, 4}, []int{1, 2, 3, 4}, false},
		{[]int{1, 2, 3, 4}, []int{9, 2, 3, 4}, false}, // 1 of 4
		{[]int{1, 2, 3, 4}, []int{9, 9, 3, 4}, false}, // exactly half
		{[]int{1, 2, 3, 4}, []int{9, 9, 9, 4}, true},  // 3 of 4
		{[]int{1, 2, 3}, []int{9, 9, 3}, true},        // 2 of 3
		{[]int{1}, []int{1, 2}, true},                 // length change
		{nil, nil, false},
	}
	for _, c := range cases {
		if got := MajorityChanged(c.old, c.new); got != c.want {
			t.Errorf("MajorityChanged(%v, %v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}

// TestACPMonotone (property): ACP never increases when the run queue
// grows, and never decreases when virtual power grows.
func TestACPMonotone(t *testing.T) {
	m := Model{Scale: 100}
	f := func(v uint8, q uint8) bool {
		vp := 0.1 + float64(v%50)/5
		qq := int(q%8) + 1
		return m.ACP(vp, qq+1) <= m.ACP(vp, qq) && m.ACP(vp+1, qq) >= m.ACP(vp, qq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotAndFloats(t *testing.T) {
	m := Model{Scale: 10}
	acps, total := m.Snapshot([]Machine{
		{VirtualPower: 3, RunQueue: 1},
		{VirtualPower: 1, RunQueue: 1},
		{VirtualPower: 1, RunQueue: 2},
	})
	if total != 30+10+5 {
		t.Errorf("total = %d, want 45", total)
	}
	fs := Floats(acps)
	if fs[0] != 30 || fs[1] != 10 || fs[2] != 5 {
		t.Errorf("Floats = %v", fs)
	}
}

func TestModelString(t *testing.T) {
	if s := (Model{}).String(); s != "acp.Model{scale=10, min=0}" {
		t.Errorf("String() = %q", s)
	}
}
