// Package acp models Available Computing Power, the load signal that
// drives the paper's distributed self-scheduling schemes.
//
// Each slave P_i has a virtual power V_i (its dedicated speed relative
// to the slowest machine) and a run-queue length Q_i (how many
// CPU-bound processes currently share it, including the loop process
// itself). Section 3.1 defines A_i = ⌊V_i/Q_i⌋; section 5.2 replaces
// the integer division with decimal division scaled by a constant
// (10 or 100), so that partially loaded machines keep a non-zero —
// and much better resolved — ACP, and adds an availability threshold
// A_min below which a machine is not used at all.
package acp

import "fmt"

// DefaultScale is the paper's suggested decimal scale factor (§5.2:
// "scaling by a constant integer value (e.g. 10 or 100)").
const DefaultScale = 10

// Model computes ACPs from virtual powers and run-queue lengths.
type Model struct {
	// Scale multiplies V_i/Q_i before truncation. Scale 1 reproduces
	// the original DTSS integer behaviour (and its stall defect,
	// worked example (I) of §5.2); 0 means DefaultScale.
	Scale int
	// MinACP declares a machine unavailable when its scaled ACP falls
	// below this bound (§5.2's A_min). Zero disables the threshold.
	MinACP int
}

// scale returns the effective scale factor.
func (m Model) scale() int {
	if m.Scale <= 0 {
		return DefaultScale
	}
	return m.Scale
}

// ACP returns A_i = ⌊scale · V_i / Q_i⌋ for one machine. A run queue
// shorter than 1 is treated as 1 (the loop process itself is always
// running when A_i is computed — §3.1's observation).
func (m Model) ACP(virtualPower float64, runQueue int) int {
	if runQueue < 1 {
		runQueue = 1
	}
	if virtualPower <= 0 {
		return 0
	}
	return int(float64(m.scale()) * virtualPower / float64(runQueue))
}

// Available reports whether a machine with the given ACP may join the
// computation.
func (m Model) Available(acp int) bool {
	if acp <= 0 {
		return false
	}
	return acp >= m.MinACP
}

// Machine is one slave's static description.
type Machine struct {
	// VirtualPower is V_i, with 1 the slowest machine in the cluster.
	// Section 5.2 (II) explicitly allows decimals (e.g. 3.4).
	VirtualPower float64
	// RunQueue is Q_i, the current number of processes sharing the
	// CPU (at least 1: the loop process).
	RunQueue int
}

// Snapshot evaluates the model over a cluster: it returns each
// machine's ACP (0 for unavailable machines) and the total A.
func (m Model) Snapshot(machines []Machine) (acps []int, total int) {
	acps = make([]int, len(machines))
	for i, mc := range machines {
		a := m.ACP(mc.VirtualPower, mc.RunQueue)
		if !m.Available(a) {
			a = 0
		}
		acps[i] = a
		total += a
	}
	return acps, total
}

// Floats converts an ACP snapshot into the float powers that
// sched.Config consumes, dropping unavailable machines is the
// caller's job (a zero power is invalid there).
func Floats(acps []int) []float64 {
	out := make([]float64, len(acps))
	for i, a := range acps {
		out[i] = float64(a)
	}
	return out
}

// MajorityChanged reports whether more than half of the entries
// differ between two ACP status arrays — the DTSS step 2(c) re-plan
// trigger. Arrays of different lengths always trigger.
func MajorityChanged(old, new []int) bool {
	if len(old) != len(new) {
		return true
	}
	if len(old) == 0 {
		return false
	}
	changed := 0
	for i := range old {
		if old[i] != new[i] {
			changed++
		}
	}
	return 2*changed > len(old)
}

// String implements fmt.Stringer for diagnostics.
func (m Model) String() string {
	return fmt.Sprintf("acp.Model{scale=%d, min=%d}", m.scale(), m.MinACP)
}
