package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// DefaultStealWindow is the refill batch size when Local.Window is
// unset: one trip to the policy under the refill lock yields up to
// this many chunks, one executed immediately and the rest parked in
// the worker's deque for later pops or steals. It mirrors the wire
// path's credit window (PR 5): larger windows amortise the lock but
// delay feedback and re-planning, which only see ACP at refill time.
const DefaultStealWindow = 8

func (l *Local) stealWindow() int {
	if l.Window > 0 {
		return l.Window
	}
	return DefaultStealWindow
}

// stealRun drives one single-job work-stealing execution over a
// JobState — the fleet-shareable core holding the per-worker deques,
// the policy under its amortised refill mutex, and the masterless
// granted/completed/drained termination accounting. stealRun adds only
// what a one-shot run needs on top: the worker goroutines themselves,
// their ACP probes, and per-worker timing for the report.
type stealRun struct {
	l    *Local
	w    workload.Workload
	body func(i int)
	p    int

	virtual func(i int) float64
	start   time.Time

	js *JobState
}

// runSteal executes the loop with per-worker Chase–Lev deques instead
// of a channel master. Each worker pops its own deque (LIFO), then
// scans victims (FIFO steal), and only when the whole system looks
// empty takes the refill lock to pull a fresh batch from the policy —
// so the serialised section runs once per window, not once per chunk.
func (l *Local) runSteal(ctx context.Context, w workload.Workload, body func(i int)) (metrics.Report, error) {
	p := len(l.Workers)
	var rep metrics.Report
	rep.Scheme = l.Scheme.Name()
	rep.Workload = w.Name()
	rep.Workers = p

	maxScale := 1
	for _, ws := range l.Workers {
		if ws.scale() > maxScale {
			maxScale = ws.scale()
		}
	}
	s := &stealRun{
		l: l, w: w, body: body, p: p,
		virtual: func(i int) float64 {
			return float64(maxScale) / float64(l.Workers[i].scale())
		},
	}

	// The paper's master gathers every worker's first ACP report
	// before planning (step 1(a)). With no master goroutine we take
	// the reports synchronously here — equivalent, since no work has
	// been granted yet.
	var initACP []int
	if sched.Distributed(l.Scheme) {
		initACP = make([]int, p)
		for i := 0; i < p; i++ {
			initACP[i] = l.ACP.ACP(s.virtual(i), 1+l.Workers[i].Load())
		}
	}
	var err error
	s.js, err = NewJobState(JobConfig{
		Scheme:        l.Scheme,
		Workload:      w,
		Workers:       p,
		Window:        l.stealWindow(),
		InitACP:       initACP,
		DisableReplan: l.DisableReplan,
		Telemetry:     l.Telemetry,
		Ledger:        l.Ledger,
	})
	if err != nil {
		return rep, err
	}

	s.start = time.Now()
	if l.Trace != nil {
		l.Trace.Scheme = l.Scheme.Name()
		l.Trace.Workload = w.Name()
		l.Trace.Workers = p
	}
	times := make([]metrics.Times, p)
	iters := make([]int64, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.worker(ctx, id, &times[id], &iters[id])
		}(i)
	}
	wg.Wait()

	counts := s.js.Counts()
	rep.Tp = time.Since(s.start).Seconds()
	wait, comp := s.js.Latency()
	rep.GrantLatency = wait.Summarize()
	rep.CompLatency = comp.Summarize()
	rep.Chunks = counts.Chunks
	rep.Replans = counts.Replans
	rep.Steals = int(counts.Steals)
	for i := 0; i < p; i++ {
		rep.PerWorker = append(rep.PerWorker, times[i])
		rep.Iterations += int(iters[i])
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	if rep.Iterations != w.Len() {
		return rep, fmt.Errorf("exec: executed %d of %d iterations", rep.Iterations, w.Len())
	}
	return rep, nil
}

// worker is one goroutine's acquire–execute loop: own pop, then steal,
// then refill, spinning (with Gosched) only in the terminal window
// where the policy is dry but granted chunks still sit in deques.
func (s *stealRun) worker(ctx context.Context, id int, times *metrics.Times, iters *int64) {
	l, bus, js := s.l, s.l.Telemetry, s.js
	spec := l.Workers[id]
	bus.Publish(telemetry.Event{
		Kind: telemetry.WorkerJoined, Worker: id,
		At: bus.Now(),
	})
	var fbWork, fbElapsed float64
	acpNow := l.ACP.ACP(s.virtual(id), 1+spec.Load())
	for {
		if ctx.Err() != nil {
			return
		}
		waitStart := time.Now()
		a, ok := js.Pop(id)
		if !ok {
			a, ok = js.Steal(id)
		}
		if !ok {
			acpNow = l.ACP.ACP(s.virtual(id), 1+spec.Load())
			a, _, ok = js.Refill(id, acpNow, fbWork, fbElapsed)
			fbWork, fbElapsed = 0, 0
		}
		if !ok {
			if js.Finished() {
				return
			}
			// Granted work is still in flight in other deques (or the
			// policy will yield more once someone reports): yield and
			// rescan rather than block.
			runtime.Gosched()
			continue
		}
		times.Wait += time.Since(waitStart).Seconds()
		compStart := time.Now()
		for it := a.Start; it < a.End(); it++ {
			for rep := 0; rep < spec.scale(); rep++ {
				s.body(it)
			}
		}
		fbWork = workload.RangeCost(s.w, a.Start, a.End())
		fbElapsed = time.Since(compStart).Seconds() // single reading: feedback == Comp == trace span
		times.Comp += fbElapsed
		*iters += int64(a.Size)
		js.Complete(id, a, acpNow, fbElapsed)
		if l.Trace != nil {
			begin := compStart.Sub(s.start).Seconds()
			l.Trace.Add(trace.Event{
				Worker: id,
				Start:  a.Start,
				Size:   a.Size,
				Begin:  begin,
				End:    begin + fbElapsed,
				ACP:    acpNow,
			})
		}
	}
}
